// An interactive Datalog shell over the library: type facts and rules to
// extend the program, queries to evaluate them. The processor re-analyses
// after each definition and reports which algorithm each query uses.
//
// Usage:
//   datalog_repl [program.dl ...]     load files, then read stdin
//
// Commands:
//   fact.               add a fact            e.g.  edge(a, b).
//   head :- body.       add a rule            e.g.  tc(X,Y) :- edge(X,Y).
//   atom?  /  ?- atom.  run a query           e.g.  tc(a, Y)?
//   .explain atom       show the strategy and its rewrite/schema artifact
//   .why fact           derivation tree for a ground fact, e.g.
//                       .why tc(a, c)   (evaluate the predicate first)
//   .program            list the current rules
//   .relations          list materialised relations
//   .load REL FILE      load tab-separated facts into relation REL
//   .save REL FILE      save relation REL as a tab-separated file
//   .strategy NAME      force auto|separable|magic|counting|qsqr|seminaive|naive
//   .quit               exit
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/compiler.h"
#include "core/provenance.h"
#include "datalog/parser.h"
#include "separable/engine.h"
#include "storage/io.h"
#include "util/string_util.h"

namespace seprec {
namespace {

class Shell {
 public:
  int RunFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Feed(text.str());
    return 0;
  }

  void RunStdin() {
    std::string line;
    std::printf("seprec datalog shell — '.quit' to exit\n> ");
    std::fflush(stdout);
    while (std::getline(std::cin, line)) {
      if (StripWhitespace(line) == ".quit") break;
      Feed(line);
      std::printf("> ");
      std::fflush(stdout);
    }
  }

 private:
  void Feed(const std::string& text) {
    std::string_view stripped = StripWhitespace(text);
    if (stripped.empty()) return;
    if (stripped[0] == '.') {
      Command(std::string(stripped));
      return;
    }
    StatusOr<ParsedUnit> unit = ParseUnit(stripped);
    if (!unit.ok()) {
      std::printf("parse error: %s\n", unit.status().ToString().c_str());
      return;
    }
    if (!unit->program.rules.empty()) {
      Program candidate = program_;
      for (Rule& rule : unit->program.rules) {
        candidate.rules.push_back(std::move(rule));
      }
      StatusOr<QueryProcessor> qp = QueryProcessor::Create(candidate);
      if (!qp.ok()) {
        std::printf("rejected: %s\n", qp.status().ToString().c_str());
        return;
      }
      program_ = std::move(candidate);
      processor_ = std::move(qp).value();
      have_processor_ = true;
    }
    for (const Atom& query : unit->queries) {
      Query(query);
    }
  }

  void Query(const Atom& query) {
    EnsureProcessor();
    auto decision = processor_.Decide(query);
    Strategy strategy = forced_.value_or(decision.strategy);
    StatusOr<QueryResult> result = processor_.Answer(query, &db_, strategy);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    for (const std::string& t : result->answer.ToStrings(db_.symbols())) {
      std::printf("  %s%s\n", query.predicate.c_str(), t.c_str());
    }
    std::printf("%zu answer(s) via %s; largest relation %zu tuples\n",
                result->answer.size(),
                std::string(StrategyToString(result->strategy)).c_str(),
                result->stats.max_relation_size);
  }

  void Command(const std::string& command) {
    std::vector<std::string> parts = StrSplit(command, ' ');
    if (parts[0] == ".program") {
      std::printf("%s", program_.ToString().c_str());
      return;
    }
    if (parts[0] == ".relations") {
      for (const std::string& name : db_.RelationNames()) {
        std::printf("  %s/%zu: %zu tuples\n", name.c_str(),
                    db_.Find(name)->arity(), db_.Find(name)->size());
      }
      return;
    }
    if (parts[0] == ".strategy" && parts.size() >= 2) {
      const std::string& name = parts[1];
      if (name == "auto") {
        forced_.reset();
      } else if (name == "separable") {
        forced_ = Strategy::kSeparable;
      } else if (name == "magic") {
        forced_ = Strategy::kMagic;
      } else if (name == "counting") {
        forced_ = Strategy::kCounting;
      } else if (name == "qsqr") {
        forced_ = Strategy::kQsqr;
      } else if (name == "seminaive") {
        forced_ = Strategy::kSemiNaive;
      } else if (name == "naive") {
        forced_ = Strategy::kNaive;
      } else {
        std::printf("unknown strategy '%s'\n", name.c_str());
        return;
      }
      std::printf("strategy set to %s\n", name.c_str());
      return;
    }
    if (parts[0] == ".explain" && parts.size() >= 2) {
      std::string atom_text = command.substr(std::string(".explain ").size());
      StatusOr<Atom> atom = ParseAtom(atom_text);
      if (!atom.ok()) {
        std::printf("parse error: %s\n", atom.status().ToString().c_str());
        return;
      }
      EnsureProcessor();
      auto explanation = processor_.Explain(*atom);
      if (!explanation.ok()) {
        std::printf("error: %s\n", explanation.status().ToString().c_str());
        return;
      }
      std::printf("%s", explanation->c_str());
      return;
    }
    if (parts[0] == ".why" && parts.size() >= 2) {
      std::string atom_text = command.substr(std::string(".why ").size());
      StatusOr<Atom> atom = ParseAtom(atom_text);
      if (!atom.ok()) {
        std::printf("parse error: %s\n", atom.status().ToString().c_str());
        return;
      }
      auto node = ExplainTuple(program_, &db_, *atom);
      if (!node.ok()) {
        std::printf("error: %s\n", node.status().ToString().c_str());
        return;
      }
      std::printf("%s", node->ToString().c_str());
      return;
    }
    if (parts[0] == ".load" && parts.size() >= 3) {
      auto added = LoadRelationTsvFile(&db_, parts[1], parts[2]);
      if (!added.ok()) {
        std::printf("error: %s\n", added.status().ToString().c_str());
      } else {
        std::printf("loaded %zu new tuple(s) into %s\n", *added,
                    parts[1].c_str());
      }
      return;
    }
    if (parts[0] == ".save" && parts.size() >= 3) {
      Status status = SaveRelationTsvFile(db_, parts[1], parts[2]);
      if (!status.ok()) {
        std::printf("error: %s\n", status.ToString().c_str());
      } else {
        std::printf("saved %s to %s\n", parts[1].c_str(), parts[2].c_str());
      }
      return;
    }
    std::printf("unknown command: %s\n", command.c_str());
  }

  void EnsureProcessor() {
    if (!have_processor_) {
      StatusOr<QueryProcessor> qp = QueryProcessor::Create(program_);
      SEPREC_CHECK(qp.ok());
      processor_ = std::move(qp).value();
      have_processor_ = true;
    }
  }

  Program program_;
  Database db_;
  QueryProcessor processor_ = *QueryProcessor::Create(Program{});
  bool have_processor_ = false;
  std::optional<Strategy> forced_;
};

}  // namespace
}  // namespace seprec

int main(int argc, char** argv) {
  seprec::Shell shell;
  for (int i = 1; i < argc; ++i) {
    if (int rc = shell.RunFile(argv[i]); rc != 0) return rc;
  }
  if (argc > 1) return 0;
  shell.RunStdin();
  return 0;
}
