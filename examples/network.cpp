// Network reachability with maintenance windows: stratified negation
// feeding a separable recursion.
//
//   down(R)           :- maintenance(R, W), active_window(W).
//   link_up(X, Y)     :- link(X, Y), not down(X), not down(Y).
//   route(X, Y)       :- link_up(X, Y).
//   route(X, Y)       :- link_up(X, W) & route(W, Y).
//
// `route` is a separable recursion over the derived link_up relation;
// the negation lives in a lower stratum, so the compiler still dispatches
// route queries to the O(n) Separable algorithm.
#include <cstdio>

#include "core/compiler.h"
#include "datalog/parser.h"

int main() {
  using namespace seprec;

  Program program = ParseProgramOrDie(R"(
    link(fra, ams).  link(ams, lon).  link(lon, nyc).
    link(fra, zrh).  link(zrh, mil).  link(mil, mad).
    link(nyc, sfo).  link(mad, sfo).

    maintenance(lon, w1).
    maintenance(mil, w2).
    active_window(w1).

    down(R) :- maintenance(R, W), active_window(W).
    link_up(X, Y) :- link(X, Y), not down(X), not down(Y).
    route(X, Y) :- link_up(X, Y).
    route(X, Y) :- link_up(X, W) & route(W, Y).
  )");

  StatusOr<QueryProcessor> qp = QueryProcessor::Create(program);
  if (!qp.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 qp.status().ToString().c_str());
    return 1;
  }

  Database db;
  Atom query = ParseAtomOrDie("route(fra, Y)");

  StatusOr<std::string> explanation = qp->Explain(query);
  if (explanation.ok()) {
    std::printf("%s\n", explanation->c_str());
  }

  StatusOr<QueryResult> result = qp->Answer(query, &db);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("reachable from fra while window w1 is active (lon is "
              "down):\n");
  for (const std::string& t : result->answer.ToStrings(db.symbols())) {
    std::printf("  route%s\n", t.c_str());
  }

  // What-if: clear the maintenance window and re-ask on a fresh database
  // with the window fact removed from the program.
  Program no_window = program;
  std::vector<Rule> kept;
  for (Rule& rule : no_window.rules) {
    if (rule.head.predicate != "active_window") {
      kept.push_back(std::move(rule));
    }
  }
  no_window.rules = std::move(kept);
  StatusOr<QueryProcessor> qp2 = QueryProcessor::Create(no_window);
  SEPREC_CHECK(qp2.ok());
  Database db2;
  StatusOr<QueryResult> result2 = qp2->Answer(query, &db2);
  SEPREC_CHECK(result2.ok());
  std::printf("\nwith no active maintenance window:\n");
  for (const std::string& t : result2->answer.ToStrings(db2.symbols())) {
    std::printf("  route%s\n", t.c_str());
  }
  return 0;
}
