// Quickstart: define a recursion, load facts, ask a query.
//
// The library compiles selection queries on recursively defined relations.
// When the recursion is *separable* (Naughton, "Compiling Separable
// Recursions", 1988) the query runs in the specialised O(n) algorithm;
// otherwise it falls back to Generalized Magic Sets or semi-naive
// evaluation — all behind one QueryProcessor API.
#include <cstdio>

#include "core/compiler.h"
#include "datalog/parser.h"

int main() {
  using namespace seprec;

  // 1. A program: ancestry as a linear recursion plus base facts.
  Program program = ParseProgramOrDie(R"(
    parent(homer, bart).   parent(homer, lisa).
    parent(abe, homer).    parent(mona, homer).
    parent(bart, ling).

    ancestor(X, Y) :- parent(X, Y).
    ancestor(X, Y) :- parent(X, W) & ancestor(W, Y).
  )");

  // 2. A query processor: analyses the program once (safety, strata,
  //    separability of every recursive predicate).
  StatusOr<QueryProcessor> qp = QueryProcessor::Create(program);
  if (!qp.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 qp.status().ToString().c_str());
    return 1;
  }

  // 3. Ask: whose ancestor is abe?
  Atom query = ParseAtomOrDie("ancestor(abe, Y)");
  QueryProcessor::Decision decision = qp->Decide(query);
  std::printf("query     : %s\n", query.ToString().c_str());
  std::printf("strategy  : %s (%s)\n",
              std::string(StrategyToString(decision.strategy)).c_str(),
              decision.reason.c_str());

  Database db;  // facts can also live here; ours are in the program
  StatusOr<QueryResult> result = qp->Answer(query, &db);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("answers   :\n");
  for (const std::string& tuple : result->answer.ToStrings(db.symbols())) {
    std::printf("  ancestor%s\n", tuple.c_str());
  }
  std::printf("cost      : largest constructed relation = %zu tuples, "
              "%zu fixpoint rounds\n",
              result->stats.max_relation_size, result->stats.iterations);
  return 0;
}
