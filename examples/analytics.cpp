// Analytics over a purchase log: stratified aggregation (count/sum/max)
// layered on top of a separable recursion, plus why-provenance for
// debugging a derived fact.
#include <cstdio>

#include "core/compiler.h"
#include "core/provenance.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"

int main() {
  using namespace seprec;

  Program program = ParseProgramOrDie(R"(
    % Who influences whom, and what people bought directly.
    follows(ann, bea).  follows(bea, cal).  follows(cal, dia).
    follows(ann, eve).  follows(eve, dia).
    bought(dia, lamp, 40).  bought(dia, rug, 120).
    bought(cal, mug, 12).

    % A classic separable recursion: you consider whatever the people you
    % follow (transitively) bought.
    considers(X, Item) :- bought(X, Item, P).
    considers(X, Item) :- follows(X, W) & considers(W, Item).

    % Aggregates over the closed relation (strictly higher stratum).
    wishlist_size(X, count(Item)) :- considers(X, Item).
    spend(X, sum(P)) :- bought(X, Item, P).
    priciest(max(P)) :- bought(X, Item, P).
  )");

  StatusOr<QueryProcessor> qp = QueryProcessor::Create(program);
  if (!qp.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 qp.status().ToString().c_str());
    return 1;
  }

  Database db;
  // The recursive query itself still uses the Separable algorithm:
  auto decision = qp->Decide(ParseAtomOrDie("considers(ann, Item)"));
  std::printf("considers(ann, Item)? -> %s (%s)\n\n",
              std::string(StrategyToString(decision.strategy)).c_str(),
              decision.reason.c_str());

  for (const char* q :
       {"considers(ann, Item)", "wishlist_size(X, N)", "spend(X, T)",
        "priciest(P)"}) {
    Atom query = ParseAtomOrDie(q);
    auto result = qp->Answer(query, &db);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", q,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s?\n", q);
    for (const std::string& t : result->answer.ToStrings(db.symbols())) {
      std::printf("  %s\n", t.c_str());
    }
    std::printf("\n");
  }

  // Why does ann consider the rug? Materialise and ask for provenance.
  SEPREC_CHECK(EvaluateSemiNaive(program, &db).ok());
  auto why = ExplainTuple(program, &db, ParseAtomOrDie("considers(ann, rug)"));
  SEPREC_CHECK(why.ok());
  std::printf("why considers(ann, rug)?\n%s", why->ToString().c_str());
  return 0;
}
