// A logistics scenario exercising a 3-ary separable recursion with two
// equivalence classes and a PARTIAL selection (the paper's Example 2.4
// shape, Lemma 2.1 rewrite).
//
// shipment(Origin, Carrier, Dest) holds if a parcel starting at Origin
// under Carrier can end up at Dest:
//   * a handoff moves the parcel to a new (origin, carrier) pair;
//   * a delivery leg extends the destination;
//   * a base `contract` starts things off.
//
//   shipment(O, C, D) :- handoff(O, C, O2, C2) & shipment(O2, C2, D).
//   shipment(O, C, D) :- shipment(O, C, D1) & leg(D1, D).
//   shipment(O, C, D) :- contract(O, C, D).
//
// The query shipment(seattle, Carrier, Dest)? binds only half of the class
// {Origin, Carrier}: a partial selection, evaluated as a union of full
// selections.
#include <cstdio>

#include "core/compiler.h"
#include "datalog/parser.h"
#include "separable/engine.h"

int main() {
  using namespace seprec;

  Program program = ParseProgramOrDie(R"(
    % (origin, carrier) -> (origin', carrier') handoffs
    handoff(seattle,  acme,  portland, acme).
    handoff(portland, acme,  boise,    zephyr).
    handoff(seattle,  rapid, denver,   rapid).
    handoff(denver,   rapid, boise,    zephyr).

    % destination extension legs
    leg(omaha, chicago).
    leg(chicago, nyc).

    % base contracts
    contract(boise, zephyr, omaha).
    contract(denver, rapid, omaha).

    shipment(O, C, D) :- handoff(O, C, O2, C2) & shipment(O2, C2, D).
    shipment(O, C, D) :- shipment(O, C, D1) & leg(D1, D).
    shipment(O, C, D) :- contract(O, C, D).
  )");

  StatusOr<QueryProcessor> qp = QueryProcessor::Create(program);
  SEPREC_CHECK(qp.ok());

  const SeparableRecursion* sep = qp->FindSeparable("shipment");
  SEPREC_CHECK(sep != nullptr);
  std::printf("%s\n", DescribeSeparable(*sep).c_str());

  Database db;

  // Full selection: both columns of class {0,1} bound.
  {
    Atom query = ParseAtomOrDie("shipment(seattle, acme, D)");
    std::printf("full selection  %s  [%s]\n", query.ToString().c_str(),
                qp->Decide(query).reason.c_str());
    auto result = qp->Answer(query, &db);
    SEPREC_CHECK(result.ok());
    for (const std::string& t : result->answer.ToStrings(db.symbols())) {
      std::printf("  shipment%s\n", t.c_str());
    }
  }

  // Partial selection: only the origin is known -> Lemma 2.1 rewrite.
  {
    Atom query = ParseAtomOrDie("shipment(seattle, C, D)");
    std::printf("\npartial selection  %s  [%s]\n", query.ToString().c_str(),
                qp->Decide(query).reason.c_str());
    auto result = qp->Answer(query, &db);
    SEPREC_CHECK(result.ok());
    for (const std::string& t : result->answer.ToStrings(db.symbols())) {
      std::printf("  shipment%s\n", t.c_str());
    }
  }

  // Persistent-column selection: who can deliver TO nyc?
  {
    Atom query = ParseAtomOrDie("shipment(O, C, nyc)");
    std::printf("\ndestination selection  %s\n", query.ToString().c_str());
    auto result = qp->Answer(query, &db);
    SEPREC_CHECK(result.ok());
    for (const std::string& t : result->answer.ToStrings(db.symbols())) {
      std::printf("  shipment%s\n", t.c_str());
    }
  }

  // Cross-check against plain semi-naive evaluation.
  {
    Database check_db;
    Atom query = ParseAtomOrDie("shipment(seattle, C, D)");
    auto separable = qp->Answer(query, &db);
    auto reference = qp->Answer(query, &check_db, Strategy::kSemiNaive);
    SEPREC_CHECK(separable.ok() && reference.ok());
    // Compare renderings: the two databases intern symbols independently,
    // so raw Values are not comparable across them.
    SEPREC_CHECK(separable->answer.ToStrings(db.symbols()) ==
                 reference->answer.ToStrings(check_db.symbols()));
    std::printf("\ncross-check vs semi-naive: %zu answers agree\n",
                separable->answer.size());
  }
  return 0;
}
