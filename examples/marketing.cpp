// The paper's motivating scenario (Examples 1.1 and 1.2): who buys what in
// a social network where purchases propagate along friend/idol edges and
// down price chains. Runs the same query under all four evaluation
// algorithms and prints the cost comparison of Section 4.
#include <cstdio>

#include "core/compiler.h"
#include "datalog/parser.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "separable/engine.h"

namespace {

void PrintOutcome(const char* label, const seprec::StatusOr<seprec::QueryResult>& result,
                  const seprec::Database& db) {
  if (!result.ok()) {
    std::printf("  %-10s FAILED: %s\n", label,
                result.status().ToString().c_str());
    return;
  }
  std::printf("  %-10s %3zu answers, largest relation %6zu tuples, %.2f ms\n",
              label, result->answer.size(), result->stats.max_relation_size,
              result->stats.seconds * 1e3);
  (void)db;
}

}  // namespace

int main() {
  using namespace seprec;

  std::printf("== Example 1.2: buys via friends, plus anything cheaper ==\n");
  Program program = Example12Program();
  std::printf("%s\n", program.ToString().c_str());

  StatusOr<QueryProcessor> qp = QueryProcessor::Create(program);
  SEPREC_CHECK(qp.ok());

  // Show the structure the compiler detected.
  const SeparableRecursion* sep = qp->FindSeparable("buys");
  SEPREC_CHECK(sep != nullptr);
  std::printf("%s\n", DescribeSeparable(*sep).c_str());

  // The instantiated algorithm (the paper's Figure 4).
  Atom query = ParseAtomOrDie("buys(a0, Y)");
  auto schema = ExplainSchema(*sep, query);
  SEPREC_CHECK(schema.ok());
  std::printf("instantiated schema for %s:\n%s\n", query.ToString().c_str(),
              schema->c_str());

  const size_t n = 120;
  std::printf("database: friend chain of %zu people, cheaper chain of %zu "
              "products, one perfectFor link\n\n",
              n, n);

  for (Strategy strategy : {Strategy::kSeparable, Strategy::kMagic,
                            Strategy::kSemiNaive, Strategy::kNaive}) {
    Database db;
    MakeExample12Data(&db, n);
    auto result = qp->Answer(query, &db, strategy);
    PrintOutcome(StrategyToString(strategy).data(), result, db);
  }

  std::printf("\n== Example 1.1: buys via friends and idols ==\n");
  Program program11 = Example11Program();
  StatusOr<QueryProcessor> qp11 = QueryProcessor::Create(program11);
  SEPREC_CHECK(qp11.ok());
  const size_t n11 = 16;
  std::printf("database: friend = idol = chain of %zu (the Counting "
              "worst case)\n\n", n11);
  for (Strategy strategy : {Strategy::kSeparable, Strategy::kMagic,
                            Strategy::kCounting}) {
    Database db;
    MakeExample11Data(&db, n11);
    auto result = qp11->Answer(ParseAtomOrDie("buys(a0, Y)"), &db, strategy);
    PrintOutcome(StrategyToString(strategy).data(), result, db);
  }
  std::printf("\nNote how Counting's relation count explodes (2^n paths) "
              "while Separable stays at n tuples:\nthe class structure lets "
              "each equivalence class be closed independently.\n");
  return 0;
}
