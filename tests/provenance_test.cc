#include "core/provenance.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "gen/generators.h"
#include "gen/workloads.h"

namespace seprec {
namespace {

TEST(Provenance, BaseFactIsLeaf) {
  Database db;
  MakeChain(&db, "edge", "v", 4);
  ASSERT_TRUE(EvaluateSemiNaive(TransitiveClosureProgram(), &db).ok());
  auto node = ExplainTuple(TransitiveClosureProgram(), &db,
                           ParseAtomOrDie("edge(v0, v1)"));
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  EXPECT_TRUE(node->rule.empty());
  EXPECT_TRUE(node->premises.empty());
  EXPECT_EQ(node->Size(), 1u);
}

TEST(Provenance, TransitiveChainDerivation) {
  Database db;
  MakeChain(&db, "edge", "v", 5);
  ASSERT_TRUE(EvaluateSemiNaive(TransitiveClosureProgram(), &db).ok());
  auto node = ExplainTuple(TransitiveClosureProgram(), &db,
                           ParseAtomOrDie("tc(v0, v4)"));
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  // tc(v0,v4) <- edge(v0,v1), tc(v1,v4) <- ... : 4 edges + 4 tc nodes.
  EXPECT_EQ(node->fact.ToString(), "tc(v0, v4)");
  EXPECT_FALSE(node->rule.empty());
  EXPECT_EQ(node->Size(), 8u);
  std::string text = node->ToString();
  EXPECT_NE(text.find("edge(v0, v1)   [fact]"), std::string::npos) << text;
  EXPECT_NE(text.find("tc(v3, v4)"), std::string::npos) << text;
}

TEST(Provenance, MissingTupleIsNotFound) {
  Database db;
  MakeChain(&db, "edge", "v", 4);
  ASSERT_TRUE(EvaluateSemiNaive(TransitiveClosureProgram(), &db).ok());
  auto node = ExplainTuple(TransitiveClosureProgram(), &db,
                           ParseAtomOrDie("tc(v3, v0)"));
  EXPECT_FALSE(node.ok());
  EXPECT_EQ(node.status().code(), StatusCode::kNotFound);
  auto ghost = ExplainTuple(TransitiveClosureProgram(), &db,
                            ParseAtomOrDie("tc(ghost, v0)"));
  EXPECT_EQ(ghost.status().code(), StatusCode::kNotFound);
}

TEST(Provenance, NonGroundRejected) {
  Database db;
  auto node = ExplainTuple(TransitiveClosureProgram(), &db,
                           ParseAtomOrDie("tc(v0, Y)"));
  EXPECT_EQ(node.status().code(), StatusCode::kInvalidArgument);
}

TEST(Provenance, WorksOnCyclicData) {
  // Every well-founded derivation exists even though tuples support each
  // other cyclically in the fixpoint.
  Database db;
  MakeCycle(&db, "edge", "v", 4);
  ASSERT_TRUE(EvaluateSemiNaive(TransitiveClosureProgram(), &db).ok());
  for (const char* atom : {"tc(v0, v0)", "tc(v2, v1)", "tc(v3, v3)"}) {
    auto node = ExplainTuple(TransitiveClosureProgram(), &db,
                             ParseAtomOrDie(atom));
    ASSERT_TRUE(node.ok()) << atom << ": " << node.status().ToString();
    EXPECT_GE(node->Size(), 3u);
  }
}

TEST(Provenance, MultiRuleRecursionPicksSomeWitness) {
  Database db;
  MakeExample11Data(&db, 6);
  ASSERT_TRUE(EvaluateSemiNaive(Example11Program(), &db).ok());
  auto node = ExplainTuple(Example11Program(), &db,
                           ParseAtomOrDie("buys(a0, b)"));
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  // Chain of 6 people then perfectFor: 6 buys nodes + 6 premises.
  EXPECT_EQ(node->fact.ToString(), "buys(a0, b)");
  std::string text = node->ToString();
  EXPECT_NE(text.find("perfectFor(a5, b)   [fact]"), std::string::npos)
      << text;
}

TEST(Provenance, NegatedPremisesShownAsAbsent) {
  Program p = ParseProgramOrDie(
      "ok(X) :- person(X), not banned(X).");
  Database db;
  MakeFact(&db, "person", {"ann"});
  MakeFact(&db, "person", {"bob"});
  MakeFact(&db, "banned", {"bob"});
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  auto node = ExplainTuple(p, &db, ParseAtomOrDie("ok(ann)"));
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  ASSERT_EQ(node->premises.size(), 2u);
  EXPECT_FALSE(node->premises[0].negated);
  EXPECT_TRUE(node->premises[1].negated);
  EXPECT_NE(node->ToString().find("not banned(ann)   [absent]"),
            std::string::npos);
}

TEST(Provenance, BuiltinRulesExplainable) {
  Program p = ParseProgramOrDie(
      "n(0).\n"
      "n(Y) :- n(X), X < 5, Y is X + 1.");
  Database db;
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  auto node = ExplainTuple(p, &db, ParseAtomOrDie("n(3)"));
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  EXPECT_EQ(node->Size(), 4u);  // n(3) <- n(2) <- n(1) <- n(0)
}

TEST(Provenance, StratifiedTower) {
  Program p = ParseProgramOrDie(
      "node(X) :- edge(X, Y).\n"
      "node(Y) :- edge(X, Y).\n"
      "reach(X) :- start(X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "unreach(X) :- node(X), not reach(X).");
  Database db;
  MakeChain(&db, "edge", "v", 3);
  MakeChain(&db, "edge", "w", 2);
  MakeFact(&db, "start", {"v0"});
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  auto node = ExplainTuple(p, &db, ParseAtomOrDie("unreach(w1)"));
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  std::string text = node->ToString();
  EXPECT_NE(text.find("not reach(w1)   [absent]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("node(w1)"), std::string::npos);
}

TEST(Provenance, ExpansionBudget) {
  Database db;
  MakeRandomGraph(&db, "edge", "v", 30, 90, 4);
  ASSERT_TRUE(EvaluateSemiNaive(TransitiveClosureProgram(), &db).ok());
  // Find some derivable tuple to explain.
  const Relation* tc = db.Find("tc");
  ASSERT_GT(tc->size(), 0u);
  Row row = tc->row(tc->size() / 2);
  Atom atom;
  atom.predicate = "tc";
  for (Value v : row) {
    atom.args.push_back(Term::Sym(db.symbols().ToString(v)));
  }
  ProvenanceOptions tiny;
  tiny.max_expansions = 1;
  auto node = ExplainTuple(TransitiveClosureProgram(), &db, atom, tiny);
  // Either it found a 1-step witness or it exhausted the budget — both
  // acceptable; it must not loop.
  if (!node.ok()) {
    EXPECT_EQ(node.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(Provenance, FactWithHeadConstants) {
  Program p = ParseProgramOrDie(
      "status(server1, up).\n"
      "alive(X) :- status(X, up).");
  Database db;
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  auto node = ExplainTuple(p, &db, ParseAtomOrDie("alive(server1)"));
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  ASSERT_EQ(node->premises.size(), 1u);
  EXPECT_EQ(node->premises[0].fact.ToString(), "status(server1, up)");
}

}  // namespace
}  // namespace seprec
