// QSQR top-down evaluation: answers agree with every other engine, and
// the explored adorned system mirrors the Magic rewrite's.
#include "eval/qsq.h"

#include <gtest/gtest.h>

#include "core/compiler.h"
#include "core/query.h"
#include "datalog/parser.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "magic/engine.h"

namespace seprec {
namespace {

Answer ReferenceAnswer(const Program& program, const Atom& query,
                       Database* db) {
  Status status = EvaluateSemiNaive(program, db);
  SEPREC_CHECK(status.ok());
  return SelectMatching(*db->Find(query.predicate), query, db->symbols());
}

TEST(Qsqr, TransitiveClosureChain) {
  Database db;
  MakeChain(&db, "edge", "v", 10);
  auto run = EvaluateWithQsqr(TransitiveClosureProgram(),
                              ParseAtomOrDie("tc(v3, Y)"), &db);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer.size(), 6u);
  EXPECT_TRUE(run->adorned.count("tc_bf"));
}

TEST(Qsqr, AgreesWithSemiNaiveOnManyShapes) {
  struct Case {
    Program program;
    Atom query;
    std::function<void(Database*)> load;
  };
  std::vector<Case> cases;
  cases.push_back({TransitiveClosureProgram(), ParseAtomOrDie("tc(v0, Y)"),
                   [](Database* db) { MakeCycle(db, "edge", "v", 7); }});
  cases.push_back({TransitiveClosureProgram(), ParseAtomOrDie("tc(X, v5)"),
                   [](Database* db) { MakeChain(db, "edge", "v", 9); }});
  cases.push_back({Example11Program(), ParseAtomOrDie("buys(a0, Y)"),
                   [](Database* db) { MakeExample11Data(db, 8); }});
  cases.push_back({Example12Program(), ParseAtomOrDie("buys(a0, Y)"),
                   [](Database* db) { MakeExample12Data(db, 8); }});
  cases.push_back({SameGenerationProgram(), ParseAtomOrDie("sg(s5, Y)"),
                   [](Database* db) { MakeSameGenerationData(db, 2, 4); }});
  for (size_t i = 0; i < cases.size(); ++i) {
    Database db1, db2;
    cases[i].load(&db1);
    cases[i].load(&db2);
    auto run = EvaluateWithQsqr(cases[i].program, cases[i].query, &db1);
    ASSERT_TRUE(run.ok()) << "case " << i << ": "
                          << run.status().ToString();
    EXPECT_EQ(run->answer,
              ReferenceAnswer(cases[i].program, cases[i].query, &db2))
        << "case " << i;
  }
}

TEST(Qsqr, RandomGraphSweep) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Database db1, db2;
    MakeRandomGraph(&db1, "edge", "v", 18, 36, seed);
    MakeRandomGraph(&db2, "edge", "v", 18, 36, seed);
    Atom query = ParseAtomOrDie("tc(v2, Y)");
    auto run = EvaluateWithQsqr(TransitiveClosureProgram(), query, &db1);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->answer,
              ReferenceAnswer(TransitiveClosureProgram(), query, &db2))
        << "seed " << seed;
  }
}

TEST(Qsqr, ExploresSameAdornedSystemAsMagic) {
  Atom query = ParseAtomOrDie("sg(s3, Y)");
  Database db1, db2;
  MakeSameGenerationData(&db1, 2, 4);
  MakeSameGenerationData(&db2, 2, 4);
  auto qsqr = EvaluateWithQsqr(SameGenerationProgram(), query, &db1);
  ASSERT_TRUE(qsqr.ok());
  auto magic = EvaluateWithMagic(SameGenerationProgram(), query, &db2);
  ASSERT_TRUE(magic.ok());
  // Same adorned predicates...
  std::set<std::string> magic_adorned = magic->rewrite.adorned_predicates;
  EXPECT_EQ(qsqr->adorned, magic_adorned);
  // ...and the same focus: QSQR's subquery sets match the magic sets.
  for (const std::string& key : qsqr->adorned) {
    size_t input_size = qsqr->stats.relation_sizes.at("input_" + key);
    size_t magic_size = magic->stats.relation_sizes.at("magic_" + key);
    EXPECT_EQ(input_size, magic_size) << key;
    EXPECT_EQ(qsqr->stats.relation_sizes.at("ans_" + key),
              magic->stats.relation_sizes.at(key))
        << key;
  }
}

TEST(Qsqr, FocusMatchesMagicOnDisconnectedChains) {
  Database db1, db2;
  MakeChain(&db1, "edge", "left", 30);
  MakeChain(&db1, "edge", "right", 30);
  MakeChain(&db2, "edge", "left", 30);
  MakeChain(&db2, "edge", "right", 30);
  Atom query = ParseAtomOrDie("tc(left20, Y)");
  auto qsqr = EvaluateWithQsqr(TransitiveClosureProgram(), query, &db1);
  ASSERT_TRUE(qsqr.ok());
  EXPECT_EQ(qsqr->answer.size(), 9u);
  // Only the cone from left20 was explored.
  EXPECT_LE(qsqr->stats.relation_sizes.at("input_tc_bf"), 10u);
  auto magic = EvaluateWithMagic(TransitiveClosureProgram(), query, &db2);
  ASSERT_TRUE(magic.ok());
  EXPECT_EQ(qsqr->stats.relation_sizes.at("input_tc_bf"),
            magic->stats.relation_sizes.at("magic_tc_bf"));
}

TEST(Qsqr, BuiltinsAndConstantsInRules) {
  Program p = ParseProgramOrDie(
      "fib_pair(0, 0, 1).\n"
      "fib_pair(N, B, S) :- fib_pair(M, A, B), M < 10, N is M + 1, "
      "S is A + B.\n"
      "fib(N, F) :- fib_pair(N, F, S).");
  Database db1, db2;
  Atom query = ParseAtomOrDie("fib(10, F)");
  auto run = EvaluateWithQsqr(p, query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer, ReferenceAnswer(p, query, &db2));
  ASSERT_EQ(run->answer.size(), 1u);
  EXPECT_EQ(run->answer.ToStrings(db1.symbols())[0], "(10, 55)");
}

TEST(Qsqr, NegationOverLowerStratum) {
  Program p = ParseProgramOrDie(
      "closed(X) :- raw_closed(X).\n"
      "tc(X, Y) :- edge(X, Y), not closed(Y).\n"
      "tc(X, Y) :- edge(X, W), not closed(W), tc(W, Y).");
  Database db1, db2;
  for (Database* db : {&db1, &db2}) {
    MakeChain(db, "edge", "v", 8);
    MakeFact(db, "raw_closed", {"v5"});
  }
  Atom query = ParseAtomOrDie("tc(v0, Y)");
  auto run = EvaluateWithQsqr(p, query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer, ReferenceAnswer(p, query, &db2));
  EXPECT_EQ(run->answer.size(), 4u);
}

TEST(Qsqr, AllFreeQueryStillComplete) {
  Database db1, db2;
  MakeChain(&db1, "edge", "v", 6);
  MakeChain(&db2, "edge", "v", 6);
  Atom query = ParseAtomOrDie("tc(X, Y)");
  auto run = EvaluateWithQsqr(TransitiveClosureProgram(), query, &db1);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->answer,
            ReferenceAnswer(TransitiveClosureProgram(), query, &db2));
}

TEST(Qsqr, RejectsEdbAndBadArity) {
  Database db;
  EXPECT_FALSE(EvaluateWithQsqr(TransitiveClosureProgram(),
                                ParseAtomOrDie("edge(a, B)"), &db)
                   .ok());
  EXPECT_FALSE(EvaluateWithQsqr(TransitiveClosureProgram(),
                                ParseAtomOrDie("tc(a)"), &db)
                   .ok());
}

TEST(Qsqr, BudgetRespected) {
  Database db;
  MakeChain(&db, "edge", "v", 500);
  FixpointOptions options;
  options.limits.max_tuples = 50;
  auto run = EvaluateWithQsqr(TransitiveClosureProgram(),
                              ParseAtomOrDie("tc(v0, Y)"), &db, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
}

TEST(Qsqr, AvailableAsForcedStrategy) {
  auto qp = QueryProcessor::Create(Example12Program());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeExample12Data(&db, 7);
  auto result =
      qp->Answer(ParseAtomOrDie("buys(a0, Y)"), &db, Strategy::kQsqr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->answer.size(), 7u);
  EXPECT_EQ(result->stats.algorithm, "qsqr");
  EXPECT_EQ(StrategyToString(Strategy::kQsqr), "qsqr");
}

}  // namespace
}  // namespace seprec
