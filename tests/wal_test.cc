// Tests for the write-ahead log: record round-trips, the torn-vs-corrupt
// tail verdicts, truncation, and writer reopen semantics (DESIGN.md
// section 12).
#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "storage/io.h"

namespace seprec {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/seprec_wal_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string ReadFileBytes() {
    std::ifstream in(path_, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return bytes;
  }
  void WriteFileBytes(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
};

TupleBatch MakeBatch(const std::string& relation, int tag) {
  TupleBatch batch;
  batch.relation = relation;
  batch.arity = 2;
  batch.rows.push_back(
      {TypedCell::Symbol("a" + std::to_string(tag)), TypedCell::Int(tag)});
  batch.rows.push_back(
      {TypedCell::Symbol("b" + std::to_string(tag)),
       TypedCell::Int(-tag * 1000)});
  return batch;
}

TEST_F(WalTest, RoundTripPreservesTypesAndOffsets) {
  std::vector<uint64_t> offsets;
  {
    auto writer = WalWriter::Open(path_, FsyncPolicy::kOff);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    EXPECT_EQ((*writer)->offset(), kWalHeaderSize);
    for (int i = 1; i <= 3; ++i) {
      offsets.push_back((*writer)->offset());
      ASSERT_TRUE((*writer)->Append(MakeBatch("edge", i)).ok());
    }
  }
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->tail, WalTail::kClean);
  ASSERT_EQ(read->records.size(), 3u);
  EXPECT_EQ(read->valid_end, read->file_size);
  for (int i = 0; i < 3; ++i) {
    const WalRecord& rec = read->records[static_cast<size_t>(i)];
    EXPECT_EQ(rec.offset, offsets[static_cast<size_t>(i)]);
    EXPECT_EQ(rec.batch.relation, "edge");
    EXPECT_EQ(rec.batch.arity, 2u);
    ASSERT_EQ(rec.batch.rows.size(), 2u);
    // The typing decision survives: symbols stay symbols, ints stay ints.
    EXPECT_FALSE(rec.batch.rows[0][0].is_int);
    EXPECT_EQ(rec.batch.rows[0][0].symbol, "a" + std::to_string(i + 1));
    EXPECT_TRUE(rec.batch.rows[0][1].is_int);
    EXPECT_EQ(rec.batch.rows[0][1].int_value, i + 1);
    EXPECT_EQ(rec.batch.rows[1][1].int_value, -(i + 1) * 1000);
  }
}

TEST_F(WalTest, ZeroArityAndEmptyBatchRoundTrip) {
  {
    auto writer = WalWriter::Open(path_, FsyncPolicy::kOff);
    ASSERT_TRUE(writer.ok());
    TupleBatch flag;
    flag.relation = "flag";
    flag.arity = 0;
    flag.rows.push_back({});
    ASSERT_TRUE((*writer)->Append(flag).ok());
    TupleBatch empty;
    empty.relation = "nothing";
    empty.arity = 3;
    ASSERT_TRUE((*writer)->Append(empty).ok());
  }
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[0].batch.arity, 0u);
  EXPECT_EQ(read->records[0].batch.rows.size(), 1u);
  EXPECT_EQ(read->records[1].batch.relation, "nothing");
  EXPECT_TRUE(read->records[1].batch.rows.empty());
}

TEST_F(WalTest, EmptyFileIsTornAtZero) {
  WriteFileBytes("");
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->tail, WalTail::kTorn);
  EXPECT_EQ(read->valid_end, 0u);
  EXPECT_TRUE(read->records.empty());
}

TEST_F(WalTest, BadMagicIsCorrupt) {
  WriteFileBytes("notTheW1some more bytes");
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->tail, WalTail::kCorrupt);
  EXPECT_EQ(read->valid_end, 0u);
  EXPECT_NE(read->detail.find("magic"), std::string::npos) << read->detail;
}

TEST_F(WalTest, TruncatedFinalRecordIsTorn) {
  {
    auto writer = WalWriter::Open(path_, FsyncPolicy::kOff);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch("edge", 1)).ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch("edge", 2)).ok());
  }
  std::string bytes = ReadFileBytes();
  uint64_t full = bytes.size();
  // Cut the final record short: everything from its header to one byte
  // before its end must scan as torn with valid_end after record 1.
  auto clean = ReadWal(path_);
  ASSERT_TRUE(clean.ok());
  const uint64_t second_start = clean->records[1].offset;
  for (uint64_t cut : {second_start + 1, second_start + 7,
                       second_start + 9, full - 1}) {
    WriteFileBytes(bytes.substr(0, cut));
    auto read = ReadWal(path_);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->tail, WalTail::kTorn) << "cut at " << cut;
    EXPECT_EQ(read->valid_end, second_start) << "cut at " << cut;
    EXPECT_EQ(read->records.size(), 1u) << "cut at " << cut;
  }
}

TEST_F(WalTest, FlippedByteInLastRecordIsTorn) {
  {
    auto writer = WalWriter::Open(path_, FsyncPolicy::kOff);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch("edge", 1)).ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch("edge", 2)).ok());
  }
  auto clean = ReadWal(path_);
  ASSERT_TRUE(clean.ok());
  const uint64_t second_start = clean->records[1].offset;
  std::string bytes = ReadFileBytes();
  // Flip a payload byte of the LAST record: checksum fails, but nothing
  // follows it, so this is indistinguishable from a torn append.
  bytes[second_start + 10] ^= 0x40;
  WriteFileBytes(bytes);
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->tail, WalTail::kTorn);
  EXPECT_EQ(read->valid_end, second_start);
  EXPECT_EQ(read->records.size(), 1u);
}

TEST_F(WalTest, FlippedByteInMiddleRecordIsCorrupt) {
  std::vector<uint64_t> offsets;
  {
    auto writer = WalWriter::Open(path_, FsyncPolicy::kOff);
    ASSERT_TRUE(writer.ok());
    for (int i = 1; i <= 3; ++i) {
      offsets.push_back((*writer)->offset());
      ASSERT_TRUE((*writer)->Append(MakeBatch("edge", i)).ok());
    }
  }
  std::string bytes = ReadFileBytes();
  // Flip a payload byte of record 2: record 3 after it is intact, so the
  // damage cannot be a torn append — it is mid-log corruption.
  bytes[offsets[1] + 10] ^= 0x40;
  WriteFileBytes(bytes);
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->tail, WalTail::kCorrupt);
  EXPECT_EQ(read->valid_end, offsets[1]);
  EXPECT_EQ(read->records.size(), 1u);
  EXPECT_NE(read->detail.find("checksum"), std::string::npos)
      << read->detail;
}

TEST_F(WalTest, FlippedCrcByteBehavesLikeFlippedPayload) {
  std::vector<uint64_t> offsets;
  {
    auto writer = WalWriter::Open(path_, FsyncPolicy::kOff);
    ASSERT_TRUE(writer.ok());
    for (int i = 1; i <= 2; ++i) {
      offsets.push_back((*writer)->offset());
      ASSERT_TRUE((*writer)->Append(MakeBatch("edge", i)).ok());
    }
  }
  std::string bytes = ReadFileBytes();
  // Byte 4 of a record header is the first CRC byte. Record 1 (not last)
  // -> corrupt; the same damage on record 2 (last) -> torn.
  std::string first = bytes;
  first[offsets[0] + 4] ^= 0x01;
  WriteFileBytes(first);
  auto read1 = ReadWal(path_);
  ASSERT_TRUE(read1.ok());
  EXPECT_EQ(read1->tail, WalTail::kCorrupt);
  EXPECT_EQ(read1->valid_end, offsets[0]);

  std::string last = bytes;
  last[offsets[1] + 4] ^= 0x01;
  WriteFileBytes(last);
  auto read2 = ReadWal(path_);
  ASSERT_TRUE(read2.ok());
  EXPECT_EQ(read2->tail, WalTail::kTorn);
  EXPECT_EQ(read2->valid_end, offsets[1]);
}

TEST_F(WalTest, OversizeLengthIsCorruptNotTorn) {
  {
    auto writer = WalWriter::Open(path_, FsyncPolicy::kOff);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch("edge", 1)).ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch("edge", 2)).ok());
  }
  std::string bytes = ReadFileBytes();
  const uint64_t first_end = [&] {
    auto read = ReadWal(path_);
    return read->records[1].offset;
  }();
  // Plant an over-cap length field where record 1's header sits. Append
  // can never write such a record, so this is definitive damage even
  // though the declared payload also runs past end of file — the verdict
  // must be corrupt (strict recovery refuses), never a silently
  // truncatable torn tail.
  std::string damaged = bytes;
  damaged[static_cast<size_t>(first_end) + 3] =
      static_cast<char>(0x7F);  // length's high byte: ~2 GiB
  WriteFileBytes(damaged);
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->tail, WalTail::kCorrupt);
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->valid_end, first_end);
  EXPECT_NE(read->detail.find("impossible payload length"),
            std::string::npos)
      << read->detail;
}

TEST_F(WalTest, TruncateWalRemovesTornTail) {
  {
    auto writer = WalWriter::Open(path_, FsyncPolicy::kOff);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch("edge", 1)).ok());
  }
  std::string bytes = ReadFileBytes();
  const uint64_t valid = bytes.size();
  // A plausible torn append: header declaring 96 payload bytes, only 4
  // on disk. ("Text" garbage would decode as an over-cap length and be
  // diagnosed as corruption instead.)
  WriteFileBytes(bytes + std::string("\x60\x00\x00\x00\xaa\xbb\xcc\xdd"
                                     "tail",
                                     12));
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->tail, WalTail::kTorn);
  ASSERT_TRUE(TruncateWal(path_, read->valid_end).ok());
  auto again = ReadWal(path_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->tail, WalTail::kClean);
  EXPECT_EQ(again->file_size, valid);
  EXPECT_EQ(again->records.size(), 1u);
}

TEST_F(WalTest, ReopenAtOffsetDiscardsTailAndAppends) {
  uint64_t first_end = 0;
  {
    auto writer = WalWriter::Open(path_, FsyncPolicy::kOff);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch("edge", 1)).ok());
    first_end = (*writer)->offset();
    ASSERT_TRUE((*writer)->Append(MakeBatch("edge", 2)).ok());
  }
  // Reopen at the end of record 1, as recovery does after dropping a
  // tail: record 2's bytes are truncated away and the next append lands
  // exactly at the reopen offset.
  {
    auto writer = WalWriter::Open(path_, FsyncPolicy::kOff, first_end);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    EXPECT_EQ((*writer)->offset(), first_end);
    ASSERT_TRUE((*writer)->Append(MakeBatch("node", 9)).ok());
  }
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->tail, WalTail::kClean);
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[0].batch.relation, "edge");
  EXPECT_EQ(read->records[1].batch.relation, "node");
  EXPECT_EQ(read->records[1].offset, first_end);
}

TEST_F(WalTest, OpenRejectsOffsetOutsideFile) {
  {
    auto writer = WalWriter::Open(path_, FsyncPolicy::kOff);
    ASSERT_TRUE(writer.ok());
  }
  EXPECT_FALSE(WalWriter::Open(path_, FsyncPolicy::kOff, 4).ok());
  EXPECT_FALSE(WalWriter::Open(path_, FsyncPolicy::kOff, 1000).ok());
}

TEST_F(WalTest, DeleteRecordRoundTrip) {
  {
    auto writer = WalWriter::Open(path_, FsyncPolicy::kOff);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE((*writer)->Append(MakeBatch("edge", 1)).ok());
    TupleBatch del = MakeBatch("edge", 1);
    del.op = BatchOp::kDelete;
    ASSERT_TRUE((*writer)->Append(del).ok());
  }
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->tail, WalTail::kClean);
  ASSERT_EQ(read->records.size(), 2u);
  // The op is the record type byte; everything after it shares the
  // insert layout, so rows round-trip identically for both ops.
  EXPECT_EQ(read->records[0].batch.op, BatchOp::kInsert);
  EXPECT_EQ(read->records[1].batch.op, BatchOp::kDelete);
  EXPECT_EQ(read->records[1].batch.relation, "edge");
  EXPECT_EQ(read->records[1].batch.arity, 2u);
  EXPECT_EQ(read->records[1].batch.rows, read->records[0].batch.rows);
}

TEST_F(WalTest, UnknownRecordTypeIsCorruptNotTorn) {
  {
    auto writer = WalWriter::Open(path_, FsyncPolicy::kOff);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch("edge", 1)).ok());
    ASSERT_TRUE((*writer)->Append(MakeBatch("edge", 3)).ok());
  }
  // Flip the FIRST record's type byte (first payload byte, after the u32
  // length + u32 crc framing) to a value no writer emits. With a valid
  // record still behind it this is mid-log damage — corruption, never a
  // torn tail (only damage on the final record gets the torn-append
  // benefit of the doubt).
  std::string bytes = ReadFileBytes();
  bytes[kWalHeaderSize + 8] = static_cast<char>(0x7f);
  WriteFileBytes(bytes);
  auto read = ReadWal(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->tail, WalTail::kCorrupt);
  EXPECT_TRUE(read->records.empty());
}

TEST_F(WalTest, ParseFsyncPolicyNames) {
  EXPECT_EQ(*ParseFsyncPolicy("always"), FsyncPolicy::kAlways);
  EXPECT_EQ(*ParseFsyncPolicy("batch"), FsyncPolicy::kBatch);
  EXPECT_EQ(*ParseFsyncPolicy("off"), FsyncPolicy::kOff);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
  EXPECT_EQ(FsyncPolicyToString(FsyncPolicy::kBatch), "batch");
}

}  // namespace
}  // namespace seprec
