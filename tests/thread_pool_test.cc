// ThreadPool / ParallelFor semantics, the SEPREC_THREADS-backed parallel
// policy, and the ShardedSink staging area the parallel engines emit into.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "core/governor.h"
#include "storage/relation.h"

namespace seprec {
namespace {

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, 8, [&hits](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForSerialWhenParallelismIsOne) {
  ThreadPool pool(4);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.ParallelFor(seen.size(), 1, [&seen](size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (std::thread::id id : seen) {
    EXPECT_EQ(id, caller);  // inline fast path, no pool involvement
  }
}

TEST(ThreadPool, ParallelForHandlesEdgeSizes) {
  ThreadPool pool(2);
  size_t calls = 0;
  pool.ParallelFor(0, 4, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  pool.ParallelFor(1, 4, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls, 1u);  // n == 1 also runs inline on the caller
}

TEST(ThreadPool, ParallelForMoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, 64, [&sum](size_t i) {
    sum.fetch_add(i + 1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 5050u);
}

TEST(ThreadPool, ScheduleRunsDetachedTasks) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    pool.Schedule([&mu, &cv, &done] {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&done] { return done == 8; });
  EXPECT_EQ(done, 8);
}

TEST(ThreadPool, SharedPoolIsAProcessSingleton) {
  ThreadPool* a = ThreadPool::Shared();
  ThreadPool* b = ThreadPool::Shared();
  EXPECT_EQ(a, b);
  EXPECT_GE(a->size(), 1u);
}

TEST(ParallelPolicy, ExplicitThreadCountWins) {
  ParallelPolicy policy;
  policy.num_threads = 4;
  EXPECT_EQ(policy.ResolvedThreads(), 4u);
  EXPECT_TRUE(policy.Enabled());
  policy.num_threads = 1;
  EXPECT_EQ(policy.ResolvedThreads(), 1u);
  EXPECT_FALSE(policy.Enabled());
}

TEST(ParallelPolicy, AutoResolvesToAtLeastOne) {
  // num_threads == 0 defers to SEPREC_THREADS (set by the CI TSan matrix);
  // whatever the environment says, the result is a sane worker count.
  ParallelPolicy policy;
  EXPECT_GE(policy.ResolvedThreads(), 1u);
  EXPECT_LE(policy.ResolvedThreads(), 64u);
  EXPECT_EQ(policy.ResolvedThreads(), DefaultThreadCount());
}

// ---- ShardedSink ---------------------------------------------------------

Row MakeRow(const std::vector<Value>& v) { return Row(v.data(), v.size()); }

TEST(ShardedSink, DedupesWithinAndAcrossShards) {
  ShardedSink sink(2);
  std::vector<Value> a{Value::Int(1), Value::Int(2)};
  std::vector<Value> b{Value::Int(3), Value::Int(4)};
  EXPECT_TRUE(sink.Insert(MakeRow(a)));
  EXPECT_FALSE(sink.Insert(MakeRow(a)));
  EXPECT_TRUE(sink.Insert(MakeRow(b)));
  EXPECT_EQ(sink.size(), 2u);
}

TEST(ShardedSink, MergeIsCanonicalAndThreadCountInvariant) {
  // However many workers race to stage the same row set, MergeInto must
  // hand the target relation the same rows in the same slot order — the
  // bit-identical-results keystone of the parallel engines.
  auto staged_rows = [](size_t workers) {
    ShardedSink sink(2);
    ThreadPool pool(workers);
    // Workers split the index space [0, 1200) round-robin and each also
    // re-derives its successor's row, so neighbouring workers race on
    // duplicates. The UNION of staged rows is the same for any worker
    // count — only the interleaving differs.
    pool.ParallelFor(workers, workers, [&sink, workers](size_t w) {
      for (size_t j = w; j < 1200; j += workers) {
        for (size_t d = 0; d < 2; ++d) {
          const size_t v = j + d;
          std::vector<Value> row{Value::Int(static_cast<int64_t>(v % 97)),
                                 Value::Int(static_cast<int64_t>(v % 53))};
          sink.Insert(Row(row.data(), row.size()));
        }
      }
    });
    Relation out("out", 2);
    sink.MergeInto(&out);
    std::vector<std::vector<Value>> rows;
    out.ForEachRow([&rows](Row r) {
      rows.emplace_back(r.begin(), r.end());
    });
    return rows;
  };

  auto serial = staged_rows(1);
  ASSERT_FALSE(serial.empty());
  // Canonical: sorted by Value bits.
  for (size_t i = 1; i < serial.size(); ++i) {
    bool less = false;
    for (size_t c = 0; c < 2 && !less; ++c) {
      if (serial[i - 1][c].bits() != serial[i][c].bits()) {
        EXPECT_LT(serial[i - 1][c].bits(), serial[i][c].bits());
        less = true;
      }
    }
  }
  for (size_t workers : {2u, 4u, 8u}) {
    auto rows = staged_rows(workers);
    ASSERT_EQ(rows.size(), serial.size()) << workers << " workers";
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i], serial[i]) << "slot " << i << " with " << workers
                                    << " workers";
    }
  }
}

TEST(ShardedSink, MergeIntoReportsOnlyRowsNewInTarget) {
  Relation out("out", 1);
  Relation delta("delta", 1);
  std::vector<Value> a{Value::Int(1)};
  std::vector<Value> b{Value::Int(2)};
  out.Insert(MakeRow(a));  // pre-existing

  ShardedSink sink(1);
  sink.Insert(MakeRow(a));
  sink.Insert(MakeRow(b));
  EXPECT_EQ(sink.MergeInto(&out, &delta), 1u);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(delta.size(), 1u);  // only the genuinely new row
  EXPECT_EQ(sink.size(), 0u);   // drained
}

TEST(ShardedSink, AccountsStagedBytesAndReleasesOnMerge) {
  MemoryAccountant accountant;
  ShardedSink sink(2);
  sink.SetAccountant(&accountant);
  std::vector<Value> a{Value::Int(1), Value::Int(2)};
  sink.Insert(MakeRow(a));
  sink.Insert(MakeRow(a));  // duplicate: must not double-charge
  const size_t staged = accountant.bytes();
  EXPECT_GT(staged, 0u);

  Relation out("out", 2);
  out.SetAccountant(&accountant);
  sink.MergeInto(&out);
  // Staging charge released; the relation now carries the row.
  EXPECT_EQ(accountant.bytes(), staged);
  out.SetAccountant(nullptr);
  EXPECT_EQ(accountant.bytes(), 0u);
}

TEST(ShardedSink, ClearReleasesStagedCharge) {
  MemoryAccountant accountant;
  ShardedSink sink(2);
  sink.SetAccountant(&accountant);
  std::vector<Value> a{Value::Int(7), Value::Int(8)};
  sink.Insert(MakeRow(a));
  EXPECT_GT(accountant.bytes(), 0u);
  sink.Clear();
  EXPECT_EQ(accountant.bytes(), 0u);
  EXPECT_EQ(sink.size(), 0u);
}

TEST(ShardedSink, HandlesZeroArity) {
  ShardedSink sink(0);
  EXPECT_TRUE(sink.Insert(Row()));
  EXPECT_FALSE(sink.Insert(Row()));
  Relation out("out", 0);
  EXPECT_EQ(sink.MergeInto(&out), 1u);
  EXPECT_EQ(out.size(), 1u);
}

}  // namespace
}  // namespace seprec
