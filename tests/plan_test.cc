#include "plan/planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "eval/join_plan.h"
#include "plan/cost.h"
#include "plan/stats.h"
#include "storage/database.h"

namespace seprec {
namespace {

// ---------------------------------------------------------------- stats

TEST(Stats, ComputesRowAndDistinctCounts) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"a", "c"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"b", "c"}).ok());
  RelationStats s = db.stats().Get(*db.Find("e"));
  EXPECT_EQ(s.rows, 3u);
  ASSERT_EQ(s.distinct.size(), 2u);
  EXPECT_EQ(s.distinct[0], 2u);  // a, b
  EXPECT_EQ(s.distinct[1], 2u);  // b, c
}

TEST(Stats, EmptyRelationHasZeroEverything) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("e", 2).ok());
  RelationStats s = db.stats().Get(*db.Find("e"));
  EXPECT_EQ(s.rows, 0u);
  EXPECT_EQ(s.distinct[0], 0u);
  EXPECT_EQ(s.distinct[1], 0u);
}

TEST(Stats, CacheRefreshesAfterInsert) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  EXPECT_EQ(db.stats().Get(*db.Find("e")).rows, 1u);
  uint64_t recomputations = db.stats().recomputations();
  // A repeat lookup with an unchanged extent is served from the cache.
  EXPECT_EQ(db.stats().Get(*db.Find("e")).rows, 1u);
  EXPECT_EQ(db.stats().recomputations(), recomputations);
  // An insert changes the fingerprint; the next lookup recomputes.
  ASSERT_TRUE(db.AddFact("e", {"b", "c"}).ok());
  RelationStats s = db.stats().Get(*db.Find("e"));
  EXPECT_EQ(s.rows, 2u);
  EXPECT_EQ(s.distinct[0], 2u);
  EXPECT_GT(db.stats().recomputations(), recomputations);
}

TEST(Stats, CacheRefreshesAfterClear) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  EXPECT_EQ(db.stats().Get(*db.Find("e")).rows, 1u);
  db.Find("e")->Clear();
  EXPECT_EQ(db.stats().Get(*db.Find("e")).rows, 0u);
}

TEST(Stats, EraseAndRestoreSameExtentRecomputes) {
  // Regression: the DRed deletion path (EraseRows, possibly followed by a
  // governor rollback and fresh inserts) can restore the exact (size,
  // slots) extent with DIFFERENT contents. Without the mutation epoch in
  // the fingerprint the catalog served the stale distinct counts.
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"c", "d"}).ok());
  Relation* rel = db.Find("e");
  EXPECT_EQ(db.stats().Get(*rel).distinct[0], 2u);  // a, c

  Relation victims("victims", 2);
  std::vector<Value> row = {db.symbols().Intern("a"),
                            db.symbols().Intern("b")};
  victims.Insert(Row(row.data(), row.size()));
  ASSERT_EQ(rel->EraseRows(victims), 1u);
  rel->TruncateToSlots(0);
  ASSERT_TRUE(db.AddFact("e", {"x", "y"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"x", "z"}).ok());
  // Same size (2) and slot count (2) as the cached entry, new contents.
  RelationStats s = db.stats().Get(*rel);
  EXPECT_EQ(s.rows, 2u);
  EXPECT_EQ(s.distinct[0], 1u);  // x only — must not report the stale 2
  EXPECT_EQ(s.distinct[1], 2u);
}

TEST(Stats, GenerationBumpAloneDoesNotRecompute) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  db.stats().Get(*db.Find("e"));
  uint64_t recomputations = db.stats().recomputations();
  // The stats cache validates by relation fingerprint (size, slots,
  // arity), not the database generation: bumping the generation without
  // touching the extent serves the cached entry.
  db.BumpGeneration();
  db.stats().Get(*db.Find("e"));
  EXPECT_EQ(db.stats().recomputations(), recomputations);
}

// ----------------------------------------------------------- cost model

TEST(CostModel, EmptyRelationCostsAsOneRow) {
  RelationStats empty{0, {0, 0}};
  EXPECT_EQ(CostModel::EffectiveRows(empty), 1.0);
}

TEST(CostModel, IndexedProbeBeatsFullScanWhenSelective) {
  RelationStats s{1000, {1000, 10}};
  double scan = CostModel::ScanCost(s, {}, 1.0, /*indexed=*/true);
  double probe = CostModel::ScanCost(s, {0}, 1.0, /*indexed=*/true);
  EXPECT_GT(scan, probe);
  // Without indexes every scan is a full walk, bound columns or not.
  EXPECT_EQ(CostModel::ScanCost(s, {0}, 1.0, /*indexed=*/false), scan);
}

// -------------------------------------------------------------- planner

PlannedBody PlanFor(const std::string& rule_text, Database* db,
                    JoinOrderMode mode) {
  Program p = ParseProgramOrDie(rule_text);
  const Rule& rule = p.rules[0];
  std::vector<const Relation*> relations(rule.body.size(), nullptr);
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Literal& lit = rule.body[i];
    if (lit.kind == Literal::Kind::kAtom && !lit.negated) {
      relations[i] = db->Find(lit.atom.predicate);
    }
  }
  return PlanJoinOrder(rule, relations, &db->stats(), mode,
                       /*indexed=*/true);
}

// The micro_plan shape: the textual order starts with a cross product;
// the planner must place the connecting atom between the two big scans.
TEST(Planner, AvoidsCrossProduct) {
  Database db;
  for (int i = 0; i < 20; ++i) {
    std::string n = std::to_string(i);
    ASSERT_TRUE(db.AddFact("big_a", {"x" + n, "y" + n}).ok());
    ASSERT_TRUE(db.AddFact("big_b", {"z" + n, "w" + n}).ok());
    ASSERT_TRUE(db.AddFact("link", {"y" + n, "z" + n}).ok());
  }
  PlannedBody planned =
      PlanFor("r(X, W) :- big_a(X, Y), big_b(Z, W), link(Y, Z).", &db,
              JoinOrderMode::kCostBased);
  EXPECT_EQ(planned.mode, "cbo");
  ASSERT_EQ(planned.atom_order.size(), 3u);
  // Whatever end the planner starts from, link (index 2) must come
  // second — scanning big_a then big_b (or vice versa) is the cross
  // product.
  EXPECT_EQ(planned.atom_order[1], 2u);

  PlannedBody textual =
      PlanFor("r(X, W) :- big_a(X, Y), big_b(Z, W), link(Y, Z).", &db,
              JoinOrderMode::kTextual);
  EXPECT_EQ(textual.mode, "textual");
  EXPECT_EQ(textual.atom_order, (std::vector<size_t>{0, 1, 2}));
  // The DP order must be estimated cheaper than the cross product.
  EXPECT_LT(planned.cost, textual.cost);
}

TEST(Planner, GreedyModeDefersToCompileTimeHeuristic) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  PlannedBody greedy =
      PlanFor("h(X, Z) :- e(X, Y), e(Y, Z).", &db, JoinOrderMode::kGreedy);
  EXPECT_EQ(greedy.mode, "greedy");
  EXPECT_TRUE(greedy.atom_order.empty());
}

TEST(Planner, PlansAreDeterministic) {
  Database db;
  for (int i = 0; i < 8; ++i) {
    std::string n = std::to_string(i);
    ASSERT_TRUE(db.AddFact("e", {"a" + n, "b" + n}).ok());
    ASSERT_TRUE(db.AddFact("f", {"b" + n, "c" + n}).ok());
  }
  const std::string rule = "h(X, Z) :- e(X, Y), f(Y, Z).";
  PlannedBody first = PlanFor(rule, &db, JoinOrderMode::kCostBased);
  for (int i = 0; i < 5; ++i) {
    PlannedBody again = PlanFor(rule, &db, JoinOrderMode::kCostBased);
    EXPECT_EQ(again.atom_order, first.atom_order);
    EXPECT_EQ(again.cost, first.cost);
  }
}

TEST(Planner, TextualModeExecutesSourceOrder) {
  // Compile under kTextual and check the debug plan scans the atoms in
  // source order even though the second atom is the cheaper start.
  Database db;
  ASSERT_TRUE(db.AddFact("big", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("big", {"b", "c"}).ok());
  ASSERT_TRUE(db.AddFact("big", {"c", "d"}).ok());
  ASSERT_TRUE(db.AddFact("tiny", {"a"}).ok());
  Program p = ParseProgramOrDie("h(X, Y) :- big(X, Y), tiny(X).");
  PlanOptions options;
  options.join_order = JoinOrderMode::kTextual;
  StatusOr<RulePlan> plan = RulePlan::Compile(p.rules[0], &db, options);
  ASSERT_TRUE(plan.ok());
  std::string debug = plan->DebugString();
  EXPECT_LT(debug.find("big"), debug.find("tiny")) << debug;
  EXPECT_EQ(plan->plan_info().mode, "textual");
}

// ---------------------------------------------------- metamorphic check

// Random join orders of the same body must produce bit-identical results:
// evaluate a permuted program both cost-based and with --no-cbo semantics
// and compare against the unpermuted semi-naive reference output.
TEST(Planner, MetamorphicJoinOrderInvariance) {
  const std::string body_atoms[] = {"e(X, Y)", "f(Y, Z)", "g(Z, W)",
                                    "h(W, V)"};
  auto make_program = [&](const std::vector<size_t>& perm) {
    std::string rule = "q(X, V) :- ";
    for (size_t i = 0; i < perm.size(); ++i) {
      rule += body_atoms[perm[i]];
      rule += i + 1 < perm.size() ? std::string(" & ") : std::string(".\n");
    }
    return rule;
  };

  auto populate = [](Database* db) {
    for (int i = 0; i < 12; ++i) {
      std::string n = std::to_string(i);
      std::string m = std::to_string((i * 7 + 3) % 12);
      ASSERT_TRUE(db->AddFact("e", {"a" + n, "b" + m}).ok());
      ASSERT_TRUE(db->AddFact("f", {"b" + n, "c" + m}).ok());
      ASSERT_TRUE(db->AddFact("g", {"c" + n, "d" + m}).ok());
      ASSERT_TRUE(db->AddFact("h", {"d" + n, "e" + m}).ok());
    }
  };

  auto answers = [&](const std::vector<size_t>& perm, bool no_cbo) {
    Database db;
    populate(&db);
    StatusOr<QueryProcessor> qp =
        QueryProcessor::Create(ParseProgramOrDie(make_program(perm)));
    SEPREC_CHECK(qp.ok());
    FixpointOptions options;
    options.no_cbo = no_cbo;
    StatusOr<QueryResult> result =
        qp->Answer(ParseAtomOrDie("q(X, V)"), &db, Strategy::kSemiNaive,
                   options);
    SEPREC_CHECK(result.ok());
    std::vector<std::string> out = result->answer.ToStrings(db.symbols());
    std::sort(out.begin(), out.end());
    return out;
  };

  std::vector<std::string> reference = answers({0, 1, 2, 3}, false);
  ASSERT_FALSE(reference.empty());

  std::mt19937 rng(20260808);  // fixed seed: failures must reproduce
  std::vector<size_t> perm = {0, 1, 2, 3};
  for (int trial = 0; trial < 6; ++trial) {
    std::shuffle(perm.begin(), perm.end(), rng);
    EXPECT_EQ(answers(perm, /*no_cbo=*/false), reference)
        << "cbo, trial " << trial;
    EXPECT_EQ(answers(perm, /*no_cbo=*/true), reference)
        << "textual, trial " << trial;
  }
}

}  // namespace
}  // namespace seprec
