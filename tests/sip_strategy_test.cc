// SIP strategies for the Magic rewrite: left-to-right (the paper's
// display) vs most-bound-first.
#include <gtest/gtest.h>

#include "core/query.h"
#include "datalog/parser.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "magic/engine.h"

namespace seprec {
namespace {

Answer ReferenceAnswer(const Program& program, const Atom& query,
                       Database* db) {
  Status status = EvaluateSemiNaive(program, db);
  SEPREC_CHECK(status.ok());
  return SelectMatching(*db->Find(query.predicate), query, db->symbols());
}

TEST(SipStrategy, SecondColumnQueryKeepsNarrowAdornment) {
  // tc(X, c)? with left-to-right SIP: edge(X, W) is processed first, so
  // the recursive occurrence widens to tc_bb. Most-bound-first keeps the
  // recursion in tc_fb.
  Atom query = ParseAtomOrDie("tc(X, v7)");
  auto ltr = MagicTransform(TransitiveClosureProgram(), query);
  ASSERT_TRUE(ltr.ok());
  EXPECT_TRUE(ltr->adorned_predicates.count("tc_bb")) << "LtoR widens";
  MagicOptions mbf;
  mbf.sip = SipStrategy::kMostBoundFirst;
  auto greedy = MagicTransform(TransitiveClosureProgram(), query, mbf);
  ASSERT_TRUE(greedy.ok());
  EXPECT_FALSE(greedy->adorned_predicates.count("tc_bb"))
      << greedy->program.ToString();
  EXPECT_TRUE(greedy->adorned_predicates.count("tc_fb"));
}

TEST(SipStrategy, BothStrategiesAgreeOnAnswers) {
  for (const char* q : {"tc(v2, Y)", "tc(X, v7)", "tc(v1, v5)"}) {
    Atom query = ParseAtomOrDie(q);
    Database db1, db2, db3;
    for (Database* db : {&db1, &db2, &db3}) {
      MakeChain(db, "edge", "v", 9);
    }
    auto ltr = EvaluateWithMagic(TransitiveClosureProgram(), query, &db1);
    ASSERT_TRUE(ltr.ok());
    MagicOptions mbf;
    mbf.sip = SipStrategy::kMostBoundFirst;
    auto greedy =
        EvaluateWithMagic(TransitiveClosureProgram(), query, &db2, {}, mbf);
    ASSERT_TRUE(greedy.ok()) << q << ": " << greedy.status().ToString();
    Answer expected =
        ReferenceAnswer(TransitiveClosureProgram(), query, &db3);
    EXPECT_EQ(ltr->answer, expected) << q;
    EXPECT_EQ(greedy->answer, expected) << q;
  }
}

TEST(SipStrategy, MostBoundFirstShrinksMagicRelations) {
  // Query binds the TARGET node of a long chain. Left-to-right widens the
  // recursion to tc_bb, whose magic relation holds one (source, target)
  // pair per edge source (~n binary tuples); most-bound-first keeps the
  // fb adornment whose magic relation is the single target constant.
  Database db1, db2;
  MakeChain(&db1, "edge", "v", 200);
  MakeChain(&db2, "edge", "v", 200);
  Atom query = ParseAtomOrDie("tc(X, v190)");
  auto ltr = EvaluateWithMagic(TransitiveClosureProgram(), query, &db1);
  MagicOptions mbf;
  mbf.sip = SipStrategy::kMostBoundFirst;
  auto greedy =
      EvaluateWithMagic(TransitiveClosureProgram(), query, &db2, {}, mbf);
  ASSERT_TRUE(ltr.ok());
  ASSERT_TRUE(greedy.ok());
  EXPECT_EQ(ltr->answer, greedy->answer);
  EXPECT_EQ(greedy->answer.size(), 190u);
  // Structural focus: the binary magic_tc_bb relation carries ~n tuples
  // under LtoR; the greedy rewrite's magic relation is a single seed.
  ASSERT_TRUE(ltr->stats.relation_sizes.count("magic_tc_bb"));
  EXPECT_GE(ltr->stats.relation_sizes.at("magic_tc_bb"), 190u);
  ASSERT_TRUE(greedy->stats.relation_sizes.count("magic_tc_fb"));
  EXPECT_EQ(greedy->stats.relation_sizes.at("magic_tc_fb"), 1u);
  EXPECT_LE(greedy->stats.TotalRelationSize(),
            ltr->stats.TotalRelationSize());
}

TEST(SipStrategy, AgreesOnRandomGraphsAndSameGeneration) {
  MagicOptions mbf;
  mbf.sip = SipStrategy::kMostBoundFirst;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Database db1, db2;
    MakeRandomGraph(&db1, "edge", "v", 20, 40, seed);
    MakeRandomGraph(&db2, "edge", "v", 20, 40, seed);
    Atom query = ParseAtomOrDie("tc(X, v3)");
    auto greedy =
        EvaluateWithMagic(TransitiveClosureProgram(), query, &db1, {}, mbf);
    ASSERT_TRUE(greedy.ok());
    EXPECT_EQ(greedy->answer,
              ReferenceAnswer(TransitiveClosureProgram(), query, &db2));
  }
  Database db1, db2;
  MakeSameGenerationData(&db1, 2, 4);
  MakeSameGenerationData(&db2, 2, 4);
  Atom query = ParseAtomOrDie("sg(X, s9)");
  auto greedy =
      EvaluateWithMagic(SameGenerationProgram(), query, &db1, {}, mbf);
  ASSERT_TRUE(greedy.ok());
  EXPECT_EQ(greedy->answer,
            ReferenceAnswer(SameGenerationProgram(), query, &db2));
}

}  // namespace
}  // namespace seprec
