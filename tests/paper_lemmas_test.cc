// The paper's Section 4 lemmas as CI-enforced assertions (the benches
// print the same quantities; these tests make regressions fail the build).
#include <gtest/gtest.h>

#include <cmath>

#include "core/compiler.h"
#include "datalog/parser.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "util/string_util.h"

namespace seprec {
namespace {

// Lemma 4.1: on a full selection whose class has width w over an arity-k
// separable recursion, every relation Separable constructs has size at
// most n^max(w, k-w) (n = distinct constants in the base relations).
TEST(Lemma41, WidthBoundHolds) {
  struct Config {
    size_t k, w;
  };
  for (Config cfg : {Config{2, 1}, Config{3, 1}, Config{3, 2}, Config{4, 2}}) {
    // t(X1..Xk) :- a(X1..Xw, W1..Ww) & t(W1..Ww, X_{w+1}..Xk).
    std::string head = "X1";
    for (size_t i = 2; i <= cfg.k; ++i) head += StrCat(", X", i);
    std::string a_args;
    for (size_t i = 1; i <= cfg.w; ++i) {
      if (i > 1) a_args += ", ";
      a_args += StrCat("X", i);
    }
    for (size_t i = 1; i <= cfg.w; ++i) a_args += StrCat(", W", i);
    std::string body_t;
    for (size_t i = 1; i <= cfg.w; ++i) {
      if (i > 1) body_t += ", ";
      body_t += StrCat("W", i);
    }
    for (size_t i = cfg.w + 1; i <= cfg.k; ++i) body_t += StrCat(", X", i);
    Program program = ParseProgramOrDie(
        StrCat("t(", head, ") :- a(", a_args, ") & t(", body_t, ").\n",
               "t(", head, ") :- t0(", head, ").\n"));
    auto qp = QueryProcessor::Create(program);
    ASSERT_TRUE(qp.ok());

    const size_t n = 6;
    Database db;
    // Chain over w-tuples plus a full cross-product exit relation so the
    // bound is exercised from both sides.
    Relation* a = *db.CreateRelation("a", 2 * cfg.w);
    for (size_t i = 0; i + 1 < n; ++i) {
      std::vector<Value> row;
      for (size_t c = 0; c < cfg.w; ++c) {
        row.push_back(db.symbols().Intern(NodeName("c", i)));
      }
      for (size_t c = 0; c < cfg.w; ++c) {
        row.push_back(db.symbols().Intern(NodeName("c", i + 1)));
      }
      a->Insert(Row(row.data(), row.size()));
    }
    MakeCrossProduct(&db, "t0", "c", cfg.k, n);

    Atom query;
    query.predicate = "t";
    for (size_t i = 0; i < cfg.w; ++i) query.args.push_back(Term::Sym("c0"));
    for (size_t i = cfg.w; i < cfg.k; ++i) {
      query.args.push_back(Term::Var(StrCat("Y", i)));
    }
    auto result = qp->Answer(query, &db, Strategy::kSeparable);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    double bound = std::pow(
        static_cast<double>(n),
        static_cast<double>(std::max(cfg.w, cfg.k - cfg.w)));
    for (const auto& [name, size] : result->stats.relation_sizes) {
      if (name == "t0" || name == "a") continue;  // base data
      EXPECT_LE(static_cast<double>(size), bound)
          << "k=" << cfg.k << " w=" << cfg.w << " relation " << name;
    }
  }
}

// Lemma 4.2's witness: Magic materialises exactly n^k adorned-t tuples.
TEST(Lemma42, MagicIsNToTheK) {
  for (size_t k : {1u, 2u, 3u}) {
    const size_t n = 5;
    Program program = SpkProgram(2, k);
    auto qp = QueryProcessor::Create(program);
    ASSERT_TRUE(qp.ok());
    Database db;
    MakeLemma42Data(&db, 2, k, n);
    auto result = qp->Answer(FirstColumnQuery("t", k, "c0"), &db,
                             Strategy::kMagic);
    ASSERT_TRUE(result.ok());
    std::string adorned = StrCat("t_b", std::string(k - 1, 'f'));
    size_t expected = 1;
    for (size_t i = 0; i < k; ++i) expected *= n;
    EXPECT_EQ(result->stats.relation_sizes.at(adorned), expected)
        << "k=" << k;

    // Separable on the same data peaks at n^(k-1).
    Database sep_db;
    MakeLemma42Data(&sep_db, 2, k, n);
    auto sep = qp->Answer(FirstColumnQuery("t", k, "c0"), &sep_db,
                          Strategy::kSeparable);
    ASSERT_TRUE(sep.ok());
    EXPECT_LE(sep->stats.max_relation_size,
              std::max(expected / n, n))
        << "k=" << k;
  }
}

// Lemma 4.3's witness: Counting's count relation is (p^n - 1)/(p - 1)
// for p > 1 identical rule relations, n for p = 1.
TEST(Lemma43, CountingIsPToTheN) {
  for (size_t p : {1u, 2u, 3u}) {
    const size_t n = 7;
    Program program = SpkProgram(p, 2);
    auto qp = QueryProcessor::Create(program);
    ASSERT_TRUE(qp.ok());
    Database db;
    MakeLemma43Data(&db, p, 2, n);
    auto result = qp->Answer(FirstColumnQuery("t", 2, "c0"), &db,
                             Strategy::kCounting);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    size_t expected = 0;
    if (p == 1) {
      expected = n;
    } else {
      size_t power = 1;
      for (size_t i = 0; i < n; ++i) power *= p;
      expected = (power - 1) / (p - 1);
    }
    EXPECT_EQ(result->stats.relation_sizes.at("count_t"), expected)
        << "p=" << p;
  }
}

// The Section 4 worked examples, exactly.
TEST(Section4, Example11CountIsTwoToTheN) {
  const size_t n = 10;
  auto qp = QueryProcessor::Create(Example11Program());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeExample11Data(&db, n);
  auto counting = qp->Answer(FirstColumnQuery("buys", 2, "a0"), &db,
                             Strategy::kCounting);
  ASSERT_TRUE(counting.ok());
  EXPECT_EQ(counting->stats.relation_sizes.at("count_buys"),
            (size_t{1} << n) - 1);

  Database sep_db;
  MakeExample11Data(&sep_db, n);
  auto sep = qp->Answer(FirstColumnQuery("buys", 2, "a0"), &sep_db,
                        Strategy::kSeparable);
  ASSERT_TRUE(sep.ok());
  EXPECT_LE(sep->stats.max_relation_size, n);
}

TEST(Section4, Example12MagicIsNSquared) {
  const size_t n = 12;
  auto qp = QueryProcessor::Create(Example12Program());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeExample12Data(&db, n);
  auto magic = qp->Answer(FirstColumnQuery("buys", 2, "a0"), &db,
                          Strategy::kMagic);
  ASSERT_TRUE(magic.ok());
  EXPECT_EQ(magic->stats.relation_sizes.at("buys_bf"), n * n);

  Database sep_db;
  MakeExample12Data(&sep_db, n);
  auto sep = qp->Answer(FirstColumnQuery("buys", 2, "a0"), &sep_db,
                        Strategy::kSeparable);
  ASSERT_TRUE(sep.ok());
  EXPECT_LE(sep->stats.max_relation_size, n);
  EXPECT_EQ(sep->answer, magic->answer);
}

}  // namespace
}  // namespace seprec
