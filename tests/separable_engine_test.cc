#include "separable/engine.h"

#include <gtest/gtest.h>

#include "core/query.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "gen/generators.h"
#include "gen/workloads.h"

namespace seprec {
namespace {

Answer ReferenceAnswer(const Program& program, const Atom& query,
                       Database* db) {
  Status status = EvaluateSemiNaive(program, db);
  SEPREC_CHECK(status.ok());
  const Relation* rel = db->Find(query.predicate);
  SEPREC_CHECK(rel != nullptr);
  return SelectMatching(*rel, query, db->symbols());
}

TEST(SelectionClassification, Definitions) {
  auto sep11 = AnalyzeSeparable(Example11Program(), "buys");
  ASSERT_TRUE(sep11.ok());
  // Column 0 is the class, column 1 persistent: any single constant is a
  // full selection (Example 2.4's remark).
  EXPECT_EQ(ClassifySelection(*sep11, ParseAtomOrDie("buys(tom, Y)")),
            SelectionKind::kFull);
  EXPECT_EQ(ClassifySelection(*sep11, ParseAtomOrDie("buys(X, prod)")),
            SelectionKind::kFull);
  EXPECT_EQ(ClassifySelection(*sep11, ParseAtomOrDie("buys(X, Y)")),
            SelectionKind::kNoConstants);

  auto sep24 = AnalyzeSeparable(Example24Program(), "t");
  ASSERT_TRUE(sep24.ok());
  // t(c, Y, Z)? binds one of class {0,1}'s two columns: partial.
  EXPECT_EQ(ClassifySelection(*sep24, ParseAtomOrDie("t(c, Y, Z)")),
            SelectionKind::kPartial);
  EXPECT_EQ(ClassifySelection(*sep24, ParseAtomOrDie("t(c, d, Z)")),
            SelectionKind::kFull);
  EXPECT_EQ(ClassifySelection(*sep24, ParseAtomOrDie("t(X, Y, c)")),
            SelectionKind::kFull);
}

TEST(SeparableEngine, Example11FullSelection) {
  Database db;
  MakeExample11Data(&db, 10);
  auto run = EvaluateWithSeparable(Example11Program(),
                                   ParseAtomOrDie("buys(a0, Y)"), &db);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->answer.size(), 1u);
  EXPECT_EQ(run->answer.ToStrings(db.symbols())[0], "(a0, b)");
  EXPECT_FALSE(run->used_partial_rewrite);
  EXPECT_EQ(run->schema_runs, 1u);
}

TEST(SeparableEngine, Example11RelationsAreLinear) {
  // Lemma 4.1 / Section 4: only monadic relations, O(n) tuples.
  for (size_t n : {8u, 16u, 32u}) {
    Database db;
    MakeExample11Data(&db, n);
    auto run = EvaluateWithSeparable(Example11Program(),
                                     ParseAtomOrDie("buys(a0, Y)"), &db);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->stats.relation_sizes.at("seen_1"), n);
    EXPECT_LE(run->stats.max_relation_size, n);
  }
}

TEST(SeparableEngine, Example11PersistentColumnSelection) {
  // buys(X, b)? binds the persistent column: the dummy-class path.
  Database db1, db2;
  MakeExample11Data(&db1, 10);
  MakeExample11Data(&db2, 10);
  Atom query = ParseAtomOrDie("buys(X, b)");
  auto run = EvaluateWithSeparable(Example11Program(), query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  Answer expected = ReferenceAnswer(Example11Program(), query, &db2);
  EXPECT_EQ(run->answer, expected);
  // Everyone a0..a9 buys b.
  EXPECT_EQ(run->answer.size(), 10u);
}

TEST(SeparableEngine, Example12TwoClasses) {
  Database db1, db2;
  MakeExample12Data(&db1, 8);
  MakeExample12Data(&db2, 8);
  Atom query = ParseAtomOrDie("buys(a0, Y)");
  auto run = EvaluateWithSeparable(Example12Program(), query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  Answer expected = ReferenceAnswer(Example12Program(), query, &db2);
  EXPECT_EQ(run->answer, expected);
  // a0 buys b7 (via friends) and everything cheaper: b0..b7.
  EXPECT_EQ(run->answer.size(), 8u);
}

TEST(SeparableEngine, Example12StaysLinear) {
  for (size_t n : {8u, 16u, 32u}) {
    Database db;
    MakeExample12Data(&db, n);
    auto run = EvaluateWithSeparable(Example12Program(),
                                     ParseAtomOrDie("buys(a0, Y)"), &db);
    ASSERT_TRUE(run.ok());
    // All carry/seen relations are monadic with at most n entries.
    EXPECT_LE(run->stats.max_relation_size, n);
  }
}

TEST(SeparableEngine, SecondClassSelection) {
  // Bind the cheaper-class column instead: buys(X, b0)?.
  Database db1, db2;
  MakeExample12Data(&db1, 6);
  MakeExample12Data(&db2, 6);
  Atom query = ParseAtomOrDie("buys(X, b0)");
  auto run = EvaluateWithSeparable(Example12Program(), query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer, ReferenceAnswer(Example12Program(), query, &db2));
}

TEST(SeparableEngine, TerminatesOnCyclicData) {
  // Lemma 3.4: Separable terminates on cyclic data (where Henschen-Naqvi
  // style methods loop).
  Database db1, db2;
  MakeCycle(&db1, "edge", "v", 6);
  MakeCycle(&db2, "edge", "v", 6);
  Atom query = ParseAtomOrDie("tc(v2, Y)");
  auto run = EvaluateWithSeparable(TransitiveClosureProgram(), query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer,
            ReferenceAnswer(TransitiveClosureProgram(), query, &db2));
  EXPECT_EQ(run->answer.size(), 6u);
}

TEST(SeparableEngine, BothColumnsBoundBooleanQuery) {
  Database db;
  MakeChain(&db, "edge", "v", 8);
  auto yes = EvaluateWithSeparable(TransitiveClosureProgram(),
                                   ParseAtomOrDie("tc(v1, v6)"), &db);
  ASSERT_TRUE(yes.ok()) << yes.status().ToString();
  EXPECT_EQ(yes->answer.size(), 1u);
  Database db2;
  MakeChain(&db2, "edge", "v", 8);
  auto no = EvaluateWithSeparable(TransitiveClosureProgram(),
                                  ParseAtomOrDie("tc(v6, v1)"), &db2);
  ASSERT_TRUE(no.ok());
  EXPECT_TRUE(no->answer.empty());
}

TEST(SeparableEngine, Arity1Recursion) {
  Program p = ParseProgramOrDie(
      "reach(X) :- edge(Y, X) & reach(Y).\n"
      "reach(X) :- source(X).");
  Database db;
  MakeChain(&db, "edge", "v", 6);
  MakeFact(&db, "source", {"v0"});
  // reach(v4)? — boolean membership through a unary recursion.
  auto run = EvaluateWithSeparable(p, ParseAtomOrDie("reach(v4)"), &db);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer.size(), 1u);
}

TEST(SeparableEngine, RequiresSelectionConstant) {
  Database db;
  MakeExample11Data(&db, 4);
  auto run = EvaluateWithSeparable(Example11Program(),
                                   ParseAtomOrDie("buys(X, Y)"), &db);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(SeparableEngine, ConstantAbsentFromDatabase) {
  Database db;
  MakeExample11Data(&db, 4);
  auto run = EvaluateWithSeparable(Example11Program(),
                                   ParseAtomOrDie("buys(stranger, Y)"), &db);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->answer.empty());
}

TEST(SeparableEngine, EmptyExitRelation) {
  Database db;
  MakeChain(&db, "friend", "a", 5);
  MakeChain(&db, "idol", "a", 5);
  ASSERT_TRUE(db.CreateRelation("perfectFor", 2).ok());
  auto run = EvaluateWithSeparable(Example11Program(),
                                   ParseAtomOrDie("buys(a0, Y)"), &db);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->answer.empty());
  // Phase 1 still walked the friend/idol closure.
  EXPECT_EQ(run->stats.relation_sizes.at("seen_1"), 5u);
}

TEST(SeparableEngine, PartialSelectionExample24) {
  // The paper's Example 2.4: t(c, Y, Z)? binds half of class {0,1}.
  for (size_t n : {3u, 5u, 8u}) {
    Database db1, db2;
    MakeExample24Data(&db1, n);
    MakeExample24Data(&db2, n);
    Atom query = ParseAtomOrDie("t(x0, Y, Z)");
    auto run = EvaluateWithSeparable(Example24Program(), query, &db1);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->used_partial_rewrite);
    EXPECT_GE(run->schema_runs, 1u);
    Answer expected = ReferenceAnswer(Example24Program(), query, &db2);
    EXPECT_EQ(run->answer, expected) << "n=" << n;
    EXPECT_FALSE(run->answer.empty());
  }
}

TEST(SeparableEngine, PartialSelectionSecondComponent) {
  // Bind column 1 instead of column 0: still partial on class {0,1}.
  Database db1, db2;
  MakeExample24Data(&db1, 5);
  MakeExample24Data(&db2, 5);
  Atom query = ParseAtomOrDie("t(X, y0, Z)");
  auto run = EvaluateWithSeparable(Example24Program(), query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer, ReferenceAnswer(Example24Program(), query, &db2));
}

TEST(SeparableEngine, FullSelectionOnWideClass) {
  // Binding both columns of class {0,1} is full.
  Database db1, db2;
  MakeExample24Data(&db1, 5);
  MakeExample24Data(&db2, 5);
  Atom query = ParseAtomOrDie("t(x0, y0, Z)");
  auto run = EvaluateWithSeparable(Example24Program(), query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(run->used_partial_rewrite);
  EXPECT_EQ(run->answer, ReferenceAnswer(Example24Program(), query, &db2));
}

TEST(SeparableEngine, ThreeClassesWalkBothPhases) {
  Program p = ParseProgramOrDie(
      "t(A, B, C) :- f(A, W) & t(W, B, C).\n"
      "t(A, B, C) :- g(B, W) & t(A, W, C).\n"
      "t(A, B, C) :- h(C, W) & t(A, B, W).\n"
      "t(A, B, C) :- t0(A, B, C).");
  Database db1, db2;
  for (Database* db : {&db1, &db2}) {
    MakeChain(db, "f", "p", 4);
    MakeChain(db, "g", "q", 4);
    MakeChain(db, "h", "r", 4);
    MakeFact(db, "t0", {"p3", "q3", "r3"});
  }
  Atom query = ParseAtomOrDie("t(p0, Y, Z)");
  auto run = EvaluateWithSeparable(p, query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  Answer expected = ReferenceAnswer(p, query, &db2);
  EXPECT_EQ(run->answer, expected);
  // g and h walk backwards from q3/r3: 4*4 combinations.
  EXPECT_EQ(run->answer.size(), 16u);
}

TEST(SeparableEngine, ExtraConstantActsAsPostFilter) {
  // Query binds class column AND the persistent column.
  Database db1, db2;
  MakeExample11Data(&db1, 6);
  MakeExample11Data(&db2, 6);
  Atom query = ParseAtomOrDie("buys(a0, b)");
  auto run = EvaluateWithSeparable(Example11Program(), query, &db1);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->answer, ReferenceAnswer(Example11Program(), query, &db2));
  EXPECT_EQ(run->answer.size(), 1u);
}

TEST(SeparableEngine, MultipleExitRules) {
  Program p = ParseProgramOrDie(
      "t(X, Y) :- e(X, W) & t(W, Y).\n"
      "t(X, Y) :- base1(X, Y).\n"
      "t(X, Y) :- base2(X, Y).");
  Database db1, db2;
  for (Database* db : {&db1, &db2}) {
    MakeChain(db, "e", "v", 5);
    MakeFact(db, "base1", {"v4", "endA"});
    MakeFact(db, "base2", {"v2", "endB"});
  }
  Atom query = ParseAtomOrDie("t(v0, Y)");
  auto run = EvaluateWithSeparable(p, query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer, ReferenceAnswer(p, query, &db2));
  EXPECT_EQ(run->answer.size(), 2u);
}

TEST(SeparableEngine, ExitRuleWithJoinBody) {
  Program p = ParseProgramOrDie(
      "t(X, Y) :- e(X, W) & t(W, Y).\n"
      "t(X, Y) :- owns(X, U) & madeBy(U, Y).");
  Database db1, db2;
  for (Database* db : {&db1, &db2}) {
    MakeChain(db, "e", "v", 4);
    MakeFact(db, "owns", {"v3", "widget"});
    MakeFact(db, "madeBy", {"widget", "acme"});
  }
  Atom query = ParseAtomOrDie("t(v0, Y)");
  auto run = EvaluateWithSeparable(p, query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer.size(), 1u);
  EXPECT_EQ(run->answer, ReferenceAnswer(p, query, &db2));
}

TEST(SeparableEngine, SupportIdbMaterialised) {
  Program p = ParseProgramOrDie(
      "e(X, Y) :- raw(X, Y).\n"
      "e(X, Y) :- raw(Y, X).\n"
      "t(X, Y) :- e(X, W) & t(W, Y).\n"
      "t(X, Y) :- e(X, Y).");
  Database db1, db2;
  MakeChain(&db1, "raw", "v", 5);
  MakeChain(&db2, "raw", "v", 5);
  Atom query = ParseAtomOrDie("t(v2, Y)");
  auto run = EvaluateWithSeparable(p, query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer, ReferenceAnswer(p, query, &db2));
  // Undirected reachability from v2 covers every node.
  EXPECT_EQ(run->answer.size(), 5u);
}

TEST(SeparableEngine, RandomGraphAgreement) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Database db1, db2;
    MakeRandomGraph(&db1, "friend", "p", 15, 25, seed);
    MakeRandomGraph(&db1, "idol", "p", 15, 20, seed + 100);
    MakeRandomGraph(&db1, "perfectFor", "p", 15, 10, seed + 200);
    MakeRandomGraph(&db2, "friend", "p", 15, 25, seed);
    MakeRandomGraph(&db2, "idol", "p", 15, 20, seed + 100);
    MakeRandomGraph(&db2, "perfectFor", "p", 15, 10, seed + 200);
    Atom query = ParseAtomOrDie("buys(p0, Y)");
    auto run = EvaluateWithSeparable(Example11Program(), query, &db1);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->answer, ReferenceAnswer(Example11Program(), query, &db2))
        << "seed=" << seed;
  }
}

TEST(SeparableEngine, StatsNameTheSchemaRelations) {
  Database db;
  MakeExample12Data(&db, 6);
  auto run = EvaluateWithSeparable(Example12Program(),
                                   ParseAtomOrDie("buys(a0, Y)"), &db);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->stats.relation_sizes.count("carry_1"));
  EXPECT_TRUE(run->stats.relation_sizes.count("seen_1"));
  EXPECT_TRUE(run->stats.relation_sizes.count("carry_2"));
  EXPECT_TRUE(run->stats.relation_sizes.count("seen_2"));
  EXPECT_EQ(run->stats.algorithm, "separable");
  EXPECT_GT(run->stats.iterations, 0u);
}

TEST(ExplainSchema, Figure3Shape) {
  auto sep = AnalyzeSeparable(Example11Program(), "buys");
  ASSERT_TRUE(sep.ok());
  auto text = ExplainSchema(*sep, ParseAtomOrDie("buys(tom, Y)"));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("carry_1(tom);"), std::string::npos) << *text;
  EXPECT_NE(text->find("while carry_1 not empty do"), std::string::npos);
  EXPECT_NE(text->find("friend"), std::string::npos);
  EXPECT_NE(text->find("idol"), std::string::npos);
  EXPECT_NE(text->find("ans("), std::string::npos);
  // Example 1.1 has no second-phase loop (single class).
  EXPECT_EQ(text->find("while carry_2"), std::string::npos);
}

TEST(ExplainSchema, Figure4Shape) {
  auto sep = AnalyzeSeparable(Example12Program(), "buys");
  ASSERT_TRUE(sep.ok());
  auto text = ExplainSchema(*sep, ParseAtomOrDie("buys(tom, Y)"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("while carry_1 not empty do"), std::string::npos);
  EXPECT_NE(text->find("while carry_2 not empty do"), std::string::npos);
  EXPECT_NE(text->find("cheaper"), std::string::npos);
}

TEST(ExplainSchema, DummyClassForPersistentSelection) {
  auto sep = AnalyzeSeparable(Example11Program(), "buys");
  ASSERT_TRUE(sep.ok());
  auto text = ExplainSchema(*sep, ParseAtomOrDie("buys(X, prod)"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("seen_1(prod)"), std::string::npos) << *text;
  EXPECT_NE(text->find("dummy equivalence class"), std::string::npos);
}

TEST(ExplainSchema, RejectsPartialAndUnbound) {
  auto sep = AnalyzeSeparable(Example24Program(), "t");
  ASSERT_TRUE(sep.ok());
  EXPECT_FALSE(ExplainSchema(*sep, ParseAtomOrDie("t(c, Y, Z)")).ok());
  EXPECT_FALSE(ExplainSchema(*sep, ParseAtomOrDie("t(X, Y, Z)")).ok());
}

}  // namespace
}  // namespace seprec
