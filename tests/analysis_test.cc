#include "datalog/analysis.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "gen/workloads.h"

namespace seprec {
namespace {

TEST(Analysis, IdbEdbSplit) {
  Program p = ParseProgramOrDie("t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, W), t(W, Y).");
  auto info = ProgramInfo::Analyze(p);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->IsIdb("t"));
  EXPECT_FALSE(info->IsIdb("e"));
  EXPECT_NE(info->Find("e"), nullptr);
  EXPECT_EQ(info->Find("e")->arity, 2u);
}

TEST(Analysis, ArityMismatchRejected) {
  Program p = ParseProgramOrDie("p(a).\nq(X) :- p(X, X).");
  EXPECT_FALSE(ProgramInfo::Analyze(p).ok());
}

TEST(Analysis, RecursiveAndLinear) {
  Program p = Example11Program();
  auto info = ProgramInfo::Analyze(p);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->IsRecursive("buys"));
  EXPECT_TRUE(info->IsLinearRecursive("buys"));
  EXPECT_FALSE(info->IsRecursive("friend"));
}

TEST(Analysis, NonLinearDetected) {
  Program p = ParseProgramOrDie(
      "t(X, Y) :- t(X, W), t(W, Y).\n"
      "t(X, Y) :- e(X, Y).");
  auto info = ProgramInfo::Analyze(p);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->IsRecursive("t"));
  EXPECT_FALSE(info->IsLinearRecursive("t"));
}

TEST(Analysis, MutualRecursion) {
  Program p = ParseProgramOrDie(
      "even(X) :- zero(X).\n"
      "even(X) :- succ(Y, X), odd(Y).\n"
      "odd(X) :- succ(Y, X), even(Y).");
  auto info = ProgramInfo::Analyze(p);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->MutuallyRecursive("even", "odd"));
  EXPECT_TRUE(info->IsRecursive("even"));
  EXPECT_FALSE(info->MutuallyRecursive("even", "succ"));
}

TEST(Analysis, StrataAreTopological) {
  Program p = ParseProgramOrDie(
      "a(X) :- base(X).\n"
      "b(X) :- a(X).\n"
      "c(X) :- b(X), a(X).");
  auto info = ProgramInfo::Analyze(p);
  ASSERT_TRUE(info.ok());
  std::map<std::string, size_t> order;
  for (size_t i = 0; i < info->strata().size(); ++i) {
    for (const std::string& pred : info->strata()[i]) order[pred] = i;
  }
  EXPECT_LT(order["base"], order["a"]);
  EXPECT_LT(order["a"], order["b"]);
  EXPECT_LT(order["b"], order["c"]);
}

TEST(Analysis, DependenciesOfTransitive) {
  Program p = ParseProgramOrDie(
      "a(X) :- base(X).\n"
      "b(X) :- a(X).\n"
      "t(X) :- b(X).\n"
      "t(X) :- t(X), b(X).\n"
      "unrelated(X) :- other(X).");
  auto info = ProgramInfo::Analyze(p);
  ASSERT_TRUE(info.ok());
  std::set<std::string> deps = info->DependenciesOf("t");
  EXPECT_TRUE(deps.count("a"));
  EXPECT_TRUE(deps.count("b"));
  EXPECT_TRUE(deps.count("base"));
  EXPECT_TRUE(deps.count("t"));  // self (recursive)
  EXPECT_FALSE(deps.count("unrelated"));
  EXPECT_FALSE(deps.count("other"));
}

// ---- Safety ---------------------------------------------------------------

TEST(Safety, HeadVarMustBeBound) {
  EXPECT_FALSE(CheckSafety(ParseProgramOrDie("p(X, Y) :- q(X).")).ok());
  EXPECT_TRUE(CheckSafety(ParseProgramOrDie("p(X, Y) :- q(X), r(Y).")).ok());
}

TEST(Safety, EqualityBindsTransitively) {
  EXPECT_TRUE(
      CheckSafety(ParseProgramOrDie("p(Z) :- q(X), X = Y, Y = Z.")).ok());
  EXPECT_TRUE(CheckSafety(ParseProgramOrDie("p(X) :- X = tom.")).ok());
  EXPECT_FALSE(CheckSafety(ParseProgramOrDie("p(X) :- X = Y.")).ok());
}

TEST(Safety, AssignmentBindsTarget) {
  EXPECT_TRUE(
      CheckSafety(ParseProgramOrDie("p(Z) :- q(X), Z is X + 1.")).ok());
  EXPECT_FALSE(
      CheckSafety(ParseProgramOrDie("p(Z) :- q(X), Z is W + 1.")).ok());
}

TEST(Safety, ComparisonNeedsBothSidesBound) {
  EXPECT_FALSE(CheckSafety(ParseProgramOrDie("p(X) :- q(X), X < Y.")).ok());
  EXPECT_TRUE(
      CheckSafety(ParseProgramOrDie("p(X) :- q(X), r(Y), X < Y.")).ok());
}

TEST(Safety, GroundFactIsSafe) {
  EXPECT_TRUE(CheckSafety(ParseProgramOrDie("p(a, 3).")).ok());
  EXPECT_FALSE(CheckSafety(ParseProgramOrDie("p(X).")).ok());
}

// ---- Rectify ---------------------------------------------------------------

TEST(Rectify, RepeatedHeadVariable) {
  Program p = ParseProgramOrDie("p(X, X) :- q(X).");
  Program r = Rectify(p);
  const Rule& rule = r.rules[0];
  EXPECT_NE(rule.head.args[0], rule.head.args[1]);
  ASSERT_EQ(rule.body.size(), 2u);
  EXPECT_EQ(rule.body[1].kind, Literal::Kind::kCompare);
  EXPECT_TRUE(CheckSafety(r).ok());
}

TEST(Rectify, HeadConstants) {
  Program p = ParseProgramOrDie("p(a, X) :- q(X).");
  Program r = Rectify(p);
  EXPECT_TRUE(r.rules[0].head.args[0].IsVar());
  EXPECT_TRUE(CheckSafety(r).ok());
}

TEST(Rectify, GroundFact) {
  Program p = ParseProgramOrDie("p(a, b).");
  Program r = Rectify(p);
  EXPECT_TRUE(r.rules[0].head.args[0].IsVar());
  EXPECT_TRUE(r.rules[0].head.args[1].IsVar());
  EXPECT_EQ(r.rules[0].body.size(), 2u);
  EXPECT_TRUE(CheckSafety(r).ok());
}

TEST(Rectify, AlreadyRectifiedUnchanged) {
  Program p = ParseProgramOrDie("p(X, Y) :- q(X, Y).");
  Program r = Rectify(p);
  EXPECT_EQ(p.ToString(), r.ToString());
}

// ---- ConnectedComponents ---------------------------------------------------

std::vector<Literal> BodyOf(const std::string& text) {
  Program p = ParseProgramOrDie(text);
  return p.rules[0].body;
}

TEST(ConnectedComponents, PaperExample22) {
  // a(X, Z0) a(Z0, Z1) b(Z1, Y): one maximal connected set of size 3.
  size_t n = 0;
  auto comp = ConnectedComponents(
      BodyOf("h(X, Y) :- a(X, Z0), a(Z0, Z1), b(Z1, Y)."), &n);
  EXPECT_EQ(n, 1u);
  // a(X, Y) b(Y, Z) c(W): two maximal connected sets.
  comp = ConnectedComponents(
      BodyOf("h(X, Z, W) :- a(X, Y), b(Y, Z), c(W)."), &n);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(ConnectedComponents, BuiltinsShareVariables) {
  size_t n = 0;
  ConnectedComponents(BodyOf("h(X, Y) :- a(X), Y is X + 1."), &n);
  EXPECT_EQ(n, 1u);
}

TEST(ConnectedComponents, GroundLiteralsAreSingletons) {
  size_t n = 0;
  ConnectedComponents(BodyOf("h(X) :- a(X), b(c), d(e)."), &n);
  EXPECT_EQ(n, 3u);
}

// ---- ExtractLinearRecursion -------------------------------------------------

TEST(ExtractLinearRecursion, Example11Shape) {
  auto rec = ExtractLinearRecursion(Example11Program(), "buys");
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->predicate, "buys");
  EXPECT_EQ(rec->arity, 2u);
  EXPECT_EQ(rec->recursive_rules.size(), 2u);
  EXPECT_EQ(rec->exit_rules.size(), 1u);
  EXPECT_EQ(rec->head_vars, (std::vector<std::string>{"V0", "V1"}));
  // Canonical heads.
  for (const Rule& r : rec->recursive_rules) {
    EXPECT_EQ(r.head.ToString(), "buys(V0, V1)");
  }
  // The recursive atom's persistent column carries V1.
  EXPECT_EQ(rec->RecursiveBodyAtom(0).args[1], Term::Var("V1"));
}

TEST(ExtractLinearRecursion, RejectsNonLinear) {
  Program p = ParseProgramOrDie(
      "t(X, Y) :- t(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).");
  auto rec = ExtractLinearRecursion(p, "t");
  EXPECT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ExtractLinearRecursion, RejectsMutualRecursion) {
  Program p = ParseProgramOrDie(
      "p(X) :- e(X).\np(X) :- f(X, W), q(W).\nq(X) :- g(X, W), p(W).");
  EXPECT_FALSE(ExtractLinearRecursion(p, "p").ok());
}

TEST(ExtractLinearRecursion, RejectsBodyDependingOnPredicate) {
  Program p = ParseProgramOrDie(
      "t(X) :- e(X).\n"
      "t(X) :- helper(X, W), t(W).\n"
      "helper(X, Y) :- t(X), e(Y).");
  EXPECT_FALSE(ExtractLinearRecursion(p, "t").ok());
}

TEST(ExtractLinearRecursion, DropsTautology) {
  Program p = ParseProgramOrDie(
      "t(X, Y) :- t(X, Y).\n"
      "t(X, Y) :- e(X, W), t(W, Y).\n"
      "t(X, Y) :- e0(X, Y).");
  auto rec = ExtractLinearRecursion(p, "t");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->recursive_rules.size(), 1u);
}

TEST(ExtractLinearRecursion, NotIdb) {
  Program p = ParseProgramOrDie("t(X) :- e(X).");
  EXPECT_FALSE(ExtractLinearRecursion(p, "e").ok());
  EXPECT_FALSE(ExtractLinearRecursion(p, "ghost").ok());
}

// ---- edge cases the pass pipeline leans on ------------------------------

TEST(Analysis, MutualRecursionThroughNegationIsUnstratifiable) {
  // p and q are in one SCC and each negates the other: no stratification
  // exists, so Analyze must reject rather than classify.
  Program p = ParseProgramOrDie(
      "p(X) :- e(X), not q(X).\n"
      "q(X) :- e(X), not p(X).");
  EXPECT_FALSE(ProgramInfo::Analyze(p).ok());
}

TEST(Analysis, NegationAcrossStrataIsFine) {
  // Mutual recursion AND negation, but the negated predicate sits in a
  // strictly lower stratum — stratifiable, and the SCC classification
  // must not be confused by the negated edge.
  Program p = ParseProgramOrDie(
      "base(X) :- e(X), not blocked(X).\n"
      "even(X) :- base(X).\n"
      "even(X) :- succ(Y, X), odd(Y).\n"
      "odd(X) :- succ(Y, X), even(Y).");
  auto info = ProgramInfo::Analyze(p);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->MutuallyRecursive("even", "odd"));
  EXPECT_FALSE(info->IsRecursive("base"));
}

TEST(Analysis, ZeroArityPredicates) {
  Program p = ParseProgramOrDie(
      "flag :- e(X).\n"
      "go(X) :- e(X), flag.");
  auto info = ProgramInfo::Analyze(p);
  ASSERT_TRUE(info.ok());
  ASSERT_NE(info->Find("flag"), nullptr);
  EXPECT_EQ(info->Find("flag")->arity, 0u);
  EXPECT_TRUE(info->IsIdb("flag"));
  EXPECT_FALSE(info->IsRecursive("flag"));
  // flag's stratum precedes go's.
  EXPECT_NE(info->DependenciesOf("go").count("flag"), 0u);
}

TEST(Analysis, ZeroArityRecursionClassified) {
  Program p = ParseProgramOrDie(
      "tick :- seed(X).\n"
      "tick :- tick, pulse(X).");
  auto info = ProgramInfo::Analyze(p);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->IsRecursive("tick"));
}

TEST(Analysis, HeadPredicateUnreachableFromQueryStillAnalyzed) {
  // ProgramInfo is query-independent: rules whose heads no query can
  // reach are still classified (the dead-rule PASS removes them; the
  // analysis layer must not).
  Program p = ParseProgramOrDie(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, W), t(W, Y).\n"
      "island(X) :- island_base(X).\n"
      "island(X) :- hop(X, W), island(W).");
  auto info = ProgramInfo::Analyze(p);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->IsRecursive("island"));
  EXPECT_TRUE(info->IsRecursive("t"));
  // And the dependency sets are disjoint: island is not in t's cone.
  EXPECT_EQ(info->DependenciesOf("t").count("island"), 0u);
  EXPECT_EQ(info->DependenciesOf("island").count("t"), 0u);
}

TEST(FreshVar, AvoidsCollisions) {
  std::set<std::string> used = {"W", "W_0"};
  EXPECT_EQ(FreshVar("W", &used), "W_1");
  EXPECT_EQ(FreshVar("W", &used), "W_2");
  EXPECT_EQ(FreshVar("X", &used), "X");
}

}  // namespace
}  // namespace seprec
