// Tests for the query service layer: the JSON value/parser, the
// QueryService cache stack (plan, closure, generation invalidation,
// per-request budgets, concurrent sessions), and the socket server's
// JSON-lines protocol end to end.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "datalog/parser.h"
#include "server/json.h"
#include "server/server.h"
#include "server/service.h"
#include "storage/database.h"
#include "storage/recovery.h"
#include "util/string_util.h"

namespace seprec {
namespace {

// ---- JSON ------------------------------------------------------------------

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(json::Parse("null")->is_null());
  EXPECT_EQ(json::Parse("true")->as_bool(), true);
  EXPECT_EQ(json::Parse("false")->as_bool(), false);
  EXPECT_EQ(json::Parse("42")->as_int(), 42);
  EXPECT_EQ(json::Parse("-7")->as_int(), -7);
  EXPECT_DOUBLE_EQ(json::Parse("2.5")->as_double(), 2.5);
  EXPECT_EQ(json::Parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParseNestedAndRoundTrip) {
  const std::string text =
      R"({"a":[1,2,{"b":true}],"c":null,"d":"x\ny","e":-3})";
  auto v = json::Parse(text);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Get("a").as_array().size(), 3u);
  EXPECT_EQ(v->Get("a").as_array()[2].Get("b").as_bool(), true);
  EXPECT_TRUE(v->Get("c").is_null());
  EXPECT_EQ(v->Get("d").as_string(), "x\ny");
  // Serialize is canonical (sorted keys, no spaces): reparsing preserves
  // the value.
  auto again = json::Parse(json::Serialize(*v));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(json::Serialize(*again), json::Serialize(*v));
}

TEST(Json, ParseEscapes) {
  auto v = json::Parse(R"("A\t\\\"é")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "A\t\\\"\xc3\xa9");
  // Surrogate pair.
  auto pair = json::Parse(R"("😀")");
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair->as_string(), "\xf0\x9f\x98\x80");
}

TEST(Json, ParseErrors) {
  EXPECT_FALSE(json::Parse("").ok());
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("[1,]").ok());
  EXPECT_FALSE(json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(json::Parse("tru").ok());
  EXPECT_FALSE(json::Parse("1 2").ok());
  // Depth bomb trips the recursion limit instead of the stack.
  EXPECT_FALSE(json::Parse(std::string(300, '[')).ok());
}

TEST(Json, GetOnMissingKeyIsNull) {
  auto v = json::Parse("{}");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->Get("absent").is_null());
  EXPECT_FALSE(v->Has("absent"));
}

// ---- QueryService ----------------------------------------------------------

constexpr const char* kTcProgram =
    "edge(a, b).\n"
    "edge(b, c).\n"
    "edge(c, d).\n"
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n";

ServiceRequest TcRequest(const std::string& query) {
  ServiceRequest req;
  req.program = kTcProgram;
  req.query = query;
  return req;
}

TEST(QueryService, AnswersMatchOneShot) {
  Database db;
  QueryService service(&db);
  auto outcomes = service.Execute(TcRequest("tc(a, X)"));
  ASSERT_TRUE(outcomes.ok());
  ASSERT_EQ(outcomes->size(), 1u);
  const QueryOutcome& out = (*outcomes)[0];
  EXPECT_EQ(out.result.strategy, Strategy::kSeparable);
  EXPECT_EQ(out.tuples,
            (std::vector<std::string>{"(a, b)", "(a, c)", "(a, d)"}));
  // The service always rolls its checkpoint back: derived tuples must not
  // persist into the shared database. (The relation itself survives —
  // Prepare pre-creates IDB relations for plan binding — but empty.)
  const Relation* tc = db.Find("tc");
  ASSERT_NE(tc, nullptr);
  EXPECT_TRUE(tc->empty());
}

TEST(QueryService, PlanCacheHitSkipsDetectionAndCompile) {
  Database db;
  QueryService service(&db);
  auto first = service.Execute(TcRequest("tc(a, X)"));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE((*first)[0].plan_cache_hit);
  EXPECT_GT((*first)[0].detection_passes, 0u);

  auto second = service.Execute(TcRequest("tc(a, X)"));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE((*second)[0].plan_cache_hit);
  // The detection pass delta on a plan-cache hit is zero: the cached
  // processor and prepared plan carry all database-independent work.
  EXPECT_EQ((*second)[0].detection_passes, 0u);
  EXPECT_EQ((*second)[0].tuples, (*first)[0].tuples);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.plan_hits, 1u);
  EXPECT_EQ(stats.plan_misses, 1u);
  EXPECT_EQ(stats.processor_hits, 1u);
}

TEST(QueryService, ClosureCacheHitSkipsPhase1) {
  Database db;
  QueryService service(&db);
  // tc(X, d) anchors on a moving class: phase 1 genuinely iterates.
  auto cold = service.Execute(TcRequest("tc(X, d)"));
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE((*cold)[0].closure_cache_hit);
  EXPECT_TRUE((*cold)[0].closure_stored);
  size_t cold_phase1 = 0;
  for (const auto& r : (*cold)[0].result.stats.rounds) {
    if (r.phase == "phase1") ++cold_phase1;
  }
  EXPECT_GT(cold_phase1, 0u);

  auto warm = service.Execute(TcRequest("tc(X, d)"));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE((*warm)[0].closure_cache_hit);
  EXPECT_FALSE((*warm)[0].closure_stored);
  EXPECT_EQ((*warm)[0].tuples, (*cold)[0].tuples);
  // Phase 1 ran zero rounds: seen_1 was seeded from the cached closure.
  for (const auto& r : (*warm)[0].result.stats.rounds) {
    EXPECT_NE(r.phase, "phase1");
  }
}

TEST(QueryService, SelectionConstantsKeyTheClosure) {
  Database db;
  QueryService service(&db);
  ASSERT_TRUE(service.Execute(TcRequest("tc(a, X)")).ok());
  // Same shape, different constant: plan hits, closure misses.
  auto other = service.Execute(TcRequest("tc(b, X)"));
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE((*other)[0].plan_cache_hit);
  EXPECT_FALSE((*other)[0].closure_cache_hit);
  EXPECT_EQ((*other)[0].tuples,
            (std::vector<std::string>{"(b, c)", "(b, d)"}));
  // Different variable NAME is the same selection: closure hits.
  auto renamed = service.Execute(TcRequest("tc(a, Q)"));
  ASSERT_TRUE(renamed.ok());
  EXPECT_TRUE((*renamed)[0].closure_cache_hit);
}

TEST(QueryService, LoadMaintainsCachedClosure) {
  Database db;
  QueryService service(&db);
  auto before = service.Execute(TcRequest("tc(a, X)"));
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE((*before)[0].closure_stored);
  const uint64_t gen_before = (*before)[0].generation;

  std::istringstream rows("d\te\n");
  auto added = service.LoadTsv("edge", rows);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 1u);

  auto after = service.Execute(TcRequest("tc(a, X)"));
  ASSERT_TRUE(after.ok());
  // Plan survives (database-independent). The generation bumps, but the
  // cached closure survives it: tc(a, X) binds a persistent column, so
  // its phase-1 closure is data-independent (kConstant) and is re-keyed
  // onto the new generation instead of invalidated. The answer still
  // reflects the new tuple — phase 2 reads the mutated relations.
  EXPECT_TRUE((*after)[0].plan_cache_hit);
  EXPECT_TRUE((*after)[0].closure_cache_hit);
  EXPECT_GT((*after)[0].generation, gen_before);
  EXPECT_EQ((*after)[0].tuples,
            (std::vector<std::string>{"(a, b)", "(a, c)", "(a, d)",
                                      "(a, e)"}));
}

// Rules only: with the edge facts LOADED rather than in the program text,
// edge is a base relation and a moving-class closure is DRed-maintainable.
constexpr const char* kPureTcProgram =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n";

ServiceRequest PureTcRequest(const std::string& query) {
  ServiceRequest req;
  req.program = kPureTcProgram;
  req.query = query;
  return req;
}

TEST(QueryService, NoOpLoadKeepsClosureAndGeneration) {
  // Regression: a load where every row is a duplicate must be a true
  // no-op — no generation bump, so every cached closure (even a
  // non-maintainable one) stays valid under its existing key.
  Database db;
  QueryService service(&db);
  std::istringstream seed("d\te\n");
  ASSERT_TRUE(service.LoadTsv("edge", seed).ok());
  auto before = service.Execute(TcRequest("tc(X, d)"));
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE((*before)[0].closure_stored);
  const uint64_t gen = (*before)[0].generation;

  std::istringstream dup("d\te\n");
  auto added = service.LoadTsv("edge", dup);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 0u);
  // Deleting a row that is not there is equally a no-op.
  std::istringstream miss("zz\tzz\n");
  auto removed = service.ApplyTsv("edge", BatchOp::kDelete, miss);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 0u);

  auto after = service.Execute(TcRequest("tc(X, d)"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)[0].generation, gen);
  EXPECT_TRUE((*after)[0].closure_cache_hit);
  EXPECT_EQ((*after)[0].tuples, (*before)[0].tuples);
}

TEST(QueryService, DeletePatchesMaintainableClosure) {
  Database db;
  QueryService service(&db);
  std::istringstream rows("a\tb\nb\tc\nc\td\n");
  ASSERT_TRUE(service.LoadTsv("edge", rows).ok());
  auto cold = service.Execute(PureTcRequest("tc(X, d)"));
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE((*cold)[0].closure_stored);
  EXPECT_EQ((*cold)[0].tuples,
            (std::vector<std::string>{"(a, d)", "(b, d)", "(c, d)"}));

  // Delete an EDB row the closure depends on: the cached phase-1 closure
  // is patched through DRed (overdelete + rederive), not thrown away.
  std::istringstream victims("a\tb\n");
  auto removed = service.ApplyTsv("edge", BatchOp::kDelete, victims);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);

  auto warm = service.Execute(PureTcRequest("tc(X, d)"));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE((*warm)[0].plan_cache_hit);
  EXPECT_TRUE((*warm)[0].closure_cache_hit);
  EXPECT_EQ((*warm)[0].tuples,
            (std::vector<std::string>{"(b, d)", "(c, d)"}));

  // Insert through the same path: the patched closure absorbs the new
  // tuple and the answer grows accordingly.
  std::istringstream fresh("x\tb\n");
  ASSERT_TRUE(service.ApplyTsv("edge", BatchOp::kInsert, fresh).ok());
  auto grown = service.Execute(PureTcRequest("tc(X, d)"));
  ASSERT_TRUE(grown.ok());
  EXPECT_TRUE((*grown)[0].closure_cache_hit);
  EXPECT_EQ((*grown)[0].tuples,
            (std::vector<std::string>{"(b, d)", "(c, d)", "(x, d)"}));

  ServiceStats stats = service.stats();
  EXPECT_GE(stats.closure_patches, 2u);
  EXPECT_EQ(stats.closure_drops, 0u);
  // Patched answers match a cold evaluation bit for bit.
  QueryService fresh_service(&db);
  auto reference = fresh_service.Execute(PureTcRequest("tc(X, d)"));
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ((*grown)[0].tuples, (*reference)[0].tuples);
}

TEST(QueryService, OversizedDeltaFallsBackToInvalidation) {
  Database db;
  ServiceOptions options;
  options.max_incremental_delta = 1;
  QueryService service(&db, options);
  std::istringstream rows("a\tb\nb\tc\nc\td\n");
  ASSERT_TRUE(service.LoadTsv("edge", rows).ok());
  auto cold = service.Execute(PureTcRequest("tc(X, d)"));
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE((*cold)[0].closure_stored);
  // A delete exceeding max_incremental_delta drops maintainable entries
  // instead of patching them; the next query recomputes and is correct.
  std::istringstream victims("a\tb\nb\tc\n");
  auto removed = service.ApplyTsv("edge", BatchOp::kDelete, victims);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 2u);
  auto after = service.Execute(PureTcRequest("tc(X, d)"));
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE((*after)[0].closure_cache_hit);
  EXPECT_EQ((*after)[0].tuples, (std::vector<std::string>{"(c, d)"}));
  EXPECT_GE(service.stats().closure_drops, 1u);
}

TEST(QueryService, NoCacheBypassesPlanAndClosureLayers) {
  Database db;
  QueryService service(&db);
  ASSERT_TRUE(service.Execute(TcRequest("tc(a, X)")).ok());
  ServiceRequest req = TcRequest("tc(a, X)");
  req.use_cache = false;
  auto out = service.Execute(req);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE((*out)[0].plan_cache_hit);
  EXPECT_FALSE((*out)[0].closure_cache_hit);
  EXPECT_FALSE((*out)[0].closure_stored);
}

TEST(QueryService, EmptyQueryRunsEveryQueryInProgram) {
  Database db;
  QueryService service(&db);
  ServiceRequest req;
  req.program = StrCat(kTcProgram, "?- tc(a, X).\n?- tc(b, X).\n");
  auto out = service.Execute(req);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0].query_text, "tc(a, X)");
  EXPECT_EQ((*out)[1].query_text, "tc(b, X)");
  // A program with no ?- line and no explicit query is an error.
  ServiceRequest bare;
  bare.program = kTcProgram;
  EXPECT_FALSE(service.Execute(bare).ok());
}

TEST(QueryService, ParseErrorFailsRequest) {
  Database db;
  QueryService service(&db);
  ServiceRequest req;
  req.program = "p(X :- q(X).";
  req.query = "p(X)";
  EXPECT_FALSE(service.Execute(req).ok());
}

TEST(QueryService, PerRequestLimitsIsolate) {
  Database db;
  QueryService service(&db);
  // A budget-starved request degrades (partial), and its incomplete
  // closure must NOT enter the cache.
  ServiceRequest starved = TcRequest("tc(X, d)");
  starved.limits.max_tuples = 1;
  auto partial = service.Execute(starved);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE((*partial)[0].result.partial);
  EXPECT_FALSE((*partial)[0].closure_stored);

  // The next (unlimited) request is unaffected by the starved one.
  auto full = service.Execute(TcRequest("tc(X, d)"));
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE((*full)[0].result.partial);
  EXPECT_FALSE((*full)[0].closure_cache_hit);
  EXPECT_TRUE((*full)[0].closure_stored);
  EXPECT_EQ((*full)[0].tuples,
            (std::vector<std::string>{"(a, d)", "(b, d)", "(c, d)"}));
}

TEST(QueryService, ZeroCapacityDisablesLayers) {
  Database db;
  ServiceOptions options;
  options.max_prepared = 0;
  options.max_closures = 0;
  QueryService service(&db, options);
  ASSERT_TRUE(service.Execute(TcRequest("tc(a, X)")).ok());
  auto out = service.Execute(TcRequest("tc(a, X)"));
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE((*out)[0].plan_cache_hit);
  EXPECT_FALSE((*out)[0].closure_stored);
  EXPECT_EQ(service.stats().plans, 0u);
  EXPECT_EQ(service.stats().closures, 0u);
}

TEST(QueryService, LruEvictsOldestPlan) {
  Database db;
  ServiceOptions options;
  options.max_prepared = 1;
  QueryService service(&db, options);
  ASSERT_TRUE(service.Execute(TcRequest("tc(a, X)")).ok());
  // A different shape displaces the only slot.
  ASSERT_TRUE(service.Execute(TcRequest("tc(X, d)")).ok());
  EXPECT_EQ(service.stats().plans, 1u);
  auto again = service.Execute(TcRequest("tc(a, X)"));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE((*again)[0].plan_cache_hit);
}

TEST(QueryService, PurgeDropsCachedArtifacts) {
  Database db;
  QueryService service(&db);
  ASSERT_TRUE(service.Execute(TcRequest("tc(a, X)")).ok());
  EXPECT_GT(service.stats().closures, 0u);
  service.PurgeClosures();
  EXPECT_EQ(service.stats().closures, 0u);
  EXPECT_GT(service.stats().plans, 0u);
  service.PurgeAll();
  EXPECT_EQ(service.stats().plans, 0u);
  EXPECT_EQ(service.stats().processors, 0u);
}

TEST(QueryService, ProcessorCacheIsLruNotFifo) {
  Database db;
  ServiceOptions options;
  options.max_processors = 2;
  QueryService service(&db, options);
  const std::string a = kTcProgram;
  const std::string b = StrCat(kTcProgram, "edge(p, q).\n");
  const std::string c = StrCat(kTcProgram, "edge(r, s).\n");
  // Runs `program` and reports its detection-pass cost: zero exactly when
  // the processor (and plan) came from cache.
  auto detections = [&](const std::string& program) -> uint64_t {
    ServiceRequest req;
    req.program = program;
    req.query = "tc(a, X)";
    auto out = service.Execute(req);
    EXPECT_TRUE(out.ok());
    return out.ok() ? (*out)[0].detection_passes : ~uint64_t{0};
  };
  EXPECT_GT(detections(a), 0u);  // miss: A analysed        cache {A}
  EXPECT_GT(detections(b), 0u);  // miss: B analysed        cache {A, B}
  EXPECT_EQ(detections(a), 0u);  // hit refreshes A's tick
  EXPECT_GT(detections(c), 0u);  // miss: evicts B (LRU)    cache {A, C}
  // Under FIFO this would evict A (the oldest insertion) instead, and the
  // continuously-hot program would pay a re-parse + detection pass here.
  EXPECT_EQ(detections(a), 0u);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.processor_hits, 2u);
  EXPECT_EQ(stats.processor_misses, 3u);
}

TEST(QueryService, UncachedAndEvictedPlansDropDuringConcurrentEvaluation) {
  // Regression for a release-order race: ~PlanEntry drops the compiled
  // schema's scratch relations from the Database, so the last reference
  // must be released under the database mutex. Uncached requests
  // ("cache":false) and a one-slot plan cache (constant eviction /
  // overwrite churn between two shapes) exercise every release path while
  // other sessions evaluate; TSan flags any drop outside the lock.
  Database db;
  ServiceOptions options;
  options.max_prepared = 1;
  QueryService service(&db, options);
  constexpr int kThreads = 8;
  constexpr int kIters = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int j = 0; j < kIters; ++j) {
        ServiceRequest req = TcRequest(i % 2 == 0 ? "tc(a, X)" : "tc(X, d)");
        req.use_cache = i % 4 < 2;
        auto out = service.Execute(req);
        if (!out.ok() || out->size() != 1 || (*out)[0].tuples.empty()) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(QueryService, ConcurrentSessionsBitIdentical) {
  Database db;
  QueryService service(&db);
  constexpr int kThreads = 8;
  // The expected answers, computed sequentially first.
  auto expect_ax = service.Execute(TcRequest("tc(a, X)"));
  auto expect_xd = service.Execute(TcRequest("tc(X, d)"));
  ASSERT_TRUE(expect_ax.ok());
  ASSERT_TRUE(expect_xd.ok());
  service.PurgeAll();

  std::vector<std::vector<std::string>> got(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      // Half the sessions run one query, half the other, so cache fills
      // race with probes across distinct keys as well as identical ones.
      const bool ax = i % 2 == 0;
      auto out = service.Execute(TcRequest(ax ? "tc(a, X)" : "tc(X, d)"));
      if (!out.ok() || out->size() != 1) {
        ++failures;
        return;
      }
      got[i] = (*out)[0].tuples;
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  for (int i = 0; i < kThreads; ++i) {
    const auto& want =
        i % 2 == 0 ? (*expect_ax)[0].tuples : (*expect_xd)[0].tuples;
    EXPECT_EQ(got[i], want) << "session " << i;
  }
  EXPECT_EQ(service.stats().requests, 2u + kThreads);
}

// ---- SocketServer ----------------------------------------------------------

class SocketClient {
 public:
  explicit SocketClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~SocketClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  void Send(const std::string& line) { SendRaw(line + "\n"); }

  // Sends bytes as-is, without the '\n' framing.
  void SendRaw(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }

  // True when the server has closed the connection (clean EOF).
  bool ReadEof() {
    char c;
    return ::recv(fd_, &c, 1, 0) == 0;
  }

  // Reads one '\n'-terminated JSON line.
  json::Value ReadLine() {
    while (true) {
      auto pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        std::string line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        auto v = json::Parse(line);
        EXPECT_TRUE(v.ok()) << line;
        return v.ok() ? *std::move(v) : json::Value();
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed mid-read";
        return json::Value();
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  // Reads until a "done" or "error" event, returning every line.
  std::vector<json::Value> ReadToDone() {
    std::vector<json::Value> lines;
    while (true) {
      lines.push_back(ReadLine());
      const std::string& ev = lines.back().Get("ev").as_string();
      if (ev == "done" || ev == "error" || ev.empty()) return lines;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

class SocketServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = StrCat(::testing::TempDir(), "/seprec_srv_",
                          static_cast<unsigned long>(::getpid()), ".s");
    service_ = std::make_unique<QueryService>(&db_);
    server_ = std::make_unique<SocketServer>(service_.get());
    ASSERT_TRUE(server_->Start(socket_path_).ok());
  }
  void TearDown() override { server_->Stop(); }

  Database db_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<SocketServer> server_;
  std::string socket_path_;
};

TEST_F(SocketServerTest, PingAndStats) {
  SocketClient client(socket_path_);
  ASSERT_TRUE(client.connected());
  client.Send(R"({"op":"ping","id":7})");
  json::Value pong = client.ReadLine();
  EXPECT_EQ(pong.Get("id").as_int(), 7);
  EXPECT_TRUE(pong.Get("ok").as_bool());

  client.Send(R"({"op":"stats","id":8})");
  json::Value stats = client.ReadLine();
  EXPECT_EQ(stats.Get("id").as_int(), 8);
  EXPECT_TRUE(stats.Get("stats").Has("requests"));
}

TEST_F(SocketServerTest, QueryStreamsResults) {
  SocketClient client(socket_path_);
  ASSERT_TRUE(client.connected());
  json::Object req;
  req["op"] = json::Value("query");
  req["id"] = json::Value(int64_t{1});
  req["program"] = json::Value(std::string(kTcProgram));
  req["query"] = json::Value("tc(a, X)");
  client.Send(json::Serialize(json::Value(req)));

  std::vector<json::Value> lines = client.ReadToDone();
  ASSERT_GE(lines.size(), 6u);  // begin, 3 results, answer, done
  EXPECT_EQ(lines[0].Get("ev").as_string(), "begin");
  EXPECT_EQ(lines[0].Get("query").as_string(), "tc(a, X)");
  std::vector<std::string> tuples;
  for (const auto& line : lines) {
    if (line.Get("ev").as_string() == "result") {
      tuples.push_back(line.Get("tuple").as_string());
    }
  }
  EXPECT_EQ(tuples,
            (std::vector<std::string>{"(a, b)", "(a, c)", "(a, d)"}));
  const json::Value& answer = lines[lines.size() - 2];
  EXPECT_EQ(answer.Get("ev").as_string(), "answer");
  EXPECT_EQ(answer.Get("answers").as_int(), 3);
  EXPECT_EQ(answer.Get("strategy").as_string(), "separable");
  EXPECT_FALSE(answer.Get("partial").as_bool());
  EXPECT_EQ(lines.back().Get("ev").as_string(), "done");
  EXPECT_TRUE(lines.back().Get("ok").as_bool());
}

TEST_F(SocketServerTest, LoadBumpsGenerationAndQueriesSeeIt) {
  SocketClient client(socket_path_);
  ASSERT_TRUE(client.connected());
  client.Send(
      R"({"op":"load","id":1,"relation":"edge","rows":[["d","e"]]})");
  json::Value loaded = client.ReadLine();
  EXPECT_TRUE(loaded.Get("ok").as_bool());
  EXPECT_EQ(loaded.Get("added").as_int(), 1);
  EXPECT_GE(loaded.Get("generation").as_int(), 1);

  json::Object req;
  req["op"] = json::Value("query");
  req["id"] = json::Value(int64_t{2});
  req["program"] = json::Value(std::string(kTcProgram));
  req["query"] = json::Value("tc(d, X)");
  client.Send(json::Serialize(json::Value(req)));
  std::vector<json::Value> lines = client.ReadToDone();
  const json::Value& answer = lines[lines.size() - 2];
  EXPECT_EQ(answer.Get("answers").as_int(), 1);  // (d, e) via the load
}

TEST_F(SocketServerTest, MalformedMiddleRowFailsLoadWithoutPartialApply) {
  SocketClient client(socket_path_);
  ASSERT_TRUE(client.connected());
  // Row 2 has one column where rows 1 and 3 have two: the load must fail
  // with a structured, line-numbered error and apply NOTHING — a partial
  // prefix would be silent corruption.
  client.Send(
      R"({"op":"load","id":1,"relation":"m",)"
      R"("rows":[["a","b"],["c"],["d","e"]]})");
  json::Value error = client.ReadLine();
  EXPECT_EQ(error.Get("ev").as_string(), "error");
  EXPECT_EQ(error.Get("code").as_string(), "INVALID_ARGUMENT");
  EXPECT_NE(error.Get("message").as_string().find("line 2"),
            std::string::npos)
      << error.Get("message").as_string();
  // Nothing was applied: the relation does not exist and the generation
  // did not move.
  EXPECT_EQ(db_.Find("m"), nullptr);
  EXPECT_EQ(db_.generation(), 0u);
}

TEST_F(SocketServerTest, DeleteModeRemovesRowsAndReportsChanged) {
  SocketClient client(socket_path_);
  ASSERT_TRUE(client.connected());
  client.Send(
      R"({"op":"load","id":1,"relation":"edge","rows":[["a","b"],["b","c"]]})");
  EXPECT_TRUE(client.ReadLine().Get("ok").as_bool());

  // Delete one present row and one miss: "changed" counts the effective
  // delta; "added" repeats it for protocol back-compat.
  client.Send(R"({"op":"load","id":2,"relation":"edge","mode":"delete",)"
              R"("rows":[["a","b"],["zz","zz"]]})");
  json::Value deleted = client.ReadLine();
  EXPECT_TRUE(deleted.Get("ok").as_bool());
  EXPECT_EQ(deleted.Get("changed").as_int(), 1);
  EXPECT_EQ(deleted.Get("added").as_int(), 1);
  EXPECT_EQ(db_.Find("edge")->size(), 1u);

  // An unknown mode is a structured error, not a silent insert.
  client.Send(R"({"op":"load","id":3,"relation":"edge","mode":"upsert",)"
              R"("rows":[["x","y"]]})");
  json::Value error = client.ReadLine();
  EXPECT_EQ(error.Get("ev").as_string(), "error");
  EXPECT_EQ(error.Get("code").as_string(), "INVALID_ARGUMENT");
  EXPECT_EQ(db_.Find("edge")->size(), 1u);
}

TEST_F(SocketServerTest, SubscribeStreamsDeltasAcrossConnections) {
  SocketClient sub(socket_path_);
  SocketClient loader(socket_path_);
  ASSERT_TRUE(sub.connected());
  ASSERT_TRUE(loader.connected());
  loader.Send(
      R"({"op":"load","id":1,"relation":"edge","rows":[["a","b"],["b","c"]]})");
  EXPECT_TRUE(loader.ReadLine().Get("ok").as_bool());

  json::Object req;
  req["op"] = json::Value("subscribe");
  req["id"] = json::Value(int64_t{2});
  req["program"] = json::Value(std::string(kPureTcProgram));
  req["query"] = json::Value("tc(a, X)");
  sub.Send(json::Serialize(json::Value(req)));
  json::Value ack = sub.ReadLine();
  ASSERT_TRUE(ack.Get("ok").as_bool());
  EXPECT_EQ(ack.Get("answers").as_int(), 2);  // (a,b), (a,c) baseline
  const int64_t sid = ack.Get("subscription").as_int();
  EXPECT_GT(sid, 0);

  // An insert on ANOTHER connection pushes the newly derived tuple.
  loader.Send(
      R"({"op":"load","id":3,"relation":"edge","rows":[["c","d"]]})");
  EXPECT_TRUE(loader.ReadLine().Get("ok").as_bool());
  json::Value delta = sub.ReadLine();
  EXPECT_EQ(delta.Get("ev").as_string(), "delta");
  EXPECT_EQ(delta.Get("subscription").as_int(), sid);
  ASSERT_EQ(delta.Get("tuples").as_array().size(), 1u);
  EXPECT_EQ(delta.Get("tuples").as_array()[0].as_string(), "(a, d)");
  EXPECT_TRUE(delta.Get("retracted").as_array().empty());

  // A delete retracts everything the lost edge carried.
  loader.Send(R"({"op":"load","id":4,"relation":"edge","mode":"delete",)"
              R"("rows":[["b","c"]]})");
  EXPECT_TRUE(loader.ReadLine().Get("ok").as_bool());
  delta = sub.ReadLine();
  EXPECT_EQ(delta.Get("ev").as_string(), "delta");
  EXPECT_TRUE(delta.Get("tuples").as_array().empty());
  ASSERT_EQ(delta.Get("retracted").as_array().size(), 2u);
  EXPECT_EQ(delta.Get("retracted").as_array()[0].as_string(), "(a, c)");
  EXPECT_EQ(delta.Get("retracted").as_array()[1].as_string(), "(a, d)");

  // A no-op mutation (duplicate insert) pushes nothing: the next line the
  // subscriber reads is its own unsubscribe ack, not a delta. Another
  // connection cannot remove the subscription first.
  loader.Send(
      R"({"op":"load","id":5,"relation":"edge","rows":[["a","b"]]})");
  EXPECT_TRUE(loader.ReadLine().Get("ok").as_bool());
  loader.Send(StrCat(R"({"op":"unsubscribe","id":6,"subscription":)", sid,
                     "}"));
  json::Value stolen = loader.ReadLine();
  EXPECT_TRUE(stolen.Get("ok").as_bool());
  EXPECT_FALSE(stolen.Get("removed").as_bool());
  sub.Send(StrCat(R"({"op":"unsubscribe","id":7,"subscription":)", sid,
                  "}"));
  json::Value bye = sub.ReadLine();
  EXPECT_EQ(bye.Get("ev").as_string(), "done");
  EXPECT_TRUE(bye.Get("removed").as_bool());
}

TEST_F(SocketServerTest, SubscriptionTrippingItsBudgetIsDropped) {
  SocketClient sub(socket_path_);
  SocketClient loader(socket_path_);
  ASSERT_TRUE(sub.connected());
  ASSERT_TRUE(loader.connected());
  loader.Send(
      R"({"op":"load","id":1,"relation":"edge","rows":[["a","b"],["b","c"]]})");
  EXPECT_TRUE(loader.ReadLine().Get("ok").as_bool());

  // The subscription's own limits (the tuple budget counts DERIVED
  // tuples, not answers) cover the baseline evaluation but not the
  // re-evaluation after the graph grows; a partial push would be a silent
  // lie — the subscription is dropped instead.
  json::Object req;
  req["op"] = json::Value("subscribe");
  req["id"] = json::Value(int64_t{2});
  req["program"] = json::Value(std::string(kPureTcProgram));
  req["query"] = json::Value("tc(a, X)");
  json::Object limits;
  limits["max_tuples"] = json::Value(int64_t{4});
  req["limits"] = json::Value(limits);
  sub.Send(json::Serialize(json::Value(req)));
  json::Value ack = sub.ReadLine();
  ASSERT_TRUE(ack.Get("ok").as_bool());
  const int64_t sid = ack.Get("subscription").as_int();

  loader.Send(R"({"op":"load","id":3,"relation":"edge",)"
              R"("rows":[["c","d"],["d","e"],["e","f"],["f","g"]]})");
  EXPECT_TRUE(loader.ReadLine().Get("ok").as_bool());
  json::Value dropped = sub.ReadLine();
  EXPECT_EQ(dropped.Get("ev").as_string(), "dropped");
  EXPECT_EQ(dropped.Get("subscription").as_int(), sid);
  EXPECT_NE(dropped.Get("reason").as_string().find("budget"),
            std::string::npos)
      << dropped.Get("reason").as_string();
}

TEST_F(SocketServerTest, CheckpointWithoutDataDirIsFailedPrecondition) {
  SocketClient client(socket_path_);
  ASSERT_TRUE(client.connected());
  client.Send(R"({"op":"checkpoint","id":9})");
  json::Value error = client.ReadLine();
  EXPECT_EQ(error.Get("ev").as_string(), "error");
  EXPECT_EQ(error.Get("code").as_string(), "FAILED_PRECONDITION");
  EXPECT_NE(error.Get("message").as_string().find("--data-dir"),
            std::string::npos)
      << error.Get("message").as_string();
}

TEST(SocketServerDurability, LoadsAreLoggedAndCheckpointOpSnapshots) {
  const std::string dir =
      StrCat(::testing::TempDir(), "/seprec_srv_durable_",
             static_cast<unsigned long>(::getpid()));
  std::filesystem::remove_all(dir);
  const std::string socket_path = dir + ".sock";
  uint64_t generation_after = 0;
  {
    Database db;
    DurabilityOptions durability;
    durability.fsync = FsyncPolicy::kOff;
    auto storage = DurableStorage::Open(dir, &db, durability, nullptr);
    ASSERT_TRUE(storage.ok()) << storage.status().ToString();
    ServiceOptions options;
    options.storage = storage->get();
    QueryService service(&db, options);
    SocketServer server(&service);
    ASSERT_TRUE(server.Start(socket_path).ok());

    SocketClient client(socket_path);
    ASSERT_TRUE(client.connected());
    client.Send(
        R"({"op":"load","id":1,"relation":"edge","rows":[["a","b"]]})");
    EXPECT_TRUE(client.ReadLine().Get("ok").as_bool());
    EXPECT_GT((*storage)->wal_bytes(), 0u);  // the load was logged

    client.Send(R"({"op":"checkpoint","id":2})");
    json::Value done = client.ReadLine();
    EXPECT_TRUE(done.Get("ok").as_bool());
    EXPECT_EQ(done.Get("snapshot").as_string(), "snapshot-2.seprec");
    EXPECT_GT(done.Get("wal_bytes_truncated").as_int(), 0);
    EXPECT_EQ((*storage)->wal_bytes(), 0u);

    client.Send(
        R"({"op":"load","id":3,"relation":"edge","rows":[["b","c"]]})");
    EXPECT_TRUE(client.ReadLine().Get("ok").as_bool());
    generation_after = db.generation();
    server.Stop();
  }
  // Recovery sees the snapshot plus the post-checkpoint WAL record.
  Database restored;
  RecoveryReport report;
  DurabilityOptions durability;
  durability.fsync = FsyncPolicy::kOff;
  auto storage = DurableStorage::Open(dir, &restored, durability, &report);
  ASSERT_TRUE(storage.ok()) << storage.status().ToString();
  EXPECT_EQ(report.snapshot_file, "snapshot-2.seprec");
  EXPECT_EQ(report.wal_records_replayed, 1u);
  ASSERT_NE(restored.Find("edge"), nullptr);
  EXPECT_EQ(restored.Find("edge")->size(), 2u);
  EXPECT_EQ(restored.generation(), generation_after);
  storage->reset();
  std::filesystem::remove_all(dir);
  std::filesystem::remove(socket_path);
}

TEST_F(SocketServerTest, MalformedAndUnknownRequestsAnswerErrors) {
  SocketClient client(socket_path_);
  ASSERT_TRUE(client.connected());
  client.Send("this is not json");
  json::Value err = client.ReadLine();
  EXPECT_EQ(err.Get("ev").as_string(), "error");
  EXPECT_EQ(err.Get("id").as_int(), -1);

  // The connection survives an error: the next request still works.
  client.Send(R"({"op":"no-such-op","id":3})");
  json::Value unknown = client.ReadLine();
  EXPECT_EQ(unknown.Get("ev").as_string(), "error");
  EXPECT_EQ(unknown.Get("id").as_int(), 3);
  client.Send(R"({"op":"ping","id":4})");
  EXPECT_TRUE(client.ReadLine().Get("ok").as_bool());
}

TEST_F(SocketServerTest, ConcurrentSocketSessionsBitIdentical) {
  constexpr int kSessions = 8;
  json::Object req;
  req["op"] = json::Value("query");
  req["id"] = json::Value(int64_t{1});
  req["program"] = json::Value(std::string(kTcProgram));
  req["query"] = json::Value("tc(a, X)");
  const std::string request = json::Serialize(json::Value(req));

  std::vector<std::string> transcripts(kSessions);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      SocketClient client(socket_path_);
      if (!client.connected()) {
        ++failures;
        return;
      }
      client.Send(request);
      std::string rendered;
      for (const json::Value& line : client.ReadToDone()) {
        const std::string& ev = line.Get("ev").as_string();
        if (ev == "result") {
          rendered += line.Get("tuple").as_string() + "\n";
        } else if (ev == "answer") {
          rendered += StrCat("answers=", line.Get("answers").as_int(),
                             " via ", line.Get("strategy").as_string(),
                             "\n");
        } else if (ev == "error") {
          ++failures;
        }
      }
      transcripts[i] = rendered;
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  for (int i = 1; i < kSessions; ++i) {
    EXPECT_EQ(transcripts[i], transcripts[0]) << "session " << i;
  }
  EXPECT_EQ(transcripts[0],
            "(a, b)\n(a, c)\n(a, d)\nanswers=3 via separable\n");
}

TEST(SocketServerLimits, OverlongLineAnswersErrorAndDisconnects) {
  Database db;
  QueryService service(&db);
  SocketServer server(&service);
  server.set_max_line_bytes(1024);
  const std::string path =
      StrCat(::testing::TempDir(), "/seprec_cap_",
             static_cast<unsigned long>(::getpid()), ".s");
  ASSERT_TRUE(server.Start(path).ok());
  {
    SocketClient client(path);
    ASSERT_TRUE(client.connected());
    // 4 KiB with no '\n': over the cap before any line completes. The
    // server must answer with an error and close, not buffer forever.
    client.SendRaw(std::string(4096, 'x'));
    json::Value err = client.ReadLine();
    EXPECT_EQ(err.Get("ev").as_string(), "error");
    EXPECT_EQ(err.Get("code").as_string(), "RESOURCE_EXHAUSTED");
    EXPECT_TRUE(client.ReadEof());
  }
  // A well-behaved client under the cap is unaffected.
  SocketClient ok_client(path);
  ASSERT_TRUE(ok_client.connected());
  ok_client.Send(R"({"op":"ping","id":1})");
  EXPECT_TRUE(ok_client.ReadLine().Get("ok").as_bool());
  server.Stop();
}

TEST_F(SocketServerTest, ShutdownOpStopsTheServer) {
  SocketClient client(socket_path_);
  ASSERT_TRUE(client.connected());
  client.Send(R"({"op":"shutdown","id":1})");
  EXPECT_TRUE(client.ReadLine().Get("ok").as_bool());
  EXPECT_TRUE(server_->WaitFor(5000));
}

}  // namespace
}  // namespace seprec
