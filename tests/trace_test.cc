// Evaluation tracing: every engine feeds the TraceSink with typed events,
// JsonTraceSink serialises them as schema-v1 JSON lines, and the metrics
// the trace reports are thread-count-invariant where the schema says so.
#include "eval/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "counting/engine.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "eval/incremental.h"
#include "eval/qsq.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "magic/engine.h"
#include "separable/engine.h"

namespace seprec {
namespace {

FixpointOptions TracedOptions(TraceSink* sink, size_t threads = 1) {
  FixpointOptions options;
  options.trace = sink;
  options.limits.parallel.num_threads = threads;
  options.limits.parallel.min_rows_per_task = 1;
  return options;
}

size_t CountKind(const std::vector<TraceEvent>& events, TraceEventKind kind,
                 const std::string& engine = "") {
  size_t n = 0;
  for (const TraceEvent& e : events) {
    if (e.kind == kind && (engine.empty() || e.engine == engine)) ++n;
  }
  return n;
}

const TraceEvent* FindKind(const std::vector<TraceEvent>& events,
                           TraceEventKind kind, const std::string& engine) {
  for (const TraceEvent& e : events) {
    if (e.kind == kind && e.engine == engine) return &e;
  }
  return nullptr;
}

// ---- JSON-lines schema ----------------------------------------------------

std::vector<std::string> TracedJsonLines() {
  std::ostringstream out;
  JsonTraceSink sink(&out);
  Database db;
  MakeChain(&db, "edge", "v", 6);
  EvalStats stats;
  SEPREC_CHECK(EvaluateSemiNaive(TransitiveClosureProgram(), &db,
                                 TracedOptions(&sink), &stats)
                   .ok());
  std::vector<std::string> lines;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(TraceJson, EveryLineCarriesTheEnvelope) {
  std::vector<std::string> lines = TracedJsonLines();
  ASSERT_GE(lines.size(), 3u);  // engine_start, rounds, engine_finish
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& l = lines[i];
    // Envelope: {"v":<schema>,"seq":<i>,"t":<seconds>,"ev":"...
    std::string prefix = "{\"v\":" +
                         std::to_string(JsonTraceSink::kSchemaVersion) +
                         ",\"seq\":" + std::to_string(i) + ",\"t\":";
    EXPECT_EQ(l.rfind(prefix, 0), 0u) << l;
    EXPECT_NE(l.find("\"ev\":\""), std::string::npos) << l;
    EXPECT_EQ(l.back(), '}') << l;
  }
}

TEST(TraceJson, GoldenEventShapes) {
  std::vector<std::string> lines = TracedJsonLines();
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.front().find(
                "\"ev\":\"engine_start\",\"engine\":\"seminaive\""),
            std::string::npos)
      << lines.front();

  const std::string& last = lines.back();
  EXPECT_NE(last.find("\"ev\":\"engine_finish\",\"engine\":\"seminaive\","
                      "\"seconds\":"),
            std::string::npos)
      << last;
  for (const char* key :
       {"\"iterations\":", "\"tuples\":", "\"polls\":",
        "\"insert_attempts\":", "\"insert_new\":"}) {
    EXPECT_NE(last.find(key), std::string::npos) << last;
  }

  bool saw_round_end = false;
  bool saw_rule = false;
  for (const std::string& l : lines) {
    if (l.find("\"ev\":\"round_end\"") != std::string::npos) {
      saw_round_end = true;
      for (const char* key : {"\"phase\":", "\"round\":", "\"emitted\":",
                              "\"inserted\":", "\"delta\":"}) {
        EXPECT_NE(l.find(key), std::string::npos) << l;
      }
    }
    if (l.find("\"ev\":\"rule\"") != std::string::npos) {
      saw_rule = true;
      EXPECT_NE(l.find("\"rule\":\""), std::string::npos) << l;
      EXPECT_NE(l.find("\"probes\":"), std::string::npos) << l;
    }
  }
  EXPECT_TRUE(saw_round_end);
  EXPECT_TRUE(saw_rule);
}

TEST(TraceJson, EscapesControlAndQuoteCharacters) {
  std::ostringstream out;
  JsonTraceSink sink(&out);
  TraceEvent e;
  e.kind = TraceEventKind::kNote;
  e.detail = "a\"b\\c\nd\te\x01" "f";  // \x01 split so 'f' is a literal
  sink.Emit(e);
  std::string line = out.str();
  EXPECT_NE(line.find("a\\\"b\\\\c\\nd\\te\\u0001f"), std::string::npos)
      << line;
}

// ---- Per-engine event coverage -------------------------------------------

void ExpectEngineEvents(const std::vector<TraceEvent>& events,
                        const std::string& engine,
                        const std::string& round_engine,
                        const std::string& phase_prefix) {
  EXPECT_EQ(CountKind(events, TraceEventKind::kEngineStart, engine), 1u)
      << engine;
  ASSERT_EQ(CountKind(events, TraceEventKind::kEngineFinish, engine), 1u)
      << engine;
  const TraceEvent* finish =
      FindKind(events, TraceEventKind::kEngineFinish, engine);
  EXPECT_GT(finish->seconds, 0.0) << engine;
  EXPECT_GT(finish->insert_attempts, 0u) << engine;

  bool saw_round = false;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEventKind::kRoundEnd || e.engine != round_engine) {
      continue;
    }
    if (e.phase.rfind(phase_prefix, 0) == 0) saw_round = true;
  }
  EXPECT_TRUE(saw_round) << engine << ": no round_end with engine '"
                         << round_engine << "' and phase prefix '"
                         << phase_prefix << "'";
}

TEST(TraceCoverage, SemiNaiveEmitsRounds) {
  CollectingTraceSink sink;
  Database db;
  MakeChain(&db, "edge", "v", 8);
  ASSERT_TRUE(EvaluateSemiNaive(TransitiveClosureProgram(), &db,
                                TracedOptions(&sink))
                  .ok());
  ExpectEngineEvents(sink.Events(), "seminaive", "seminaive", "stratum");
}

TEST(TraceCoverage, SeparableEmitsPhaseRounds) {
  CollectingTraceSink sink;
  Database db;
  MakeExample12Data(&db, 12);
  auto result = EvaluateWithSeparable(Example12Program(),
                                      ParseAtomOrDie("buys(a0, Y)"), &db,
                                      TracedOptions(&sink));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<TraceEvent> events = sink.Events();
  ExpectEngineEvents(events, "separable", "separable", "");
  // Both phases of the Figure-2 schema must appear.
  bool saw_phase1 = false;
  bool saw_phase2 = false;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEventKind::kRoundEnd) continue;
    if (e.phase == "phase1") saw_phase1 = true;
    if (e.phase == "phase2") saw_phase2 = true;
  }
  EXPECT_TRUE(saw_phase1);
  EXPECT_TRUE(saw_phase2);
}

TEST(TraceCoverage, MagicEmitsPrefixedRounds) {
  CollectingTraceSink sink;
  Database db;
  MakeChain(&db, "edge", "v", 8);
  auto result = EvaluateWithMagic(TransitiveClosureProgram(),
                                  ParseAtomOrDie("tc(v0, Y)"), &db,
                                  TracedOptions(&sink));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Magic wraps a semi-naive run over the rewritten program: rounds are
  // emitted by the inner engine under the "magic/" phase prefix.
  ExpectEngineEvents(sink.Events(), "magic", "seminaive", "magic/");
  EXPECT_GT(result->stats.seconds, 0.0);
}

TEST(TraceCoverage, CountingEmitsPrefixedRounds) {
  CollectingTraceSink sink;
  Database db;
  MakeChain(&db, "edge", "v", 8);
  auto result = EvaluateWithCounting(TransitiveClosureProgram(),
                                     ParseAtomOrDie("tc(v0, Y)"), &db,
                                     TracedOptions(&sink));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectEngineEvents(sink.Events(), "counting", "seminaive", "counting/");
  EXPECT_GT(result->stats.seconds, 0.0);
}

TEST(TraceCoverage, QsqrEmitsPassRounds) {
  CollectingTraceSink sink;
  Database db;
  MakeChain(&db, "edge", "v", 8);
  auto result = EvaluateWithQsqr(TransitiveClosureProgram(),
                                 ParseAtomOrDie("tc(v0, Y)"), &db,
                                 TracedOptions(&sink));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectEngineEvents(sink.Events(), "qsqr", "qsqr", "pass");
}

TEST(TraceCoverage, IncrementalEmitsUpdatePhases) {
  CollectingTraceSink sink;
  Database db;
  auto engine = IncrementalEngine::Create(TransitiveClosureProgram(), &db);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  engine->set_trace(&sink);
  ASSERT_TRUE(engine->Initialize().ok());
  ASSERT_TRUE(engine->AddFact("edge", {"a", "b"}).ok());
  ASSERT_TRUE(engine->AddFact("edge", {"b", "c"}).ok());
  ASSERT_TRUE(engine->RemoveFact("edge", {"a", "b"}).ok());

  std::vector<TraceEvent> events = sink.Events();
  // Initialize runs the inner fixpoint under the "init/" prefix; each
  // update wraps its rounds in incremental engine_start/engine_finish.
  EXPECT_EQ(CountKind(events, TraceEventKind::kEngineStart, "incremental"),
            3u);
  EXPECT_EQ(CountKind(events, TraceEventKind::kEngineFinish, "incremental"),
            3u);
  bool saw_insert = false;
  bool saw_overdelete = false;
  bool saw_rederive = false;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEventKind::kRoundEnd || e.engine != "incremental") {
      continue;
    }
    if (e.phase == "insert") saw_insert = true;
    if (e.phase == "overdelete") saw_overdelete = true;
    if (e.phase == "rederive") saw_rederive = true;
  }
  EXPECT_TRUE(saw_insert);
  EXPECT_TRUE(saw_overdelete);
  EXPECT_TRUE(saw_rederive);
}

// ---- Parallel invariance --------------------------------------------------

struct TraceTotals {
  uint64_t round_emitted = 0;
  uint64_t round_inserted = 0;
  uint64_t rule_emitted = 0;
  uint64_t finish_tuples = 0;
  size_t rounds = 0;

  bool operator==(const TraceTotals& o) const {
    return round_emitted == o.round_emitted &&
           round_inserted == o.round_inserted &&
           rule_emitted == o.rule_emitted &&
           finish_tuples == o.finish_tuples && rounds == o.rounds;
  }
};

TraceTotals TotalsWithThreads(size_t threads) {
  CollectingTraceSink sink;
  Database db;
  MakeRandomGraph(&db, "edge", "v", 25, 80, 11);
  SEPREC_CHECK(EvaluateSemiNaive(TransitiveClosureProgram(), &db,
                                 TracedOptions(&sink, threads))
                   .ok());
  TraceTotals totals;
  for (const TraceEvent& e : sink.Events()) {
    switch (e.kind) {
      case TraceEventKind::kRoundEnd:
        totals.round_emitted += e.emitted;
        totals.round_inserted += e.inserted;
        ++totals.rounds;
        break;
      case TraceEventKind::kRule:
        totals.rule_emitted += e.emitted;
        break;
      case TraceEventKind::kEngineFinish:
        totals.finish_tuples = e.tuples;
        break;
      default:
        break;
    }
  }
  return totals;
}

TEST(TraceParallel, TotalsAreThreadCountInvariant) {
  TraceTotals serial = TotalsWithThreads(1);
  EXPECT_GT(serial.rounds, 1u);
  EXPECT_GT(serial.round_emitted, 0u);
  // Every emitted head tuple is attributed to some rule event.
  EXPECT_EQ(serial.rule_emitted, serial.round_emitted);
  for (size_t threads : {2u, 4u}) {
    TraceTotals parallel = TotalsWithThreads(threads);
    EXPECT_TRUE(parallel == serial)
        << threads << " threads: rounds " << parallel.rounds << "/"
        << serial.rounds << ", emitted " << parallel.round_emitted << "/"
        << serial.round_emitted << ", inserted " << parallel.round_inserted
        << "/" << serial.round_inserted << ", rule emitted "
        << parallel.rule_emitted << "/" << serial.rule_emitted
        << ", tuples " << parallel.finish_tuples << "/"
        << serial.finish_tuples;
  }
}

// ---- EvalStats breakdowns -------------------------------------------------

TEST(TraceStats, PerRoundAndPerRuleBreakdownsFill) {
  Database db;
  MakeChain(&db, "edge", "v", 8);
  EvalStats stats;
  ASSERT_TRUE(
      EvaluateSemiNaive(TransitiveClosureProgram(), &db, {}, &stats).ok());
  ASSERT_FALSE(stats.rounds.empty());
  ASSERT_FALSE(stats.rule_stats.empty());
  size_t fired = 0;
  for (const auto& [rule, rs] : stats.rule_stats) {
    fired += rs.fired;
    EXPECT_FALSE(rule.empty());
  }
  EXPECT_GT(fired, 0u);
  std::string text = stats.ToString();
  EXPECT_NE(text.find("rounds:"), std::string::npos) << text;
  EXPECT_NE(text.find("rules:"), std::string::npos) << text;
}

}  // namespace
}  // namespace seprec
