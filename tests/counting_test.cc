#include "counting/counting_transform.h"
#include "counting/engine.h"

#include <gtest/gtest.h>

#include "core/query.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "gen/generators.h"
#include "gen/workloads.h"

namespace seprec {
namespace {

Answer ReferenceAnswer(const Program& program, const Atom& query,
                       Database* db) {
  Status status = EvaluateSemiNaive(program, db);
  SEPREC_CHECK(status.ok());
  const Relation* rel = db->Find(query.predicate);
  SEPREC_CHECK(rel != nullptr);
  return SelectMatching(*rel, query, db->symbols());
}

TEST(CountingTransform, Example11Structure) {
  auto rewrite = CountingTransform(Example11Program(),
                                   ParseAtomOrDie("buys(a0, Y)"));
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  EXPECT_EQ(rewrite->count_predicate, "count_buys");
  EXPECT_EQ(rewrite->bound_positions, (std::vector<uint32_t>{0}));
  EXPECT_EQ(rewrite->free_positions, (std::vector<uint32_t>{1}));
  const std::string text = rewrite->program.ToString();
  // Seed and one descend rule per recursive rule (base p+1 = 3).
  EXPECT_NE(text.find("count_buys(0, 0, a0)."), std::string::npos) << text;
  EXPECT_NE(text.find("CK1 is ((CK * 3) + 1)"), std::string::npos) << text;
  EXPECT_NE(text.find("CK1 is ((CK * 3) + 2)"), std::string::npos) << text;
}

TEST(CountingTransform, RequiresConstant) {
  EXPECT_FALSE(
      CountingTransform(Example11Program(), ParseAtomOrDie("buys(X, Y)"))
          .ok());
}

TEST(CountingTransform, RejectsBoundFreeLink) {
  // A literal connecting the bound column to the free column defeats the
  // descend/ascend split.
  Program p = ParseProgramOrDie(
      "t(X, Y) :- a(X, W, Y) & t(W, Y).\n"
      "t(X, Y) :- t0(X, Y).");
  auto rewrite = CountingTransform(p, ParseAtomOrDie("t(c, Y)"));
  EXPECT_FALSE(rewrite.ok());
  EXPECT_EQ(rewrite.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CountingTransform, RejectsShiftingAcrossSides) {
  Program p = ParseProgramOrDie(
      "t(X, Y) :- a(X, W) & t(W, X).\n"  // head X reappears on free side
      "t(X, Y) :- t0(X, Y).");
  EXPECT_FALSE(CountingTransform(p, ParseAtomOrDie("t(c, Y)")).ok());
}

TEST(CountingEngine, Example11Answer) {
  Database db;
  MakeExample11Data(&db, 8);
  auto run = EvaluateWithCounting(Example11Program(),
                                  ParseAtomOrDie("buys(a0, Y)"), &db);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->answer.size(), 1u);
  EXPECT_EQ(run->answer.ToStrings(db.symbols())[0], "(a0, b)");
}

TEST(CountingEngine, CountRelationIsExponentialOnExample11) {
  // friend == idol == a chain: 2^i derivation paths reach level i, so the
  // count relation stores Omega(2^n) tuples (the paper's Section 4 claim).
  size_t previous = 0;
  for (size_t n : {4u, 6u, 8u, 10u}) {
    Database db;
    MakeExample11Data(&db, n);
    auto run = EvaluateWithCounting(Example11Program(),
                                    ParseAtomOrDie("buys(a0, Y)"), &db);
    ASSERT_TRUE(run.ok());
    size_t count_size = run->stats.relation_sizes.at("count_buys");
    // Sum over levels i of 2^i = 2^n - 1.
    EXPECT_EQ(count_size, (size_t{1} << n) - 1) << "n=" << n;
    EXPECT_GT(count_size, previous);
    previous = count_size;
  }
}

TEST(CountingEngine, LinearOnSingleRuleChain) {
  // With one recursive rule the path index is degenerate and counting is
  // O(n) — the good case that motivated the method.
  Database db;
  MakeChain(&db, "edge", "v", 30);
  Program tc = TransitiveClosureProgram();
  auto run = EvaluateWithCounting(tc, ParseAtomOrDie("tc(v0, Y)"), &db);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer.size(), 29u);
  EXPECT_LE(run->stats.relation_sizes.at("count_tc"), 30u);
}

TEST(CountingEngine, ClassicChainRuleWithAscent) {
  // t(X, Y) :- up(X, U), t(U, V), down(V, Y): the ascent replays `down`.
  Program p = ParseProgramOrDie(
      "t(X, Y) :- up(X, U) & t(U, V) & down(V, Y).\n"
      "t(X, Y) :- flat(X, Y).");
  Database db1, db2;
  MakeSameGenerationData(&db1, 2, 4);
  MakeSameGenerationData(&db2, 2, 4);
  // Rename relations to match the program.
  // (MakeSameGenerationData created up/down/flat already.)
  Atom query = ParseAtomOrDie("t(s7, Y)");
  auto run = EvaluateWithCounting(p, query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  Answer expected = ReferenceAnswer(p, query, &db2);
  EXPECT_EQ(run->answer, expected);
  EXPECT_FALSE(run->answer.empty());
}

TEST(CountingEngine, AgreesWithSemiNaiveOnLemma43Family) {
  for (size_t p : {1u, 2u, 3u}) {
    Program program = SpkProgram(p, 2);
    Database db1, db2;
    MakeLemma43Data(&db1, p, 2, 6);
    MakeLemma43Data(&db2, p, 2, 6);
    Atom query = FirstColumnQuery("t", 2, "c0");
    auto run = EvaluateWithCounting(program, query, &db1);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->answer, ReferenceAnswer(program, query, &db2))
        << "p=" << p;
  }
}

TEST(CountingEngine, CyclicDataExhaustsBudget) {
  // The level index grows forever on a cycle; the iteration budget turns
  // that into RESOURCE_EXHAUSTED (Counting's known failure mode; the
  // Separable algorithm terminates on the same input — Lemma 3.4).
  Database db;
  MakeCycle(&db, "edge", "v", 4);
  FixpointOptions options;
  options.limits.max_iterations = 40;  // below the ~60 levels where K overflows
  auto run = EvaluateWithCounting(TransitiveClosureProgram(),
                                  ParseAtomOrDie("tc(v0, Y)"), &db, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
      << run.status().ToString();
}

TEST(CountingEngine, CyclicDataWithPathIndexExhaustsTupleBudget) {
  // For p > 1 the derivation-path column K gains a digit per level, so on
  // cyclic data the count relation grows exponentially until the tuple
  // budget stops it.
  Program program = SpkProgram(2, 2);
  Database db;
  MakeCycle(&db, "a1", "v", 4);
  MakeCycle(&db, "a2", "v", 4);
  MakeFact(&db, "t0", {"v0", "w"});
  FixpointOptions options;
  options.limits.max_tuples = 50000;
  auto run = EvaluateWithCounting(program, FirstColumnQuery("t", 2, "v0"),
                                  &db, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
      << run.status().ToString();
}

TEST(CountingTransform, SingleRuleDropsPathColumn) {
  // p = 1: classic Counting — count(I, X), no exponential path column.
  auto rewrite = CountingTransform(TransitiveClosureProgram(),
                                   ParseAtomOrDie("tc(v0, Y)"));
  ASSERT_TRUE(rewrite.ok());
  EXPECT_FALSE(rewrite->uses_path_index);
  const std::string text = rewrite->program.ToString();
  EXPECT_NE(text.find("count_tc(0, v0)."), std::string::npos) << text;
  EXPECT_EQ(text.find("CK"), std::string::npos) << text;
  // p = 2: the generalized method keeps it.
  auto rewrite2 = CountingTransform(Example11Program(),
                                    ParseAtomOrDie("buys(a0, Y)"));
  ASSERT_TRUE(rewrite2.ok());
  EXPECT_TRUE(rewrite2->uses_path_index);
}

TEST(CountingEngine, BothColumnsBound) {
  Database db;
  MakeChain(&db, "edge", "v", 6);
  auto run = EvaluateWithCounting(TransitiveClosureProgram(),
                                  ParseAtomOrDie("tc(v1, v4)"), &db);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->answer.size(), 1u);
}

TEST(CountingEngine, EmptyAnswerForUnreachableConstant) {
  Database db;
  MakeChain(&db, "edge", "v", 6);
  auto run = EvaluateWithCounting(TransitiveClosureProgram(),
                                  ParseAtomOrDie("tc(v5, Y)"), &db);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->answer.empty());
}

TEST(CountingEngine, SupportMaterialisedFirst) {
  Program p = ParseProgramOrDie(
      "edge(X, Y) :- raw(X, Y).\n"
      "tc(X, Y) :- edge(X, W) & tc(W, Y).\n"
      "tc(X, Y) :- edge(X, Y).");
  Database db;
  MakeChain(&db, "raw", "v", 5);
  auto run = EvaluateWithCounting(p, ParseAtomOrDie("tc(v0, Y)"), &db);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer.size(), 4u);
}

}  // namespace
}  // namespace seprec
