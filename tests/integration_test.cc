// End-to-end scenarios exercising the public API the way the examples and
// a downstream user would: parse a program with queries, load facts,
// dispatch through the QueryProcessor, inspect stats and explanations.
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "datalog/expand.h"
#include "datalog/parser.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "separable/engine.h"

namespace seprec {
namespace {

TEST(Integration, ParsedUnitWithFactsAndQueries) {
  auto unit = ParseUnit(R"(
    % A small social commerce scenario (paper Example 1.1).
    friend(ann, bob).  friend(bob, cal).
    idol(ann, dia).    idol(cal, dia).
    perfectFor(dia, hat).
    buys(X, Y) :- friend(X, W) & buys(W, Y).
    buys(X, Y) :- idol(X, W) & buys(W, Y).
    buys(X, Y) :- perfectFor(X, Y).
    ?- buys(ann, Y).
  )");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  ASSERT_EQ(unit->queries.size(), 1u);

  auto qp = QueryProcessor::Create(unit->program);
  ASSERT_TRUE(qp.ok()) << qp.status().ToString();
  Database db;
  auto result = qp->Answer(unit->queries[0], &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->strategy, Strategy::kSeparable);
  // ann -> idol dia -> perfect hat; ann -> bob -> cal -> idol dia -> hat.
  ASSERT_EQ(result->answer.size(), 1u);
  EXPECT_EQ(result->answer.ToStrings(db.symbols())[0], "(ann, hat)");
}

TEST(Integration, FactsInProgramAreIdbAndQueryable) {
  Program p = ParseProgramOrDie(
      "edge(a, b). edge(b, c). edge(c, d).\n"
      "tc(X, Y) :- edge(X, W) & tc(W, Y).\n"
      "tc(X, Y) :- edge(X, Y).");
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  Database db;
  auto result = qp->Answer(ParseAtomOrDie("tc(a, Y)"), &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->answer.size(), 3u);
  EXPECT_EQ(result->strategy, Strategy::kSeparable);
}

TEST(Integration, MixedEdbFromDatabaseAndFactsFromProgram) {
  Program p = ParseProgramOrDie(
      "edge(extra, v0).\n"
      "tc(X, Y) :- edge(X, W) & tc(W, Y).\n"
      "tc(X, Y) :- edge(X, Y).");
  Database db;
  MakeChain(&db, "edge", "v", 4);
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  auto result = qp->Answer(ParseAtomOrDie("tc(extra, Y)"), &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // extra -> v0 -> v1 -> v2 -> v3.
  EXPECT_EQ(result->answer.size(), 4u);
}

TEST(Integration, ExplainAndDescribeForDocumentation) {
  auto qp = QueryProcessor::Create(Example12Program());
  ASSERT_TRUE(qp.ok());
  const SeparableRecursion* sep = qp->FindSeparable("buys");
  ASSERT_NE(sep, nullptr);
  std::string describe = DescribeSeparable(*sep);
  EXPECT_NE(describe.find("separable recursion 'buys'"), std::string::npos);
  auto explain = ExplainSchema(*sep, ParseAtomOrDie("buys(tom, Y)"));
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("endwhile"), std::string::npos);
}

TEST(Integration, ExpansionMatchesEvaluation) {
  // Evaluating each expansion string by hand must agree with the engine:
  // here we simply check that the number of derivation strings with d
  // applications is rules^d and the engine's answers are found.
  Program p = Example11Program();
  auto exp = Expand(p, ParseAtomOrDie("buys(X, Y)"), 4);
  ASSERT_TRUE(exp.ok());
  EXPECT_EQ(exp->size(), 1u + 2u + 4u + 8u + 16u);
}

TEST(Integration, CompilerSupplementsNotReplaces) {
  // The paper's conclusion in action: one processor, three programs,
  // three different strategies chosen automatically.
  Program mixed = ParseProgramOrDie(
      // Separable recursion.
      "reach(X, Y) :- hop(X, W) & reach(W, Y).\n"
      "reach(X, Y) :- hop(X, Y).\n"
      // Non-separable linear recursion (condition 4 violation).
      "pal(X, Y) :- l(X, U) & pal(U, V) & r(V, Y).\n"
      "pal(X, Y) :- mid(X, Y).\n"
      // Non-recursive view.
      "pair(X, Y) :- hop(X, Y), hop(Y, X).");
  auto qp = QueryProcessor::Create(mixed);
  ASSERT_TRUE(qp.ok()) << qp.status().ToString();
  EXPECT_EQ(qp->Decide(ParseAtomOrDie("reach(a, Y)")).strategy,
            Strategy::kSeparable);
  EXPECT_EQ(qp->Decide(ParseAtomOrDie("pal(a, Y)")).strategy,
            Strategy::kMagic);
  EXPECT_EQ(qp->Decide(ParseAtomOrDie("pair(a, Y)")).strategy,
            Strategy::kSemiNaive);
}

TEST(Integration, BudgetsPropagateThroughProcessor) {
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeChain(&db, "edge", "v", 300);
  FixpointOptions options;
  options.limits.max_iterations = 5;
  auto result = qp->Answer(ParseAtomOrDie("tc(v0, Y)"), &db,
                           Strategy::kSeparable, options);
  // The processor owns stop handling: a tripped budget yields OK with a
  // partial (sound, truncated) answer and a rolled-back database.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->partial);
  ASSERT_TRUE(result->degradation.has_value());
  EXPECT_EQ(result->degradation->cause, StopCause::kIterations);
  EXPECT_LT(result->answer.size(), 300u);
  EXPECT_GT(result->answer.size(), 0u);
  // Rollback: the scratch/IDB relations of the attempt are gone.
  EXPECT_EQ(db.Find("tc"), nullptr);
}

TEST(Integration, QuotedAndNumericConstantsEndToEnd) {
  Program p = ParseProgramOrDie(
      "route('New York', 1). route('San Francisco', 2).\n"
      "next(X, Y) :- route(X, A), route(Y, B), B is A + 1.");
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok()) << qp.status().ToString();
  Database db;
  auto result = qp->Answer(ParseAtomOrDie("next('New York', Y)"), &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->answer.size(), 1u);
  EXPECT_EQ(result->answer.ToStrings(db.symbols())[0],
            "(New York, San Francisco)");
}

TEST(Integration, StatsComparableAcrossEngines) {
  // The Example 1.2 measurement at small n: Magic materialises
  // quadratically many buys tuples; Separable stays linear.
  const size_t n = 24;
  auto qp = QueryProcessor::Create(Example12Program());
  ASSERT_TRUE(qp.ok());

  Database sep_db;
  MakeExample12Data(&sep_db, n);
  auto sep = qp->Answer(ParseAtomOrDie("buys(a0, Y)"), &sep_db,
                        Strategy::kSeparable);
  ASSERT_TRUE(sep.ok());

  Database magic_db;
  MakeExample12Data(&magic_db, n);
  auto magic = qp->Answer(ParseAtomOrDie("buys(a0, Y)"), &magic_db,
                          Strategy::kMagic);
  ASSERT_TRUE(magic.ok());

  EXPECT_EQ(sep->answer, magic->answer);
  EXPECT_LE(sep->stats.max_relation_size, n);
  EXPECT_GE(magic->stats.max_relation_size, n * n / 2);
}

}  // namespace
}  // namespace seprec
