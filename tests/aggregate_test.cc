// Stratified head aggregates: count / sum / min / max with group-by.
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "core/provenance.h"
#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "gen/generators.h"
#include "magic/engine.h"

namespace seprec {
namespace {

TEST(Aggregate, ParseAndPrintRoundTrip) {
  Program p = ParseProgramOrDie(
      "outdeg(X, count(Y)) :- edge(X, Y).\n"
      "total(sum(N)) :- score(P, N).\n"
      "best(P, max(N)) :- score(P, N).\n"
      "worst(min(N)) :- score(P, N).");
  ASSERT_EQ(p.rules.size(), 4u);
  ASSERT_TRUE(p.rules[0].aggregate.has_value());
  EXPECT_EQ(p.rules[0].aggregate->op, AggregateSpec::Op::kCount);
  EXPECT_EQ(p.rules[0].aggregate->head_position, 1u);
  EXPECT_EQ(p.rules[0].aggregate->over_var, "Y");
  EXPECT_EQ(p.rules[0].ToString(), "outdeg(X, count(Y)) :- edge(X, Y).");
  EXPECT_EQ(p.rules[1].aggregate->op, AggregateSpec::Op::kSum);
  EXPECT_EQ(p.rules[1].aggregate->head_position, 0u);
  // Round trip.
  Program p2 = ParseProgramOrDie(p.ToString());
  EXPECT_EQ(p.ToString(), p2.ToString());
}

TEST(Aggregate, ParserRejectsMalformed) {
  EXPECT_FALSE(ParseProgram("p(count(Y)).").ok());             // no body
  EXPECT_FALSE(ParseProgram("p(count(3)) :- q(X).").ok());     // not a var
  EXPECT_FALSE(
      ParseProgram("p(count(X), sum(Y)) :- q(X, Y).").ok());   // two aggs
  EXPECT_FALSE(ParseProgram("?- p(count(X)).").ok());          // in query
}

TEST(Aggregate, CountPredicateNameStillUsableAsSymbol) {
  // Plain `count` with no parenthesis is an ordinary symbol/predicate.
  Program p = ParseProgramOrDie("p(count) :- q(count).");
  EXPECT_FALSE(p.rules[0].aggregate.has_value());
}

TEST(Aggregate, CountGroupBy) {
  Program p = ParseProgramOrDie("outdeg(X, count(Y)) :- edge(X, Y).");
  Database db;
  ASSERT_TRUE(db.AddFact("edge", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("edge", {"a", "c"}).ok());
  ASSERT_TRUE(db.AddFact("edge", {"a", "c"}).ok());  // duplicate: set sem.
  ASSERT_TRUE(db.AddFact("edge", {"b", "c"}).ok());
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.Find("outdeg")->DebugString(db.symbols()),
            "outdeg(a, 2)\noutdeg(b, 1)\n");
}

TEST(Aggregate, SumMinMax) {
  Program p = ParseProgramOrDie(
      "team_total(T, sum(N)) :- score(T, P, N).\n"
      "team_best(T, max(N)) :- score(T, P, N).\n"
      "team_worst(T, min(N)) :- score(T, P, N).");
  Database db;
  Relation* score = *db.CreateRelation("score", 3);
  auto add = [&](const char* t, const char* pl, int64_t n) {
    score->Insert({db.symbols().Intern(t), db.symbols().Intern(pl),
                   Value::Int(n)});
  };
  add("red", "ann", 10);
  add("red", "bob", 7);
  add("blue", "cal", -3);
  add("blue", "dee", 5);
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.Find("team_total")->DebugString(db.symbols()),
            "team_total(blue, 2)\nteam_total(red, 17)\n");
  EXPECT_EQ(db.Find("team_best")->DebugString(db.symbols()),
            "team_best(blue, 5)\nteam_best(red, 10)\n");
  EXPECT_EQ(db.Find("team_worst")->DebugString(db.symbols()),
            "team_worst(blue, -3)\nteam_worst(red, 7)\n");
}

TEST(Aggregate, GlobalAggregateNoGroup) {
  Program p = ParseProgramOrDie("n_edges(count(E)) :- pair(E).\n"
                                "pair(Y) :- edge(X, Y).");
  Database db;
  MakeChain(&db, "edge", "v", 5);
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.Find("n_edges")->DebugString(db.symbols()), "n_edges(4)\n");
}

TEST(Aggregate, SetSemanticsDeduplicatesBeforeCounting) {
  // Two rules deriving the same pair must count once.
  Program p = ParseProgramOrDie(
      "connected(X, Y) :- edge(X, Y).\n"
      "connected(X, Y) :- edge(Y, X).\n"
      "degree(X, count(Y)) :- connected(X, Y).");
  Database db;
  ASSERT_TRUE(db.AddFact("edge", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("edge", {"b", "a"}).ok());
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.Find("degree")->DebugString(db.symbols()),
            "degree(a, 1)\ndegree(b, 1)\n");
}

TEST(Aggregate, OverRecursiveLowerStratum) {
  Program p = ParseProgramOrDie(
      "tc(X, Y) :- edge(X, W) & tc(W, Y).\n"
      "tc(X, Y) :- edge(X, Y).\n"
      "reach_count(X, count(Y)) :- tc(X, Y).");
  Database db;
  MakeChain(&db, "edge", "v", 5);
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.Find("reach_count")->DebugString(db.symbols()),
            "reach_count(v0, 4)\nreach_count(v1, 3)\nreach_count(v2, 2)\n"
            "reach_count(v3, 1)\n");
}

TEST(Aggregate, ThroughRecursionRejected) {
  Program p = ParseProgramOrDie(
      "t(X, count(Y)) :- t(X, Y), edge(X, Y).");
  EXPECT_FALSE(ProgramInfo::Analyze(p).ok());
}

TEST(Aggregate, SumOverSymbolsIsOutOfRange) {
  Program p = ParseProgramOrDie("total(sum(Y)) :- item(Y).");
  Database db;
  ASSERT_TRUE(db.AddFact("item", {"pear"}).ok());
  Status status = EvaluateSemiNaive(p, &db);
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
}

TEST(Aggregate, CountOverSymbolsIsFine) {
  Program p = ParseProgramOrDie("n(count(Y)) :- item(Y).");
  Database db;
  ASSERT_TRUE(db.AddFact("item", {"pear"}).ok());
  ASSERT_TRUE(db.AddFact("item", {"plum"}).ok());
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.Find("n")->DebugString(db.symbols()), "n(2)\n");
}

TEST(Aggregate, NaiveEngineMatches) {
  Program p = ParseProgramOrDie("outdeg(X, count(Y)) :- edge(X, Y).");
  Database db1, db2;
  MakeRandomGraph(&db1, "edge", "v", 10, 25, 8);
  MakeRandomGraph(&db2, "edge", "v", 10, 25, 8);
  ASSERT_TRUE(EvaluateSemiNaive(p, &db1).ok());
  ASSERT_TRUE(EvaluateNaive(p, &db2).ok());
  EXPECT_EQ(db1.Find("outdeg")->DebugString(db1.symbols()),
            db2.Find("outdeg")->DebugString(db2.symbols()));
}

TEST(Aggregate, QueryProcessorRoutesToSemiNaive) {
  Program p = ParseProgramOrDie(
      "outdeg(X, count(Y)) :- edge(X, Y).\n"
      "busy(X) :- outdeg(X, N), N >= 2.");
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok()) << qp.status().ToString();
  EXPECT_EQ(qp->Decide(ParseAtomOrDie("outdeg(a, N)")).strategy,
            Strategy::kSemiNaive);
  Database db;
  ASSERT_TRUE(db.AddFact("edge", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("edge", {"a", "c"}).ok());
  ASSERT_TRUE(db.AddFact("edge", {"b", "c"}).ok());
  auto result = qp->Answer(ParseAtomOrDie("busy(X)"), &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->answer.ToStrings(db.symbols()),
            (std::vector<std::string>{"(a)"}));
}

TEST(Aggregate, MagicTreatsAggregatePredicateAsBase) {
  // A recursion over an aggregate-derived edge weight relation: magic on
  // the recursion must still work, reading the aggregate relation as
  // materialised base data.
  Program p = ParseProgramOrDie(
      "deg(X, count(Y)) :- edge(X, Y).\n"
      "hub(X) :- deg(X, N), N >= 2.\n"
      "hubreach(X, Y) :- hub(X), edge(X, Y).\n"
      "hubreach(X, Y) :- hubreach(X, W), edge(W, Y).");
  Database db1, db2;
  for (Database* db : {&db1, &db2}) {
    ASSERT_TRUE(db->AddFact("edge", {"a", "b"}).ok());
    ASSERT_TRUE(db->AddFact("edge", {"a", "c"}).ok());
    ASSERT_TRUE(db->AddFact("edge", {"b", "d"}).ok());
  }
  Atom query = ParseAtomOrDie("hubreach(a, Y)");
  auto magic = EvaluateWithMagic(p, query, &db1);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  auto ref = qp->Answer(query, &db2, Strategy::kSemiNaive);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(magic->answer.ToStrings(db1.symbols()),
            ref->answer.ToStrings(db2.symbols()));
  EXPECT_EQ(magic->answer.size(), 3u);  // b, c, d
}

TEST(Aggregate, MagicRejectsAggregateQueryPredicate) {
  Program p = ParseProgramOrDie("outdeg(X, count(Y)) :- edge(X, Y).");
  Database db;
  auto run = EvaluateWithMagic(p, ParseAtomOrDie("outdeg(a, N)"), &db);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Aggregate, ProvenanceReportsAggregateOpaquely) {
  Program p = ParseProgramOrDie("outdeg(X, count(Y)) :- edge(X, Y).");
  Database db;
  ASSERT_TRUE(db.AddFact("edge", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("edge", {"a", "c"}).ok());
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  auto node = ExplainTuple(p, &db, ParseAtomOrDie("outdeg(a, 2)"));
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  EXPECT_NE(node->rule.find("count(Y)"), std::string::npos);
  EXPECT_TRUE(node->premises.empty());
}

TEST(Aggregate, RepeatedGroupVariableRectifies) {
  // p(X, X, count(Y)): repeated head variable plus an aggregate.
  Program p = ParseProgramOrDie("p(X, X, count(Y)) :- edge(X, Y).");
  Database db;
  ASSERT_TRUE(db.AddFact("edge", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("edge", {"a", "c"}).ok());
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.Find("p")->DebugString(db.symbols()), "p(a, a, 2)\n");
}

}  // namespace
}  // namespace seprec
