#include "eval/selection_push.h"

#include <gtest/gtest.h>

#include "core/query.h"
#include "datalog/parser.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "separable/engine.h"

namespace seprec {
namespace {

Answer ReferenceAnswer(const Program& program, const Atom& query,
                       Database* db) {
  Status status = EvaluateSemiNaive(program, db);
  SEPREC_CHECK(status.ok());
  const Relation* rel = db->Find(query.predicate);
  SEPREC_CHECK(rel != nullptr);
  return SelectMatching(*rel, query, db->symbols());
}

TEST(StablePositions, Example11) {
  // Column 1 (the product) is persistent -> stable; column 0 changes.
  auto stable = StablePositions(Example11Program(), "buys");
  ASSERT_TRUE(stable.ok());
  EXPECT_EQ(*stable, (std::vector<uint32_t>{1}));
}

TEST(StablePositions, Example12HasNone) {
  auto stable = StablePositions(Example12Program(), "buys");
  ASSERT_TRUE(stable.ok());
  EXPECT_TRUE(stable->empty());
}

TEST(StablePositions, MultipleStableColumns) {
  Program p = ParseProgramOrDie(
      "t(A, B, C) :- e(A, W) & t(W, B, C).\n"
      "t(A, B, C) :- t0(A, B, C).");
  auto stable = StablePositions(p, "t");
  ASSERT_TRUE(stable.ok());
  EXPECT_EQ(*stable, (std::vector<uint32_t>{1, 2}));
}

TEST(SelectionPush, AgreesWithSemiNaiveOnStableSelection) {
  Database db1, db2;
  MakeExample11Data(&db1, 10);
  MakeExample11Data(&db2, 10);
  Atom query = ParseAtomOrDie("buys(X, b)");
  auto run = EvaluateWithSelectionPush(Example11Program(), query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer, ReferenceAnswer(Example11Program(), query, &db2));
  EXPECT_EQ(run->answer.size(), 10u);
}

TEST(SelectionPush, AgreesWithSeparableDummyClassPath) {
  // On separable recursions, stable columns are t|pers: AU79 pushing and
  // the Separable algorithm's dummy-class case coincide (the related-work
  // comparison in Section 1).
  Database db1, db2;
  MakeExample11Data(&db1, 12);
  MakeExample11Data(&db2, 12);
  Atom query = ParseAtomOrDie("buys(X, b)");
  auto push = EvaluateWithSelectionPush(Example11Program(), query, &db1);
  auto sep = EvaluateWithSeparable(Example11Program(), query, &db2);
  ASSERT_TRUE(push.ok());
  ASSERT_TRUE(sep.ok());
  EXPECT_EQ(push->answer, sep->answer);
}

TEST(SelectionPush, RejectsNonStableSelection) {
  Database db;
  MakeExample11Data(&db, 5);
  auto run = EvaluateWithSelectionPush(Example11Program(),
                                       ParseAtomOrDie("buys(a0, Y)"), &db);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SelectionPush, RejectsUnboundQuery) {
  Database db;
  auto run = EvaluateWithSelectionPush(Example11Program(),
                                       ParseAtomOrDie("buys(X, Y)"), &db);
  EXPECT_FALSE(run.ok());
}

TEST(SelectionPush, SpecializedProgramIsExposed) {
  Database db;
  MakeExample11Data(&db, 5);
  auto run = EvaluateWithSelectionPush(Example11Program(),
                                       ParseAtomOrDie("buys(X, b)"), &db);
  ASSERT_TRUE(run.ok());
  const std::string text = run->specialized.ToString();
  EXPECT_NE(text.find("pushed_buys"), std::string::npos) << text;
  EXPECT_NE(text.find("b)"), std::string::npos) << text;
}

TEST(SelectionPush, WorksThroughSupportIdb) {
  Program p = ParseProgramOrDie(
      "e(X, Y) :- raw(X, Y).\n"
      "t(A, B) :- e(A, W) & t(W, B).\n"
      "t(A, B) :- t0(A, B).");
  Database db1, db2;
  for (Database* db : {&db1, &db2}) {
    MakeChain(db, "raw", "v", 5);
    MakeFact(db, "t0", {"v4", "prize"});
  }
  Atom query = ParseAtomOrDie("t(X, prize)");
  auto run = EvaluateWithSelectionPush(p, query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer, ReferenceAnswer(p, query, &db2));
  EXPECT_EQ(run->answer.size(), 5u);
}

TEST(SelectionPush, NonStableApplicableOnNonSeparableProgram) {
  // AU79 applies to some non-separable recursions (incommensurate
  // classes): same-generation's columns are both unstable, but a variant
  // with a persistent tag column is non-separable (condition 4) yet has a
  // stable column AU79 can exploit.
  Program p = ParseProgramOrDie(
      "t(X, Y, Tag) :- up(X, U) & t(U, V, Tag) & down(V, Y).\n"
      "t(X, Y, Tag) :- flat(X, Y) & tag(Tag).");
  auto stable = StablePositions(p, "t");
  ASSERT_TRUE(stable.ok());
  EXPECT_EQ(*stable, (std::vector<uint32_t>{2}));

  Database db1, db2;
  for (Database* db : {&db1, &db2}) {
    MakeSameGenerationData(db, 2, 3);
    MakeFact(db, "tag", {"red"});
    MakeFact(db, "tag", {"blue"});
  }
  Atom query = ParseAtomOrDie("t(X, Y, red)");
  auto run = EvaluateWithSelectionPush(p, query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer, ReferenceAnswer(p, query, &db2));
  EXPECT_FALSE(run->answer.empty());
}

}  // namespace
}  // namespace seprec
