// Parameterized cross-engine sweep over the whole S_p^k family (the
// recursion class of Lemmas 4.1-4.3) on both of the paper's databases and
// on random data.
#include <gtest/gtest.h>

#include <tuple>

#include "core/compiler.h"
#include "core/query.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace seprec {
namespace {

class SpkSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, int>> {};

void LoadData(Database* db, size_t p, size_t k, int data_kind) {
  switch (data_kind) {
    case 0:  // Lemma 4.2 shape (cross-product exit)
      MakeLemma42Data(db, p, k, 4);
      return;
    case 1:  // Lemma 4.3 shape (identical chains)
      MakeLemma43Data(db, p, k, 5);
      return;
    default: {  // random
      for (size_t i = 1; i <= p; ++i) {
        MakeRandomGraph(db, StrCat("a", i), "c", 8,
                        10, 31 * data_kind + i);
      }
      Relation* t0 = *db->CreateRelation("t0", k);
      Rng rng(17 * data_kind);
      for (int t = 0; t < 10; ++t) {
        std::vector<Value> row;
        for (size_t c = 0; c < k; ++c) {
          row.push_back(db->symbols().Intern(
              NodeName("c", rng.Below(8))));
        }
        t0->Insert(Row(row.data(), row.size()));
      }
      return;
    }
  }
}

TEST_P(SpkSweepTest, EnginesAgree) {
  auto [p, k, data_kind] = GetParam();
  Program program = SpkProgram(p, k);
  auto qp = QueryProcessor::Create(program);
  ASSERT_TRUE(qp.ok());
  Atom query = FirstColumnQuery("t", k, "c0");

  Database ref_db;
  LoadData(&ref_db, p, k, data_kind);
  ASSERT_TRUE(EvaluateSemiNaive(program, &ref_db).ok());
  Answer expected =
      SelectMatching(*ref_db.Find("t"), query, ref_db.symbols());

  std::vector<Strategy> strategies = {Strategy::kSeparable, Strategy::kMagic};
  // Counting applies on acyclic shapes only (random graphs may cycle).
  if (data_kind <= 1) strategies.push_back(Strategy::kCounting);
  for (Strategy s : strategies) {
    Database db;
    LoadData(&db, p, k, data_kind);
    FixpointOptions budget;
    budget.limits.max_tuples = 2'000'000;
    auto result = qp->Answer(query, &db, s, budget);
    ASSERT_TRUE(result.ok())
        << StrategyToString(s) << ": " << result.status().ToString();
    EXPECT_EQ(result->answer, expected)
        << "p=" << p << " k=" << k << " data=" << data_kind << " strategy "
        << StrategyToString(s);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpkSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 3),    // p
                       ::testing::Values(1, 2, 3),    // k
                       ::testing::Values(0, 1, 2, 3)),  // data shape
    [](const ::testing::TestParamInfo<std::tuple<size_t, size_t, int>>&
           info) {
      return StrCat("p", std::get<0>(info.param), "_k",
                    std::get<1>(info.param), "_data",
                    std::get<2>(info.param));
    });

}  // namespace
}  // namespace seprec
