#include "datalog/ast.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace seprec {
namespace {

TEST(Term, Constructors) {
  EXPECT_TRUE(Term::Var("X").IsVar());
  EXPECT_FALSE(Term::Sym("tom").IsVar());
  EXPECT_TRUE(Term::Sym("tom").IsConstant());
  EXPECT_EQ(Term::Int(5).int_value, 5);
}

TEST(Term, EqualityAndOrdering) {
  EXPECT_EQ(Term::Var("X"), Term::Var("X"));
  EXPECT_NE(Term::Var("X"), Term::Sym("X"));
  EXPECT_NE(Term::Int(1), Term::Int(2));
  EXPECT_LT(Term::Var("A"), Term::Var("B"));
}

TEST(Term, MakeTermClassification) {
  EXPECT_TRUE(MakeTerm("Xyz").IsVar());
  EXPECT_TRUE(MakeTerm("_under").IsVar());
  EXPECT_EQ(MakeTerm("tom").kind, Term::Kind::kSymbol);
  EXPECT_EQ(MakeTerm("17").kind, Term::Kind::kInt);
  EXPECT_EQ(MakeTerm("-4").int_value, -4);
}

TEST(Atom, ToStringAndGround) {
  Atom atom = MakeAtomFromTokens("p", {"X", "tom", "3"});
  EXPECT_EQ(atom.ToString(), "p(X, tom, 3)");
  EXPECT_FALSE(atom.IsGround());
  Atom ground = MakeAtomFromTokens("p", {"a", "b"});
  EXPECT_TRUE(ground.IsGround());
  Atom prop;
  prop.predicate = "raining";
  EXPECT_EQ(prop.ToString(), "raining");
}

TEST(Expr, BuildAndPrint) {
  Expr e = Expr::Binary(Expr::Op::kAdd,
                        Expr::Binary(Expr::Op::kMul, Expr::Leaf(Term::Var("X")),
                                     Expr::Leaf(Term::Int(2))),
                        Expr::Leaf(Term::Int(1)));
  EXPECT_EQ(e.ToString(), "((X * 2) + 1)");
}

TEST(Literal, ToStringForms) {
  EXPECT_EQ(Literal::MakeAtom(MakeAtomFromTokens("p", {"X"})).ToString(),
            "p(X)");
  EXPECT_EQ(
      Literal::MakeCompare(CmpOp::kLe, Term::Var("X"), Term::Int(3)).ToString(),
      "X <= 3");
  EXPECT_EQ(Literal::MakeAssign("Z", Expr::Leaf(Term::Int(9))).ToString(),
            "Z is 9");
}

TEST(Rule, ToStringFactVsRule) {
  Program p = ParseProgramOrDie("e(a, b).\nt(X) :- e(X, Y).");
  EXPECT_EQ(p.rules[0].ToString(), "e(a, b).");
  EXPECT_EQ(p.rules[1].ToString(), "t(X) :- e(X, Y).");
}

TEST(CollectVars, AllLiteralKinds) {
  Program p = ParseProgramOrDie(
      "h(A) :- p(A, B), B < C, D is A + B, q(D).");
  std::set<std::string> vars;
  CollectVars(p.rules[0], &vars);
  EXPECT_EQ(vars, (std::set<std::string>{"A", "B", "C", "D"}));
}

TEST(Substitute, RenamesVariablesEverywhere) {
  Program p = ParseProgramOrDie("h(A, B) :- p(A, C), C = B, D is A + 1, q(D).");
  Substitution sub;
  sub["A"] = Term::Var("X");
  sub["C"] = Term::Sym("fixed");
  Rule r = Substitute(p.rules[0], sub);
  EXPECT_EQ(r.ToString(), "h(X, B) :- p(X, fixed), fixed = B, D is (X + 1), q(D).");
}

TEST(Substitute, ConstantsUntouched) {
  Atom atom = MakeAtomFromTokens("p", {"a", "X"});
  Substitution sub;
  sub["X"] = Term::Int(7);
  Atom out = Substitute(atom, sub);
  EXPECT_EQ(out.ToString(), "p(a, 7)");
}

TEST(Rule, BodyAtomsHelpers) {
  Program p = ParseProgramOrDie("t(X, Y) :- a(X, W), t(W, Y), X != Y.");
  EXPECT_EQ(p.rules[0].BodyAtoms().size(), 2u);
  EXPECT_EQ(p.rules[0].BodyAtomsOf("t").size(), 1u);
  EXPECT_EQ(p.rules[0].BodyAtomsOf("a").size(), 1u);
  EXPECT_TRUE(p.rules[0].BodyAtomsOf("zzz").empty());
}

}  // namespace
}  // namespace seprec
