// Randomized cross-engine agreement: on randomly generated separable
// recursions and random databases, the Separable algorithm, Generalized
// Magic Sets, and plain semi-naive evaluation must return identical
// answers — for full selections, persistent-column selections, and partial
// selections (Lemma 2.1).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/compiler.h"
#include "core/query.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "gen/generators.h"
#include "separable/detection.h"
#include "separable/engine.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace seprec {
namespace {

struct RandomRecursion {
  Program program;
  size_t arity;
  std::vector<std::vector<uint32_t>> class_positions;
  std::vector<std::string> edb_relations;  // binary a-relations + t0
};

// Builds a separable recursion of the given arity: positions are split
// into classes (width 1 or 2) plus persistent leftovers; each class gets
// 1-2 recursive rules whose nonrecursive part is a chain of 1-2 EDB
// literals over fresh relations.
RandomRecursion BuildRandomSeparable(size_t arity, Rng* rng) {
  RandomRecursion out;
  out.arity = arity;

  // Partition a random subset of positions into classes.
  std::vector<uint32_t> positions;
  for (uint32_t p = 0; p < arity; ++p) positions.push_back(p);
  // Shuffle.
  for (size_t i = positions.size(); i > 1; --i) {
    std::swap(positions[i - 1], positions[rng->Below(i)]);
  }
  size_t used = 0;
  while (used < positions.size()) {
    size_t width =
        (positions.size() - used >= 2 && rng->Chance(0.4)) ? 2 : 1;
    std::vector<uint32_t> cls(positions.begin() + used,
                              positions.begin() + used + width);
    std::sort(cls.begin(), cls.end());
    out.class_positions.push_back(cls);
    used += width;
    if (out.class_positions.size() >= 3 && rng->Chance(0.5)) {
      break;  // leave the rest persistent
    }
  }

  std::string text;
  auto head_args = [&]() {
    std::string s;
    for (size_t p = 0; p < arity; ++p) {
      if (p > 0) s += ", ";
      s += StrCat("V", p);
    }
    return s;
  };

  int edb_counter = 0;
  for (size_t c = 0; c < out.class_positions.size(); ++c) {
    const std::vector<uint32_t>& cls = out.class_positions[c];
    size_t num_rules = 1 + rng->Below(2);
    for (size_t r = 0; r < num_rules; ++r) {
      // Body instance: class positions get fresh W vars.
      std::vector<std::string> body_args;
      for (uint32_t p = 0; p < arity; ++p) body_args.push_back(StrCat("V", p));
      std::string head_side;  // class head vars, comma separated
      std::string body_side;
      for (uint32_t p : cls) {
        body_args[p] = StrCat("W", p);
        if (!head_side.empty()) head_side += ", ";
        head_side += StrCat("V", p);
        if (!body_side.empty()) body_side += ", ";
        body_side += StrCat("W", p);
      }
      std::string rel = StrCat("a", edb_counter++);
      out.edb_relations.push_back(rel);
      std::string body_atoms;
      if (cls.size() == 1 && rng->Chance(0.5)) {
        // Two chained literals: a(Vp, U) & b(U, Wp).
        std::string rel2 = StrCat("a", edb_counter++);
        out.edb_relations.push_back(rel2);
        body_atoms = StrCat(rel, "(", head_side, ", U) & ", rel2, "(U, ",
                            body_side, ")");
      } else {
        body_atoms = StrCat(rel, "(", head_side, ", ", body_side, ")");
      }
      std::string t_body;
      for (size_t p = 0; p < arity; ++p) {
        if (p > 0) t_body += ", ";
        t_body += body_args[p];
      }
      text += StrCat("t(", head_args(), ") :- ", body_atoms, " & t(", t_body,
                     ").\n");
    }
  }
  text += StrCat("t(", head_args(), ") :- t0(", head_args(), ").\n");
  out.edb_relations.push_back("t0");
  out.program = ParseProgramOrDie(text);
  return out;
}

// Fills every EDB relation of `rec` with random tuples over a small node
// pool (density tuned so recursions neither die out nor explode).
void FillRandomData(const RandomRecursion& rec, Database* db, Rng* rng,
                    size_t pool) {
  for (const std::string& rel_name : rec.edb_relations) {
    size_t arity = rel_name == "t0" ? rec.arity : 0;
    if (arity == 0) {
      // a-relations: arity = as declared in the program; find it by name
      // pattern — they are binary, 2|cls|-ary, or (1+1)-ary chains. Look
      // it up from the parsed program instead.
      for (const Rule& rule : rec.program.rules) {
        for (const Atom* atom : rule.BodyAtoms()) {
          if (atom->predicate == rel_name) {
            arity = atom->arity();
          }
        }
      }
    }
    SEPREC_CHECK(arity > 0);
    StatusOr<Relation*> rel = db->CreateRelation(rel_name, arity);
    SEPREC_CHECK(rel.ok());
    size_t tuples = 4 + rng->Below(8);
    for (size_t i = 0; i < tuples; ++i) {
      std::vector<Value> row;
      for (size_t c = 0; c < arity; ++c) {
        row.push_back(
            db->symbols().Intern(StrCat("n", rng->Below(pool))));
      }
      (*rel)->Insert(Row(row.data(), row.size()));
    }
  }
}

Answer ReferenceAnswer(const Program& program, const Atom& query,
                       Database* db) {
  Status status = EvaluateSemiNaive(program, db);
  SEPREC_CHECK(status.ok());
  const Relation* rel = db->Find(query.predicate);
  SEPREC_CHECK(rel != nullptr);
  return SelectMatching(*rel, query, db->symbols());
}

class RandomSeparableTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(RandomSeparableTest, EnginesAgree) {
  auto [arity, seed] = GetParam();
  Rng rng(seed * 7919 + arity);
  RandomRecursion rec = BuildRandomSeparable(arity, &rng);

  auto sep = AnalyzeSeparable(rec.program, "t");
  ASSERT_TRUE(sep.ok()) << sep.status().ToString() << "\n"
                        << rec.program.ToString();

  auto qp = QueryProcessor::Create(rec.program);
  ASSERT_TRUE(qp.ok());

  // A few query shapes: full class selection, persistent selection when
  // available, partial selection for width-2 classes, fully bound.
  std::vector<Atom> queries;
  auto const_at = [&](const std::set<uint32_t>& bound) {
    Atom q;
    q.predicate = "t";
    for (uint32_t p = 0; p < arity; ++p) {
      if (bound.count(p)) {
        q.args.push_back(Term::Sym(StrCat("n", rng.Below(6))));
      } else {
        q.args.push_back(Term::Var(StrCat("Y", p)));
      }
    }
    return q;
  };
  {
    const auto& cls = rec.class_positions[rng.Below(
        rec.class_positions.size())];
    queries.push_back(
        const_at(std::set<uint32_t>(cls.begin(), cls.end())));
  }
  if (!sep->persistent_positions.empty()) {
    queries.push_back(const_at({sep->persistent_positions[0]}));
  }
  for (const auto& cls : rec.class_positions) {
    if (cls.size() == 2) {
      queries.push_back(const_at({cls[0]}));  // partial
      break;
    }
  }
  {
    std::set<uint32_t> all;
    for (uint32_t p = 0; p < arity; ++p) all.insert(p);
    queries.push_back(const_at(all));
  }

  for (const Atom& query : queries) {
    Database ref_db;
    Rng data_rng(seed);
    FillRandomData(rec, &ref_db, &data_rng, 12);
    Answer expected = ReferenceAnswer(rec.program, query, &ref_db);

    for (Strategy strategy : {Strategy::kSeparable, Strategy::kMagic}) {
      Database db;
      Rng data_rng2(seed);
      FillRandomData(rec, &db, &data_rng2, 12);
      auto result = qp->Answer(query, &db, strategy);
      ASSERT_TRUE(result.ok())
          << StrategyToString(strategy) << " failed on "
          << query.ToString() << ": " << result.status().ToString() << "\n"
          << rec.program.ToString();
      EXPECT_EQ(result->answer, expected)
          << StrategyToString(strategy) << " disagrees on "
          << query.ToString() << "\nprogram:\n"
          << rec.program.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomSeparableTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Range(uint64_t{0}, uint64_t{12})),
    [](const ::testing::TestParamInfo<std::tuple<size_t, uint64_t>>& info) {
      return StrCat("arity", std::get<0>(info.param), "_seed",
                    std::get<1>(info.param));
    });

// Random NON-separable linear programs: Magic must still agree with
// semi-naive (the fallback path of the compiler).
class RandomChainRuleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomChainRuleTest, MagicAgreesOnSameGenerationVariants) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  Program p = ParseProgramOrDie(
      "t(X, Y) :- up(X, U) & t(U, V) & down(V, Y).\n"
      "t(X, Y) :- flat(X, Y).");
  Database db1, db2;
  for (Database* db : {&db1, &db2}) {
    MakeRandomGraph(db, "up", "n", 10, 14, seed);
    MakeRandomGraph(db, "down", "n", 10, 14, seed + 1);
    MakeRandomGraph(db, "flat", "n", 10, 8, seed + 2);
  }
  Atom query;
  query.predicate = "t";
  query.args = {Term::Sym(StrCat("n", rng.Below(10))), Term::Var("Y")};
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  auto magic = qp->Answer(query, &db1, Strategy::kMagic);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  EXPECT_EQ(magic->answer, ReferenceAnswer(p, query, &db2));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomChainRuleTest,
                         ::testing::Range(uint64_t{0}, uint64_t{10}));

}  // namespace
}  // namespace seprec
