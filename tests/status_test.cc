#include "util/status.h"

#include <gtest/gtest.h>

namespace seprec {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad atom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad atom");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad atom");
}

TEST(Status, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(InvalidArgumentError("m"), InvalidArgumentError("m"));
  EXPECT_FALSE(InvalidArgumentError("m") == InvalidArgumentError("n"));
  EXPECT_FALSE(InvalidArgumentError("m") == NotFoundError("m"));
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  SEPREC_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(StatusOr, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status bad = UseHalf(7, &out);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

Status Chain(bool fail) {
  SEPREC_RETURN_IF_ERROR(fail ? InternalError("boom") : Status::OK());
  return Status::OK();
}

TEST(Status, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chain(false).ok());
  EXPECT_EQ(Chain(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace seprec
