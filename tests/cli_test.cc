// End-to-end tests of the seprec_cli binary (spawned as a subprocess).
#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "eval/trace.h"
#include "util/string_util.h"

namespace seprec {
namespace {

#ifndef SEPREC_CLI_PATH
#error "SEPREC_CLI_PATH must be defined by the build"
#endif
#ifndef SEPREC_TESTDATA_DIR
#error "SEPREC_TESTDATA_DIR must be defined by the build"
#endif

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CliResult RunCli(const std::string& args) {
  CliResult result;
  std::string command = StrCat(SEPREC_CLI_PATH, " ", args, " 2>&1");
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  size_t n;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string Data(const std::string& file) {
  return StrCat(SEPREC_TESTDATA_DIR, "/", file);
}

TEST(Cli, UsageOnNoArguments) {
  CliResult r = RunCli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, RunSocialProgram) {
  CliResult r = RunCli(StrCat("run ", Data("social.dl")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("?- buys(ann, Y)."), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("(ann, hat)"), std::string::npos);
  EXPECT_NE(r.output.find("(ann, mug)"), std::string::npos);
  EXPECT_NE(r.output.find("via separable"), std::string::npos);
  // Second query binds the persistent column.
  EXPECT_NE(r.output.find("?- buys(X, hat)."), std::string::npos);
}

TEST(Cli, RunWithTsvData) {
  CliResult r = RunCli(StrCat("run ", Data("tc.dl"), " --data edge=",
                              Data("edges.tsv")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("loaded 3 tuple(s) into edge"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("(a, d)"), std::string::npos);
  EXPECT_NE(r.output.find("3 answer(s)"), std::string::npos);
}

TEST(Cli, RunWithTraceWritesJsonLines) {
  std::string trace_path =
      StrCat(::testing::TempDir(), "/cli_trace_test.jsonl");
  std::remove(trace_path.c_str());
  CliResult r = RunCli(StrCat("run ", Data("tc.dl"), " --data edge=",
                              Data("edges.tsv"), " --trace ", trace_path));
  EXPECT_EQ(r.exit_code, 0) << r.output;

  std::ifstream trace(trace_path);
  ASSERT_TRUE(trace.is_open()) << trace_path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(trace, line)) lines.push_back(line);
  ASSERT_GE(lines.size(), 3u);
  bool saw_start = false;
  bool saw_finish = false;
  bool saw_round = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    // Envelope on every line, in emission order.
    EXPECT_EQ(lines[i].rfind(StrCat("{\"v\":", JsonTraceSink::kSchemaVersion,
                                    ",\"seq\":", i, ",\"t\":"),
                             0),
              0u)
        << lines[i];
    if (lines[i].find("\"ev\":\"engine_start\"") != std::string::npos) {
      saw_start = true;
    }
    if (lines[i].find("\"ev\":\"engine_finish\"") != std::string::npos) {
      saw_finish = true;
    }
    if (lines[i].find("\"ev\":\"round_end\"") != std::string::npos) {
      saw_round = true;
    }
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_finish);
  EXPECT_TRUE(saw_round);
  std::remove(trace_path.c_str());
}

TEST(Cli, TraceToUnwritablePathFails) {
  CliResult r = RunCli(StrCat("run ", Data("tc.dl"),
                              " --trace /nonexistent-dir/trace.jsonl"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("cannot open trace file"), std::string::npos)
      << r.output;
}

TEST(Cli, RunWithExpiredDeadlineExitsThreeWithPartialBanner) {
  CliResult r = RunCli(StrCat("run ", Data("tc.dl"), " --data edge=",
                              Data("edges.tsv"), " --timeout-ms 0"));
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("%% partial result (deadline exceeded)"),
            std::string::npos)
      << r.output;
}

TEST(Cli, RunWithTupleBudgetExitsThree) {
  CliResult r = RunCli(StrCat("run ", Data("tc.dl"), " --data edge=",
                              Data("edges.tsv"), " --max-tuples 1"));
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("%% partial result (tuple budget exhausted)"),
            std::string::npos)
      << r.output;
}

TEST(Cli, RunWithGenerousLimitsStillSucceeds) {
  CliResult r = RunCli(StrCat("run ", Data("tc.dl"), " --data edge=",
                              Data("edges.tsv"),
                              " --timeout-ms 60000 --max-tuples 100000"
                              " --max-bytes 100000000"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("3 answer(s)"), std::string::npos);
  EXPECT_EQ(r.output.find("%% partial"), std::string::npos) << r.output;
}

TEST(Cli, BadLimitFlagIsUsageError) {
  CliResult r = RunCli(StrCat("run ", Data("tc.dl"), " --timeout-ms soon"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("non-negative integer"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, RunWithForcedStrategyAndStats) {
  CliResult r = RunCli(StrCat("run ", Data("social.dl"),
                              " --strategy magic --stats"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("via magic"), std::string::npos);
  EXPECT_NE(r.output.find("algorithm: magic"), std::string::npos);
  EXPECT_NE(r.output.find("max relation size"), std::string::npos);
}

TEST(Cli, CheckReportsSeparability) {
  CliResult r = RunCli(StrCat("check ", Data("social.dl")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("buys/2"), std::string::npos);
  EXPECT_NE(r.output.find("linear recursive"), std::string::npos);
  EXPECT_NE(r.output.find("separable recursion 'buys'"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("strata"), std::string::npos);
}

TEST(Cli, ExplainShowsSchema) {
  CliResult r = RunCli(StrCat("explain ", Data("social.dl"),
                              " \"buys(ann, Y)\""));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("strategy : separable"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("carry_1(ann);"), std::string::npos);
}

TEST(Cli, WhyShowsDerivation) {
  CliResult r = RunCli(StrCat("why ", Data("social.dl"),
                              " \"buys(ann, hat)\""));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("buys(ann, hat)"), std::string::npos);
  EXPECT_NE(r.output.find("perfectFor(dia, hat)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[fact]"), std::string::npos);
}

TEST(Cli, ExamplePrograms) {
  // The shipped .dl library under examples/programs runs end-to-end.
  const std::string dir = std::string(SEPREC_TESTDATA_DIR) +
                          "/../../examples/programs";
  CliResult bom = RunCli(StrCat("run ", dir, "/bom.dl"));
  EXPECT_EQ(bom.exit_code, 0) << bom.output;
  EXPECT_NE(bom.output.find("(bearing, bike)"), std::string::npos)
      << bom.output;
  EXPECT_NE(bom.output.find("(bike, 8)"), std::string::npos)
      << bom.output;  // 8 component kinds in bike

  CliResult sg = RunCli(StrCat("run ", dir, "/same_generation.dl"));
  EXPECT_EQ(sg.exit_code, 0) << sg.output;
  EXPECT_NE(sg.output.find("via magic"), std::string::npos) << sg.output;

  CliResult blocked = RunCli(StrCat("run ", dir, "/blocked_routes.dl"));
  EXPECT_EQ(blocked.exit_code, 0) << blocked.output;
  EXPECT_NE(blocked.output.find("via separable"), std::string::npos)
      << blocked.output;
  EXPECT_NE(blocked.output.find("(a, d)"), std::string::npos);
  EXPECT_EQ(blocked.output.find("(a, c)"), std::string::npos);
}

// ---- minimal JSON parser (for round-tripping `lint --format json`) ------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  const JsonValue& at(const std::string& key) const {
    static const JsonValue kNullValue;
    auto it = fields.find(key);
    return it == fields.end() ? kNullValue : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = Value(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(
        static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool Value(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return Object(out);
    if (c == '[') return Array(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return String(&out->str);
    }
    if (c == 't' || c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = c == 't';
      const char* word = c == 't' ? "true" : "false";
      size_t len = c == 't' ? 4 : 5;
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    }
    if (c == 'n') {
      if (text_.compare(pos_, 4, "null") != 0) return false;
      pos_ += 4;
      return true;
    }
    return Number(out);
  }

  bool Number(JsonValue* out) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool String(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'u':
            if (pos_ + 4 > text_.size()) return false;
            out->push_back(static_cast<char>(
                std::stoi(text_.substr(pos_, 4), nullptr, 16)));
            pos_ += 4;
            break;
          default: out->push_back(esc);
        }
      } else {
        out->push_back(c);
      }
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  bool Array(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return true;
    do {
      JsonValue item;
      if (!Value(&item)) return false;
      out->items.push_back(std::move(item));
    } while (Consume(','));
    return Consume(']');
  }

  bool Object(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return true;
    do {
      SkipSpace();
      std::string key;
      if (!String(&key) || !Consume(':')) return false;
      JsonValue value;
      if (!Value(&value)) return false;
      out->fields.emplace(std::move(key), std::move(value));
    } while (Consume(','));
    return Consume('}');
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---- lint subcommand ----------------------------------------------------

TEST(Cli, LintTextReport) {
  CliResult r = RunCli(StrCat("lint ", Data("lint_demo.dl")));
  EXPECT_EQ(r.exit_code, 1) << r.output;  // warnings present
  // The separable recursion gets its success note with a span.
  EXPECT_NE(r.output.find("note: 't' is a separable recursion"),
            std::string::npos)
      << r.output;
  // The disconnected recursion is explained via condition 4 at line 7.
  EXPECT_NE(r.output.find(":7:1: warning: condition 4"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[S104]"), std::string::npos);
  EXPECT_NE(r.output.find("fix-it: run with --relaxed"), std::string::npos);
  // The unused predicate and singleton variable lints fire with spans.
  EXPECT_NE(r.output.find(":8:1: warning: predicate 'dead'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("'Solo' occurs only once"), std::string::npos);
  // Summary line.
  EXPECT_NE(r.output.find("warning(s)"), std::string::npos);
}

TEST(Cli, LintRelaxedAcceptsDisconnectedBodies) {
  CliResult r = RunCli(StrCat("lint ", Data("lint_demo.dl"), " --relaxed"));
  EXPECT_EQ(r.output.find("[S104]"), std::string::npos) << r.output;
  // 'bad' now gets its own separability note.
  EXPECT_NE(r.output.find("'bad' is a separable recursion"),
            std::string::npos)
      << r.output;
}

TEST(Cli, LintJsonRoundTrips) {
  CliResult r = RunCli(StrCat("lint ", Data("lint_demo.dl"),
                              " --format json"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  JsonValue root;
  ASSERT_TRUE(JsonParser(r.output).Parse(&root)) << r.output;
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  EXPECT_NE(root.at("path").str.find("lint_demo.dl"), std::string::npos);
  const JsonValue& diags = root.at("diagnostics");
  ASSERT_EQ(diags.kind, JsonValue::Kind::kArray);
  ASSERT_FALSE(diags.items.empty());
  bool saw_s104 = false;
  for (const JsonValue& d : diags.items) {
    ASSERT_EQ(d.kind, JsonValue::Kind::kObject);
    EXPECT_FALSE(d.at("code").str.empty());
    EXPECT_FALSE(d.at("message").str.empty());
    EXPECT_GT(d.at("line").number, 0);  // every finding has a span
    EXPECT_GT(d.at("col").number, 0);
    if (d.at("code").str == "S104") {
      saw_s104 = true;
      EXPECT_EQ(d.at("severity").str, "warning");
      EXPECT_EQ(d.at("line").number, 7);
      EXPECT_NE(d.at("fixit").str.find("--relaxed"), std::string::npos);
      ASSERT_EQ(d.at("notes").kind, JsonValue::Kind::kArray);
      ASSERT_FALSE(d.at("notes").items.empty());
      EXPECT_NE(d.at("notes").items[0].at("message").str.find(
                    "stray component"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(saw_s104) << r.output;
}

TEST(Cli, LintSarifIsWellFormedJson) {
  CliResult r = RunCli(StrCat("lint ", Data("lint_demo.dl"),
                              " --format sarif"));
  JsonValue root;
  ASSERT_TRUE(JsonParser(r.output).Parse(&root)) << r.output;
  EXPECT_EQ(root.at("version").str, "2.1.0");
  const JsonValue& runs = root.at("runs");
  ASSERT_EQ(runs.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(runs.items.size(), 1u);
  EXPECT_EQ(runs.items[0].at("tool").at("driver").at("name").str,
            "seprec-lint");
  EXPECT_FALSE(runs.items[0].at("results").items.empty());
}

TEST(Cli, LintCleanProgramExitsZero) {
  const std::string path = "/tmp/seprec_lint_clean.dl";
  {
    std::ofstream out(path);
    out << "e(a, b).\np(X, Y) :- e(X, Y).\n?- p(a, Q).\n";
  }
  CliResult r = RunCli(StrCat("lint ", path));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("no findings."), std::string::npos) << r.output;
}

TEST(Cli, LintParseErrorIsStructured) {
  const std::string path = "/tmp/seprec_lint_broken.dl";
  {
    std::ofstream out(path);
    out << "p(a).\nq(X :- r(X).\n";
  }
  CliResult r = RunCli(StrCat("lint ", path));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find(":2:5: error:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[P001]"), std::string::npos);
}

TEST(Cli, LintUsageErrors) {
  EXPECT_EQ(RunCli("lint /no/such/file.dl").exit_code, 2);
  EXPECT_EQ(RunCli(StrCat("lint ", Data("lint_demo.dl"),
                          " --format yaml")).exit_code, 2);
  EXPECT_EQ(RunCli(StrCat("lint ", Data("lint_demo.dl"),
                          " --bogus")).exit_code, 2);
}

// ---- analyze subcommand -------------------------------------------------

TEST(Cli, AnalyzeBoundedProgramIsFullyDerecursed) {
  CliResult r = RunCli(StrCat("analyze ", Data("bounded.dl")));
  EXPECT_EQ(r.exit_code, 0) << r.output;  // notes only
  // The recursion is proven bounded and rewritten away...
  EXPECT_NE(r.output.find("[S201]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("verified by containment"), std::string::npos);
  // ...the orphan rule is eliminated as dead...
  EXPECT_NE(r.output.find("[S204]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[S205]"), std::string::npos) << r.output;
  // ...and the recorded strategy selection is the non-recursive plan.
  EXPECT_NE(r.output.find("strategy for t(a, Y): nonrecursive"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("dead-rules=rewritten,bounded=rewritten"),
            std::string::npos)
      << r.output;
}

TEST(Cli, AnalyzeNonlinearFallsThroughToSemiNaive) {
  CliResult r = RunCli(StrCat("analyze ", Data("nonlinear.dl")));
  EXPECT_EQ(r.exit_code, 1) << r.output;  // the S100 explainer is a warning
  EXPECT_NE(r.output.find("[S100]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[S202]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[S207]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("strategy for path(X, Y): seminaive"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find(
                "dead-rules=proved,bounded=abstained,separability=abstained"),
            std::string::npos)
      << r.output;
}

TEST(Cli, AnalyzeQueryOverride) {
  // A bound selection on the nonlinear program records magic instead.
  CliResult r = RunCli(StrCat("analyze ", Data("nonlinear.dl"),
                              " --query \"path(a, Y)\""));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("strategy for path(a, Y): magic"),
            std::string::npos)
      << r.output;
}

TEST(Cli, AnalyzeJsonRoundTrips) {
  CliResult r = RunCli(StrCat("analyze ", Data("bounded.dl"),
                              " --format json"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  JsonValue root;
  ASSERT_TRUE(JsonParser(r.output).Parse(&root)) << r.output;
  const JsonValue& diags = root.at("diagnostics");
  ASSERT_EQ(diags.kind, JsonValue::Kind::kArray);
  bool saw_s201 = false;
  bool saw_s200 = false;
  for (const JsonValue& d : diags.items) {
    EXPECT_GT(d.at("line").number, 0);
    if (d.at("code").str == "S201") {
      saw_s201 = true;
      EXPECT_EQ(d.at("severity").str, "note");
    }
    if (d.at("code").str == "S200") {
      saw_s200 = true;
      EXPECT_NE(d.at("message").str.find("nonrecursive"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_s201) << r.output;
  EXPECT_TRUE(saw_s200) << r.output;
}

TEST(Cli, AnalyzeSarifIsWellFormedJson) {
  CliResult r = RunCli(StrCat("analyze ", Data("bounded.dl"),
                              " --format sarif"));
  JsonValue root;
  ASSERT_TRUE(JsonParser(r.output).Parse(&root)) << r.output;
  EXPECT_EQ(root.at("version").str, "2.1.0");
  const JsonValue& runs = root.at("runs");
  ASSERT_EQ(runs.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(runs.items.size(), 1u);
  bool saw_pipeline_rule = false;
  for (const JsonValue& result : runs.items[0].at("results").items) {
    if (result.at("ruleId").str == "S200") saw_pipeline_rule = true;
  }
  EXPECT_TRUE(saw_pipeline_rule) << r.output;
}

TEST(Cli, AnalyzeBrokenProgramReportsESeries) {
  const std::string path = "/tmp/seprec_analyze_unsafe.dl";
  {
    std::ofstream out(path);
    // Head variable Y never bound in the body: unsafe (E001).
    out << "e(a, b).\np(X, Y) :- e(X, Z).\n?- p(a, Q).\n";
  }
  CliResult r = RunCli(StrCat("analyze ", path));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("error:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[E001]"), std::string::npos) << r.output;
}

TEST(Cli, AnalyzeUsageErrors) {
  EXPECT_EQ(RunCli("analyze /no/such/file.dl").exit_code, 2);
  EXPECT_EQ(RunCli(StrCat("analyze ", Data("bounded.dl"),
                          " --format yaml")).exit_code, 2);
  EXPECT_EQ(RunCli(StrCat("analyze ", Data("bounded.dl"),
                          " --bogus")).exit_code, 2);
  EXPECT_EQ(RunCli(StrCat("analyze ", Data("bounded.dl"),
                          " --max-bound many")).exit_code, 2);
}

TEST(Cli, ErrorsAreClean) {
  EXPECT_EQ(RunCli("run /no/such/file.dl").exit_code, 1);
  EXPECT_EQ(RunCli(StrCat("explain ", Data("social.dl"), " \"((\"")).exit_code,
            1);
  EXPECT_EQ(RunCli(StrCat("why ", Data("social.dl"),
                          " \"buys(nobody, nothing)\"")).exit_code, 1);
  // Malformed flags are usage errors, matching lint's convention.
  EXPECT_EQ(RunCli(StrCat("run ", Data("social.dl"),
                          " --strategy bogus")).exit_code, 2);
  EXPECT_EQ(RunCli(StrCat("run ", Data("social.dl"),
                          " --data bad-spec")).exit_code, 2);
}

}  // namespace
}  // namespace seprec
