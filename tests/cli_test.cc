// End-to-end tests of the seprec_cli binary (spawned as a subprocess).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

#include "util/string_util.h"

namespace seprec {
namespace {

#ifndef SEPREC_CLI_PATH
#error "SEPREC_CLI_PATH must be defined by the build"
#endif
#ifndef SEPREC_TESTDATA_DIR
#error "SEPREC_TESTDATA_DIR must be defined by the build"
#endif

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CliResult RunCli(const std::string& args) {
  CliResult result;
  std::string command = StrCat(SEPREC_CLI_PATH, " ", args, " 2>&1");
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  size_t n;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string Data(const std::string& file) {
  return StrCat(SEPREC_TESTDATA_DIR, "/", file);
}

TEST(Cli, UsageOnNoArguments) {
  CliResult r = RunCli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, RunSocialProgram) {
  CliResult r = RunCli(StrCat("run ", Data("social.dl")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("?- buys(ann, Y)."), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("(ann, hat)"), std::string::npos);
  EXPECT_NE(r.output.find("(ann, mug)"), std::string::npos);
  EXPECT_NE(r.output.find("via separable"), std::string::npos);
  // Second query binds the persistent column.
  EXPECT_NE(r.output.find("?- buys(X, hat)."), std::string::npos);
}

TEST(Cli, RunWithTsvData) {
  CliResult r = RunCli(StrCat("run ", Data("tc.dl"), " --data edge=",
                              Data("edges.tsv")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("loaded 3 tuple(s) into edge"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("(a, d)"), std::string::npos);
  EXPECT_NE(r.output.find("3 answer(s)"), std::string::npos);
}

TEST(Cli, RunWithForcedStrategyAndStats) {
  CliResult r = RunCli(StrCat("run ", Data("social.dl"),
                              " --strategy magic --stats"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("via magic"), std::string::npos);
  EXPECT_NE(r.output.find("algorithm: magic"), std::string::npos);
  EXPECT_NE(r.output.find("max relation size"), std::string::npos);
}

TEST(Cli, CheckReportsSeparability) {
  CliResult r = RunCli(StrCat("check ", Data("social.dl")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("buys/2"), std::string::npos);
  EXPECT_NE(r.output.find("linear recursive"), std::string::npos);
  EXPECT_NE(r.output.find("separable recursion 'buys'"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("strata"), std::string::npos);
}

TEST(Cli, ExplainShowsSchema) {
  CliResult r = RunCli(StrCat("explain ", Data("social.dl"),
                              " \"buys(ann, Y)\""));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("strategy : separable"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("carry_1(ann);"), std::string::npos);
}

TEST(Cli, WhyShowsDerivation) {
  CliResult r = RunCli(StrCat("why ", Data("social.dl"),
                              " \"buys(ann, hat)\""));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("buys(ann, hat)"), std::string::npos);
  EXPECT_NE(r.output.find("perfectFor(dia, hat)"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[fact]"), std::string::npos);
}

TEST(Cli, ExamplePrograms) {
  // The shipped .dl library under examples/programs runs end-to-end.
  const std::string dir = std::string(SEPREC_TESTDATA_DIR) +
                          "/../../examples/programs";
  CliResult bom = RunCli(StrCat("run ", dir, "/bom.dl"));
  EXPECT_EQ(bom.exit_code, 0) << bom.output;
  EXPECT_NE(bom.output.find("(bearing, bike)"), std::string::npos)
      << bom.output;
  EXPECT_NE(bom.output.find("(bike, 8)"), std::string::npos)
      << bom.output;  // 8 component kinds in bike

  CliResult sg = RunCli(StrCat("run ", dir, "/same_generation.dl"));
  EXPECT_EQ(sg.exit_code, 0) << sg.output;
  EXPECT_NE(sg.output.find("via magic"), std::string::npos) << sg.output;

  CliResult blocked = RunCli(StrCat("run ", dir, "/blocked_routes.dl"));
  EXPECT_EQ(blocked.exit_code, 0) << blocked.output;
  EXPECT_NE(blocked.output.find("via separable"), std::string::npos)
      << blocked.output;
  EXPECT_NE(blocked.output.find("(a, d)"), std::string::npos);
  EXPECT_EQ(blocked.output.find("(a, c)"), std::string::npos);
}

TEST(Cli, ErrorsAreClean) {
  EXPECT_EQ(RunCli("run /no/such/file.dl").exit_code, 1);
  EXPECT_EQ(RunCli(StrCat("run ", Data("social.dl"),
                          " --strategy bogus")).exit_code, 1);
  EXPECT_EQ(RunCli(StrCat("explain ", Data("social.dl"), " \"((\"")).exit_code,
            1);
  EXPECT_EQ(RunCli(StrCat("why ", Data("social.dl"),
                          " \"buys(nobody, nothing)\"")).exit_code, 1);
  EXPECT_EQ(RunCli(StrCat("run ", Data("social.dl"),
                          " --data bad-spec")).exit_code, 1);
}

}  // namespace
}  // namespace seprec
