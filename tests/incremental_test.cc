// DRed incremental maintenance: after any sequence of EDB insertions and
// deletions, every IDB relation must equal a from-scratch evaluation.
#include "eval/incremental.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "storage/io.h"
#include "util/rng.h"

namespace seprec {
namespace {

// From-scratch reference: evaluate `program` over a copy of db's EDB.
std::string ScratchIdb(const Program& program, const Database& db,
                       const std::string& edb_rel,
                       const std::string& idb_rel) {
  Database fresh;
  const Relation* edb = db.Find(edb_rel);
  Relation* copy = *fresh.CreateRelation(edb_rel, edb->arity());
  edb->ForEachRow([&](Row r) {
    std::vector<Value> row;
    for (Value v : r) {
      row.push_back(fresh.symbols().Intern(db.symbols().ToString(v)));
    }
    copy->Insert(Row(row.data(), row.size()));
  });
  SEPREC_CHECK(EvaluateSemiNaive(program, &fresh).ok());
  return fresh.Find(idb_rel)->DebugString(fresh.symbols());
}

TEST(Incremental, CreateRejectsNegationAndAggregates) {
  Database db;
  EXPECT_FALSE(IncrementalEngine::Create(
                   ParseProgramOrDie("p(X) :- q(X), not r(X)."), &db)
                   .ok());
  EXPECT_FALSE(IncrementalEngine::Create(
                   ParseProgramOrDie("c(count(X)) :- q(X)."), &db)
                   .ok());
  EXPECT_TRUE(
      IncrementalEngine::Create(TransitiveClosureProgram(), &db).ok());
}

TEST(Incremental, InsertionsPropagate) {
  Database db;
  auto engine = IncrementalEngine::Create(TransitiveClosureProgram(), &db);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE(engine->Initialize().ok());
  EXPECT_EQ(db.Find("tc")->size(), 0u);

  ASSERT_TRUE(engine->AddFact("edge", {"a", "b"}).ok());
  EXPECT_EQ(db.Find("tc")->size(), 1u);
  ASSERT_TRUE(engine->AddFact("edge", {"b", "c"}).ok());
  EXPECT_EQ(db.Find("tc")->size(), 3u);  // +(b,c), (a,c)
  ASSERT_TRUE(engine->AddFact("edge", {"c", "d"}).ok());
  EXPECT_EQ(db.Find("tc")->size(), 6u);
  EXPECT_EQ(engine->last_update().inserted, 3u);
  EXPECT_EQ(db.Find("tc")->DebugString(db.symbols()),
            ScratchIdb(TransitiveClosureProgram(), db, "edge", "tc"));
}

TEST(Incremental, DuplicateInsertIsNoOp) {
  Database db;
  auto engine = IncrementalEngine::Create(TransitiveClosureProgram(), &db);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Initialize().ok());
  ASSERT_TRUE(engine->AddFact("edge", {"a", "b"}).ok());
  ASSERT_TRUE(engine->AddFact("edge", {"a", "b"}).ok());
  EXPECT_EQ(engine->last_update().inserted, 0u);
  EXPECT_EQ(db.Find("tc")->size(), 1u);
}

TEST(Incremental, UpdateAndInitializeReportWallTime) {
  Database db;
  MakeChain(&db, "edge", "v", 5);
  auto engine = IncrementalEngine::Create(TransitiveClosureProgram(), &db);
  ASSERT_TRUE(engine.ok());
  EvalStats init_stats;
  ASSERT_TRUE(engine->Initialize(&init_stats).ok());
  EXPECT_GT(init_stats.seconds, 0.0);

  ASSERT_TRUE(engine->AddFact("edge", {"v4", "v0"}).ok());
  EXPECT_GT(engine->last_update().seconds, 0.0);
  ASSERT_TRUE(engine->RemoveFact("edge", {"v4", "v0"}).ok());
  EXPECT_GT(engine->last_update().seconds, 0.0);
}

TEST(Incremental, SimpleDeletionBreaksPath) {
  Database db;
  MakeChain(&db, "edge", "v", 5);
  auto engine = IncrementalEngine::Create(TransitiveClosureProgram(), &db);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Initialize().ok());
  EXPECT_EQ(db.Find("tc")->size(), 10u);

  // Remove the middle edge: tc splits in two.
  ASSERT_TRUE(engine->RemoveFact("edge", {"v2", "v3"}).ok());
  EXPECT_EQ(db.Find("tc")->DebugString(db.symbols()),
            ScratchIdb(TransitiveClosureProgram(), db, "edge", "tc"));
  EXPECT_EQ(db.Find("tc")->size(), 4u);  // v0-v1-v2 and v3-v4 closures
  EXPECT_GT(engine->last_update().overdeleted, 0u);
}

TEST(Incremental, DiamondRederivation) {
  // Two paths a->d; removing one edge must keep tc(a,d) via the other.
  Database db;
  for (auto [x, y] : std::vector<std::pair<const char*, const char*>>{
           {"a", "b"}, {"b", "d"}, {"a", "c"}, {"c", "d"}}) {
    ASSERT_TRUE(db.AddFact("edge", {x, y}).ok());
  }
  auto engine = IncrementalEngine::Create(TransitiveClosureProgram(), &db);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Initialize().ok());

  ASSERT_TRUE(engine->RemoveFact("edge", {"b", "d"}).ok());
  // tc(a,d) was overdeleted but rederived through c.
  EXPECT_GT(engine->last_update().rederived, 0u);
  Value a = db.symbols().Intern("a");
  Value d = db.symbols().Intern("d");
  EXPECT_TRUE(db.Find("tc")->Contains(std::vector<Value>{a, d}));
  EXPECT_EQ(db.Find("tc")->DebugString(db.symbols()),
            ScratchIdb(TransitiveClosureProgram(), db, "edge", "tc"));
}

TEST(Incremental, DeleteOnCycle) {
  Database db;
  MakeCycle(&db, "edge", "v", 4);
  auto engine = IncrementalEngine::Create(TransitiveClosureProgram(), &db);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Initialize().ok());
  EXPECT_EQ(db.Find("tc")->size(), 16u);
  ASSERT_TRUE(engine->RemoveFact("edge", {"v3", "v0"}).ok());
  EXPECT_EQ(db.Find("tc")->DebugString(db.symbols()),
            ScratchIdb(TransitiveClosureProgram(), db, "edge", "tc"));
  EXPECT_EQ(db.Find("tc")->size(), 6u);  // plain chain closure
}

TEST(Incremental, RemoveNonexistentIsNoOp) {
  Database db;
  MakeChain(&db, "edge", "v", 4);
  auto engine = IncrementalEngine::Create(TransitiveClosureProgram(), &db);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Initialize().ok());
  size_t before = db.Find("tc")->size();
  ASSERT_TRUE(engine->RemoveFact("edge", {"v3", "v0"}).ok());
  ASSERT_TRUE(engine->RemoveFact("edge", {"ghost", "spirit"}).ok());
  EXPECT_EQ(db.Find("tc")->size(), before);
}

TEST(Incremental, RejectsIdbUpdates) {
  Database db;
  auto engine = IncrementalEngine::Create(TransitiveClosureProgram(), &db);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->AddFact("tc", {"a", "b"}).ok());
  EXPECT_FALSE(engine->RemoveFact("tc", {"a", "b"}).ok());
}

TEST(Incremental, MultiStratumProgram) {
  Program p = ParseProgramOrDie(
      "link(X, Y) :- edge(X, Y).\n"
      "link(X, Y) :- edge(Y, X).\n"
      "conn(X, Y) :- link(X, Y).\n"
      "conn(X, Y) :- link(X, W), conn(W, Y).");
  Database db;
  MakeChain(&db, "edge", "v", 4);
  auto engine = IncrementalEngine::Create(p, &db);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Initialize().ok());
  ASSERT_TRUE(engine->AddFact("edge", {"v3", "x0"}).ok());
  EXPECT_EQ(db.Find("conn")->DebugString(db.symbols()),
            ScratchIdb(p, db, "edge", "conn"));
  ASSERT_TRUE(engine->RemoveFact("edge", {"v1", "v2"}).ok());
  EXPECT_EQ(db.Find("conn")->DebugString(db.symbols()),
            ScratchIdb(p, db, "edge", "conn"));
}

TEST(Incremental, RandomisedMixedWorkloadMatchesScratch) {
  Program tc = TransitiveClosureProgram();
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Database db;
    ASSERT_TRUE(db.CreateRelation("edge", 2).ok());
    auto engine = IncrementalEngine::Create(tc, &db);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine->Initialize().ok());

    Rng rng(seed);
    std::set<std::pair<size_t, size_t>> present;
    for (int op = 0; op < 60; ++op) {
      size_t from = rng.Below(8);
      size_t to = rng.Below(8);
      std::vector<std::string> fact = {NodeName("n", from),
                                       NodeName("n", to)};
      if (rng.Chance(0.6) || present.empty()) {
        ASSERT_TRUE(engine->AddFact("edge", fact).ok());
        present.insert({from, to});
      } else {
        ASSERT_TRUE(engine->RemoveFact("edge", fact).ok());
        present.erase({from, to});
      }
      if (op % 10 == 9) {
        ASSERT_EQ(db.Find("tc")->DebugString(db.symbols()),
                  ScratchIdb(tc, db, "edge", "tc"))
            << "seed " << seed << " op " << op;
      }
    }
  }
}

TEST(Incremental, SplitPhaseMirrorsServiceLoadPath) {
  // The service's load path: the CALLER applies the WAL-logged batch to
  // the EDB, the engine only propagates the effective delta. Insert first,
  // then delete, each checked against a from-scratch evaluation.
  Database db;
  MakeChain(&db, "edge", "v", 6);
  auto engine = IncrementalEngine::Create(TransitiveClosureProgram(), &db);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_TRUE(engine->Initialize().ok());
  EXPECT_TRUE(engine->Maintains("edge"));
  EXPECT_FALSE(engine->Maintains("tc"));

  TupleBatch ins;
  ins.relation = "edge";
  ins.arity = 2;
  ins.rows.push_back({TypedCell::Symbol("x"), TypedCell::Symbol("v0")});
  ins.rows.push_back({TypedCell::Symbol("v0"), TypedCell::Symbol("v1")});
  std::vector<std::vector<Value>> changed;
  ASSERT_TRUE(ApplyTupleBatch(&db, ins, &changed).ok());
  ASSERT_EQ(changed.size(), 1u);  // (v0,v1) is a duplicate, not a delta
  ASSERT_TRUE(engine->PropagateInserted("edge", changed).ok());
  EXPECT_EQ(db.Find("tc")->DebugString(db.symbols()),
            ScratchIdb(TransitiveClosureProgram(), db, "edge", "tc"));

  // Delete: overdelete closes against the pre-deletion state, so
  // PrepareRemoval runs BEFORE the erase; FinishRemoval rederives after.
  std::vector<std::vector<Value>> victims;
  victims.push_back({db.symbols().Intern("v2"), db.symbols().Intern("v3")});
  victims.push_back({db.symbols().Intern("no"), db.symbols().Intern("no")});
  ASSERT_TRUE(engine->PrepareRemoval("edge", victims).ok());
  TupleBatch del;
  del.relation = "edge";
  del.arity = 2;
  del.op = BatchOp::kDelete;
  del.rows.push_back({TypedCell::Symbol("v2"), TypedCell::Symbol("v3")});
  del.rows.push_back({TypedCell::Symbol("no"), TypedCell::Symbol("no")});
  ASSERT_TRUE(ApplyTupleBatch(&db, del).ok());
  ASSERT_TRUE(engine->FinishRemoval().ok());
  EXPECT_EQ(db.Find("tc")->DebugString(db.symbols()),
            ScratchIdb(TransitiveClosureProgram(), db, "edge", "tc"));
}

TEST(Incremental, SplitPhaseOrderingEnforced) {
  Database db;
  auto engine = IncrementalEngine::Create(TransitiveClosureProgram(), &db);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Initialize().ok());
  EXPECT_EQ(engine->FinishRemoval().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine->AddFact("edge", {"a", "b"}).ok());
  std::vector<std::vector<Value>> victims;
  victims.push_back({db.symbols().Intern("a"), db.symbols().Intern("b")});
  ASSERT_TRUE(engine->PrepareRemoval("edge", victims).ok());
  EXPECT_EQ(engine->PrepareRemoval("edge", victims).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine->FinishRemoval().ok());
}

TEST(Incremental, StatsAreReported) {
  Database db;
  MakeChain(&db, "edge", "v", 6);
  auto engine = IncrementalEngine::Create(TransitiveClosureProgram(), &db);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Initialize().ok());
  ASSERT_TRUE(engine->RemoveFact("edge", {"v0", "v1"}).ok());
  const UpdateStats& stats = engine->last_update();
  EXPECT_EQ(stats.overdeleted, 5u);  // (v0, v1..v5)
  EXPECT_EQ(stats.rederived, 0u);
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_NE(stats.ToString().find("overdeleted: 5"), std::string::npos);
}

}  // namespace
}  // namespace seprec
