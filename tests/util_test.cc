// Tests for the small utility layer: hashing, strings, timer.
#include <gtest/gtest.h>

#include <set>

#include "util/hash.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace seprec {
namespace {

TEST(Hash, CombineIsOrderSensitive) {
  uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(Hash, WordsDistinguishLengthAndContent) {
  uint64_t a[] = {1, 2, 3};
  uint64_t b[] = {1, 2, 4};
  EXPECT_NE(HashWords(a, 3), HashWords(b, 3));
  EXPECT_NE(HashWords(a, 2), HashWords(a, 3));
}

TEST(Hash, MixBitsSpreadsSmallInputs) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) {
    seen.insert(MixBits(i));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Strings, Split) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("nosep", ','), (std::vector<std::string>{"nosep"}));
}

TEST(Strings, Join) {
  EXPECT_EQ(StrJoin({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"one"}, ","), "one");
}

TEST(Strings, Strip) {
  EXPECT_EQ(StripWhitespace("  x \t\n"), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("inner space"), "inner space");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("magic_tc_bf", "magic_"));
  EXPECT_FALSE(StartsWith("ma", "magic_"));
  EXPECT_TRUE(EndsWith("file.tsv", ".tsv"));
  EXPECT_FALSE(EndsWith("tsv", ".tsv"));
}

TEST(Strings, StrCatMixedTypes) {
  EXPECT_EQ(StrCat("n=", 42, ", f=", 1.5, '!'), "n=42, f=1.5!");
  EXPECT_EQ(StrCat(), "");
}

TEST(Timer, MonotoneNonNegative) {
  WallTimer timer;
  double a = timer.Seconds();
  double b = timer.Seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  timer.Restart();
  EXPECT_GE(timer.Seconds(), 0.0);
}

}  // namespace
}  // namespace seprec
