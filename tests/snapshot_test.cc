#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "gen/generators.h"
#include "util/failpoint.h"

namespace seprec {
namespace {

TEST(Snapshot, RoundTripMixedTypes) {
  Database db;
  Relation* r = *db.CreateRelation("mixed", 3);
  r->Insert({db.symbols().Intern("tom"), Value::Int(42),
             db.symbols().Intern("42")});
  r->Insert({db.symbols().Intern("with\ttab"), Value::Int(-7),
             db.symbols().Intern("line\nbreak")});
  ASSERT_TRUE(db.AddFact("plain", {"a", "b"}).ok());

  std::ostringstream out;
  ASSERT_TRUE(SaveSnapshot(db, out).ok());

  Database restored;
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadSnapshot(&restored, in).ok());

  ASSERT_NE(restored.Find("mixed"), nullptr);
  EXPECT_EQ(restored.Find("mixed")->size(), 2u);
  EXPECT_EQ(restored.Find("plain")->size(), 1u);
  // The integer 42 and the symbol "42" stay distinct.
  Row row0 = restored.Find("mixed")->row(0);
  EXPECT_TRUE(row0[1].is_int());
  EXPECT_TRUE(row0[2].is_symbol());
  EXPECT_EQ(restored.symbols().ToString(row0[2]), "42");
  // Escaped symbols round-trip.
  EXPECT_EQ(restored.Find("mixed")->DebugString(restored.symbols()),
            db.Find("mixed")->DebugString(db.symbols()));
}

TEST(Snapshot, ZeroArityRelation) {
  Database db;
  Relation* p = *db.CreateRelation("flag", 0);
  p->Insert(Row{});
  std::ostringstream out;
  ASSERT_TRUE(SaveSnapshot(db, out).ok());
  Database restored;
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadSnapshot(&restored, in).ok());
  ASSERT_NE(restored.Find("flag"), nullptr);
  EXPECT_EQ(restored.Find("flag")->size(), 1u);
}

TEST(Snapshot, EmptyRelationsPreserved) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("empty", 2).ok());
  std::ostringstream out;
  ASSERT_TRUE(SaveSnapshot(db, out).ok());
  Database restored;
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadSnapshot(&restored, in).ok());
  ASSERT_NE(restored.Find("empty"), nullptr);
  EXPECT_EQ(restored.Find("empty")->size(), 0u);
  EXPECT_EQ(restored.Find("empty")->arity(), 2u);
}

TEST(Snapshot, RejectsGarbage) {
  Database db;
  std::istringstream bad1("not a snapshot\n");
  EXPECT_FALSE(LoadSnapshot(&db, bad1).ok());
  std::istringstream bad2("seprec-snapshot v1\ns:x\nend\n");
  EXPECT_FALSE(LoadSnapshot(&db, bad2).ok());  // tuple before header
  std::istringstream bad3(
      "seprec-snapshot v1\nrelation r 1\nz:oops\nend\n");
  EXPECT_FALSE(LoadSnapshot(&db, bad3).ok());  // bad tag
  std::istringstream bad4("seprec-snapshot v1\nrelation r 1\ns:x\n");
  EXPECT_FALSE(LoadSnapshot(&db, bad4).ok());  // truncated
  std::istringstream bad5(
      "seprec-snapshot v1\nrelation r 1\ns:x\ts:y\nend\n");
  EXPECT_FALSE(LoadSnapshot(&db, bad5).ok());  // arity mismatch
}

TEST(Snapshot, TupleCountTrailerWrittenAndVerified) {
  Database db;
  MakeChain(&db, "edge", "v", 4);
  std::ostringstream out;
  ASSERT_TRUE(SaveSnapshot(db, out).ok());
  // The writer declares the tuple count after each relation's rows so the
  // reader can detect silent truncation.
  EXPECT_NE(out.str().find("tuples 3"), std::string::npos) << out.str();
  Database restored;
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadSnapshot(&restored, in).ok());
  EXPECT_EQ(restored.Find("edge")->size(), 3u);
}

TEST(Snapshot, LegacyFormatWithoutTrailerStillLoads) {
  std::istringstream in(
      "seprec-snapshot v1\nrelation r 1\ns:x\ns:y\nend\n");
  Database db;
  ASSERT_TRUE(LoadSnapshot(&db, in).ok());
  EXPECT_EQ(db.Find("r")->size(), 2u);
}

TEST(Snapshot, TupleCountMismatchRejected) {
  // A declared count that disagrees with the rows present means rows were
  // lost (or injected) in transit.
  std::istringstream in(
      "seprec-snapshot v1\nrelation r 1\ns:x\ntuples 5\nend\n");
  Database db;
  Status status = LoadSnapshot(&db, in);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("declares 5 tuples, found 1"),
            std::string::npos)
      << status.ToString();
  // Trailer before any relation header is also malformed.
  std::istringstream orphan("seprec-snapshot v1\ntuples 0\nend\n");
  EXPECT_FALSE(LoadSnapshot(&db, orphan).ok());
  // Non-numeric count is malformed.
  std::istringstream bad_count(
      "seprec-snapshot v1\nrelation r 1\ns:x\ntuples lots\nend\n");
  EXPECT_FALSE(LoadSnapshot(&db, bad_count).ok());
}

TEST(Snapshot, MissingEndTrailerReportsLineNumber) {
  std::istringstream in("seprec-snapshot v1\nrelation r 1\ns:x\n");
  Database db;
  Status status = LoadSnapshot(&db, in);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("truncated at line 3"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("no 'end' marker"), std::string::npos);
}

TEST(Snapshot, TrailingGarbageAfterEndRejected) {
  std::istringstream in(
      "seprec-snapshot v1\nrelation r 1\ns:x\nend\ns:stowaway\n");
  Database db;
  Status status = LoadSnapshot(&db, in);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 5"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("trailing garbage"), std::string::npos);
}

TEST(Snapshot, FileRoundTrip) {
  Database db;
  MakeChain(&db, "edge", "v", 10);
  const std::string path = ::testing::TempDir() + "/seprec_snapshot.txt";
  ASSERT_TRUE(SaveSnapshotFile(db, path).ok());
  Database restored;
  ASSERT_TRUE(LoadSnapshotFile(&restored, path).ok());
  EXPECT_EQ(restored.Find("edge")->DebugString(restored.symbols()),
            db.Find("edge")->DebugString(db.symbols()));
  std::remove(path.c_str());
  EXPECT_FALSE(LoadSnapshotFile(&restored, "/no/such/file").ok());
}

// ---------------------------------------------------------------------------
// Corruption matrix: every damage pattern gets a deterministic verdict.

namespace corruption {

// A two-relation snapshot with known contents, as written by SaveSnapshot.
std::string MakeSnapshotText() {
  Database db;
  MakeChain(&db, "edge", "v", 5);
  EXPECT_TRUE(db.AddFact("label", {"v0", "start"}).ok());
  std::ostringstream out;
  EXPECT_TRUE(SaveSnapshot(db, out).ok());
  return out.str();
}

}  // namespace corruption

TEST(SnapshotCorruption, V2HeaderAndPerRelationCrcWritten) {
  const std::string text = corruption::MakeSnapshotText();
  EXPECT_EQ(text.rfind("seprec-snapshot v2\n", 0), 0u) << text;
  EXPECT_NE(text.find(" crc "), std::string::npos) << text;
}

TEST(SnapshotCorruption, FlippedByteInRowBodyRejected) {
  std::string text = corruption::MakeSnapshotText();
  // Damage a symbol byte inside a row so the line still parses: "v1" ->
  // "vA" is a valid symbol, only the CRC can catch it.
  size_t pos = text.find("s:v1\ts:v2");
  ASSERT_NE(pos, std::string::npos) << text;
  text[pos + 3] = 'A';
  Database db;
  std::istringstream in(text);
  Status status = LoadSnapshot(&db, in);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checksum mismatch"), std::string::npos)
      << status.ToString();
}

TEST(SnapshotCorruption, FlippedByteInDeclaredCrcRejected) {
  std::string text = corruption::MakeSnapshotText();
  size_t pos = text.find(" crc ");
  ASSERT_NE(pos, std::string::npos);
  char& digit = text[pos + 5];
  digit = digit == '0' ? '1' : '0';
  Database db;
  std::istringstream in(text);
  Status status = LoadSnapshot(&db, in);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("checksum mismatch"), std::string::npos)
      << status.ToString();
}

TEST(SnapshotCorruption, DuplicateRelationHeaderRejected) {
  std::istringstream in(
      "seprec-snapshot v2\n"
      "relation r 1\ns:x\ntuples 1\n"
      "relation r 1\ns:y\ntuples 1\n"
      "end\n");
  Database db;
  Status status = LoadSnapshot(&db, in);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("duplicate relation header 'r'"),
            std::string::npos)
      << status.ToString();
}

TEST(SnapshotCorruption, EmptyFileRejected) {
  std::istringstream in("");
  Database db;
  Status status = LoadSnapshot(&db, in);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("missing snapshot header"),
            std::string::npos)
      << status.ToString();
}

TEST(SnapshotCorruption, TruncatedTailRejected) {
  std::string text = corruption::MakeSnapshotText();
  // Cut the file mid-way: the 'end' marker (and likely a trailer) is gone.
  std::istringstream in(text.substr(0, text.size() / 2));
  Database db;
  EXPECT_FALSE(LoadSnapshot(&db, in).ok());
}

TEST(SnapshotCorruption, AtomicSaveLeavesOldFileOnFailure) {
  Database db;
  MakeChain(&db, "edge", "v", 3);
  const std::string path = ::testing::TempDir() + "/seprec_atomic.snap";
  ASSERT_TRUE(SaveSnapshotFile(db, path).ok());

  // A failure injected at the rename site must leave the previous
  // snapshot byte-identical (the new bytes only ever hit `.tmp`).
  std::string before;
  {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    before = buf.str();
  }
  Database bigger;
  MakeChain(&bigger, "edge", "v", 100);
  {
    ScopedFailpoint fp("snapshot.rename", {});
    EXPECT_FALSE(SaveSnapshotFile(bigger, path).ok());
  }
  std::string after;
  {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    after = buf.str();
  }
  EXPECT_EQ(before, after);
  Database restored;
  ASSERT_TRUE(LoadSnapshotFile(&restored, path).ok());
  EXPECT_EQ(restored.Find("edge")->size(), 2u);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(Snapshot, LargeDatabase) {
  Database db;
  MakeRandomGraph(&db, "e1", "v", 50, 400, 1);
  MakeRandomGraph(&db, "e2", "w", 50, 400, 2);
  std::ostringstream out;
  ASSERT_TRUE(SaveSnapshot(db, out).ok());
  Database restored;
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadSnapshot(&restored, in).ok());
  EXPECT_EQ(restored.TotalTuples(), db.TotalTuples());
}

}  // namespace
}  // namespace seprec
