// Diagnostics engine tests: one test per diagnostic code, each triggering
// exactly that finding (the separability codes violate one Definition 2.4
// condition in isolation), plus span-preservation, rendering, and
// origin-map coverage.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "datalog/analysis.h"
#include "datalog/diagnostics.h"
#include "datalog/lint.h"
#include "datalog/parser.h"
#include "separable/detection.h"

namespace seprec {
namespace {

std::vector<std::string> Codes(const DiagnosticSink& sink) {
  std::vector<std::string> codes;
  for (const Diagnostic& d : sink.diagnostics()) codes.push_back(d.code);
  return codes;
}

const Diagnostic* FindCode(const DiagnosticSink& sink,
                           const std::string& code) {
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

DiagnosticSink Lint(std::string_view source) {
  auto unit = ParseUnit(source);
  EXPECT_TRUE(unit.ok()) << unit.status().message();
  DiagnosticSink sink;
  LintProgram(*unit, LintOptions{}, &sink);
  return sink;
}

DiagnosticSink Detect(std::string_view source, std::string_view predicate,
                      const SeparabilityOptions& options = {}) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status().message();
  DiagnosticSink sink;
  auto sep = AnalyzeSeparable(*program, predicate, options, &sink);
  (void)sep;
  return sink;
}

// ---- parse --------------------------------------------------------------

TEST(Diagnostics, P001ParseError) {
  DiagnosticSink sink;
  auto unit = ParseUnit("p(a).\nq(X :- r(X).", &sink);
  EXPECT_FALSE(unit.ok());
  ASSERT_EQ(sink.size(), 1u);
  const Diagnostic& d = sink.diagnostics()[0];
  EXPECT_EQ(d.code, "P001");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.span.line, 2);
  EXPECT_EQ(d.span.col, 5);
  // The location prefix is stripped from the message (it lives in the span).
  EXPECT_EQ(d.message.find("line 2"), std::string::npos) << d.message;
}

// ---- general lints ------------------------------------------------------

TEST(Diagnostics, W001UnusedPredicate) {
  DiagnosticSink sink = Lint(
      "e(a, b).\n"
      "dead(X) :- e(X, Y).\n"
      "live(X) :- e(X, Y).\n"
      "?- live(Q).");
  const Diagnostic* d = FindCode(sink, "W001");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'dead'"), std::string::npos);
  EXPECT_EQ(d->span.line, 2);
  EXPECT_EQ(d->span.col, 1);
  // 'live' is queried, 'e' is read: neither is flagged.
  std::vector<std::string> codes = Codes(sink);
  EXPECT_EQ(std::count(codes.begin(), codes.end(), "W001"), 1);
}

TEST(Diagnostics, W001SilentWithoutQueries) {
  DiagnosticSink sink;
  auto unit = ParseUnit("e(a, b).\ndead(X) :- e(X, Y).");
  ASSERT_TRUE(unit.ok());
  LintUnusedPredicates(unit->program, unit->queries, &sink);
  EXPECT_TRUE(sink.empty());
}

TEST(Diagnostics, W002SingletonVariable) {
  DiagnosticSink sink = Lint("p(X) :- e(X, Extra).\n?- p(Q).");
  const Diagnostic* d = FindCode(sink, "W002");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'Extra'"), std::string::npos);
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.col, 9);  // the literal e(X, Extra)
  // Underscore-prefixed wildcards are deliberate: not flagged.
  DiagnosticSink quiet = Lint("p(X) :- e(X, _Extra).\n?- p(Q).");
  EXPECT_EQ(FindCode(quiet, "W002"), nullptr);
}

TEST(Diagnostics, W003UnreachableRule) {
  DiagnosticSink sink = Lint("p(X) :- e(X, Y), 1 = 2.\n?- p(Q).");
  const Diagnostic* d = FindCode(sink, "W003");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.col, 18);  // the comparison literal
  // X != X never holds either.
  EXPECT_NE(FindCode(Lint("p(X) :- e(X, Y), X != X.\n?- p(Q)."), "W003"),
            nullptr);
  // A satisfiable comparison is fine.
  EXPECT_EQ(FindCode(Lint("p(X) :- e(X, Y), 1 = 1.\n?- p(Q)."), "W003"),
            nullptr);
}

TEST(Diagnostics, W004TautologicalRule) {
  DiagnosticSink sink = Lint(
      "p(a, b).\n"
      "p(X, Y) :- p(X, Y).\n"
      "?- p(Q, R).");
  const Diagnostic* d = FindCode(sink, "W004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->span.line, 2);
}

TEST(Diagnostics, E001UnsafeRule) {
  DiagnosticSink sink = Lint("p(X, Y) :- e(X, Z).\n?- p(Q, R).");
  const Diagnostic* d = FindCode(sink, "E001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("'Y'"), std::string::npos) << d->message;
  EXPECT_EQ(d->span.line, 1);
}

TEST(Diagnostics, E002UnstratifiedNegationSpellsCycle) {
  DiagnosticSink sink = Lint(
      "win(X) :- move(X, Y), not win(Y).\n"
      "?- win(Q).");
  const Diagnostic* d = FindCode(sink, "E002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_NE(d->message.find("not stratified"), std::string::npos);
  EXPECT_NE(d->message.find("cycle: win -> not win"), std::string::npos)
      << d->message;
  EXPECT_EQ(d->span.line, 1);
  EXPECT_EQ(d->span.col, 23);  // the 'not win(Y)' literal
}

TEST(Diagnostics, E002CycleThroughIntermediary) {
  DiagnosticSink sink = Lint(
      "p(X) :- e(X, Y), not q(Y).\n"
      "q(X) :- p(X).\n"
      "?- p(Q).");
  const Diagnostic* d = FindCode(sink, "E002");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("p -> not q -> p"), std::string::npos)
      << d->message;
}

TEST(Diagnostics, E003ArityMismatch) {
  DiagnosticSink sink = Lint(
      "e(a, b).\n"
      "p(X) :- e(X).\n"
      "?- p(Q).");
  const Diagnostic* d = FindCode(sink, "E003");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_EQ(d->span.line, 2);
  EXPECT_EQ(d->span.col, 9);  // the bad use e(X)
  ASSERT_EQ(d->notes.size(), 1u);
  EXPECT_EQ(d->notes[0].span.line, 1);  // first use e(a, b)
}

// ---- separability explainer: each condition in isolation ----------------

TEST(Diagnostics, S100NotNormalForm) {
  // Non-linear recursion cannot be put in the paper's normal form.
  DiagnosticSink sink = Detect(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- t(X, W), t(W, Y).\n",
      "t");
  ASSERT_EQ(Codes(sink), std::vector<std::string>{"S100"});
  EXPECT_EQ(sink.diagnostics()[0].span.line, 1);
}

TEST(Diagnostics, S101ShiftingVariableInIsolation) {
  // X and Y swap positions in the body instance, but the position sets
  // still match (t^h = t^b = {0, 1}), so only condition 1 fails.
  DiagnosticSink sink = Detect(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- a(X, Y, W) & t(Y, X).\n",
      "t");
  std::vector<std::string> codes = Codes(sink);
  ASSERT_FALSE(codes.empty());
  for (const std::string& code : codes) EXPECT_EQ(code, "S101");
  const Diagnostic& d = sink.diagnostics()[0];
  EXPECT_NE(d.message.find("condition 1"), std::string::npos);
  EXPECT_NE(d.message.find("head position"), std::string::npos);
  EXPECT_NE(d.message.find("body position"), std::string::npos);
  EXPECT_EQ(d.span.line, 2);
  EXPECT_EQ(d.span.col, 25);  // the recursive body atom t(Y, X)
  ASSERT_FALSE(d.notes.empty());
  EXPECT_EQ(d.notes[0].span.col, 1);  // the head
}

TEST(Diagnostics, S102PositionSetMismatchInIsolation) {
  // No variable shifts (X stays at 0; W only occurs in the body), but
  // t^h = {0, 1} while t^b = {0}.
  DiagnosticSink sink = Detect(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- a(X, Y) & t(X, W).\n",
      "t");
  ASSERT_EQ(Codes(sink), std::vector<std::string>{"S102"});
  const Diagnostic& d = sink.diagnostics()[0];
  EXPECT_NE(d.message.find("condition 2"), std::string::npos);
  EXPECT_NE(d.message.find("{0}"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("{0, 1}"), std::string::npos) << d.message;
  EXPECT_EQ(d.span.line, 2);
}

TEST(Diagnostics, S103ClassOverlapInIsolation) {
  // Each rule individually satisfies conditions 1, 2, 4, but their
  // position sets {0, 1} and {1, 2} overlap without being equal.
  DiagnosticSink sink = Detect(
      "t(X, Y, Z) :- e(X, Y, Z).\n"
      "t(X, Y, Z) :- a(X, Y) & t(X, Y, Z).\n"
      "t(X, Y, Z) :- b(Y, Z) & t(X, Y, Z).\n",
      "t");
  ASSERT_EQ(Codes(sink), std::vector<std::string>{"S103"});
  const Diagnostic& d = sink.diagnostics()[0];
  EXPECT_NE(d.message.find("condition 3"), std::string::npos);
  EXPECT_EQ(d.span.line, 2);
  ASSERT_FALSE(d.notes.empty());
  EXPECT_EQ(d.notes[0].span.line, 3);  // the other rule of the pair
}

TEST(Diagnostics, S104DisconnectedBodyInIsolation) {
  // Conditions 1-3 hold; the nonrecursive body {a(X, W), b(Z, Y)} is two
  // components.
  DiagnosticSink sink = Detect(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- a(X, W) & t(W, Z) & b(Z, Y).\n",
      "t");
  ASSERT_EQ(Codes(sink), std::vector<std::string>{"S104"});
  const Diagnostic& d = sink.diagnostics()[0];
  EXPECT_NE(d.message.find("condition 4"), std::string::npos);
  EXPECT_EQ(d.span.line, 2);
  ASSERT_FALSE(d.notes.empty());
  EXPECT_NE(d.notes[0].message.find("stray component"), std::string::npos);
  EXPECT_NE(d.fixit.find("--relaxed"), std::string::npos);
  // Section 5: the relaxation accepts exactly this shape.
  DiagnosticSink relaxed = Detect(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- a(X, W) & t(W, Z) & b(Z, Y).\n",
      "t", SeparabilityOptions{false});
  EXPECT_TRUE(relaxed.empty());
}

TEST(Diagnostics, S105ConstantInRecursiveAtom) {
  DiagnosticSink sink = Detect(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- a(X, W, Y) & t(W, c).\n",
      "t");
  ASSERT_EQ(Codes(sink), std::vector<std::string>{"S105"});
  EXPECT_EQ(sink.diagnostics()[0].span.line, 2);
}

TEST(Diagnostics, S106NoRecursiveRule) {
  DiagnosticSink sink = Detect("t(X) :- e(X).\n", "t");
  ASSERT_EQ(Codes(sink), std::vector<std::string>{"S106"});
}

TEST(Diagnostics, S107NoExitRule) {
  DiagnosticSink sink = Detect("t(X, Y) :- a(X, W) & t(W, Y).\n", "t");
  ASSERT_EQ(Codes(sink), std::vector<std::string>{"S107"});
  EXPECT_FALSE(sink.diagnostics()[0].fixit.empty());
}

TEST(Diagnostics, SeparableEmitsNoFailureCodes) {
  DiagnosticSink sink = Detect(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- a(X, W) & t(W, Y).\n",
      "t");
  EXPECT_TRUE(sink.empty());
}

TEST(Diagnostics, CollectAllReportsEveryViolation) {
  // Two independently broken rules: both are reported, not just the first.
  DiagnosticSink sink = Detect(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- a(X, Y) & t(X, W).\n"
      "t(X, Y) :- a(X, W) & t(W, Z) & b(Z, Y).\n",
      "t");
  EXPECT_NE(FindCode(sink, "S102"), nullptr);
  EXPECT_NE(FindCode(sink, "S104"), nullptr);
}

TEST(Diagnostics, S001NoteForSeparableRecursion) {
  DiagnosticSink sink = Lint(
      "e(a, b).\n"
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- e(X, W) & t(W, Y).\n"
      "?- t(a, Q).");
  const Diagnostic* d = FindCode(sink, "S001");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_NE(d->message.find("'t' is a separable recursion"),
            std::string::npos);
  EXPECT_EQ(sink.CountAtLeast(Severity::kWarning), 0u);
}

// ---- span plumbing ------------------------------------------------------

TEST(Diagnostics, ExtractLinearRecursionKeepsOriginsAndSpans) {
  auto program = ParseProgram(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- a(X, W) & t(W, Y).\n"
      "t(X, Y) :- b(X, W) & t(W, Y).\n");
  ASSERT_TRUE(program.ok());
  auto rec = ExtractLinearRecursion(*program, "t");
  ASSERT_TRUE(rec.ok()) << rec.status().message();
  ASSERT_EQ(rec->exit_rule_origin, std::vector<size_t>{0});
  ASSERT_EQ(rec->recursive_rule_origin, (std::vector<size_t>{1, 2}));
  // Canonicalization renames variables but keeps the source extent.
  EXPECT_EQ(rec->exit_rules[0].span.line, 1);
  EXPECT_EQ(rec->recursive_rules[0].span.line, 2);
  EXPECT_EQ(rec->recursive_rules[1].span.line, 3);
  EXPECT_EQ(rec->recursive_rules[1].span.col, 1);
}

TEST(Diagnostics, SubstituteAndRectifyPreserveSpans) {
  auto program = ParseProgram("t(X, X) :- e(X).\n");
  ASSERT_TRUE(program.ok());
  Program rectified = Rectify(*program);
  ASSERT_EQ(rectified.rules.size(), 1u);
  EXPECT_EQ(rectified.rules[0].span.line, 1);
  // The synthesized equality literal points at the head it came from.
  bool found_eq = false;
  for (const Literal& lit : rectified.rules[0].body) {
    if (lit.kind == Literal::Kind::kCompare) {
      found_eq = true;
      EXPECT_EQ(lit.span.line, 1);
      EXPECT_EQ(lit.span.col, 1);
    }
  }
  EXPECT_TRUE(found_eq);
}

TEST(Diagnostics, CoverSpansTakesTheHull) {
  SourceSpan a{2, 5, 2, 9};
  SourceSpan b{2, 12, 3, 4};
  SourceSpan hull = CoverSpans(a, b);
  EXPECT_EQ(hull.line, 2);
  EXPECT_EQ(hull.col, 5);
  EXPECT_EQ(hull.end_line, 3);
  EXPECT_EQ(hull.end_col, 4);
  EXPECT_EQ(CoverSpans(SourceSpan{}, b), b);
}

// ---- compiler integration ----------------------------------------------

TEST(Diagnostics, QueryProcessorRecordsRejectionDiagnostics) {
  auto program = ParseProgram(
      "t(X, Y) :- e(X, Y).\n"
      "t(X, Y) :- a(X, W) & t(Y, W).\n");
  ASSERT_TRUE(program.ok());
  auto qp = QueryProcessor::Create(*program);
  ASSERT_TRUE(qp.ok());
  const std::vector<Diagnostic>* diags = qp->SeparabilityDiagnostics("t");
  ASSERT_NE(diags, nullptr);
  EXPECT_FALSE(diags->empty());
  EXPECT_FALSE(qp->SeparabilityFailure("t").empty());
  // The legacy prose reason is the first structured diagnostic's message.
  EXPECT_EQ(qp->SeparabilityFailure("t"), diags->front().message);

  Atom query = ParseAtomOrDie("t(a, Q)");
  auto text = qp->Explain(query);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("rejected : separable"), std::string::npos) << *text;
  EXPECT_NE(text->find("[S10"), std::string::npos) << *text;
}

// ---- rendering ----------------------------------------------------------

TEST(Diagnostics, JsonEscaping) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("x\ny\tz"), "x\\ny\\tz");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(Diagnostics, TextRenderingContract) {
  Diagnostic d;
  d.code = "S104";
  d.severity = Severity::kWarning;
  d.span = SourceSpan{3, 7, 3, 20};
  d.message = "disconnected body";
  d.notes.push_back({SourceSpan{3, 12, 3, 18}, "stray component"});
  d.fixit = "use --relaxed";
  EXPECT_EQ(d.ToText("p.dl"),
            "p.dl:3:7: warning: disconnected body [S104]\n"
            "  p.dl:3:12: note: stray component\n"
            "  fix-it: use --relaxed");
  std::string report = RenderText({d}, "p.dl");
  EXPECT_NE(report.find("1 warning(s)."), std::string::npos);
  EXPECT_EQ(RenderText({}, "p.dl"), "no findings.\n");
}

TEST(Diagnostics, JsonAndSarifContainTheFinding) {
  Diagnostic d;
  d.code = "E001";
  d.severity = Severity::kError;
  d.span = SourceSpan{1, 1, 1, 10};
  d.message = "unsafe \"rule\"";
  std::string json = RenderJson({d}, "x.dl");
  EXPECT_NE(json.find("\"code\": \"E001\""), std::string::npos);
  EXPECT_NE(json.find("\\\"rule\\\""), std::string::npos);
  std::string sarif = RenderSarif({d}, "x.dl");
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"E001\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
}

TEST(Diagnostics, SortBySpanOrdersByPosition) {
  DiagnosticSink sink;
  sink.Report("B", Severity::kWarning, SourceSpan{5, 1, 5, 2}, "later");
  sink.Report("A", Severity::kWarning, SourceSpan{}, "unknown");
  sink.Report("C", Severity::kWarning, SourceSpan{2, 3, 2, 4}, "earlier");
  sink.SortBySpan();
  EXPECT_EQ(Codes(sink), (std::vector<std::string>{"C", "B", "A"}));
}

}  // namespace
}  // namespace seprec
