// The static-analysis pass pipeline: pass verdicts, the boundedness
// rewrite's correctness, the non-recursive evaluator's zero-round
// contract, strategy recording through Prepare, and the pipeline-on/off
// bit-identity guarantee (the ablation the optimisation is gated on).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "eval/trace.h"
#include "opt/nonrecursive.h"
#include "opt/pass_manager.h"
#include "server/service.h"
#include "storage/database.h"

namespace seprec {
namespace {

// t's recursive rule can only re-derive tuples its exit rule already
// produces (the p(X, Y) conjunct subsumes it), so t is bounded at 0; the
// orphan rule is unreachable from the query.
constexpr const char* kBoundedProgram =
    "p(a, b).\n"
    "p(b, c).\n"
    "p(c, d).\n"
    "q(a, b).\n"
    "q(b, c).\n"
    "t(X, Y) :- p(X, Y).\n"
    "t(X, Y) :- q(X, Z) & t(Z, Y) & p(X, Y).\n"
    "orphan(X) :- p(X, Y).\n";

constexpr const char* kNonlinearProgram =
    "e(a, b).\n"
    "e(b, c).\n"
    "path(X, Y) :- e(X, Y).\n"
    "path(X, Y) :- path(X, W) & path(W, Y).\n";

constexpr const char* kTcProgram =
    "edge(a, b).\n"
    "edge(b, c).\n"
    "edge(c, d).\n"
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- tc(X, Z), edge(Z, Y).\n";

std::string VerdictOf(const PipelineResult& result,
                      const std::string& pass) {
  for (const PassOutcome& outcome : result.outcomes) {
    if (outcome.pass == pass) {
      return std::string(PassVerdictToString(outcome.verdict));
    }
  }
  return "(missing)";
}

// ---- PassManager ---------------------------------------------------------

TEST(PassPipeline, BoundedProgramIsFullyDerecursed) {
  DiagnosticSink sink;
  PipelineResult result = PassManager::Standard({}).Run(
      ParseProgramOrDie(kBoundedProgram), ParseAtomOrDie("t(a, Y)"), &sink);
  EXPECT_EQ(VerdictOf(result, "dead-rules"), "rewritten");  // orphan dies
  EXPECT_EQ(VerdictOf(result, "bounded"), "rewritten");
  EXPECT_TRUE(result.rewritten);
  EXPECT_TRUE(result.derecursed);

  // The rewritten program has no rule for orphan and no recursive t.
  auto info = ProgramInfo::Analyze(result.program);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->Find("orphan"), nullptr);
  ASSERT_NE(info->Find("t"), nullptr);
  EXPECT_FALSE(info->Find("t")->is_recursive);

  bool saw_s201 = false;
  bool saw_s204 = false;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == "S201") saw_s201 = true;
    if (d.code == "S204") saw_s204 = true;
    EXPECT_EQ(d.severity, Severity::kNote) << d.code;
  }
  EXPECT_TRUE(saw_s201);
  EXPECT_TRUE(saw_s204);
}

TEST(PassPipeline, NonlinearProgramAbstainsEverywhere) {
  DiagnosticSink sink;
  PipelineResult result = PassManager::Standard({}).Run(
      ParseProgramOrDie(kNonlinearProgram), ParseAtomOrDie("path(a, Y)"),
      &sink);
  EXPECT_EQ(VerdictOf(result, "dead-rules"), "proved");
  EXPECT_EQ(VerdictOf(result, "bounded"), "abstained");
  EXPECT_EQ(VerdictOf(result, "separability"), "abstained");
  EXPECT_FALSE(result.rewritten);
  EXPECT_FALSE(result.derecursed);
  // The separability explainer's S1xx warning is absorbed into the sink.
  EXPECT_GT(sink.CountAtLeast(Severity::kWarning), 0u);
}

TEST(PassPipeline, SeparabilityPassProvesTransitiveClosure) {
  DiagnosticSink sink;
  PipelineResult result = PassManager::Standard({}).Run(
      ParseProgramOrDie(kTcProgram), ParseAtomOrDie("tc(a, Y)"), &sink);
  // tc is genuinely unbounded, so the bounded pass abstains; the
  // separability pass proves Definition 2.4 (S206) without rewriting.
  EXPECT_EQ(VerdictOf(result, "bounded"), "abstained");
  EXPECT_EQ(VerdictOf(result, "separability"), "proved");
  EXPECT_FALSE(result.rewritten);
  bool saw_s206 = false;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.code == "S206") saw_s206 = true;
  }
  EXPECT_TRUE(saw_s206);
}

TEST(PassPipeline, SummaryStringIsStable) {
  PipelineResult result = PassManager::Standard({}).Run(
      ParseProgramOrDie(kNonlinearProgram), ParseAtomOrDie("path(a, Y)"),
      nullptr);
  EXPECT_EQ(SummarizeOutcomes(result.outcomes),
            "dead-rules=proved,bounded=abstained,separability=abstained");
}

// ---- EvaluateNonRecursive ------------------------------------------------

TEST(NonRecursiveEval, MatchesSemiNaiveOnRecursionFreeProgram) {
  Program program = ParseProgramOrDie(
      "e(a, b).\n"
      "e(b, c).\n"
      "f(c, d).\n"
      "one(X, Y) :- e(X, Y).\n"
      "two(X, Y) :- one(X, Z) & f(Z, Y).\n"
      "both(X, Y) :- one(X, Y).\n"
      "both(X, Y) :- two(X, Y).\n");
  Database direct;
  ASSERT_TRUE(EvaluateNonRecursive(program, &direct).ok());
  Database fixpoint;
  ASSERT_TRUE(EvaluateSemiNaive(program, &fixpoint).ok());
  for (const char* pred : {"one", "two", "both"}) {
    const Relation* a = direct.Find(pred);
    const Relation* b = fixpoint.Find(pred);
    ASSERT_NE(a, nullptr) << pred;
    ASSERT_NE(b, nullptr) << pred;
    EXPECT_EQ(a->DebugString(direct.symbols()),
              b->DebugString(fixpoint.symbols()))
        << pred;
  }
}

TEST(NonRecursiveEval, TraceReportsZeroIterations) {
  Program program = ParseProgramOrDie(
      "e(a, b).\n"
      "one(X, Y) :- e(X, Y).\n");
  CollectingTraceSink sink;
  FixpointOptions options;
  options.trace = &sink;
  Database db;
  ASSERT_TRUE(EvaluateNonRecursive(program, &db, options).ok());
  bool saw_finish = false;
  for (const TraceEvent& e : sink.Events()) {
    if (e.kind == TraceEventKind::kEngineFinish) {
      saw_finish = true;
      EXPECT_EQ(e.engine, "nonrecursive");
      EXPECT_EQ(e.iterations, 0u);  // the headline: no fixpoint rounds
    }
  }
  EXPECT_TRUE(saw_finish);
}

TEST(NonRecursiveEval, RefusesRecursionAndAggregates) {
  Database db;
  Status recursive =
      EvaluateNonRecursive(ParseProgramOrDie(kTcProgram), &db);
  EXPECT_EQ(recursive.code(), StatusCode::kFailedPrecondition);
  Status aggregate = EvaluateNonRecursive(
      ParseProgramOrDie("e(a, b).\nn(count(Y)) :- e(X, Y)."), &db);
  EXPECT_EQ(aggregate.code(), StatusCode::kFailedPrecondition);
}

// ---- Prepare integration -------------------------------------------------

TEST(PreparePipeline, BoundedQueryCompilesToNonRecursivePlan) {
  auto qp = QueryProcessor::Create(ParseProgramOrDie(kBoundedProgram));
  ASSERT_TRUE(qp.ok());
  Database db;
  auto prepared = qp->Prepare(ParseAtomOrDie("t(a, Y)"), &db);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->strategy(), Strategy::kNonRecursive);
  EXPECT_TRUE(prepared->pipeline_rewrote());
  ASSERT_NE(prepared->pass_report(), nullptr);
  EXPECT_EQ(prepared->pass_report()->strategy, Strategy::kNonRecursive);
  EXPECT_TRUE(prepared->pass_report()->derecursed);
  EXPECT_EQ(prepared->pass_report()->Summary(),
            "dead-rules=rewritten,bounded=rewritten,separability=abstained");

  CollectingTraceSink sink;
  FixpointOptions options;
  options.trace = &sink;
  auto result = prepared->Execute(ParseAtomOrDie("t(a, Y)"), &db, options,
                                  nullptr, nullptr, /*commit=*/false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->strategy, Strategy::kNonRecursive);
  EXPECT_EQ(result->answer.ToStrings(db.symbols()),
            (std::vector<std::string>{"(a, b)"}));
  bool saw_zero_round_finish = false;
  for (const TraceEvent& e : sink.Events()) {
    if (e.kind == TraceEventKind::kEngineFinish &&
        e.engine == "nonrecursive") {
      saw_zero_round_finish = true;
      EXPECT_EQ(e.iterations, 0u);
    }
  }
  EXPECT_TRUE(saw_zero_round_finish);
}

TEST(PreparePipeline, ResultsAreBitIdenticalWithPipelineOff) {
  auto qp = QueryProcessor::Create(ParseProgramOrDie(kBoundedProgram));
  ASSERT_TRUE(qp.ok());
  for (const char* query : {"t(a, Y)", "t(X, Y)", "t(X, d)"}) {
    Database db_on;
    auto on = qp->Prepare(ParseAtomOrDie(query), &db_on);
    ASSERT_TRUE(on.ok());
    auto result_on = on->Execute(ParseAtomOrDie(query), &db_on, {}, nullptr,
                                 nullptr, /*commit=*/false);
    ASSERT_TRUE(result_on.ok());

    Database db_off;
    auto off = qp->Prepare(ParseAtomOrDie(query), &db_off, Strategy::kAuto,
                           {}, /*run_pipeline=*/false);
    ASSERT_TRUE(off.ok());
    EXPECT_EQ(off->pass_report(), nullptr);
    auto result_off = off->Execute(ParseAtomOrDie(query), &db_off, {},
                                   nullptr, nullptr, /*commit=*/false);
    ASSERT_TRUE(result_off.ok());

    auto rows_on = result_on->answer.ToStrings(db_on.symbols());
    auto rows_off = result_off->answer.ToStrings(db_off.symbols());
    std::sort(rows_on.begin(), rows_on.end());
    std::sort(rows_off.begin(), rows_off.end());
    EXPECT_EQ(rows_on, rows_off) << query;
  }
}

TEST(PreparePipeline, ForcedStrategySkipsPipeline) {
  auto qp = QueryProcessor::Create(ParseProgramOrDie(kBoundedProgram));
  ASSERT_TRUE(qp.ok());
  Database db;
  auto prepared =
      qp->Prepare(ParseAtomOrDie("t(a, Y)"), &db, Strategy::kSemiNaive);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->pass_report(), nullptr);
  EXPECT_FALSE(prepared->pipeline_rewrote());
  EXPECT_EQ(prepared->strategy(), Strategy::kSemiNaive);
}

TEST(PreparePipeline, AnalyzeQueryReportsWithoutDatabase) {
  auto qp = QueryProcessor::Create(ParseProgramOrDie(kTcProgram));
  ASSERT_TRUE(qp.ok());
  auto report = qp->AnalyzeQuery(ParseAtomOrDie("tc(a, Y)"));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->strategy, Strategy::kSeparable);
  EXPECT_FALSE(report->derecursed);
  bool saw_s200 = false;
  for (const Diagnostic& d : report->diagnostics) {
    if (d.code == "S200") saw_s200 = true;
  }
  EXPECT_TRUE(saw_s200);
}

TEST(PreparePipeline, UnboundedRecursionStillUsesFixpointStrategies) {
  auto qp = QueryProcessor::Create(ParseProgramOrDie(kTcProgram));
  ASSERT_TRUE(qp.ok());
  Database db;
  auto prepared = qp->Prepare(ParseAtomOrDie("tc(a, Y)"), &db);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->strategy(), Strategy::kSeparable);
  EXPECT_FALSE(prepared->pipeline_rewrote());
  ASSERT_NE(prepared->pass_report(), nullptr);
  auto result = prepared->Execute(ParseAtomOrDie("tc(a, Y)"), &db, {},
                                  nullptr, nullptr, /*commit=*/false);
  ASSERT_TRUE(result.ok());
  auto rows = result->answer.ToStrings(db.symbols());
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows,
            (std::vector<std::string>{"(a, b)", "(a, c)", "(a, d)"}));
}

// ---- QueryService integration -------------------------------------------

TEST(ServicePipeline, RecordsPassSummaryAndEmitsPassEvents) {
  CollectingTraceSink sink;
  ServiceOptions options;
  options.trace = &sink;
  Database db;
  QueryService service(&db, options);

  ServiceRequest req;
  req.program = kBoundedProgram;
  req.query = "t(a, Y)";
  auto outcomes = service.Execute(req);
  ASSERT_TRUE(outcomes.ok());
  ASSERT_EQ(outcomes->size(), 1u);
  EXPECT_EQ((*outcomes)[0].result.strategy, Strategy::kNonRecursive);
  EXPECT_EQ((*outcomes)[0].tuples, (std::vector<std::string>{"(a, b)"}));
  EXPECT_EQ((*outcomes)[0].pass_summary,
            "dead-rules=rewritten,bounded=rewritten,separability=abstained");

  size_t pass_events = 0;
  bool saw_strategy = false;
  for (const TraceEvent& e : sink.Events()) {
    if (e.kind != TraceEventKind::kPass) continue;
    ++pass_events;
    if (e.phase == "strategy") {
      saw_strategy = true;
      EXPECT_EQ(e.cause, "nonrecursive");
    }
  }
  EXPECT_EQ(pass_events, 4u);  // three passes + the strategy record
  EXPECT_TRUE(saw_strategy);

  // A plan-cache hit re-reports the recorded summary without re-running
  // the pipeline (no new pass events).
  auto again = service.Execute(req);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE((*again)[0].plan_cache_hit);
  EXPECT_EQ((*again)[0].pass_summary, (*outcomes)[0].pass_summary);
  size_t pass_events_after = 0;
  for (const TraceEvent& e : sink.Events()) {
    if (e.kind == TraceEventKind::kPass) ++pass_events_after;
  }
  EXPECT_EQ(pass_events_after, pass_events);
}

TEST(ServicePipeline, OptimizeOffIsBitIdenticalAndCachedSeparately) {
  Database db;
  QueryService service(&db);
  ServiceRequest req;
  req.program = kBoundedProgram;
  req.query = "t(X, Y)";

  auto optimized = service.Execute(req);
  ASSERT_TRUE(optimized.ok());
  EXPECT_FALSE((*optimized)[0].plan_cache_hit);

  req.optimize = false;
  auto control = service.Execute(req);
  ASSERT_TRUE(control.ok());
  // Distinct plan-cache entry: the control run compiles its own plan.
  EXPECT_FALSE((*control)[0].plan_cache_hit);
  EXPECT_TRUE((*control)[0].pass_summary.empty());
  EXPECT_EQ((*control)[0].tuples, (*optimized)[0].tuples);

  auto control_again = service.Execute(req);
  ASSERT_TRUE(control_again.ok());
  EXPECT_TRUE((*control_again)[0].plan_cache_hit);
}

}  // namespace
}  // namespace seprec
