#include "datalog/lexer.h"

#include <gtest/gtest.h>

namespace seprec {
namespace {

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  return kinds;
}

TEST(Lexer, SimpleRule) {
  auto tokens = Tokenize("p(X) :- q(X).");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{
                TokenKind::kIdent, TokenKind::kLParen, TokenKind::kVar,
                TokenKind::kRParen, TokenKind::kColonDash, TokenKind::kIdent,
                TokenKind::kLParen, TokenKind::kVar, TokenKind::kRParen,
                TokenKind::kPeriod, TokenKind::kEnd}));
  EXPECT_EQ((*tokens)[0].text, "p");
  EXPECT_EQ((*tokens)[2].text, "X");
}

TEST(Lexer, AmpersandIsComma) {
  auto tokens = Tokenize("a & b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kComma);
}

TEST(Lexer, IntegersAndNegative) {
  auto tokens = Tokenize("42 - 7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kMinus);
  EXPECT_EQ((*tokens)[2].int_value, 7);
}

TEST(Lexer, ComparisonOperators) {
  auto tokens = Tokenize("= != < <= > >=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{TokenKind::kEq, TokenKind::kNe,
                                    TokenKind::kLt, TokenKind::kLe,
                                    TokenKind::kGt, TokenKind::kGe,
                                    TokenKind::kEnd}));
}

TEST(Lexer, QueryTokens) {
  auto tokens = Tokenize("?- p(X). q(a)?");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kQueryDash);
  EXPECT_EQ((*tokens)[10].kind, TokenKind::kQuestion);
}

TEST(Lexer, CommentsSkipped) {
  auto tokens = Tokenize("p. % trailing comment\n% whole line\nq.");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);
  EXPECT_EQ((*tokens)[0].text, "p");
  EXPECT_EQ((*tokens)[2].text, "q");
  EXPECT_EQ((*tokens)[2].line, 3);
}

TEST(Lexer, QuotedSymbols) {
  auto tokens = Tokenize("'Hello World' 'with.dots'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "Hello World");
  EXPECT_EQ((*tokens)[1].text, "with.dots");
}

TEST(Lexer, VariablesStartUppercaseOrUnderscore) {
  auto tokens = Tokenize("X _y lower");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kVar);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kVar);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kIdent);
}

TEST(Lexer, ErrorOnUnterminatedQuote) {
  auto tokens = Tokenize("'oops");
  EXPECT_FALSE(tokens.ok());
}

TEST(Lexer, ErrorOnStrayCharacters) {
  EXPECT_FALSE(Tokenize("p :- q # r.").ok());
  EXPECT_FALSE(Tokenize("p : q.").ok());
  EXPECT_FALSE(Tokenize("p ! q.").ok());
}

TEST(Lexer, LineNumbersTracked) {
  auto tokens = Tokenize("a.\nb.\n\nc.");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[2].line, 2);
  EXPECT_EQ((*tokens)[4].line, 4);
}

TEST(Lexer, ColumnsTracked) {
  auto tokens = Tokenize("ab(X).\n  cd(Y).");
  ASSERT_TRUE(tokens.ok());
  // ab ( X ) . cd ( Y ) .
  EXPECT_EQ((*tokens)[0].col, 1);      // ab
  EXPECT_EQ((*tokens)[0].end_col, 3);  // one past 'b'
  EXPECT_EQ((*tokens)[1].col, 3);      // (
  EXPECT_EQ((*tokens)[2].col, 4);      // X
  EXPECT_EQ((*tokens)[4].col, 6);      // .
  EXPECT_EQ((*tokens)[5].line, 2);
  EXPECT_EQ((*tokens)[5].col, 3);      // cd after two spaces
  EXPECT_EQ((*tokens)[5].end_col, 5);
}

TEST(Lexer, ErrorsCarryLineAndColumn) {
  auto tokens = Tokenize("p(a).\n  q # r.");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("line 2, col 5"),
            std::string::npos)
      << tokens.status().message();
}

TEST(Lexer, ArithmeticTokens) {
  auto tokens = Tokenize("X is Y * 2 + 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdent);  // 'is' is an identifier
  EXPECT_EQ((*tokens)[1].text, "is");
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kStar);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kPlus);
}

}  // namespace
}  // namespace seprec
