// Tests for the ordered, compressed, mmap-backed segment subsystem:
// varint coding, the page builder/decoder roundtrip, snapshot v3
// save/load (including v1/v2 back-compat and corruption reporting), the
// relation delta layer over a base segment, ordered cursors, the
// accountant exemption for file-backed bytes, and the merge-join path
// producing bit-identical answers to the hash path.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/join_plan.h"
#include "plan/stats.h"
#include "storage/database.h"
#include "storage/relation.h"
#include "storage/segment/paged_file.h"
#include "storage/segment/segment.h"
#include "storage/segment/snapshot_v3.h"
#include "storage/segment/varint.h"
#include "storage/snapshot.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace seprec {
namespace {

class SegmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::DisarmAll();
    dir_ = StrCat(::testing::TempDir(), "/seprec_segment_",
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(std::filesystem::create_directories(dir_));
  }

  void TearDown() override {
    Failpoints::DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& file) const {
    return StrCat(dir_, "/", file);
  }

  // XORs one byte of `path` at `at`, simulating a flipped bit on disk.
  static void DamageFile(const std::string& path, uint64_t at,
                         uint8_t xor_mask) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(at));
    char byte = 0;
    f.read(&byte, 1);
    ASSERT_TRUE(f.good());
    byte = static_cast<char>(byte ^ xor_mask);
    f.seekp(static_cast<std::streamoff>(at));
    f.write(&byte, 1);
    ASSERT_TRUE(f.good());
  }

  std::string dir_;
};

// Rows compared the way segments store them: raw bits, lexicographic.
bool BitsLess(const std::vector<Value>& a, const std::vector<Value>& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i].bits() != b[i].bits()) return a[i].bits() < b[i].bits();
  }
  return a.size() < b.size();
}

std::vector<std::vector<Value>> SortedByBits(
    std::vector<std::vector<Value>> rows) {
  std::sort(rows.begin(), rows.end(), BitsLess);
  return rows;
}

// Collects every live row of `rel` in ForEachRowOrdered order.
std::vector<std::vector<Value>> OrderedRows(const Relation& rel) {
  std::vector<std::vector<Value>> out;
  rel.ForEachRowOrdered(
      [&](Row row) { out.emplace_back(row.begin(), row.end()); });
  return out;
}

TEST_F(SegmentTest, VarintRoundTrip) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            uint64_t{1} << 32,
                            uint64_t{1} << 56,
                            ~uint64_t{0}};
  for (uint64_t v : cases) {
    uint8_t buf[kMaxVarintBytes];
    uint8_t* end = EncodeVarint(buf, v);
    EXPECT_EQ(static_cast<size_t>(end - buf), VarintSize(v)) << v;
    uint64_t decoded = 0;
    const uint8_t* next = DecodeVarint(buf, end, &decoded);
    ASSERT_NE(next, nullptr) << v;
    EXPECT_EQ(next, end) << v;
    EXPECT_EQ(decoded, v);
  }
}

TEST_F(SegmentTest, VarintTruncationRejected) {
  uint8_t buf[kMaxVarintBytes];
  uint8_t* end = EncodeVarint(buf, ~uint64_t{0});
  uint64_t decoded = 0;
  // Every proper prefix of a multi-byte encoding must be rejected.
  for (const uint8_t* cut = buf; cut < end; ++cut) {
    EXPECT_EQ(DecodeVarint(buf, cut, &decoded), nullptr);
  }
}

TEST_F(SegmentTest, BuilderSegmentRoundTrip) {
  // Enough rows to span several pages, with duplicate leading columns so
  // the aggregated segment has real counts to report.
  constexpr int kKeys = 1200;
  constexpr int kPerKey = 4;
  std::vector<std::vector<Value>> rows;
  for (int k = 0; k < kKeys; ++k) {
    for (int j = 0; j < kPerKey; ++j) {
      rows.push_back({Value::Int(k), Value::Int(j * 10000 + k)});
    }
  }
  rows = SortedByBits(std::move(rows));

  std::string pages;
  SegmentBuilder builder("t", 2, [&](const uint8_t* page) {
    pages.append(reinterpret_cast<const char*>(page), kSegmentPageSize);
    return Status::OK();
  });
  for (const auto& row : rows) {
    ASSERT_TRUE(builder.Add(row.data()).ok());
  }
  StatusOr<SegmentGeometry> geom = builder.Finish();
  ASSERT_TRUE(geom.ok()) << geom.status().ToString();
  EXPECT_EQ(geom->rows, rows.size());
  EXPECT_GT(geom->data_pages, 1u);
  EXPECT_EQ(geom->agg_entries, static_cast<uint64_t>(kKeys));
  ASSERT_EQ(geom->distinct.size(), 2u);
  EXPECT_EQ(geom->distinct[0], static_cast<uint64_t>(kKeys));
  EXPECT_EQ(geom->distinct[1], rows.size());

  const std::string path = Path("t.seg");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(pages.data(), static_cast<std::streamoff>(pages.size()));
    ASSERT_TRUE(out.good());
  }
  StatusOr<std::shared_ptr<PagedFileReader>> file =
      PagedFileReader::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  // Builder offsets count from its own first page == file offset 0 here.
  RelationSegment seg(*file, *geom);
  ASSERT_TRUE(seg.VerifyPages().ok());
  ASSERT_EQ(seg.rows(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value* got = seg.row(i);
    for (size_t c = 0; c < 2; ++c) {
      ASSERT_EQ(got[c].bits(), rows[i][c].bits()) << "row " << i;
    }
  }
  // Exact-match and lower-bound lookups for every row.
  for (size_t i = 0; i < rows.size(); i += 7) {
    EXPECT_EQ(seg.Find(rows[i].data(), 2), i);
    EXPECT_EQ(seg.LowerBound(rows[i].data(), 2), i);
  }
  std::vector<Value> absent = {Value::Int(kKeys + 5), Value::Int(0)};
  EXPECT_EQ(seg.Find(absent.data(), 2), seg.rows());
  // Aggregated counts answer per-key cardinalities without a scan.
  for (int k = 0; k < kKeys; k += 13) {
    StatusOr<uint64_t> n = seg.PrefixCount(Value::Int(k));
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, static_cast<uint64_t>(kPerKey)) << "key " << k;
  }
  StatusOr<uint64_t> none = seg.PrefixCount(Value::Int(kKeys + 5));
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0u);
}

TEST_F(SegmentTest, SnapshotV3RoundTripBitIdentical) {
  Database db;
  ASSERT_TRUE(db.AddFact("edge", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("edge", {"b", "c"}).ok());
  ASSERT_TRUE(db.AddFact("edge", {"c", "a"}).ok());
  Relation* cost = *db.CreateRelation("cost", 2);
  for (int i = 0; i < 500; ++i) {
    cost->Insert({Value::Int(i), Value::Int(i * i)});
  }
  ASSERT_TRUE(db.CreateRelation("empty", 3).ok());

  const std::string path = Path("db.v3");
  ASSERT_TRUE(SaveSnapshotV3File(db, path).ok());

  Database loaded;
  ASSERT_TRUE(LoadSnapshotV3File(&loaded, path).ok());
  ASSERT_EQ(loaded.RelationNames(), db.RelationNames());
  for (const std::string& name : db.RelationNames()) {
    const Relation* orig = db.Find(name);
    const Relation* got = loaded.Find(name);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->DebugString(loaded.symbols()),
              orig->DebugString(db.symbols()))
        << name;
    if (orig->size() > 0) {
      // Non-empty relations come back mmap-backed, not on the heap.
      ASSERT_NE(got->base_segment(), nullptr) << name;
      EXPECT_EQ(got->base_slots(), orig->size());
      EXPECT_EQ(got->delta_rows(), 0u);
      EXPECT_TRUE(got->base_segment()->mmapped());
    }
  }
}

TEST_F(SegmentTest, TextSnapshotsLoadIdenticalToV3) {
  Database db;
  ASSERT_TRUE(db.AddFact("edge", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("edge", {"b", "c"}).ok());
  Relation* n = *db.CreateRelation("n", 1);
  n->Insert({Value::Int(7)});
  n->Insert({Value::Int(-3)});

  const std::string v2_path = Path("db.v2");
  const std::string v3_path = Path("db.v3");
  ASSERT_TRUE(SaveSnapshotFile(db, v2_path).ok());  // text v2
  ASSERT_TRUE(SaveSnapshotV3File(db, v3_path).ok());

  // LoadSnapshotFile sniffs the magic: the same entry point must serve
  // both formats, with identical resulting contents.
  Database from_v2;
  Database from_v3;
  ASSERT_TRUE(LoadSnapshotFile(&from_v2, v2_path).ok());
  ASSERT_TRUE(LoadSnapshotFile(&from_v3, v3_path).ok());
  ASSERT_EQ(from_v2.RelationNames(), from_v3.RelationNames());
  for (const std::string& name : from_v2.RelationNames()) {
    EXPECT_EQ(from_v2.Find(name)->DebugString(from_v2.symbols()),
              from_v3.Find(name)->DebugString(from_v3.symbols()))
        << name;
  }
}

TEST_F(SegmentTest, V1TextSnapshotStillLoads) {
  const std::string path = Path("db.v1");
  {
    std::ofstream out(path);
    out << "seprec-snapshot v1\n"
        << "relation edge 2\n"
        << "s:a\ts:b\n"
        << "s:b\ts:c\n"
        << "tuples 2\n"
        << "end\n";
    ASSERT_TRUE(out.good());
  }
  Database db;
  ASSERT_TRUE(LoadSnapshotFile(&db, path).ok());
  const Relation* edge = db.Find("edge");
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->DebugString(db.symbols()), "edge(a, b)\nedge(b, c)\n");
}

TEST_F(SegmentTest, FlippedByteReportedAsCorruptPage) {
  Database db;
  Relation* rel = *db.CreateRelation("t", 2);
  for (int i = 0; i < 2000; ++i) {
    rel->Insert({Value::Int(i), Value::Int(i + 1)});
  }
  const std::string path = Path("db.v3");
  ASSERT_TRUE(SaveSnapshotV3File(db, path).ok());

  // Pages start right after the 8-byte magic; hit the middle of the
  // first data page's payload.
  DamageFile(path, 8 + 1000, 0x40);
  Database loaded;
  Status st = LoadSnapshotV3File(&loaded, path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
  // The report must name the damaged page, not just "bad file".
  EXPECT_NE(st.message().find("page 0"), std::string::npos)
      << st.ToString();
}

TEST_F(SegmentTest, MmapBaseNotChargedToAccountant) {
  Database db;
  Relation* rel = *db.CreateRelation("t", 2);
  for (int i = 0; i < 5000; ++i) {
    rel->Insert({Value::Int(i), Value::Int(i * 3)});
  }
  const std::string path = Path("db.v3");
  ASSERT_TRUE(SaveSnapshotV3File(db, path).ok());

  Database loaded;
  ASSERT_TRUE(LoadSnapshotV3File(&loaded, path).ok());
  // The governor's byte budget (ExecutionLimits::max_bytes) reads this
  // accountant. Base rows are file-backed page cache, not query heap, so
  // a database far larger than max_bytes must load with zero charge...
  EXPECT_EQ(loaded.accountant().bytes(), 0u);

  // ...while resident delta rows are charged exactly like heap rows.
  Relation* t = loaded.Find("t");
  ASSERT_TRUE(t->Insert({Value::Int(9001), Value::Int(1)}));
  const size_t row_bytes =
      2 * sizeof(Value) + MemoryAccountant::kRowOverheadBytes;
  EXPECT_EQ(loaded.accountant().bytes(), row_bytes);
  ASSERT_TRUE(t->Insert({Value::Int(9002), Value::Int(1)}));
  EXPECT_EQ(loaded.accountant().bytes(), 2 * row_bytes);
  // Duplicates of base rows are dedup-rejected: no charge.
  ASSERT_FALSE(t->Insert({Value::Int(0), Value::Int(0)}));
  EXPECT_EQ(loaded.accountant().bytes(), 2 * row_bytes);
}

TEST_F(SegmentTest, DeltaLayerInsertEraseReinsert) {
  Database db;
  Relation* rel = *db.CreateRelation("t", 2);
  for (int i = 0; i < 100; ++i) {
    rel->Insert({Value::Int(i), Value::Int(i)});
  }
  const std::string path = Path("db.v3");
  ASSERT_TRUE(SaveSnapshotV3File(db, path).ok());
  Database loaded;
  ASSERT_TRUE(LoadSnapshotV3File(&loaded, path).ok());
  Relation* t = loaded.Find("t");
  ASSERT_EQ(t->base_slots(), 100u);

  // Dedup sees through to the base: re-inserting a base row is a no-op.
  EXPECT_FALSE(t->Insert({Value::Int(42), Value::Int(42)}));
  EXPECT_EQ(t->size(), 100u);
  EXPECT_EQ(t->delta_rows(), 0u);

  // New rows land in the delta layer above the base slots.
  EXPECT_TRUE(t->Insert({Value::Int(200), Value::Int(200)}));
  EXPECT_EQ(t->size(), 101u);
  EXPECT_EQ(t->delta_rows(), 1u);

  // Erasing a base row tombstones its (immutable) slot.
  Relation dead("dead", 2);
  dead.Insert({Value::Int(42), Value::Int(42)});
  EXPECT_EQ(t->EraseRows(dead), 1u);
  EXPECT_EQ(t->base_dead(), 1u);
  EXPECT_EQ(t->size(), 100u);
  EXPECT_FALSE(t->Contains(dead.row(0)));

  // A tombstoned base row can come back as a delta row.
  EXPECT_TRUE(t->Insert({Value::Int(42), Value::Int(42)}));
  EXPECT_TRUE(t->Contains(dead.row(0)));
  EXPECT_EQ(t->size(), 101u);
  EXPECT_EQ(t->delta_rows(), 2u);
}

TEST_F(SegmentTest, TruncateRestoresDeltaAppendPoint) {
  Database db;
  Relation* rel = *db.CreateRelation("t", 1);
  for (int i = 0; i < 10; ++i) rel->Insert({Value::Int(i)});
  const std::string path = Path("db.v3");
  ASSERT_TRUE(SaveSnapshotV3File(db, path).ok());
  Database loaded;
  ASSERT_TRUE(LoadSnapshotV3File(&loaded, path).ok());
  Relation* t = loaded.Find("t");

  const size_t mark = t->slots();
  ASSERT_TRUE(t->Insert({Value::Int(100)}));
  ASSERT_TRUE(t->Insert({Value::Int(101)}));
  ASSERT_EQ(t->slots(), mark + 2);
  // Rollback of an evaluator's appends: truncation may cut the delta
  // back to any point at or above the immutable base.
  t->TruncateToSlots(mark);
  EXPECT_EQ(t->size(), 10u);
  EXPECT_EQ(t->delta_rows(), 0u);
  const Value gone = Value::Int(100);
  const Value kept = Value::Int(3);
  EXPECT_FALSE(t->Contains(Row(&gone, 1)));
  EXPECT_TRUE(t->Contains(Row(&kept, 1)));
}

TEST_F(SegmentTest, OrderedCursorMergesBaseAndDelta) {
  Database db;
  Relation* rel = *db.CreateRelation("t", 2);
  std::vector<std::vector<Value>> expect;
  for (int i = 0; i < 300; i += 2) {  // even keys into the base
    rel->Insert({Value::Int(i), Value::Int(i)});
    expect.push_back({Value::Int(i), Value::Int(i)});
  }
  const std::string path = Path("db.v3");
  ASSERT_TRUE(SaveSnapshotV3File(db, path).ok());
  Database loaded;
  ASSERT_TRUE(LoadSnapshotV3File(&loaded, path).ok());
  Relation* t = loaded.Find("t");

  for (int i = 1; i < 300; i += 2) {  // odd keys into the delta
    ASSERT_TRUE(t->Insert({Value::Int(i), Value::Int(i)}));
    expect.push_back({Value::Int(i), Value::Int(i)});
  }
  // Tombstone one base row and one delta row; neither may surface.
  Relation dead("dead", 2);
  dead.Insert({Value::Int(10), Value::Int(10)});
  dead.Insert({Value::Int(11), Value::Int(11)});
  ASSERT_EQ(t->EraseRows(dead), 2u);
  expect.erase(std::remove_if(expect.begin(), expect.end(),
                              [](const std::vector<Value>& r) {
                                return r[0].bits() == Value::Int(10).bits() ||
                                       r[0].bits() == Value::Int(11).bits();
                              }),
               expect.end());
  expect = SortedByBits(std::move(expect));

  // ForEachRowOrdered (and the cursor underneath) yields the live union
  // of base and delta in canonical raw-bits order.
  std::vector<std::vector<Value>> got = OrderedRows(*t);
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i][0].bits(), expect[i][0].bits()) << "row " << i;
    EXPECT_EQ(got[i][1].bits(), expect[i][1].bits()) << "row " << i;
  }

  // SeekGE lands on an exact row regardless of which side holds it.
  for (int key : {4, 7}) {  // 4 in the base, 7 in the delta
    OrderedCursor cur(t);
    std::vector<Value> probe = {Value::Int(key), Value::Int(key)};
    cur.SeekGE(Row(probe.data(), probe.size()));
    ASSERT_FALSE(cur.AtEnd()) << key;
    EXPECT_EQ(cur.Current()[0].bits(), probe[0].bits());
    EXPECT_EQ(cur.Current()[1].bits(), probe[1].bits());
  }
}

// Compiles the single rule in `rule_text` against `db` and returns the
// sorted output plus the planner's join-algorithm verdict.
std::string RunRuleWithAlgo(const std::string& rule_text, Database* db,
                            bool allow_merge, std::string* algo) {
  Program p = ParseProgramOrDie(rule_text);
  PlanOptions options;
  options.allow_merge = allow_merge;
  StatusOr<RulePlan> plan = RulePlan::Compile(p.rules[0], db, options);
  SEPREC_CHECK(plan.ok());
  *algo = plan->plan_info().algo;
  Relation out("out", p.rules[0].head.arity());
  plan->ExecuteInto(&out);
  return out.DebugString(db->symbols());
}

TEST_F(SegmentTest, MergeJoinMatchesHashJoinBitIdentically) {
  Database db;
  // Duplicate join keys on both sides so the merge operator's group
  // buffering is exercised, plus unmatched keys on each side.
  for (int k = 0; k < 40; ++k) {
    Relation* r = *db.CreateRelation("r", 2);
    Relation* s = *db.CreateRelation("s", 2);
    r->Insert({Value::Int(k), Value::Int(1000 + k)});
    if (k % 2 == 0) r->Insert({Value::Int(k), Value::Int(2000 + k)});
    if (k % 3 != 0) {
      s->Insert({Value::Int(k), Value::Int(3000 + k)});
      s->Insert({Value::Int(k), Value::Int(4000 + k)});
    }
  }
  const std::string path = Path("db.v3");
  ASSERT_TRUE(SaveSnapshotV3File(db, path).ok());
  Database loaded;
  ASSERT_TRUE(LoadSnapshotV3File(&loaded, path).ok());

  const std::string rule = "h(Y, Z) :- r(X, Y), s(X, Z).";
  std::string merge_algo;
  std::string hash_algo;
  const std::string merged =
      RunRuleWithAlgo(rule, &loaded, /*allow_merge=*/true, &merge_algo);
  const std::string hashed =
      RunRuleWithAlgo(rule, &loaded, /*allow_merge=*/false, &hash_algo);
  // Both segment-backed inputs share the leading variable: the planner
  // must pick the merge join, and --no-segments (allow_merge=false) must
  // fall back to hash with bit-identical answers.
  EXPECT_EQ(merge_algo, "merge");
  EXPECT_EQ(hash_algo, "hash");
  EXPECT_FALSE(merged.empty());
  EXPECT_EQ(merged, hashed);

  // Heap-only relations (no segments attached) never merge-join.
  std::string heap_algo;
  const std::string heap =
      RunRuleWithAlgo(rule, &db, /*allow_merge=*/true, &heap_algo);
  EXPECT_EQ(heap_algo, "hash");
  EXPECT_EQ(heap, merged);
}

TEST_F(SegmentTest, StatsExactForSegmentBackedRelations) {
  Database db;
  Relation* rel = *db.CreateRelation("t", 2);
  for (int i = 0; i < 200; ++i) {
    rel->Insert({Value::Int(i / 4), Value::Int(i)});
  }
  const std::string path = Path("db.v3");
  ASSERT_TRUE(SaveSnapshotV3File(db, path).ok());
  Database loaded;
  ASSERT_TRUE(LoadSnapshotV3File(&loaded, path).ok());
  Relation* t = loaded.Find("t");

  // Pristine segment-backed relation: counts come off the aggregated
  // segment, no scan, and the relation advertises its ordering.
  RelationStats stats = loaded.stats().Get(*t);
  EXPECT_EQ(stats.source, RelationStats::Source::kExact);
  EXPECT_TRUE(stats.ordered);
  EXPECT_EQ(stats.rows, 200u);
  ASSERT_EQ(stats.distinct.size(), 2u);
  EXPECT_EQ(stats.distinct[0], 50u);
  EXPECT_EQ(stats.distinct[1], 200u);

  // A delta row invalidates the exact shortcut; the catalog falls back
  // to scanning but the relation stays ordered (cursor merges the
  // delta), so merge joins remain available between compactions.
  ASSERT_TRUE(t->Insert({Value::Int(1000), Value::Int(1000)}));
  stats = loaded.stats().Get(*t);
  EXPECT_EQ(stats.source, RelationStats::Source::kSampled);
  EXPECT_TRUE(stats.ordered);
  EXPECT_EQ(stats.rows, 201u);

  // Heap relations never report exact.
  RelationStats heap = db.stats().Get(*db.Find("t"));
  EXPECT_EQ(heap.source, RelationStats::Source::kSampled);
  EXPECT_FALSE(heap.ordered);
}

}  // namespace
}  // namespace seprec
