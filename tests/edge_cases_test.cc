// Edge cases across modules: propositional (0-ary) predicates, EvalStats
// accounting, unusual but legal programs.
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "datalog/parser.h"
#include "eval/eval_stats.h"
#include "eval/fixpoint.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "magic/engine.h"

namespace seprec {
namespace {

TEST(EvalStats, NoteAndTotals) {
  EvalStats stats;
  stats.NoteRelation("a", 10);
  stats.NoteRelation("b", 3);
  EXPECT_EQ(stats.max_relation_size, 10u);
  EXPECT_EQ(stats.TotalRelationSize(), 13u);
  stats.NoteRelation("a", 2);  // overwrite keeps max high-water
  EXPECT_EQ(stats.TotalRelationSize(), 5u);
  EXPECT_EQ(stats.max_relation_size, 10u);
  stats.NoteRelationMax("a", 1);  // max-mode keeps the larger
  EXPECT_EQ(stats.relation_sizes.at("a"), 2u);
  stats.NoteRelationMax("a", 7);
  EXPECT_EQ(stats.relation_sizes.at("a"), 7u);
  stats.algorithm = "test";
  EXPECT_NE(stats.ToString().find("algorithm: test"), std::string::npos);
}

TEST(Propositional, FixpointOnZeroArity) {
  Program p = ParseProgramOrDie(
      "raining.\n"
      "cloudy :- raining.\n"
      "wet :- raining, ground_exposed.\n"
      "ground_exposed.");
  Database db;
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.Find("cloudy")->size(), 1u);
  EXPECT_EQ(db.Find("wet")->size(), 1u);
}

TEST(Propositional, QueryThroughProcessor) {
  Program p = ParseProgramOrDie(
      "raining.\n"
      "wet :- raining.");
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  Database db;
  auto result = qp->Answer(ParseAtomOrDie("wet"), &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->answer.size(), 1u);
  EXPECT_EQ(result->answer.arity(), 0u);
}

TEST(Propositional, MagicWithZeroArity) {
  // All-free (trivially: no arguments) query through magic: 0-ary magic
  // seed relation.
  Program p = ParseProgramOrDie(
      "switch_on.\n"
      "lit :- switch_on, has_power.\n"
      "has_power.");
  Database db1, db2;
  auto run = EvaluateWithMagic(p, ParseAtomOrDie("lit"), &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer.size(), 1u);
  ASSERT_TRUE(EvaluateSemiNaive(p, &db2).ok());
  EXPECT_EQ(db2.Find("lit")->size(), 1u);
}

TEST(Propositional, NegatedZeroArity) {
  Program p = ParseProgramOrDie(
      "maintenance_mode.\n"
      "serving :- listener_up, not maintenance_mode.\n"
      "listener_up.");
  Database db;
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.Find("serving")->size(), 0u);
  Program p2 = ParseProgramOrDie(
      "serving :- listener_up, not maintenance_mode.\n"
      "listener_up.");
  Database db2;
  ASSERT_TRUE(EvaluateSemiNaive(p2, &db2).ok());
  EXPECT_EQ(db2.Find("serving")->size(), 1u);
}

TEST(EdgeCase, SingleNodeChainQueries) {
  // Chain of one node: empty edge relation; all engines return empty.
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  for (Strategy s : {Strategy::kSeparable, Strategy::kMagic,
                     Strategy::kQsqr, Strategy::kCounting}) {
    Database db;
    MakeChain(&db, "edge", "v", 1);
    auto result = qp->Answer(ParseAtomOrDie("tc(v0, Y)"), &db, s);
    ASSERT_TRUE(result.ok())
        << StrategyToString(s) << ": " << result.status().ToString();
    EXPECT_TRUE(result->answer.empty()) << StrategyToString(s);
  }
}

TEST(EdgeCase, QueryConstantTypeMismatch) {
  // Integer constant where the data has symbols: no crash, no answers.
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeChain(&db, "edge", "v", 4);
  auto result = qp->Answer(ParseAtomOrDie("tc(7, Y)"), &db);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->answer.empty());
}

TEST(EdgeCase, RuleWithOnlyBuiltins) {
  Program p = ParseProgramOrDie("answer(X) :- X = 41, Y is X + 1, Y = 42.");
  Database db;
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.Find("answer")->DebugString(db.symbols()), "answer(41)\n");
}

TEST(EdgeCase, ChainedEqualitiesAcrossTypes) {
  Program p = ParseProgramOrDie(
      "mix(X, Y) :- X = tom, Y = 3.\n"
      "pick(Y) :- mix(tom, Y).");
  Database db;
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.Find("pick")->DebugString(db.symbols()), "pick(3)\n");
}

TEST(EdgeCase, SeparableOnParallelEdgesAndDuplicates) {
  // Multigraph-ish input (duplicates collapse under set semantics).
  Program p = ParseProgramOrDie(
      "tc(X, Y) :- edge(X, W) & tc(W, Y).\n"
      "tc(X, Y) :- edge(X, Y).");
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  Database db;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(db.AddFact("edge", {"a", "b"}).ok());
    ASSERT_TRUE(db.AddFact("edge", {"b", "c"}).ok());
  }
  auto result = qp->Answer(ParseAtomOrDie("tc(a, Y)"), &db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answer.size(), 2u);
}

TEST(EdgeCase, VeryWideSelection) {
  // Query binds 7 of 8 columns of a separable recursion (class {0} plus
  // 7 persistent columns).
  Program p = ParseProgramOrDie(
      "t(A, B, C, D, E, F, G, H) :- "
      "step(A, W) & t(W, B, C, D, E, F, G, H).\n"
      "t(A, B, C, D, E, F, G, H) :- seed(A, B, C, D, E, F, G, H).");
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeChain(&db, "step", "s", 4);
  ASSERT_TRUE(
      db.AddFact("seed", {"s3", "b", "c", "d", "e", "f", "g", "h"}).ok());
  auto result = qp->Answer(
      ParseAtomOrDie("t(s0, b, c, d, e, f, g, Z)"), &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->answer.size(), 1u);
  EXPECT_EQ(result->strategy, Strategy::kSeparable);
}

TEST(EdgeCase, TwoRecursivePredicatesIndependent) {
  Program p = ParseProgramOrDie(
      "up(X, Y) :- uedge(X, Y).\n"
      "up(X, Y) :- uedge(X, W) & up(W, Y).\n"
      "dn(X, Y) :- dedge(X, Y).\n"
      "dn(X, Y) :- dedge(X, W) & dn(W, Y).\n"
      "meet(X) :- up(a, X), dn(b, X).");
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  EXPECT_NE(qp->FindSeparable("up"), nullptr);
  EXPECT_NE(qp->FindSeparable("dn"), nullptr);
  Database db;
  ASSERT_TRUE(db.AddFact("uedge", {"a", "m"}).ok());
  ASSERT_TRUE(db.AddFact("dedge", {"b", "m"}).ok());
  auto result = qp->Answer(ParseAtomOrDie("meet(X)"), &db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answer.size(), 1u);
}

}  // namespace
}  // namespace seprec
