// Robustness: random and adversarial inputs must produce Status errors or
// correct results, never crashes or hangs.
#include <gtest/gtest.h>

#include <string>

#include "core/compiler.h"
#include "datalog/lexer.h"
#include "datalog/parser.h"
#include "gen/generators.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace seprec {
namespace {

TEST(Robustness, LexerSurvivesRandomBytes) {
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    std::string input;
    size_t len = rng.Below(80);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(32 + rng.Below(95)));
    }
    // Must return ok-or-error, never crash.
    auto tokens = Tokenize(input);
    (void)tokens;
  }
}

TEST(Robustness, ParserSurvivesRandomTokenSoup) {
  Rng rng(7);
  const std::vector<std::string> pieces = {
      "p",  "q",   "X",  "Y",   "(",  ")",  ",",  ".",  ":-", "?-",
      "?",  "not", "is", "42",  "&",  "=",  "!=", "<",  "<=", "tom",
      "+",  "*",   "-",  "mod", "count", "sum", "'q s'", "%c\n"};
  for (int trial = 0; trial < 800; ++trial) {
    std::string input;
    size_t len = rng.Below(25);
    for (size_t i = 0; i < len; ++i) {
      input += pieces[rng.Below(pieces.size())];
      input += rng.Chance(0.7) ? " " : "";
    }
    auto unit = ParseUnit(input);
    (void)unit;  // ok or error; never crash
  }
}

TEST(Robustness, ParserSurvivesTruncatedValidPrograms) {
  const std::string program =
      "edge(a, b). edge(b, c).\n"
      "deg(X, count(Y)) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, W), tc(W, Y), not blocked(W), Z is 1 + 2.\n"
      "?- tc(a, Y).";
  for (size_t cut = 0; cut <= program.size(); ++cut) {
    auto unit = ParseUnit(program.substr(0, cut));
    (void)unit;
  }
}

TEST(Robustness, DeepExpressionNesting) {
  // 200 nested parens — parser recursion must handle or reject cleanly.
  std::string expr(200, '(');
  expr += "1";
  expr.append(200, ')');
  auto unit = ParseUnit(StrCat("p(Z) :- q(X), Z is ", expr, "."));
  ASSERT_TRUE(unit.ok());
  // The plan's fixed expression stack is small: compile must fail
  // gracefully, not overflow.
  Database db;
  ASSERT_TRUE(db.AddFact("q", {"1"}).ok());
  auto qp = QueryProcessor::Create(unit->program);
  ASSERT_TRUE(qp.ok());
  auto result = qp->Answer(ParseAtomOrDie("p(Z)"), &db);
  // Either evaluates (constant-folds through the stack) or errors; the
  // deep chain is left-nested so the postfix stack stays shallow and this
  // actually evaluates.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->answer.size(), 1u);
}

TEST(Robustness, LongChainDeepRecursionNoStackIssue) {
  // 20000-node chain: fixpoint depth equals chain length; the engines
  // iterate, never recurse per depth.
  Database db;
  MakeChain(&db, "edge", "v", 20000);
  Program p = ParseProgramOrDie(
      "tc(X, Y) :- edge(X, W) & tc(W, Y).\n"
      "tc(X, Y) :- edge(X, Y).");
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  auto result = qp->Answer(ParseAtomOrDie("tc(v19990, Y)"), &db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answer.size(), 9u);
}

TEST(Robustness, SelfLoopData) {
  Database db;
  ASSERT_TRUE(db.AddFact("edge", {"a", "a"}).ok());
  Program p = ParseProgramOrDie(
      "tc(X, Y) :- edge(X, W) & tc(W, Y).\n"
      "tc(X, Y) :- edge(X, Y).");
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  for (Strategy s : {Strategy::kSeparable, Strategy::kMagic,
                     Strategy::kSemiNaive}) {
    Database fresh;
    ASSERT_TRUE(fresh.AddFact("edge", {"a", "a"}).ok());
    auto result = qp->Answer(ParseAtomOrDie("tc(a, Y)"), &fresh, s);
    ASSERT_TRUE(result.ok()) << StrategyToString(s);
    EXPECT_EQ(result->answer.size(), 1u) << StrategyToString(s);
  }
}

TEST(Robustness, EmptyProgramAndQueries) {
  auto qp = QueryProcessor::Create(Program{});
  ASSERT_TRUE(qp.ok());
  Database db;
  auto result = qp->Answer(ParseAtomOrDie("anything(X, Y)"), &db);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->answer.empty());
}

TEST(Robustness, HugeArityRelation) {
  Database db;
  std::vector<std::string> row;
  std::string head_args, body_args;
  for (int i = 0; i < 32; ++i) {
    row.push_back(StrCat("c", i));
    if (i > 0) {
      head_args += ", ";
      body_args += ", ";
    }
    head_args += StrCat("A", i);
    body_args += StrCat("A", i);
  }
  ASSERT_TRUE(db.AddFact("wide", row).ok());
  Program p = ParseProgramOrDie(
      StrCat("copy(", head_args, ") :- wide(", body_args, ")."));
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  Atom query;
  query.predicate = "copy";
  for (int i = 0; i < 32; ++i) query.args.push_back(Term::Var(StrCat("A", i)));
  auto result = qp->Answer(query, &db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answer.size(), 1u);
}

TEST(Robustness, IntegerConstantsInQueries) {
  Program p = ParseProgramOrDie(
      "next(X, Y) :- num(X), num(Y), Y is X + 1.\n"
      "num(1). num(2). num(3).");
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  Database db;
  auto result = qp->Answer(ParseAtomOrDie("next(1, Y)"), &db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answer.ToStrings(db.symbols()),
            (std::vector<std::string>{"(1, 2)"}));
}

TEST(Robustness, MixedIntAndSymbolColumns) {
  // The same column holding ints and symbols: joins and magic must treat
  // them as distinct values.
  Program p = ParseProgramOrDie(
      "t(X, Y) :- e(X, W) & t(W, Y).\n"
      "t(X, Y) :- e(X, Y).");
  Database db;
  Relation* e = *db.CreateRelation("e", 2);
  Value a = db.symbols().Intern("a");
  e->Insert({a, Value::Int(1)});
  e->Insert({Value::Int(1), Value::Int(2)});
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  auto result = qp->Answer(ParseAtomOrDie("t(a, Y)"), &db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answer.size(), 2u);  // (a,1), (a,2)
}

}  // namespace
}  // namespace seprec
