// Tests for the synthetic data generators and paper workloads.
#include <gtest/gtest.h>

#include "datalog/analysis.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "util/rng.h"

namespace seprec {
namespace {

TEST(Rng, DeterministicAndBounded) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(Rng(42).Next(), c.Next());
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Below(10), 10u);
    int64_t v = r.Between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  EXPECT_FALSE(Rng(1).Chance(0.0));
  EXPECT_TRUE(Rng(1).Chance(1.0));
}

TEST(Generators, Chain) {
  Database db;
  MakeChain(&db, "e", "v", 5);
  const Relation* rel = db.Find("e");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->size(), 4u);
  EXPECT_EQ(rel->DebugString(db.symbols()),
            "e(v0, v1)\ne(v1, v2)\ne(v2, v3)\ne(v3, v4)\n");
}

TEST(Generators, ChainOfOneNodeIsEmpty) {
  Database db;
  MakeChain(&db, "e", "v", 1);
  EXPECT_EQ(db.Find("e")->size(), 0u);
}

TEST(Generators, Cycle) {
  Database db;
  MakeCycle(&db, "e", "v", 4);
  EXPECT_EQ(db.Find("e")->size(), 4u);
  Value v3 = db.symbols().Intern("v3");
  Value v0 = db.symbols().Intern("v0");
  EXPECT_TRUE(db.Find("e")->Contains(std::vector<Value>{v3, v0}));
}

TEST(Generators, Tree) {
  Database db;
  MakeTree(&db, "e", "n", 2, 3);
  // Binary tree depth 3: 2 + 4 + 8 = 14 edges.
  EXPECT_EQ(db.Find("e")->size(), 14u);
  Database db3;
  MakeTree(&db3, "e", "n", 3, 2);
  EXPECT_EQ(db3.Find("e")->size(), 12u);  // 3 + 9
}

TEST(Generators, RandomGraphDeterministic) {
  Database db1, db2;
  MakeRandomGraph(&db1, "e", "v", 10, 30, 99);
  MakeRandomGraph(&db2, "e", "v", 10, 30, 99);
  EXPECT_EQ(db1.Find("e")->DebugString(db1.symbols()),
            db2.Find("e")->DebugString(db2.symbols()));
  EXPECT_LE(db1.Find("e")->size(), 30u);
  EXPECT_GT(db1.Find("e")->size(), 10u);
}

TEST(Generators, CrossProduct) {
  Database db;
  MakeCrossProduct(&db, "t0", "c", 3, 4);
  EXPECT_EQ(db.Find("t0")->size(), 64u);
  Database db1;
  MakeCrossProduct(&db1, "t0", "c", 1, 5);
  EXPECT_EQ(db1.Find("t0")->size(), 5u);
  Database db2;
  MakeCrossProduct(&db2, "t0", "c", 2, 1);
  EXPECT_EQ(db2.Find("t0")->size(), 1u);
}

TEST(Generators, NodeName) {
  EXPECT_EQ(NodeName("a", 0), "a0");
  EXPECT_EQ(NodeName("node_", 17), "node_17");
}

TEST(Workloads, ProgramsAreSafeAndAnalyzable) {
  for (const Program& p :
       {Example11Program(), Example12Program(), Example24Program(),
        SpkProgram(3, 4), TransitiveClosureProgram(),
        SameGenerationProgram()}) {
    EXPECT_TRUE(ProgramInfo::Analyze(p).ok()) << p.ToString();
  }
}

TEST(Workloads, Example11DataShape) {
  Database db;
  MakeExample11Data(&db, 6);
  EXPECT_EQ(db.Find("friend")->size(), 5u);
  EXPECT_EQ(db.Find("idol")->size(), 5u);
  EXPECT_EQ(db.Find("perfectFor")->size(), 1u);
}

TEST(Workloads, Example12DataShape) {
  Database db;
  MakeExample12Data(&db, 6);
  EXPECT_EQ(db.Find("friend")->size(), 5u);
  EXPECT_EQ(db.Find("cheaper")->size(), 5u);
  EXPECT_EQ(db.Find("perfectFor")->size(), 1u);
}

TEST(Workloads, SpkProgramShape) {
  Program p = SpkProgram(4, 3);
  EXPECT_EQ(p.rules.size(), 5u);  // 4 recursive + exit
  EXPECT_EQ(p.rules[0].head.arity(), 3u);
  EXPECT_EQ(p.rules[0].body.size(), 2u);
  Program p1 = SpkProgram(1, 1);
  EXPECT_EQ(p1.rules.size(), 2u);
  EXPECT_EQ(p1.rules[0].head.arity(), 1u);
}

TEST(Workloads, Lemma42DataShape) {
  Database db;
  MakeLemma42Data(&db, 3, 2, 5);
  EXPECT_EQ(db.Find("a1")->size(), 4u);
  EXPECT_EQ(db.Find("a2")->size(), 0u);
  EXPECT_EQ(db.Find("a3")->size(), 0u);
  EXPECT_EQ(db.Find("t0")->size(), 25u);
}

TEST(Workloads, Lemma43DataShape) {
  Database db;
  MakeLemma43Data(&db, 3, 2, 5);
  EXPECT_EQ(db.Find("a1")->size(), 4u);
  EXPECT_EQ(db.Find("a2")->size(), 4u);
  EXPECT_EQ(db.Find("a3")->size(), 4u);
  EXPECT_EQ(db.Find("t0")->size(), 1u);
}

TEST(Workloads, SameGenerationDataShape) {
  Database db;
  MakeSameGenerationData(&db, 2, 3);
  EXPECT_EQ(db.Find("down")->size(), 14u);
  EXPECT_EQ(db.Find("up")->size(), 14u);
  EXPECT_EQ(db.Find("flat")->size(), 2u);  // (s1,s2), (s2,s1)
}

TEST(Workloads, FirstColumnQuery) {
  Atom q = FirstColumnQuery("t", 3, "c0");
  EXPECT_EQ(q.ToString(), "t(c0, Y1, Y2)");
}

}  // namespace
}  // namespace seprec
