// Tests for AnalyzeSeparable: Definition 2.4, one condition at a time.
#include "separable/detection.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "gen/workloads.h"

namespace seprec {
namespace {

TEST(Detection, Example11IsSeparable) {
  // Example 2.3: one equivalence class {column 0}; column 1 persistent.
  auto sep = AnalyzeSeparable(Example11Program(), "buys");
  ASSERT_TRUE(sep.ok()) << sep.status().ToString();
  ASSERT_EQ(sep->classes.size(), 1u);
  EXPECT_EQ(sep->classes[0].positions, (std::vector<uint32_t>{0}));
  EXPECT_EQ(sep->classes[0].rule_indices, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(sep->persistent_positions, (std::vector<uint32_t>{1}));
}

TEST(Detection, Example12IsSeparable) {
  // Example 2.3: classes {0} (friend rule) and {1} (cheaper rule), no
  // persistent columns.
  auto sep = AnalyzeSeparable(Example12Program(), "buys");
  ASSERT_TRUE(sep.ok()) << sep.status().ToString();
  ASSERT_EQ(sep->classes.size(), 2u);
  EXPECT_EQ(sep->classes[0].positions, (std::vector<uint32_t>{0}));
  EXPECT_EQ(sep->classes[1].positions, (std::vector<uint32_t>{1}));
  EXPECT_TRUE(sep->persistent_positions.empty());
  EXPECT_EQ(sep->class_of_rule, (std::vector<size_t>{0, 1}));
}

TEST(Detection, Example24IsSeparable) {
  // Classes {0,1} and {2}.
  auto sep = AnalyzeSeparable(Example24Program(), "t");
  ASSERT_TRUE(sep.ok()) << sep.status().ToString();
  ASSERT_EQ(sep->classes.size(), 2u);
  EXPECT_EQ(sep->classes[0].positions, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(sep->classes[1].positions, (std::vector<uint32_t>{2}));
  EXPECT_TRUE(sep->persistent_positions.empty());
}

TEST(Detection, TransitiveClosureIsSeparable) {
  auto sep = AnalyzeSeparable(TransitiveClosureProgram(), "tc");
  ASSERT_TRUE(sep.ok());
  ASSERT_EQ(sep->classes.size(), 1u);
  EXPECT_EQ(sep->classes[0].positions, (std::vector<uint32_t>{0}));
  EXPECT_EQ(sep->persistent_positions, (std::vector<uint32_t>{1}));
}

TEST(Detection, Condition1ShiftingVariables) {
  // Y shifts from position 1 (head) to position 0 (body).
  Program p = ParseProgramOrDie(
      "t(X, Y) :- a(X, W) & t(Y, W).\n"
      "t(X, Y) :- t0(X, Y).");
  auto sep = AnalyzeSeparable(p, "t");
  ASSERT_FALSE(sep.ok());
  EXPECT_NE(sep.status().message().find("condition 1"), std::string::npos)
      << sep.status().ToString();
}

TEST(Detection, Condition2HeadBodyMismatch) {
  // Head position 0 shares X with `a`, but the body instance's position 0
  // variable W also appears in `a`... choose a case where t^h != t^b:
  // a touches head column 0 (X) and body column 1 (persistent Y is NOT
  // used; instead a second variable of the body instance).
  Program p = ParseProgramOrDie(
      "t(X, Y) :- a(X, Z) & t(W, Z).\n"
      "t(X, Y) :- t0(X, Y).");
  // Here head var Y never appears in the body: the rule is unsafe, caught
  // earlier. Use a safe variant: body instance var W appears only in t,
  // head position 1 (Y) passes through, and `a` touches head column 0 but
  // NOT the body instance's column 0.
  Program p2 = ParseProgramOrDie(
      "t(X, Y) :- a(X, Y) & t(X, W).\n"
      "t(X, Y) :- t0(X, Y).");
  // t^h = {0, 1} (X and Y in `a`); t^b = {0} (X in `a`; W not).
  auto sep = AnalyzeSeparable(p2, "t");
  ASSERT_FALSE(sep.ok());
  EXPECT_NE(sep.status().message().find("condition 2"), std::string::npos)
      << sep.status().ToString();
  (void)p;
}

TEST(Detection, Condition3OverlappingClasses) {
  // Rule 1 binds {0,1}, rule 2 binds {1,2}: overlapping but not equal.
  Program p = ParseProgramOrDie(
      "t(X, Y, Z) :- a(X, Y, U, V) & t(U, V, Z).\n"
      "t(X, Y, Z) :- b(Y, Z, U, V) & t(X, U, V).\n"
      "t(X, Y, Z) :- t0(X, Y, Z).");
  auto sep = AnalyzeSeparable(p, "t");
  ASSERT_FALSE(sep.ok());
  EXPECT_NE(sep.status().message().find("condition 3"), std::string::npos)
      << sep.status().ToString();
}

TEST(Detection, Condition4DisconnectedBody) {
  // Removing t leaves a(X, W) and b(Z, Y): two components (the paper's
  // Section 5 example).
  Program p = ParseProgramOrDie(
      "t(X, Y) :- a(X, W) & t(W, Z) & b(Z, Y).\n"
      "t(X, Y) :- t0(X, Y).");
  auto sep = AnalyzeSeparable(p, "t");
  ASSERT_FALSE(sep.ok());
  EXPECT_NE(sep.status().message().find("condition 4"), std::string::npos)
      << sep.status().ToString();
}

TEST(Detection, SameGenerationNotSeparable) {
  EXPECT_FALSE(IsSeparable(SameGenerationProgram(), "sg"));
}

TEST(Detection, NonLinearRejected) {
  Program p = ParseProgramOrDie(
      "t(X, Y) :- t(X, W) & t(W, Y).\n"
      "t(X, Y) :- e(X, Y).");
  EXPECT_FALSE(IsSeparable(p, "t"));
}

TEST(Detection, NoExitRuleRejected) {
  Program p = ParseProgramOrDie("t(X, Y) :- a(X, W) & t(W, Y).");
  auto sep = AnalyzeSeparable(p, "t");
  ASSERT_FALSE(sep.ok());
  EXPECT_NE(sep.status().message().find("exit"), std::string::npos);
}

TEST(Detection, NotRecursiveRejected) {
  Program p = ParseProgramOrDie("t(X, Y) :- e(X, Y).");
  EXPECT_FALSE(IsSeparable(p, "t"));
}

TEST(Detection, MutualRecursionRejected) {
  Program p = ParseProgramOrDie(
      "t(X) :- a(X, W) & s(W).\n"
      "s(X) :- b(X, W) & t(W).\n"
      "t(X) :- t0(X).");
  EXPECT_FALSE(IsSeparable(p, "t"));
}

TEST(Detection, ConstantInRecursiveAtomRejected) {
  Program p = ParseProgramOrDie(
      "t(X, Y) :- a(X, W) & t(W, fixed).\n"
      "t(X, Y) :- t0(X, Y).");
  EXPECT_FALSE(IsSeparable(p, "t"));
}

TEST(Detection, RepeatedVarInRecursiveAtomRejected) {
  Program p = ParseProgramOrDie(
      "t(X, Y) :- a(X, W) & t(W, W).\n"
      "t(X, Y) :- t0(X, Y).");
  EXPECT_FALSE(IsSeparable(p, "t"));
}

TEST(Detection, TautologicalRuleIgnored) {
  Program base = Example11Program();
  base.rules.push_back(ParseProgramOrDie("buys(X, Y) :- buys(X, Y).").rules[0]);
  auto sep = AnalyzeSeparable(base, "buys");
  ASSERT_TRUE(sep.ok()) << sep.status().ToString();
  EXPECT_EQ(sep->recursion.recursive_rules.size(), 2u);
}

TEST(Detection, ThreeClassArityFour) {
  Program p = ParseProgramOrDie(
      "t(A, B, C, D) :- f(A, W) & t(W, B, C, D).\n"
      "t(A, B, C, D) :- g(B, W) & t(A, W, C, D).\n"
      "t(A, B, C, D) :- h(C, W) & t(A, B, W, D).\n"
      "t(A, B, C, D) :- t0(A, B, C, D).");
  auto sep = AnalyzeSeparable(p, "t");
  ASSERT_TRUE(sep.ok()) << sep.status().ToString();
  EXPECT_EQ(sep->classes.size(), 3u);
  EXPECT_EQ(sep->persistent_positions, (std::vector<uint32_t>{3}));
}

TEST(Detection, MultiAtomConnectedBodyAccepted) {
  // Nonrecursive part a(X, U), c(U, W): one connected component touching
  // only column 0.
  Program p = ParseProgramOrDie(
      "t(X, Y) :- a(X, U) & c(U, W) & t(W, Y).\n"
      "t(X, Y) :- t0(X, Y).");
  auto sep = AnalyzeSeparable(p, "t");
  ASSERT_TRUE(sep.ok()) << sep.status().ToString();
  EXPECT_EQ(sep->classes[0].positions, (std::vector<uint32_t>{0}));
}

TEST(Detection, BuiltinLiteralsParticipate) {
  Program p = ParseProgramOrDie(
      "t(X, Y) :- a(X, U) & W = U & t(W, Y).\n"
      "t(X, Y) :- t0(X, Y).");
  auto sep = AnalyzeSeparable(p, "t");
  ASSERT_TRUE(sep.ok()) << sep.status().ToString();
}

TEST(Detection, SpkFamilySeparableForAllPK) {
  for (size_t p = 1; p <= 4; ++p) {
    for (size_t k = 1; k <= 4; ++k) {
      Program program = SpkProgram(p, k);
      auto sep = AnalyzeSeparable(program, "t");
      ASSERT_TRUE(sep.ok())
          << "p=" << p << " k=" << k << ": " << sep.status().ToString();
      EXPECT_EQ(sep->classes.size(), 1u);
      EXPECT_EQ(sep->classes[0].rule_indices.size(), p);
      EXPECT_EQ(sep->persistent_positions.size(), k - 1);
    }
  }
}

TEST(Detection, RemoveClassMakesColumnsPersistent) {
  auto sep = AnalyzeSeparable(Example12Program(), "buys");
  ASSERT_TRUE(sep.ok());
  SeparableRecursion part = RemoveClass(*sep, 0);
  ASSERT_EQ(part.classes.size(), 1u);
  EXPECT_EQ(part.classes[0].positions, (std::vector<uint32_t>{1}));
  EXPECT_EQ(part.persistent_positions, (std::vector<uint32_t>{0}));
  EXPECT_EQ(part.recursion.recursive_rules.size(), 1u);
}

TEST(Detection, DescribeSeparableMentionsClasses) {
  auto sep = AnalyzeSeparable(Example12Program(), "buys");
  ASSERT_TRUE(sep.ok());
  std::string text = DescribeSeparable(*sep);
  EXPECT_NE(text.find("class e1"), std::string::npos);
  EXPECT_NE(text.find("class e2"), std::string::npos);
  EXPECT_NE(text.find("persistent columns"), std::string::npos);
}

}  // namespace
}  // namespace seprec
