#include "datalog/expand.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datalog/parser.h"
#include "gen/workloads.h"

namespace seprec {
namespace {

std::vector<std::string> Strings(const std::vector<ExpansionString>& exp) {
  std::vector<std::string> out;
  for (const ExpansionString& s : exp) out.push_back(s.ToString());
  return out;
}

// Example 2.1: the expansion of Example 1.1 begins
//   p(X, Y), f(X, W0)p(W0, Y), i(X, W0)p(W0, Y), f(X, W0)f(W0, W1)p(W1, Y), ...
TEST(Expand, Example21Prefix) {
  Program p = ParseProgramOrDie(
      "t(X, Y) :- f(X, W) & t(W, Y).\n"
      "t(X, Y) :- i(X, W) & t(W, Y).\n"
      "t(X, Y) :- p(X, Y).");
  auto exp = Expand(p, ParseAtomOrDie("t(X, Y)"), 2);
  ASSERT_TRUE(exp.ok()) << exp.status().ToString();
  std::vector<std::string> strings = Strings(*exp);
  ASSERT_EQ(strings.size(), 1u + 2u + 4u);
  EXPECT_EQ(strings[0], "p(X, Y)");
  EXPECT_EQ(strings[1], "f(X, W0)p(W0, Y)");
  EXPECT_EQ(strings[2], "i(X, W0)p(W0, Y)");
  EXPECT_EQ(strings[3], "f(X, W0)f(W0, W1)p(W1, Y)");
  EXPECT_EQ(strings[4], "f(X, W0)i(W0, W1)p(W1, Y)");
  EXPECT_EQ(strings[5], "i(X, W0)f(W0, W1)p(W1, Y)");
  EXPECT_EQ(strings[6], "i(X, W0)i(W0, W1)p(W1, Y)");
}

TEST(Expand, DerivationsRecorded) {
  Program p = Example11Program();
  auto exp = Expand(p, ParseAtomOrDie("buys(X, Y)"), 2);
  ASSERT_TRUE(exp.ok());
  EXPECT_EQ((*exp)[0].derivation, (std::vector<size_t>{}));
  EXPECT_EQ((*exp)[3].derivation, (std::vector<size_t>{0, 0}));
  EXPECT_EQ((*exp)[4].derivation, (std::vector<size_t>{0, 1}));
}

TEST(Expand, ConstantsFlowThrough) {
  Program p = Example11Program();
  auto exp = Expand(p, ParseAtomOrDie("buys(tom, Y)"), 1);
  ASSERT_TRUE(exp.ok());
  EXPECT_EQ((*exp)[0].ToString(), "perfectFor(tom, Y)");
  EXPECT_EQ((*exp)[1].ToString(), "friend(tom, W0)perfectFor(W0, Y)");
  EXPECT_EQ((*exp)[2].ToString(), "idol(tom, W0)perfectFor(W0, Y)");
}

TEST(Expand, MultipleExitRules) {
  Program p = ParseProgramOrDie(
      "t(X) :- e(X, W) & t(W).\n"
      "t(X) :- base1(X).\n"
      "t(X) :- base2(X).");
  auto exp = Expand(p, ParseAtomOrDie("t(X)"), 1);
  ASSERT_TRUE(exp.ok());
  ASSERT_EQ(exp->size(), 4u);  // 2 exits at depth 0, 2 at depth 1
  EXPECT_EQ((*exp)[0].ToString(), "base1(X)");
  EXPECT_EQ((*exp)[1].ToString(), "base2(X)");
}

TEST(Expand, RejectsNonLinear) {
  Program p = ParseProgramOrDie(
      "t(X, Y) :- t(X, W), t(W, Y).\nt(X, Y) :- e(X, Y).");
  EXPECT_FALSE(Expand(p, ParseAtomOrDie("t(X, Y)"), 1).ok());
}

TEST(Expand, RejectsUnrectifiedHead) {
  Program p = ParseProgramOrDie("t(X, X) :- e(X).");
  EXPECT_FALSE(Expand(p, ParseAtomOrDie("t(A, B)"), 1).ok());
}

TEST(Expand, RejectsBuiltins) {
  Program p = ParseProgramOrDie("t(X) :- e(X), X != a.");
  EXPECT_FALSE(Expand(p, ParseAtomOrDie("t(X)"), 1).ok());
}

TEST(Expand, UnknownPredicate) {
  Program p = ParseProgramOrDie("t(X) :- e(X).");
  EXPECT_FALSE(Expand(p, ParseAtomOrDie("zzz(X)"), 1).ok());
}

TEST(Expand, GrowthRateMatchesRuleCount) {
  // p recursive rules -> p^d strings with exactly d applications.
  Program p = ParseProgramOrDie(
      "t(X) :- a1(X, W) & t(W).\n"
      "t(X) :- a2(X, W) & t(W).\n"
      "t(X) :- a3(X, W) & t(W).\n"
      "t(X) :- t0(X).");
  auto exp = Expand(p, ParseAtomOrDie("t(X)"), 3);
  ASSERT_TRUE(exp.ok());
  EXPECT_EQ(exp->size(), 1u + 3u + 9u + 27u);
}

}  // namespace
}  // namespace seprec
