#include "magic/supplementary.h"

#include <gtest/gtest.h>

#include "core/query.h"
#include "datalog/parser.h"
#include "gen/generators.h"
#include "gen/workloads.h"

namespace seprec {
namespace {

Answer ReferenceAnswer(const Program& program, const Atom& query,
                       Database* db) {
  Status status = EvaluateSemiNaive(program, db);
  SEPREC_CHECK(status.ok());
  const Relation* rel = db->Find(query.predicate);
  SEPREC_CHECK(rel != nullptr);
  return SelectMatching(*rel, query, db->symbols());
}

TEST(SupplementaryMagic, RewriteStructure) {
  auto rewrite = SupplementaryMagicTransform(TransitiveClosureProgram(),
                                             ParseAtomOrDie("tc(a, Y)"));
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  const std::string text = rewrite->program.ToString();
  EXPECT_NE(text.find("magic_tc_bf(a)."), std::string::npos) << text;
  EXPECT_NE(text.find("sup_tc_"), std::string::npos) << text;
  // Each rule chains through supplementary predicates; the recursive
  // occurrence's magic rule reads a supplementary, not the raw prefix.
  EXPECT_NE(text.find("magic_tc_bf(W) :- sup_tc_"), std::string::npos)
      << text;
}

TEST(SupplementaryMagic, AgreesOnExamples) {
  struct Case {
    Program program;
    Atom query;
    std::function<void(Database*)> load;
  };
  std::vector<Case> cases;
  cases.push_back({Example11Program(), ParseAtomOrDie("buys(a0, Y)"),
                   [](Database* db) { MakeExample11Data(db, 9); }});
  cases.push_back({Example12Program(), ParseAtomOrDie("buys(a0, Y)"),
                   [](Database* db) { MakeExample12Data(db, 9); }});
  cases.push_back({SameGenerationProgram(), ParseAtomOrDie("sg(s5, Y)"),
                   [](Database* db) { MakeSameGenerationData(db, 2, 4); }});
  cases.push_back({TransitiveClosureProgram(), ParseAtomOrDie("tc(v2, Y)"),
                   [](Database* db) { MakeCycle(db, "edge", "v", 7); }});
  for (size_t i = 0; i < cases.size(); ++i) {
    Database db1, db2;
    cases[i].load(&db1);
    cases[i].load(&db2);
    auto run = EvaluateWithSupplementaryMagic(cases[i].program,
                                              cases[i].query, &db1);
    ASSERT_TRUE(run.ok()) << "case " << i << ": "
                          << run.status().ToString();
    Answer expected = ReferenceAnswer(cases[i].program, cases[i].query, &db2);
    EXPECT_EQ(run->answer, expected) << "case " << i;
  }
}

TEST(SupplementaryMagic, AgreesWithPlainMagicOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Database db1, db2;
    MakeRandomGraph(&db1, "edge", "v", 25, 50, seed);
    MakeRandomGraph(&db2, "edge", "v", 25, 50, seed);
    Atom query = ParseAtomOrDie("tc(v1, Y)");
    auto sup = EvaluateWithSupplementaryMagic(TransitiveClosureProgram(),
                                              query, &db1);
    ASSERT_TRUE(sup.ok());
    auto plain = EvaluateWithMagic(TransitiveClosureProgram(), query, &db2);
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(sup->answer, plain->answer) << "seed " << seed;
  }
}

TEST(SupplementaryMagic, BuiltinsInBodies) {
  Program p = ParseProgramOrDie(
      "n(0).\n"
      "n(Y) :- n(X), X < 10, Y is X + 1.\n"
      "even(X) :- n(X), Z is X mod 2, Z = 0.");
  Database db1, db2;
  Atom query = ParseAtomOrDie("even(4)");
  auto run = EvaluateWithSupplementaryMagic(p, query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer, ReferenceAnswer(p, query, &db2));
  EXPECT_EQ(run->answer.size(), 1u);
}

TEST(SupplementaryMagic, SharesPrefixesBetweenMagicAndModifiedRules) {
  // On same-generation the up(X,U) prefix feeds both the magic rule for
  // the recursive occurrence and the modified rule: with supplementary
  // predicates it is evaluated once. We check the sup relation exists and
  // totals stay at or below the plain rewrite's.
  Database db1, db2;
  MakeSameGenerationData(&db1, 3, 5);
  MakeSameGenerationData(&db2, 3, 5);
  Atom query = ParseAtomOrDie("sg(s10, Y)");
  auto sup = EvaluateWithSupplementaryMagic(SameGenerationProgram(), query,
                                            &db1);
  auto plain = EvaluateWithMagic(SameGenerationProgram(), query, &db2);
  ASSERT_TRUE(sup.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(sup->answer, plain->answer);
  bool has_sup_relation = false;
  for (const auto& [name, size] : sup->stats.relation_sizes) {
    if (name.rfind("sup_", 0) == 0) has_sup_relation = true;
  }
  EXPECT_TRUE(has_sup_relation);
}

TEST(SupplementaryMagic, RejectsEdbQuery) {
  EXPECT_FALSE(SupplementaryMagicTransform(Example11Program(),
                                           ParseAtomOrDie("friend(a, B)"))
                   .ok());
}

}  // namespace
}  // namespace seprec
