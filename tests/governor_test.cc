// Tests for the execution governor: deadlines, cooperative cancellation,
// tuple/iteration/byte budgets, checkpoint rollback, and the strategy
// fallback chain in QueryProcessor::Answer.
#include "core/governor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "core/compiler.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "storage/database.h"
#include "util/failpoint.h"

namespace seprec {
namespace {

std::vector<std::string> SortedAnswers(const QueryResult& result,
                                       const Database& db) {
  std::vector<std::string> strings = result.answer.ToStrings(db.symbols());
  std::sort(strings.begin(), strings.end());
  return strings;
}

// ---------------------------------------------------------------------------
// ExecutionContext unit tests.

TEST(ExecutionContext, UnlimitedNeverStops) {
  ExecutionContext ctx{ExecutionLimits{}};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(ctx.NoteIterationAndCheck());
    ctx.NoteTuples(1000);
    EXPECT_FALSE(ctx.ShouldStop());
  }
  EXPECT_FALSE(ctx.stopped());
  EXPECT_EQ(ctx.cause(), StopCause::kNone);
}

TEST(ExecutionContext, IterationBudgetLatches) {
  ExecutionLimits limits;
  limits.max_iterations = 3;
  ExecutionContext ctx(limits);
  EXPECT_FALSE(ctx.NoteIterationAndCheck());  // iteration 1
  EXPECT_FALSE(ctx.NoteIterationAndCheck());  // iteration 2
  EXPECT_FALSE(ctx.NoteIterationAndCheck());  // iteration 3 (== budget: ok)
  EXPECT_TRUE(ctx.NoteIterationAndCheck());   // iteration 4 trips
  EXPECT_TRUE(ctx.stopped());
  EXPECT_EQ(ctx.cause(), StopCause::kIterations);
  // Latched: every subsequent poll reports stop.
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.ToStatus().code(), StatusCode::kResourceExhausted);
}

TEST(ExecutionContext, TupleBudget) {
  ExecutionLimits limits;
  limits.max_tuples = 10;
  ExecutionContext ctx(limits);
  ctx.NoteTuples(9);
  EXPECT_FALSE(ctx.ShouldStop());
  ctx.NoteTuples(5);
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.cause(), StopCause::kTuples);
  EXPECT_EQ(ctx.tuples(), 14u);
}

TEST(ExecutionContext, ImmediateDeadline) {
  ExecutionLimits limits;
  limits.timeout_ms = 0;
  ExecutionContext ctx(limits);
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.cause(), StopCause::kDeadline);
  EXPECT_EQ(ctx.ToStatus().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(ctx.message().find("deadline"), std::string::npos);
}

TEST(ExecutionContext, CancellationFromAnotherThread) {
  CancellationToken token;
  ExecutionContext ctx(ExecutionLimits{}, &token);
  EXPECT_FALSE(ctx.ShouldStop());
  std::thread canceller([&token] { token.Cancel(); });
  canceller.join();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.cause(), StopCause::kCancelled);
  EXPECT_EQ(ctx.ToStatus().code(), StatusCode::kCancelled);
}

TEST(ExecutionContext, ByteBudgetTracksAccountant) {
  Database db;
  Relation* r = *db.CreateRelation("r", 2);
  ExecutionLimits limits;
  limits.max_bytes = 200;
  ExecutionContext ctx(limits);
  ctx.TrackMemory(&db.accountant());
  EXPECT_FALSE(ctx.ShouldStop());
  // Each row costs arity * sizeof(Value) + overhead, well over 50 bytes;
  // four rows blow a 200 byte budget.
  for (int64_t i = 0; i < 4; ++i) {
    r->Insert({Value::Int(i), Value::Int(i + 1)});
  }
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.cause(), StopCause::kBytes);
  EXPECT_GT(ctx.BytesUsed(), 200u);
}

// ---------------------------------------------------------------------------
// MemoryAccountant unit tests.

TEST(MemoryAccountant, ChargeAndRelease) {
  MemoryAccountant accountant;
  EXPECT_EQ(accountant.bytes(), 0u);
  accountant.Charge(100);
  accountant.Charge(20);
  EXPECT_EQ(accountant.bytes(), 120u);
  accountant.Release(50);
  EXPECT_EQ(accountant.bytes(), 70u);
  // Release clamps at zero rather than wrapping.
  accountant.Release(1000);
  EXPECT_EQ(accountant.bytes(), 0u);
}

TEST(MemoryAccountant, RelationInsertChargesOnlyNewRows) {
  Database db;
  Relation* r = *db.CreateRelation("r", 2);
  const size_t before = db.accountant().bytes();
  r->Insert({Value::Int(1), Value::Int(2)});
  const size_t after_one = db.accountant().bytes();
  EXPECT_GT(after_one, before);
  // Duplicate insert does not charge again.
  r->Insert({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(db.accountant().bytes(), after_one);
  r->Insert({Value::Int(3), Value::Int(4)});
  EXPECT_EQ(db.accountant().bytes(), after_one + (after_one - before));
}

TEST(MemoryAccountant, InsertAllChargesOnlyRowsNewToTarget) {
  Database db;
  Relation* a = *db.CreateRelation("a", 2);
  Relation* b = *db.CreateRelation("b", 2);
  a->Insert({Value::Int(1), Value::Int(2)});
  a->Insert({Value::Int(3), Value::Int(4)});
  b->Insert({Value::Int(1), Value::Int(2)});  // overlaps a
  const size_t before = db.accountant().bytes();
  // Only (3, 4) is new in b; the overlap must not be charged twice.
  EXPECT_EQ(b->InsertAll(*a), 1u);
  const size_t per_row = 2 * sizeof(Value) + MemoryAccountant::kRowOverheadBytes;
  EXPECT_EQ(db.accountant().bytes(), before + per_row);
}

TEST(MemoryAccountant, ConcurrentChargeAndReleaseBalance) {
  // Pool workers charge staged rows from many threads at once; the total
  // must be exact, not merely approximate, or max_bytes trips drift.
  MemoryAccountant accountant;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&accountant] {
      for (int i = 0; i < kPerThread; ++i) {
        accountant.Charge(3);
        accountant.Release(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(accountant.bytes(),
            static_cast<size_t>(kThreads) * kPerThread * 2);
}

TEST(MemoryAccountant, DroppingRelationReleasesBytes) {
  Database db;
  Relation* r = *db.CreateRelation("r", 2);
  const size_t before = db.accountant().bytes();
  r->Insert({Value::Int(1), Value::Int(2)});
  ASSERT_GT(db.accountant().bytes(), before);
  db.Drop("r");
  EXPECT_EQ(db.accountant().bytes(), before);
}

// ---------------------------------------------------------------------------
// DatabaseCheckpoint unit tests.

TEST(DatabaseCheckpoint, RollbackDropsNewAndTruncatesGrown) {
  Database db;
  Relation* r = *db.CreateRelation("r", 1);
  r->Insert({Value::Int(1)});
  r->Insert({Value::Int(2)});
  {
    DatabaseCheckpoint checkpoint(&db);
    r->Insert({Value::Int(3)});
    Relation* s = *db.CreateRelation("s", 1);
    s->Insert({Value::Int(9)});
    // Destructor rolls back.
  }
  EXPECT_EQ(db.Find("r")->size(), 2u);
  const std::vector<Value> three = {Value::Int(3)};
  EXPECT_FALSE(db.Find("r")->Contains(Row(three.data(), 1)));
  EXPECT_EQ(db.Find("s"), nullptr);
}

TEST(DatabaseCheckpoint, CommitKeepsChanges) {
  Database db;
  Relation* r = *db.CreateRelation("r", 1);
  r->Insert({Value::Int(1)});
  {
    DatabaseCheckpoint checkpoint(&db);
    r->Insert({Value::Int(2)});
    ASSERT_TRUE(db.CreateRelation("s", 1).ok());
    checkpoint.Commit();
  }
  EXPECT_EQ(db.Find("r")->size(), 2u);
  EXPECT_NE(db.Find("s"), nullptr);
}

TEST(DatabaseCheckpoint, RollbackAcrossEraseRowsIsFailedPrecondition) {
  // Regression: TruncateToSlots cannot resurrect tombstones, so a rollback
  // spanning an EraseRows (the DRed deletion path) would silently lose the
  // erased-then-kept prefix rows. It must refuse up front instead — and
  // leave the database untouched, including relations created after the
  // checkpoint.
  Database db;
  Relation* r = *db.CreateRelation("r", 1);
  r->Insert({Value::Int(1)});
  r->Insert({Value::Int(2)});
  DatabaseCheckpoint checkpoint(&db);
  r->Insert({Value::Int(3)});
  ASSERT_TRUE(db.CreateRelation("s", 1).ok());

  Relation victims("victims", 1);
  victims.Insert({Value::Int(1)});
  ASSERT_EQ(r->EraseRows(victims), 1u);

  Status status = checkpoint.Rollback();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("EraseRows"), std::string::npos)
      << status.ToString();
  // Nothing was truncated or dropped.
  EXPECT_EQ(db.Find("r")->size(), 2u);  // {2, 3}
  const std::vector<Value> three = {Value::Int(3)};
  EXPECT_TRUE(db.Find("r")->Contains(Row(three.data(), 1)));
  EXPECT_NE(db.Find("s"), nullptr);
  // A second Rollback on the now-inactive checkpoint is the usual no-op
  // (and the destructor must not re-attempt and abort).
  EXPECT_TRUE(checkpoint.Rollback().ok());
}

TEST(DatabaseCheckpoint, RolledBackRelationStillQueryable) {
  // After a truncating rollback the hash index must stay consistent:
  // previously present rows are found, rolled-back rows can be re-inserted.
  Database db;
  Relation* r = *db.CreateRelation("r", 1);
  r->Insert({Value::Int(1)});
  {
    DatabaseCheckpoint checkpoint(&db);
    for (int64_t i = 2; i < 50; ++i) r->Insert({Value::Int(i)});
  }
  ASSERT_EQ(r->size(), 1u);
  const std::vector<Value> one = {Value::Int(1)};
  EXPECT_TRUE(r->Contains(Row(one.data(), 1)));
  EXPECT_TRUE(r->Insert({Value::Int(2)}));
  EXPECT_EQ(r->size(), 2u);
}

// ---------------------------------------------------------------------------
// End-to-end: budgets through the QueryProcessor (partial contract).

TEST(Governor, DeadlineYieldsPartialResult) {
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeChain(&db, "edge", "v", 120);
  FixpointOptions options;
  options.limits.timeout_ms = 0;  // already expired
  auto result =
      qp->Answer(ParseAtomOrDie("tc(v0, Y)"), &db, Strategy::kAuto, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->partial);
  ASSERT_TRUE(result->degradation.has_value());
  EXPECT_EQ(result->degradation->cause, StopCause::kDeadline);
  EXPECT_LT(result->answer.size(), 119u);
  // Rollback: no IDB or scratch relations linger.
  EXPECT_EQ(db.RelationNames(), std::vector<std::string>{"edge"});
}

TEST(Governor, ByteBudgetYieldsPartialAndRollsBack) {
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeChain(&db, "edge", "v", 150);
  const size_t baseline = db.accountant().bytes();
  FixpointOptions options;
  options.limits.max_bytes = baseline + 4096;
  auto result = qp->Answer(ParseAtomOrDie("tc(v0, Y)"), &db,
                           Strategy::kSemiNaive, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->partial);
  ASSERT_TRUE(result->degradation.has_value());
  EXPECT_EQ(result->degradation->cause, StopCause::kBytes);
  EXPECT_EQ(db.Find("tc"), nullptr);
  // Rollback returns the accounted footprint to its pre-query level.
  EXPECT_EQ(db.accountant().bytes(), baseline);
  // The same query without a budget completes and commits.
  auto full = qp->Answer(ParseAtomOrDie("tc(v0, Y)"), &db,
                         Strategy::kSemiNaive);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->partial);
  EXPECT_EQ(full->answer.size(), 149u);
  EXPECT_NE(db.Find("tc"), nullptr);
  // Sound degradation: the truncated answer is a subset of the full one.
  std::vector<std::string> partial_strings = SortedAnswers(*result, db);
  std::vector<std::string> full_strings = SortedAnswers(*full, db);
  EXPECT_TRUE(std::includes(full_strings.begin(), full_strings.end(),
                            partial_strings.begin(), partial_strings.end()));
}

TEST(Governor, PreCancelledTokenYieldsPartialResult) {
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeChain(&db, "edge", "v", 60);
  CancellationToken token;
  token.Cancel();
  FixpointOptions options;
  options.cancel = &token;
  auto result =
      qp->Answer(ParseAtomOrDie("tc(v0, Y)"), &db, Strategy::kAuto, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->partial);
  ASSERT_TRUE(result->degradation.has_value());
  EXPECT_EQ(result->degradation->cause, StopCause::kCancelled);
}

TEST(Governor, ConcurrentCancellationIsSafe) {
  // A second thread cancels while the query runs. Depending on timing the
  // query either completes or returns a partial answer; either way it must
  // not crash, hang, or leave the database half-materialised.
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeChain(&db, "edge", "v", 400);
  CancellationToken token;
  FixpointOptions options;
  options.cancel = &token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.Cancel();
  });
  auto result = qp->Answer(ParseAtomOrDie("tc(v0, Y)"), &db,
                           Strategy::kSemiNaive, options);
  canceller.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  if (result->partial) {
    EXPECT_EQ(result->degradation->cause, StopCause::kCancelled);
    EXPECT_EQ(db.Find("tc"), nullptr);
  } else {
    EXPECT_EQ(result->answer.size(), 399u);
    EXPECT_NE(db.Find("tc"), nullptr);
  }
}

TEST(Governor, DirectEngineCallConvertsTripToError) {
  // Legacy calling convention: invoking an engine entry point directly
  // (FixpointOptions::context == nullptr) surfaces a tripped budget as a
  // RESOURCE_EXHAUSTED / CANCELLED error, with partials left in the db.
  Database db;
  MakeChain(&db, "edge", "v", 50);
  FixpointOptions options;
  options.limits.timeout_ms = 0;
  Status status = EvaluateSemiNaive(TransitiveClosureProgram(), &db, options);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("deadline"), std::string::npos);

  Database db2;
  MakeChain(&db2, "edge", "v", 50);
  CancellationToken token;
  token.Cancel();
  FixpointOptions cancelled;
  cancelled.cancel = &token;
  Status status2 =
      EvaluateSemiNaive(TransitiveClosureProgram(), &db2, cancelled);
  EXPECT_EQ(status2.code(), StatusCode::kCancelled);
}

TEST(Governor, BudgetAppliesToQsqrAndCounting) {
  // Every engine respects the shared budget, not just semi-naive.
  for (Strategy strategy : {Strategy::kQsqr, Strategy::kCounting}) {
    auto qp = QueryProcessor::Create(TransitiveClosureProgram());
    ASSERT_TRUE(qp.ok());
    Database db;
    MakeChain(&db, "edge", "v", 200);
    FixpointOptions options;
    options.limits.max_iterations = 3;
    auto result =
        qp->Answer(ParseAtomOrDie("tc(v0, Y)"), &db, strategy, options);
    ASSERT_TRUE(result.ok())
        << StrategyToString(strategy) << ": " << result.status().ToString();
    EXPECT_TRUE(result->partial) << StrategyToString(strategy);
    EXPECT_EQ(result->degradation->cause, StopCause::kIterations);
    EXPECT_EQ(db.RelationNames(), std::vector<std::string>{"edge"})
        << StrategyToString(strategy);
  }
}

// ---------------------------------------------------------------------------
// Strategy fallback chain.

TEST(Governor, FallbackChainReachesSemiNaive) {
  Failpoints::DisarmAll();
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeChain(&db, "edge", "v", 30);
  ScopedFailpoint fail_separable("compiler.separable");
  ScopedFailpoint fail_magic("compiler.magic");
  auto result = qp->Answer(ParseAtomOrDie("tc(v0, Y)"), &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->strategy, Strategy::kSemiNaive);
  EXPECT_FALSE(result->partial);
  EXPECT_EQ(result->answer.size(), 29u);
  EXPECT_NE(result->reason.find("fell back to"), std::string::npos)
      << result->reason;
  // One G001 note per fallback hop.
  ASSERT_EQ(result->diagnostics.size(), 2u);
  for (const Diagnostic& d : result->diagnostics) {
    EXPECT_EQ(d.code, "G001");
    EXPECT_EQ(d.severity, Severity::kNote);
  }
  // The failed attempts were rolled back before the retry.
  EXPECT_EQ(Failpoints::FireCount("compiler.separable"), 1u);
  EXPECT_EQ(Failpoints::FireCount("compiler.magic"), 1u);
}

TEST(Governor, FallbackStopsAtFirstWorkingStrategy) {
  Failpoints::DisarmAll();
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeChain(&db, "edge", "v", 30);
  ScopedFailpoint fail_separable("compiler.separable");
  auto result = qp->Answer(ParseAtomOrDie("tc(v0, Y)"), &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->strategy, Strategy::kMagic);
  EXPECT_EQ(result->answer.size(), 29u);
  ASSERT_EQ(result->diagnostics.size(), 1u);
  EXPECT_EQ(result->diagnostics[0].code, "G001");
}

TEST(Governor, ForcedStrategyDoesNotFallBack) {
  Failpoints::DisarmAll();
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeChain(&db, "edge", "v", 10);
  ScopedFailpoint fail_separable("compiler.separable");
  auto result =
      qp->Answer(ParseAtomOrDie("tc(v0, Y)"), &db, Strategy::kSeparable);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(Governor, BudgetTripsDoNotTriggerFallback) {
  // Resource exhaustion is not a strategy defect: the chain must not burn
  // the remaining (already exhausted) budget on a different engine.
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeChain(&db, "edge", "v", 100);
  FixpointOptions options;
  options.limits.max_iterations = 4;
  auto result =
      qp->Answer(ParseAtomOrDie("tc(v0, Y)"), &db, Strategy::kAuto, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->partial);
  // The first (separable) attempt was kept; no G001 fallback notes.
  EXPECT_EQ(result->strategy, Strategy::kSeparable);
  EXPECT_TRUE(result->diagnostics.empty());
}

}  // namespace
}  // namespace seprec
