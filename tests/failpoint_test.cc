// Tests for the failpoint registry and for every registered injection site.
#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/compiler.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "storage/io.h"
#include "storage/snapshot.h"

namespace seprec {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::DisarmAll(); }
  void TearDown() override { Failpoints::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Registry mechanics.

TEST_F(FailpointTest, RegistryKnowsAllSites) {
  const std::vector<std::string> expected = {
      "io.load_tsv",    "io.save_tsv",        "snapshot.load",
      "snapshot.save",  "governor.poll",      "governor.charge",
      "compiler.separable", "compiler.magic",
      "snapshot.write", "snapshot.rename",    "wal.open",
      "wal.append",     "wal.fsync",          "wal.truncate",
      "manifest.write", "manifest.rename"};
  for (const std::string& site : expected) {
    EXPECT_TRUE(Failpoints::IsRegistered(site)) << site;
  }
  EXPECT_FALSE(Failpoints::IsRegistered("no.such.site"));
  EXPECT_EQ(Failpoints::Sites().size(), expected.size());
}

TEST_F(FailpointTest, CrashActionExitsWithCrashCode) {
  FailpointSpec spec;
  spec.crash = true;
  Failpoints::Arm("wal.append", spec);
  EXPECT_EXIT((void)Failpoints::Check("wal.append"),
              ::testing::ExitedWithCode(kCrashExitCode), "");
}

TEST_F(FailpointTest, CrashActionHonoursSkip) {
  FailpointSpec spec;
  spec.crash = true;
  spec.skip = 1;
  Failpoints::Arm("wal.fsync", spec);
  EXPECT_TRUE(Failpoints::Check("wal.fsync").ok());  // skipped
  EXPECT_EXIT((void)Failpoints::Check("wal.fsync"),
              ::testing::ExitedWithCode(kCrashExitCode), "");
}

TEST_F(FailpointTest, DisarmedSitesNeverFire) {
  EXPECT_TRUE(Failpoints::Check("io.load_tsv").ok());
  EXPECT_FALSE(Failpoints::Hit("governor.poll"));
  EXPECT_EQ(Failpoints::FireCount("io.load_tsv"), 0u);
}

TEST_F(FailpointTest, ArmFireDisarm) {
  Failpoints::Arm("io.load_tsv", {});
  Status status = Failpoints::Check("io.load_tsv");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("io.load_tsv"), std::string::npos);
  EXPECT_EQ(Failpoints::FireCount("io.load_tsv"), 1u);
  Failpoints::Disarm("io.load_tsv");
  EXPECT_TRUE(Failpoints::Check("io.load_tsv").ok());
}

TEST_F(FailpointTest, SkipAndCountControlFiring) {
  FailpointSpec spec;
  spec.skip = 2;
  spec.count = 1;
  Failpoints::Arm("governor.poll", spec);
  EXPECT_FALSE(Failpoints::Hit("governor.poll"));  // evaluation 1: skipped
  EXPECT_FALSE(Failpoints::Hit("governor.poll"));  // evaluation 2: skipped
  EXPECT_TRUE(Failpoints::Hit("governor.poll"));   // evaluation 3: fires
  EXPECT_FALSE(Failpoints::Hit("governor.poll"));  // count exhausted
  EXPECT_EQ(Failpoints::FireCount("governor.poll"), 1u);
}

TEST_F(FailpointTest, CustomCodeAndMessage) {
  FailpointSpec spec;
  spec.code = StatusCode::kFailedPrecondition;
  spec.message = "disk on fire";
  Failpoints::Arm("snapshot.save", spec);
  Status status = Failpoints::Check("snapshot.save");
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(status.message(), "disk on fire");
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    ScopedFailpoint scoped("io.save_tsv");
    EXPECT_FALSE(Failpoints::Check("io.save_tsv").ok());
  }
  EXPECT_TRUE(Failpoints::Check("io.save_tsv").ok());
}

TEST_F(FailpointTest, RearmResetsCounters) {
  Failpoints::Arm("io.load_tsv", {});
  (void)Failpoints::Check("io.load_tsv");
  EXPECT_EQ(Failpoints::FireCount("io.load_tsv"), 1u);
  Failpoints::Arm("io.load_tsv", {});
  EXPECT_EQ(Failpoints::FireCount("io.load_tsv"), 0u);
}

// ---------------------------------------------------------------------------
// Every registered site, exercised through its real code path.

TEST_F(FailpointTest, SiteIoLoadTsv) {
  ScopedFailpoint scoped("io.load_tsv");
  Database db;
  std::istringstream in("a\tb\n");
  auto added = LoadRelationTsv(&db, "edge", in);
  ASSERT_FALSE(added.ok());
  EXPECT_EQ(added.status().code(), StatusCode::kInternal);
  EXPECT_NE(added.status().message().find("io.load_tsv"), std::string::npos);
  EXPECT_EQ(db.Find("edge"), nullptr);
}

TEST_F(FailpointTest, SiteIoSaveTsv) {
  Database db;
  ASSERT_TRUE(db.AddFact("edge", {"a", "b"}).ok());
  ScopedFailpoint scoped("io.save_tsv");
  std::ostringstream out;
  Status status = SaveRelationTsv(db, "edge", out);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_TRUE(out.str().empty());
}

TEST_F(FailpointTest, SiteSnapshotSave) {
  Database db;
  MakeChain(&db, "edge", "v", 3);
  ScopedFailpoint scoped("snapshot.save");
  std::ostringstream out;
  EXPECT_EQ(SaveSnapshot(db, out).code(), StatusCode::kInternal);
}

TEST_F(FailpointTest, SiteSnapshotLoad) {
  Database db;
  MakeChain(&db, "edge", "v", 3);
  std::ostringstream out;
  ASSERT_TRUE(SaveSnapshot(db, out).ok());
  ScopedFailpoint scoped("snapshot.load");
  Database restored;
  std::istringstream in(out.str());
  EXPECT_EQ(LoadSnapshot(&restored, in).code(), StatusCode::kInternal);
}

TEST_F(FailpointTest, SiteGovernorPollInjectsCancellation) {
  // governor.poll fires inside ExecutionContext::ShouldStop and behaves
  // like an external cancellation request hitting mid-fixpoint.
  ScopedFailpoint scoped("governor.poll");
  Database db;
  MakeChain(&db, "edge", "v", 20);
  Status status = EvaluateSemiNaive(TransitiveClosureProgram(), &db);
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_NE(status.message().find("injected"), std::string::npos);
}

TEST_F(FailpointTest, SiteGovernorChargeInjectsAllocationSpike) {
  // governor.charge makes one insertion look like a terabyte allocation.
  FailpointSpec spec;
  spec.count = 1;
  ScopedFailpoint scoped("governor.charge", spec);
  Database db;
  Relation* r = *db.CreateRelation("r", 1);
  r->Insert({Value::Int(1)});
  EXPECT_GE(db.accountant().bytes(), size_t{1} << 40);
}

TEST_F(FailpointTest, SiteGovernorChargeTripsByteBudget) {
  Database db;
  MakeChain(&db, "edge", "v", 20);
  // Arm after loading the EDB so the spike hits an insertion made by the
  // evaluation itself, inside the governed window.
  FailpointSpec spec;
  spec.count = 1;
  ScopedFailpoint scoped("governor.charge", spec);
  FixpointOptions options;
  options.limits.max_bytes = size_t{1} << 30;
  Status status =
      EvaluateSemiNaive(TransitiveClosureProgram(), &db, options);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("bytes"), std::string::npos);
}

TEST_F(FailpointTest, SiteCompilerSeparable) {
  ScopedFailpoint scoped("compiler.separable");
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeChain(&db, "edge", "v", 5);
  auto result =
      qp->Answer(ParseAtomOrDie("tc(v0, Y)"), &db, Strategy::kSeparable);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("compiler.separable"),
            std::string::npos);
}

TEST_F(FailpointTest, SiteCompilerMagic) {
  ScopedFailpoint scoped("compiler.magic");
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeChain(&db, "edge", "v", 5);
  auto result =
      qp->Answer(ParseAtomOrDie("tc(v0, Y)"), &db, Strategy::kMagic);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace seprec
