// Metamorphic properties: semantics-preserving program transformations
// must not change query answers, and positive programs are monotone in
// the EDB.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/compiler.h"
#include "datalog/parser.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace seprec {
namespace {

std::vector<std::string> AnswerStrings(const Program& program,
                                       const Atom& query, Strategy strategy,
                                       std::function<void(Database*)> load) {
  auto qp = QueryProcessor::Create(program);
  SEPREC_CHECK(qp.ok());
  Database db;
  load(&db);
  auto result = qp->Answer(query, &db, strategy);
  SEPREC_CHECK(result.ok());
  return result->answer.ToStrings(db.symbols());
}

void LoadExample12(Database* db) { MakeExample12Data(db, 9); }

TEST(Metamorphic, BodyPermutationPreservesAnswers) {
  Program base = Example12Program();
  Atom query = ParseAtomOrDie("buys(a0, Y)");
  auto expected = AnswerStrings(base, query, Strategy::kAuto, LoadExample12);

  Rng rng(99);
  for (int trial = 0; trial < 6; ++trial) {
    Program shuffled = base;
    for (Rule& rule : shuffled.rules) {
      for (size_t i = rule.body.size(); i > 1; --i) {
        std::swap(rule.body[i - 1], rule.body[rng.Below(i)]);
      }
    }
    for (Strategy s : {Strategy::kSeparable, Strategy::kMagic,
                       Strategy::kSemiNaive}) {
      EXPECT_EQ(AnswerStrings(shuffled, query, s, LoadExample12), expected)
          << "trial " << trial << " strategy " << StrategyToString(s);
    }
  }
}

TEST(Metamorphic, RuleDuplicationPreservesAnswers) {
  Program doubled = Example12Program();
  std::vector<Rule> copy = doubled.rules;
  for (Rule& rule : copy) doubled.rules.push_back(rule);
  Atom query = ParseAtomOrDie("buys(a0, Y)");
  EXPECT_EQ(
      AnswerStrings(doubled, query, Strategy::kAuto, LoadExample12),
      AnswerStrings(Example12Program(), query, Strategy::kAuto,
                    LoadExample12));
}

TEST(Metamorphic, IrrelevantRulesPreserveAnswers) {
  Program padded = Example12Program();
  Program extra = ParseProgramOrDie(
      "zig(X, Y) :- zag(X, W), zig(W, Y).\n"
      "zig(X, Y) :- zag(X, Y).\n"
      "unrelated(X) :- whatever(X), not blocked(X).");
  for (Rule& rule : extra.rules) padded.rules.push_back(std::move(rule));
  Atom query = ParseAtomOrDie("buys(a0, Y)");
  EXPECT_EQ(
      AnswerStrings(padded, query, Strategy::kAuto, LoadExample12),
      AnswerStrings(Example12Program(), query, Strategy::kAuto,
                    LoadExample12));
}

TEST(Metamorphic, ConsistentVariableRenamingPreservesAnswers) {
  Program renamed = Example12Program();
  for (Rule& rule : renamed.rules) {
    std::set<std::string> vars;
    CollectVars(rule, &vars);
    Substitution sub;
    int i = 0;
    for (const std::string& v : vars) {
      sub[v] = Term::Var(StrCat("Fresh", i++, v));
    }
    rule = Substitute(rule, sub);
  }
  Atom query = ParseAtomOrDie("buys(a0, Y)");
  EXPECT_EQ(
      AnswerStrings(renamed, query, Strategy::kAuto, LoadExample12),
      AnswerStrings(Example12Program(), query, Strategy::kAuto,
                    LoadExample12));
}

TEST(Metamorphic, TautologicalRulePreservesAnswers) {
  Program padded = Example12Program();
  padded.rules.push_back(
      ParseProgramOrDie("buys(X, Y) :- buys(X, Y).").rules[0]);
  Atom query = ParseAtomOrDie("buys(a0, Y)");
  for (Strategy s : {Strategy::kSeparable, Strategy::kMagic,
                     Strategy::kSemiNaive}) {
    EXPECT_EQ(AnswerStrings(padded, query, s, LoadExample12),
              AnswerStrings(Example12Program(), query, s, LoadExample12))
        << StrategyToString(s);
  }
}

TEST(Metamorphic, PositiveProgramsAreMonotone) {
  // Adding EDB tuples can only add answers.
  Atom query = ParseAtomOrDie("tc(v0, Y)");
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  Rng rng(5);
  std::vector<std::pair<size_t, size_t>> edges;
  std::set<std::string> previous;
  for (int round = 0; round < 8; ++round) {
    edges.emplace_back(rng.Below(12), rng.Below(12));
    Database db;
    Relation* rel = *db.CreateRelation("edge", 2);
    for (auto [from, to] : edges) {
      rel->Insert({db.symbols().Intern(NodeName("v", from)),
                   db.symbols().Intern(NodeName("v", to))});
    }
    auto result = qp->Answer(query, &db);
    ASSERT_TRUE(result.ok());
    std::vector<std::string> now = result->answer.ToStrings(db.symbols());
    for (const std::string& old : previous) {
      EXPECT_NE(std::find(now.begin(), now.end(), old), now.end())
          << "answer " << old << " vanished after adding an edge";
    }
    previous = std::set<std::string>(now.begin(), now.end());
  }
}

TEST(Metamorphic, RectificationPreservesAnswers) {
  Program p = ParseProgramOrDie(
      "same(X, X) :- node(X).\n"
      "node(X) :- edge(X, Y).\n"
      "node(Y) :- edge(X, Y).");
  Program rectified = Rectify(p);
  auto load = [](Database* db) { MakeChain(db, "edge", "v", 5); };
  Atom query = ParseAtomOrDie("same(X, Y)");
  EXPECT_EQ(AnswerStrings(p, query, Strategy::kSemiNaive, load),
            AnswerStrings(rectified, query, Strategy::kSemiNaive, load));
}

TEST(Metamorphic, ExitRuleSplitPreservesAnswers) {
  // Splitting the exit relation into a union of two relations relocated
  // into two exit rules is invisible to every engine.
  Program split = ParseProgramOrDie(
      "buys(X, Y) :- friend(X, W) & buys(W, Y).\n"
      "buys(X, Y) :- buys(X, W) & cheaper(Y, W).\n"
      "buys(X, Y) :- perfectA(X, Y).\n"
      "buys(X, Y) :- perfectB(X, Y).");
  auto load_split = [](Database* db) {
    MakeChain(db, "friend", "a", 9);
    MakeChain(db, "cheaper", "b", 9);
    MakeFact(db, "perfectA", {NodeName("a", 8), NodeName("b", 8)});
    MakeFact(db, "perfectB", {NodeName("a", 4), NodeName("b", 2)});
  };
  Atom query = ParseAtomOrDie("buys(a0, Y)");
  auto expected =
      AnswerStrings(split, query, Strategy::kSemiNaive, load_split);
  for (Strategy s : {Strategy::kSeparable, Strategy::kMagic}) {
    EXPECT_EQ(AnswerStrings(split, query, s, load_split), expected)
        << StrategyToString(s);
  }
}

TEST(Metamorphic, PartialAnswersAreSubsetsOfFullAnswers) {
  // Sound degradation: for a positive (monotone) program, a budget-limited
  // run may return fewer tuples but never a wrong one, and it must leave
  // the database exactly as it found it.
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  Atom query = ParseAtomOrDie("tc(v0, Y)");

  Database full_db;
  MakeChain(&full_db, "edge", "v", 80);
  auto full = qp->Answer(query, &full_db);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_FALSE(full->partial);
  std::vector<std::string> full_strings =
      full->answer.ToStrings(full_db.symbols());
  std::sort(full_strings.begin(), full_strings.end());
  ASSERT_EQ(full_strings.size(), 79u);

  bool saw_partial = false;
  for (size_t budget : {1u, 2u, 4u, 8u, 16u, 32u}) {
    Database db;
    MakeChain(&db, "edge", "v", 80);
    const std::vector<std::string> names_before = db.RelationNames();
    FixpointOptions options;
    options.limits.max_iterations = budget;
    auto limited = qp->Answer(query, &db, Strategy::kAuto, options);
    ASSERT_TRUE(limited.ok()) << limited.status().ToString();
    std::vector<std::string> subset =
        limited->answer.ToStrings(db.symbols());
    std::sort(subset.begin(), subset.end());
    EXPECT_TRUE(std::includes(full_strings.begin(), full_strings.end(),
                              subset.begin(), subset.end()))
        << "budget " << budget;
    if (limited->partial) {
      saw_partial = true;
      EXPECT_LT(subset.size(), full_strings.size()) << "budget " << budget;
      // Rollback left no trace of the truncated attempt.
      EXPECT_EQ(db.RelationNames(), names_before) << "budget " << budget;
    }
  }
  EXPECT_TRUE(saw_partial);
}

}  // namespace
}  // namespace seprec
