// Stratified negation: parsing, safety, stratification checking, plan
// anti-joins, fixpoint semantics, and interaction with every engine.
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "core/query.h"
#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "eval/join_plan.h"
#include "gen/generators.h"
#include "magic/engine.h"
#include "magic/supplementary.h"

namespace seprec {
namespace {

TEST(Negation, ParseAndPrint) {
  Program p = ParseProgramOrDie(
      "orphan(X) :- person(X), not parent(Y, X).");
  ASSERT_EQ(p.rules[0].body.size(), 2u);
  EXPECT_FALSE(p.rules[0].body[0].negated);
  EXPECT_TRUE(p.rules[0].body[1].negated);
  EXPECT_EQ(p.rules[0].ToString(),
            "orphan(X) :- person(X), not parent(Y, X).");
  // Round trip.
  Program p2 = ParseProgramOrDie(p.ToString());
  EXPECT_EQ(p.ToString(), p2.ToString());
}

TEST(Negation, NotAsPredicateNameStillWorks) {
  // 'not' is only special when followed by a predicate name inside a
  // body; a 0-ary atom named differently is unaffected.
  Program p = ParseProgramOrDie("p(X) :- q(X), not r(X).");
  EXPECT_TRUE(p.rules[0].body[1].negated);
}

TEST(Negation, SafetyRequiresBoundVariables) {
  // Y appears only in the negated atom: unsafe.
  EXPECT_FALSE(
      CheckSafety(ParseProgramOrDie("p(X) :- q(X), not r(X, Y).")).ok());
  EXPECT_TRUE(
      CheckSafety(ParseProgramOrDie("p(X) :- q(X, Y), not r(X, Y).")).ok());
  // A head variable cannot be bound by a negated atom.
  EXPECT_FALSE(CheckSafety(ParseProgramOrDie("p(X) :- not r(X).")).ok());
}

TEST(Negation, StratificationRejectsNegativeCycles) {
  // p negates q and q depends on p: negation inside the SCC.
  Program bad = ParseProgramOrDie(
      "p(X) :- base(X), not q(X).\n"
      "q(X) :- edge(X, Y), p(Y).");
  EXPECT_FALSE(ProgramInfo::Analyze(bad).ok());
  // Direct self-negation.
  Program self = ParseProgramOrDie("p(X) :- base(X), not p(X).");
  EXPECT_FALSE(ProgramInfo::Analyze(self).ok());
  // Negating a lower stratum is fine.
  Program good = ParseProgramOrDie(
      "q(X) :- edge(X, Y).\n"
      "p(X) :- base(X), not q(X).");
  EXPECT_TRUE(ProgramInfo::Analyze(good).ok());
}

TEST(Negation, PlanAntiJoinBasic) {
  Database db;
  ASSERT_TRUE(db.AddFact("person", {"ann"}).ok());
  ASSERT_TRUE(db.AddFact("person", {"bob"}).ok());
  ASSERT_TRUE(db.AddFact("banned", {"bob"}).ok());
  Program p = ParseProgramOrDie("ok(X) :- person(X), not banned(X).");
  StatusOr<RulePlan> plan = RulePlan::Compile(p.rules[0], &db);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Relation out("out", 1);
  plan->ExecuteInto(&out);
  EXPECT_EQ(out.DebugString(db.symbols()), "out(ann)\n");
  EXPECT_NE(plan->DebugString().find("anti-scan"), std::string::npos);
}

TEST(Negation, PlanAntiJoinWithConstants) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"b", "c"}).ok());
  ASSERT_TRUE(db.AddFact("blocked", {"b", "special"}).ok());
  Program p = ParseProgramOrDie(
      "h(X, Y) :- e(X, Y), not blocked(X, special).");
  StatusOr<RulePlan> plan = RulePlan::Compile(p.rules[0], &db);
  ASSERT_TRUE(plan.ok());
  Relation out("out", 2);
  plan->ExecuteInto(&out);
  EXPECT_EQ(out.DebugString(db.symbols()), "out(a, b)\n");
}

TEST(Negation, PlanAntiJoinIndexFree) {
  Database db;
  ASSERT_TRUE(db.AddFact("person", {"ann"}).ok());
  ASSERT_TRUE(db.AddFact("person", {"bob"}).ok());
  ASSERT_TRUE(db.AddFact("banned", {"bob"}).ok());
  Program p = ParseProgramOrDie("ok(X) :- person(X), not banned(X).");
  PlanOptions options;
  options.disable_indexes = true;
  StatusOr<RulePlan> plan = RulePlan::Compile(p.rules[0], &db, options);
  ASSERT_TRUE(plan.ok());
  Relation out("out", 1);
  plan->ExecuteInto(&out);
  EXPECT_EQ(out.DebugString(db.symbols()), "out(ann)\n");
}

TEST(Negation, MissingNegatedRelationMeansAlwaysTrue) {
  Database db;
  ASSERT_TRUE(db.AddFact("person", {"ann"}).ok());
  Program p = ParseProgramOrDie("ok(X) :- person(X), not never_seen(X).");
  StatusOr<RulePlan> plan = RulePlan::Compile(p.rules[0], &db);
  ASSERT_TRUE(plan.ok());
  Relation out("out", 1);
  plan->ExecuteInto(&out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Negation, FixpointSetDifference) {
  // Unreachable nodes: classic stratified example.
  Program p = ParseProgramOrDie(
      "node(X) :- edge(X, Y).\n"
      "node(Y) :- edge(X, Y).\n"
      "reach(X) :- start(X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "unreach(X) :- node(X), not reach(X).");
  Database db;
  MakeChain(&db, "edge", "v", 4);
  MakeChain(&db, "edge", "w", 3);
  MakeFact(&db, "start", {"v0"});
  EvalStats stats;
  ASSERT_TRUE(EvaluateSemiNaive(p, &db, {}, &stats).ok());
  EXPECT_EQ(db.Find("unreach")->DebugString(db.symbols()),
            "unreach(w0)\nunreach(w1)\nunreach(w2)\n");
}

TEST(Negation, NaiveAgreesWithSemiNaive) {
  Program p = ParseProgramOrDie(
      "node(X) :- edge(X, Y).\n"
      "node(Y) :- edge(X, Y).\n"
      "reach(X) :- start(X).\n"
      "reach(Y) :- reach(X), edge(X, Y).\n"
      "unreach(X) :- node(X), not reach(X).");
  Database db1, db2;
  for (Database* db : {&db1, &db2}) {
    MakeRandomGraph(db, "edge", "v", 15, 25, 3);
    MakeFact(db, "start", {"v0"});
  }
  ASSERT_TRUE(EvaluateSemiNaive(p, &db1).ok());
  ASSERT_TRUE(EvaluateNaive(p, &db2).ok());
  EXPECT_EQ(db1.Find("unreach")->DebugString(db1.symbols()),
            db2.Find("unreach")->DebugString(db2.symbols()));
}

TEST(Negation, NegationInsideRecursiveRuleOverLowerStratum) {
  // Reachability avoiding closed nodes: negation inside the recursion,
  // but of a lower-stratum (EDB) predicate — stratified and separable!
  Program p = ParseProgramOrDie(
      "open_reach(X, Y) :- edge(X, Y), not closed(Y).\n"
      "open_reach(X, Y) :- edge(X, W), not closed(W), open_reach(W, Y).");
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok()) << qp.status().ToString();
  EXPECT_EQ(qp->Decide(ParseAtomOrDie("open_reach(v0, Y)")).strategy,
            Strategy::kSeparable);

  Database db;
  MakeChain(&db, "edge", "v", 8);
  MakeFact(&db, "closed", {"v5"});
  auto result = qp->Answer(ParseAtomOrDie("open_reach(v0, Y)"), &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // v0 can reach v1..v4 (v5 closed blocks the rest)... v5 itself excluded.
  EXPECT_EQ(result->answer.size(), 4u);

  // Cross-check with semi-naive and magic on fresh databases.
  for (Strategy s : {Strategy::kSemiNaive, Strategy::kMagic}) {
    Database db2;
    MakeChain(&db2, "edge", "v", 8);
    MakeFact(&db2, "closed", {"v5"});
    auto other = qp->Answer(ParseAtomOrDie("open_reach(v0, Y)"), &db2, s);
    ASSERT_TRUE(other.ok()) << StrategyToString(s) << ": "
                            << other.status().ToString();
    EXPECT_EQ(other->answer.size(), result->answer.size())
        << StrategyToString(s);
  }
}

TEST(Negation, MagicWithNegatedIdbPredicate) {
  Program p = ParseProgramOrDie(
      "closed(X) :- raw_closed(X).\n"
      "tc(X, Y) :- edge(X, Y), not closed(Y).\n"
      "tc(X, Y) :- edge(X, W), not closed(W), tc(W, Y).");
  Database db1, db2;
  for (Database* db : {&db1, &db2}) {
    MakeChain(db, "edge", "v", 8);
    MakeFact(db, "raw_closed", {"v5"});
  }
  Atom query = ParseAtomOrDie("tc(v0, Y)");
  auto magic = EvaluateWithMagic(p, query, &db1);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  EvalStats stats;
  ASSERT_TRUE(EvaluateSemiNaive(p, &db2, {}, &stats).ok());
  Answer expected = SelectMatching(*db2.Find("tc"), query, db2.symbols());
  EXPECT_EQ(magic->answer, expected);
  EXPECT_EQ(magic->answer.size(), 4u);
}

TEST(Negation, SupplementaryMagicWithNegation) {
  Program p = ParseProgramOrDie(
      "closed(X) :- raw_closed(X).\n"
      "tc(X, Y) :- edge(X, Y), not closed(Y).\n"
      "tc(X, Y) :- edge(X, W), not closed(W), tc(W, Y).");
  Database db1, db2;
  for (Database* db : {&db1, &db2}) {
    MakeChain(db, "edge", "v", 8);
    MakeFact(db, "raw_closed", {"v5"});
  }
  Atom query = ParseAtomOrDie("tc(v0, Y)");
  auto sup = EvaluateWithSupplementaryMagic(p, query, &db1);
  ASSERT_TRUE(sup.ok()) << sup.status().ToString();
  auto plain = EvaluateWithMagic(p, query, &db2);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(sup->answer, plain->answer);
}

TEST(Negation, MultiStratumTower) {
  Program p = ParseProgramOrDie(
      "a(X) :- base(X).\n"
      "b(X) :- base(X), not a_exception(X).\n"
      "a_exception(X) :- special(X).\n"
      "c(X) :- b(X), not d_source(X).\n"
      "d_source(X) :- a(X), special(X).");
  Database db;
  MakeFact(&db, "base", {"x"});
  MakeFact(&db, "base", {"y"});
  MakeFact(&db, "special", {"y"});
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.Find("b")->DebugString(db.symbols()), "b(x)\n");
  EXPECT_EQ(db.Find("c")->DebugString(db.symbols()), "c(x)\n");
}

}  // namespace
}  // namespace seprec
