#include "datalog/parser.h"

#include <gtest/gtest.h>

namespace seprec {
namespace {

TEST(Parser, FactAndRule) {
  auto unit = ParseUnit("edge(a, b).\ntc(X, Y) :- edge(X, Y).");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  ASSERT_EQ(unit->program.rules.size(), 2u);
  const Rule& fact = unit->program.rules[0];
  EXPECT_EQ(fact.head.predicate, "edge");
  EXPECT_TRUE(fact.body.empty());
  EXPECT_TRUE(fact.head.IsGround());
  const Rule& rule = unit->program.rules[1];
  EXPECT_EQ(rule.head.predicate, "tc");
  ASSERT_EQ(rule.body.size(), 1u);
  EXPECT_EQ(rule.body[0].atom.predicate, "edge");
}

TEST(Parser, PaperAmpersandBodies) {
  Program p = ParseProgramOrDie(
      "buys(X, Y) :- friend(X, W) & buys(W, Y).");
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(p.rules[0].body.size(), 2u);
}

TEST(Parser, QueriesBothSyntaxes) {
  auto unit = ParseUnit("?- buys(tom, Y).\nbuys(tom, Z)?");
  ASSERT_TRUE(unit.ok());
  ASSERT_EQ(unit->queries.size(), 2u);
  EXPECT_EQ(unit->queries[0].ToString(), "buys(tom, Y)");
  EXPECT_EQ(unit->queries[1].ToString(), "buys(tom, Z)");
}

TEST(Parser, QuestionMarkWithTrailingPeriod) {
  auto unit = ParseUnit("buys(tom, Y)? .");
  ASSERT_TRUE(unit.ok());
  EXPECT_EQ(unit->queries.size(), 1u);
}

TEST(Parser, TermKinds) {
  Atom atom = ParseAtomOrDie("p(X, tom, 42, -3, 'Big Name')");
  ASSERT_EQ(atom.arity(), 5u);
  EXPECT_EQ(atom.args[0].kind, Term::Kind::kVariable);
  EXPECT_EQ(atom.args[1].kind, Term::Kind::kSymbol);
  EXPECT_EQ(atom.args[2].kind, Term::Kind::kInt);
  EXPECT_EQ(atom.args[2].int_value, 42);
  EXPECT_EQ(atom.args[3].int_value, -3);
  EXPECT_EQ(atom.args[4].name, "Big Name");
}

TEST(Parser, PropositionalAtom) {
  Program p = ParseProgramOrDie("raining.\nwet :- raining.");
  EXPECT_EQ(p.rules[0].head.arity(), 0u);
  EXPECT_EQ(p.rules[1].body[0].atom.predicate, "raining");
}

TEST(Parser, ComparisonLiterals) {
  Program p = ParseProgramOrDie("p(X, Y) :- q(X, Y), X != Y, X < 10.");
  ASSERT_EQ(p.rules[0].body.size(), 3u);
  const Literal& ne = p.rules[0].body[1];
  EXPECT_EQ(ne.kind, Literal::Kind::kCompare);
  EXPECT_EQ(ne.cmp_op, CmpOp::kNe);
  const Literal& lt = p.rules[0].body[2];
  EXPECT_EQ(lt.cmp_op, CmpOp::kLt);
  EXPECT_EQ(lt.cmp_rhs.int_value, 10);
}

TEST(Parser, EqualityBetweenConstantsAndVars) {
  Program p = ParseProgramOrDie("p(X) :- q(X, Y), Y = tom.");
  const Literal& eq = p.rules[0].body[1];
  EXPECT_EQ(eq.kind, Literal::Kind::kCompare);
  EXPECT_EQ(eq.cmp_op, CmpOp::kEq);
  EXPECT_EQ(eq.cmp_rhs.name, "tom");
}

TEST(Parser, AssignmentWithPrecedence) {
  Program p = ParseProgramOrDie("p(Z) :- q(X), Z is X * 2 + 1.");
  const Literal& assign = p.rules[0].body[1];
  ASSERT_EQ(assign.kind, Literal::Kind::kAssign);
  EXPECT_EQ(assign.assign_var, "Z");
  // Z is (X*2) + 1 — '+' at the root.
  EXPECT_EQ(assign.expr.op, Expr::Op::kAdd);
  EXPECT_EQ(assign.expr.lhs->op, Expr::Op::kMul);
}

TEST(Parser, ParenthesizedExpressions) {
  Program p = ParseProgramOrDie("p(Z) :- q(X), Z is X * (2 + 1).");
  const Literal& assign = p.rules[0].body[1];
  EXPECT_EQ(assign.expr.op, Expr::Op::kMul);
  EXPECT_EQ(assign.expr.rhs->op, Expr::Op::kAdd);
}

TEST(Parser, ModOperator) {
  Program p = ParseProgramOrDie("p(Z) :- q(X), Z is X mod 3.");
  EXPECT_EQ(p.rules[0].body[1].expr.op, Expr::Op::kMod);
}

TEST(Parser, ErrorMissingPeriod) {
  EXPECT_FALSE(ParseProgram("p(X) :- q(X)").ok());
}

TEST(Parser, ErrorDanglingComma) {
  EXPECT_FALSE(ParseProgram("p(X) :- q(X), .").ok());
}

TEST(Parser, ErrorEmptyArgList) {
  EXPECT_FALSE(ParseProgram("p() :- q(X).").ok());
}

TEST(Parser, ErrorQueryInProgramText) {
  EXPECT_FALSE(ParseProgram("p(a).\n?- p(X).").ok());
}

TEST(Parser, ParseAtomRejectsRule) {
  EXPECT_FALSE(ParseAtom("p(X) :- q(X)").ok());
}

TEST(Parser, ErrorsCarryLineAndColumn) {
  auto bad = ParseProgram("p(a).\nq(X :- r(X).");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2, col 5"), std::string::npos)
      << bad.status().message();
}

TEST(Parser, AstCarriesSourceSpans) {
  auto unit = ParseUnit("p(a).\n  tc(X, Y) :- e(X, Z), not bad(Z), tc(Z, Y).");
  ASSERT_TRUE(unit.ok());
  const Rule& rule = unit->program.rules[1];
  EXPECT_EQ(rule.span.line, 2);
  EXPECT_EQ(rule.span.col, 3);
  EXPECT_EQ(rule.span.end_col, 45);  // one past the final '.'
  EXPECT_EQ(rule.head.span.col, 3);
  EXPECT_EQ(rule.head.span.end_col, 11);  // one past "tc(X, Y)"
  ASSERT_EQ(rule.body.size(), 3u);
  EXPECT_EQ(rule.body[0].span.col, 15);            // e(X, Z)
  EXPECT_EQ(rule.body[1].span.col, 24);            // spans the 'not'
  EXPECT_EQ(rule.body[1].atom.span.col, 28);       // bad(Z) itself
  EXPECT_EQ(rule.body[2].span.col, 36);            // tc(Z, Y)
}

TEST(Parser, ToStringRoundTrip) {
  const std::string text =
      "buys(X, Y) :- friend(X, W), buys(W, Y).\n"
      "t(X) :- a(X, Y), Y != b, X < 3, Z is X + 1, p(Z).\n";
  Program p1 = ParseProgramOrDie(text);
  Program p2 = ParseProgramOrDie(p1.ToString());
  EXPECT_EQ(p1.ToString(), p2.ToString());
}

TEST(Parser, RulesForFindsByPredicate) {
  Program p = ParseProgramOrDie("p(a).\nq(b).\np(X) :- q(X).");
  EXPECT_EQ(p.RulesFor("p").size(), 2u);
  EXPECT_EQ(p.RulesFor("q").size(), 1u);
  EXPECT_TRUE(p.RulesFor("r").empty());
}

}  // namespace
}  // namespace seprec
