#include "eval/join_plan.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "storage/database.h"

namespace seprec {
namespace {

// Compiles the single rule in `rule_text` against `db` and executes it into
// a fresh relation, whose sorted debug string is returned.
std::string RunRule(const std::string& rule_text, Database* db,
                    bool* overflow = nullptr) {
  Program p = ParseProgramOrDie(rule_text);
  StatusOr<RulePlan> plan = RulePlan::Compile(p.rules[0], db);
  SEPREC_CHECK(plan.ok());
  Relation out("out", p.rules[0].head.arity());
  plan->ExecuteInto(&out, overflow);
  return out.DebugString(db->symbols());
}

TEST(JoinPlan, SingleAtomCopy) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"b", "c"}).ok());
  EXPECT_EQ(RunRule("h(X, Y) :- e(X, Y).", &db), "out(a, b)\nout(b, c)\n");
}

TEST(JoinPlan, Projection) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"a", "c"}).ok());
  EXPECT_EQ(RunRule("h(X) :- e(X, Y).", &db), "out(a)\n");
}

TEST(JoinPlan, TwoWayJoin) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"b", "c"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"c", "d"}).ok());
  EXPECT_EQ(RunRule("h(X, Z) :- e(X, Y), e(Y, Z).", &db),
            "out(a, c)\nout(b, d)\n");
}

TEST(JoinPlan, ConstantInBody) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"c", "b"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"c", "d"}).ok());
  EXPECT_EQ(RunRule("h(X) :- e(X, b).", &db), "out(a)\nout(c)\n");
}

TEST(JoinPlan, ConstantInHead) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  EXPECT_EQ(RunRule("h(marked, X) :- e(X, Y).", &db), "out(marked, a)\n");
}

TEST(JoinPlan, RepeatedVariableInAtom) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "a"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  EXPECT_EQ(RunRule("h(X) :- e(X, X).", &db), "out(a)\n");
}

TEST(JoinPlan, RepeatedVariableInHead) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  EXPECT_EQ(RunRule("h(X, X) :- e(X, Y).", &db), "out(a, a)\n");
}

TEST(JoinPlan, FactRule) {
  Database db;
  EXPECT_EQ(RunRule("h(a, 3).", &db), "out(a, 3)\n");
}

TEST(JoinPlan, EqualityBindsVariable) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  EXPECT_EQ(RunRule("h(X, Z) :- e(X, Y), Z = Y.", &db), "out(a, b)\n");
  EXPECT_EQ(RunRule("h(X, Z) :- Z = fixed, e(X, Y).", &db),
            "out(a, fixed)\n");
}

TEST(JoinPlan, EqualityFilters) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "a"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  EXPECT_EQ(RunRule("h(X, Y) :- e(X, Y), X = Y.", &db), "out(a, a)\n");
}

TEST(JoinPlan, ComparisonsOnInts) {
  Database db;
  Relation* rel = *db.CreateRelation("n", 1);
  for (int i = 0; i < 6; ++i) rel->Insert({Value::Int(i)});
  EXPECT_EQ(RunRule("h(X) :- n(X), X < 2.", &db), "out(0)\nout(1)\n");
  EXPECT_EQ(RunRule("h(X) :- n(X), X >= 4.", &db), "out(4)\nout(5)\n");
  EXPECT_EQ(RunRule("h(X) :- n(X), X != 0, X <= 1.", &db), "out(1)\n");
}

TEST(JoinPlan, OrderingComparisonOnSymbolsFails) {
  Database db;
  ASSERT_TRUE(db.AddFact("s", {"a"}).ok());
  // '<' is defined only on integers: no rows, no crash.
  EXPECT_EQ(RunRule("h(X) :- s(X), X < 5.", &db), "");
}

TEST(JoinPlan, Arithmetic) {
  Database db;
  Relation* rel = *db.CreateRelation("n", 1);
  rel->Insert({Value::Int(5)});
  EXPECT_EQ(RunRule("h(Z) :- n(X), Z is X * 2 + 1.", &db), "out(11)\n");
  EXPECT_EQ(RunRule("h(Z) :- n(X), Z is (X + 1) * (X - 1).", &db),
            "out(24)\n");
  EXPECT_EQ(RunRule("h(Z) :- n(X), Z is X mod 3.", &db), "out(2)\n");
  EXPECT_EQ(RunRule("h(Z) :- n(X), Z is X / 2.", &db), "out(2)\n");
}

TEST(JoinPlan, AssignAsCheck) {
  Database db;
  Relation* rel = *db.CreateRelation("pair", 2);
  rel->Insert({Value::Int(2), Value::Int(4)});
  rel->Insert({Value::Int(3), Value::Int(5)});
  // Y is X*2 acts as a filter when Y is already bound.
  EXPECT_EQ(RunRule("h(X) :- pair(X, Y), Y is X * 2.", &db), "out(2)\n");
}

TEST(JoinPlan, DivisionByZeroDropsDerivation) {
  Database db;
  Relation* rel = *db.CreateRelation("n", 1);
  rel->Insert({Value::Int(0)});
  rel->Insert({Value::Int(2)});
  EXPECT_EQ(RunRule("h(Z) :- n(X), Z is 4 / X.", &db), "out(2)\n");
}

TEST(JoinPlan, OverflowSetsFlagAndDropsRow) {
  Database db;
  Relation* rel = *db.CreateRelation("n", 1);
  rel->Insert({Value::Int(Value::kMaxInt)});
  bool overflow = false;
  EXPECT_EQ(RunRule("h(Z) :- n(X), Z is X * 2.", &db, &overflow), "");
  EXPECT_TRUE(overflow);
}

TEST(JoinPlan, ArithmeticOnSymbolDropsRow) {
  Database db;
  ASSERT_TRUE(db.AddFact("s", {"a"}).ok());
  bool overflow = false;
  EXPECT_EQ(RunRule("h(Z) :- s(X), Z is X + 1.", &db, &overflow), "");
  EXPECT_FALSE(overflow);  // type error, not overflow
}

TEST(JoinPlan, RelationOverride) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("delta_e", {"x", "y"}).ok());
  Program p = ParseProgramOrDie("h(X, Y) :- e(X, Y).");
  PlanOptions options;
  options.relation_overrides[0] = "delta_e";
  StatusOr<RulePlan> plan = RulePlan::Compile(p.rules[0], &db, options);
  ASSERT_TRUE(plan.ok());
  Relation out("out", 2);
  plan->ExecuteInto(&out);
  EXPECT_EQ(out.DebugString(db.symbols()), "out(x, y)\n");
}

TEST(JoinPlan, MissingRelationTreatedAsEmpty) {
  Database db;
  EXPECT_EQ(RunRule("h(X) :- never_mentioned(X).", &db), "");
  EXPECT_NE(db.Find("never_mentioned"), nullptr);
}

TEST(JoinPlan, UnsafeRuleRejected) {
  Database db;
  Program p = ParseProgramOrDie("h(X, Y) :- e(X, Z).");
  EXPECT_FALSE(RulePlan::Compile(p.rules[0], &db).ok());
  Program p2 = ParseProgramOrDie("h(X) :- e(X), X < Y.");
  EXPECT_FALSE(RulePlan::Compile(p2.rules[0], &db).ok());
}

TEST(JoinPlan, CountDerivationsCountsDuplicates) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"a", "c"}).ok());
  Program p = ParseProgramOrDie("h(X) :- e(X, Y).");
  StatusOr<RulePlan> plan = RulePlan::Compile(p.rules[0], &db);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->CountDerivations(), 2u);  // both rows, same head value
}

TEST(JoinPlan, SelfJoinTriangle) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"b", "c"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"c", "a"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"a", "d"}).ok());
  EXPECT_EQ(RunRule("h(X) :- e(X, Y), e(Y, Z), e(Z, X).", &db),
            "out(a)\nout(b)\nout(c)\n");
}

TEST(JoinPlan, DebugStringMentionsSteps) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  Program p = ParseProgramOrDie("h(X) :- e(X, Y), Y = b, Z is 1 + 2.");
  StatusOr<RulePlan> plan = RulePlan::Compile(p.rules[0], &db);
  ASSERT_TRUE(plan.ok());
  std::string s = plan->DebugString();
  EXPECT_NE(s.find("scan e"), std::string::npos);
  EXPECT_NE(s.find("emit head"), std::string::npos);
}

TEST(JoinPlan, OutputMustNotAliasScannedRelation) {
  Database db;
  Relation* e = *db.CreateRelation("e", 2);
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  Program p = ParseProgramOrDie("e(X, Y) :- e(Y, X).");
  StatusOr<RulePlan> plan = RulePlan::Compile(p.rules[0], &db);
  ASSERT_TRUE(plan.ok());
  EXPECT_DEATH(plan->ExecuteInto(e), "");
}

}  // namespace
}  // namespace seprec
