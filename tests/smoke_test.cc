// End-to-end smoke: the paper's Example 1.1 answered by every engine.
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "datalog/parser.h"
#include "gen/workloads.h"

namespace seprec {
namespace {

TEST(Smoke, Example11AllEnginesAgree) {
  Program program = Example11Program();
  Atom query = ParseAtomOrDie("buys(a0, Y)");

  StatusOr<QueryProcessor> qp = QueryProcessor::Create(program);
  ASSERT_TRUE(qp.ok()) << qp.status().ToString();

  std::vector<Strategy> strategies = {Strategy::kSeparable, Strategy::kMagic,
                                      Strategy::kCounting,
                                      Strategy::kSemiNaive, Strategy::kNaive};
  std::vector<Answer> answers;
  for (Strategy s : strategies) {
    Database db;
    MakeExample11Data(&db, 8);
    StatusOr<QueryResult> result = qp->Answer(query, &db, s);
    ASSERT_TRUE(result.ok()) << StrategyToString(s) << ": "
                             << result.status().ToString();
    answers.push_back(result->answer);
  }
  // Everyone buys product b: the single expected answer is (a0, b).
  EXPECT_EQ(answers[0].size(), 1u);
  for (size_t i = 1; i < answers.size(); ++i) {
    EXPECT_EQ(answers[0], answers[i])
        << "strategy " << StrategyToString(strategies[i])
        << " disagrees with separable";
  }
}

}  // namespace
}  // namespace seprec
