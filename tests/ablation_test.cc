// Ablation knobs: index-free plans and the naive/semi-naive delta
// comparison produce identical answers with measurably different work.
#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "eval/join_plan.h"
#include "gen/generators.h"
#include "gen/workloads.h"

namespace seprec {
namespace {

TEST(Ablation, IndexFreePlansSameResults) {
  Database db;
  MakeRandomGraph(&db, "e", "v", 40, 120, 5);
  Program p = ParseProgramOrDie("h(X, Z) :- e(X, Y), e(Y, Z), X != Z.");
  StatusOr<RulePlan> indexed = RulePlan::Compile(p.rules[0], &db);
  PlanOptions options;
  options.disable_indexes = true;
  StatusOr<RulePlan> scanning = RulePlan::Compile(p.rules[0], &db, options);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(scanning.ok());
  Relation out1("o", 2), out2("o", 2);
  indexed->ExecuteInto(&out1);
  scanning->ExecuteInto(&out2);
  EXPECT_GT(out1.size(), 0u);
  EXPECT_EQ(out1.DebugString(db.symbols()), out2.DebugString(db.symbols()));
}

TEST(Ablation, IndexFreeConstantsStillFilter) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"c", "b"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"c", "d"}).ok());
  Program p = ParseProgramOrDie("h(X) :- e(X, b).");
  PlanOptions options;
  options.disable_indexes = true;
  StatusOr<RulePlan> plan = RulePlan::Compile(p.rules[0], &db, options);
  ASSERT_TRUE(plan.ok());
  Relation out("o", 1);
  plan->ExecuteInto(&out);
  EXPECT_EQ(out.DebugString(db.symbols()), "o(a)\no(c)\n");
}

TEST(Ablation, IndexFreeRepeatedVariables) {
  Database db;
  ASSERT_TRUE(db.AddFact("e", {"a", "a"}).ok());
  ASSERT_TRUE(db.AddFact("e", {"a", "b"}).ok());
  Program p = ParseProgramOrDie("h(X) :- e(X, X).");
  PlanOptions options;
  options.disable_indexes = true;
  StatusOr<RulePlan> plan = RulePlan::Compile(p.rules[0], &db, options);
  ASSERT_TRUE(plan.ok());
  Relation out("o", 1);
  plan->ExecuteInto(&out);
  EXPECT_EQ(out.DebugString(db.symbols()), "o(a)\n");
}

TEST(Ablation, FixpointWithoutIndexesMatches) {
  Database db1, db2;
  MakeRandomGraph(&db1, "edge", "v", 25, 60, 9);
  MakeRandomGraph(&db2, "edge", "v", 25, 60, 9);
  FixpointOptions no_index;
  no_index.disable_indexes = true;
  ASSERT_TRUE(EvaluateSemiNaive(TransitiveClosureProgram(), &db1).ok());
  ASSERT_TRUE(
      EvaluateSemiNaive(TransitiveClosureProgram(), &db2, no_index).ok());
  EXPECT_EQ(db1.Find("tc")->DebugString(db1.symbols()),
            db2.Find("tc")->DebugString(db2.symbols()));
}

TEST(Ablation, NaiveDoesMoreWorkThanSemiNaive) {
  // Same fixpoint, but naive re-derives old tuples every round. We compare
  // total derivations via CountDerivations on the final state as a proxy:
  // instead, compare wall-clock-free metric: iterations are equal, but
  // naive's per-round scans grow. Here we simply check both reach the
  // same fixpoint and that semi-naive's inserted-tuple accounting equals
  // the final relation size (each tuple derived once into the relation).
  Database db1, db2;
  MakeChain(&db1, "edge", "v", 40);
  MakeChain(&db2, "edge", "v", 40);
  EvalStats sn_stats, naive_stats;
  ASSERT_TRUE(EvaluateSemiNaive(TransitiveClosureProgram(), &db1, {},
                                &sn_stats)
                  .ok());
  ASSERT_TRUE(
      EvaluateNaive(TransitiveClosureProgram(), &db2, {}, &naive_stats).ok());
  EXPECT_EQ(db1.Find("tc")->size(), db2.Find("tc")->size());
  EXPECT_EQ(sn_stats.tuples_inserted, naive_stats.tuples_inserted);
  EXPECT_EQ(sn_stats.tuples_inserted, db1.Find("tc")->size());
}

}  // namespace
}  // namespace seprec
