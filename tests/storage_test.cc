// Tests for Value, SymbolTable, Relation, Index, and Database.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "storage/database.h"
#include "storage/relation.h"
#include "storage/symbol_table.h"
#include "storage/value.h"
#include "util/string_util.h"

namespace seprec {
namespace {

// ---- Value ---------------------------------------------------------------

TEST(Value, SymbolRoundTrip) {
  Value v = Value::Symbol(12345);
  EXPECT_TRUE(v.is_symbol());
  EXPECT_FALSE(v.is_int());
  EXPECT_EQ(v.symbol_id(), 12345u);
}

TEST(Value, IntRoundTrip) {
  for (int64_t x : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{1} << 40,
                    -(int64_t{1} << 40), Value::kMaxInt, Value::kMinInt}) {
    Value v = Value::Int(x);
    EXPECT_TRUE(v.is_int());
    EXPECT_EQ(v.as_int(), x) << x;
  }
}

TEST(Value, IntAndSymbolNeverEqual) {
  EXPECT_NE(Value::Int(0), Value::Symbol(0));
  EXPECT_NE(Value::Int(5), Value::Symbol(5));
}

TEST(Value, Ordering) {
  EXPECT_LT(Value::Symbol(1), Value::Symbol(2));
  EXPECT_LT(Value::Int(-5), Value::Int(3));
  // All symbols sort before all ints.
  EXPECT_LT(Value::Symbol(99), Value::Int(-100));
}

TEST(Value, HashDistinguishes) {
  ValueHash h;
  EXPECT_NE(h(Value::Int(1)), h(Value::Int(2)));
  EXPECT_NE(h(Value::Symbol(1)), h(Value::Int(1)));
}

// ---- SymbolTable ----------------------------------------------------------

TEST(SymbolTable, InternIsIdempotent) {
  SymbolTable table;
  Value a1 = table.Intern("alpha");
  Value a2 = table.Intern("alpha");
  Value b = table.Intern("beta");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTable, NameOfRoundTrip) {
  SymbolTable table;
  Value v = table.Intern("hello");
  EXPECT_EQ(table.NameOf(v.symbol_id()), "hello");
  EXPECT_EQ(table.ToString(v), "hello");
  EXPECT_EQ(table.ToString(Value::Int(-7)), "-7");
}

TEST(SymbolTable, TryFind) {
  SymbolTable table;
  table.Intern("present");
  Value v;
  EXPECT_TRUE(table.TryFind("present", &v));
  EXPECT_FALSE(table.TryFind("absent", &v));
  EXPECT_EQ(table.size(), 1u);  // TryFind does not intern
}

TEST(SymbolTable, StableUnderGrowth) {
  // Regression guard for dangling string_view keys: intern thousands of
  // short (SSO) strings and verify old ids still resolve.
  SymbolTable table;
  std::vector<Value> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(table.Intern(StrCat("s", i)));
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(table.Intern(StrCat("s", i)), values[i]);
    EXPECT_EQ(table.NameOf(values[i].symbol_id()), StrCat("s", i));
  }
}

// ---- Relation --------------------------------------------------------------

Row MakeRow(const std::vector<Value>& v) { return Row(v.data(), v.size()); }

TEST(Relation, InsertDeduplicates) {
  Relation rel("r", 2);
  std::vector<Value> row = {Value::Int(1), Value::Int(2)};
  EXPECT_TRUE(rel.Insert(MakeRow(row)));
  EXPECT_FALSE(rel.Insert(MakeRow(row)));
  EXPECT_EQ(rel.size(), 1u);
  std::vector<Value> other = {Value::Int(2), Value::Int(1)};
  EXPECT_TRUE(rel.Insert(MakeRow(other)));
  EXPECT_EQ(rel.size(), 2u);
}

TEST(Relation, ContainsAndRowAccess) {
  Relation rel("r", 2);
  std::vector<Value> row = {Value::Int(7), Value::Int(8)};
  EXPECT_FALSE(rel.Contains(MakeRow(row)));
  rel.Insert(MakeRow(row));
  EXPECT_TRUE(rel.Contains(MakeRow(row)));
  Row stored = rel.row(0);
  EXPECT_EQ(stored[0], Value::Int(7));
  EXPECT_EQ(stored[1], Value::Int(8));
}

TEST(Relation, IndexLookup) {
  Relation rel("edge", 2);
  for (int i = 0; i < 10; ++i) {
    rel.Insert({Value::Int(i / 3), Value::Int(i)});
  }
  const Index& index = rel.GetIndex({0});
  std::vector<Value> key = {Value::Int(1)};
  std::set<int64_t> found;
  index.ForEach(MakeRow(key), [&](uint32_t row_id) {
    found.insert(rel.row(row_id)[1].as_int());
  });
  EXPECT_EQ(found, (std::set<int64_t>{3, 4, 5}));
  EXPECT_EQ(index.CountMatches(MakeRow(key)), 3u);
}

TEST(Relation, IndexIsMaintainedIncrementally) {
  Relation rel("edge", 2);
  rel.Insert({Value::Int(0), Value::Int(1)});
  const Index& index = rel.GetIndex({0});
  std::vector<Value> key = {Value::Int(0)};
  EXPECT_EQ(index.CountMatches(MakeRow(key)), 1u);
  rel.Insert({Value::Int(0), Value::Int(2)});
  rel.Insert({Value::Int(1), Value::Int(3)});
  EXPECT_EQ(index.CountMatches(MakeRow(key)), 2u);
}

TEST(Relation, IndexOnSecondColumnAndBothColumns) {
  Relation rel("r", 2);
  rel.Insert({Value::Int(1), Value::Int(9)});
  rel.Insert({Value::Int(2), Value::Int(9)});
  std::vector<Value> key9 = {Value::Int(9)};
  EXPECT_EQ(rel.GetIndex({1}).CountMatches(MakeRow(key9)), 2u);
  std::vector<Value> key = {Value::Int(2), Value::Int(9)};
  EXPECT_EQ(rel.GetIndex({0, 1}).CountMatches(MakeRow(key)), 1u);
  std::vector<Value> miss = {Value::Int(2), Value::Int(8)};
  EXPECT_EQ(rel.GetIndex({0, 1}).CountMatches(MakeRow(miss)), 0u);
}

TEST(Relation, ClearDropsRowsAndIndexes) {
  Relation rel("r", 1);
  rel.Insert({Value::Int(1)});
  rel.GetIndex({0});
  rel.Clear();
  EXPECT_EQ(rel.size(), 0u);
  EXPECT_TRUE(rel.empty());
  EXPECT_TRUE(rel.Insert({Value::Int(1)}));
  std::vector<Value> key = {Value::Int(1)};
  EXPECT_EQ(rel.GetIndex({0}).CountMatches(MakeRow(key)), 1u);
}

TEST(Relation, InsertAll) {
  Relation a("a", 1);
  Relation b("b", 1);
  a.Insert({Value::Int(1)});
  a.Insert({Value::Int(2)});
  b.Insert({Value::Int(2)});
  EXPECT_EQ(b.InsertAll(a), 1u);
  EXPECT_EQ(b.size(), 2u);
}

TEST(Relation, ZeroArity) {
  Relation rel("prop", 0);
  EXPECT_TRUE(rel.Insert(Row{}));
  EXPECT_FALSE(rel.Insert(Row{}));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains(Row{}));
}

TEST(Relation, DebugStringIsSorted) {
  SymbolTable symbols;
  Relation rel("p", 1);
  rel.Insert({symbols.Intern("zeta")});
  rel.Insert({symbols.Intern("alpha")});
  EXPECT_EQ(rel.DebugString(symbols), "p(alpha)\np(zeta)\n");
}

TEST(Relation, LargeInsertStress) {
  Relation rel("big", 2);
  for (int i = 0; i < 20000; ++i) {
    rel.Insert({Value::Int(i % 997), Value::Int(i)});
  }
  EXPECT_EQ(rel.size(), 20000u);
  std::vector<Value> key = {Value::Int(0)};
  // i % 997 == 0 for i in {0, 997, ..., 19940}: 21 rows.
  EXPECT_EQ(rel.GetIndex({0}).CountMatches(MakeRow(key)), 21u);
}

TEST(Relation, EraseRowsTombstones) {
  Relation rel("r", 2);
  for (int i = 0; i < 5; ++i) {
    rel.Insert({Value::Int(i), Value::Int(i + 1)});
  }
  Relation dead("d", 2);
  dead.Insert({Value::Int(1), Value::Int(2)});
  dead.Insert({Value::Int(3), Value::Int(4)});
  dead.Insert({Value::Int(99), Value::Int(100)});  // absent: ignored
  EXPECT_EQ(rel.EraseRows(dead), 2u);
  EXPECT_EQ(rel.size(), 3u);
  EXPECT_EQ(rel.slots(), 5u);
  EXPECT_FALSE(rel.Contains(std::vector<Value>{Value::Int(1), Value::Int(2)}));
  EXPECT_TRUE(rel.Contains(std::vector<Value>{Value::Int(0), Value::Int(1)}));
  // Iteration skips tombstones.
  size_t seen = 0;
  rel.ForEachRow([&seen](Row) { ++seen; });
  EXPECT_EQ(seen, 3u);
}

TEST(Relation, IndexSkipsTombstonedRows) {
  Relation rel("r", 2);
  rel.Insert({Value::Int(1), Value::Int(10)});
  rel.Insert({Value::Int(1), Value::Int(11)});
  const Index& index = rel.GetIndex({0});
  std::vector<Value> key = {Value::Int(1)};
  EXPECT_EQ(index.CountMatches(Row(key.data(), 1)), 2u);
  Relation dead("d", 2);
  dead.Insert({Value::Int(1), Value::Int(10)});
  EXPECT_EQ(rel.EraseRows(dead), 1u);
  EXPECT_EQ(index.CountMatches(Row(key.data(), 1)), 1u);
  // Indexes built AFTER erasure also exclude the tombstones.
  EXPECT_EQ(rel.GetIndex({1}).CountMatches(
                std::vector<Value>{Value::Int(10)}),
            0u);
}

TEST(Relation, ReinsertAfterErase) {
  Relation rel("r", 1);
  rel.Insert({Value::Int(7)});
  Relation dead("d", 1);
  dead.Insert({Value::Int(7)});
  EXPECT_EQ(rel.EraseRows(dead), 1u);
  EXPECT_TRUE(rel.Insert({Value::Int(7)}));  // comes back as a new slot
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel.slots(), 2u);
  EXPECT_TRUE(rel.Contains(std::vector<Value>{Value::Int(7)}));
  // Erasing again works on the new slot.
  EXPECT_EQ(rel.EraseRows(dead), 1u);
  EXPECT_EQ(rel.size(), 0u);
}

TEST(Relation, EraseZeroArity) {
  Relation rel("flag", 0);
  rel.Insert(Row{});
  Relation dead("d", 0);
  dead.Insert(Row{});
  EXPECT_EQ(rel.EraseRows(dead), 1u);
  EXPECT_EQ(rel.size(), 0u);
  EXPECT_FALSE(rel.Contains(Row{}));
  EXPECT_EQ(rel.EraseRows(dead), 0u);
}

TEST(Relation, DebugStringSkipsTombstones) {
  SymbolTable symbols;
  Relation rel("p", 1);
  rel.Insert({symbols.Intern("keep")});
  rel.Insert({symbols.Intern("drop")});
  Relation dead("d", 1);
  dead.Insert({symbols.Intern("drop")});
  rel.EraseRows(dead);
  EXPECT_EQ(rel.DebugString(symbols), "p(keep)\n");
}

// ---- Database ----------------------------------------------------------------

TEST(Database, CreateAndFind) {
  Database db;
  StatusOr<Relation*> r = db.CreateRelation("edge", 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(db.Find("edge"), *r);
  EXPECT_EQ(db.Find("missing"), nullptr);
  // Idempotent with matching arity.
  StatusOr<Relation*> again = db.CreateRelation("edge", 2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *r);
}

TEST(Database, ArityMismatchRejected) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("edge", 2).ok());
  StatusOr<Relation*> bad = db.CreateRelation("edge", 3);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(Database, AddFactInterns) {
  Database db;
  ASSERT_TRUE(db.AddFact("likes", {"ann", "bob"}).ok());
  ASSERT_TRUE(db.AddFact("likes", {"bob", "cal"}).ok());
  const Relation* rel = db.Find("likes");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->size(), 2u);
  Value ann;
  EXPECT_TRUE(db.symbols().TryFind("ann", &ann));
}

TEST(Database, DropRemoves) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("tmp", 1).ok());
  db.Drop("tmp");
  EXPECT_EQ(db.Find("tmp"), nullptr);
  db.Drop("never_existed");  // no-op
}

TEST(Database, RelationNamesSortedAndTotals) {
  Database db;
  ASSERT_TRUE(db.AddFact("b", {"x"}).ok());
  ASSERT_TRUE(db.AddFact("a", {"x", "y"}).ok());
  ASSERT_TRUE(db.AddFact("a", {"y", "z"}).ok());
  EXPECT_EQ(db.RelationNames(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(db.TotalTuples(), 3u);
}

// ---- Concurrency and rollback primitives ---------------------------------

TEST(SymbolTable, ConcurrentInterningIsConsistent) {
  // Session threads intern overlapping symbol sets while readers resolve
  // names — the service layer's exact access pattern. Run under TSan (CI
  // thread-sanitize job) this exercises the table's reader/writer guard.
  SymbolTable table;
  constexpr int kThreads = 8;
  constexpr int kSymbols = 200;
  std::vector<std::vector<Value>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t].reserve(kSymbols);
      for (int i = 0; i < kSymbols; ++i) {
        // All threads intern the same names in different orders.
        int idx = (i * 7 + t * 13) % kSymbols;
        Value v = table.Intern(StrCat("sym", idx));
        seen[t].push_back(v);
        // Interleave reads: NameOf must already resolve.
        EXPECT_EQ(table.NameOf(v.symbol_id()), StrCat("sym", idx));
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every thread resolved each name to the same id.
  for (int i = 0; i < kSymbols; ++i) {
    int idx = (i * 7) % kSymbols;
    Value expect = table.Intern(StrCat("sym", idx));
    for (int t = 0; t < kThreads; ++t) {
      int their_idx = (i * 7 + t * 13) % kSymbols;
      EXPECT_EQ(seen[t][i], table.Intern(StrCat("sym", their_idx)));
    }
    (void)expect;
  }
}

TEST(ShardedSink, ClearReleasesAccountantCharge) {
  MemoryAccountant accountant;
  ShardedSink sink(2);
  sink.SetAccountant(&accountant);
  ASSERT_EQ(accountant.bytes(), 0u);
  for (int i = 0; i < 100; ++i) {
    Value row[2] = {Value::Int(i), Value::Int(i + 1)};
    ASSERT_TRUE(sink.Insert(Row(row, 2)));
  }
  EXPECT_EQ(sink.size(), 100u);
  const size_t charged = accountant.bytes();
  EXPECT_GT(charged, 0u);
  // Duplicate inserts are rejected and must not charge again.
  Value dup[2] = {Value::Int(0), Value::Int(1)};
  EXPECT_FALSE(sink.Insert(Row(dup, 2)));
  EXPECT_EQ(accountant.bytes(), charged);

  sink.Clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(accountant.bytes(), 0u);

  // The sink stays usable after Clear, and re-staged rows re-charge.
  EXPECT_TRUE(sink.Insert(Row(dup, 2)));
  EXPECT_GT(accountant.bytes(), 0u);
  sink.Clear();
  EXPECT_EQ(accountant.bytes(), 0u);
}

TEST(Relation, TruncateToSlotsRebuildsIndexes) {
  SymbolTable symbols;
  Relation rel("r", 2);
  Value a = symbols.Intern("a");
  Value b = symbols.Intern("b");
  Value c = symbols.Intern("c");
  rel.Insert({a, b});
  rel.Insert({b, c});
  // Build an index before the truncation point moves.
  const Index& index = rel.GetIndex({0});
  EXPECT_EQ(index.CountMatches(Row(&a, 1)), 1u);
  const size_t checkpoint = rel.slots();

  rel.Insert({a, c});
  rel.Insert({c, c});
  EXPECT_EQ(rel.GetIndex({0}).CountMatches(Row(&a, 1)), 2u);

  rel.TruncateToSlots(checkpoint);
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.slots(), checkpoint);
  // Indexes were dropped with the truncated slots; the lazy rebuild must
  // not resurrect rows past the truncation point.
  EXPECT_EQ(rel.GetIndex({0}).CountMatches(Row(&a, 1)), 1u);
  EXPECT_EQ(rel.GetIndex({0}).CountMatches(Row(&c, 1)), 0u);
  EXPECT_FALSE(rel.Contains(Row(std::vector<Value>{a, c}.data(), 2)));

  // Reinserting a truncated row works and the index tracks it again.
  EXPECT_TRUE(rel.Insert({a, c}));
  EXPECT_EQ(rel.GetIndex({0}).CountMatches(Row(&a, 1)), 2u);
}

TEST(Relation, TruncateToSlotsDropsTombstoneState) {
  SymbolTable symbols;
  Relation rel("r", 1);
  Value a = symbols.Intern("a");
  Value b = symbols.Intern("b");
  rel.Insert({a});
  const size_t checkpoint = rel.slots();
  rel.Insert({b});
  // Tombstone `a`, then truncate past the erase: the checkpointed slot
  // stays tombstoned (truncation only removes slots, it does not revive
  // them) but the later insert goes away.
  Relation dead("dead", 1);
  dead.Insert({a});
  EXPECT_EQ(rel.EraseRows(dead), 1u);
  rel.TruncateToSlots(checkpoint);
  EXPECT_EQ(rel.slots(), checkpoint);
  EXPECT_EQ(rel.size(), 0u);
  EXPECT_FALSE(rel.Contains(Row(&b, 1)));
}

}  // namespace
}  // namespace seprec
