// Conjunctive-query containment and the Theorem 2.1 reproduction: two
// expansion strings of a separable recursion with equal per-class
// derivation projections define the same relation.
#include "datalog/containment.h"

#include <gtest/gtest.h>

#include <map>

#include "datalog/parser.h"
#include "gen/workloads.h"
#include "separable/detection.h"

namespace seprec {
namespace {

ConjunctiveQuery MakeCq(const std::string& head_atom,
                        const std::string& body_program) {
  // body_program: "h :- a(...), b(...)." style is overkill; accept a list
  // of atoms as a fact-free program "q1(X, Y). q2(Y, Z)." where each
  // clause head is an atom of the conjunction.
  ConjunctiveQuery q;
  Program p = ParseProgramOrDie(body_program);
  for (const Rule& rule : p.rules) {
    q.atoms.push_back(rule.head);
  }
  q.head = ParseAtomOrDie(head_atom).args;
  return q;
}

TEST(Containment, IdenticalQueries) {
  ConjunctiveQuery q = MakeCq("h(X, Y)", "e(X, Y).");
  auto result = Equivalent(q, q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result);
}

TEST(Containment, RenamedVariablesEquivalent) {
  ConjunctiveQuery a = MakeCq("h(X, Y)", "e(X, W). e(W, Y).");
  ConjunctiveQuery b = MakeCq("h(X, Y)", "e(X, U). e(U, Y).");
  auto result = Equivalent(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result);
}

TEST(Containment, ShorterPathContainsLonger) {
  // Classic: the 1-edge query contains nothing extra... in fact
  // e(X, Y) and e(X, W), e(W, Y) are incomparable as queries on
  // distinguished (X, Y). But e(X, W) (Y projected away differently):
  // use the textbook example of redundant atoms instead.
  ConjunctiveQuery minimal = MakeCq("h(X, Y)", "e(X, Y).");
  ConjunctiveQuery redundant = MakeCq("h(X, Y)", "e(X, Y). e(X, W).");
  // Every answer of `redundant` is an answer of `minimal`...
  auto forward = Contains(minimal, redundant);
  ASSERT_TRUE(forward.ok());
  EXPECT_TRUE(*forward);
  // ...and vice versa here, since e(X, Y) witnesses e(X, W) with W = Y.
  auto backward = Contains(redundant, minimal);
  ASSERT_TRUE(backward.ok());
  EXPECT_TRUE(*backward);
}

TEST(Containment, PathLengthsIncomparable) {
  ConjunctiveQuery one = MakeCq("h(X, Y)", "e(X, Y).");
  ConjunctiveQuery two = MakeCq("h(X, Y)", "e(X, W). e(W, Y).");
  auto a = Contains(one, two);
  auto b = Contains(two, one);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(*a);
  EXPECT_FALSE(*b);
}

TEST(Containment, ConstantsMustMatch) {
  ConjunctiveQuery tom = MakeCq("h(Y)", "e(tom, Y).");
  ConjunctiveQuery ann = MakeCq("h(Y)", "e(ann, Y).");
  ConjunctiveQuery any = MakeCq("h(Y)", "e(X, Y).");
  EXPECT_FALSE(*Contains(tom, ann));
  EXPECT_TRUE(*Contains(any, tom));   // generalisation contains instance
  EXPECT_FALSE(*Contains(tom, any));
}

TEST(Containment, DistinguishedVariablesFixed) {
  // h(X) with body e(X): contained in h(X) with body e(Y)? The latter is
  // unsafe-ish (head var not in body) -> never contains anything.
  ConjunctiveQuery good = MakeCq("h(X)", "e(X).");
  ConjunctiveQuery detached = MakeCq("h(X)", "e(Y).");
  EXPECT_FALSE(*Contains(detached, good));
}

TEST(Containment, HeadArityMismatchRejected) {
  ConjunctiveQuery a = MakeCq("h(X)", "e(X).");
  ConjunctiveQuery b = MakeCq("h(X, X)", "e(X).");
  EXPECT_FALSE(Contains(a, b).ok());
}

// ---- Theorem 2.1 -----------------------------------------------------------

// Projection of a derivation onto an equivalence class: the subsequence of
// its rule indices belonging to that class.
std::vector<std::vector<size_t>> ClassProjections(
    const SeparableRecursion& sep, const std::vector<size_t>& derivation) {
  std::vector<std::vector<size_t>> projections(sep.classes.size());
  for (size_t rule : derivation) {
    projections[sep.class_of_rule[rule]].push_back(rule);
  }
  return projections;
}

TEST(Theorem21, EqualClassProjectionsDefineSameRelation) {
  // Example 1.2 has two classes; derivations that interleave the classes
  // differently but keep each class's subsequence equal must be
  // equivalent conjunctive queries.
  Program program = Example12Program();
  auto sep = AnalyzeSeparable(program, "buys");
  ASSERT_TRUE(sep.ok());
  Atom query = ParseAtomOrDie("buys(X, Y)");
  auto exp = Expand(program, query, 4);
  ASSERT_TRUE(exp.ok());

  std::map<std::vector<std::vector<size_t>>, std::vector<size_t>> groups;
  for (size_t i = 0; i < exp->size(); ++i) {
    groups[ClassProjections(*sep, (*exp)[i].derivation)].push_back(i);
  }

  size_t nontrivial_groups = 0;
  size_t pairs_checked = 0;
  for (const auto& [projection, members] : groups) {
    if (members.size() < 2) continue;
    ++nontrivial_groups;
    ConjunctiveQuery first = FromExpansion((*exp)[members[0]], query);
    for (size_t i = 1; i < members.size(); ++i) {
      ConjunctiveQuery other = FromExpansion((*exp)[members[i]], query);
      auto equivalent = Equivalent(first, other);
      ASSERT_TRUE(equivalent.ok());
      EXPECT_TRUE(*equivalent)
          << "strings differ:\n  " << (*exp)[members[0]].ToString()
          << "\n  " << (*exp)[members[i]].ToString();
      ++pairs_checked;
    }
  }
  // Depth 4 over 2 classes has many interleavings: e.g. derivations
  // [0 1], [1 0] share projections ([0], [1]).
  EXPECT_GE(nontrivial_groups, 3u);
  EXPECT_GE(pairs_checked, 5u);
}

TEST(Theorem21, DifferentProjectionsUsuallyDiffer) {
  Program program = Example12Program();
  Atom query = ParseAtomOrDie("buys(X, Y)");
  auto exp = Expand(program, query, 2);
  ASSERT_TRUE(exp.ok());
  // derivation [0] (one friend hop) vs [0,0] (two): not equivalent.
  const ExpansionString* one = nullptr;
  const ExpansionString* two = nullptr;
  for (const ExpansionString& s : *exp) {
    if (s.derivation == std::vector<size_t>{0}) one = &s;
    if (s.derivation == std::vector<size_t>{0, 0}) two = &s;
  }
  ASSERT_NE(one, nullptr);
  ASSERT_NE(two, nullptr);
  auto equivalent = Equivalent(FromExpansion(*one, query),
                               FromExpansion(*two, query));
  ASSERT_TRUE(equivalent.ok());
  EXPECT_FALSE(*equivalent);
}

TEST(Theorem21, HoldsOnThreeClassRecursion) {
  Program p = ParseProgramOrDie(
      "t(A, B, C) :- f(A, W) & t(W, B, C).\n"
      "t(A, B, C) :- g(B, W) & t(A, W, C).\n"
      "t(A, B, C) :- h(C, W) & t(A, B, W).\n"
      "t(A, B, C) :- t0(A, B, C).");
  auto sep = AnalyzeSeparable(p, "t");
  ASSERT_TRUE(sep.ok());
  Atom query = ParseAtomOrDie("t(A, B, C)");
  auto exp = Expand(p, query, 3);
  ASSERT_TRUE(exp.ok());
  std::map<std::vector<std::vector<size_t>>, std::vector<size_t>> groups;
  for (size_t i = 0; i < exp->size(); ++i) {
    groups[ClassProjections(*sep, (*exp)[i].derivation)].push_back(i);
  }
  size_t checked = 0;
  for (const auto& [projection, members] : groups) {
    for (size_t i = 1; i < members.size(); ++i) {
      auto equivalent =
          Equivalent(FromExpansion((*exp)[members[0]], query),
                     FromExpansion((*exp)[members[i]], query));
      ASSERT_TRUE(equivalent.ok());
      EXPECT_TRUE(*equivalent);
      ++checked;
    }
  }
  EXPECT_GE(checked, 10u);
}

}  // namespace
}  // namespace seprec
