// The Lemma 2.1 source-to-source rewrite: structure matches the paper's
// Example 2.4 listing, and the rewritten program defines the same
// relation for t.
#include "separable/rewrite.h"

#include <gtest/gtest.h>

#include "core/compiler.h"
#include "datalog/parser.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "separable/engine.h"

namespace seprec {
namespace {

TEST(PartialRewrite, Example24Structure) {
  auto sep = AnalyzeSeparable(Example24Program(), "t");
  ASSERT_TRUE(sep.ok());
  auto rewrite = RewritePartialSelection(Example24Program(), *sep,
                                         ParseAtomOrDie("t(c, Y, Z)"));
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  EXPECT_EQ(rewrite->part_predicate, "t_part");
  EXPECT_EQ(rewrite->full_predicate, "t_full");
  EXPECT_EQ(rewrite->removed_class, 0u);  // the {0,1} class of the a-rule

  const std::string text = rewrite->program.ToString();
  // The paper's Example 2.4 shape: t_part keeps only the b-rule, t_full
  // keeps both, glue routes t through t_part and a & t_full.
  EXPECT_NE(text.find("t_part(V0, V1, V2) :- t_part(V0, V1, Q1_0), "
                      "b(Q1_0, V2)."),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("t_part(V0, V1, V2) :- a("), std::string::npos)
      << "t_part must not contain the removed class's rule";
  EXPECT_NE(text.find("t_full(V0, V1, V2) :- a(V0, V1, Q0_0, Q0_1), "
                      "t_full(Q0_0, Q0_1, V2)."),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("t(V0, V1, V2) :- t_part(V0, V1, V2)."),
            std::string::npos);
  EXPECT_NE(text.find("t(V0, V1, V2) :- a(V0, V1, Q0_0, Q0_1), "
                      "t_full(Q0_0, Q0_1, V2)."),
            std::string::npos)
      << text;
}

TEST(PartialRewrite, RejectsFullAndUnboundSelections) {
  auto sep = AnalyzeSeparable(Example24Program(), "t");
  ASSERT_TRUE(sep.ok());
  EXPECT_FALSE(RewritePartialSelection(Example24Program(), *sep,
                                       ParseAtomOrDie("t(c, d, Z)"))
                   .ok());
  EXPECT_FALSE(RewritePartialSelection(Example24Program(), *sep,
                                       ParseAtomOrDie("t(X, Y, Z)"))
                   .ok());
  EXPECT_FALSE(RewritePartialSelection(Example24Program(), *sep,
                                       ParseAtomOrDie("t(c, Y)"))
                   .ok());
}

TEST(PartialRewrite, RewrittenProgramDefinesSameRelation) {
  auto sep = AnalyzeSeparable(Example24Program(), "t");
  ASSERT_TRUE(sep.ok());
  auto rewrite = RewritePartialSelection(Example24Program(), *sep,
                                         ParseAtomOrDie("t(x0, Y, Z)"));
  ASSERT_TRUE(rewrite.ok());

  for (size_t n : {3u, 6u}) {
    // Whole-relation equality, not just the selected part (Lemma 2.1
    // proves the transformed recursion computes the same t).
    Database db1, db2;
    MakeExample24Data(&db1, n);
    MakeExample24Data(&db2, n);
    auto qp1 = QueryProcessor::Create(Example24Program());
    auto qp2 = QueryProcessor::Create(rewrite->program);
    ASSERT_TRUE(qp1.ok());
    ASSERT_TRUE(qp2.ok()) << qp2.status().ToString();
    Atom all = ParseAtomOrDie("t(X, Y, Z)");
    auto r1 = qp1->Answer(all, &db1, Strategy::kSemiNaive);
    auto r2 = qp2->Answer(all, &db2, Strategy::kSemiNaive);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r1->answer.ToStrings(db1.symbols()),
              r2->answer.ToStrings(db2.symbols()))
        << "n=" << n;
  }
}

TEST(PartialRewrite, SelectionsBecomeFullOnRewrittenPredicates) {
  // The point of the lemma: on the rewritten program, the original
  // constants reach t_part in persistent columns (full) and t_full with
  // its class completely bound (full).
  auto sep = AnalyzeSeparable(Example24Program(), "t");
  ASSERT_TRUE(sep.ok());
  auto rewrite = RewritePartialSelection(Example24Program(), *sep,
                                         ParseAtomOrDie("t(c, Y, Z)"));
  ASSERT_TRUE(rewrite.ok());

  auto part = AnalyzeSeparable(rewrite->program, "t_part");
  ASSERT_TRUE(part.ok()) << part.status().ToString();
  // Columns 0 and 1 are persistent in t_part: the selection on column 0
  // is full.
  EXPECT_EQ(ClassifySelection(*part, ParseAtomOrDie("t_part(c, Y, Z)")),
            SelectionKind::kFull);

  auto full = AnalyzeSeparable(rewrite->program, "t_full");
  ASSERT_TRUE(full.ok());
  // Binding both class columns of t_full (as SIP through `a` does) is full.
  EXPECT_EQ(ClassifySelection(*full, ParseAtomOrDie("t_full(u, v, Z)")),
            SelectionKind::kFull);
}

TEST(PartialRewrite, QueriesAgreeAcrossEnginesOnRewrittenProgram) {
  auto sep = AnalyzeSeparable(Example24Program(), "t");
  ASSERT_TRUE(sep.ok());
  Atom query = ParseAtomOrDie("t(x0, Y, Z)");
  auto rewrite =
      RewritePartialSelection(Example24Program(), *sep, query);
  ASSERT_TRUE(rewrite.ok());
  auto qp = QueryProcessor::Create(rewrite->program);
  ASSERT_TRUE(qp.ok());
  std::vector<std::vector<std::string>> results;
  for (Strategy s : {Strategy::kMagic, Strategy::kSemiNaive,
                     Strategy::kQsqr}) {
    Database db;
    MakeExample24Data(&db, 5);
    auto result = qp->Answer(query, &db, s);
    ASSERT_TRUE(result.ok())
        << StrategyToString(s) << ": " << result.status().ToString();
    results.push_back(result->answer.ToStrings(db.symbols()));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
  EXPECT_FALSE(results[0].empty());
}

TEST(PartialRewrite, ShipmentScenario) {
  Program p = ParseProgramOrDie(
      "shipment(O, C, D) :- handoff(O, C, O2, C2) & shipment(O2, C2, D).\n"
      "shipment(O, C, D) :- shipment(O, C, D1) & leg(D1, D).\n"
      "shipment(O, C, D) :- contract(O, C, D).");
  auto sep = AnalyzeSeparable(p, "shipment");
  ASSERT_TRUE(sep.ok());
  auto rewrite = RewritePartialSelection(
      p, *sep, ParseAtomOrDie("shipment(seattle, C, D)"));
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  EXPECT_NE(rewrite->program.ToString().find("shipment_part"),
            std::string::npos);
}

}  // namespace
}  // namespace seprec
