// Parallelism must be invisible: for every program and strategy,
// --threads N returns exactly the serial answers — down to relation slot
// order — and budget trips under parallelism still degrade to sound
// subsets. min_rows_per_task is forced to 1 throughout so the parallel
// paths actually engage on test-sized inputs instead of taking the
// small-round serial shortcut.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/compiler.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "gen/generators.h"
#include "gen/workloads.h"
#include "separable/engine.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace seprec {
namespace {

FixpointOptions ParallelOptions(size_t threads) {
  FixpointOptions options;
  options.limits.parallel.num_threads = threads;
  options.limits.parallel.min_rows_per_task = 1;
  return options;
}

struct Workload {
  std::string name;
  Program program;
  Atom query;
  std::function<void(Database*)> load;
  std::vector<Strategy> strategies;
};

std::vector<Workload> AllWorkloads() {
  std::vector<Workload> workloads;
  workloads.push_back(
      {"tc_chain", TransitiveClosureProgram(), ParseAtomOrDie("tc(v0, Y)"),
       [](Database* db) { MakeChain(db, "edge", "v", 40); },
       {Strategy::kAuto, Strategy::kSeparable, Strategy::kMagic,
        Strategy::kSemiNaive}});
  workloads.push_back(
      {"tc_random", TransitiveClosureProgram(), ParseAtomOrDie("tc(v0, Y)"),
       [](Database* db) {
         MakeRandomGraph(db, "edge", "v", 30, 90, 7);
         // Guarantee v0 reaches the graph so the query is never empty.
         MakeFact(db, "edge", {"v0", "v1"});
       },
       {Strategy::kAuto, Strategy::kSeparable, Strategy::kMagic,
        Strategy::kSemiNaive}});
  workloads.push_back(
      {"example11", Example11Program(), ParseAtomOrDie("buys(a0, Y)"),
       [](Database* db) { MakeExample11Data(db, 10); },
       {Strategy::kAuto, Strategy::kSeparable, Strategy::kMagic,
        Strategy::kSemiNaive}});
  workloads.push_back(
      {"example12", Example12Program(), ParseAtomOrDie("buys(a0, Y)"),
       [](Database* db) { MakeExample12Data(db, 25); },
       {Strategy::kAuto, Strategy::kSeparable, Strategy::kMagic,
        Strategy::kSemiNaive}});
  workloads.push_back(
      {"example24", Example24Program(), ParseAtomOrDie("t(x0, Y, Z)"),
       [](Database* db) { MakeExample24Data(db, 12); },
       {Strategy::kAuto, Strategy::kSeparable, Strategy::kSemiNaive}});
  workloads.push_back(
      {"spk", SpkProgram(2, 2), FirstColumnQuery("t", 2, "c0"),
       [](Database* db) { MakeLemma42Data(db, 2, 2, 4); },
       {Strategy::kAuto, Strategy::kSeparable, Strategy::kSemiNaive}});
  // Same-generation is linear but NOT separable; it exercises the
  // partitioned semi-naive path with a multi-literal recursive rule.
  workloads.push_back(
      {"same_generation", SameGenerationProgram(),
       ParseAtomOrDie("sg(X, Y)"),
       [](Database* db) { MakeSameGenerationData(db, 2, 4); },
       {Strategy::kAuto, Strategy::kSemiNaive}});
  return workloads;
}

std::vector<std::string> AnswersWithThreads(const Workload& w, Strategy s,
                                            size_t threads) {
  auto qp = QueryProcessor::Create(w.program);
  SEPREC_CHECK(qp.ok());
  Database db;
  w.load(&db);
  auto result = qp->Answer(w.query, &db, s, ParallelOptions(threads));
  SEPREC_CHECK(result.ok());
  SEPREC_CHECK(!result->partial);
  return result->answer.ToStrings(db.symbols());
}

TEST(Parallel, ThreadCountIsInvisibleInAnswers) {
  for (const Workload& w : AllWorkloads()) {
    for (Strategy s : w.strategies) {
      auto serial = AnswersWithThreads(w, s, 1);
      EXPECT_FALSE(serial.empty()) << w.name;
      for (size_t threads : {2u, 4u, 8u}) {
        EXPECT_EQ(AnswersWithThreads(w, s, threads), serial)
            << w.name << " strategy " << StrategyToString(s) << " threads "
            << threads;
      }
    }
  }
}

// Stronger than answer equality: the materialised relations must match
// SLOT BY SLOT. Every round merges through the canonically-ordered
// ShardedSink, so insertion order — and with it slot ids, iteration
// counts, and stats — is thread-count-invariant.
TEST(Parallel, SemiNaiveMaterialisesIdenticalSlotOrder) {
  auto materialise = [](size_t threads, EvalStats* stats) {
    auto db = std::make_unique<Database>();
    MakeRandomGraph(db.get(), "edge", "v", 25, 80, 11);
    Status status = EvaluateSemiNaive(TransitiveClosureProgram(), db.get(),
                                      ParallelOptions(threads), stats);
    SEPREC_CHECK(status.ok());
    return db;
  };
  EvalStats serial_stats;
  auto serial = materialise(1, &serial_stats);
  for (size_t threads : {2u, 4u}) {
    EvalStats stats;
    auto parallel = materialise(threads, &stats);
    EXPECT_EQ(stats.iterations, serial_stats.iterations)
        << threads << " threads";
    EXPECT_EQ(stats.max_relation_size, serial_stats.max_relation_size)
        << threads << " threads";
    ASSERT_EQ(parallel->RelationNames(), serial->RelationNames());
    for (const std::string& name : serial->RelationNames()) {
      const Relation* a = serial->Find(name);
      const Relation* b = parallel->Find(name);
      ASSERT_EQ(a->slots(), b->slots()) << name;
      for (size_t slot = 0; slot < a->slots(); ++slot) {
        Row ra = a->row(slot);
        Row rb = b->row(slot);
        for (size_t c = 0; c < ra.size(); ++c) {
          ASSERT_EQ(ra[c].bits(), rb[c].bits())
              << name << " slot " << slot << " col " << c << " with "
              << threads << " threads";
        }
      }
    }
  }
}

TEST(Parallel, SeparableSchemaRunsAreThreadCountInvariant) {
  // Example 1.2 has two equivalence classes, so phase 2 does real carry
  // work; the partitioned phase-2 loop must reproduce the serial rounds.
  auto run = [](size_t threads) {
    Database db;
    MakeExample12Data(&db, 30);
    auto result =
        EvaluateWithSeparable(Example12Program(), ParseAtomOrDie("buys(a0, Y)"),
                              &db, ParallelOptions(threads));
    SEPREC_CHECK(result.ok());
    return std::make_tuple(result->answer.ToStrings(db.symbols()),
                           result->stats.iterations, result->schema_runs);
  };
  auto serial = run(1);
  for (size_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(run(threads), serial) << threads << " threads";
  }
}

TEST(Parallel, BudgetTripsDegradeToSoundSubsets) {
  // The PartialAnswersAreSubsetsOfFullAnswers property must survive
  // parallelism: workers poll the governor mid-round, so a budget can trip
  // with rows staged in the sink — those rows still merge, and every one
  // of them is a true tuple (monotone strata).
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  Atom query = ParseAtomOrDie("tc(v0, Y)");

  Database full_db;
  MakeChain(&full_db, "edge", "v", 80);
  auto full = qp->Answer(query, &full_db, Strategy::kAuto, ParallelOptions(4));
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(full->partial);
  std::vector<std::string> full_strings =
      full->answer.ToStrings(full_db.symbols());
  std::sort(full_strings.begin(), full_strings.end());

  struct Trip {
    std::string name;
    std::function<void(FixpointOptions*)> apply;
  };
  std::vector<Trip> trips;
  for (size_t budget : {2u, 4u, 8u, 16u}) {
    trips.push_back({StrCat("iterations=", budget),
                     [budget](FixpointOptions* o) {
                       o->limits.max_iterations = budget;
                     }});
  }
  for (size_t budget : {1u << 10, 1u << 12, 1u << 14}) {
    trips.push_back({StrCat("bytes=", budget), [budget](FixpointOptions* o) {
                       o->limits.max_bytes = budget;
                     }});
  }
  trips.push_back({"deadline=0ms", [](FixpointOptions* o) {
                     o->limits.timeout_ms = 0;
                   }});

  bool saw_partial = false;
  for (const Trip& trip : trips) {
    Database db;
    MakeChain(&db, "edge", "v", 80);
    const std::vector<std::string> names_before = db.RelationNames();
    FixpointOptions options = ParallelOptions(4);
    trip.apply(&options);
    auto limited = qp->Answer(query, &db, Strategy::kAuto, options);
    ASSERT_TRUE(limited.ok()) << trip.name;
    std::vector<std::string> subset = limited->answer.ToStrings(db.symbols());
    std::sort(subset.begin(), subset.end());
    EXPECT_TRUE(std::includes(full_strings.begin(), full_strings.end(),
                              subset.begin(), subset.end()))
        << trip.name;
    if (limited->partial) {
      saw_partial = true;
      // Rollback left no trace of the truncated parallel attempt.
      EXPECT_EQ(db.RelationNames(), names_before) << trip.name;
    }
  }
  EXPECT_TRUE(saw_partial);
}

TEST(Parallel, GovernorPollFailpointFiresDuringParallelRounds) {
  // Workers poll ShouldStop between plan executions, so the governor.poll
  // site is evaluated from pool threads mid-round; arming it injects a
  // cancellation that must surface as CANCELLED (direct engine contract)
  // after a clean worker shutdown.
  FailpointSpec spec;
  spec.skip = 5;
  ScopedFailpoint fp("governor.poll", spec);
  Database db;
  MakeChain(&db, "edge", "v", 40);
  Status status = EvaluateSemiNaive(TransitiveClosureProgram(), &db,
                                    ParallelOptions(4));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCancelled) << status.ToString();
  EXPECT_GE(Failpoints::FireCount("governor.poll"), 1u);
}

TEST(Parallel, MinRowsPerTaskGatesButNeverChangesResults) {
  // Sweeping the serial-shortcut threshold across "always parallel",
  // "sometimes", and "never" must not move a single answer.
  auto qp = QueryProcessor::Create(TransitiveClosureProgram());
  ASSERT_TRUE(qp.ok());
  Atom query = ParseAtomOrDie("tc(v0, Y)");
  std::vector<std::string> expected;
  for (size_t min_rows : {1u, 4u, 64u, 100000u}) {
    Database db;
    MakeRandomGraph(&db, "edge", "v", 20, 60, 3);
    FixpointOptions options;
    options.limits.parallel.num_threads = 4;
    options.limits.parallel.min_rows_per_task = min_rows;
    auto result = qp->Answer(query, &db, Strategy::kSemiNaive, options);
    ASSERT_TRUE(result.ok());
    std::vector<std::string> answers = result->answer.ToStrings(db.symbols());
    if (expected.empty()) {
      expected = answers;
      ASSERT_FALSE(expected.empty());
    } else {
      EXPECT_EQ(answers, expected) << "min_rows_per_task " << min_rows;
    }
  }
}

}  // namespace
}  // namespace seprec
