#include "magic/engine.h"
#include "magic/magic_transform.h"

#include <gtest/gtest.h>

#include "core/query.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "gen/generators.h"
#include "gen/workloads.h"

namespace seprec {
namespace {

// Answers via plain semi-naive materialisation + selection: the reference.
Answer ReferenceAnswer(const Program& program, const Atom& query,
                       Database* db) {
  Status status = EvaluateSemiNaive(program, db);
  SEPREC_CHECK(status.ok());
  const Relation* rel = db->Find(query.predicate);
  SEPREC_CHECK(rel != nullptr);
  return SelectMatching(*rel, query, db->symbols());
}

TEST(MagicTransform, AdornmentOfQuery) {
  EXPECT_EQ(AdornmentOf(ParseAtomOrDie("t(tom, Y)")), "bf");
  EXPECT_EQ(AdornmentOf(ParseAtomOrDie("t(X, Y)")), "ff");
  EXPECT_EQ(AdornmentOf(ParseAtomOrDie("t(a, 3, Z)")), "bbf");
}

TEST(MagicTransform, Example12MatchesPaperRules) {
  // The paper (Section 4) shows for buys(tom, Y)? on Example 1.2:
  //   magic(tom).
  //   magic(W) :- magic(X) & friend(X, W).
  //   buys(X, Y) :- magic(X) & perfectFor(X, Y).
  //   buys(X, Y) :- magic(X) & friend(X, W) & buys(W, Y).
  //   buys(X, Y) :- magic(X) & buys(X, Z) & cheaper(Y, Z).
  auto rewrite = MagicTransform(Example12Program(),
                                ParseAtomOrDie("buys(tom, Y)"));
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  const std::string text = rewrite->program.ToString();
  EXPECT_NE(text.find("magic_buys_bf(tom)."), std::string::npos) << text;
  // One magic rule per recursive occurrence with a bound first column. The
  // friend rule propagates the binding; the cheaper rule's occurrence keeps
  // the same binding (X is bound in the head).
  EXPECT_NE(text.find("magic_buys_bf(W) :- magic_buys_bf(X), friend(X, W)."),
            std::string::npos)
      << text;
  EXPECT_EQ(rewrite->answer_predicate, "buys_bf");
  EXPECT_EQ(rewrite->rewritten_query.ToString(), "buys_bf(tom, Y)");
  EXPECT_TRUE(rewrite->magic_predicates.count("magic_buys_bf"));
}

TEST(MagicTransform, RejectsEdbQuery) {
  EXPECT_FALSE(
      MagicTransform(Example11Program(), ParseAtomOrDie("friend(a, B)")).ok());
}

TEST(MagicTransform, RejectsArityMismatch) {
  EXPECT_FALSE(
      MagicTransform(Example11Program(), ParseAtomOrDie("buys(a)")).ok());
}

TEST(MagicTransform, AllFreeQueryStillWorks) {
  Database db;
  MakeExample11Data(&db, 5);
  auto run = EvaluateWithMagic(Example11Program(),
                               ParseAtomOrDie("buys(X, Y)"), &db);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  Database ref_db;
  MakeExample11Data(&ref_db, 5);
  Answer expected =
      ReferenceAnswer(Example11Program(), ParseAtomOrDie("buys(X, Y)"),
                      &ref_db);
  EXPECT_EQ(run->answer, expected);
}

TEST(MagicEngine, Example11Answer) {
  Database db;
  MakeExample11Data(&db, 10);
  auto run = EvaluateWithMagic(Example11Program(),
                               ParseAtomOrDie("buys(a0, Y)"), &db);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->answer.size(), 1u);
  EXPECT_EQ(run->answer.ToStrings(db.symbols())[0], "(a0, b)");
  // The engine times its whole run (transform + fixpoint + harvest), not
  // just the last nested fixpoint.
  EXPECT_GT(run->stats.seconds, 0.0);
}

TEST(MagicEngine, AgreesWithSemiNaiveOnChainTc) {
  for (size_t n : {2u, 5u, 12u}) {
    Database db1, db2;
    MakeChain(&db1, "edge", "v", n);
    MakeChain(&db2, "edge", "v", n);
    Atom query = ParseAtomOrDie("tc(v0, Y)");
    auto run = EvaluateWithMagic(TransitiveClosureProgram(), query, &db1);
    ASSERT_TRUE(run.ok());
    Answer expected = ReferenceAnswer(TransitiveClosureProgram(), query, &db2);
    EXPECT_EQ(run->answer, expected) << "n=" << n;
  }
}

TEST(MagicEngine, AgreesOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Database db1, db2;
    MakeRandomGraph(&db1, "edge", "v", 20, 40, seed);
    MakeRandomGraph(&db2, "edge", "v", 20, 40, seed);
    Atom query = ParseAtomOrDie("tc(v3, Y)");
    auto run = EvaluateWithMagic(TransitiveClosureProgram(), query, &db1);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->answer,
              ReferenceAnswer(TransitiveClosureProgram(), query, &db2));
  }
}

TEST(MagicEngine, SameGenerationBoundQuery) {
  Database db1, db2;
  MakeSameGenerationData(&db1, 2, 4);
  MakeSameGenerationData(&db2, 2, 4);
  Atom query = ParseAtomOrDie("sg(s7, Y)");
  auto run = EvaluateWithMagic(SameGenerationProgram(), query, &db1);
  ASSERT_TRUE(run.ok());
  Answer expected = ReferenceAnswer(SameGenerationProgram(), query, &db2);
  EXPECT_EQ(run->answer, expected);
  EXPECT_FALSE(run->answer.empty());
}

TEST(MagicEngine, FocusesOnReachablePart) {
  // Two disconnected chains; querying inside one must not materialise
  // reachability tuples for the other.
  Database db;
  MakeChain(&db, "edge", "left", 30);
  MakeChain(&db, "edge", "right", 30);
  auto run = EvaluateWithMagic(TransitiveClosureProgram(),
                               ParseAtomOrDie("tc(left20, Y)"), &db);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->answer.size(), 9u);  // left21..left29
  // The adorned tc relation holds only tuples reachable from left20.
  EXPECT_LE(run->stats.relation_sizes.at("tc_bf"), 9u * 10u);
  EXPECT_LT(run->stats.max_relation_size, 100u);
}

TEST(MagicEngine, SecondColumnBinding) {
  Database db1, db2;
  MakeChain(&db1, "edge", "v", 8);
  MakeChain(&db2, "edge", "v", 8);
  Atom query = ParseAtomOrDie("tc(X, v7)");
  auto run = EvaluateWithMagic(TransitiveClosureProgram(), query, &db1);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->answer,
            ReferenceAnswer(TransitiveClosureProgram(), query, &db2));
  EXPECT_EQ(run->answer.size(), 7u);
}

TEST(MagicEngine, BothColumnsBound) {
  Database db;
  MakeChain(&db, "edge", "v", 8);
  auto yes = EvaluateWithMagic(TransitiveClosureProgram(),
                               ParseAtomOrDie("tc(v1, v5)"), &db);
  ASSERT_TRUE(yes.ok());
  EXPECT_EQ(yes->answer.size(), 1u);
  Database db2;
  MakeChain(&db2, "edge", "v", 8);
  auto no = EvaluateWithMagic(TransitiveClosureProgram(),
                              ParseAtomOrDie("tc(v5, v1)"), &db2);
  ASSERT_TRUE(no.ok());
  EXPECT_TRUE(no->answer.empty());
}

TEST(MagicEngine, ConstantAbsentFromDatabase) {
  Database db;
  MakeChain(&db, "edge", "v", 5);
  auto run = EvaluateWithMagic(TransitiveClosureProgram(),
                               ParseAtomOrDie("tc(ghost, Y)"), &db);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->answer.empty());
}

TEST(MagicEngine, MultiLevelIdb) {
  // Magic through a non-recursive IDB layer.
  Program p = ParseProgramOrDie(
      "link(X, Y) :- raw(X, Y).\n"
      "link(X, Y) :- raw(Y, X).\n"
      "tc(X, Y) :- link(X, Y).\n"
      "tc(X, Y) :- link(X, W), tc(W, Y).");
  Database db1, db2;
  MakeChain(&db1, "raw", "v", 6);
  MakeChain(&db2, "raw", "v", 6);
  Atom query = ParseAtomOrDie("tc(v2, Y)");
  auto run = EvaluateWithMagic(p, query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer, ReferenceAnswer(p, query, &db2));
}

TEST(MagicEngine, RepeatedQueryVariable) {
  Database db1, db2;
  MakeCycle(&db1, "edge", "v", 4);
  MakeCycle(&db2, "edge", "v", 4);
  Atom query = ParseAtomOrDie("tc(X, X)");  // nodes on cycles
  auto run = EvaluateWithMagic(TransitiveClosureProgram(), query, &db1);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->answer,
            ReferenceAnswer(TransitiveClosureProgram(), query, &db2));
  EXPECT_EQ(run->answer.size(), 4u);
}

}  // namespace
}  // namespace seprec
