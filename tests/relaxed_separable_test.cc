// Section 5: relaxing condition 4 keeps the Separable algorithm correct
// but costs the selection's focus.
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "core/query.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"
#include "gen/generators.h"
#include "separable/detection.h"
#include "separable/engine.h"

namespace seprec {
namespace {

// The paper's Section 5 example: removing t leaves a(X, W) and b(Z, Y) —
// two components.
Program Section5Program() {
  return ParseProgramOrDie(
      "t(X, Y) :- a(X, W) & t(W, Z) & b(Z, Y).\n"
      "t(X, Y) :- t0(X, Y).");
}

void LoadSection5Data(Database* db, size_t n) {
  MakeChain(db, "a", "x", n);
  MakeChain(db, "b", "y", n);
  MakeFact(db, "t0", {NodeName("x", n - 1), NodeName("y", 0)});
}

Answer ReferenceAnswer(const Program& program, const Atom& query,
                       Database* db) {
  Status status = EvaluateSemiNaive(program, db);
  SEPREC_CHECK(status.ok());
  return SelectMatching(*db->Find(query.predicate), query, db->symbols());
}

TEST(RelaxedSeparable, StrictDetectionRejects) {
  EXPECT_FALSE(IsSeparable(Section5Program(), "t"));
}

TEST(RelaxedSeparable, RelaxedDetectionAccepts) {
  SeparabilityOptions options;
  options.require_connected_bodies = false;
  auto sep = AnalyzeSeparable(Section5Program(), "t", options);
  ASSERT_TRUE(sep.ok()) << sep.status().ToString();
  // One class covering both columns (the a/b parts touch columns 0 and 1
  // and t^h = t^b = {0, 1}).
  ASSERT_EQ(sep->classes.size(), 1u);
  EXPECT_EQ(sep->classes[0].positions, (std::vector<uint32_t>{0, 1}));
}

TEST(RelaxedSeparable, CorrectOnPartialSelection) {
  SeparabilityOptions options;
  options.require_connected_bodies = false;
  auto sep = AnalyzeSeparable(Section5Program(), "t", options);
  ASSERT_TRUE(sep.ok());
  for (size_t n : {3u, 5u, 8u}) {
    Database db1, db2;
    LoadSection5Data(&db1, n);
    LoadSection5Data(&db2, n);
    Atom query = ParseAtomOrDie("t(x0, Y)");
    auto run = EvaluateWithSeparable(Section5Program(), *sep, query, &db1);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    Answer expected = ReferenceAnswer(Section5Program(), query, &db2);
    EXPECT_EQ(run->answer, expected) << "n=" << n;
    EXPECT_FALSE(run->answer.empty()) << "n=" << n;
  }
}

TEST(RelaxedSeparable, CorrectOnFullSelection) {
  SeparabilityOptions options;
  options.require_connected_bodies = false;
  auto sep = AnalyzeSeparable(Section5Program(), "t", options);
  ASSERT_TRUE(sep.ok());
  Database db1, db2;
  LoadSection5Data(&db1, 6);
  LoadSection5Data(&db2, 6);
  Atom query = ParseAtomOrDie("t(x0, y5)");
  auto run = EvaluateWithSeparable(Section5Program(), *sep, query, &db1);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->answer, ReferenceAnswer(Section5Program(), query, &db2));
  EXPECT_EQ(run->answer.size(), 1u);
}

TEST(RelaxedSeparable, LosesFocusButStaysCorrect) {
  // The paper: "we will examine the entire b relation". With the
  // selection on column 0 only, the binding evaluation must touch every b
  // tuple: the bindings relation is Omega(|b|).
  SeparabilityOptions options;
  options.require_connected_bodies = false;
  auto sep = AnalyzeSeparable(Section5Program(), "t", options);
  ASSERT_TRUE(sep.ok());
  Database db;
  LoadSection5Data(&db, 30);
  Atom query = ParseAtomOrDie("t(x0, Y)");
  auto run = EvaluateWithSeparable(Section5Program(), *sep, query, &db);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->used_partial_rewrite);
  EXPECT_GE(run->stats.relation_sizes.at("bindings"), 29u);
}

TEST(RelaxedSeparable, ProcessorOptionWiresThrough) {
  ProcessorOptions options;
  options.separability.require_connected_bodies = false;
  auto qp = QueryProcessor::Create(Section5Program(), options);
  ASSERT_TRUE(qp.ok());
  EXPECT_NE(qp->FindSeparable("t"), nullptr);
  EXPECT_EQ(qp->Decide(ParseAtomOrDie("t(x0, Y)")).strategy,
            Strategy::kSeparable);
  // Default (strict) processor falls back to Magic.
  auto strict = QueryProcessor::Create(Section5Program());
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->Decide(ParseAtomOrDie("t(x0, Y)")).strategy,
            Strategy::kMagic);
}

TEST(RelaxedSeparable, RandomDataAgreement) {
  SeparabilityOptions options;
  options.require_connected_bodies = false;
  auto sep = AnalyzeSeparable(Section5Program(), "t", options);
  ASSERT_TRUE(sep.ok());
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Database db1, db2;
    for (Database* db : {&db1, &db2}) {
      MakeRandomGraph(db, "a", "n", 12, 20, seed);
      MakeRandomGraph(db, "b", "n", 12, 20, seed + 50);
      MakeRandomGraph(db, "t0", "n", 12, 10, seed + 100);
    }
    Atom query = ParseAtomOrDie("t(n0, Y)");
    auto run = EvaluateWithSeparable(Section5Program(), *sep, query, &db1);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->answer, ReferenceAnswer(Section5Program(), query, &db2))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace seprec
