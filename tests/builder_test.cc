#include "datalog/builder.h"

#include <gtest/gtest.h>

#include "core/compiler.h"
#include "datalog/parser.h"
#include "eval/fixpoint.h"

namespace seprec {
namespace {

TEST(Builder, TransitiveClosure) {
  Program p = ProgramBuilder()
                  .Fact("edge", {"a", "b"})
                  .Fact("edge", {"b", "c"})
                  .Rule("tc", {"X", "Y"})
                      .Body("edge", {"X", "Y"})
                      .End()
                  .Rule("tc", {"X", "Y"})
                      .Body("edge", {"X", "W"})
                      .Body("tc", {"W", "Y"})
                      .End()
                  .Build();
  EXPECT_EQ(p.ToString(),
            "edge(a, b).\n"
            "edge(b, c).\n"
            "tc(X, Y) :- edge(X, Y).\n"
            "tc(X, Y) :- edge(X, W), tc(W, Y).\n");
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  Database db;
  auto result = qp->Answer(ParseAtomOrDie("tc(a, Y)"), &db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answer.size(), 2u);
}

TEST(Builder, BuiltinsNegationAndAggregates) {
  Program p =
      ProgramBuilder()
          .Rule("eligible", {"X"})
              .Body("person", {"X"})
              .Not("banned", {"X"})
              .End()
          .Rule("double", {"X", "D"})
              .Body("n", {"X"})
              .Let("D", Expr::Binary(Expr::Op::kMul,
                                     Expr::Leaf(Term::Var("X")),
                                     Expr::Leaf(Term::Int(2))))
              .Compare("X", CmpOp::kGt, "0")
              .End()
          .Rule("deg", {"X", "N"})
              .Body("edge", {"X", "N"})
              .Aggregate(AggregateSpec::Op::kCount, 1)
              .End()
          .Build();
  EXPECT_EQ(p.rules[0].ToString(),
            "eligible(X) :- person(X), not banned(X).");
  EXPECT_EQ(p.rules[1].ToString(),
            "double(X, D) :- n(X), D is (X * 2), X > 0.");
  EXPECT_EQ(p.rules[2].ToString(), "deg(X, count(N)) :- edge(X, N).");
  // The built program round-trips through the parser.
  Program reparsed = ParseProgramOrDie(p.ToString());
  EXPECT_EQ(reparsed.ToString(), p.ToString());
}

TEST(Builder, TokenClassification) {
  Program p = ProgramBuilder()
                  .Rule("mix", {"Var", "sym", "42"})
                      .Body("src", {"Var", "sym", "42"})
                      .End()
                  .Build();
  const Atom& head = p.rules[0].head;
  EXPECT_TRUE(head.args[0].IsVar());
  EXPECT_EQ(head.args[1].kind, Term::Kind::kSymbol);
  EXPECT_EQ(head.args[2].int_value, 42);
}

TEST(Builder, AddEscapeHatch) {
  Rule handwritten = ParseProgramOrDie("p(X) :- q(X).").rules[0];
  Program p = ProgramBuilder().Add(handwritten).Build();
  EXPECT_EQ(p.rules.size(), 1u);
}

TEST(Builder, BuiltProgramEvaluates) {
  Program p = ProgramBuilder()
                  .Fact("n", {"3"})
                  .Fact("n", {"-1"})
                  .Rule("double", {"X", "D"})
                      .Body("n", {"X"})
                      .Let("D", Expr::Binary(Expr::Op::kMul,
                                             Expr::Leaf(Term::Var("X")),
                                             Expr::Leaf(Term::Int(2))))
                      .Compare("X", CmpOp::kGt, "0")
                      .End()
                  .Build();
  Database db;
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.Find("double")->DebugString(db.symbols()),
            "double(3, 6)\n");
}

}  // namespace
}  // namespace seprec
