#include "core/compiler.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "gen/generators.h"
#include "gen/workloads.h"

namespace seprec {
namespace {

TEST(QueryProcessor, CreateValidates) {
  EXPECT_FALSE(
      QueryProcessor::Create(ParseProgramOrDie("p(X, Y) :- q(X).")).ok());
  EXPECT_TRUE(QueryProcessor::Create(Example11Program()).ok());
}

TEST(QueryProcessor, DecideSeparable) {
  auto qp = QueryProcessor::Create(Example11Program());
  ASSERT_TRUE(qp.ok());
  auto decision = qp->Decide(ParseAtomOrDie("buys(tom, Y)"));
  EXPECT_EQ(decision.strategy, Strategy::kSeparable);
  EXPECT_NE(decision.reason.find("full selection"), std::string::npos);
}

TEST(QueryProcessor, DecidePartialSelection) {
  auto qp = QueryProcessor::Create(Example24Program());
  ASSERT_TRUE(qp.ok());
  auto decision = qp->Decide(ParseAtomOrDie("t(c, Y, Z)"));
  EXPECT_EQ(decision.strategy, Strategy::kSeparable);
  EXPECT_NE(decision.reason.find("partial"), std::string::npos);
}

TEST(QueryProcessor, DecideMagicForNonSeparable) {
  auto qp = QueryProcessor::Create(SameGenerationProgram());
  ASSERT_TRUE(qp.ok());
  auto decision = qp->Decide(ParseAtomOrDie("sg(a, Y)"));
  EXPECT_EQ(decision.strategy, Strategy::kMagic);
  EXPECT_NE(decision.reason.find("not separable"), std::string::npos);
  EXPECT_FALSE(qp->SeparabilityFailure("sg").empty());
}

TEST(QueryProcessor, DecideSemiNaiveWithoutConstants) {
  auto qp = QueryProcessor::Create(Example11Program());
  ASSERT_TRUE(qp.ok());
  auto decision = qp->Decide(ParseAtomOrDie("buys(X, Y)"));
  EXPECT_EQ(decision.strategy, Strategy::kSemiNaive);
}

TEST(QueryProcessor, DecideEdbAndNonRecursive) {
  Program p = ParseProgramOrDie(
      "view(X, Y) :- base(X, Y).\n"
      "t(X) :- e(X, W) & t(W).\n"
      "t(X) :- t0(X).");
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  EXPECT_EQ(qp->Decide(ParseAtomOrDie("base(a, Y)")).strategy,
            Strategy::kSemiNaive);
  EXPECT_EQ(qp->Decide(ParseAtomOrDie("view(a, Y)")).strategy,
            Strategy::kSemiNaive);
  EXPECT_EQ(qp->Decide(ParseAtomOrDie("t(a)")).strategy,
            Strategy::kSeparable);
}

TEST(QueryProcessor, EdbDirectSelection) {
  auto qp = QueryProcessor::Create(Example11Program());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeExample11Data(&db, 5);
  auto result = qp->Answer(ParseAtomOrDie("friend(a1, Y)"), &db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->answer.size(), 1u);
  EXPECT_EQ(result->answer.ToStrings(db.symbols())[0], "(a1, a2)");
}

TEST(QueryProcessor, UnknownPredicateGivesEmptyAnswer) {
  auto qp = QueryProcessor::Create(Example11Program());
  ASSERT_TRUE(qp.ok());
  Database db;
  auto result = qp->Answer(ParseAtomOrDie("mystery(a)"), &db);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->answer.empty());
}

TEST(QueryProcessor, ArityMismatchRejected) {
  auto qp = QueryProcessor::Create(Example11Program());
  ASSERT_TRUE(qp.ok());
  Database db;
  EXPECT_FALSE(qp->Answer(ParseAtomOrDie("buys(a)"), &db).ok());
}

TEST(QueryProcessor, ForcedStrategyFailsWhenInapplicable) {
  auto qp = QueryProcessor::Create(SameGenerationProgram());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeSameGenerationData(&db, 2, 2);
  auto result =
      qp->Answer(ParseAtomOrDie("sg(s1, Y)"), &db, Strategy::kSeparable);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QueryProcessor, AllStrategiesAgreeOnExample12) {
  auto qp = QueryProcessor::Create(Example12Program());
  ASSERT_TRUE(qp.ok());
  Atom query = ParseAtomOrDie("buys(a0, Y)");
  std::vector<Answer> answers;
  for (Strategy s : {Strategy::kAuto, Strategy::kSeparable, Strategy::kMagic,
                     Strategy::kSemiNaive, Strategy::kNaive}) {
    Database db;
    MakeExample12Data(&db, 7);
    auto result = qp->Answer(query, &db, s);
    ASSERT_TRUE(result.ok())
        << StrategyToString(s) << ": " << result.status().ToString();
    answers.push_back(result->answer);
  }
  for (size_t i = 1; i < answers.size(); ++i) {
    EXPECT_EQ(answers[0], answers[i]);
  }
  EXPECT_EQ(answers[0].size(), 7u);
}

TEST(QueryProcessor, AutoUsesMagicOnSameGeneration) {
  auto qp = QueryProcessor::Create(SameGenerationProgram());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeSameGenerationData(&db, 2, 3);
  auto result = qp->Answer(ParseAtomOrDie("sg(s3, Y)"), &db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->strategy, Strategy::kMagic);
  Database ref;
  MakeSameGenerationData(&ref, 2, 3);
  auto expected =
      qp->Answer(ParseAtomOrDie("sg(s3, Y)"), &ref, Strategy::kSemiNaive);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(result->answer, expected->answer);
}

TEST(QueryProcessor, SemiNaiveFocusesOnDependencies) {
  // Evaluating a query on `left` must not materialise `right`.
  Program p = ParseProgramOrDie(
      "left(X, Y) :- ledge(X, Y).\n"
      "left(X, Y) :- ledge(X, W) & left(W, Y).\n"
      "right(X, Y) :- redge(X, Y).\n"
      "right(X, Y) :- redge(X, W) & right(W, Y).");
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeChain(&db, "ledge", "l", 4);
  MakeChain(&db, "redge", "r", 4);
  auto result =
      qp->Answer(ParseAtomOrDie("left(X, Y)"), &db, Strategy::kSemiNaive);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(db.Find("right"), nullptr);
}

TEST(QueryProcessor, StrategyToStringNames) {
  EXPECT_EQ(StrategyToString(Strategy::kSeparable), "separable");
  EXPECT_EQ(StrategyToString(Strategy::kMagic), "magic");
  EXPECT_EQ(StrategyToString(Strategy::kCounting), "counting");
  EXPECT_EQ(StrategyToString(Strategy::kSemiNaive), "seminaive");
  EXPECT_EQ(StrategyToString(Strategy::kNaive), "naive");
  EXPECT_EQ(StrategyToString(Strategy::kAuto), "auto");
}

TEST(QueryProcessor, ExplainSeparableFullAndPartial) {
  auto qp = QueryProcessor::Create(Example24Program());
  ASSERT_TRUE(qp.ok());
  auto full = qp->Explain(ParseAtomOrDie("t(c, d, Z)"));
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_NE(full->find("strategy : separable"), std::string::npos) << *full;
  EXPECT_NE(full->find("instantiated schema"), std::string::npos);
  auto partial = qp->Explain(ParseAtomOrDie("t(c, Y, Z)"));
  ASSERT_TRUE(partial.ok());
  EXPECT_NE(partial->find("Lemma 2.1"), std::string::npos) << *partial;
}

TEST(QueryProcessor, ExplainMagicShowsRewrite) {
  auto qp = QueryProcessor::Create(SameGenerationProgram());
  ASSERT_TRUE(qp.ok());
  auto text = qp->Explain(ParseAtomOrDie("sg(a, Y)"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("strategy : magic"), std::string::npos);
  EXPECT_NE(text->find("magic_sg_bf"), std::string::npos) << *text;
}

TEST(QueryProcessor, ExplainSemiNaiveListsRules) {
  auto qp = QueryProcessor::Create(Example11Program());
  ASSERT_TRUE(qp.ok());
  auto text = qp->Explain(ParseAtomOrDie("buys(X, Y)"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("strategy : seminaive"), std::string::npos);
  EXPECT_NE(text->find("buys(X, Y) :- friend(X, W), buys(W, Y)."),
            std::string::npos)
      << *text;
  auto edb = qp->Explain(ParseAtomOrDie("friend(a, Y)"));
  ASSERT_TRUE(edb.ok());
  EXPECT_NE(edb->find("base relation"), std::string::npos);
}

TEST(QueryProcessor, ResultCarriesStatsAndReason) {
  auto qp = QueryProcessor::Create(Example11Program());
  ASSERT_TRUE(qp.ok());
  Database db;
  MakeExample11Data(&db, 6);
  auto result = qp->Answer(ParseAtomOrDie("buys(a0, Y)"), &db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->strategy, Strategy::kSeparable);
  EXPECT_FALSE(result->reason.empty());
  EXPECT_EQ(result->stats.algorithm, "separable");
  EXPECT_GT(result->stats.max_relation_size, 0u);
}

}  // namespace
}  // namespace seprec
