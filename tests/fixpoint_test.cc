#include "eval/fixpoint.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "gen/generators.h"
#include "gen/workloads.h"

namespace seprec {
namespace {

size_t TcSizeOfChain(size_t n) { return n * (n - 1) / 2; }

TEST(SemiNaive, TransitiveClosureOnChain) {
  Database db;
  MakeChain(&db, "edge", "v", 6);
  EvalStats stats;
  Status status =
      EvaluateSemiNaive(TransitiveClosureProgram(), &db, {}, &stats);
  ASSERT_TRUE(status.ok()) << status.ToString();
  const Relation* tc = db.Find("tc");
  ASSERT_NE(tc, nullptr);
  EXPECT_EQ(tc->size(), TcSizeOfChain(6));
  EXPECT_EQ(stats.relation_sizes.at("tc"), TcSizeOfChain(6));
  EXPECT_GE(stats.iterations, 5u);
}

TEST(SemiNaive, TransitiveClosureOnCycleTerminates) {
  Database db;
  MakeCycle(&db, "edge", "v", 5);
  EvalStats stats;
  ASSERT_TRUE(
      EvaluateSemiNaive(TransitiveClosureProgram(), &db, {}, &stats).ok());
  // On a cycle every pair is reachable.
  EXPECT_EQ(db.Find("tc")->size(), 25u);
}

TEST(Naive, AgreesWithSemiNaive) {
  for (size_t n : {2u, 3u, 5u, 9u}) {
    Database db1;
    Database db2;
    MakeChain(&db1, "edge", "v", n);
    MakeChain(&db2, "edge", "v", n);
    ASSERT_TRUE(EvaluateSemiNaive(TransitiveClosureProgram(), &db1).ok());
    ASSERT_TRUE(EvaluateNaive(TransitiveClosureProgram(), &db2).ok());
    EXPECT_EQ(db1.Find("tc")->DebugString(db1.symbols()),
              db2.Find("tc")->DebugString(db2.symbols()));
  }
}

TEST(SemiNaive, FactsAndDerivedFacts) {
  Program p = ParseProgramOrDie(
      "parent(ann, bob).\n"
      "parent(bob, cal).\n"
      "anc(X, Y) :- parent(X, Y).\n"
      "anc(X, Y) :- parent(X, W), anc(W, Y).");
  Database db;
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.Find("anc")->size(), 3u);
  EXPECT_EQ(db.Find("parent")->size(), 2u);
}

TEST(SemiNaive, MultipleStrata) {
  Program p = ParseProgramOrDie(
      "link(a, b). link(b, c). link(c, d).\n"
      "reach(X, Y) :- link(X, Y).\n"
      "reach(X, Y) :- link(X, W), reach(W, Y).\n"
      "biconn(X, Y) :- reach(X, Y), reach(Y, X).\n"
      "interesting(X) :- biconn(X, X).");
  Database db;
  EvalStats stats;
  ASSERT_TRUE(EvaluateSemiNaive(p, &db, {}, &stats).ok());
  EXPECT_EQ(db.Find("reach")->size(), 6u);
  EXPECT_EQ(db.Find("biconn")->size(), 0u);
  EXPECT_EQ(db.Find("interesting")->size(), 0u);
}

TEST(SemiNaive, MutuallyRecursivePredicates) {
  Program p = ParseProgramOrDie(
      "zero(0).\n"
      "succ(0, 1). succ(1, 2). succ(2, 3). succ(3, 4).\n"
      "even(X) :- zero(X).\n"
      "even(X) :- succ(Y, X), odd(Y).\n"
      "odd(X) :- succ(Y, X), even(Y).");
  Database db;
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.Find("even")->DebugString(db.symbols()),
            "even(0)\neven(2)\neven(4)\n");
  EXPECT_EQ(db.Find("odd")->DebugString(db.symbols()), "odd(1)\nodd(3)\n");
}

TEST(SemiNaive, ArithmeticCountdown) {
  Program p = ParseProgramOrDie(
      "n(10).\n"
      "n(Y) :- n(X), X > 0, Y is X - 1.");
  Database db;
  ASSERT_TRUE(EvaluateSemiNaive(p, &db).ok());
  EXPECT_EQ(db.Find("n")->size(), 11u);
}

TEST(SemiNaive, MaxIterationsBudget) {
  Program p = ParseProgramOrDie(
      "n(0).\n"
      "n(Y) :- n(X), Y is X + 1.");  // diverges
  Database db;
  FixpointOptions options;
  options.limits.max_iterations = 50;
  EvalStats stats;
  Status status = EvaluateSemiNaive(p, &db, options, &stats);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // Partial results still materialised and reported.
  EXPECT_GE(db.Find("n")->size(), 50u);
  EXPECT_GE(stats.relation_sizes.at("n"), 50u);
}

TEST(SemiNaive, MaxTuplesBudget) {
  Program p = ParseProgramOrDie(
      "n(0).\n"
      "n(Y) :- n(X), Y is X + 1.");
  Database db;
  FixpointOptions options;
  options.limits.max_tuples = 100;
  Status status = EvaluateSemiNaive(p, &db, options);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(SemiNaive, OverflowSurfacesAsOutOfRange) {
  Program p = ParseProgramOrDie(
      "n(1).\n"
      "n(Y) :- n(X), X < 2305843009213693951, Y is X * 2.");
  Database db;
  Status status = EvaluateSemiNaive(p, &db);
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
}

TEST(SemiNaive, EmptyEdbGivesEmptyIdb) {
  Database db;
  EvalStats stats;
  ASSERT_TRUE(
      EvaluateSemiNaive(TransitiveClosureProgram(), &db, {}, &stats).ok());
  EXPECT_EQ(db.Find("tc")->size(), 0u);
}

TEST(SemiNaive, DeltaRelationsAreDropped) {
  Database db;
  MakeChain(&db, "edge", "v", 4);
  ASSERT_TRUE(EvaluateSemiNaive(TransitiveClosureProgram(), &db).ok());
  for (const std::string& name : db.RelationNames()) {
    EXPECT_EQ(name.find("$delta"), std::string::npos) << name;
  }
}

TEST(SemiNaive, NonRecursiveIdbEvaluatedOnce) {
  Program p = ParseProgramOrDie(
      "e(a, b). e(b, c).\n"
      "two_hop(X, Z) :- e(X, Y), e(Y, Z).");
  Database db;
  EvalStats stats;
  ASSERT_TRUE(EvaluateSemiNaive(p, &db, {}, &stats).ok());
  EXPECT_EQ(db.Find("two_hop")->DebugString(db.symbols()),
            "two_hop(a, c)\n");
}

TEST(SemiNaive, RepeatedRunsAreIdempotent) {
  Database db;
  MakeChain(&db, "edge", "v", 5);
  ASSERT_TRUE(EvaluateSemiNaive(TransitiveClosureProgram(), &db).ok());
  size_t first = db.Find("tc")->size();
  ASSERT_TRUE(EvaluateSemiNaive(TransitiveClosureProgram(), &db).ok());
  EXPECT_EQ(db.Find("tc")->size(), first);
}

TEST(SemiNaive, StatsTimerAndTotals) {
  Database db;
  MakeChain(&db, "edge", "v", 10);
  EvalStats stats;
  ASSERT_TRUE(
      EvaluateSemiNaive(TransitiveClosureProgram(), &db, {}, &stats).ok());
  EXPECT_EQ(stats.algorithm, "seminaive");
  EXPECT_EQ(stats.tuples_inserted, TcSizeOfChain(10));
  EXPECT_EQ(stats.max_relation_size, TcSizeOfChain(10));
  EXPECT_GE(stats.seconds, 0.0);
  EXPECT_EQ(stats.TotalRelationSize(), TcSizeOfChain(10));
  EXPECT_NE(stats.ToString().find("seminaive"), std::string::npos);
}

TEST(SemiNaive, SameGeneration) {
  Database db;
  MakeSameGenerationData(&db, 2, 3);
  ASSERT_TRUE(EvaluateSemiNaive(SameGenerationProgram(), &db).ok());
  const Relation* sg = db.Find("sg");
  // Siblings at every level of a binary depth-3 tree: level 1 has 2
  // ordered pairs; deeper levels inherit through up/down.
  EXPECT_GT(sg->size(), 0u);
  // sg is symmetric on this data.
  for (size_t i = 0; i < sg->size(); ++i) {
    Row r = sg->row(i);
    std::vector<Value> rev = {r[1], r[0]};
    EXPECT_TRUE(sg->Contains(Row(rev.data(), 2)));
  }
}

}  // namespace
}  // namespace seprec
