// Tests for the recovery state machine: fresh init, WAL replay,
// checkpointing, torn tails, strict/tolerant corruption handling, and
// manifest damage (DESIGN.md section 12).
#include "storage/recovery.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "storage/io.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace seprec {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::DisarmAll();
    dir_ = StrCat(
        ::testing::TempDir(), "/seprec_recovery_",
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    Failpoints::DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  // Mimics the service's load path: write-ahead, then apply.
  void LogAndApply(DurableStorage* storage, Database* db,
                   const TupleBatch& batch) {
    ASSERT_TRUE(storage->LogBatch(batch).ok());
    StatusOr<size_t> added = ApplyTupleBatch(db, batch);
    ASSERT_TRUE(added.ok()) << added.status().ToString();
  }

  TupleBatch MakeBatch(const std::string& relation, int tag) {
    TupleBatch batch;
    batch.relation = relation;
    batch.arity = 2;
    batch.rows.push_back({TypedCell::Symbol(StrCat("v", tag)),
                          TypedCell::Symbol(StrCat("v", tag + 1))});
    return batch;
  }

  std::string WalPath(int id) { return StrCat(dir_, "/wal-", id, ".log"); }

  void DamageFile(const std::string& path, uint64_t at, char xor_mask) {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open()) << path;
    f.seekg(static_cast<std::streamoff>(at));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(at));
    f.put(static_cast<char>(c ^ xor_mask));
  }

  std::string dir_;
};

TEST_F(RecoveryTest, FreshDirInitialisesWalAndManifest) {
  Database db;
  RecoveryReport report;
  auto storage = DurableStorage::Open(dir_, &db, {}, &report);
  ASSERT_TRUE(storage.ok()) << storage.status().ToString();
  EXPECT_TRUE(report.fresh);
  EXPECT_TRUE(std::filesystem::exists(StrCat(dir_, "/MANIFEST")));
  EXPECT_TRUE(std::filesystem::exists(WalPath(1)));
  EXPECT_EQ((*storage)->wal_bytes(), 0u);

  // Reopening the (empty but initialised) dir is a recovery, not an init.
  storage->reset();
  Database db2;
  auto again = DurableStorage::Open(dir_, &db2, {}, &report);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(report.fresh);
  EXPECT_EQ(report.wal_records_replayed, 0u);
}

TEST_F(RecoveryTest, ReplayRestoresTuplesAndExactGeneration) {
  DurabilityOptions opts;
  opts.fsync = FsyncPolicy::kOff;
  uint64_t live_generation = 0;
  {
    Database db;
    auto storage = DurableStorage::Open(dir_, &db, opts, nullptr);
    ASSERT_TRUE(storage.ok());
    for (int i = 0; i < 4; ++i) {
      LogAndApply(storage->get(), &db, MakeBatch("edge", i));
    }
    // A duplicate batch adds nothing and must not bump the generation —
    // replay has to reproduce that too.
    LogAndApply(storage->get(), &db, MakeBatch("edge", 0));
    live_generation = db.generation();
    ASSERT_EQ(db.Find("edge")->size(), 4u);
  }
  Database restored;
  RecoveryReport report;
  auto storage = DurableStorage::Open(dir_, &restored, opts, &report);
  ASSERT_TRUE(storage.ok()) << storage.status().ToString();
  EXPECT_EQ(report.wal_records_replayed, 5u);
  ASSERT_NE(restored.Find("edge"), nullptr);
  EXPECT_EQ(restored.Find("edge")->size(), 4u);
  EXPECT_EQ(restored.generation(), live_generation);
  EXPECT_EQ(report.generation, live_generation);
}

TEST_F(RecoveryTest, DeleteRecordsReplayToSameStateAndGeneration) {
  DurabilityOptions opts;
  opts.fsync = FsyncPolicy::kOff;
  uint64_t live_generation = 0;
  {
    Database db;
    auto storage = DurableStorage::Open(dir_, &db, opts, nullptr);
    ASSERT_TRUE(storage.ok()) << storage.status().ToString();
    LogAndApply(storage->get(), &db, MakeBatch("edge", 1));
    LogAndApply(storage->get(), &db, MakeBatch("edge", 3));
    // Delete one present row and one miss; then re-delete (a live no-op
    // that must also be a replay no-op — the generation counters would
    // otherwise diverge).
    TupleBatch del = MakeBatch("edge", 1);
    del.op = BatchOp::kDelete;
    del.rows.push_back({TypedCell::Symbol("ghost"),
                        TypedCell::Symbol("ghost")});
    LogAndApply(storage->get(), &db, del);
    LogAndApply(storage->get(), &db, del);
    ASSERT_EQ(db.Find("edge")->size(), 1u);
    live_generation = db.generation();
  }
  Database db2;
  RecoveryReport report;
  auto storage = DurableStorage::Open(dir_, &db2, opts, &report);
  ASSERT_TRUE(storage.ok()) << storage.status().ToString();
  EXPECT_EQ(report.wal_records_replayed, 4u);
  ASSERT_NE(db2.Find("edge"), nullptr);
  EXPECT_EQ(db2.Find("edge")->size(), 1u);
  // The surviving row is the one the deletes never touched.
  std::istringstream probe("v3\tv4\n");
  auto dup = LoadRelationTsv(&db2, "edge", probe);
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(*dup, 0u);
  EXPECT_EQ(db2.generation(), live_generation);
}

TEST_F(RecoveryTest, CheckpointAfterDeletesSnapshotsLiveRowsOnly) {
  DurabilityOptions opts;
  opts.fsync = FsyncPolicy::kOff;
  {
    Database db;
    auto storage = DurableStorage::Open(dir_, &db, opts, nullptr);
    ASSERT_TRUE(storage.ok());
    LogAndApply(storage->get(), &db, MakeBatch("edge", 1));
    LogAndApply(storage->get(), &db, MakeBatch("edge", 3));
    TupleBatch del = MakeBatch("edge", 1);
    del.op = BatchOp::kDelete;
    LogAndApply(storage->get(), &db, del);
    // The snapshot must not resurrect the tombstoned row.
    ASSERT_TRUE((*storage)->Checkpoint(db).ok());
  }
  Database db2;
  RecoveryReport report;
  auto storage = DurableStorage::Open(dir_, &db2, opts, &report);
  ASSERT_TRUE(storage.ok()) << storage.status().ToString();
  EXPECT_EQ(report.wal_records_replayed, 0u);
  ASSERT_NE(db2.Find("edge"), nullptr);
  EXPECT_EQ(db2.Find("edge")->size(), 1u);
}

TEST_F(RecoveryTest, CheckpointRetiresWalAndRecoversFromSnapshot) {
  DurabilityOptions opts;
  opts.fsync = FsyncPolicy::kOff;
  uint64_t live_generation = 0;
  {
    Database db;
    auto storage = DurableStorage::Open(dir_, &db, opts, nullptr);
    ASSERT_TRUE(storage.ok());
    for (int i = 0; i < 3; ++i) {
      LogAndApply(storage->get(), &db, MakeBatch("edge", i));
    }
    EXPECT_GT((*storage)->wal_bytes(), 0u);
    auto info = (*storage)->Checkpoint(db);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info->snapshot_file, "snapshot-2.seprec");
    EXPECT_EQ(info->generation, db.generation());
    EXPECT_GT(info->wal_bytes_truncated, 0u);
    EXPECT_EQ((*storage)->wal_bytes(), 0u);
    // The old epoch's WAL is gone; the new pair is current.
    EXPECT_FALSE(std::filesystem::exists(WalPath(1)));
    EXPECT_TRUE(std::filesystem::exists(WalPath(2)));
    EXPECT_TRUE(std::filesystem::exists(StrCat(dir_, "/snapshot-2.seprec")));
    // Post-checkpoint appends land in the new WAL.
    LogAndApply(storage->get(), &db, MakeBatch("edge", 10));
    live_generation = db.generation();
  }
  Database restored;
  RecoveryReport report;
  auto storage = DurableStorage::Open(dir_, &restored, opts, &report);
  ASSERT_TRUE(storage.ok()) << storage.status().ToString();
  EXPECT_EQ(report.snapshot_file, "snapshot-2.seprec");
  EXPECT_EQ(report.wal_records_replayed, 1u);
  EXPECT_EQ(restored.Find("edge")->size(), 4u);
  EXPECT_EQ(restored.generation(), live_generation);
}

TEST_F(RecoveryTest, FailedCheckpointLeavesOldEpochRecoverable) {
  DurabilityOptions opts;
  opts.fsync = FsyncPolicy::kOff;
  {
    Database db;
    auto storage = DurableStorage::Open(dir_, &db, opts, nullptr);
    ASSERT_TRUE(storage.ok());
    for (int i = 0; i < 3; ++i) {
      LogAndApply(storage->get(), &db, MakeBatch("edge", i));
    }
    // The manifest rename is the commit point; failing there must leave
    // the old snapshot+WAL pair as the durable truth.
    ScopedFailpoint fp("manifest.rename", {});
    EXPECT_FALSE((*storage)->Checkpoint(db).ok());
  }
  Database restored;
  RecoveryReport report;
  auto storage = DurableStorage::Open(dir_, &restored, opts, &report);
  ASSERT_TRUE(storage.ok()) << storage.status().ToString();
  EXPECT_EQ(report.snapshot_file, "");  // still the pre-checkpoint epoch
  EXPECT_EQ(report.wal_records_replayed, 3u);
  EXPECT_EQ(restored.Find("edge")->size(), 3u);
}

TEST_F(RecoveryTest, TornTailTruncatedAndReported) {
  DurabilityOptions opts;
  opts.fsync = FsyncPolicy::kOff;
  {
    Database db;
    auto storage = DurableStorage::Open(dir_, &db, opts, nullptr);
    ASSERT_TRUE(storage.ok());
    LogAndApply(storage->get(), &db, MakeBatch("edge", 1));
  }
  {
    // Simulate a crash mid-append: a full header declaring 64 payload
    // bytes, with only 3 of them on disk before the power went. (An
    // over-cap length would read as corruption, not a torn tail.)
    std::ofstream out(WalPath(1), std::ios::binary | std::ios::app);
    const unsigned char torn[] = {64,   0,    0,    0,     // payload length
                                  0xde, 0xad, 0xbe, 0xef,  // checksum
                                  'p',  'a',  'r'};        // 3 of 64 bytes
    out.write(reinterpret_cast<const char*>(torn), sizeof(torn));
  }
  Database restored;
  RecoveryReport report;
  auto storage = DurableStorage::Open(dir_, &restored, opts, &report);
  ASSERT_TRUE(storage.ok()) << storage.status().ToString();
  EXPECT_EQ(report.torn_bytes_truncated, 11u);
  EXPECT_EQ(report.wal_records_replayed, 1u);
  EXPECT_EQ(restored.Find("edge")->size(), 1u);
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes[0].find("torn"), std::string::npos);
  // The truncation is durable: a second recovery sees a clean log.
  storage->reset();
  Database again;
  auto reopened = DurableStorage::Open(dir_, &again, opts, &report);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(report.torn_bytes_truncated, 0u);
}

TEST_F(RecoveryTest, MidLogCorruptionStrictFailsTolerantTruncates) {
  DurabilityOptions opts;
  opts.fsync = FsyncPolicy::kOff;
  uint64_t second_offset = 0;
  {
    Database db;
    auto storage = DurableStorage::Open(dir_, &db, opts, nullptr);
    ASSERT_TRUE(storage.ok());
    LogAndApply(storage->get(), &db, MakeBatch("edge", 1));
    second_offset = (*storage)->wal_bytes() + kWalHeaderSize;
    LogAndApply(storage->get(), &db, MakeBatch("edge", 2));
    LogAndApply(storage->get(), &db, MakeBatch("edge", 3));
  }
  // Flip a payload byte of the middle record: records after it are
  // intact, so this is mid-log corruption, not a torn tail.
  DamageFile(WalPath(1), second_offset + 10, 0x40);

  Database strict_db;
  auto strict = DurableStorage::Open(dir_, &strict_db, opts, nullptr);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(strict.status().message().find("--recover=tolerant"),
            std::string::npos)
      << strict.status().ToString();

  DurabilityOptions tolerant_opts = opts;
  tolerant_opts.tolerant = true;
  Database tolerant_db;
  RecoveryReport report;
  auto tolerant =
      DurableStorage::Open(dir_, &tolerant_db, tolerant_opts, &report);
  ASSERT_TRUE(tolerant.ok()) << tolerant.status().ToString();
  EXPECT_GT(report.corrupt_bytes_dropped, 0u);
  EXPECT_EQ(report.wal_records_replayed, 1u);  // only the record before
  EXPECT_EQ(tolerant_db.Find("edge")->size(), 1u);
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes[0].find("dropped"), std::string::npos);
}

TEST_F(RecoveryTest, CorruptManifestIsDataLoss) {
  {
    Database db;
    auto storage = DurableStorage::Open(dir_, &db, {}, nullptr);
    ASSERT_TRUE(storage.ok());
  }
  DamageFile(StrCat(dir_, "/MANIFEST"), 22, 0x01);  // a byte inside the body
  Database db;
  auto reopened = DurableStorage::Open(dir_, &db, {}, nullptr);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(reopened.status().message().find("manifest"), std::string::npos)
      << reopened.status().ToString();
}

TEST_F(RecoveryTest, DebrisWithoutManifestRefused) {
  std::filesystem::create_directories(dir_);
  { std::ofstream out(WalPath(1), std::ios::binary); }
  Database db;
  auto storage = DurableStorage::Open(dir_, &db, {}, nullptr);
  ASSERT_FALSE(storage.ok());
  EXPECT_EQ(storage.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(storage.status().message().find("no MANIFEST"),
            std::string::npos)
      << storage.status().ToString();
}

TEST_F(RecoveryTest, WalShorterThanManifestOffsetIsDataLoss) {
  {
    Database db;
    auto storage = DurableStorage::Open(dir_, &db, {}, nullptr);
    ASSERT_TRUE(storage.ok());
  }
  // Shear the WAL below the manifest's replay offset (the 8-byte header):
  // the manifest now points past the end of the file.
  std::filesystem::resize_file(WalPath(1), 4);
  Database db;
  auto reopened = DurableStorage::Open(dir_, &db, {}, nullptr);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
}

TEST_F(RecoveryTest, MissingSnapshotFileIsDataLoss) {
  DurabilityOptions opts;
  opts.fsync = FsyncPolicy::kOff;
  {
    Database db;
    auto storage = DurableStorage::Open(dir_, &db, opts, nullptr);
    ASSERT_TRUE(storage.ok());
    LogAndApply(storage->get(), &db, MakeBatch("edge", 1));
    ASSERT_TRUE((*storage)->Checkpoint(db).ok());
  }
  std::filesystem::remove(StrCat(dir_, "/snapshot-2.seprec"));
  Database db;
  auto reopened = DurableStorage::Open(dir_, &db, opts, nullptr);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(reopened.status().message().find("snapshot"), std::string::npos)
      << reopened.status().ToString();
}

TEST_F(RecoveryTest, ShouldCheckpointTracksWalGrowth) {
  DurabilityOptions opts;
  opts.fsync = FsyncPolicy::kOff;
  opts.checkpoint_bytes = 64;  // tiny threshold
  Database db;
  auto storage = DurableStorage::Open(dir_, &db, opts, nullptr);
  ASSERT_TRUE(storage.ok());
  EXPECT_FALSE((*storage)->ShouldCheckpoint());
  for (int i = 0; i < 4 && !(*storage)->ShouldCheckpoint(); ++i) {
    LogAndApply(storage->get(), &db, MakeBatch("edge", i));
  }
  EXPECT_TRUE((*storage)->ShouldCheckpoint());
  ASSERT_TRUE((*storage)->Checkpoint(db).ok());
  EXPECT_FALSE((*storage)->ShouldCheckpoint());
}

}  // namespace
}  // namespace seprec
