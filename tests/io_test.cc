#include "storage/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/compiler.h"
#include "datalog/parser.h"

namespace seprec {
namespace {

TEST(Io, LoadBasicTsv) {
  Database db;
  std::istringstream in("a\tb\nb\tc\n# comment\n\nc\td\n");
  auto added = LoadRelationTsv(&db, "edge", in);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(*added, 3u);
  const Relation* rel = db.Find("edge");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->arity(), 2u);
  EXPECT_EQ(rel->size(), 3u);
}

TEST(Io, IntegerColumnsBecomeInts) {
  Database db;
  std::istringstream in("alice\t42\nbob\t-7\ncarol\tnot4\n");
  ASSERT_TRUE(LoadRelationTsv(&db, "age", in).ok());
  const Relation* rel = db.Find("age");
  ASSERT_EQ(rel->size(), 3u);
  EXPECT_TRUE(rel->row(0)[1].is_int());
  EXPECT_EQ(rel->row(0)[1].as_int(), 42);
  EXPECT_EQ(rel->row(1)[1].as_int(), -7);
  EXPECT_TRUE(rel->row(2)[1].is_symbol());
}

TEST(Io, DuplicatesDeduplicated) {
  Database db;
  std::istringstream in("a\tb\na\tb\n");
  auto added = LoadRelationTsv(&db, "edge", in);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 1u);
}

TEST(Io, ArityMismatchRejected) {
  Database db;
  std::istringstream in("a\tb\nc\n");
  auto added = LoadRelationTsv(&db, "edge", in);
  EXPECT_FALSE(added.ok());
  EXPECT_EQ(added.status().code(), StatusCode::kInvalidArgument);
}

TEST(Io, ArityMismatchReportsLineNumber) {
  Database db;
  // Comments and blank lines still count towards the reported line number.
  std::istringstream in("a\tb\n# comment\n\nc\n");
  auto added = LoadRelationTsv(&db, "edge", in);
  ASSERT_FALSE(added.ok());
  EXPECT_NE(added.status().message().find("line 4"), std::string::npos)
      << added.status().ToString();
}

TEST(Io, OutOfRangeIntegerRejectedWithLineNumber) {
  Database db;
  std::istringstream in("alice\t42\nbob\t99999999999999999999\n");
  auto added = LoadRelationTsv(&db, "age", in);
  ASSERT_FALSE(added.ok());
  EXPECT_EQ(added.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(added.status().message().find("line 2"), std::string::npos)
      << added.status().ToString();
  EXPECT_NE(added.status().message().find("out of range"), std::string::npos);
  // An in-range 62-bit integer is still accepted as an int.
  Database db2;
  std::istringstream ok_in("x\t2305843009213693951\n");
  ASSERT_TRUE(LoadRelationTsv(&db2, "age", ok_in).ok());
  EXPECT_TRUE(db2.Find("age")->row(0)[1].is_int());
}

TEST(Io, AppendToExistingRelation) {
  Database db;
  ASSERT_TRUE(db.AddFact("edge", {"x", "y"}).ok());
  std::istringstream in("a\tb\n");
  auto added = LoadRelationTsv(&db, "edge", in);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(db.Find("edge")->size(), 2u);
}

TEST(Io, EmptyInputWithoutRelationFails) {
  Database db;
  std::istringstream in("# nothing\n");
  EXPECT_FALSE(LoadRelationTsv(&db, "edge", in).ok());
}

TEST(Io, MalformedMiddleLineAppliesNothing) {
  // Loads are parse-then-apply: a malformed line anywhere in the stream
  // must leave the database byte-for-byte untouched, never a valid prefix.
  Database db;
  ASSERT_TRUE(db.AddFact("edge", {"x", "y"}).ok());
  const uint64_t generation = db.generation();
  std::istringstream in("a\tb\nbroken\nc\td\n");
  EXPECT_FALSE(LoadRelationTsv(&db, "edge", in).ok());
  EXPECT_EQ(db.Find("edge")->size(), 1u);
  EXPECT_EQ(db.generation(), generation);
  // Same for a relation that does not exist yet: it must not be created.
  std::istringstream in2("a\tb\nbroken\n");
  EXPECT_FALSE(LoadRelationTsv(&db, "fresh", in2).ok());
  EXPECT_EQ(db.Find("fresh"), nullptr);
}

TEST(Io, ParseThenApplySplitRoundTrips) {
  Database db;
  std::istringstream in("alice\t42\nbob\t-7\n");
  auto batch = ParseRelationTsv(db, "age", in);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->relation, "age");
  EXPECT_EQ(batch->arity, 2u);
  ASSERT_EQ(batch->rows.size(), 2u);
  // The typing decision is made at parse time, before any apply.
  EXPECT_FALSE(batch->rows[0][0].is_int);
  EXPECT_EQ(batch->rows[0][0].symbol, "alice");
  EXPECT_TRUE(batch->rows[0][1].is_int);
  EXPECT_EQ(batch->rows[0][1].int_value, 42);
  EXPECT_EQ(db.Find("age"), nullptr);  // parse touched nothing

  auto added = ApplyTupleBatch(&db, *batch);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 2u);
  EXPECT_EQ(db.Find("age")->size(), 2u);
  // Re-applying the same batch is idempotent and does not bump the
  // generation (nothing new was added).
  const uint64_t generation = db.generation();
  auto again = ApplyTupleBatch(&db, *batch);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
  EXPECT_EQ(db.generation(), generation);
}

TEST(Io, SaveRoundTrip) {
  Database db;
  std::istringstream in("a\t1\nb\t2\n");
  ASSERT_TRUE(LoadRelationTsv(&db, "r", in).ok());
  std::ostringstream out;
  ASSERT_TRUE(SaveRelationTsv(db, "r", out).ok());
  EXPECT_EQ(out.str(), "a\t1\nb\t2\n");

  Database db2;
  std::istringstream back(out.str());
  ASSERT_TRUE(LoadRelationTsv(&db2, "r", back).ok());
  EXPECT_EQ(db2.Find("r")->size(), 2u);
}

TEST(Io, DeleteBatchErasesAndBumpsGeneration) {
  Database db;
  std::istringstream in("a\tb\nb\tc\nc\td\n");
  ASSERT_TRUE(LoadRelationTsv(&db, "edge", in).ok());
  const uint64_t gen = db.generation();

  TupleBatch del;
  del.relation = "edge";
  del.arity = 2;
  del.op = BatchOp::kDelete;
  del.rows.push_back({TypedCell::Symbol("b"), TypedCell::Symbol("c")});
  del.rows.push_back({TypedCell::Symbol("x"), TypedCell::Symbol("y")});

  std::vector<std::vector<Value>> changed;
  auto removed = ApplyTupleBatch(&db, del, &changed);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  // Only the present row is removed; the miss is ignored, and `changed`
  // reports exactly the effective delta.
  EXPECT_EQ(*removed, 1u);
  EXPECT_EQ(db.Find("edge")->size(), 2u);
  EXPECT_EQ(db.generation(), gen + 1);
  ASSERT_EQ(changed.size(), 1u);

  // Re-applying is a no-op: no erase, no generation bump — the
  // conditional bump is what keeps live apply and WAL replay aligned.
  auto again = ApplyTupleBatch(&db, del, &changed);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
  EXPECT_TRUE(changed.empty());
  EXPECT_EQ(db.generation(), gen + 1);
}

TEST(Io, DeleteFromMissingRelationIsNoop) {
  Database db;
  TupleBatch del;
  del.relation = "ghost";
  del.arity = 1;
  del.op = BatchOp::kDelete;
  del.rows.push_back({TypedCell::Symbol("a")});
  auto removed = ApplyTupleBatch(&db, del);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 0u);
  EXPECT_EQ(db.generation(), 0u);
}

TEST(Io, DeleteArityMismatchRejected) {
  Database db;
  std::istringstream in("a\tb\n");
  ASSERT_TRUE(LoadRelationTsv(&db, "edge", in).ok());
  TupleBatch del;
  del.relation = "edge";
  del.arity = 3;
  del.op = BatchOp::kDelete;
  del.rows.push_back({TypedCell::Symbol("a"), TypedCell::Symbol("b"),
                      TypedCell::Symbol("c")});
  EXPECT_FALSE(ApplyTupleBatch(&db, del).ok());
}

TEST(Io, InsertBatchReportsChangedRows) {
  Database db;
  std::istringstream in("a\tb\n");
  ASSERT_TRUE(LoadRelationTsv(&db, "edge", in).ok());
  TupleBatch ins;
  ins.relation = "edge";
  ins.arity = 2;
  ins.rows.push_back({TypedCell::Symbol("a"), TypedCell::Symbol("b")});
  ins.rows.push_back({TypedCell::Symbol("b"), TypedCell::Symbol("c")});
  std::vector<std::vector<Value>> changed;
  auto added = ApplyTupleBatch(&db, ins, &changed);
  ASSERT_TRUE(added.ok());
  // The duplicate is filtered: only the genuinely new row is the delta.
  EXPECT_EQ(*added, 1u);
  ASSERT_EQ(changed.size(), 1u);
}

TEST(Io, SaveUnknownRelationFails) {
  Database db;
  std::ostringstream out;
  EXPECT_EQ(SaveRelationTsv(db, "ghost", out).code(), StatusCode::kNotFound);
}

TEST(Io, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/seprec_io_test.tsv";
  {
    std::ofstream out(path);
    out << "n0\tn1\nn1\tn2\nn2\tn3\n";
  }
  Database db;
  auto added = LoadRelationTsvFile(&db, "edge", path);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(*added, 3u);

  const std::string out_path = ::testing::TempDir() + "/seprec_io_out.tsv";
  ASSERT_TRUE(SaveRelationTsvFile(db, "edge", out_path).ok());
  Database db2;
  ASSERT_TRUE(LoadRelationTsvFile(&db2, "edge", out_path).ok());
  EXPECT_EQ(db2.Find("edge")->size(), 3u);
  std::remove(path.c_str());
  std::remove(out_path.c_str());
}

TEST(Io, MissingFileIsNotFound) {
  Database db;
  auto added = LoadRelationTsvFile(&db, "edge", "/no/such/file.tsv");
  EXPECT_FALSE(added.ok());
  EXPECT_EQ(added.status().code(), StatusCode::kNotFound);
}

TEST(Io, LoadedDataAnswersQueries) {
  Database db;
  std::istringstream in("a\tb\nb\tc\nc\td\n");
  ASSERT_TRUE(LoadRelationTsv(&db, "edge", in).ok());
  Program p = ParseProgramOrDie(
      "tc(X, Y) :- edge(X, W) & tc(W, Y).\n"
      "tc(X, Y) :- edge(X, Y).");
  auto qp = QueryProcessor::Create(p);
  ASSERT_TRUE(qp.ok());
  auto result = qp->Answer(ParseAtomOrDie("tc(a, Y)"), &db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answer.size(), 3u);
}

}  // namespace
}  // namespace seprec
