#include "server/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "server/json.h"
#include "util/string_util.h"

namespace seprec {

namespace {

// Full-line write with MSG_NOSIGNAL: a client that hung up mid-stream must
// surface as an error on this session's thread, not kill the process.
bool WriteAll(int fd, const std::string& line) {
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n =
        ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool SendJson(int fd, json::Object obj) {
  std::string line = json::Serialize(json::Value(std::move(obj)));
  line.push_back('\n');
  return WriteAll(fd, line);
}

bool SendError(int fd, int64_t id, const Status& status) {
  json::Object obj;
  obj.emplace("id", json::Value(id));
  obj.emplace("ev", json::Value("error"));
  obj.emplace("code",
              json::Value(std::string(StatusCodeToString(status.code()))));
  obj.emplace("message", json::Value(status.message()));
  return SendJson(fd, std::move(obj));
}

StatusOr<Strategy> ParseStrategyName(const std::string& name) {
  if (name.empty() || name == "auto") return Strategy::kAuto;
  if (name == "separable") return Strategy::kSeparable;
  if (name == "magic") return Strategy::kMagic;
  if (name == "counting") return Strategy::kCounting;
  if (name == "qsqr") return Strategy::kQsqr;
  if (name == "nonrecursive") return Strategy::kNonRecursive;
  if (name == "seminaive") return Strategy::kSemiNaive;
  if (name == "naive") return Strategy::kNaive;
  return InvalidArgumentError(StrCat("unknown strategy '", name, "'"));
}

StatusOr<ExecutionLimits> ParseLimits(const json::Value& limits) {
  ExecutionLimits out;
  if (limits.is_null()) return out;
  if (!limits.is_object()) {
    return InvalidArgumentError("'limits' must be an object");
  }
  for (const auto& [key, value] : limits.as_object()) {
    int64_t n = value.as_int(-1);
    if (!value.is_number() || n < 0) {
      return InvalidArgumentError(
          StrCat("limit '", key, "' must be a non-negative number"));
    }
    if (key == "timeout_ms") out.timeout_ms = n;
    else if (key == "max_tuples") out.max_tuples = static_cast<size_t>(n);
    else if (key == "max_bytes") out.max_bytes = static_cast<size_t>(n);
    else if (key == "max_iterations") {
      out.max_iterations = static_cast<size_t>(n);
    } else {
      return InvalidArgumentError(StrCat("unknown limit '", key, "'"));
    }
  }
  return out;
}

}  // namespace

SocketServer::SocketServer(QueryService* service) : service_(service) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start(const std::string& socket_path) {
  socket_path_ = socket_path;
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): Start() runs before any
    // server thread exists, so the static strerror buffer is unshared.
    return InternalError(StrCat("socket(): ", std::strerror(errno)));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InvalidArgumentError(
        StrCat("socket path too long (", socket_path.size(), " bytes): ",
               socket_path));
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  ::unlink(socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status = InternalError(
        // NOLINTNEXTLINE(concurrency-mt-unsafe): pre-thread startup path.
        StrCat("bind(", socket_path, "): ", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status status =
        // NOLINTNEXTLINE(concurrency-mt-unsafe): pre-thread startup path.
        InternalError(StrCat("listen(): ", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SocketServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    std::vector<std::thread> finished;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        break;
      }
      session_fds_.push_back(fd);
      sessions_.emplace_back([this, fd] { Session(fd); });
      finished.swap(finished_);
    }
    // Reap exited sessions: each handle in finished_ was parked there by
    // its own thread on the way out, so these joins return promptly. A
    // long-lived server must not accumulate one unjoined thread (and its
    // kernel resources) per connection ever served.
    for (std::thread& t : finished) t.join();
  }
}

void SocketServer::Session(int fd) {
  if (service_->trace() != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kSession;
    ev.cause = "open";
    ev.detail = StrCat("fd", fd);
    service_->trace()->Emit(ev);
  }
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // client hung up (or Stop() shut the socket down)
    buffer.append(chunk, static_cast<size_t>(n));
    size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (line.empty()) continue;
      HandleLine(fd, line);
    }
    if (buffer.size() > max_line_bytes_) {
      // A client streaming bytes with no '\n' would otherwise grow this
      // buffer without bound; fail the connection before it can exhaust
      // server memory.
      SendError(fd, -1,
                ResourceExhaustedError(StrCat(
                    "request line exceeds ", max_line_bytes_, " bytes")));
      break;
    }
  }
  if (service_->trace() != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kSession;
    ev.cause = "close";
    ev.detail = StrCat("fd", fd);
    service_->trace()->Emit(ev);
  }
  {
    // Deregister before closing so Stop() never shutdown()s a recycled
    // descriptor number.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(session_fds_.begin(), session_fds_.end(), fd);
    if (it != session_fds_.end()) session_fds_.erase(it);
    // Park this thread's own handle on the reap list for the accept loop
    // (or Stop()) to join; absent under Stop(), which already swapped
    // sessions_ out and joins the handle itself.
    const std::thread::id self = std::this_thread::get_id();
    for (auto ts = sessions_.begin(); ts != sessions_.end(); ++ts) {
      if (ts->get_id() == self) {
        finished_.push_back(std::move(*ts));
        sessions_.erase(ts);
        break;
      }
    }
  }
  ::close(fd);
}

void SocketServer::HandleLine(int fd, const std::string& line) {
  StatusOr<json::Value> parsed = json::Parse(line);
  if (!parsed.ok()) {
    SendError(fd, -1, parsed.status());
    return;
  }
  const json::Value& req = *parsed;
  int64_t id = req.Get("id").as_int(-1);
  const std::string& op = req.Get("op").as_string();

  if (op == "ping") {
    json::Object obj;
    obj.emplace("id", json::Value(id));
    obj.emplace("ev", json::Value("done"));
    obj.emplace("ok", json::Value(true));
    SendJson(fd, std::move(obj));
    return;
  }

  if (op == "shutdown") {
    json::Object obj;
    obj.emplace("id", json::Value(id));
    obj.emplace("ev", json::Value("done"));
    obj.emplace("ok", json::Value(true));
    SendJson(fd, std::move(obj));
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
    return;
  }

  if (op == "stats") {
    ServiceStats s = service_->stats();
    json::Object stats;
    stats.emplace("requests", json::Value(s.requests));
    stats.emplace("processor_hits", json::Value(s.processor_hits));
    stats.emplace("processor_misses", json::Value(s.processor_misses));
    stats.emplace("plan_hits", json::Value(s.plan_hits));
    stats.emplace("plan_misses", json::Value(s.plan_misses));
    stats.emplace("closure_hits", json::Value(s.closure_hits));
    stats.emplace("closure_misses", json::Value(s.closure_misses));
    stats.emplace("closure_stores", json::Value(s.closure_stores));
    stats.emplace("processors", json::Value(s.processors));
    stats.emplace("plans", json::Value(s.plans));
    stats.emplace("closures", json::Value(s.closures));
    stats.emplace("generation", json::Value(s.generation));
    json::Object obj;
    obj.emplace("id", json::Value(id));
    obj.emplace("ev", json::Value("done"));
    obj.emplace("ok", json::Value(true));
    obj.emplace("stats", json::Value(std::move(stats)));
    SendJson(fd, std::move(obj));
    return;
  }

  if (op == "checkpoint") {
    StatusOr<CheckpointInfo> info = service_->Checkpoint();
    if (!info.ok()) {
      SendError(fd, id, info.status());
      return;
    }
    json::Object obj;
    obj.emplace("id", json::Value(id));
    obj.emplace("ev", json::Value("done"));
    obj.emplace("ok", json::Value(true));
    obj.emplace("snapshot", json::Value(info->snapshot_file));
    obj.emplace("generation", json::Value(info->generation));
    obj.emplace("wal_bytes_truncated",
                json::Value(info->wal_bytes_truncated));
    SendJson(fd, std::move(obj));
    return;
  }

  if (op == "load") {
    const std::string& relation = req.Get("relation").as_string();
    if (relation.empty()) {
      SendError(fd, id,
                InvalidArgumentError("'load' needs a 'relation' name"));
      return;
    }
    StatusOr<size_t> added = InternalError("unreachable");
    if (req.Has("path")) {
      added = service_->LoadTsvFile(relation, req.Get("path").as_string());
    } else if (req.Get("rows").is_array()) {
      // Inline rows round-trip through the TSV reader so typing (integer
      // vs symbol columns) matches file loads exactly.
      std::ostringstream tsv;
      for (const json::Value& row : req.Get("rows").as_array()) {
        bool first = true;
        for (const json::Value& cell : row.as_array()) {
          if (!first) tsv << '\t';
          first = false;
          if (cell.is_string()) {
            tsv << cell.as_string();
          } else {
            tsv << cell.as_int();
          }
        }
        tsv << '\n';
      }
      std::istringstream in(tsv.str());
      added = service_->LoadTsv(relation, in);
    } else {
      SendError(fd, id,
                InvalidArgumentError("'load' needs 'path' or 'rows'"));
      return;
    }
    if (!added.ok()) {
      SendError(fd, id, added.status());
      return;
    }
    json::Object obj;
    obj.emplace("id", json::Value(id));
    obj.emplace("ev", json::Value("done"));
    obj.emplace("ok", json::Value(true));
    obj.emplace("added", json::Value(*added));
    obj.emplace("generation", json::Value(service_->db()->generation()));
    SendJson(fd, std::move(obj));
    return;
  }

  if (op == "query") {
    ServiceRequest request;
    request.program = req.Get("program").as_string();
    request.query = req.Get("query").as_string();
    if (request.program.empty()) {
      SendError(fd, id, InvalidArgumentError("'query' needs a 'program'"));
      return;
    }
    StatusOr<Strategy> strategy =
        ParseStrategyName(req.Get("strategy").as_string());
    if (!strategy.ok()) {
      SendError(fd, id, strategy.status());
      return;
    }
    request.strategy = *strategy;
    StatusOr<ExecutionLimits> limits = ParseLimits(req.Get("limits"));
    if (!limits.ok()) {
      SendError(fd, id, limits.status());
      return;
    }
    request.limits = *limits;
    if (req.Has("cache")) request.use_cache = req.Get("cache").as_bool(true);
    if (req.Has("optimize")) {
      request.optimize = req.Get("optimize").as_bool(true);
    }

    StatusOr<std::vector<QueryOutcome>> outcomes =
        service_->Execute(request);
    if (!outcomes.ok()) {
      SendError(fd, id, outcomes.status());
      return;
    }
    for (const QueryOutcome& out : *outcomes) {
      {
        json::Object obj;
        obj.emplace("id", json::Value(id));
        obj.emplace("ev", json::Value("begin"));
        obj.emplace("query", json::Value(out.query_text));
        if (!SendJson(fd, std::move(obj))) return;
      }
      for (const std::string& tuple : out.tuples) {
        json::Object obj;
        obj.emplace("id", json::Value(id));
        obj.emplace("ev", json::Value("result"));
        obj.emplace("tuple", json::Value(tuple));
        if (!SendJson(fd, std::move(obj))) return;
      }
      json::Object obj;
      obj.emplace("id", json::Value(id));
      obj.emplace("ev", json::Value("answer"));
      obj.emplace("answers", json::Value(out.result.answer.size()));
      obj.emplace("strategy",
                  json::Value(std::string(
                      StrategyToString(out.result.strategy))));
      obj.emplace("reason", json::Value(out.result.reason));
      obj.emplace("plan_cache",
                  json::Value(out.plan_cache_hit ? "hit" : "miss"));
      obj.emplace("closure_cache",
                  json::Value(out.closure_cache_hit ? "hit" : "miss"));
      obj.emplace("closure_stored", json::Value(out.closure_stored));
      obj.emplace("detections", json::Value(out.detection_passes));
      if (!out.pass_summary.empty()) {
        obj.emplace("passes", json::Value(out.pass_summary));
      }
      obj.emplace("generation", json::Value(out.generation));
      obj.emplace("partial", json::Value(out.result.partial));
      if (out.result.partial && out.result.degradation.has_value()) {
        obj.emplace("cause",
                    json::Value(std::string(StopCauseToString(
                        out.result.degradation->cause))));
      }
      json::Array notes;
      for (const Diagnostic& d : out.result.diagnostics) {
        json::Object note;
        note.emplace("code", json::Value(d.code));
        note.emplace("message", json::Value(d.message));
        notes.emplace_back(std::move(note));
      }
      if (!notes.empty()) {
        obj.emplace("notes", json::Value(std::move(notes)));
      }
      obj.emplace("seconds", json::Value(out.seconds));
      if (!SendJson(fd, std::move(obj))) return;
    }
    json::Object obj;
    obj.emplace("id", json::Value(id));
    obj.emplace("ev", json::Value("done"));
    obj.emplace("ok", json::Value(true));
    SendJson(fd, std::move(obj));
    return;
  }

  SendError(fd, id,
            InvalidArgumentError(StrCat("unknown op '", op, "'")));
}

void SocketServer::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

bool SocketServer::WaitFor(int ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return shutdown_cv_.wait_for(lock, std::chrono::milliseconds(ms),
                               [this] { return shutdown_requested_; });
}

void SocketServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
    // Sessions deregister their fd before closing it, so everything here
    // is still open; shutdown() unblocks their recv() without racing the
    // close.
    for (int fd : session_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (listen_fd_ >= 0) {
    // shutdown() unblocks accept(); close() alone does not on Linux. The
    // close and the listen_fd_ = -1 write wait for the join: the accept
    // loop re-reads listen_fd_ on every iteration, and closing early
    // could hand accept() a recycled descriptor number.
    ::shutdown(listen_fd_, SHUT_RDWR);
    // Sandboxed kernels (gVisor-style) reject that shutdown with
    // ENOTCONN and leave accept() blocked forever, so also wake the
    // loop with a throwaway connection: accept() returns it, the loop
    // sees stopping_ (already set above) and discards the fd. If the
    // backlog is full a wake-up is already queued, so the non-blocking
    // connect may fail freely; on mainline Linux the shut-down listener
    // refuses the connect and the shutdown alone did the waking.
    int wake = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (wake >= 0) {
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (socket_path_.size() < sizeof(addr.sun_path)) {
        std::memcpy(addr.sun_path, socket_path_.c_str(),
                    socket_path_.size() + 1);
        ::connect(wake, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
      }
      ::close(wake);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.swap(sessions_);
    for (std::thread& t : finished_) sessions.push_back(std::move(t));
    finished_.clear();
  }
  for (std::thread& t : sessions) {
    if (t.joinable()) t.join();
  }
  if (!socket_path_.empty()) ::unlink(socket_path_.c_str());
}

}  // namespace seprec
