#include "server/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "server/json.h"
#include "util/string_util.h"

namespace seprec {

namespace {

// Full-line write with MSG_NOSIGNAL: a client that hung up mid-stream must
// surface as an error on this session's thread, not kill the process.
bool WriteAll(int fd, const std::string& line) {
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n =
        ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// Serialises and writes one response line under the connection's write
// mutex. Locking per line (not per request) keeps a long result stream
// from starving a subscription push aimed at the same connection.
bool SendJson(int fd, std::mutex& write_mu, json::Object obj) {
  std::string line = json::Serialize(json::Value(std::move(obj)));
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(write_mu);
  return WriteAll(fd, line);
}

bool SendError(int fd, std::mutex& write_mu, int64_t id,
               const Status& status) {
  json::Object obj;
  obj.emplace("id", json::Value(id));
  obj.emplace("ev", json::Value("error"));
  obj.emplace("code",
              json::Value(std::string(StatusCodeToString(status.code()))));
  obj.emplace("message", json::Value(status.message()));
  return SendJson(fd, write_mu, std::move(obj));
}

StatusOr<Strategy> ParseStrategyName(const std::string& name) {
  if (name.empty() || name == "auto") return Strategy::kAuto;
  if (name == "separable") return Strategy::kSeparable;
  if (name == "magic") return Strategy::kMagic;
  if (name == "counting") return Strategy::kCounting;
  if (name == "qsqr") return Strategy::kQsqr;
  if (name == "nonrecursive") return Strategy::kNonRecursive;
  if (name == "seminaive") return Strategy::kSemiNaive;
  if (name == "naive") return Strategy::kNaive;
  return InvalidArgumentError(StrCat("unknown strategy '", name, "'"));
}

StatusOr<ExecutionLimits> ParseLimits(const json::Value& limits) {
  ExecutionLimits out;
  if (limits.is_null()) return out;
  if (!limits.is_object()) {
    return InvalidArgumentError("'limits' must be an object");
  }
  for (const auto& [key, value] : limits.as_object()) {
    int64_t n = value.as_int(-1);
    if (!value.is_number() || n < 0) {
      return InvalidArgumentError(
          StrCat("limit '", key, "' must be a non-negative number"));
    }
    if (key == "timeout_ms") out.timeout_ms = n;
    else if (key == "max_tuples") out.max_tuples = static_cast<size_t>(n);
    else if (key == "max_bytes") out.max_bytes = static_cast<size_t>(n);
    else if (key == "max_iterations") {
      out.max_iterations = static_cast<size_t>(n);
    } else {
      return InvalidArgumentError(StrCat("unknown limit '", key, "'"));
    }
  }
  return out;
}

}  // namespace

SocketServer::SocketServer(QueryService* service) : service_(service) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start(const std::string& socket_path) {
  socket_path_ = socket_path;
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): Start() runs before any
    // server thread exists, so the static strerror buffer is unshared.
    return InternalError(StrCat("socket(): ", std::strerror(errno)));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InvalidArgumentError(
        StrCat("socket path too long (", socket_path.size(), " bytes): ",
               socket_path));
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  ::unlink(socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status = InternalError(
        // NOLINTNEXTLINE(concurrency-mt-unsafe): pre-thread startup path.
        StrCat("bind(", socket_path, "): ", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status status =
        // NOLINTNEXTLINE(concurrency-mt-unsafe): pre-thread startup path.
        InternalError(StrCat("listen(): ", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SocketServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    std::vector<std::thread> finished;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        break;
      }
      session_fds_.push_back(fd);
      sessions_.emplace_back([this, fd] { Session(fd); });
      finished.swap(finished_);
    }
    // Reap exited sessions: each handle in finished_ was parked there by
    // its own thread on the way out, so these joins return promptly. A
    // long-lived server must not accumulate one unjoined thread (and its
    // kernel resources) per connection ever served.
    for (std::thread& t : finished) t.join();
  }
}

void SocketServer::Session(int fd) {
  if (service_->trace() != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kSession;
    ev.cause = "open";
    ev.detail = StrCat("fd", fd);
    service_->trace()->Emit(ev);
  }
  auto conn = std::make_shared<Conn>();
  conn->fd = fd;
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // client hung up (or Stop() shut the socket down)
    buffer.append(chunk, static_cast<size_t>(n));
    size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (line.empty()) continue;
      HandleLine(conn, line);
    }
    if (buffer.size() > max_line_bytes_) {
      // A client streaming bytes with no '\n' would otherwise grow this
      // buffer without bound; fail the connection before it can exhaust
      // server memory.
      SendError(fd, conn->write_mu, -1,
                ResourceExhaustedError(StrCat(
                    "request line exceeds ", max_line_bytes_, " bytes")));
      break;
    }
  }
  // Drop this connection's subscriptions BEFORE closing the fd: the
  // registry waits out any in-flight notify sweep (subs_mu_), so no push
  // can land on a recycled descriptor number.
  DropSubscriptionsFor(conn.get());
  if (service_->trace() != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kSession;
    ev.cause = "close";
    ev.detail = StrCat("fd", fd);
    service_->trace()->Emit(ev);
  }
  {
    // Deregister before closing so Stop() never shutdown()s a recycled
    // descriptor number.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find(session_fds_.begin(), session_fds_.end(), fd);
    if (it != session_fds_.end()) session_fds_.erase(it);
    // Park this thread's own handle on the reap list for the accept loop
    // (or Stop()) to join; absent under Stop(), which already swapped
    // sessions_ out and joins the handle itself.
    const std::thread::id self = std::this_thread::get_id();
    for (auto ts = sessions_.begin(); ts != sessions_.end(); ++ts) {
      if (ts->get_id() == self) {
        finished_.push_back(std::move(*ts));
        sessions_.erase(ts);
        break;
      }
    }
  }
  ::close(fd);
}

void SocketServer::HandleLine(const std::shared_ptr<Conn>& conn,
                              const std::string& line) {
  const int fd = conn->fd;
  std::mutex& wmu = conn->write_mu;
  StatusOr<json::Value> parsed = json::Parse(line);
  if (!parsed.ok()) {
    SendError(fd, wmu, -1, parsed.status());
    return;
  }
  const json::Value& req = *parsed;
  int64_t id = req.Get("id").as_int(-1);
  const std::string& op = req.Get("op").as_string();

  if (op == "ping") {
    json::Object obj;
    obj.emplace("id", json::Value(id));
    obj.emplace("ev", json::Value("done"));
    obj.emplace("ok", json::Value(true));
    SendJson(fd, wmu, std::move(obj));
    return;
  }

  if (op == "shutdown") {
    json::Object obj;
    obj.emplace("id", json::Value(id));
    obj.emplace("ev", json::Value("done"));
    obj.emplace("ok", json::Value(true));
    SendJson(fd, wmu, std::move(obj));
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
    return;
  }

  if (op == "stats") {
    ServiceStats s = service_->stats();
    json::Object stats;
    stats.emplace("requests", json::Value(s.requests));
    stats.emplace("processor_hits", json::Value(s.processor_hits));
    stats.emplace("processor_misses", json::Value(s.processor_misses));
    stats.emplace("plan_hits", json::Value(s.plan_hits));
    stats.emplace("plan_misses", json::Value(s.plan_misses));
    stats.emplace("closure_hits", json::Value(s.closure_hits));
    stats.emplace("closure_misses", json::Value(s.closure_misses));
    stats.emplace("closure_stores", json::Value(s.closure_stores));
    stats.emplace("closure_patches", json::Value(s.closure_patches));
    stats.emplace("closure_drops", json::Value(s.closure_drops));
    stats.emplace("processors", json::Value(s.processors));
    stats.emplace("plans", json::Value(s.plans));
    stats.emplace("closures", json::Value(s.closures));
    stats.emplace("generation", json::Value(s.generation));
    {
      std::lock_guard<std::mutex> lock(subs_mu_);
      stats.emplace("subscriptions", json::Value(subs_.size()));
    }
    json::Object obj;
    obj.emplace("id", json::Value(id));
    obj.emplace("ev", json::Value("done"));
    obj.emplace("ok", json::Value(true));
    obj.emplace("stats", json::Value(std::move(stats)));
    SendJson(fd, wmu, std::move(obj));
    return;
  }

  if (op == "checkpoint") {
    StatusOr<CheckpointInfo> info = service_->Checkpoint();
    if (!info.ok()) {
      SendError(fd, wmu, id, info.status());
      return;
    }
    json::Object obj;
    obj.emplace("id", json::Value(id));
    obj.emplace("ev", json::Value("done"));
    obj.emplace("ok", json::Value(true));
    obj.emplace("snapshot", json::Value(info->snapshot_file));
    obj.emplace("generation", json::Value(info->generation));
    obj.emplace("wal_bytes_truncated",
                json::Value(info->wal_bytes_truncated));
    SendJson(fd, wmu, std::move(obj));
    return;
  }

  if (op == "load") {
    const std::string& relation = req.Get("relation").as_string();
    if (relation.empty()) {
      SendError(fd, wmu, id,
                InvalidArgumentError("'load' needs a 'relation' name"));
      return;
    }
    const std::string& mode = req.Get("mode").as_string();
    BatchOp batch_op = BatchOp::kInsert;
    if (mode == "delete") {
      batch_op = BatchOp::kDelete;
    } else if (!mode.empty() && mode != "insert") {
      SendError(fd, wmu, id,
                InvalidArgumentError(StrCat(
                    "unknown load mode '", mode,
                    "' (expected 'insert' or 'delete')")));
      return;
    }
    StatusOr<size_t> changed = InternalError("unreachable");
    if (req.Has("path")) {
      changed = service_->ApplyTsvFile(relation, batch_op,
                                       req.Get("path").as_string());
    } else if (req.Get("rows").is_array()) {
      // Inline rows round-trip through the TSV reader so typing (integer
      // vs symbol columns) matches file loads exactly.
      std::ostringstream tsv;
      for (const json::Value& row : req.Get("rows").as_array()) {
        bool first = true;
        for (const json::Value& cell : row.as_array()) {
          if (!first) tsv << '\t';
          first = false;
          if (cell.is_string()) {
            tsv << cell.as_string();
          } else {
            tsv << cell.as_int();
          }
        }
        tsv << '\n';
      }
      std::istringstream in(tsv.str());
      changed = service_->ApplyTsv(relation, batch_op, in);
    } else {
      SendError(fd, wmu, id,
                InvalidArgumentError("'load' needs 'path' or 'rows'"));
      return;
    }
    if (!changed.ok()) {
      SendError(fd, wmu, id, changed.status());
      return;
    }
    json::Object obj;
    obj.emplace("id", json::Value(id));
    obj.emplace("ev", json::Value("done"));
    obj.emplace("ok", json::Value(true));
    // "added" predates delete mode; it repeats "changed" so existing
    // clients keep working.
    obj.emplace("added", json::Value(*changed));
    obj.emplace("changed", json::Value(*changed));
    obj.emplace("generation", json::Value(service_->db()->generation()));
    SendJson(fd, wmu, std::move(obj));
    // Push subscription deltas AFTER the mutator's ack: its thread does
    // the fan-out, so its next request waits for the sweep, but the
    // mutation itself is acknowledged promptly.
    if (*changed > 0) NotifySubscribers();
    return;
  }

  if (op == "subscribe") {
    ServiceRequest request;
    request.program = req.Get("program").as_string();
    request.query = req.Get("query").as_string();
    if (request.program.empty() || request.query.empty()) {
      SendError(fd, wmu, id,
                InvalidArgumentError(
                    "'subscribe' needs 'program' and a single 'query'"));
      return;
    }
    StatusOr<ExecutionLimits> limits = ParseLimits(req.Get("limits"));
    if (!limits.ok()) {
      SendError(fd, wmu, id, limits.status());
      return;
    }
    request.limits = *limits;
    // Baseline run: validates the program/query and records the tuples
    // already derivable, so the first delta event reports only news.
    StatusOr<std::vector<QueryOutcome>> outcomes =
        service_->Execute(request);
    if (!outcomes.ok()) {
      SendError(fd, wmu, id, outcomes.status());
      return;
    }
    if (outcomes->size() != 1) {
      SendError(fd, wmu, id,
                InvalidArgumentError("'subscribe' takes exactly one query"));
      return;
    }
    const QueryOutcome& base = (*outcomes)[0];
    if (base.result.partial) {
      SendError(fd, wmu, id,
                ResourceExhaustedError(
                    "subscription baseline tripped its governor budget; "
                    "raise 'limits' or narrow the query"));
      return;
    }
    Subscription sub;
    sub.id = next_sub_id_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t sid = sub.id;
    sub.conn = conn;
    sub.request = std::move(request);
    sub.query_text = base.query_text;
    sub.seen.insert(base.tuples.begin(), base.tuples.end());
    {
      std::lock_guard<std::mutex> lock(subs_mu_);
      if (subs_.size() >= max_subscriptions_) {
        SendError(fd, wmu, id,
                  ResourceExhaustedError(StrCat(
                      "subscription limit reached (", max_subscriptions_,
                      ")")));
        return;
      }
      subs_.emplace(sid, std::move(sub));
    }
    TraceSubscription("subscribe", sid, base.query_text, 0);
    json::Object obj;
    obj.emplace("id", json::Value(id));
    obj.emplace("ev", json::Value("done"));
    obj.emplace("ok", json::Value(true));
    obj.emplace("subscription", json::Value(sid));
    obj.emplace("answers", json::Value(base.tuples.size()));
    obj.emplace("generation", json::Value(base.generation));
    SendJson(fd, wmu, std::move(obj));
    return;
  }

  if (op == "unsubscribe") {
    if (!req.Has("subscription")) {
      SendError(fd, wmu, id,
                InvalidArgumentError(
                    "'unsubscribe' needs a 'subscription' id"));
      return;
    }
    const uint64_t sid =
        static_cast<uint64_t>(req.Get("subscription").as_int(0));
    bool removed = false;
    {
      std::lock_guard<std::mutex> lock(subs_mu_);
      auto it = subs_.find(sid);
      // Only the owning connection may unsubscribe: ids are easy to
      // guess, and cancelling another session's feed is a denial of
      // service.
      if (it != subs_.end() && it->second.conn.get() == conn.get()) {
        subs_.erase(it);
        removed = true;
      }
    }
    if (removed) TraceSubscription("unsubscribe", sid, "", 0);
    json::Object obj;
    obj.emplace("id", json::Value(id));
    obj.emplace("ev", json::Value("done"));
    obj.emplace("ok", json::Value(true));
    obj.emplace("removed", json::Value(removed));
    SendJson(fd, wmu, std::move(obj));
    return;
  }

  if (op == "query") {
    ServiceRequest request;
    request.program = req.Get("program").as_string();
    request.query = req.Get("query").as_string();
    if (request.program.empty()) {
      SendError(fd, wmu, id,
                InvalidArgumentError("'query' needs a 'program'"));
      return;
    }
    StatusOr<Strategy> strategy =
        ParseStrategyName(req.Get("strategy").as_string());
    if (!strategy.ok()) {
      SendError(fd, wmu, id, strategy.status());
      return;
    }
    request.strategy = *strategy;
    StatusOr<ExecutionLimits> limits = ParseLimits(req.Get("limits"));
    if (!limits.ok()) {
      SendError(fd, wmu, id, limits.status());
      return;
    }
    request.limits = *limits;
    if (req.Has("cache")) request.use_cache = req.Get("cache").as_bool(true);
    if (req.Has("optimize")) {
      request.optimize = req.Get("optimize").as_bool(true);
    }

    StatusOr<std::vector<QueryOutcome>> outcomes =
        service_->Execute(request);
    if (!outcomes.ok()) {
      SendError(fd, wmu, id, outcomes.status());
      return;
    }
    for (const QueryOutcome& out : *outcomes) {
      {
        json::Object obj;
        obj.emplace("id", json::Value(id));
        obj.emplace("ev", json::Value("begin"));
        obj.emplace("query", json::Value(out.query_text));
        if (!SendJson(fd, wmu, std::move(obj))) return;
      }
      for (const std::string& tuple : out.tuples) {
        json::Object obj;
        obj.emplace("id", json::Value(id));
        obj.emplace("ev", json::Value("result"));
        obj.emplace("tuple", json::Value(tuple));
        if (!SendJson(fd, wmu, std::move(obj))) return;
      }
      json::Object obj;
      obj.emplace("id", json::Value(id));
      obj.emplace("ev", json::Value("answer"));
      obj.emplace("answers", json::Value(out.result.answer.size()));
      obj.emplace("strategy",
                  json::Value(std::string(
                      StrategyToString(out.result.strategy))));
      obj.emplace("reason", json::Value(out.result.reason));
      obj.emplace("plan_cache",
                  json::Value(out.plan_cache_hit ? "hit" : "miss"));
      obj.emplace("closure_cache",
                  json::Value(out.closure_cache_hit ? "hit" : "miss"));
      obj.emplace("closure_stored", json::Value(out.closure_stored));
      obj.emplace("detections", json::Value(out.detection_passes));
      if (!out.pass_summary.empty()) {
        obj.emplace("passes", json::Value(out.pass_summary));
      }
      obj.emplace("generation", json::Value(out.generation));
      obj.emplace("partial", json::Value(out.result.partial));
      if (out.result.partial && out.result.degradation.has_value()) {
        obj.emplace("cause",
                    json::Value(std::string(StopCauseToString(
                        out.result.degradation->cause))));
      }
      json::Array notes;
      for (const Diagnostic& d : out.result.diagnostics) {
        json::Object note;
        note.emplace("code", json::Value(d.code));
        note.emplace("message", json::Value(d.message));
        notes.emplace_back(std::move(note));
      }
      if (!notes.empty()) {
        obj.emplace("notes", json::Value(std::move(notes)));
      }
      obj.emplace("seconds", json::Value(out.seconds));
      if (!SendJson(fd, wmu, std::move(obj))) return;
    }
    json::Object obj;
    obj.emplace("id", json::Value(id));
    obj.emplace("ev", json::Value("done"));
    obj.emplace("ok", json::Value(true));
    SendJson(fd, wmu, std::move(obj));
    return;
  }

  SendError(fd, wmu, id,
            InvalidArgumentError(StrCat("unknown op '", op, "'")));
}

void SocketServer::NotifySubscribers() {
  // subs_mu_ is held for the whole sweep: concurrent mutators serialise
  // their fan-outs here (the service already serialised the mutations),
  // so per-subscription `seen` updates never race and every subscriber
  // observes deltas in mutation order.
  std::lock_guard<std::mutex> lock(subs_mu_);
  std::vector<uint64_t> dead;
  for (auto& [sid, sub] : subs_) {
    StatusOr<std::vector<QueryOutcome>> outcomes =
        service_->Execute(sub.request);
    std::string drop_reason;
    if (!outcomes.ok()) {
      drop_reason = outcomes.status().ToString();
    } else if (outcomes->size() != 1) {
      drop_reason = "subscription produced no outcome";
    } else if ((*outcomes)[0].result.partial) {
      // The per-subscription governor budget tripped: the answer set is
      // incomplete, so diffs against it would fabricate retractions.
      // Dropping beats silently delivering wrong deltas.
      drop_reason = "governor budget tripped";
    }
    if (!drop_reason.empty()) {
      json::Object obj;
      obj.emplace("ev", json::Value("dropped"));
      obj.emplace("subscription", json::Value(sid));
      obj.emplace("reason", json::Value(drop_reason));
      SendJson(sub.conn->fd, sub.conn->write_mu, std::move(obj));
      TraceSubscription("drop", sid, drop_reason, 0);
      dead.push_back(sid);
      continue;
    }
    const QueryOutcome& out = (*outcomes)[0];
    std::set<std::string> current(out.tuples.begin(), out.tuples.end());
    json::Array fresh;
    for (const std::string& t : current) {
      if (sub.seen.count(t) == 0) fresh.emplace_back(t);
    }
    json::Array retracted;
    for (const std::string& t : sub.seen) {
      if (current.count(t) == 0) retracted.emplace_back(t);
    }
    if (fresh.empty() && retracted.empty()) continue;  // no news
    const uint64_t delivered = fresh.size() + retracted.size();
    json::Object obj;
    obj.emplace("ev", json::Value("delta"));
    obj.emplace("subscription", json::Value(sid));
    obj.emplace("query", json::Value(sub.query_text));
    obj.emplace("tuples", json::Value(std::move(fresh)));
    obj.emplace("retracted", json::Value(std::move(retracted)));
    obj.emplace("generation", json::Value(out.generation));
    if (!SendJson(sub.conn->fd, sub.conn->write_mu, std::move(obj))) {
      dead.push_back(sid);  // subscriber hung up; reaped below
      continue;
    }
    sub.seen = std::move(current);
    TraceSubscription("notify", sid, sub.query_text, delivered);
  }
  for (uint64_t sid : dead) subs_.erase(sid);
}

void SocketServer::DropSubscriptionsFor(const Conn* conn) {
  std::lock_guard<std::mutex> lock(subs_mu_);
  for (auto it = subs_.begin(); it != subs_.end();) {
    if (it->second.conn.get() == conn) {
      TraceSubscription("drop", it->first, "connection closed", 0);
      it = subs_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::TraceSubscription(std::string_view cause, uint64_t id,
                                     std::string_view detail,
                                     uint64_t delivered) {
  if (service_->trace() == nullptr) return;
  TraceEvent ev;
  ev.kind = TraceEventKind::kSubscription;
  ev.cause = std::string(cause);
  ev.detail = detail.empty() ? StrCat("sub", id)
                             : StrCat("sub", id, " ", detail);
  ev.delta = delivered;
  service_->trace()->Emit(ev);
}

void SocketServer::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

bool SocketServer::WaitFor(int ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return shutdown_cv_.wait_for(lock, std::chrono::milliseconds(ms),
                               [this] { return shutdown_requested_; });
}

void SocketServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
    // Sessions deregister their fd before closing it, so everything here
    // is still open; shutdown() unblocks their recv() without racing the
    // close.
    for (int fd : session_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (listen_fd_ >= 0) {
    // shutdown() unblocks accept(); close() alone does not on Linux. The
    // close and the listen_fd_ = -1 write wait for the join: the accept
    // loop re-reads listen_fd_ on every iteration, and closing early
    // could hand accept() a recycled descriptor number.
    ::shutdown(listen_fd_, SHUT_RDWR);
    // Sandboxed kernels (gVisor-style) reject that shutdown with
    // ENOTCONN and leave accept() blocked forever, so also wake the
    // loop with a throwaway connection: accept() returns it, the loop
    // sees stopping_ (already set above) and discards the fd. If the
    // backlog is full a wake-up is already queued, so the non-blocking
    // connect may fail freely; on mainline Linux the shut-down listener
    // refuses the connect and the shutdown alone did the waking.
    int wake = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (wake >= 0) {
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      if (socket_path_.size() < sizeof(addr.sun_path)) {
        std::memcpy(addr.sun_path, socket_path_.c_str(),
                    socket_path_.size() + 1);
        ::connect(wake, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
      }
      ::close(wake);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.swap(sessions_);
    for (std::thread& t : finished_) sessions.push_back(std::move(t));
    finished_.clear();
  }
  for (std::thread& t : sessions) {
    if (t.joinable()) t.join();
  }
  if (!socket_path_.empty()) ::unlink(socket_path_.c_str());
}

}  // namespace seprec
