#include "server/service.h"

#include <atomic>
#include <fstream>
#include <istream>
#include <utility>

#include "core/query.h"
#include "datalog/parser.h"
#include "eval/incremental.h"
#include "separable/detection.h"
#include "separable/engine.h"
#include "storage/io.h"
#include "storage/segment/snapshot_v3.h"
#include "util/hash.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace seprec {

namespace {

// FNV-1a over the raw program text: the program fingerprint. The entry
// stores the full text and compares it on every hit, so a hash collision
// costs a false miss-path, never a wrong answer.
uint64_t FingerprintText(std::string_view text) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string BoundMaskString(const std::vector<bool>& bound) {
  std::string s;
  s.reserve(bound.size());
  for (bool b : bound) s.push_back(b ? 'b' : 'f');
  return s;
}

// The selection constants in canonical form: every bound argument's
// spelling, position-ordered. Variable NAMES are deliberately excluded —
// t(1, X) and t(1, Y) are the same selection.
std::string ConstantsString(const Atom& query) {
  std::string s;
  for (const Term& t : query.args) {
    if (t.IsConstant()) {
      s += t.ToString();
    }
    s.push_back('|');
  }
  return s;
}

}  // namespace

struct QueryService::ProcessorEntry {
  std::string text;             // exact program source (collision check)
  QueryProcessor qp;
  std::vector<Atom> queries;    // the ?- queries of the unit
  uint64_t detections = 0;      // detection passes spent building this
  uint64_t tick = 0;            // LRU

  ProcessorEntry(std::string t, QueryProcessor p, std::vector<Atom> q)
      : text(std::move(t)), qp(std::move(p)), queries(std::move(q)) {}
};

// INVARIANT: destruction mutates the Database (the PreparedQuery's
// SchemaRunner drops its $sep scratch relations), so every
// shared_ptr<PlanEntry> must release its reference while holding db_mu_.
struct QueryService::PlanEntry {
  // Keeps the processor alive while this plan exists: PreparedQuery holds
  // a raw pointer into it.
  std::shared_ptr<ProcessorEntry> owner;
  PreparedQuery prepared;
  uint64_t tick = 0;

  PlanEntry(std::shared_ptr<ProcessorEntry> o, PreparedQuery p)
      : owner(std::move(o)), prepared(std::move(p)) {}
};

// INVARIANT: destruction can mutate the Database — a maintainable entry
// owns an IncrementalEngine plus the '$dred*' closure/seed relations it
// patches, all dropped here — so every shared_ptr<ClosureEntry> must
// release its reference while holding db_mu_ (same contract as PlanEntry).
struct QueryService::ClosureEntry {
  Phase1Closure closure;
  uint64_t tick = 0;

  // How this entry survives EDB mutation: kConstant entries are
  // data-independent and always kept; kMaintainable entries are patched by
  // `engine`; kNone entries are swept on the first effective mutation.
  ClosureMaintainability kind = ClosureMaintainability::kNone;
  // "<plan_key>|<constants>|g" — appending the current generation yields
  // the entry's cache key, so a surviving entry is re-keyed after a
  // mutation by rebuilding the map.
  std::string base_key;
  std::unique_ptr<IncrementalEngine> engine;  // kMaintainable only
  std::string closure_rel;  // "$dred<n>_c": the maintained seen_1 extent
  std::string seed_rel;     // "$dred<n>_seed": exactly the selection row
  std::vector<std::string> base_relations;  // what the closure reads
  Database* db = nullptr;   // set iff engine-backed relations exist

  bool maintainable() const { return engine != nullptr; }
  bool Reads(std::string_view relation) const {
    for (const std::string& r : base_relations) {
      if (r == relation) return true;
    }
    return false;
  }

  ~ClosureEntry() {
    if (db == nullptr) return;
    // The engine's compiled plans bind the delta relations; tear the
    // engine down before dropping them out from under it.
    std::vector<std::string> scratch = engine->ScratchRelationNames();
    engine.reset();
    for (const std::string& name : scratch) db->Drop(name);
    db->Drop(closure_rel);
    db->Drop(seed_rel);
  }
};

QueryService::QueryService(Database* db, ServiceOptions options)
    : db_(db), options_(std::move(options)) {}

QueryService::~QueryService() {
  // Plan entries drop their compiled schemas' scratch relations from the
  // database on destruction; serialise that with any straggler.
  std::lock_guard<std::mutex> db_lock(db_mu_);
  std::unique_lock<std::shared_mutex> cache_lock(cache_mu_);
  closures_.clear();
  plans_.clear();
  processors_.clear();
}

void QueryService::TraceCache(std::string_view cache, std::string_view what,
                              std::string_view key) {
  if (options_.trace == nullptr) return;
  TraceEvent ev;
  ev.kind = TraceEventKind::kCache;
  ev.phase = std::string(cache);
  ev.cause = std::string(what);
  ev.detail = std::string(key);
  options_.trace->Emit(ev);
}

StatusOr<std::shared_ptr<QueryService::ProcessorEntry>>
QueryService::GetProcessor(std::string_view program_text, bool* was_cached) {
  uint64_t fp = FingerprintText(program_text);
  {
    // Unique (not shared) lock: a hit refreshes the entry's LRU tick and
    // the hit counter — without the tick bump eviction degenerates to
    // FIFO and a continuously-hot program gets evicted.
    std::unique_lock<std::shared_mutex> lock(cache_mu_);
    auto it = processors_.find(fp);
    if (it != processors_.end() && it->second->text == program_text) {
      it->second->tick = ++lru_tick_;
      ++stats_.processor_hits;
      *was_cached = true;
      return it->second;
    }
  }
  *was_cached = false;

  // Miss: parse and analyse outside every lock (pure computation).
  uint64_t detect_before = DetectionPassCount();
  SEPREC_ASSIGN_OR_RETURN(ParsedUnit unit,
                          ParseUnit(std::string(program_text)));
  SEPREC_ASSIGN_OR_RETURN(QueryProcessor qp,
                          QueryProcessor::Create(unit.program));
  auto entry = std::make_shared<ProcessorEntry>(
      std::string(program_text), std::move(qp), std::move(unit.queries));
  entry->detections = DetectionPassCount() - detect_before;

  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  ++stats_.processor_misses;
  entry->tick = ++lru_tick_;
  if (options_.max_processors == 0) return entry;  // layer disabled
  while (processors_.size() >= options_.max_processors) {
    auto victim = processors_.begin();
    for (auto it = processors_.begin(); it != processors_.end(); ++it) {
      if (it->second->tick < victim->second->tick) victim = it;
    }
    // Plan entries keep their processor alive via shared_ptr; eviction
    // only stops NEW requests from finding it.
    processors_.erase(victim);
  }
  processors_[fp] = entry;
  return entry;
}

StatusOr<std::vector<QueryOutcome>> QueryService::Execute(
    const ServiceRequest& request) {
  if (options_.trace != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kSession;
    ev.cause = "request";
    ev.detail = request.query.empty() ? "(program queries)" : request.query;
    options_.trace->Emit(ev);
  }
  {
    std::unique_lock<std::shared_mutex> lock(cache_mu_);
    ++stats_.requests;
  }

  uint64_t fp = FingerprintText(request.program);
  bool processor_was_cached = false;
  SEPREC_ASSIGN_OR_RETURN(std::shared_ptr<ProcessorEntry> entry,
                          GetProcessor(request.program,
                                       &processor_was_cached));
  TraceCache("processor", processor_was_cached ? "hit" : "miss",
             StrCat("fp", fp));

  std::vector<Atom> queries;
  if (!request.query.empty()) {
    SEPREC_ASSIGN_OR_RETURN(Atom q, ParseAtom(request.query));
    queries.push_back(std::move(q));
  } else {
    queries = entry->queries;
  }
  if (queries.empty()) {
    return InvalidArgumentError(
        "request has no query: pass one explicitly or include '?- q.' "
        "lines in the program");
  }

  ExecutionLimits limits =
      request.limits.Unlimited() && request.limits.parallel.num_threads == 0
          ? options_.default_limits
          : request.limits;
  // The parallel policy is baked into compiled plans at Prepare time; a
  // request cannot change it without poisoning the shared plan cache.
  limits.parallel = options_.parallel;

  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(queries.size());
  for (const Atom& query : queries) {
    WallTimer timer;
    QueryOutcome out;
    out.query_text = query.ToString();
    out.detection_passes = processor_was_cached ? 0 : entry->detections;
    processor_was_cached = true;  // later queries reuse the same entry

    // Optimized and unoptimized plans are distinct cache entries: an
    // ablation control run must not serve (or poison) the optimized plan.
    const std::string plan_key =
        StrCat("fp", fp, "|", query.predicate, "|",
               BoundMaskString(BoundPositions(query)), "|",
               StrategyToString(request.strategy),
               request.optimize ? "" : "|no-opt");

    // Plan-cache probe.
    std::shared_ptr<PlanEntry> plan;
    if (request.use_cache && options_.max_prepared > 0) {
      std::unique_lock<std::shared_mutex> lock(cache_mu_);
      auto it = plans_.find(plan_key);
      if (it != plans_.end()) {
        plan = it->second;
        plan->tick = ++lru_tick_;
        out.plan_cache_hit = true;
        ++stats_.plan_hits;
      } else {
        ++stats_.plan_misses;
      }
    }
    TraceCache("plan", out.plan_cache_hit ? "hit" : "miss", plan_key);

    Phase1Closure captured;
    bool try_capture = false;
    std::shared_ptr<ClosureEntry> reuse_entry;
    {
      std::lock_guard<std::mutex> db_lock(db_mu_);
      Status run = [&]() -> Status {
        if (plan == nullptr) {
          // Compile: the per-shape cost. Prepare touches the database
          // (pre-creates IDB relations, compiles and binds rule plans), so
          // it runs under the database mutex.
          StatusOr<PreparedQuery> prepared = entry->qp.Prepare(
              query, db_, request.strategy, options_.parallel,
              /*run_pipeline=*/request.optimize);
          if (!prepared.ok()) return prepared.status();
          plan =
              std::make_shared<PlanEntry>(entry, std::move(prepared).value());
          // The pipeline runs once per prepared plan; its verdicts and the
          // recorded strategy selection trace here, at compile time, not on
          // every cache hit.
          if (options_.trace != nullptr &&
              plan->prepared.pass_report() != nullptr) {
            const PassReport& report = *plan->prepared.pass_report();
            for (const PassOutcome& po : report.outcomes) {
              TraceEvent ev;
              ev.kind = TraceEventKind::kPass;
              ev.phase = po.pass;
              ev.cause = PassVerdictToString(po.verdict);
              ev.detail = po.detail;
              options_.trace->Emit(ev);
            }
            TraceEvent ev;
            ev.kind = TraceEventKind::kPass;
            ev.phase = "strategy";
            ev.cause = std::string(StrategyToString(report.strategy));
            ev.detail = report.reason;
            options_.trace->Emit(ev);
            for (const PlanNote& pn : report.plans) {
              TraceEvent pe;
              pe.kind = TraceEventKind::kPlan;
              pe.phase = "prepare";
              pe.rule = pn.rule;
              pe.cause = pn.mode;
              pe.detail = pn.order;
              pe.algo = pn.algo;
              pe.cost = pn.cost;
              pe.est_rows = pn.est_rows;
              options_.trace->Emit(pe);
            }
          }
          if (request.use_cache && options_.max_prepared > 0) {
            std::unique_lock<std::shared_mutex> lock(cache_mu_);
            plan->tick = ++lru_tick_;
            while (plans_.size() >= options_.max_prepared) {
              auto victim = plans_.begin();
              for (auto it = plans_.begin(); it != plans_.end(); ++it) {
                if (it->second->tick < victim->second->tick) victim = it;
              }
              TraceCache("plan", "evict", victim->first);
              plans_.erase(victim);  // schema scratch drops under db_mu_
            }
            plans_[plan_key] = plan;
          }
        }

        // Hit or miss, the cached plan remembers its pipeline verdicts —
        // the strategy-recording contract is server-visible on every reuse.
        if (plan->prepared.pass_report() != nullptr) {
          out.pass_summary = plan->prepared.pass_report()->Summary();
        }

        out.generation = db_->generation();
        // The generation is the key's LAST component so an incremental
        // apply can re-key a surviving entry by appending the new value to
        // its base_key (see ApplyLocked).
        const std::string closure_base =
            StrCat(plan_key, "|", ConstantsString(query), "|g");
        const std::string closure_key =
            StrCat(closure_base, out.generation);
        const bool closure_layer = request.use_cache &&
                                   options_.max_closures > 0 &&
                                   plan->prepared.has_compiled_schema();
        if (closure_layer) {
          std::unique_lock<std::shared_mutex> lock(cache_mu_);
          auto it = closures_.find(closure_key);
          if (it != closures_.end()) {
            reuse_entry = it->second;
            reuse_entry->tick = ++lru_tick_;
            out.closure_cache_hit = true;
            ++stats_.closure_hits;
          } else {
            ++stats_.closure_misses;
            try_capture = true;
          }
        }
        if (plan->prepared.has_compiled_schema()) {
          TraceCache("closure", out.closure_cache_hit ? "hit" : "miss",
                     closure_key);
        }

        FixpointOptions fo;
        fo.limits = limits;
        fo.trace = options_.trace;
        StatusOr<QueryResult> result = plan->prepared.Execute(
            query, db_, fo,
            reuse_entry != nullptr ? &reuse_entry->closure : nullptr,
            try_capture ? &captured : nullptr,
            /*commit=*/false);
        if (!result.ok()) return result.status();
        out.result = std::move(result).value();

        // A closure is cacheable only when it is provably the FULL phase-1
        // result: the separable strategy itself answered (no fallback), the
        // run was not truncated, and the engine actually captured (it only
        // does when the phase-1 loop drained without a governor stop).
        if (try_capture && !captured.rows.empty() && !out.result.partial &&
            out.result.strategy == Strategy::kSeparable) {
          auto centry = std::make_shared<ClosureEntry>();
          centry->closure = std::move(captured);
          captured = Phase1Closure();
          centry->base_key = closure_base;
          // Classify the entry for incremental maintenance while we still
          // hold db_mu_ (it creates and seeds the '$dred*' relations).
          AttachMaintenance(plan->prepared, query, centry.get());
          std::unique_lock<std::shared_mutex> lock(cache_mu_);
          centry->tick = ++lru_tick_;
          while (closures_.size() >= options_.max_closures) {
            auto victim = closures_.begin();
            for (auto it = closures_.begin(); it != closures_.end(); ++it) {
              if (it->second->tick < victim->second->tick) victim = it;
            }
            TraceCache("closure", "evict", victim->first);
            closures_.erase(victim);
          }
          closures_[closure_key] = centry;
          ++stats_.closure_stores;
          out.closure_stored = true;
          TraceCache("closure", "store", closure_key);
        }
        return Status::OK();
      }();
      // ~PlanEntry -> ~PreparedQuery -> ~SchemaRunner drops the compiled
      // schema's $sep scratch relations from the Database, so the LAST
      // shared_ptr<PlanEntry> release must happen under db_mu_. Every
      // cache-side release (evict, overwrite, purge, ~QueryService) holds
      // it; this reset covers the local reference, which is the last one
      // whenever the plan never entered the cache ("cache":false,
      // max_prepared == 0, an error return above) or was displaced while
      // this query ran. ~ClosureEntry has the same contract (it drops the
      // maintenance engine's '$dred*'/'$inc*' relations), so the reused
      // entry's local reference releases here too.
      plan.reset();
      reuse_entry.reset();
      if (!run.ok()) return run;
    }  // db_mu_ released

    // Rendering reads only the answer's Values and the symbol table (its
    // own reader/writer guard) — deliberately outside db_mu_ so result
    // streaming of one session overlaps evaluation of another.
    out.tuples = out.result.answer.ToStrings(db_->symbols());
    out.seconds = timer.Seconds();
    outcomes.push_back(std::move(out));
  }
  return outcomes;
}

StatusOr<size_t> QueryService::LoadTsv(std::string_view relation,
                                       std::istream& in) {
  return ApplyTsv(relation, BatchOp::kInsert, in);
}

StatusOr<size_t> QueryService::LoadTsvFile(std::string_view relation,
                                           const std::string& path) {
  return ApplyTsvFile(relation, BatchOp::kInsert, path);
}

StatusOr<size_t> QueryService::ApplyTsv(std::string_view relation,
                                        BatchOp op, std::istream& in) {
  std::lock_guard<std::mutex> db_lock(db_mu_);
  // Two-phase load: every line is validated before anything is applied,
  // so a malformed middle line fails the whole request instead of leaving
  // a silent partial prefix — and the WAL never holds a record whose
  // apply could fail.
  SEPREC_ASSIGN_OR_RETURN(TupleBatch batch,
                          ParseRelationTsv(*db_, relation, in));
  batch.op = op;
  return ApplyLocked(batch);
}

StatusOr<size_t> QueryService::ApplyTsvFile(std::string_view relation,
                                            BatchOp op,
                                            const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError(StrCat("cannot open '", path, "'"));
  }
  return ApplyTsv(relation, op, in);
}

StatusOr<size_t> QueryService::Apply(const TupleBatch& batch) {
  std::lock_guard<std::mutex> db_lock(db_mu_);
  // Server-built batches bypass ParseRelationTsv, so re-validate here:
  // once the WAL holds the record its apply must not be able to fail.
  if (const Relation* rel = db_->Find(batch.relation);
      rel != nullptr && rel->arity() != batch.arity) {
    return InvalidArgumentError(
        StrCat("relation '", batch.relation, "' has arity ", rel->arity(),
               ", batch has arity ", batch.arity));
  }
  if (batch.arity == 0) {
    return InvalidArgumentError("batch arity must be positive");
  }
  for (const std::vector<TypedCell>& row : batch.rows) {
    if (row.size() != batch.arity) {
      return InvalidArgumentError(
          StrCat("batch row has ", row.size(), " columns, expected ",
                 batch.arity));
    }
  }
  return ApplyLocked(batch);
}

StatusOr<size_t> QueryService::ApplyLocked(const TupleBatch& batch) {
  const bool deleting = batch.op == BatchOp::kDelete;
  if (options_.storage != nullptr) {
    // Write-ahead: the batch must be durable before any row changes in
    // the database. Under fsync=always a client that sees this mutation
    // acknowledged will see the same rows after kill -9 + recovery.
    SEPREC_RETURN_IF_ERROR(options_.storage->LogBatch(batch));
  }

  WallTimer timer;
  // Incremental maintenance is bounded: DRed's overdelete provisionally
  // touches every tuple with a derivation through a deleted one, so past
  // a point a fresh phase-1 run beats patching. Oversized batches fall
  // back to invalidation wholesale.
  const bool incremental =
      batch.rows.size() <= options_.max_incremental_delta;

  // Engines that must see this delta. Driving them needs db_mu_ (held);
  // the map probe needs cache_mu_. Entries whose closures do not read the
  // mutated relation are untouched by definition of base_relations.
  std::vector<std::shared_ptr<ClosureEntry>> patching;
  if (incremental) {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    for (const auto& [key, entry] : closures_) {
      if (entry->maintainable() && entry->Reads(batch.relation)) {
        patching.push_back(entry);
      }
    }
  }

  // Entries whose engine errored: their maintained state is suspect, so
  // they are dropped below instead of re-keyed. The EDB apply itself must
  // still happen — the WAL already holds the record, and recovery will
  // replay it — so engine failures degrade to invalidation, never to a
  // failed mutation.
  std::vector<const ClosureEntry*> broken;
  std::vector<std::vector<Value>> changed;
  size_t applied = 0;

  if (deleting) {
    // DRed phase 1 (overdelete) must observe the PRE-deletion state, so
    // every engine prepares before the rows are erased.
    std::vector<std::vector<Value>> rows;
    if (!patching.empty()) {
      rows.reserve(batch.rows.size());
      std::vector<Value> row;
      for (const std::vector<TypedCell>& cells : batch.rows) {
        row.clear();
        row.reserve(cells.size());
        for (const TypedCell& cell : cells) {
          row.push_back(cell.is_int ? Value::Int(cell.int_value)
                                    : db_->symbols().Intern(cell.symbol));
        }
        rows.push_back(row);
      }
    }
    for (const std::shared_ptr<ClosureEntry>& entry : patching) {
      if (Status s = entry->engine->PrepareRemoval(batch.relation, rows);
          !s.ok()) {
        broken.push_back(entry.get());
      }
    }
    SEPREC_ASSIGN_OR_RETURN(applied, ApplyTupleBatch(db_, batch, &changed));
    for (const std::shared_ptr<ClosureEntry>& entry : patching) {
      if (Status s = entry->engine->FinishRemoval(); !s.ok()) {
        broken.push_back(entry.get());
      }
    }
  } else {
    SEPREC_ASSIGN_OR_RETURN(applied, ApplyTupleBatch(db_, batch, &changed));
    if (!changed.empty()) {
      for (const std::shared_ptr<ClosureEntry>& entry : patching) {
        if (Status s =
                entry->engine->PropagateInserted(batch.relation, changed);
            !s.ok()) {
          broken.push_back(entry.get());
        }
      }
    }
  }

  size_t patched = 0;
  size_t dropped = 0;
  if (applied > 0) {
    // The apply bumped the generation: every cached key is stale. Rebuild
    // the map — surviving entries (data-independent kConstant, patched
    // kMaintainable) re-key onto the new generation; everything else is
    // swept (destructors run under db_mu_, which we hold).
    const uint64_t gen = db_->generation();
    std::unique_lock<std::shared_mutex> lock(cache_mu_);
    std::map<std::string, std::shared_ptr<ClosureEntry>> survivors;
    for (auto& [key, entry] : closures_) {
      bool keep = false;
      if (incremental) {
        if (entry->kind == ClosureMaintainability::kConstant) {
          keep = true;
        } else if (entry->maintainable()) {
          keep = true;
          for (const ClosureEntry* b : broken) {
            if (b == entry.get()) keep = false;
          }
        }
      }
      if (!keep) {
        ++dropped;
        continue;
      }
      if (entry->maintainable() && entry->Reads(batch.relation)) {
        // The engine patched "$dred<n>_c" in place; refresh the cached
        // row vector that Execute seeds phase 1 from.
        entry->closure.rows.clear();
        const Relation* c = db_->Find(entry->closure_rel);
        c->ForEachRow([&](Row r) {
          entry->closure.rows.emplace_back(r.begin(), r.end());
        });
        ++patched;
      }
      survivors[StrCat(entry->base_key, gen)] = std::move(entry);
    }
    closures_ = std::move(survivors);
    stats_.closure_patches += patched;
    stats_.closure_drops += dropped;
  }

  if (options_.trace != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kDelta;
    ev.phase = deleting ? "delete" : "insert";
    ev.detail = batch.relation;
    ev.delta = applied;
    ev.inserted = patched;
    ev.emitted = dropped;
    ev.seconds = timer.Seconds();
    options_.trace->Emit(ev);
  }

  if (options_.storage != nullptr && options_.storage->ShouldCheckpoint()) {
    // Auto-checkpoint bounds WAL growth (and so recovery time). A failure
    // here must not fail the mutation — the WAL still holds everything —
    // but it is reported to the trace sink rather than swallowed.
    if (StatusOr<CheckpointInfo> ck = CheckpointLocked(); !ck.ok()) {
      if (options_.trace != nullptr) {
        TraceEvent ev;
        ev.kind = TraceEventKind::kSession;
        ev.cause = "checkpoint-error";
        ev.detail = ck.status().ToString();
        options_.trace->Emit(ev);
      }
    }
  }
  return applied;
}

void QueryService::AttachMaintenance(const PreparedQuery& prepared,
                                     const Atom& query,
                                     ClosureEntry* entry) {
  const PreparedSeparable* schema = prepared.compiled_schema();
  if (schema == nullptr) return;  // kind stays kNone

  // Process-unique prefix: entries come and go independently, and two
  // entries for the same selection shape (different constants) each get
  // their own closure program over their own relations.
  static std::atomic<uint64_t> next_maintenance_id{0};
  const std::string prefix = StrCat(
      "$dred", next_maintenance_id.fetch_add(1, std::memory_order_relaxed),
      "_");
  ClosureMaintenance m = schema->MaintenanceFor(query, prefix);
  entry->kind = m.kind;
  if (m.kind != ClosureMaintainability::kMaintainable) return;

  StatusOr<IncrementalEngine> engine =
      IncrementalEngine::Create(std::move(m.program), db_);
  if (!engine.ok()) {
    // Defensive: an unmaintainable closure program degrades the entry to
    // invalidation-on-mutation, never fails the request.
    entry->kind = ClosureMaintainability::kNone;
    return;
  }
  Relation* seed = db_->Find(m.seed_name);
  Relation* closure = db_->Find(m.closure_name);
  if (seed == nullptr || closure == nullptr) {
    entry->kind = ClosureMaintainability::kNone;
    return;
  }
  // Fast initialisation: the captured closure IS the program's least
  // fixpoint for seed = {seed_row} (phase 1 of the Figure-2 schema runs
  // exactly these rules), so populate the relations directly instead of
  // re-deriving them with Initialize().
  seed->Insert(Row(m.seed_row.data(), m.seed_row.size()));
  for (const std::vector<Value>& row : entry->closure.rows) {
    closure->Insert(Row(row.data(), row.size()));
  }
  entry->engine =
      std::make_unique<IncrementalEngine>(std::move(engine).value());
  entry->closure_rel = std::move(m.closure_name);
  entry->seed_rel = std::move(m.seed_name);
  entry->base_relations = std::move(m.base_relations);
  entry->db = db_;
}

StatusOr<CheckpointInfo> QueryService::Checkpoint() {
  std::lock_guard<std::mutex> db_lock(db_mu_);
  return CheckpointLocked();
}

StatusOr<CheckpointInfo> QueryService::CheckpointLocked() {
  if (options_.storage == nullptr) {
    return FailedPreconditionError(
        "no data directory attached (start the server with --data-dir)");
  }
  SEPREC_ASSIGN_OR_RETURN(CheckpointInfo info,
                          options_.storage->Checkpoint(*db_));
  if (options_.storage->use_segments()) {
    // The snapshot just written is the database's exact current contents,
    // so fold the in-memory delta layers into it: every relation re-bases
    // onto the fresh mmap-backed segments and the resident heap rows are
    // released. Compiled plans survive (Relation pointers are stable) and
    // the generation does not move — the data did not change.
    SEPREC_RETURN_IF_ERROR(CompactToSnapshotSegments(
        db_, StrCat(options_.storage->dir(), "/", info.snapshot_file)));
  }
  if (options_.trace != nullptr) {
    TraceEvent ev;
    ev.kind = TraceEventKind::kSession;
    ev.cause = "checkpoint";
    ev.detail = StrCat(info.snapshot_file, " g", info.generation);
    options_.trace->Emit(ev);
  }
  return info;
}

ServiceStats QueryService::stats() const {
  std::shared_lock<std::shared_mutex> lock(cache_mu_);
  ServiceStats s = stats_;
  s.processors = processors_.size();
  s.plans = plans_.size();
  s.closures = closures_.size();
  s.generation = db_->generation();
  return s;
}

void QueryService::PurgeClosures() {
  // db_mu_ first: maintainable entries drop their '$dred*'/'$inc*'
  // relations from the database on destruction.
  std::lock_guard<std::mutex> db_lock(db_mu_);
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  closures_.clear();
  TraceCache("closure", "purge", "explicit");
}

void QueryService::PurgeAll() {
  std::lock_guard<std::mutex> db_lock(db_mu_);
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  closures_.clear();
  plans_.clear();  // compiled schemas drop their scratch under db_mu_
  processors_.clear();
  TraceCache("all", "purge", "explicit");
}

}  // namespace seprec
