// SocketServer: JSON-lines front end to a QueryService over a Unix-domain
// stream socket.
//
// Wire protocol (DESIGN.md section 10): the client writes one JSON object
// per '\n'-terminated line; the server answers each with one or more
// '\n'-terminated JSON lines, all carrying the request's "id" back.
//
//   request:  {"op":"query","id":1,"program":"<datalog>","query":"t(1,X)",
//              "strategy":"auto","cache":true,
//              "limits":{"timeout_ms":N,"max_tuples":N,"max_bytes":N,
//                        "max_iterations":N}}
//             "query" is optional — omitted, every '?- q.' in the program
//             runs. "limits" members are each optional.
//   response: {"id":1,"ev":"begin","query":"t(1, X)"}
//             {"id":1,"ev":"result","tuple":"(a, b)"}         (per tuple)
//             {"id":1,"ev":"answer","answers":2,"strategy":"separable",
//              "plan_cache":"hit","closure_cache":"miss",
//              "closure_stored":true,"detections":0,"generation":3,
//              "partial":false,"reason":"...","seconds":0.0012,
//              "notes":["..."]}          (one per query; "cause" appears
//                                         when partial is true)
//             {"id":1,"ev":"done","ok":true}
//
//   other ops (each answered with a single "done" or "error" line):
//     {"op":"load","id":2,"relation":"edge","path":"edge.tsv"}
//     {"op":"load","id":3,"relation":"edge","rows":[["a","b"],["b","c"]]}
//     {"op":"load","id":8,"relation":"edge","mode":"delete",
//      "rows":[["a","b"]]}
//         -> {"id":...,"ev":"done","ok":true,"added":N,"changed":N,
//             "generation":G}
//         "mode" is "insert" (default) or "delete"; both modes validate
//         the whole batch, append one typed WAL record, and apply through
//         the service's incremental closure-maintenance path ("changed"
//         counts the rows that actually changed the relation; "added"
//         repeats it for protocol back-compat). A mutation that changed
//         anything re-evaluates every subscription and pushes delta
//         events (below) before the next request on this connection runs.
//     {"op":"subscribe","id":9,"program":"<datalog>","query":"tc(a,X)",
//      "limits":{...}}
//         -> {"id":9,"ev":"done","ok":true,"subscription":S,"answers":N,
//             "generation":G}
//         registers a prepared selection; N is the baseline answer size.
//         After every effective mutation the server re-evaluates the
//         selection (under the subscription's own limits) and pushes to
//         the SUBSCRIBING connection:
//             {"ev":"delta","subscription":S,"query":"tc(a, X)",
//              "tuples":["(a, e)"],"retracted":[],"generation":G}
//         (only when something changed; "tuples" are newly derived,
//         "retracted" formerly derived). A subscription whose
//         re-evaluation fails or trips its governor budget is dropped
//         with {"ev":"dropped","subscription":S,"reason":"..."}.
//     {"op":"unsubscribe","id":10,"subscription":S}
//         -> {"id":10,"ev":"done","ok":true,"removed":true}
//         only the subscribing connection can unsubscribe; closing the
//         connection drops its subscriptions implicitly.
//     {"op":"stats","id":4}
//         -> {"id":4,"ev":"done","ok":true,"stats":{...}}
//     {"op":"checkpoint","id":7}
//         -> {"id":7,"ev":"done","ok":true,"snapshot":"snapshot-2.seprec",
//             "generation":G,"wal_bytes_truncated":N}
//         snapshots the database and truncates the WAL; answers
//         FAILED_PRECONDITION when the server runs without --data-dir
//     {"op":"ping","id":5}   -> {"id":5,"ev":"done","ok":true}
//     {"op":"shutdown","id":6} -> {"id":6,"ev":"done","ok":true}, then the
//         server stops accepting and Wait() returns.
//
//   errors:   {"id":1,"ev":"error","code":"INVALID_ARGUMENT",
//              "message":"..."} — the connection stays usable; malformed
//              JSON (no id recoverable) answers with id -1. A request
//              line longer than max_line_bytes (default 16 MiB) answers
//              RESOURCE_EXHAUSTED and closes the connection.
//
// Concurrency: one accept thread plus one thread per connection. A
// connection's response lines are serialised by its per-connection write
// mutex: its own thread holds it for request replies, and a MUTATING
// connection's thread takes it to push subscription delta events, so lines
// never interleave even when a delta lands mid-query-stream. Cross-request
// consistency is the QueryService's problem (which see). Per-request
// limits isolate budgets: a request tripping its deadline degrades only
// its own reply, and each subscription re-evaluates under the limits its
// subscribe request carried.
#ifndef SEPREC_SERVER_SERVER_H_
#define SEPREC_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "server/service.h"
#include "util/status.h"

namespace seprec {

class SocketServer {
 public:
  // `service` is borrowed and must outlive the server.
  explicit SocketServer(QueryService* service);
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds and listens on `socket_path` (unlinking a stale file first) and
  // starts the accept thread.
  Status Start(const std::string& socket_path);

  // Blocks until Stop() is called or a client sends {"op":"shutdown"}.
  void Wait();

  // As Wait() but gives up after `ms` milliseconds; returns true when a
  // shutdown was requested. Lets a driver loop interleave signal checks.
  bool WaitFor(int ms);

  // Stops accepting, disconnects every session, joins all threads, and
  // unlinks the socket file. Idempotent.
  void Stop();

  // Maximum bytes buffered for one request line; a client exceeding it
  // (bytes with no '\n') gets a RESOURCE_EXHAUSTED error and is
  // disconnected. Call before Start().
  void set_max_line_bytes(size_t n) { max_line_bytes_ = n; }

  // Server-wide cap on live subscriptions; a subscribe past it answers
  // RESOURCE_EXHAUSTED. Call before Start().
  void set_max_subscriptions(size_t n) { max_subscriptions_ = n; }

 private:
  // One connection's write side: every response line to this fd goes
  // through `write_mu`, so subscription pushes from other sessions'
  // threads never interleave with this session's own replies.
  struct Conn {
    int fd = -1;
    std::mutex write_mu;
  };
  // A registered selection: re-evaluated after every effective mutation,
  // with the delivered-tuple set diffed to find news and retractions.
  struct Subscription {
    uint64_t id = 0;
    std::shared_ptr<Conn> conn;
    ServiceRequest request;       // program + query + per-subscription limits
    std::string query_text;       // the query as parsed (event labelling)
    std::set<std::string> seen;   // tuples last delivered
  };

  void AcceptLoop();
  void Session(int fd);
  void HandleLine(const std::shared_ptr<Conn>& conn,
                  const std::string& line);
  // Re-evaluates every subscription and pushes delta events for those
  // whose answer changed; drops subscriptions that error, trip their
  // budget, or whose connection is gone. Runs on the mutating session's
  // thread, after the mutation's own "done" line.
  void NotifySubscribers();
  // Drops every subscription owned by `conn` (connection teardown).
  void DropSubscriptionsFor(const Conn* conn);
  void TraceSubscription(std::string_view cause, uint64_t id,
                         std::string_view detail, uint64_t delivered);

  QueryService* service_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  std::thread accept_thread_;
  std::vector<std::thread> sessions_;   // guarded by mu_; running sessions
  std::vector<std::thread> finished_;   // guarded by mu_; exited sessions
                                        // awaiting a join (reaped by the
                                        // accept loop and by Stop())
  std::vector<int> session_fds_;        // guarded by mu_; open fds only
  size_t max_line_bytes_ = 16u << 20;   // per-connection line-length cap

  // Subscription registry. subs_mu_ is held for the whole notify sweep
  // (subscribe/unsubscribe wait it out); it is never taken while holding
  // mu_ or a Conn::write_mu, and the sweep takes write mutexes under it —
  // so the order is subs_mu_ -> write_mu, never the reverse.
  std::mutex subs_mu_;
  std::map<uint64_t, Subscription> subs_;
  std::atomic<uint64_t> next_sub_id_{1};
  size_t max_subscriptions_ = 64;

  std::mutex stop_mu_;  // serialises Stop(); never held with mu_ waits
  bool stopped_ = false;
};

}  // namespace seprec

#endif  // SEPREC_SERVER_SERVER_H_
