#include "server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/string_util.h"

namespace seprec::json {

namespace {

const Value& NullValue() {
  static const Value kNull;
  return kNull;
}
const std::string& EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}
const Array& EmptyArray() {
  static const Array kEmpty;
  return kEmpty;
}
const Object& EmptyObject() {
  static const Object kEmpty;
  return kEmpty;
}

}  // namespace

Value::Value(uint64_t n) {
  if (n <= static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    v_ = static_cast<int64_t>(n);
  } else {
    v_ = static_cast<double>(n);
  }
}

bool Value::as_bool(bool fallback) const {
  if (const bool* b = std::get_if<bool>(&v_)) return *b;
  return fallback;
}

int64_t Value::as_int(int64_t fallback) const {
  if (const int64_t* i = std::get_if<int64_t>(&v_)) return *i;
  if (const double* d = std::get_if<double>(&v_)) {
    return static_cast<int64_t>(*d);
  }
  return fallback;
}

double Value::as_double(double fallback) const {
  if (const double* d = std::get_if<double>(&v_)) return *d;
  if (const int64_t* i = std::get_if<int64_t>(&v_)) {
    return static_cast<double>(*i);
  }
  return fallback;
}

const std::string& Value::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&v_)) return *s;
  return EmptyString();
}

const Array& Value::as_array() const {
  if (const Array* a = std::get_if<Array>(&v_)) return *a;
  return EmptyArray();
}

const Object& Value::as_object() const {
  if (const Object* o = std::get_if<Object>(&v_)) return *o;
  return EmptyObject();
}

const Value& Value::Get(std::string_view key) const {
  if (const Object* o = std::get_if<Object>(&v_)) {
    auto it = o->find(std::string(key));
    if (it != o->end()) return it->second;
  }
  return NullValue();
}

bool Value::Has(std::string_view key) const {
  const Object* o = std::get_if<Object>(&v_);
  return o != nullptr && o->count(std::string(key)) > 0;
}

namespace {

// Recursive-descent parser. Tracks position for error messages and depth
// to bound stack use on adversarial input (the socket is local-only, but a
// malformed client should get an error, not a crash).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Value> ParseDocument() {
    SkipWhitespace();
    SEPREC_ASSIGN_OR_RETURN(Value v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(std::string_view what) const {
    return InvalidArgumentError(
        StrCat("JSON parse error at byte ", pos_, ": ", what));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  StatusOr<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        SEPREC_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return Value(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Value(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return Value(nullptr);
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  StatusOr<Value> ParseObject(int depth) {
    ++pos_;  // '{'
    Object obj;
    SkipWhitespace();
    if (Consume('}')) return Value(std::move(obj));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      SEPREC_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SEPREC_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      obj.insert_or_assign(std::move(key), std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value(std::move(obj));
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<Value> ParseArray(int depth) {
    ++pos_;  // '['
    Array arr;
    SkipWhitespace();
    if (Consume(']')) return Value(std::move(arr));
    while (true) {
      SEPREC_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      arr.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value(std::move(arr));
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          SEPREC_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          // Combine a surrogate pair when one follows; a lone surrogate
          // encodes as the replacement character rather than erroring.
          if (cp >= 0xD800 && cp <= 0xDBFF &&
              text_.substr(pos_, 2) == "\\u") {
            size_t save = pos_;
            pos_ += 2;
            SEPREC_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              pos_ = save;
              cp = 0xFFFD;
            }
          } else if (cp >= 0xD800 && cp <= 0xDFFF) {
            cp = 0xFFFD;
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  StatusOr<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<uint32_t>(c - 'A' + 10);
      else return Error("invalid hex digit in \\u escape");
    }
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  StatusOr<Value> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return Error("invalid number");
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Value(static_cast<int64_t>(v));
      }
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    return Value(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void SerializeTo(const Value& value, std::string* out);

void SerializeString(const std::string& s, std::string* out) {
  out->push_back('"');
  *out += Escape(s);
  out->push_back('"');
}

void SerializeTo(const Value& value, std::string* out) {
  if (value.is_null()) {
    *out += "null";
  } else if (value.is_bool()) {
    *out += value.as_bool() ? "true" : "false";
  } else if (value.is_int()) {
    *out += std::to_string(value.as_int());
  } else if (value.is_number()) {
    double d = value.as_double();
    if (std::isfinite(d)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      *out += buf;
    } else {
      *out += "null";  // JSON has no Inf/NaN
    }
  } else if (value.is_string()) {
    SerializeString(value.as_string(), out);
  } else if (value.is_array()) {
    out->push_back('[');
    bool first = true;
    for (const Value& v : value.as_array()) {
      if (!first) out->push_back(',');
      first = false;
      SerializeTo(v, out);
    }
    out->push_back(']');
  } else {
    out->push_back('{');
    bool first = true;
    for (const auto& [k, v] : value.as_object()) {
      if (!first) out->push_back(',');
      first = false;
      SerializeString(k, out);
      out->push_back(':');
      SerializeTo(v, out);
    }
    out->push_back('}');
  }
}

}  // namespace

StatusOr<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

std::string Serialize(const Value& value) {
  std::string out;
  SerializeTo(value, &out);
  return out;
}

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace seprec::json
