// A minimal JSON value, parser, and serializer for the query service's
// JSON-lines protocol (DESIGN.md section 10). The rest of the tree only
// ever WRITES JSON (trace sinks, bench --json); the server is the first
// component that must also read it, so this stays deliberately small:
// UTF-8 in/out, int64-exact integers, objects with stable (sorted) key
// order so responses are byte-reproducible.
#ifndef SEPREC_SERVER_JSON_H_
#define SEPREC_SERVER_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/status.h"

namespace seprec::json {

class Value;
using Array = std::vector<Value>;
// std::map (not unordered) so Serialize emits keys in one canonical order.
using Object = std::map<std::string, Value>;

// A JSON document node. Integers that fit int64 parse exactly (the
// protocol carries ids, budgets, and row counts); anything fractional or
// out of range falls back to double.
class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(int64_t n) : v_(n) {}
  Value(int n) : v_(static_cast<int64_t>(n)) {}
  Value(uint64_t n);  // falls back to double above INT64_MAX
  Value(double d) : v_(d) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(std::string_view s) : v_(std::string(s)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_number() const { return is_int() || std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool(bool fallback = false) const;
  int64_t as_int(int64_t fallback = 0) const;
  double as_double(double fallback = 0.0) const;
  const std::string& as_string() const;  // empty string when not a string
  const Array& as_array() const;         // empty array when not an array
  const Object& as_object() const;       // empty object when not an object

  // Object member lookup; returns a shared null Value when absent or when
  // this is not an object — chainable without null checks.
  const Value& Get(std::string_view key) const;
  bool Has(std::string_view key) const;

 private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      v_;
};

// Parses exactly one JSON document (trailing whitespace allowed, anything
// else after it is an error). Depth-limited; invalid input returns
// INVALID_ARGUMENT with a byte offset in the message.
StatusOr<Value> Parse(std::string_view text);

// Compact one-line serialization: no spaces, object keys sorted, strings
// escaped per RFC 8259 (control characters as \u00XX).
std::string Serialize(const Value& value);

// Escapes `s` as the INTERIOR of a JSON string (no surrounding quotes).
std::string Escape(std::string_view s);

}  // namespace seprec::json

#endif  // SEPREC_SERVER_JSON_H_
