// QueryService: the paper's compile-once/evaluate-many split as a
// long-lived service (DESIGN.md section 10).
//
// The service owns nothing but caches: the Database is the caller's, and
// every request executes against it with per-request isolation (the
// checkpoint is rolled back even on success, so one program's derived
// tuples never leak into another's evaluation). What a request pays for is
// therefore parse + detection + plan compilation + phase 1 + phase 2; the
// three cache layers peel those costs off front to back:
//
//   processor cache   program-text fingerprint -> parsed + analysed
//                     QueryProcessor (detection runs once per program)
//   prepared cache    (program, predicate, bound-position set, strategy)
//                     -> PreparedQuery with the compiled Figure-2 schema
//                     (rectification + plan compilation run once per
//                     selection shape)
//   closure cache     the prepared key + the selection constants + the
//                     database generation -> the phase-1 closure (a
//                     repeated selection skips straight to phase 2)
//
// Invalidation is by generation: every real EDB mutation bumps
// Database::generation(), which is part of the closure key, so stale
// closures simply stop matching (and are swept). Processor and prepared
// entries are database-INDEPENDENT by the paper's argument — detection and
// schema instantiation never look at the data — so they survive mutations.
//
// Thread model: Execute may be called from any number of session threads
// concurrently. Parsing and cache probes run concurrently (cache_mu_,
// reader/writer); evaluation, schema compilation, and Load serialise on
// db_mu_ (the storage layer has one-mutator/many-reader semantics); answer
// rendering runs after db_mu_ is released (SymbolTable has its own
// reader/writer guard). Per-request ExecutionLimits build a private
// governor per request, so one request tripping its budget cannot degrade
// another.
#ifndef SEPREC_SERVER_SERVICE_H_
#define SEPREC_SERVER_SERVICE_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/compiler.h"
#include "eval/trace.h"
#include "storage/database.h"
#include "storage/io.h"
#include "storage/recovery.h"
#include "util/status.h"

namespace seprec {

struct ServiceOptions {
  // Cache capacities (entries, LRU-evicted). Zero disables the layer.
  size_t max_processors = 32;
  size_t max_prepared = 64;
  size_t max_closures = 256;

  // Baked into every compiled plan at Prepare time; per-request limits
  // cannot change it (they CAN still set budgets/deadlines).
  ParallelPolicy parallel;

  // Limits applied when a request carries none (Unlimited() by default).
  ExecutionLimits default_limits;

  // Optional sink observing every request: cache events, session events,
  // and the engines' own evaluation events. Must outlive the service.
  TraceSink* trace = nullptr;

  // Optional durability layer (borrowed, must outlive the service). When
  // set, LoadTsv appends each parsed batch to the WAL BEFORE applying it
  // (write-ahead: an acknowledged load is durable), and a load that grows
  // the WAL past its threshold triggers an automatic checkpoint.
  DurableStorage* storage = nullptr;

  // Largest mutation batch the incremental closure-maintenance path will
  // patch through DRed / semi-naive deltas. Past this, the update falls
  // back to wholesale closure invalidation: overdeletion can provisionally
  // touch far more tuples than it ends up deleting, and for a large-enough
  // delta a fresh phase-1 run is cheaper than patching. Zero disables
  // incremental maintenance entirely (every effective mutation purges).
  size_t max_incremental_delta = 4096;
};

// One query request: a program, one query atom (text), and per-request
// execution limits.
struct ServiceRequest {
  std::string program;            // full Datalog source text
  std::string query;              // query atom, e.g. "t(1, X)"; empty =>
                                  // run every ?- query in the program
  Strategy strategy = Strategy::kAuto;
  ExecutionLimits limits;         // per-request governor bounds
  bool use_cache = true;          // false bypasses prepared+closure caches
                                  // (control runs, benches)
  bool optimize = true;           // false skips the static-analysis pass
                                  // pipeline at Prepare time (ablation /
                                  // bit-identity control runs); optimized
                                  // and unoptimized plans cache separately
};

// The outcome of one query of a request.
struct QueryOutcome {
  std::string query_text;         // the query as parsed
  QueryResult result;             // answer (raw Values), stats, strategy...
  std::vector<std::string> tuples;  // rendered "(a, b)" rows, sorted
  bool plan_cache_hit = false;    // prepared entry served (no re-compile)
  bool closure_cache_hit = false; // phase 1 skipped from a cached closure
  bool closure_stored = false;    // this run's closure entered the cache
  uint64_t detection_passes = 0;  // AnalyzeSeparable runs this query cost
  uint64_t generation = 0;        // database generation it ran against
  double seconds = 0.0;           // wall time inside the service
  std::string pass_summary;       // per-pass verdicts of the plan's pipeline
                                  // run ("dead-rules=proved,..."), empty
                                  // when the pipeline did not run
};

// Aggregate cache counters; monotonic over the service's lifetime except
// the entry counts and generation, which are current values.
struct ServiceStats {
  uint64_t requests = 0;
  uint64_t processor_hits = 0;
  uint64_t processor_misses = 0;
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
  uint64_t closure_hits = 0;
  uint64_t closure_misses = 0;
  uint64_t closure_stores = 0;
  uint64_t closure_patches = 0;  // entries kept exact through an EDB
                                 // mutation by incremental maintenance
  uint64_t closure_drops = 0;    // entries invalidated by a mutation
                                 // (non-maintainable or fallback purge)
  size_t processors = 0;  // current entry count
  size_t plans = 0;       // current entry count
  size_t closures = 0;    // current entry count
  uint64_t generation = 0;
};

class QueryService {
 public:
  // `db` is borrowed and must outlive the service. The service is the
  // database's single mutation path while it lives (callers must not write
  // to `db` concurrently with Execute/Load).
  explicit QueryService(Database* db, ServiceOptions options = {});
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Executes every query of `request` (the one in request.query, or every
  // ?- query in the program text). Parse and analysis errors fail the
  // whole request; per-query evaluation errors fail with the first
  // erroring query's status. Thread-safe.
  StatusOr<std::vector<QueryOutcome>> Execute(const ServiceRequest& request);

  // Loads TSV tuples into `relation` (created on demand). Returns the
  // number of NEW tuples. Thread-safe (serialises with Execute).
  // Equivalent to ApplyTsv with BatchOp::kInsert.
  StatusOr<size_t> LoadTsv(std::string_view relation, std::istream& in);
  StatusOr<size_t> LoadTsvFile(std::string_view relation,
                               const std::string& path);

  // Parses TSV tuples and applies them as `op`: kInsert appends (LoadTsv),
  // kDelete erases matching rows. Returns the number of rows that actually
  // changed the relation. Thread-safe (serialises with Execute).
  StatusOr<size_t> ApplyTsv(std::string_view relation, BatchOp op,
                            std::istream& in);
  StatusOr<size_t> ApplyTsvFile(std::string_view relation, BatchOp op,
                                const std::string& path);

  // Applies an already-built mutation batch (the row-level entry point the
  // server's insert/delete load modes use). The whole batch is validated,
  // WAL-logged (when durability is attached), then applied; cached phase-1
  // closures are PATCHED in place where their selection shape admits
  // incremental maintenance (see ClosureMaintainability) and invalidated
  // otherwise. A no-op batch (all duplicates / all misses) leaves the
  // generation and every cached closure untouched. Returns the number of
  // rows that actually changed the relation.
  StatusOr<size_t> Apply(const TupleBatch& batch);

  // Snapshots the database and retires the WAL through the attached
  // DurableStorage; FAILED_PRECONDITION when the service has none.
  // Thread-safe (serialises with Execute/LoadTsv).
  StatusOr<CheckpointInfo> Checkpoint();

  ServiceStats stats() const;

  // Drops every closure entry (bench hook: isolates plan-cache-hit cost
  // from closure-cache-hit cost).
  void PurgeClosures();
  // Drops every cached artifact (processors, prepared plans, closures).
  void PurgeAll();

  Database* db() { return db_; }
  TraceSink* trace() const { return options_.trace; }

 private:
  struct ProcessorEntry;
  struct PlanEntry;
  struct ClosureEntry;

  // Returns the cached (or freshly parsed + analysed) processor for
  // `program_text`, setting *was_cached; a hit refreshes the LRU tick and
  // the hit/miss counters so callers need no second racy probe.
  StatusOr<std::shared_ptr<ProcessorEntry>> GetProcessor(
      std::string_view program_text, bool* was_cached);
  void TraceCache(std::string_view cache, std::string_view what,
                  std::string_view key);
  // Checkpoint body; caller holds db_mu_.
  StatusOr<CheckpointInfo> CheckpointLocked();
  // Apply body; caller holds db_mu_. WAL-logs, applies, and patches or
  // invalidates the cached closures.
  StatusOr<size_t> ApplyLocked(const TupleBatch& batch);
  // Classifies the freshly captured closure `entry` for incremental
  // maintenance and, when maintainable, builds its DRed engine and
  // fast-initialises the maintained relations from the captured rows.
  // Caller holds db_mu_.
  void AttachMaintenance(const PreparedQuery& prepared, const Atom& query,
                         ClosureEntry* entry);

  Database* db_;
  ServiceOptions options_;

  // Serialises evaluation, schema compilation, and loads (the storage
  // layer's single-mutator model). Held while touching db_ in any way
  // that can write; NOT held while rendering answers.
  std::mutex db_mu_;

  // Guards the three cache maps and the stats counters.
  mutable std::shared_mutex cache_mu_;
  std::map<uint64_t, std::shared_ptr<ProcessorEntry>> processors_;
  std::map<std::string, std::shared_ptr<PlanEntry>> plans_;
  std::map<std::string, std::shared_ptr<ClosureEntry>> closures_;
  uint64_t lru_tick_ = 0;
  ServiceStats stats_;
};

}  // namespace seprec

#endif  // SEPREC_SERVER_SERVICE_H_
