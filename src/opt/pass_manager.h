// PassManager: runs the ordered static-analysis pipeline over one query.
//
// The standard pipeline is
//
//   dead-rules     drop rules unreachable from the query predicate
//   bounded        eliminate bounded recursions (union-of-CQs rewrite)
//   separability   Definition 2.4 detection on the surviving program
//
// in that order: shrinking the rule set first keeps the (worst-case
// exponential) boundedness enumeration small, and separability runs last
// so it judges the program the query will actually compile against.
// QueryProcessor::Prepare runs the pipeline once per prepared query and
// records the outcomes with the compiled plan; `seprec_cli analyze`
// renders them for humans.
#ifndef SEPREC_OPT_PASS_MANAGER_H_
#define SEPREC_OPT_PASS_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "opt/pass.h"

namespace seprec {

struct PassPipelineOptions {
  SeparabilityOptions separability;
  // Largest bound k the boundedness pass tries (see PassContext).
  size_t max_bound = 3;
};

struct PipelineResult {
  Program program;                    // the post-pipeline program
  std::vector<PassOutcome> outcomes;  // one per pass, pipeline order
  bool rewritten = false;             // some pass changed the program
  bool derecursed = false;            // query predicate left recursion
};

// Renders outcomes as "dead-rules=proved,bounded=rewritten,..." — the
// compact form recorded in plan-cache metadata and the server's answer
// event.
std::string SummarizeOutcomes(const std::vector<PassOutcome>& outcomes);

class PassManager {
 public:
  // The dead-rules / bounded / separability pipeline described above.
  static PassManager Standard(const PassPipelineOptions& options = {});

  // An empty manager; Add passes in execution order.
  explicit PassManager(const PassPipelineOptions& options = {})
      : options_(options) {}

  void Add(std::unique_ptr<Pass> pass);

  // Runs every pass over `program` for `query`. Diagnostics (S2xx notes
  // plus anything a pass absorbs) accumulate in `sink`; `sink` may be null
  // when the caller only wants the outcomes.
  PipelineResult Run(const Program& program, const Atom& query,
                     DiagnosticSink* sink) const;

 private:
  PassPipelineOptions options_;
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace seprec

#endif  // SEPREC_OPT_PASS_MANAGER_H_
