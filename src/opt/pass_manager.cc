#include "opt/pass_manager.h"

#include <utility>

#include "opt/bounded.h"
#include "opt/dead_rules.h"
#include "opt/separability_pass.h"
#include "util/string_util.h"

namespace seprec {

std::string_view PassVerdictToString(PassVerdict verdict) {
  switch (verdict) {
    case PassVerdict::kProved: return "proved";
    case PassVerdict::kRewritten: return "rewritten";
    case PassVerdict::kAbstained: return "abstained";
  }
  return "?";
}

std::string SummarizeOutcomes(const std::vector<PassOutcome>& outcomes) {
  std::string out;
  for (const PassOutcome& o : outcomes) {
    if (!out.empty()) out += ',';
    out += StrCat(o.pass, "=", PassVerdictToString(o.verdict));
  }
  return out;
}

PassManager PassManager::Standard(const PassPipelineOptions& options) {
  PassManager pm(options);
  pm.Add(MakeDeadRulePass());
  pm.Add(MakeBoundedPass());
  pm.Add(MakeSeparabilityPass());
  return pm;
}

void PassManager::Add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

PipelineResult PassManager::Run(const Program& program, const Atom& query,
                                DiagnosticSink* sink) const {
  PassContext ctx;
  ctx.program = program;
  ctx.query = query;
  ctx.separability = options_.separability;
  ctx.max_bound = options_.max_bound;

  DiagnosticSink local;
  DiagnosticSink* out = sink != nullptr ? sink : &local;

  PipelineResult result;
  for (const std::unique_ptr<Pass>& pass : passes_) {
    PassOutcome outcome = pass->Run(&ctx, out);
    result.rewritten |= outcome.verdict == PassVerdict::kRewritten;
    result.outcomes.push_back(std::move(outcome));
  }
  result.program = std::move(ctx.program);
  result.derecursed = ctx.derecursed;
  return result;
}

}  // namespace seprec
