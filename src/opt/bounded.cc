#include "opt/bounded.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "datalog/analysis.h"
#include "datalog/containment.h"
#include "datalog/expand.h"
#include "util/string_util.h"

namespace seprec {

namespace {

// Enumeration guards: boundedness is only worth proving for small rule
// sets (the expansion grows as (#recursive rules)^depth), and abstaining
// is always sound.
constexpr size_t kMaxStrings = 512;
constexpr size_t kMaxAtomsPerString = 64;

// The outcome of TryEliminate for one predicate.
struct Elimination {
  bool rewritten = false;
  std::string note;  // why the predicate was skipped (when !rewritten)
  size_t bound = 0;
  size_t rules_before = 0;
  size_t rules_after = 0;
};

class BoundedPass : public Pass {
 public:
  std::string_view name() const override { return "bounded"; }

  PassOutcome Run(PassContext* ctx, DiagnosticSink* sink) const override {
    PassOutcome outcome;
    outcome.pass = std::string(name());

    StatusOr<ProgramInfo> info = ProgramInfo::Analyze(ctx->program);
    if (!info.ok()) {
      outcome.verdict = PassVerdict::kAbstained;
      outcome.detail =
          StrCat("program analysis failed: ", info.status().message());
      return outcome;
    }

    // Every recursive predicate the query reads (itself included) is a
    // candidate; eliminating a subsidiary bounded recursion still saves
    // fixpoint rounds even when the query predicate stays recursive.
    std::set<std::string> wanted = info->DependenciesOf(ctx->query.predicate);
    wanted.insert(ctx->query.predicate);
    std::vector<std::string> candidates;
    for (const std::string& pred : wanted) {
      if (info->IsRecursive(pred)) candidates.push_back(pred);
    }
    if (candidates.empty()) {
      outcome.verdict = PassVerdict::kAbstained;
      outcome.detail = StrCat("no recursive predicate reachable from '",
                              ctx->query.predicate, "'");
      return outcome;
    }

    const bool query_was_recursive =
        info->IsRecursive(ctx->query.predicate);
    size_t rewrites = 0;
    std::vector<std::string> skipped;
    for (const std::string& pred : candidates) {
      Elimination e = TryEliminate(pred, &ctx->program, ctx->max_bound);
      if (e.rewritten) {
        ++rewrites;
        const Rule* first = ctx->program.RulesFor(pred).front();
        sink->Report(
            "S201", Severity::kNote, first->span,
            StrCat("bounded recursion: '", pred, "' reaches its fixpoint ",
                   "after ", e.bound + 1, " round(s) on every database; ",
                   e.rules_before, " rule(s) rewritten to a non-recursive ",
                   "union of ", e.rules_after,
                   " conjunctive quer(ies), verified by containment"));
      } else {
        skipped.push_back(StrCat("'", pred, "': ", e.note));
      }
    }

    if (rewrites == 0) {
      outcome.verdict = PassVerdict::kAbstained;
      outcome.detail = StrJoin(skipped, "; ");
      sink->Report("S202", Severity::kNote, ctx->query.span,
                   StrCat("boundedness not established (checked depth <= ",
                          ctx->max_bound, "): ", outcome.detail));
      return outcome;
    }

    // The query predicate is de-recursed only when nothing it still reads
    // is recursive — that is what licenses the single-round
    // Strategy::kNonRecursive plan downstream.
    StatusOr<ProgramInfo> after = ProgramInfo::Analyze(ctx->program);
    if (after.ok() && query_was_recursive) {
      std::set<std::string> still =
          after->DependenciesOf(ctx->query.predicate);
      still.insert(ctx->query.predicate);
      bool any_recursive = false;
      for (const std::string& pred : still) {
        if (after->IsRecursive(pred)) any_recursive = true;
      }
      ctx->derecursed = !any_recursive;
    }

    outcome.verdict = PassVerdict::kRewritten;
    outcome.detail = StrCat("eliminated ", rewrites,
                            " bounded recursion(s)",
                            ctx->derecursed ? "; query is now non-recursive"
                                            : "");
    if (!skipped.empty()) {
      outcome.detail += StrCat("; kept ", StrJoin(skipped, "; "));
    }
    return outcome;
  }

 private:
  // Attempts to prove `pred` bounded in *program and to replace its rules
  // by the non-recursive union. On success mutates *program.
  static Elimination TryEliminate(const std::string& pred, Program* program,
                                  size_t max_bound) {
    Elimination result;

    // Only pure positive-relational definitions expand into conjunctive
    // queries the containment test understands.
    for (const Rule* rule : program->RulesFor(pred)) {
      if (rule->aggregate.has_value()) {
        result.note = "aggregate rule";
        return result;
      }
      for (const Literal& lit : rule->body) {
        if (!lit.IsPositiveAtom()) {
          result.note = "body has negation or builtins";
          return result;
        }
      }
    }

    StatusOr<LinearRecursion> rec = ExtractLinearRecursion(*program, pred);
    if (!rec.ok()) {
      result.note = std::string(rec.status().message());
      return result;
    }
    if (rec->recursive_rules.empty() || rec->exit_rules.empty()) {
      result.note = "no recursive/exit rule pair after canonicalization";
      return result;
    }

    // Canonicalization (rectification) may have introduced `=` literals
    // for repeated head variables or head constants; Expand would reject
    // them, so bail out up front.
    Program canon;
    for (const Rule& rule : rec->recursive_rules) canon.rules.push_back(rule);
    for (const Rule& rule : rec->exit_rules) canon.rules.push_back(rule);
    for (const Rule& rule : canon.rules) {
      for (const Literal& lit : rule.body) {
        if (!lit.IsPositiveAtom()) {
          result.note = "rectified form needs equality literals";
          return result;
        }
      }
    }

    Atom head;
    head.predicate = rec->predicate;
    for (const std::string& var : rec->head_vars) {
      head.args.push_back(Term::Var(var));
    }

    StatusOr<std::vector<ExpansionString>> strings =
        Expand(canon, head, max_bound + 1);
    if (!strings.ok()) {
      result.note = std::string(strings.status().message());
      return result;
    }
    if (strings->size() > kMaxStrings) {
      result.note = StrCat("expansion too large (", strings->size(),
                           " strings)");
      return result;
    }
    for (const ExpansionString& s : *strings) {
      if (s.atoms.size() > kMaxAtomsPerString) {
        result.note = "expansion string too long";
        return result;
      }
    }

    // Strings grouped by recursion depth (number of rule applications).
    std::map<size_t, std::vector<const ExpansionString*>> by_depth;
    for (const ExpansionString& s : *strings) {
      by_depth[s.derivation.size()].push_back(&s);
    }

    // Smallest k whose depth-(k+1) strings are all covered by some string
    // of depth <= k. Coverage at k+1 extends to every deeper string
    // because containment is preserved under further rule application.
    bool bounded = false;
    size_t bound = 0;
    std::vector<const ExpansionString*> shallow;
    for (size_t k = 0; k <= max_bound && !bounded; ++k) {
      for (const ExpansionString* s : by_depth[k]) shallow.push_back(s);
      bool all_covered = true;
      for (const ExpansionString* deep : by_depth[k + 1]) {
        ConjunctiveQuery specific = FromExpansion(*deep, head);
        bool covered = false;
        for (const ExpansionString* s : shallow) {
          ConjunctiveQuery general = FromExpansion(*s, head);
          StatusOr<bool> contains = Contains(general, specific);
          if (contains.ok() && contains.value()) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          all_covered = false;
          break;
        }
      }
      if (all_covered) {
        bounded = true;
        bound = k;
      }
    }
    if (!bounded) {
      result.note = StrCat("not bounded up to depth ", max_bound);
      return result;
    }

    // t is equivalent to the union of its depth <= k strings: each becomes
    // one non-recursive rule. The rules are safe (every head variable is
    // bound by the string's atoms, inherited from the safe originals) and
    // mention `pred` nowhere, so the predicate leaves its recursive SCC.
    const SourceSpan span = program->RulesFor(pred).front()->span;
    std::vector<Rule> replacement;
    for (const ExpansionString* s : shallow) {
      Rule rule;
      rule.head = head;
      rule.head.span = span;
      rule.span = span;
      for (const Atom& atom : s->atoms) {
        rule.body.push_back(Literal::MakeAtom(atom));
      }
      if (!UnrestrictedVars(rule).empty()) {
        result.note = "rewritten rule would be unsafe";
        return result;
      }
      replacement.push_back(std::move(rule));
    }

    Program rewritten;
    bool inserted = false;
    size_t before = 0;
    for (Rule& rule : program->rules) {
      if (rule.head.predicate != pred) {
        rewritten.rules.push_back(std::move(rule));
        continue;
      }
      ++before;
      if (!inserted) {
        for (Rule& r : replacement) rewritten.rules.push_back(std::move(r));
        inserted = true;
      }
    }
    result.rewritten = true;
    result.bound = bound;
    result.rules_before = before;
    result.rules_after = shallow.size();
    *program = std::move(rewritten);
    return result;
  }
};

}  // namespace

std::unique_ptr<Pass> MakeBoundedPass() {
  return std::make_unique<BoundedPass>();
}

}  // namespace seprec
