#include "opt/nonrecursive.h"

#include <atomic>
#include <string>
#include <vector>

#include "datalog/analysis.h"
#include "eval/join_plan.h"
#include "eval/trace.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace seprec {

namespace {

constexpr char kEngineName[] = "nonrecursive";

Status RunNonRecursive(const Program& program, Database* db,
                       const FixpointOptions& options, ExecutionContext* ctx,
                       EvalStats* stats) {
  WallTimer timer;
  SEPREC_ASSIGN_OR_RETURN(ProgramInfo info, ProgramInfo::Analyze(program));
  for (const auto& [name, pred] : info.predicates()) {
    if (pred.is_recursive) {
      return FailedPreconditionError(
          StrCat("'", name, "' is recursive; the non-recursive evaluator ",
                 "requires a recursion-free program"));
    }
  }
  for (const Rule& rule : program.rules) {
    if (rule.aggregate.has_value()) {
      return FailedPreconditionError(
          "aggregate rules are not supported by the non-recursive "
          "evaluator");
    }
  }

  TraceSink* trace = options.trace;
  uint64_t polls_before = 0;
  uint64_t attempts_before = 0;
  uint64_t novel_before = 0;
  if (trace != nullptr) {
    ctx->SetTrace(trace);
    db->counters().active = true;
    polls_before = ctx->polls();
    attempts_before =
        db->counters().attempts.load(std::memory_order_relaxed);
    novel_before = db->counters().novel.load(std::memory_order_relaxed);
    TraceEvent e;
    e.kind = TraceEventKind::kEngineStart;
    e.engine = kEngineName;
    trace->Emit(e);
  }

  const bool measuring = stats != nullptr || trace != nullptr;
  uint64_t run_tuples = 0;
  Status result = Status::OK();
  // Each stratum of a recursion-free program is one predicate whose rules
  // read strictly lower strata, so a single pass per rule in stratum order
  // is already the fixpoint.
  for (size_t s = 0; s < info.strata().size() && result.ok(); ++s) {
    bool any_idb = false;
    for (const std::string& pred : info.strata()[s]) {
      if (info.IsIdb(pred)) any_idb = true;
    }
    if (!any_idb) continue;
    for (const std::string& pred : info.strata()[s]) {
      const PredicateInfo* pi = info.Find(pred);
      if (!pi->is_idb) continue;
      SEPREC_RETURN_IF_ERROR(db->CreateRelation(pred, pi->arity).status());
    }

    const std::string phase =
        StrCat(options.trace_phase_prefix, "stratum", s);
    std::vector<const Rule*> rules = info.RulesOfStratum(s);
    bool overflow = false;
    for (const Rule* rule : rules) {
      PlanOptions plan_opts;
      plan_opts.disable_indexes = options.disable_indexes;
      plan_opts.join_order = options.no_cbo ? JoinOrderMode::kTextual
                                            : JoinOrderMode::kCostBased;
      SEPREC_ASSIGN_OR_RETURN(RulePlan plan,
                              RulePlan::Compile(*rule, db, plan_opts));
      Relation* out = db->Find(rule->head.predicate);
      RuleExecMetrics metrics;
      size_t inserted =
          plan.ExecuteInto(out, &overflow, measuring ? &metrics : nullptr);
      run_tuples += inserted;
      ctx->NoteTuples(inserted);
      if (stats != nullptr) {
        stats->tuples_inserted += inserted;
        stats->NoteRule(rule->ToString(), metrics.emitted, inserted,
                        metrics.probes);
      }
      if (trace != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kRule;
        e.engine = kEngineName;
        e.phase = phase;
        e.round = 0;
        e.rule = rule->ToString();
        e.emitted = metrics.emitted;
        e.inserted = inserted;
        e.probes = metrics.probes;
        trace->Emit(e);
      }
      if (ctx->ShouldStop()) break;
    }
    if (overflow) {
      result = OutOfRangeError("arithmetic overflow during evaluation");
      break;
    }
    if (ctx->stopped()) break;
  }

  if (stats != nullptr) {
    for (const auto& [name, pred] : info.predicates()) {
      if (!pred.is_idb) continue;
      const Relation* rel = db->Find(name);
      stats->NoteRelation(name, rel == nullptr ? 0 : rel->size());
    }
    stats->seconds = timer.Seconds();
    if (stats->algorithm.empty()) stats->algorithm = kEngineName;
  }
  if (trace != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kEngineFinish;
    e.engine = kEngineName;
    e.seconds = timer.Seconds();
    e.iterations = 0;  // the headline: no fixpoint rounds ran
    e.tuples = run_tuples;
    e.polls = ctx->polls() - polls_before;
    e.insert_attempts =
        db->counters().attempts.load(std::memory_order_relaxed) -
        attempts_before;
    e.insert_new = db->counters().novel.load(std::memory_order_relaxed) -
                   novel_before;
    trace->Emit(e);
  }
  return result;
}

}  // namespace

Status EvaluateNonRecursive(const Program& program, Database* db,
                            const FixpointOptions& options,
                            EvalStats* stats) {
  GovernorScope governor(options.limits, options.cancel, options.context);
  governor.ctx()->TrackMemory(&db->accountant());
  SEPREC_RETURN_IF_ERROR(
      RunNonRecursive(program, db, options, governor.ctx(), stats));
  return governor.ExitStatus();
}

}  // namespace seprec
