#include "opt/separability_pass.h"

#include <string>

#include "datalog/analysis.h"
#include "separable/detection.h"
#include "util/string_util.h"

namespace seprec {

namespace {

class SeparabilityPass : public Pass {
 public:
  std::string_view name() const override { return "separability"; }

  PassOutcome Run(PassContext* ctx, DiagnosticSink* sink) const override {
    PassOutcome outcome;
    outcome.pass = std::string(name());

    StatusOr<ProgramInfo> info = ProgramInfo::Analyze(ctx->program);
    if (!info.ok()) {
      outcome.verdict = PassVerdict::kAbstained;
      outcome.detail =
          StrCat("program analysis failed: ", info.status().message());
      return outcome;
    }
    if (!info->IsRecursive(ctx->query.predicate)) {
      outcome.verdict = PassVerdict::kAbstained;
      outcome.detail = StrCat(
          "'", ctx->query.predicate,
          "' is not recursive here; the Separable algorithm does not apply");
      return outcome;
    }

    DiagnosticSink local;
    StatusOr<SeparableRecursion> sep = AnalyzeSeparable(
        ctx->program, ctx->query.predicate, ctx->separability, &local);
    if (sep.ok()) {
      outcome.verdict = PassVerdict::kProved;
      outcome.detail = StrCat("separable: ", sep->classes.size(),
                              " equivalence class(es), ",
                              sep->persistent_positions.size(),
                              " persistent column(s)");
      const Rule* first =
          ctx->program.RulesFor(ctx->query.predicate).front();
      sink->Report("S206", Severity::kNote, first->span,
                   StrCat("'", ctx->query.predicate, "' is a separable ",
                          "recursion (Definition 2.4): ", outcome.detail));
      return outcome;
    }

    // Keep the full explainer (S1xx warnings) in the report, then record
    // the abstention with the detector's first reason.
    sink->Absorb(local);
    outcome.verdict = PassVerdict::kAbstained;
    outcome.detail = std::string(sep.status().message());
    sink->Report("S207", Severity::kNote, ctx->query.span,
                 StrCat("'", ctx->query.predicate, "' is not separable: ",
                        outcome.detail));
    return outcome;
  }
};

}  // namespace

std::unique_ptr<Pass> MakeSeparabilityPass() {
  return std::make_unique<SeparabilityPass>();
}

}  // namespace seprec
