// Direct evaluation of non-recursive programs: zero fixpoint rounds.
//
// The fixpoint engines charge every IDB stratum at least one full
// iteration (round 0 plus the empty-delta confirmation bookkeeping). For a
// program with no recursion at all — in particular, the output of the
// boundedness pass's recursion elimination — that machinery is pure
// overhead: each stratum is a single non-recursive predicate whose rules
// read only lower strata, so executing every rule's plan exactly once, in
// stratum order, materialises the full IDB.
//
// This evaluator does exactly that. Its trace reports engine
// "nonrecursive" with `iterations` 0 — the observable proof that a
// de-recursed query ran without a single fixpoint round — and it refuses
// (FAILED_PRECONDITION) programs with recursion or aggregates, so the
// compiler's fallback chain degrades to semi-naive instead of computing a
// wrong answer.
#ifndef SEPREC_OPT_NONRECURSIVE_H_
#define SEPREC_OPT_NONRECURSIVE_H_

#include "datalog/ast.h"
#include "eval/eval_stats.h"
#include "eval/fixpoint.h"
#include "storage/database.h"
#include "util/status.h"

namespace seprec {

// Materialises every IDB predicate of the non-recursive `program` into
// `db` with one plan execution per rule. Same governance contract as
// EvaluateSemiNaive: with options.context set the caller owns stop
// handling; otherwise a private governor converts trips into
// RESOURCE_EXHAUSTED / CANCELLED.
Status EvaluateNonRecursive(const Program& program, Database* db,
                            const FixpointOptions& options = {},
                            EvalStats* stats = nullptr);

}  // namespace seprec

#endif  // SEPREC_OPT_NONRECURSIVE_H_
