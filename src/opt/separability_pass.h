// Separability detection as a pipeline stage.
//
// The Definition 2.4 detector (separable/detection.h) used to be the
// compiler's one special-cased static analysis; here it is the final stage
// of the standard pipeline, running on whatever program the earlier
// rewriting passes left behind. A proved separability (S206) tells the
// strategy decision that the Figure-2 schema applies; a miss (S207, with
// the S1xx explainer warnings absorbed into the report) leaves the magic /
// semi-naive ladder. The pass never rewrites — it only proves or abstains.
#ifndef SEPREC_OPT_SEPARABILITY_PASS_H_
#define SEPREC_OPT_SEPARABILITY_PASS_H_

#include <memory>

#include "opt/pass.h"

namespace seprec {

std::unique_ptr<Pass> MakeSeparabilityPass();

}  // namespace seprec

#endif  // SEPREC_OPT_SEPARABILITY_PASS_H_
