// Dead-rule / unreachable-predicate elimination.
//
// A rule is dead for a query when its head predicate is not reachable from
// the query predicate in the predicate dependency graph (negated and
// aggregated body atoms count as dependencies, exactly as in
// ProgramInfo::Analyze — a rule needed only to DISPROVE tuples is live).
// Dead rules cannot influence the query's answer, so removing them shrinks
// every downstream cost: the boundedness enumeration, detection, plan
// compilation, and evaluation all see fewer rules.
//
// Emits one S204 note per removed rule and a single S205 summary naming
// the dropped predicates. Verdict: kRewritten when anything was removed,
// kProved ("every rule reachable") otherwise.
#ifndef SEPREC_OPT_DEAD_RULES_H_
#define SEPREC_OPT_DEAD_RULES_H_

#include <memory>

#include "opt/pass.h"

namespace seprec {

std::unique_ptr<Pass> MakeDeadRulePass();

}  // namespace seprec

#endif  // SEPREC_OPT_DEAD_RULES_H_
