// The static-analysis pass framework (DESIGN.md section 11).
//
// The paper's detection algorithm answers one static question — is this
// recursion separable? — and the compiler falls back to magic/semi-naive
// when the answer is no. The pass pipeline generalizes that shape: an
// ordered list of database-independent analyses over the parsed program,
// each of which either PROVES a property of the query's definition,
// REWRITES the program to an equivalent cheaper one, or ABSTAINS. Every
// decision is reported as a span-anchored S2xx diagnostic in the style of
// the S100..S107 separability explainer, so `seprec_cli analyze` can render
// the whole pipeline's reasoning as text, JSON, or SARIF.
//
// Codes produced by the standard pipeline (all kNote severity; the
// separability stage additionally absorbs the S1xx explainer warnings):
//
//   S200  pipeline summary: the chosen strategy and every pass verdict
//   S201  bounded recursion: rewritten to a non-recursive union of
//         conjunctive queries (names the bound k and the rule counts)
//   S202  boundedness not established (why the pass abstained)
//   S203  pipeline rewrite abandoned (rewritten program failed re-analysis)
//   S204  dead rule removed: its head cannot reach the query predicate
//   S205  unreachable predicate dropped (summary of S204 removals)
//   S206  separable recursion detected (classes and persistent columns)
//   S207  not separable (first failing Definition 2.4 condition)
//
// Passes never touch a Database — like detection (Section 3.1) their cost
// is polynomial in the rule set, which is what makes it affordable to run
// the pipeline once per prepared query and cache the verdicts with the
// compiled plan.
#ifndef SEPREC_OPT_PASS_H_
#define SEPREC_OPT_PASS_H_

#include <string>
#include <string_view>

#include "datalog/ast.h"
#include "datalog/diagnostics.h"
#include "separable/detection.h"

namespace seprec {

// What one pass did. kProved: established a property without changing the
// program (e.g. "every rule is reachable"). kRewritten: replaced the
// program with an equivalent one. kAbstained: could not conclude; the
// pipeline simply moves on.
enum class PassVerdict {
  kProved,
  kRewritten,
  kAbstained,
};

std::string_view PassVerdictToString(PassVerdict verdict);

struct PassOutcome {
  std::string pass;     // stable pass name ("dead-rules", "bounded", ...)
  PassVerdict verdict = PassVerdict::kAbstained;
  std::string detail;   // one-line human summary of the decision
};

// Mutable pipeline state threaded through the passes in order. A rewriting
// pass replaces `program`; later passes see the rewritten form.
struct PassContext {
  Program program;
  Atom query;  // the query shape driving the pipeline (constants allowed)

  // Forwarded to the separability stage.
  SeparabilityOptions separability;

  // Largest recursion depth k the boundedness pass tries to prove; the
  // check needs the expansion strings up to depth k+1, so this also bounds
  // the (worst-case exponential) enumeration.
  size_t max_bound = 3;

  // Set by the boundedness pass when the QUERY predicate's recursion was
  // eliminated: the compiler then knows a single non-recursive evaluation
  // round suffices (Strategy::kNonRecursive).
  bool derecursed = false;
};

class Pass {
 public:
  virtual ~Pass() = default;

  virtual std::string_view name() const = 0;

  // Runs over ctx->program, possibly replacing it; S2xx notes (and any
  // absorbed explainer diagnostics) go to `sink`, which is never null.
  virtual PassOutcome Run(PassContext* ctx, DiagnosticSink* sink) const = 0;
};

}  // namespace seprec

#endif  // SEPREC_OPT_PASS_H_
