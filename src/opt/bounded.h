// Boundedness detection and recursion elimination.
//
// A recursion is *bounded* when its fixpoint is reached after a constant
// number of rounds on every database — equivalently, when the union of its
// expansion strings (Figure 1 of the paper) up to some depth k already
// contains every deeper string. Bounded recursions are exactly the ones
// expressible without recursion (Naughton; Mazowiecki et al. survey the
// decidability frontier — PAPERS.md), and for a LINEAR recursion the
// Sagiv–Yannakakis union test makes the depth-k check sufficient:
//
//   every depth-(k+1) expansion string is contained in SOME string of
//   depth <= k   =>   the recursion is bounded with bound k,
//
// because a CQ is contained in a union of CQs iff it is contained in one
// disjunct, and containment is preserved by applying a further rule
// context — so coverage of depth k+1 extends inductively to all depths.
//
// The pass enumerates expansion strings with Expand (datalog/expand.h) and
// checks coverage with the Chandra–Merlin containment test
// (datalog/containment.h) — every rewrite this pass performs is therefore
// verified by the existing containment checker, never by ad-hoc syntactic
// reasoning. On success the predicate's rules are replaced by the
// non-recursive union of its depth <= k strings (S201); otherwise the pass
// abstains (S202).
#ifndef SEPREC_OPT_BOUNDED_H_
#define SEPREC_OPT_BOUNDED_H_

#include <memory>

#include "opt/pass.h"

namespace seprec {

std::unique_ptr<Pass> MakeBoundedPass();

}  // namespace seprec

#endif  // SEPREC_OPT_BOUNDED_H_
