#include "opt/dead_rules.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace seprec {

namespace {

class DeadRulePass : public Pass {
 public:
  std::string_view name() const override { return "dead-rules"; }

  PassOutcome Run(PassContext* ctx, DiagnosticSink* sink) const override {
    PassOutcome outcome;
    outcome.pass = std::string(name());

    // Dependency edges head -> body predicates, straight from the syntax
    // (no ProgramInfo needed, so the pass also works mid-pipeline on a
    // program another pass just rewrote).
    std::map<std::string, std::set<std::string>> deps;
    for (const Rule& rule : ctx->program.rules) {
      std::set<std::string>& out = deps[rule.head.predicate];
      for (const Atom* atom : rule.BodyAtoms()) {
        out.insert(atom->predicate);
      }
    }

    // Everything the query predicate transitively reads.
    std::set<std::string> reachable;
    std::vector<std::string> frontier{ctx->query.predicate};
    reachable.insert(ctx->query.predicate);
    while (!frontier.empty()) {
      std::string pred = std::move(frontier.back());
      frontier.pop_back();
      auto it = deps.find(pred);
      if (it == deps.end()) continue;
      for (const std::string& next : it->second) {
        if (reachable.insert(next).second) frontier.push_back(next);
      }
    }

    Program kept;
    std::set<std::string> dropped_preds;
    size_t dropped_rules = 0;
    for (const Rule& rule : ctx->program.rules) {
      if (reachable.count(rule.head.predicate)) {
        kept.rules.push_back(rule);
        continue;
      }
      ++dropped_rules;
      dropped_preds.insert(rule.head.predicate);
      sink->Report(
          "S204", Severity::kNote, rule.span,
          StrCat("dead rule: '", rule.head.predicate,
                 "' is unreachable from the query predicate '",
                 ctx->query.predicate, "'; removed from the compiled plan"));
    }

    if (dropped_rules == 0) {
      outcome.verdict = PassVerdict::kProved;
      outcome.detail =
          StrCat("all ", ctx->program.rules.size(),
                 " rule(s) reachable from '", ctx->query.predicate, "'");
      return outcome;
    }

    std::string preds;
    for (const std::string& p : dropped_preds) {
      if (!preds.empty()) preds += ", ";
      preds += StrCat("'", p, "'");
    }
    sink->Report("S205", Severity::kNote, ctx->query.span,
                 StrCat("unreachable predicate(s) dropped: ", preds, " (",
                        dropped_rules, " rule(s))"));
    outcome.verdict = PassVerdict::kRewritten;
    outcome.detail =
        StrCat("removed ", dropped_rules, " dead rule(s) defining ",
               dropped_preds.size(), " predicate(s)");
    ctx->program = std::move(kept);
    return outcome;
  }
};

}  // namespace

std::unique_ptr<Pass> MakeDeadRulePass() {
  return std::make_unique<DeadRulePass>();
}

}  // namespace seprec
