// Driver: answer a query via the Generalized Counting rewrite plus
// semi-naive bottom-up evaluation.
#ifndef SEPREC_COUNTING_ENGINE_H_
#define SEPREC_COUNTING_ENGINE_H_

#include "core/answer.h"
#include "counting/counting_transform.h"
#include "datalog/ast.h"
#include "eval/fixpoint.h"
#include "storage/database.h"
#include "util/status.h"

namespace seprec {

struct CountingRunResult {
  Answer answer{0};
  EvalStats stats;
  CountingRewrite rewrite;  // for EXPLAIN output and tests
};

// Applies the Generalized Counting Method to `query` over `program`.
// Fails with FAILED_PRECONDITION when counting does not apply and with
// RESOURCE_EXHAUSTED when the iteration/tuple budget is hit (which is how
// non-termination on cyclic data surfaces). Pass `options` with a finite
// max_iterations when the data may be cyclic.
StatusOr<CountingRunResult> EvaluateWithCounting(
    const Program& program, const Atom& query, Database* db,
    const FixpointOptions& options = {});

}  // namespace seprec

#endif  // SEPREC_COUNTING_ENGINE_H_
