// The Generalized Counting Method [BMSU86, SZ86, BR87], the paper's second
// comparator.
//
// For a selection query on a linear recursion, Counting descends from the
// selection constants like a magic set, but additionally records *how* each
// value was reached: the level I and a derivation-path index K whose
// base-(p+1) digits name the recursive rule applied at each level (p =
// number of recursive rules). After meeting the exit relation it re-ascends,
// replaying the recorded rule sequence in reverse to rebuild the answer
// columns. This is exactly the rule set the paper displays for Example 1.1
// and Lemma 4.3:
//
//   count(0, 0, c).
//   count(I+1, (p+1)*K + i, W) :- count(I, K, X) & a_i(X, W).     (descend)
//   sup(I, K, Ybar)  :- count(I, K, X) & t0(X, Ybar).             (pivot)
//   sup(I-1, K div (p+1), Y') :- sup(I, K, Y), c_i(...), K mod (p+1) = i.
//   ans(Ybar) :- sup(0, 0, Ybar).                                 (ascend)
//
// The K column is why Generalized Counting is Omega(p^n) on databases where
// several a_i relations overlap (Lemma 4.3) and Omega(2^n) on Example 1.1 —
// the count relation stores one tuple per distinct derivation path. On
// cyclic data the level column grows forever; the engine's iteration budget
// turns that into RESOURCE_EXHAUSTED, mirroring the known non-termination.
#ifndef SEPREC_COUNTING_COUNTING_TRANSFORM_H_
#define SEPREC_COUNTING_COUNTING_TRANSFORM_H_

#include <string>
#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

namespace seprec {

struct CountingRewrite {
  Program program;

  std::string count_predicate;
  std::string sup_predicate;
  std::string ans_predicate;

  // Positions of the query predicate bound by the query (the descent
  // columns) and the free positions (the answer columns), both ascending.
  std::vector<uint32_t> bound_positions;
  std::vector<uint32_t> free_positions;

  size_t arity = 0;  // of the original query predicate

  // False for single-rule recursions: with p = 1 the rule sequence is
  // determined by the derivation length alone, so the method degenerates
  // to classic Counting [BMSU86] with just the level index I (and no
  // exponential path column). True for p > 1 (the generalized method the
  // paper analyses).
  bool uses_path_index = false;
};

// Builds the counting rewrite of `program` for `query` (which must bind at
// least one argument of a linear recursive IDB predicate). Fails with
// FAILED_PRECONDITION when the method does not apply: non-linear rules,
// mutual recursion, rules whose nonrecursive part connects the bound and
// free sides of the recursion, or descents/ascents that would be unsafe.
StatusOr<CountingRewrite> CountingTransform(const Program& program,
                                            const Atom& query);

}  // namespace seprec

#endif  // SEPREC_COUNTING_COUNTING_TRANSFORM_H_
