#include "counting/engine.h"

#include <optional>
#include <vector>

#include "core/query.h"
#include "core/support.h"
#include "eval/trace.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace seprec {

StatusOr<CountingRunResult> EvaluateWithCounting(
    const Program& program, const Atom& query, Database* db,
    const FixpointOptions& options) {
  // Time the whole engine call (transform, support, rewritten fixpoint,
  // answer reconstruction), not just the last nested fixpoint.
  WallTimer timer;
  CountingRunResult result;
  result.answer = Answer(query.arity());
  result.stats.algorithm = "counting";
  SEPREC_ASSIGN_OR_RETURN(result.rewrite, CountingTransform(program, query));

  GovernorScope governor(options.limits, options.cancel, options.context);
  governor.ctx()->TrackMemory(&db->accountant());
  FixpointOptions governed = options;
  governed.context = governor.ctx();
  governed.trace_phase_prefix =
      StrCat(options.trace_phase_prefix, "counting/");

  uint64_t polls_before = 0;
  uint64_t attempts_before = 0;
  uint64_t novel_before = 0;
  if (options.trace != nullptr) {
    governor.ctx()->SetTrace(options.trace);
    db->counters().active = true;
    polls_before = governor.ctx()->polls();
    attempts_before = db->counters().attempts.load(std::memory_order_relaxed);
    novel_before = db->counters().novel.load(std::memory_order_relaxed);
    TraceEvent e;
    e.kind = TraceEventKind::kEngineStart;
    e.engine = "counting";
    options.trace->Emit(e);
  }
  auto finish = [&] {
    result.stats.seconds = timer.Seconds();
    if (options.trace == nullptr) return;
    TraceEvent e;
    e.kind = TraceEventKind::kEngineFinish;
    e.engine = "counting";
    e.seconds = result.stats.seconds;
    e.iterations = result.stats.iterations;
    e.tuples = result.stats.tuples_inserted;
    e.polls = governor.ctx()->polls() - polls_before;
    e.insert_attempts =
        db->counters().attempts.load(std::memory_order_relaxed) -
        attempts_before;
    e.insert_new =
        db->counters().novel.load(std::memory_order_relaxed) - novel_before;
    options.trace->Emit(e);
  };

  Status status = MaterializeSupport(program, query.predicate, db, governed,
                                     &result.stats);
  if (status.ok()) {
    status = EvaluateSemiNaive(result.rewrite.program, db, governed,
                               &result.stats);
  }
  // Legacy (ungoverned) callers see a trip as an error here, before any
  // answer reconstruction; governed callers get the partial answer back.
  if (status.ok()) status = governor.ExitStatus();
  if (!status.ok()) {
    finish();
    return status;
  }

  // Reconstruct full-arity answers: query constants at bound positions,
  // ans-relation values at free positions.
  const Relation* ans = db->Find(result.rewrite.ans_predicate);
  if (ans == nullptr) {
    finish();
    return result;
  }

  std::vector<Value> constants;
  for (uint32_t p : result.rewrite.bound_positions) {
    const Term& arg = query.args[p];
    constants.push_back(arg.kind == Term::Kind::kInt
                            ? Value::Int(arg.int_value)
                            : db->symbols().Intern(arg.name));
  }
  bool resolvable = false;
  std::vector<std::optional<Value>> query_constants =
      ResolveConstants(query, db->symbols(), &resolvable);
  if (!resolvable) {
    finish();
    return result;
  }

  std::vector<Value> full(query.arity());
  for (size_t r = 0; r < ans->size(); ++r) {
    Row row = ans->row(r);
    for (size_t i = 0; i < result.rewrite.bound_positions.size(); ++i) {
      full[result.rewrite.bound_positions[i]] = constants[i];
    }
    for (size_t i = 0; i < result.rewrite.free_positions.size(); ++i) {
      full[result.rewrite.free_positions[i]] = row[i];
    }
    // Repeated query variables must still agree.
    if (RowMatchesQuery(Row(full.data(), full.size()), query,
                        query_constants)) {
      result.answer.Add(Row(full.data(), full.size()));
    }
  }
  finish();
  return result;
}

}  // namespace seprec
