#include "counting/engine.h"

#include <optional>
#include <vector>

#include "core/query.h"
#include "core/support.h"

namespace seprec {

StatusOr<CountingRunResult> EvaluateWithCounting(
    const Program& program, const Atom& query, Database* db,
    const FixpointOptions& options) {
  CountingRunResult result;
  result.answer = Answer(query.arity());
  result.stats.algorithm = "counting";
  SEPREC_ASSIGN_OR_RETURN(result.rewrite, CountingTransform(program, query));

  GovernorScope governor(options.limits, options.cancel, options.context);
  governor.ctx()->TrackMemory(&db->accountant());
  FixpointOptions governed = options;
  governed.context = governor.ctx();

  SEPREC_RETURN_IF_ERROR(MaterializeSupport(program, query.predicate, db,
                                            governed, &result.stats));
  SEPREC_RETURN_IF_ERROR(EvaluateSemiNaive(result.rewrite.program, db,
                                           governed, &result.stats));
  // Legacy (ungoverned) callers see a trip as an error here, before any
  // answer reconstruction; governed callers get the partial answer back.
  SEPREC_RETURN_IF_ERROR(governor.ExitStatus());

  // Reconstruct full-arity answers: query constants at bound positions,
  // ans-relation values at free positions.
  const Relation* ans = db->Find(result.rewrite.ans_predicate);
  if (ans == nullptr) return result;

  std::vector<Value> constants;
  for (uint32_t p : result.rewrite.bound_positions) {
    const Term& arg = query.args[p];
    constants.push_back(arg.kind == Term::Kind::kInt
                            ? Value::Int(arg.int_value)
                            : db->symbols().Intern(arg.name));
  }
  bool resolvable = false;
  std::vector<std::optional<Value>> query_constants =
      ResolveConstants(query, db->symbols(), &resolvable);
  if (!resolvable) return result;

  std::vector<Value> full(query.arity());
  for (size_t r = 0; r < ans->size(); ++r) {
    Row row = ans->row(r);
    for (size_t i = 0; i < result.rewrite.bound_positions.size(); ++i) {
      full[result.rewrite.bound_positions[i]] = constants[i];
    }
    for (size_t i = 0; i < result.rewrite.free_positions.size(); ++i) {
      full[result.rewrite.free_positions[i]] = row[i];
    }
    // Repeated query variables must still agree.
    if (RowMatchesQuery(Row(full.data(), full.size()), query,
                        query_constants)) {
      result.answer.Add(Row(full.data(), full.size()));
    }
  }
  return result;
}

}  // namespace seprec
