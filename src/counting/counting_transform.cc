#include "counting/counting_transform.h"

#include <set>

#include "datalog/analysis.h"
#include "util/string_util.h"

namespace seprec {
namespace {

// Reserved variable names for the counting indices; canonicalized rules
// only use V<i> / Q<i>_<j> names, so these can never collide.
constexpr char kLevel[] = "CI";
constexpr char kLevelNext[] = "CI1";
constexpr char kPath[] = "CK";
constexpr char kPathNext[] = "CK1";
constexpr char kDigit[] = "CD";

std::string UniquePredicateName(std::string base,
                                const std::set<std::string>& taken) {
  while (taken.count(base)) base += "_";
  return base;
}

Expr VarExpr(const char* name) { return Expr::Leaf(Term::Var(name)); }
Expr IntExpr(int64_t v) { return Expr::Leaf(Term::Int(v)); }

}  // namespace

StatusOr<CountingRewrite> CountingTransform(const Program& program,
                                            const Atom& query) {
  SEPREC_ASSIGN_OR_RETURN(LinearRecursion rec,
                          ExtractLinearRecursion(program, query.predicate));
  if (rec.arity != query.arity()) {
    return InvalidArgumentError(
        StrCat("query arity ", query.arity(), " does not match '",
               query.predicate, "'/", rec.arity));
  }
  if (rec.recursive_rules.empty()) {
    return FailedPreconditionError(
        StrCat("'", query.predicate, "' is not recursive"));
  }

  CountingRewrite out;
  out.arity = rec.arity;
  for (uint32_t i = 0; i < rec.arity; ++i) {
    if (query.args[i].IsConstant()) {
      out.bound_positions.push_back(i);
    } else {
      out.free_positions.push_back(i);
    }
  }
  if (out.bound_positions.empty()) {
    return FailedPreconditionError("counting requires a selection constant");
  }

  std::set<std::string> taken;
  for (const Rule& rule : program.rules) {
    taken.insert(rule.head.predicate);
    for (const Atom* atom : rule.BodyAtoms()) taken.insert(atom->predicate);
  }
  out.count_predicate =
      UniquePredicateName(StrCat("count_", query.predicate), taken);
  taken.insert(out.count_predicate);
  out.sup_predicate =
      UniquePredicateName(StrCat("sup_", query.predicate), taken);
  taken.insert(out.sup_predicate);
  out.ans_predicate =
      UniquePredicateName(StrCat("ans_", query.predicate), taken);

  const int64_t base = static_cast<int64_t>(rec.recursive_rules.size()) + 1;

  // Variable vectors for the four column layouts.
  auto head_vars_at = [&rec](const std::vector<uint32_t>& positions) {
    std::vector<Term> vars;
    for (uint32_t p : positions) vars.push_back(Term::Var(rec.head_vars[p]));
    return vars;
  };
  auto body_vars_at = [](const Atom& body_t,
                         const std::vector<uint32_t>& positions) {
    std::vector<Term> vars;
    for (uint32_t p : positions) vars.push_back(body_t.args[p]);
    return vars;
  };
  out.uses_path_index = rec.recursive_rules.size() > 1;
  const bool path = out.uses_path_index;

  // Builds pred(<level>, [<path>,] rest...) — the path column exists only
  // in the generalized (p > 1) method.
  auto make_atom = [path](const std::string& pred, Term level, Term key,
                          std::vector<Term> rest) {
    Atom atom;
    atom.predicate = pred;
    atom.args.push_back(std::move(level));
    if (path) atom.args.push_back(std::move(key));
    for (Term& t : rest) atom.args.push_back(std::move(t));
    return atom;
  };

  // Seed: count(0, [0,] query constants).
  {
    std::vector<Term> constants;
    for (uint32_t p : out.bound_positions) constants.push_back(query.args[p]);
    Rule seed;
    seed.head = make_atom(out.count_predicate, Term::Int(0), Term::Int(0),
                          std::move(constants));
    out.program.rules.push_back(std::move(seed));
  }

  for (size_t i = 0; i < rec.recursive_rules.size(); ++i) {
    const Rule& rule = rec.recursive_rules[i];
    const Atom& body_t = rec.RecursiveBodyAtom(i);
    const int64_t digit = static_cast<int64_t>(i) + 1;

    // The recursive body atom must apply the recursion to plain distinct
    // variables for the descent/ascent split to be meaningful.
    std::set<std::string> body_t_vars;
    for (const Term& arg : body_t.args) {
      if (!arg.IsVar() || !body_t_vars.insert(arg.name).second) {
        return FailedPreconditionError(
            StrCat("recursive atom has constants or repeated variables: ",
                   rule.ToString()));
      }
    }

    // Bound side / free side variable sets.
    std::set<std::string> bound_side;
    std::set<std::string> free_side;
    for (uint32_t p : out.bound_positions) {
      bound_side.insert(rec.head_vars[p]);
      bound_side.insert(body_t.args[p].name);
    }
    for (uint32_t p : out.free_positions) {
      free_side.insert(rec.head_vars[p]);
      free_side.insert(body_t.args[p].name);
    }
    for (const std::string& v : bound_side) {
      if (free_side.count(v)) {
        return FailedPreconditionError(
            StrCat("variable '", v,
                   "' links the bound and free columns of rule: ",
                   rule.ToString()));
      }
    }

    // Split the nonrecursive literals into descent (A) and ascent (C)
    // parts by connected component.
    std::vector<Literal> others;
    for (size_t j = 0; j < rule.body.size(); ++j) {
      if (j != rec.recursive_atom_index[i]) others.push_back(rule.body[j]);
    }
    size_t num_components = 0;
    std::vector<size_t> component = ConnectedComponents(others,
                                                        &num_components);
    std::vector<bool> touches_bound(num_components, false);
    std::vector<bool> touches_free(num_components, false);
    for (size_t j = 0; j < others.size(); ++j) {
      std::set<std::string> vars;
      CollectVars(others[j], &vars);
      for (const std::string& v : vars) {
        if (bound_side.count(v)) touches_bound[component[j]] = true;
        if (free_side.count(v)) touches_free[component[j]] = true;
      }
    }
    std::vector<Literal> descent_lits;
    std::vector<Literal> ascent_lits;
    for (size_t j = 0; j < others.size(); ++j) {
      size_t c = component[j];
      if (touches_bound[c] && touches_free[c]) {
        return FailedPreconditionError(
            StrCat("nonrecursive literals connect the bound and free "
                   "columns in rule: ",
                   rule.ToString()));
      }
      // Components touching neither side gate the derivation; evaluate
      // them on the descent.
      if (touches_free[c]) {
        ascent_lits.push_back(others[j]);
      } else {
        descent_lits.push_back(others[j]);
      }
    }

    // Descent: count(I+1, K*base+digit, bodyB) :- count(I, K, headB), A_i.
    {
      Rule descend;
      descend.head =
          make_atom(out.count_predicate, Term::Var(kLevelNext),
                    Term::Var(kPathNext),
                    body_vars_at(body_t, out.bound_positions));
      descend.body.push_back(Literal::MakeAtom(
          make_atom(out.count_predicate, Term::Var(kLevel), Term::Var(kPath),
                    head_vars_at(out.bound_positions))));
      for (const Literal& lit : descent_lits) descend.body.push_back(lit);
      descend.body.push_back(Literal::MakeAssign(
          kLevelNext,
          Expr::Binary(Expr::Op::kAdd, VarExpr(kLevel), IntExpr(1))));
      if (path) {
        descend.body.push_back(Literal::MakeAssign(
            kPathNext,
            Expr::Binary(Expr::Op::kAdd,
                         Expr::Binary(Expr::Op::kMul, VarExpr(kPath),
                                      IntExpr(base)),
                         IntExpr(digit))));
      }
      SEPREC_RETURN_IF_ERROR(CheckSafety(Program{{descend}}));
      out.program.rules.push_back(std::move(descend));
    }

    // Ascent: sup(I-1, K div base, headF) :- sup(I, K, bodyF), C_i,
    //         K mod base = digit.
    {
      Rule ascend;
      ascend.head = make_atom(out.sup_predicate, Term::Var(kLevelNext),
                              Term::Var(kPathNext),
                              head_vars_at(out.free_positions));
      ascend.body.push_back(Literal::MakeAtom(
          make_atom(out.sup_predicate, Term::Var(kLevel), Term::Var(kPath),
                    body_vars_at(body_t, out.free_positions))));
      for (const Literal& lit : ascent_lits) ascend.body.push_back(lit);
      // Replay exactly `level` steps: never ascend past the seed.
      ascend.body.push_back(
          Literal::MakeCompare(CmpOp::kGt, Term::Var(kLevel), Term::Int(0)));
      if (path) {
        ascend.body.push_back(Literal::MakeAssign(
            kDigit,
            Expr::Binary(Expr::Op::kMod, VarExpr(kPath), IntExpr(base))));
        ascend.body.push_back(Literal::MakeCompare(
            CmpOp::kEq, Term::Var(kDigit), Term::Int(digit)));
      }
      ascend.body.push_back(Literal::MakeAssign(
          kLevelNext,
          Expr::Binary(Expr::Op::kSub, VarExpr(kLevel), IntExpr(1))));
      if (path) {
        ascend.body.push_back(Literal::MakeAssign(
            kPathNext,
            Expr::Binary(Expr::Op::kDiv, VarExpr(kPath), IntExpr(base))));
      }
      SEPREC_RETURN_IF_ERROR(CheckSafety(Program{{ascend}}));
      out.program.rules.push_back(std::move(ascend));
    }
  }

  // Pivot: sup(I, K, headF) :- count(I, K, headB), exit body.
  for (const Rule& exit : rec.exit_rules) {
    Rule pivot;
    pivot.head = make_atom(out.sup_predicate, Term::Var(kLevel),
                           Term::Var(kPath),
                           head_vars_at(out.free_positions));
    pivot.body.push_back(Literal::MakeAtom(
        make_atom(out.count_predicate, Term::Var(kLevel), Term::Var(kPath),
                  head_vars_at(out.bound_positions))));
    for (const Literal& lit : exit.body) pivot.body.push_back(lit);
    SEPREC_RETURN_IF_ERROR(CheckSafety(Program{{pivot}}));
    out.program.rules.push_back(std::move(pivot));
  }

  // Answers: ans(headF) :- sup(0, 0, headF).
  {
    Rule answers;
    answers.head.predicate = out.ans_predicate;
    for (const Term& t : head_vars_at(out.free_positions)) {
      answers.head.args.push_back(t);
    }
    answers.body.push_back(Literal::MakeAtom(
        make_atom(out.sup_predicate, Term::Int(0), Term::Int(0),
                  head_vars_at(out.free_positions))));
    out.program.rules.push_back(std::move(answers));
  }

  return out;
}

}  // namespace seprec
