// The Separable evaluation algorithm (Section 3.3, Figure 2) and its
// partial-selection driver (Lemma 2.1).
//
// Full selections run the two-loop carry/seen schema directly:
//
//   phase 1: starting from the selection constants, close the anchor
//            equivalence class top-down (seen_1 = every value reachable in
//            the anchor columns) — skipped when the selection constants sit
//            in persistent columns (the paper's dummy equivalence class);
//   phase 2: join seen_1 with the exit relation(s), then close the
//            remaining equivalence classes bottom-up (seen_2 = the answer
//            columns).
//
// Partial selections are evaluated as the union of full selections the
// Lemma 2.1 rewrite produces: one run over the recursion with the partially
// bound class removed (its columns become persistent), plus, for each rule
// of that class, full runs seeded through that rule's nonrecursive body
// (sideways information passing binds the whole class).
//
// The aux relations carry_1/seen_1/carry_2/seen_2 are monadic-or-narrower
// per Lemma 4.1 — their sizes, reported in EvalStats, are the paper's
// comparison metric.
#ifndef SEPREC_SEPARABLE_ENGINE_H_
#define SEPREC_SEPARABLE_ENGINE_H_

#include <memory>
#include <vector>

#include "core/answer.h"
#include "datalog/ast.h"
#include "eval/fixpoint.h"
#include "separable/detection.h"
#include "storage/database.h"
#include "util/status.h"

namespace seprec {

struct SeparableRunResult {
  Answer answer{0};
  EvalStats stats;

  // True when the query was a partial selection and the Lemma 2.1
  // union-of-full-selections driver ran.
  bool used_partial_rewrite = false;
  // Number of full-selection schema executions (1 for a full selection).
  size_t schema_runs = 0;
};

// Answers `query` (which must contain at least one constant) over the
// separable definition of its predicate in `program`. Support predicates
// (anything the recursion's bodies mention) are materialised first.
StatusOr<SeparableRunResult> EvaluateWithSeparable(
    const Program& program, const Atom& query, Database* db,
    const FixpointOptions& options = {});

// As above but with a pre-computed analysis (used by the query processor
// and benches to avoid re-detection).
StatusOr<SeparableRunResult> EvaluateWithSeparable(
    const Program& program, const SeparableRecursion& sep, const Atom& query,
    Database* db, const FixpointOptions& options = {});

// Selection classification for a query against a separable recursion
// (Definition 2.7).
enum class SelectionKind {
  kNoConstants,  // no selection at all; Separable does not apply
  kFull,         // binds a persistent column or a whole class
  kPartial,      // binds a proper nonempty subset of some class only
};
SelectionKind ClassifySelection(const SeparableRecursion& sep,
                                const Atom& query);

// Renders the instantiated evaluation schema for `query` in the style of
// the paper's Figures 3 and 4 (init/while/endwhile pseudo-code).
StatusOr<std::string> ExplainSchema(const SeparableRecursion& sep,
                                    const Atom& query);

// The phase-1 closure of one full-selection run: every seen_1 row (anchor-
// column values, width |anchor positions|) reachable from the selection
// constants. Phase 1 is the only part of a full-selection run that depends
// on BOTH the selection constants and the stored data, so caching its
// closure lets a repeated selection skip straight to phase 2. A closure is
// valid for (same program, same bound positions, same constants, same
// database generation); the query service keys its closure cache exactly
// so. The rows hold interned Values — symbol ids are never reassigned, so
// they stay meaningful for the owning SymbolTable's lifetime.
struct Phase1Closure {
  std::vector<std::vector<Value>> rows;
};

// How a cached phase-1 closure can be kept exact under EDB mutation,
// classified from the compiled selection shape alone.
enum class ClosureMaintainability {
  // Persistent-column anchor (the paper's dummy equivalence class): the
  // closure is exactly {selection constants}, independent of the data.
  // Nothing to maintain — the cached rows stay valid across any mutation.
  kConstant,
  // The phase-1 rules read only base (non-IDB) relations through positive
  // literals: the closure is the least fixpoint of a positive Datalog
  // program over those relations, so an IncrementalEngine can patch it by
  // semi-naive delta insertion and DRed deletion.
  kMaintainable,
  // A phase-1 body references a support (IDB) predicate or a negated
  // literal: base mutations reach the closure through a derived relation
  // the maintenance program cannot track. Fall back to invalidation.
  kNone,
};

// The closure-as-Datalog-program export for one concrete selection: the
// program whose least fixpoint (with `seed_name` = {seed_row}) is exactly
// the phase-1 closure seen_1. `program` is empty for kConstant/kNone.
struct ClosureMaintenance {
  ClosureMaintainability kind = ClosureMaintainability::kNone;
  // $<prefix>c(X..) :- $<prefix>seed(X..).
  // $<prefix>c(body anchor cols) :- $<prefix>c(head anchor cols), <lits>.
  //   — one per anchor-class rule (MakePhase1Rule with carry == out).
  Program program;
  std::string closure_name;  // "$<prefix>c", arity = anchor width
  std::string seed_name;     // "$<prefix>seed", same arity
  std::vector<Value> seed_row;  // the query's anchor-position constants
  // Base relations the phase-1 rules read: mutations to any other
  // relation leave the closure untouched.
  std::vector<std::string> base_relations;
};

// A full-selection Figure-2 schema compiled once and executed many times —
// the evaluate-many half of the paper's compile/evaluate split, packaged
// for the query service's prepared-query cache.
//
// Compile instantiates the schema for the selection SHAPE of `query` (its
// predicate and bound-position set; the constants are ignored) and binds
// the synthetic rules' plans against `db`, creating persistent
// '$sep*'-scratch relations there. The object is therefore tied to `db`:
// it must be destroyed before the database, and the relations its plans
// bind (EDB, support IDB, scratch) must not be Dropped while it lives —
// truncation/append are fine, which is what checkpoint rollback does.
//
// Execute answers one concrete selection of that shape. With `reuse`, the
// phase-1 loop is skipped entirely and seen_1 is seeded from the cached
// closure; with `capture`, a run whose phase 1 completed (no governor trip
// during the loop) writes the closure out for caching. Callers that
// checkpoint the database must call ClearScratch() BEFORE taking the
// checkpoint: the scratch relations pre-date the checkpoint, so recording
// them empty makes truncate-to-checkpoint rollback valid whatever the run
// left behind.
//
// Not thread-safe; the service serialises Execute with every other
// database writer.
class PreparedSeparable {
 public:
  // `policy` fixes the parallel-partition count the compiled plans bake
  // in; per-request limits cannot change it later.
  static StatusOr<std::unique_ptr<PreparedSeparable>> Compile(
      const Program& program, const SeparableRecursion& sep,
      const Atom& query, Database* db, const ParallelPolicy& policy);
  ~PreparedSeparable();
  PreparedSeparable(const PreparedSeparable&) = delete;
  PreparedSeparable& operator=(const PreparedSeparable&) = delete;

  // `query` must have the predicate and bound-position set given at
  // Compile time. Support predicates are re-materialised first (the
  // service rolls them back after every request).
  StatusOr<SeparableRunResult> Execute(const Atom& query,
                                       const FixpointOptions& options = {},
                                       const Phase1Closure* reuse = nullptr,
                                       Phase1Closure* capture = nullptr);

  // Empties the persistent scratch relations (and staging sinks).
  void ClearScratch();

  // True when `query` matches the compiled shape.
  bool Matches(const Atom& query) const;

  // Classifies how the phase-1 closure for `query` (which must match the
  // compiled shape) can be maintained incrementally and, when
  // kMaintainable, builds the closure program under `prefix` (the caller's
  // unique namespace, e.g. "$dred7_"). Interns the query's symbol
  // constants so seed_row holds concrete Values. Pure construction: no
  // relations are created — feed the program to IncrementalEngine::Create.
  ClosureMaintenance MaintenanceFor(const Atom& query,
                                    const std::string& prefix) const;

 private:
  struct Impl;
  explicit PreparedSeparable(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace seprec

#endif  // SEPREC_SEPARABLE_ENGINE_H_
