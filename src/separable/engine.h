// The Separable evaluation algorithm (Section 3.3, Figure 2) and its
// partial-selection driver (Lemma 2.1).
//
// Full selections run the two-loop carry/seen schema directly:
//
//   phase 1: starting from the selection constants, close the anchor
//            equivalence class top-down (seen_1 = every value reachable in
//            the anchor columns) — skipped when the selection constants sit
//            in persistent columns (the paper's dummy equivalence class);
//   phase 2: join seen_1 with the exit relation(s), then close the
//            remaining equivalence classes bottom-up (seen_2 = the answer
//            columns).
//
// Partial selections are evaluated as the union of full selections the
// Lemma 2.1 rewrite produces: one run over the recursion with the partially
// bound class removed (its columns become persistent), plus, for each rule
// of that class, full runs seeded through that rule's nonrecursive body
// (sideways information passing binds the whole class).
//
// The aux relations carry_1/seen_1/carry_2/seen_2 are monadic-or-narrower
// per Lemma 4.1 — their sizes, reported in EvalStats, are the paper's
// comparison metric.
#ifndef SEPREC_SEPARABLE_ENGINE_H_
#define SEPREC_SEPARABLE_ENGINE_H_

#include "core/answer.h"
#include "datalog/ast.h"
#include "eval/fixpoint.h"
#include "separable/detection.h"
#include "storage/database.h"
#include "util/status.h"

namespace seprec {

struct SeparableRunResult {
  Answer answer{0};
  EvalStats stats;

  // True when the query was a partial selection and the Lemma 2.1
  // union-of-full-selections driver ran.
  bool used_partial_rewrite = false;
  // Number of full-selection schema executions (1 for a full selection).
  size_t schema_runs = 0;
};

// Answers `query` (which must contain at least one constant) over the
// separable definition of its predicate in `program`. Support predicates
// (anything the recursion's bodies mention) are materialised first.
StatusOr<SeparableRunResult> EvaluateWithSeparable(
    const Program& program, const Atom& query, Database* db,
    const FixpointOptions& options = {});

// As above but with a pre-computed analysis (used by the query processor
// and benches to avoid re-detection).
StatusOr<SeparableRunResult> EvaluateWithSeparable(
    const Program& program, const SeparableRecursion& sep, const Atom& query,
    Database* db, const FixpointOptions& options = {});

// Selection classification for a query against a separable recursion
// (Definition 2.7).
enum class SelectionKind {
  kNoConstants,  // no selection at all; Separable does not apply
  kFull,         // binds a persistent column or a whole class
  kPartial,      // binds a proper nonempty subset of some class only
};
SelectionKind ClassifySelection(const SeparableRecursion& sep,
                                const Atom& query);

// Renders the instantiated evaluation schema for `query` in the style of
// the paper's Figures 3 and 4 (init/while/endwhile pseudo-code).
StatusOr<std::string> ExplainSchema(const SeparableRecursion& sep,
                                    const Atom& query);

}  // namespace seprec

#endif  // SEPREC_SEPARABLE_ENGINE_H_
