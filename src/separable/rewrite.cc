#include "separable/rewrite.h"

#include <set>

#include "core/query.h"
#include "separable/engine.h"
#include "util/string_util.h"

namespace seprec {
namespace {

std::string UniquePredicateName(std::string base,
                                const std::set<std::string>& taken) {
  while (taken.count(base)) base += "_";
  return base;
}

// Copies `rule`, renaming head and recursive-atom occurrences of
// `predicate` to `replacement`.
Rule RenameRecursion(const Rule& rule, const std::string& predicate,
                     const std::string& replacement) {
  Rule out = rule;
  if (out.head.predicate == predicate) out.head.predicate = replacement;
  for (Literal& lit : out.body) {
    if (lit.kind == Literal::Kind::kAtom &&
        lit.atom.predicate == predicate) {
      lit.atom.predicate = replacement;
    }
  }
  return out;
}

}  // namespace

StatusOr<PartialRewrite> RewritePartialSelection(
    const Program& program, const SeparableRecursion& sep,
    const Atom& query) {
  if (query.predicate != sep.predicate() || query.arity() != sep.arity()) {
    return InvalidArgumentError(
        StrCat("query ", query.ToString(), " does not match '",
               sep.predicate(), "'/", sep.arity()));
  }
  if (ClassifySelection(sep, query) != SelectionKind::kPartial) {
    return FailedPreconditionError(
        StrCat("query ", query.ToString(),
               " is not a partial selection; Lemma 2.1 does not apply"));
  }

  // e1: a class bound on a proper nonempty subset of its columns.
  std::vector<bool> bound = BoundPositions(query);
  size_t e1 = sep.classes.size();
  for (size_t c = 0; c < sep.classes.size() && e1 == sep.classes.size();
       ++c) {
    size_t hits = 0;
    for (uint32_t p : sep.classes[c].positions) {
      if (bound[p]) ++hits;
    }
    if (hits > 0 && hits < sep.classes[c].positions.size()) e1 = c;
  }
  SEPREC_CHECK(e1 < sep.classes.size());

  std::set<std::string> taken;
  for (const Rule& rule : program.rules) {
    taken.insert(rule.head.predicate);
    for (const Atom* atom : rule.BodyAtoms()) taken.insert(atom->predicate);
  }
  PartialRewrite out;
  out.removed_class = e1;
  out.part_predicate =
      UniquePredicateName(StrCat(sep.predicate(), "_part"), taken);
  taken.insert(out.part_predicate);
  out.full_predicate =
      UniquePredicateName(StrCat(sep.predicate(), "_full"), taken);

  // Rules of the input that do not define t survive unchanged.
  for (const Rule& rule : program.rules) {
    if (rule.head.predicate != sep.predicate()) {
      out.program.rules.push_back(rule);
    }
  }

  const std::string& t = sep.predicate();
  std::set<size_t> e1_rules(sep.classes[e1].rule_indices.begin(),
                            sep.classes[e1].rule_indices.end());

  // t_part: the recursion without e1's rules.
  for (size_t r = 0; r < sep.recursion.recursive_rules.size(); ++r) {
    if (e1_rules.count(r)) continue;
    out.program.rules.push_back(RenameRecursion(
        sep.recursion.recursive_rules[r], t, out.part_predicate));
  }
  for (const Rule& exit : sep.recursion.exit_rules) {
    out.program.rules.push_back(
        RenameRecursion(exit, t, out.part_predicate));
  }

  // t_full: the whole recursion.
  for (const Rule& rule : sep.recursion.recursive_rules) {
    out.program.rules.push_back(
        RenameRecursion(rule, t, out.full_predicate));
  }
  for (const Rule& exit : sep.recursion.exit_rules) {
    out.program.rules.push_back(
        RenameRecursion(exit, t, out.full_predicate));
  }

  // Glue: t :- t_part.   and   t :- a_1j & t_full.  (per rule of e1)
  {
    Rule glue;
    glue.head.predicate = t;
    Atom part;
    part.predicate = out.part_predicate;
    for (const std::string& v : sep.recursion.head_vars) {
      glue.head.args.push_back(Term::Var(v));
      part.args.push_back(Term::Var(v));
    }
    glue.body.push_back(Literal::MakeAtom(std::move(part)));
    out.program.rules.push_back(std::move(glue));
  }
  for (size_t r : sep.classes[e1].rule_indices) {
    Rule glue = sep.recursion.recursive_rules[r];
    // Keep the head on t; the recursive body atom reads t_full.
    Literal& rec =
        glue.body[sep.recursion.recursive_atom_index[r]];
    rec.atom.predicate = out.full_predicate;
    out.program.rules.push_back(std::move(glue));
  }
  return out;
}

}  // namespace seprec
