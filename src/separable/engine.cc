#include "separable/engine.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <set>

#include "core/query.h"
#include "core/support.h"
#include "eval/join_plan.h"
#include "eval/trace.h"
#include "util/hash.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace seprec {

// Which columns anchor the evaluation: a fully bound class (phase 1 walks
// it) or bound persistent columns (the dummy equivalence class — phase 1
// degenerates to seen_1 := {constants}). File-local, but at namespace
// scope (not anonymous) so PreparedSeparable::Impl can hold one without
// giving an exported type internal-linkage members.
struct AnchorInfo {
  std::optional<size_t> anchor_class;
  std::vector<uint32_t> anchor_positions;  // ascending
  std::vector<uint32_t> rest_positions;    // ascending complement
};

namespace {

std::optional<AnchorInfo> FindAnchor(const SeparableRecursion& sep,
                                     const std::vector<bool>& bound) {
  AnchorInfo anchor;
  std::set<uint32_t> ap;
  for (uint32_t p : sep.persistent_positions) {
    if (bound[p]) ap.insert(p);
  }
  if (!ap.empty()) {
    anchor.anchor_class = std::nullopt;
  } else {
    bool found = false;
    for (size_t c = 0; c < sep.classes.size() && !found; ++c) {
      bool all = true;
      for (uint32_t p : sep.classes[c].positions) {
        if (!bound[p]) all = false;
      }
      if (all) {
        anchor.anchor_class = c;
        ap.insert(sep.classes[c].positions.begin(),
                  sep.classes[c].positions.end());
        found = true;
      }
    }
    if (!found) return std::nullopt;
  }
  anchor.anchor_positions.assign(ap.begin(), ap.end());
  for (uint32_t p = 0; p < sep.arity(); ++p) {
    if (!ap.count(p)) anchor.rest_positions.push_back(p);
  }
  return anchor;
}

// ---- Synthetic rules instantiating the Figure 2 schema -----------------

Term HeadVar(const SeparableRecursion& sep, uint32_t p) {
  return Term::Var(sep.recursion.head_vars[p]);
}

// Nonrecursive body literals of recursive rule `i`.
std::vector<Literal> NonRecursiveLits(const SeparableRecursion& sep,
                                      size_t i) {
  std::vector<Literal> out;
  const Rule& rule = sep.recursion.recursive_rules[i];
  for (size_t j = 0; j < rule.body.size(); ++j) {
    if (j != sep.recursion.recursive_atom_index[i]) out.push_back(rule.body[j]);
  }
  return out;
}

// carry'(V_b(t|e1)) :- carry(V_h(t|e1)) & a_i   — the f_1 operator terms.
Rule MakePhase1Rule(const SeparableRecursion& sep, const AnchorInfo& anchor,
                    size_t rule_index, const std::string& carry_name,
                    const std::string& out_name) {
  const Atom& body_t = sep.recursion.RecursiveBodyAtom(rule_index);
  Rule rule;
  rule.head.predicate = out_name;
  for (uint32_t p : anchor.anchor_positions) {
    rule.head.args.push_back(body_t.args[p]);
  }
  Atom carry;
  carry.predicate = carry_name;
  for (uint32_t p : anchor.anchor_positions) {
    carry.args.push_back(HeadVar(sep, p));
  }
  rule.body.push_back(Literal::MakeAtom(std::move(carry)));
  for (Literal& lit : NonRecursiveLits(sep, rule_index)) {
    rule.body.push_back(std::move(lit));
  }
  return rule;
}

// carry_2(rest) :- seen_1(V_h(t|e1)) & exit body   — the g_2 operator.
Rule MakeExitRule(const SeparableRecursion& sep, const AnchorInfo& anchor,
                  size_t exit_index, const std::string& seen1_name,
                  const std::string& out_name) {
  const Rule& exit = sep.recursion.exit_rules[exit_index];
  Rule rule;
  rule.head.predicate = out_name;
  for (uint32_t p : anchor.rest_positions) {
    rule.head.args.push_back(HeadVar(sep, p));
  }
  Atom seen;
  seen.predicate = seen1_name;
  for (uint32_t p : anchor.anchor_positions) {
    seen.args.push_back(HeadVar(sep, p));
  }
  rule.body.push_back(Literal::MakeAtom(std::move(seen)));
  for (const Literal& lit : exit.body) rule.body.push_back(lit);
  return rule;
}

// carry'(V_h positions of rest) :- carry(body-instance rest) & a_ij — f_2.
Rule MakePhase2Rule(const SeparableRecursion& sep, const AnchorInfo& anchor,
                    size_t rule_index, const std::string& carry_name,
                    const std::string& out_name) {
  const Atom& body_t = sep.recursion.RecursiveBodyAtom(rule_index);
  const EquivalenceClass& ec = sep.classes[sep.class_of_rule[rule_index]];
  std::set<uint32_t> own(ec.positions.begin(), ec.positions.end());
  Rule rule;
  rule.head.predicate = out_name;
  for (uint32_t p : anchor.rest_positions) {
    rule.head.args.push_back(HeadVar(sep, p));
  }
  Atom carry;
  carry.predicate = carry_name;
  for (uint32_t p : anchor.rest_positions) {
    // Positions of this rule's own class advance (body-instance variable);
    // every other rest column passes through unchanged.
    carry.args.push_back(own.count(p) ? body_t.args[p] : HeadVar(sep, p));
  }
  rule.body.push_back(Literal::MakeAtom(std::move(carry)));
  for (Literal& lit : NonRecursiveLits(sep, rule_index)) {
    rule.body.push_back(std::move(lit));
  }
  return rule;
}

}  // namespace

// ---- Schema runner -------------------------------------------------------
// At namespace scope (not anonymous) for the same reason as AnchorInfo:
// PreparedSeparable::Impl owns one across executions.

class SchemaRunner {
 public:
  SchemaRunner(const SeparableRecursion& sep, AnchorInfo anchor,
               Database* db, const ParallelPolicy& policy,
               JoinOrderMode join_order = JoinOrderMode::kCostBased)
      : sep_(sep),
        anchor_(std::move(anchor)),
        db_(db),
        num_partitions_(policy.Enabled() ? policy.ResolvedThreads() : 1),
        min_rows_per_task_(policy.min_rows_per_task),
        join_order_(join_order) {
    // Atomic: the query service compiles prepared schemas from concurrent
    // session threads.
    static std::atomic<int> counter{0};
    prefix_ = StrCat("$sep", counter.fetch_add(1), "_");
  }

  ~SchemaRunner() {
    for (const char* suffix : {"carry1", "seen1", "carry2", "seen2"}) {
      db_->Drop(prefix_ + suffix);
    }
    if (num_partitions_ > 1) {
      for (size_t k = 0; k < num_partitions_; ++k) {
        db_->Drop(PartName(k));
      }
    }
  }

  SchemaRunner(const SchemaRunner&) = delete;
  SchemaRunner& operator=(const SchemaRunner&) = delete;

  Status Compile() {
    const size_t w = anchor_.anchor_positions.size();
    const size_t rest = anchor_.rest_positions.size();
    SEPREC_ASSIGN_OR_RETURN(carry1_,
                            db_->CreateRelation(prefix_ + "carry1", w));
    SEPREC_ASSIGN_OR_RETURN(seen1_,
                            db_->CreateRelation(prefix_ + "seen1", w));
    SEPREC_ASSIGN_OR_RETURN(carry2_,
                            db_->CreateRelation(prefix_ + "carry2", rest));
    SEPREC_ASSIGN_OR_RETURN(seen2_,
                            db_->CreateRelation(prefix_ + "seen2", rest));
    sink1_ = std::make_unique<ShardedSink>(w);
    sink2_ = std::make_unique<ShardedSink>(rest);
    sink1_->SetAccountant(&db_->accountant());
    sink2_->SetAccountant(&db_->accountant());
    if (num_partitions_ > 1) {
      for (size_t k = 0; k < num_partitions_; ++k) {
        SEPREC_ASSIGN_OR_RETURN(Relation * part,
                                db_->CreateRelation(PartName(k), rest));
        carry2_parts_.push_back(part);
      }
      phase2_part_plans_.resize(num_partitions_);
    }

    PlanOptions plan_opts;
    plan_opts.join_order = join_order_;
    if (anchor_.anchor_class.has_value()) {
      const EquivalenceClass& ec = sep_.classes[*anchor_.anchor_class];
      for (size_t r : ec.rule_indices) {
        Rule rule = MakePhase1Rule(sep_, anchor_, r, carry1_->name(), "$new1");
        phase1_labels_.push_back(rule.ToString());
        SEPREC_ASSIGN_OR_RETURN(RulePlan plan,
                                RulePlan::Compile(rule, db_, plan_opts));
        phase1_plans_.push_back(std::move(plan));
      }
    }
    for (size_t e = 0; e < sep_.recursion.exit_rules.size(); ++e) {
      Rule rule = MakeExitRule(sep_, anchor_, e, seen1_->name(), "$init2");
      exit_labels_.push_back(rule.ToString());
      SEPREC_ASSIGN_OR_RETURN(RulePlan plan,
                              RulePlan::Compile(rule, db_, plan_opts));
      exit_plans_.push_back(std::move(plan));
    }
    for (size_t r = 0; r < sep_.recursion.recursive_rules.size(); ++r) {
      if (anchor_.anchor_class.has_value() &&
          sep_.class_of_rule[r] == *anchor_.anchor_class) {
        continue;
      }
      Rule rule = MakePhase2Rule(sep_, anchor_, r, carry2_->name(), "$new2");
      phase2_labels_.push_back(rule.ToString());
      SEPREC_ASSIGN_OR_RETURN(RulePlan plan,
                              RulePlan::Compile(rule, db_, plan_opts));
      phase2_plans_.push_back(std::move(plan));
      // Partition variants: the same rule reading partition k of carry_2.
      for (size_t k = 0; k < num_partitions_ && num_partitions_ > 1; ++k) {
        SEPREC_ASSIGN_OR_RETURN(
            RulePlan part_plan,
            RulePlan::Compile(
                MakePhase2Rule(sep_, anchor_, r, PartName(k), "$new2"),
                db_, plan_opts));
        phase2_part_plans_[k].push_back(std::move(part_plan));
      }
    }
    return Status::OK();
  }

  // Empties the scratch relations and staging sinks. Run does this itself
  // on entry; callers that snapshot the database with DatabaseCheckpoint
  // between runs call it first so the checkpoint records the scratch empty
  // (truncate-to-zero rollback is then valid whatever a run left behind).
  void ClearScratch() {
    carry1_->Clear();
    seen1_->Clear();
    carry2_->Clear();
    seen2_->Clear();
    sink1_->Clear();
    sink2_->Clear();
    for (Relation* part : carry2_parts_) part->Clear();
  }

  // Runs the schema from `seeds` (each of width |anchor_positions|) and
  // appends the seen_2 rows (rest-position values) to `rest_rows`. Polls
  // `ctx` at every carry/seen round boundary; on a trip the phases stop
  // early and the seen_2 rows harvested so far are still emitted — every
  // one is a true tuple, so a truncated run yields a sound partial answer.
  //
  // `reuse`/`capture` implement the resumable phase 2 behind the closure
  // cache: with `reuse`, seen_1 is seeded from the cached closure instead
  // of the seeds and the phase-1 loop never runs (carry_1 stays empty);
  // with `capture`, a run whose phase-1 loop completed (drained carry_1
  // without a governor trip) copies seen_1 out for caching.
  void Run(const std::vector<std::vector<Value>>& seeds,
           ExecutionContext* ctx, EvalStats* stats,
           std::vector<std::vector<Value>>* rest_rows,
           const Phase1Closure* reuse = nullptr,
           Phase1Closure* capture = nullptr) {
    ClearScratch();

    size_t inserted = 0;
    size_t max_carry1 = 0;
    size_t max_carry2 = 0;
    size_t iterations = 0;

    // The sink attached to the governing context (one sink observes every
    // schema run of a query; round numbering restarts per run).
    TraceSink* trace = ctx->trace();
    const bool measuring = stats != nullptr || trace != nullptr;

    auto trace_round_start = [trace](const char* phase, size_t round,
                                     size_t delta) {
      if (trace == nullptr) return;
      TraceEvent e;
      e.kind = TraceEventKind::kRoundStart;
      e.engine = "separable";
      e.phase = phase;
      e.round = round;
      e.delta = delta;
      trace->Emit(e);
    };
    auto note_rule = [trace, stats](const char* phase, size_t round,
                                    const std::string& label,
                                    const RuleExecMetrics& m) {
      if (stats != nullptr) {
        stats->NoteRule(label, m.emitted, m.inserted, m.probes);
      }
      if (trace != nullptr && (m.emitted > 0 || m.probes > 0)) {
        TraceEvent e;
        e.kind = TraceEventKind::kRule;
        e.engine = "separable";
        e.phase = phase;
        e.round = round;
        e.rule = label;
        e.emitted = m.emitted;
        e.inserted = m.inserted;
        e.probes = m.probes;
        trace->Emit(e);
      }
    };
    auto round_finish = [trace, stats](const char* phase, size_t round,
                                       size_t emitted, size_t staged,
                                       size_t new_rows) {
      if (stats != nullptr) {
        stats->NoteRound(phase, round, emitted, new_rows);
      }
      if (trace == nullptr) return;
      TraceEvent merge;
      merge.kind = TraceEventKind::kMerge;
      merge.engine = "separable";
      merge.phase = phase;
      merge.round = round;
      merge.staged = staged;
      merge.inserted = new_rows;
      trace->Emit(merge);
      TraceEvent e;
      e.kind = TraceEventKind::kRoundEnd;
      e.engine = "separable";
      e.phase = phase;
      e.round = round;
      e.emitted = emitted;
      e.inserted = new_rows;
      e.delta = new_rows;
      trace->Emit(e);
    };

    if (reuse != nullptr) {
      // Resume from the cached closure: seen_1 is already complete, so
      // carry_1 stays empty and the phase-1 loop below is a no-op. The
      // closure rows still count as insertions (tuple budget included) —
      // a closure-hit run reports the work of materialising seen_1, just
      // not of deriving it.
      for (const std::vector<Value>& row : reuse->rows) {
        if (seen1_->Insert(Row(row.data(), row.size()))) ++inserted;
      }
    } else {
      for (const std::vector<Value>& seed : seeds) {
        Row row(seed.data(), seed.size());
        carry1_->Insert(row);
        if (seen1_->Insert(row)) ++inserted;
      }
    }
    ctx->NoteTuples(inserted);
    max_carry1 = carry1_->size();

    // Phase 1 (skipped for a persistent-column anchor). The sink's
    // canonical merge gives seen_1/carry_1 a deterministic slot order.
    if (anchor_.anchor_class.has_value()) {
      size_t round1 = 0;
      while (!carry1_->empty()) {
        ++iterations;
        if (ctx->NoteIterationAndCheck()) break;
        trace_round_start("phase1", round1, carry1_->size());
        size_t emitted = 0;
        for (size_t j = 0; j < phase1_plans_.size(); ++j) {
          RuleExecMetrics m;
          phase1_plans_[j].ExecuteInto(sink1_.get(), nullptr,
                                       measuring ? &m : nullptr);
          if (measuring) {
            emitted += m.emitted;
            note_rule("phase1", round1, phase1_labels_[j], m);
          }
        }
        carry1_->Clear();
        size_t staged = 0;
        size_t round = sink1_->MergeInto(seen1_, carry1_,
                                         measuring ? &staged : nullptr);
        inserted += round;
        ctx->NoteTuples(round);
        max_carry1 = std::max(max_carry1, carry1_->size());
        round_finish("phase1", round1, emitted, staged, round);
        ++round1;
      }
    }

    // A persistent-column anchor has no phase-1 loop at all, so its seed
    // rows legitimately remain in carry_1; only a class anchor's loop must
    // have drained for seen_1 to be complete.
    const bool phase1_complete =
        anchor_.anchor_class.has_value() ? carry1_->empty() : true;
    if (capture != nullptr && phase1_complete && !ctx->stopped()) {
      // Phase 1 completed without a trip: seen_1 is the complete closure
      // of the anchor class under the selection (trivially {seeds} for a
      // persistent-column anchor). An interrupted loop leaves carry_1
      // non-empty or a latched stop cause, so incomplete closures are
      // never handed out for caching.
      capture->rows.clear();
      capture->rows.reserve(seen1_->size());
      seen1_->ForEachRow([capture](Row row) {
        capture->rows.emplace_back(row.begin(), row.end());
      });
    }

    // Phase 2 initialisation: carry_2 := g_2(seen_1).
    trace_round_start("exit", 0, seen1_->size());
    size_t exit_emitted = 0;
    for (size_t j = 0; j < exit_plans_.size(); ++j) {
      RuleExecMetrics m;
      exit_plans_[j].ExecuteInto(sink2_.get(), nullptr,
                                 measuring ? &m : nullptr);
      if (measuring) {
        exit_emitted += m.emitted;
        note_rule("exit", 0, exit_labels_[j], m);
      }
    }
    carry2_->Clear();
    size_t exit_staged = 0;
    size_t init2 =
        sink2_->MergeInto(seen2_, carry2_, measuring ? &exit_staged : nullptr);
    inserted += init2;
    ctx->NoteTuples(init2);
    max_carry2 = carry2_->size();
    round_finish("exit", 0, exit_emitted, exit_staged, init2);

    if (!phase2_plans_.empty()) {
      size_t round2 = 0;
      while (!carry2_->empty()) {
        ++iterations;
        if (ctx->NoteIterationAndCheck()) break;
        trace_round_start("phase2", round2, carry2_->size());
        size_t emitted = 0;
        if (num_partitions_ > 1 && carry2_->size() >= min_rows_per_task_) {
          // Parallel round: split carry_2 over the partition relations by
          // row hash and run each partition's plan variants as one worker
          // task. Workers poll the governor between plans, so deadlines,
          // cancellation, and byte budgets trip mid-round; whatever was
          // staged is still merged — a sound partial answer.
          for (Relation* part : carry2_parts_) part->Clear();
          const size_t P = num_partitions_;
          carry2_->ForEachRow([this, P](Row r) {
            carry2_parts_[HashRow(r) % P]->Insert(r);
          });
          if (trace != nullptr) {
            TraceEvent e;
            e.kind = TraceEventKind::kParallelRound;
            e.engine = "separable";
            e.phase = "phase2";
            e.round = round2;
            e.partitions = P;
            e.threads = P;
            e.queue_depth = ThreadPool::Shared()->QueueDepth();
            trace->Emit(e);
          }
          // Worker-private metric slots, summed after the join so per-rule
          // emitted totals match a serial round exactly.
          const size_t num_plans = phase2_plans_.size();
          std::vector<std::vector<RuleExecMetrics>> part_metrics;
          if (measuring) {
            part_metrics.assign(P, std::vector<RuleExecMetrics>(num_plans));
          }
          ThreadPool::Shared()->ParallelFor(
              P, P, [this, ctx, measuring, &part_metrics](size_t k) {
                const std::vector<RulePlan>& plans = phase2_part_plans_[k];
                for (size_t j = 0; j < plans.size(); ++j) {
                  if (ctx->ShouldStop()) break;
                  plans[j].ExecuteInto(
                      sink2_.get(), nullptr,
                      measuring ? &part_metrics[k][j] : nullptr);
                }
              });
          if (measuring) {
            for (size_t j = 0; j < num_plans; ++j) {
              RuleExecMetrics sum;
              for (size_t k = 0; k < P; ++k) {
                sum.emitted += part_metrics[k][j].emitted;
                sum.inserted += part_metrics[k][j].inserted;
                sum.probes += part_metrics[k][j].probes;
              }
              emitted += sum.emitted;
              note_rule("phase2", round2, phase2_labels_[j], sum);
            }
          }
        } else {
          for (size_t j = 0; j < phase2_plans_.size(); ++j) {
            RuleExecMetrics m;
            phase2_plans_[j].ExecuteInto(sink2_.get(), nullptr,
                                         measuring ? &m : nullptr);
            if (measuring) {
              emitted += m.emitted;
              note_rule("phase2", round2, phase2_labels_[j], m);
            }
          }
        }
        carry2_->Clear();
        size_t staged = 0;
        size_t round = sink2_->MergeInto(seen2_, carry2_,
                                         measuring ? &staged : nullptr);
        inserted += round;
        ctx->NoteTuples(round);
        max_carry2 = std::max(max_carry2, carry2_->size());
        round_finish("phase2", round2, emitted, staged, round);
        ++round2;
      }
    }

    for (size_t i = 0; i < seen2_->size(); ++i) {
      Row row = seen2_->row(i);
      rest_rows->emplace_back(row.begin(), row.end());
    }

    if (stats != nullptr) {
      stats->iterations += iterations;
      stats->tuples_inserted += inserted;
      stats->NoteRelationMax("carry_1", max_carry1);
      stats->NoteRelationMax("seen_1", seen1_->size());
      stats->NoteRelationMax("carry_2", max_carry2);
      stats->NoteRelationMax("seen_2", seen2_->size());
      stats->NoteRelationMax("ans", seen2_->size());
    }
  }

  const AnchorInfo& anchor() const { return anchor_; }

 private:
  const SeparableRecursion& sep_;
  AnchorInfo anchor_;
  Database* db_;
  std::string prefix_;
  Relation* carry1_ = nullptr;
  Relation* seen1_ = nullptr;
  Relation* carry2_ = nullptr;
  Relation* seen2_ = nullptr;
  std::unique_ptr<ShardedSink> sink1_;
  std::unique_ptr<ShardedSink> sink2_;
  std::vector<RulePlan> phase1_plans_;
  std::vector<RulePlan> exit_plans_;
  std::vector<RulePlan> phase2_plans_;
  // Synthetic-rule source text, parallel to the plan vectors — the stable
  // keys of EvalStats::rule_stats and trace rule events.
  std::vector<std::string> phase1_labels_;
  std::vector<std::string> exit_labels_;
  std::vector<std::string> phase2_labels_;
  // Parallel phase 2 (only when num_partitions_ > 1): partition k of
  // carry_2 plus, for every phase-2 rule, a plan variant whose carry atom
  // reads that partition. Each partition runs as an independent worker
  // task — Theorem 2.1 makes the phase-2 classes independent, so tasks
  // share only read-only relations and the concurrent sink.
  size_t num_partitions_;
  size_t min_rows_per_task_;
  JoinOrderMode join_order_;
  std::vector<Relation*> carry2_parts_;
  std::vector<std::vector<RulePlan>> phase2_part_plans_;

  std::string PartName(size_t k) const { return StrCat(prefix_, "part", k); }
};

namespace {

// Assembles a full-arity answer row from anchor values and rest values and
// adds it to `answer` if it matches the query (extra constants outside the
// anchor and repeated query variables become post-filters).
void EmitAnswer(const AnchorInfo& anchor, Row anchor_values, Row rest_values,
                const Atom& query,
                const std::vector<std::optional<Value>>& query_constants,
                Answer* answer) {
  std::vector<Value> full(query.arity());
  for (size_t i = 0; i < anchor.anchor_positions.size(); ++i) {
    full[anchor.anchor_positions[i]] = anchor_values[i];
  }
  for (size_t i = 0; i < anchor.rest_positions.size(); ++i) {
    full[anchor.rest_positions[i]] = rest_values[i];
  }
  Row row(full.data(), full.size());
  if (RowMatchesQuery(row, query, query_constants)) {
    answer->Add(row);
  }
}

// Forward declaration for the partial-selection driver's recursion (the
// t_part branch is itself a full selection on a reduced recursion).
Status EvaluateSelection(const Program& program, const SeparableRecursion& sep,
                         const Atom& query, Database* db,
                         ExecutionContext* ctx, JoinOrderMode join_order,
                         SeparableRunResult* result);

// Lemma 2.1: evaluate a partial selection as a union of full selections.
Status EvaluatePartial(const Program& program, const SeparableRecursion& sep,
                       const Atom& query, Database* db, ExecutionContext* ctx,
                       JoinOrderMode join_order, SeparableRunResult* result) {
  result->used_partial_rewrite = true;
  std::vector<bool> bound = BoundPositions(query);

  // Pick e1: a class bound on a proper nonempty subset of its columns.
  std::optional<size_t> e1;
  for (size_t c = 0; c < sep.classes.size() && !e1.has_value(); ++c) {
    size_t hits = 0;
    for (uint32_t p : sep.classes[c].positions) {
      if (bound[p]) ++hits;
    }
    if (hits > 0 && hits < sep.classes[c].positions.size()) e1 = c;
  }
  SEPREC_CHECK(e1.has_value());

  // Branch A: t_part — the recursion without e1; the selection constants
  // now sit in persistent columns, a full selection.
  SeparableRecursion part = RemoveClass(sep, *e1);
  SEPREC_RETURN_IF_ERROR(
      EvaluateSelection(program, part, query, db, ctx, join_order, result));

  // Branch B: t :- t_full & a_1j for each rule of e1 — sideways
  // information passing through a_1j binds all of e1's columns, yielding
  // full selections on the original recursion.
  const EquivalenceClass& ec = sep.classes[*e1];
  bool resolvable = false;
  std::vector<std::optional<Value>> query_constants =
      ResolveConstants(query, db->symbols(), &resolvable);
  SEPREC_CHECK(resolvable);  // driver interned all query constants

  AnchorInfo full_anchor;
  full_anchor.anchor_class = *e1;
  full_anchor.anchor_positions = ec.positions;
  for (uint32_t p = 0; p < sep.arity(); ++p) {
    if (std::find(ec.positions.begin(), ec.positions.end(), p) ==
        ec.positions.end()) {
      full_anchor.rest_positions.push_back(p);
    }
  }
  SchemaRunner runner(sep, full_anchor, db, ctx->limits().parallel,
                      join_order);
  SEPREC_RETURN_IF_ERROR(runner.Compile());

  // Seed bindings: evaluate each e1 rule's nonrecursive body with the
  // query constants substituted, collecting (head e1 values, body-instance
  // e1 values) pairs.
  const size_t w = ec.positions.size();
  std::map<std::vector<Value>, std::set<std::vector<Value>>> seeds_to_heads;
  Substitution constant_sub;
  for (uint32_t p = 0; p < sep.arity(); ++p) {
    if (bound[p]) {
      constant_sub[sep.recursion.head_vars[p]] = query.args[p];
    }
  }
  for (size_t r : ec.rule_indices) {
    const Atom& body_t = sep.recursion.RecursiveBodyAtom(r);
    Rule binding_rule;
    binding_rule.head.predicate = "$bindings";
    for (uint32_t p : ec.positions) {
      binding_rule.head.args.push_back(HeadVar(sep, p));
    }
    for (uint32_t p : ec.positions) {
      binding_rule.head.args.push_back(body_t.args[p]);
    }
    binding_rule.body = NonRecursiveLits(sep, r);
    binding_rule = Substitute(binding_rule, constant_sub);
    PlanOptions binding_opts;
    binding_opts.join_order = join_order;
    SEPREC_ASSIGN_OR_RETURN(RulePlan plan,
                            RulePlan::Compile(binding_rule, db, binding_opts));
    Relation bindings("$bindings", 2 * w);
    plan.ExecuteInto(&bindings);
    result->stats.NoteRelationMax("bindings", bindings.size());
    for (size_t i = 0; i < bindings.size(); ++i) {
      Row row = bindings.row(i);
      std::vector<Value> head_vals(row.begin(), row.begin() + w);
      std::vector<Value> seed_vals(row.begin() + w, row.end());
      seeds_to_heads[std::move(seed_vals)].insert(std::move(head_vals));
    }
  }

  // One full-selection schema run per distinct seed. Rows already harvested
  // stay in the answer when a limit trips mid-union — each branch emits
  // only true tuples, so stopping between branches keeps the answer sound.
  for (const auto& [seed, heads] : seeds_to_heads) {
    if (ctx->ShouldStop()) break;
    std::vector<std::vector<Value>> rest_rows;
    runner.Run({seed}, ctx, &result->stats, &rest_rows);
    ++result->schema_runs;
    for (const std::vector<Value>& head_vals : heads) {
      for (const std::vector<Value>& rest : rest_rows) {
        EmitAnswer(full_anchor, Row(head_vals.data(), head_vals.size()),
                   Row(rest.data(), rest.size()), query, query_constants,
                   &result->answer);
      }
    }
  }
  return Status::OK();
}

Status EvaluateSelection(const Program& program, const SeparableRecursion& sep,
                         const Atom& query, Database* db,
                         ExecutionContext* ctx, JoinOrderMode join_order,
                         SeparableRunResult* result) {
  std::vector<bool> bound = BoundPositions(query);
  std::optional<AnchorInfo> anchor = FindAnchor(sep, bound);
  if (!anchor.has_value()) {
    return EvaluatePartial(program, sep, query, db, ctx, join_order, result);
  }

  bool resolvable = false;
  std::vector<std::optional<Value>> query_constants =
      ResolveConstants(query, db->symbols(), &resolvable);
  SEPREC_CHECK(resolvable);

  std::vector<Value> seed;
  for (uint32_t p : anchor->anchor_positions) {
    seed.push_back(*query_constants[p]);
  }

  SchemaRunner runner(sep, *anchor, db, ctx->limits().parallel, join_order);
  SEPREC_RETURN_IF_ERROR(runner.Compile());
  std::vector<std::vector<Value>> rest_rows;
  runner.Run({seed}, ctx, &result->stats, &rest_rows);
  ++result->schema_runs;
  for (const std::vector<Value>& rest : rest_rows) {
    EmitAnswer(*anchor, Row(seed.data(), seed.size()),
               Row(rest.data(), rest.size()), query, query_constants,
               &result->answer);
  }
  return Status::OK();
}

}  // namespace

SelectionKind ClassifySelection(const SeparableRecursion& sep,
                                const Atom& query) {
  std::vector<bool> bound = BoundPositions(query);
  bool any = false;
  for (bool b : bound) any = any || b;
  if (!any) return SelectionKind::kNoConstants;
  return FindAnchor(sep, bound).has_value() ? SelectionKind::kFull
                                            : SelectionKind::kPartial;
}

StatusOr<SeparableRunResult> EvaluateWithSeparable(
    const Program& program, const SeparableRecursion& sep, const Atom& query,
    Database* db, const FixpointOptions& options) {
  if (query.arity() != sep.arity() || query.predicate != sep.predicate()) {
    return InvalidArgumentError(
        StrCat("query ", query.ToString(), " does not match recursion '",
               sep.predicate(), "'/", sep.arity()));
  }
  if (ClassifySelection(sep, query) == SelectionKind::kNoConstants) {
    return InvalidArgumentError(
        "the Separable algorithm requires a selection constant");
  }

  SeparableRunResult result;
  result.answer = Answer(query.arity());
  result.stats.algorithm = "separable";
  WallTimer timer;

  GovernorScope governor(options.limits, options.cancel, options.context);
  governor.ctx()->TrackMemory(&db->accountant());

  uint64_t polls_before = 0;
  uint64_t attempts_before = 0;
  uint64_t novel_before = 0;
  if (options.trace != nullptr) {
    governor.ctx()->SetTrace(options.trace);
    db->counters().active = true;
    polls_before = governor.ctx()->polls();
    attempts_before = db->counters().attempts.load(std::memory_order_relaxed);
    novel_before = db->counters().novel.load(std::memory_order_relaxed);
    TraceEvent e;
    e.kind = TraceEventKind::kEngineStart;
    e.engine = "separable";
    options.trace->Emit(e);
  }

  // Intern the query constants so seeds have concrete Values (a fresh
  // symbol simply matches nothing).
  for (const Term& arg : query.args) {
    if (arg.kind == Term::Kind::kSymbol) db->symbols().Intern(arg.name);
  }

  FixpointOptions governed = options;
  governed.context = governor.ctx();
  SEPREC_RETURN_IF_ERROR(MaterializeSupport(program, sep.predicate(), db,
                                            governed, &result.stats));
  Status status =
      EvaluateSelection(program, sep, query, db, governor.ctx(),
                        options.no_cbo ? JoinOrderMode::kTextual
                                       : JoinOrderMode::kCostBased,
                        &result);
  result.stats.seconds = timer.Seconds();
  if (options.trace != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kEngineFinish;
    e.engine = "separable";
    e.seconds = result.stats.seconds;
    e.iterations = result.stats.iterations;
    e.tuples = result.stats.tuples_inserted;
    e.polls = governor.ctx()->polls() - polls_before;
    e.insert_attempts =
        db->counters().attempts.load(std::memory_order_relaxed) -
        attempts_before;
    e.insert_new =
        db->counters().novel.load(std::memory_order_relaxed) - novel_before;
    options.trace->Emit(e);
  }
  if (!status.ok()) return status;
  SEPREC_RETURN_IF_ERROR(governor.ExitStatus());
  return result;
}

StatusOr<SeparableRunResult> EvaluateWithSeparable(
    const Program& program, const Atom& query, Database* db,
    const FixpointOptions& options) {
  SEPREC_ASSIGN_OR_RETURN(SeparableRecursion sep,
                          AnalyzeSeparable(program, query.predicate));
  return EvaluateWithSeparable(program, sep, query, db, options);
}

// ---- PreparedSeparable ---------------------------------------------------

struct PreparedSeparable::Impl {
  // Own copies: a prepared query outlives the request (and possibly the
  // QueryProcessor) that compiled it.
  Program program;
  SeparableRecursion sep;
  std::vector<bool> bound;  // the compiled selection shape
  Database* db = nullptr;
  std::unique_ptr<SchemaRunner> runner;
};

PreparedSeparable::PreparedSeparable(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

PreparedSeparable::~PreparedSeparable() = default;

StatusOr<std::unique_ptr<PreparedSeparable>> PreparedSeparable::Compile(
    const Program& program, const SeparableRecursion& sep, const Atom& query,
    Database* db, const ParallelPolicy& policy) {
  if (query.arity() != sep.arity() || query.predicate != sep.predicate()) {
    return InvalidArgumentError(
        StrCat("query ", query.ToString(), " does not match recursion '",
               sep.predicate(), "'/", sep.arity()));
  }
  std::vector<bool> bound = BoundPositions(query);
  std::optional<AnchorInfo> anchor = FindAnchor(sep, bound);
  if (!anchor.has_value()) {
    return InvalidArgumentError(
        StrCat("selection ", query.ToString(),
               " is not full: only full selections compile to a reusable "
               "schema (partial selections re-derive their Lemma 2.1 "
               "branches per request)"));
  }
  auto impl = std::make_unique<Impl>();
  impl->program = program;
  impl->sep = sep;
  impl->bound = std::move(bound);
  impl->db = db;
  // The runner references impl->sep (not the caller's `sep`), which lives
  // exactly as long as the runner does.
  impl->runner = std::make_unique<SchemaRunner>(impl->sep, *std::move(anchor),
                                                db, policy);
  SEPREC_RETURN_IF_ERROR(impl->runner->Compile());
  return std::unique_ptr<PreparedSeparable>(
      new PreparedSeparable(std::move(impl)));
}

void PreparedSeparable::ClearScratch() { impl_->runner->ClearScratch(); }

bool PreparedSeparable::Matches(const Atom& query) const {
  if (query.predicate != impl_->sep.predicate() ||
      query.arity() != impl_->sep.arity()) {
    return false;
  }
  return BoundPositions(query) == impl_->bound;
}

ClosureMaintenance PreparedSeparable::MaintenanceFor(
    const Atom& query, const std::string& prefix) const {
  ClosureMaintenance out;
  if (!Matches(query)) return out;  // kNone
  const AnchorInfo& anchor = impl_->runner->anchor();
  Database* db = impl_->db;
  for (const Term& arg : query.args) {
    if (arg.kind == Term::Kind::kSymbol) db->symbols().Intern(arg.name);
  }
  bool resolvable = false;
  std::vector<std::optional<Value>> query_constants =
      ResolveConstants(query, db->symbols(), &resolvable);
  if (!resolvable) return out;
  for (uint32_t p : anchor.anchor_positions) {
    out.seed_row.push_back(*query_constants[p]);
  }
  out.closure_name = StrCat(prefix, "c");
  out.seed_name = StrCat(prefix, "seed");
  if (!anchor.anchor_class.has_value()) {
    // Dummy equivalence class: seen_1 is exactly {seed_row}, whatever the
    // data says.
    out.kind = ClosureMaintainability::kConstant;
    return out;
  }

  // IDB predicates of the program: a phase-1 body reading one of them (a
  // materialised support predicate) sees derived tuples the closure
  // program below would not maintain.
  std::set<std::string> idb;
  for (const Rule& rule : impl_->program.rules) {
    idb.insert(rule.head.predicate);
  }
  const EquivalenceClass& ec = impl_->sep.classes[*anchor.anchor_class];
  std::set<std::string> bases;
  for (size_t r : ec.rule_indices) {
    for (const Literal& lit : NonRecursiveLits(impl_->sep, r)) {
      // Non-atom literals (comparisons) are data-independent filters.
      if (lit.kind != Literal::Kind::kAtom) continue;
      if (lit.negated || idb.count(lit.atom.predicate)) {
        return out;  // kNone
      }
      bases.insert(lit.atom.predicate);
    }
  }

  // seen_1 as a least fixpoint: seed rule plus one MakePhase1Rule per
  // anchor-class rule with the closure relation as both carry and output.
  const size_t w = anchor.anchor_positions.size();
  Rule seed_rule;
  seed_rule.head.predicate = out.closure_name;
  Atom seed_atom;
  seed_atom.predicate = out.seed_name;
  for (size_t i = 0; i < w; ++i) {
    Term v = Term::Var(StrCat("S", i));
    seed_rule.head.args.push_back(v);
    seed_atom.args.push_back(v);
  }
  seed_rule.body.push_back(Literal::MakeAtom(std::move(seed_atom)));
  out.program.rules.push_back(std::move(seed_rule));
  for (size_t r : ec.rule_indices) {
    out.program.rules.push_back(MakePhase1Rule(
        impl_->sep, anchor, r, out.closure_name, out.closure_name));
  }
  out.base_relations.assign(bases.begin(), bases.end());
  out.kind = ClosureMaintainability::kMaintainable;
  return out;
}

StatusOr<SeparableRunResult> PreparedSeparable::Execute(
    const Atom& query, const FixpointOptions& options,
    const Phase1Closure* reuse, Phase1Closure* capture) {
  if (!Matches(query)) {
    return InvalidArgumentError(
        StrCat("query ", query.ToString(),
               " does not match the prepared selection shape"));
  }
  Database* db = impl_->db;

  SeparableRunResult result;
  result.answer = Answer(query.arity());
  result.stats.algorithm = "separable";
  WallTimer timer;

  GovernorScope governor(options.limits, options.cancel, options.context);
  governor.ctx()->TrackMemory(&db->accountant());

  uint64_t polls_before = 0;
  uint64_t attempts_before = 0;
  uint64_t novel_before = 0;
  if (options.trace != nullptr) {
    governor.ctx()->SetTrace(options.trace);
    db->counters().active = true;
    polls_before = governor.ctx()->polls();
    attempts_before = db->counters().attempts.load(std::memory_order_relaxed);
    novel_before = db->counters().novel.load(std::memory_order_relaxed);
    TraceEvent e;
    e.kind = TraceEventKind::kEngineStart;
    e.engine = "separable";
    options.trace->Emit(e);
  }

  // Intern the query constants so seeds have concrete Values (a fresh
  // symbol simply matches nothing).
  for (const Term& arg : query.args) {
    if (arg.kind == Term::Kind::kSymbol) db->symbols().Intern(arg.name);
  }

  FixpointOptions governed = options;
  governed.context = governor.ctx();
  Status status = MaterializeSupport(impl_->program, impl_->sep.predicate(),
                                     db, governed, &result.stats);
  if (status.ok()) {
    bool resolvable = false;
    std::vector<std::optional<Value>> query_constants =
        ResolveConstants(query, db->symbols(), &resolvable);
    SEPREC_CHECK(resolvable);  // all constants interned above

    const AnchorInfo& anchor = impl_->runner->anchor();
    std::vector<Value> seed;
    seed.reserve(anchor.anchor_positions.size());
    for (uint32_t p : anchor.anchor_positions) {
      seed.push_back(*query_constants[p]);
    }

    std::vector<std::vector<Value>> rest_rows;
    impl_->runner->Run({seed}, governor.ctx(), &result.stats, &rest_rows,
                       reuse, capture);
    result.schema_runs = 1;
    for (const std::vector<Value>& rest : rest_rows) {
      EmitAnswer(anchor, Row(seed.data(), seed.size()),
                 Row(rest.data(), rest.size()), query, query_constants,
                 &result.answer);
    }
  }

  result.stats.seconds = timer.Seconds();
  if (options.trace != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kEngineFinish;
    e.engine = "separable";
    e.seconds = result.stats.seconds;
    e.iterations = result.stats.iterations;
    e.tuples = result.stats.tuples_inserted;
    e.polls = governor.ctx()->polls() - polls_before;
    e.insert_attempts =
        db->counters().attempts.load(std::memory_order_relaxed) -
        attempts_before;
    e.insert_new =
        db->counters().novel.load(std::memory_order_relaxed) - novel_before;
    options.trace->Emit(e);
  }
  if (!status.ok()) return status;
  SEPREC_RETURN_IF_ERROR(governor.ExitStatus());
  return result;
}

StatusOr<std::string> ExplainSchema(const SeparableRecursion& sep,
                                    const Atom& query) {
  std::vector<bool> bound = BoundPositions(query);
  bool any = false;
  for (bool b : bound) any = any || b;
  if (!any) {
    return InvalidArgumentError("query has no selection constant");
  }
  std::optional<AnchorInfo> anchor = FindAnchor(sep, bound);
  if (!anchor.has_value()) {
    return InvalidArgumentError(
        "partial selection: rewrite with Lemma 2.1 first");
  }

  auto rule_rhs = [](const Rule& rule) {
    std::string out;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) out += " & ";
      out += rule.body[i].ToString();
    }
    return out;
  };

  std::string text;
  std::string seeds;
  for (uint32_t p : anchor->anchor_positions) {
    if (!seeds.empty()) seeds += ", ";
    seeds += query.args[p].ToString();
  }

  if (anchor->anchor_class.has_value()) {
    text += StrCat("carry_1(", seeds, ");\n");
    text += "seen_1 := carry_1;\n";
    text += "while carry_1 not empty do\n";
    const EquivalenceClass& ec = sep.classes[*anchor->anchor_class];
    std::string update;
    for (size_t r : ec.rule_indices) {
      Rule rule = MakePhase1Rule(sep, *anchor, r, "carry_1", "carry_1");
      if (!update.empty()) update += "\n             \\cup ";
      update += StrCat(rule.head.ToString(), " := ", rule_rhs(rule));
    }
    text += StrCat("  ", update, ";\n");
    text += "  carry_1 := carry_1 - seen_1;\n";
    text += "  seen_1 := seen_1 \\cup carry_1;\nendwhile;\n";
  } else {
    text += StrCat("seen_1(", seeds, ");   % selection constants are in "
                   "t|pers: dummy equivalence class\n");
  }

  for (size_t e = 0; e < sep.recursion.exit_rules.size(); ++e) {
    Rule rule = MakeExitRule(sep, *anchor, e, "seen_1", "carry_2");
    text += StrCat(rule.head.ToString(), " := ", rule_rhs(rule), ";\n");
  }
  text += "seen_2 := carry_2;\n";

  bool any_phase2 = false;
  std::string update2;
  for (size_t r = 0; r < sep.recursion.recursive_rules.size(); ++r) {
    if (anchor->anchor_class.has_value() &&
        sep.class_of_rule[r] == *anchor->anchor_class) {
      continue;
    }
    any_phase2 = true;
    Rule rule = MakePhase2Rule(sep, *anchor, r, "carry_2", "carry_2");
    if (!update2.empty()) update2 += "\n             \\cup ";
    update2 += StrCat(rule.head.ToString(), " := ", rule_rhs(rule));
  }
  if (any_phase2) {
    text += "while carry_2 not empty do\n";
    text += StrCat("  ", update2, ";\n");
    text += "  carry_2 := carry_2 - seen_2;\n";
    text += "  seen_2 := seen_2 \\cup carry_2;\nendwhile;\n";
  }
  std::string ans_args;
  for (uint32_t p : anchor->rest_positions) {
    if (!ans_args.empty()) ans_args += ", ";
    ans_args += sep.recursion.head_vars[p];
  }
  text += StrCat("ans(", ans_args, ") := seen_2(", ans_args, ");\n");
  return text;
}

}  // namespace seprec
