// Detection of separable recursions (Definition 2.4 of the paper).
//
// A linear recursion t defined by recursive rules r_1..r_n (plus exit
// rules) is *separable* iff
//   1. no r_i has shifting variables (a variable occupying different
//      argument positions in the head and body instances of t);
//   2. for each r_i, the head positions of t sharing variables with the
//      nonrecursive body (t_i^h) equal the body-instance positions doing so
//      (t_i^b);
//   3. the position sets of different rules are pairwise equal or disjoint
//      — inducing the *equivalence classes* e_1..e_m of rules; and
//   4. removing the recursive atom from r_i's body leaves a single maximal
//      connected set of literals.
// Positions belonging to no class are *persistent* (t|pers): their
// variables ride along unchanged through every rule application.
//
// Detection cost is a small polynomial in the rule set only (Section 3.1),
// never in the database — verified by the tab_detection bench.
#ifndef SEPREC_SEPARABLE_DETECTION_H_
#define SEPREC_SEPARABLE_DETECTION_H_

#include <string>
#include <string_view>
#include <vector>

#include "datalog/analysis.h"
#include "datalog/ast.h"
#include "datalog/diagnostics.h"
#include "util/status.h"

namespace seprec {

struct EquivalenceClass {
  std::vector<size_t> rule_indices;  // into LinearRecursion::recursive_rules
  std::vector<uint32_t> positions;   // t|e_i, ascending
};

struct SeparableRecursion {
  LinearRecursion recursion;
  std::vector<EquivalenceClass> classes;
  std::vector<uint32_t> persistent_positions;  // t|pers, ascending
  std::vector<size_t> class_of_rule;  // class index per recursive rule

  size_t arity() const { return recursion.arity; }
  const std::string& predicate() const { return recursion.predicate; }
};

struct SeparabilityOptions {
  // Enforce condition 4 (the nonrecursive body of each recursive rule is
  // one maximal connected set). Section 5 of the paper observes that
  // dropping this condition keeps the evaluation algorithm CORRECT but
  // costs the selection's focussing effect: components not connected to
  // the class columns are evaluated without any binding (e.g. the whole
  // `b` relation in t(X,Y) :- a(X,W) & t(W,Z) & b(Z,Y)). Set to false to
  // accept such recursions anyway.
  bool require_connected_bodies = true;
};

// Analyzes the definition of `predicate` in `program`. Returns
// FAILED_PRECONDITION with a human-readable reason when the recursion is
// not separable (which exact condition failed), INVALID_ARGUMENT on
// malformed input.
//
// When `sink` is non-null the analysis additionally reports EVERY
// violation (not just the first) as a structured diagnostic with a source
// span pointing at the offending rule — one stable code per way a
// recursion can miss Definition 2.4:
//
//   S100  not a linear recursion in normal form (non-linear rule, mutual
//         recursion, aggregate rule, or a body predicate depending on t)
//   S101  condition 1: a shifting variable, naming the variable and its
//         head/body positions
//   S102  condition 2: t_i^h != t_i^b, listing both position sets
//   S103  condition 3: two rules' position sets overlap without being
//         equal (the second rule attached as a note)
//   S104  condition 4: the nonrecursive body is disconnected, each stray
//         component listed; fix-it points at the Section 5 --relaxed mode
//   S105  the recursive body atom carries a constant or repeated variable
//   S106  no (non-trivial) recursive rule
//   S107  no nonrecursive exit rule
//
// The returned error's message is the first diagnostic's message, so the
// legacy prose behaviour is unchanged when sink == nullptr.
StatusOr<SeparableRecursion> AnalyzeSeparable(const Program& program,
                                              std::string_view predicate,
                                              const SeparabilityOptions&
                                                  options = {},
                                              DiagnosticSink* sink = nullptr);

// Convenience: true iff AnalyzeSeparable succeeds.
bool IsSeparable(const Program& program, std::string_view predicate);

// Process-wide count of AnalyzeSeparable runs (each is a full
// detection pass over one predicate's recursion). Detection is the
// expensive per-program cost the paper's compile-once/evaluate-many split
// amortizes; the query service's plan cache reports the delta of this
// counter per request, and tests assert a cache hit re-runs nothing.
// Monotonic, relaxed atomic — deltas observed around a call sequence on
// one thread are exact when no other thread analyzes concurrently.
uint64_t DetectionPassCount();

// Builds the sub-recursion obtained by deleting the rules of class
// `class_index` (the paper's t_part construction in Lemma 2.1): the deleted
// class's positions become persistent. Exit rules are kept.
SeparableRecursion RemoveClass(const SeparableRecursion& sep,
                               size_t class_index);

// Renders a summary: classes, their positions and rules, persistent
// columns. For tools and tests.
std::string DescribeSeparable(const SeparableRecursion& sep);

}  // namespace seprec

#endif  // SEPREC_SEPARABLE_DETECTION_H_
