// The Lemma 2.1 program transformation, as a source-to-source rewrite.
//
// Given a partial selection on a separable recursion t (the query binds a
// proper nonempty subset of some equivalence class e1 and nothing that
// would make it full), the paper replaces t's definition with
//
//   t_part — the recursion WITHOUT e1's rules (e1's columns persistent),
//   t_full — a copy of the whole recursion, and the glue rules
//   t :- t_part.
//   t :- a_1j & t_full.        (one per rule r_1j of e1)
//
// after which sideways information passing turns the original selection
// into full selections on both new predicates (Example 2.4). The
// SeparableEngine evaluates partial selections directly with this
// strategy; this module materialises the transformation as an actual
// Program so it can be displayed (the paper's Example 2.4 listing),
// tested for equivalence, and fed to any engine.
#ifndef SEPREC_SEPARABLE_REWRITE_H_
#define SEPREC_SEPARABLE_REWRITE_H_

#include <string>

#include "datalog/ast.h"
#include "separable/detection.h"
#include "util/status.h"

namespace seprec {

struct PartialRewrite {
  // The transformed program: every rule of the input except t's, plus the
  // t_part / t_full recursions and the glue rules.
  Program program;

  std::string part_predicate;  // e.g. "t_part"
  std::string full_predicate;  // e.g. "t_full"
  size_t removed_class = 0;    // index of e1 in `sep.classes`
};

// Builds the rewrite for `query` (which must be a PARTIAL selection on
// `sep`; FAILED_PRECONDITION otherwise). `program` supplies the non-t
// rules carried over unchanged.
StatusOr<PartialRewrite> RewritePartialSelection(
    const Program& program, const SeparableRecursion& sep, const Atom& query);

}  // namespace seprec

#endif  // SEPREC_SEPARABLE_REWRITE_H_
