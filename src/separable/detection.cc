#include "separable/detection.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/string_util.h"

namespace seprec {
namespace {

// The nonrecursive body literals of recursive rule `i`.
std::vector<Literal> NonRecursiveLiterals(const LinearRecursion& rec,
                                          size_t i) {
  std::vector<Literal> out;
  const Rule& rule = rec.recursive_rules[i];
  for (size_t j = 0; j < rule.body.size(); ++j) {
    if (j != rec.recursive_atom_index[i]) out.push_back(rule.body[j]);
  }
  return out;
}

}  // namespace

StatusOr<SeparableRecursion> AnalyzeSeparable(
    const Program& program, std::string_view predicate,
    const SeparabilityOptions& options) {
  SEPREC_ASSIGN_OR_RETURN(LinearRecursion rec,
                          ExtractLinearRecursion(program, predicate));
  if (rec.recursive_rules.empty()) {
    return FailedPreconditionError(
        StrCat("'", predicate, "' has no (non-trivial) recursive rule"));
  }
  if (rec.exit_rules.empty()) {
    return FailedPreconditionError(
        StrCat("'", predicate, "' has no nonrecursive exit rule"));
  }

  SeparableRecursion sep;
  const size_t n = rec.recursive_rules.size();
  const size_t k = rec.arity;

  // Per rule: the t_i^h / t_i^b position sets.
  std::vector<std::set<uint32_t>> head_positions(n);
  std::vector<std::set<uint32_t>> body_positions(n);

  for (size_t i = 0; i < n; ++i) {
    const Rule& rule = rec.recursive_rules[i];
    const Atom& body_t = rec.RecursiveBodyAtom(i);

    // The recursive atom must carry plain, pairwise-distinct variables;
    // constants or repeats are outside Definition 2.4's shape.
    std::set<std::string> seen;
    for (const Term& arg : body_t.args) {
      if (!arg.IsVar()) {
        return FailedPreconditionError(
            StrCat("recursive atom has a constant argument: ",
                   rule.ToString()));
      }
      if (!seen.insert(arg.name).second) {
        return FailedPreconditionError(
            StrCat("recursive atom repeats variable '", arg.name,
                   "': ", rule.ToString()));
      }
    }

    // Condition 1: no shifting variables. Head variables are V0..Vk-1, so
    // any head variable inside the body instance must sit at its own
    // position.
    for (size_t p = 0; p < k; ++p) {
      const std::string& v = body_t.args[p].name;
      for (size_t q = 0; q < k; ++q) {
        if (v == rec.head_vars[q] && q != p) {
          return FailedPreconditionError(StrCat(
              "condition 1 (shifting variables): '", v, "' moves from "
              "position ", q, " to ", p, " in: ", rule.ToString()));
        }
      }
    }

    // Variables of the nonrecursive part.
    std::set<std::string> nonrec_vars;
    std::vector<Literal> others = NonRecursiveLiterals(rec, i);
    for (const Literal& lit : others) CollectVars(lit, &nonrec_vars);

    for (uint32_t p = 0; p < k; ++p) {
      if (nonrec_vars.count(rec.head_vars[p])) head_positions[i].insert(p);
      if (nonrec_vars.count(body_t.args[p].name)) {
        body_positions[i].insert(p);
      }
    }

    // Condition 2: t_i^h == t_i^b.
    if (head_positions[i] != body_positions[i]) {
      return FailedPreconditionError(
          StrCat("condition 2 (t^h != t^b) fails for: ", rule.ToString()));
    }

    // Condition 4: the nonrecursive literals form one maximal connected
    // set. (A rule whose entire body is the recursive atom was either
    // dropped as tautological or rejected above.)
    size_t num_components = 0;
    if (!others.empty()) {
      ConnectedComponents(others, &num_components);
    }
    if (options.require_connected_bodies && num_components != 1) {
      return FailedPreconditionError(StrCat(
          "condition 4 (maximal connected set): the nonrecursive body of ",
          rule.ToString(), " has ", num_components,
          " connected components"));
    }
  }

  // Condition 3: position sets pairwise equal or disjoint; group rules
  // into equivalence classes.
  std::map<std::vector<uint32_t>, size_t> class_of_positions;
  sep.class_of_rule.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (body_positions[i] == body_positions[j]) continue;
      for (uint32_t p : body_positions[i]) {
        if (body_positions[j].count(p)) {
          return FailedPreconditionError(StrCat(
              "condition 3 (equal or disjoint): rules ", i, " and ", j,
              " overlap on column ", p, " without being equal"));
        }
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t> key(body_positions[i].begin(),
                              body_positions[i].end());
    auto [it, inserted] = class_of_positions.emplace(key, sep.classes.size());
    if (inserted) {
      EquivalenceClass ec;
      ec.positions = key;
      sep.classes.push_back(std::move(ec));
    }
    sep.classes[it->second].rule_indices.push_back(i);
    sep.class_of_rule[i] = it->second;
  }

  // Persistent positions: in no class.
  std::set<uint32_t> in_class;
  for (const EquivalenceClass& ec : sep.classes) {
    in_class.insert(ec.positions.begin(), ec.positions.end());
  }
  for (uint32_t p = 0; p < k; ++p) {
    if (!in_class.count(p)) sep.persistent_positions.push_back(p);
  }

  sep.recursion = std::move(rec);
  return sep;
}

bool IsSeparable(const Program& program, std::string_view predicate) {
  return AnalyzeSeparable(program, predicate).ok();
}

SeparableRecursion RemoveClass(const SeparableRecursion& sep,
                               size_t class_index) {
  SEPREC_CHECK(class_index < sep.classes.size());
  SeparableRecursion out;
  out.recursion.predicate = sep.recursion.predicate;
  out.recursion.arity = sep.recursion.arity;
  out.recursion.head_vars = sep.recursion.head_vars;
  out.recursion.exit_rules = sep.recursion.exit_rules;

  std::map<size_t, size_t> new_rule_index;  // old -> new
  for (size_t i = 0; i < sep.recursion.recursive_rules.size(); ++i) {
    if (sep.class_of_rule[i] == class_index) continue;
    new_rule_index[i] = out.recursion.recursive_rules.size();
    out.recursion.recursive_rules.push_back(sep.recursion.recursive_rules[i]);
    out.recursion.recursive_atom_index.push_back(
        sep.recursion.recursive_atom_index[i]);
  }
  for (size_t c = 0; c < sep.classes.size(); ++c) {
    if (c == class_index) continue;
    EquivalenceClass ec;
    ec.positions = sep.classes[c].positions;
    for (size_t old_rule : sep.classes[c].rule_indices) {
      ec.rule_indices.push_back(new_rule_index.at(old_rule));
    }
    out.classes.push_back(std::move(ec));
  }
  out.class_of_rule.resize(out.recursion.recursive_rules.size());
  for (size_t c = 0; c < out.classes.size(); ++c) {
    for (size_t r : out.classes[c].rule_indices) out.class_of_rule[r] = c;
  }
  // The removed class's columns become persistent.
  std::set<uint32_t> persistent(sep.persistent_positions.begin(),
                                sep.persistent_positions.end());
  persistent.insert(sep.classes[class_index].positions.begin(),
                    sep.classes[class_index].positions.end());
  out.persistent_positions.assign(persistent.begin(), persistent.end());
  return out;
}

std::string DescribeSeparable(const SeparableRecursion& sep) {
  std::string out = StrCat("separable recursion '", sep.predicate(),
                           "'/", sep.arity(), "\n");
  for (size_t c = 0; c < sep.classes.size(); ++c) {
    out += StrCat("  class e", c + 1, ": columns {");
    for (size_t i = 0; i < sep.classes[c].positions.size(); ++i) {
      if (i > 0) out += ", ";
      out += StrCat(sep.classes[c].positions[i]);
    }
    out += "}, rules:\n";
    for (size_t r : sep.classes[c].rule_indices) {
      out += StrCat("    ", sep.recursion.recursive_rules[r].ToString(),
                    "\n");
    }
  }
  out += "  persistent columns {";
  for (size_t i = 0; i < sep.persistent_positions.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrCat(sep.persistent_positions[i]);
  }
  out += "}\n  exit rules:\n";
  for (const Rule& rule : sep.recursion.exit_rules) {
    out += StrCat("    ", rule.ToString(), "\n");
  }
  return out;
}

}  // namespace seprec
