#include "separable/detection.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>

#include "util/string_util.h"

namespace seprec {
namespace {

std::atomic<uint64_t> g_detection_passes{0};

}  // namespace

uint64_t DetectionPassCount() {
  return g_detection_passes.load(std::memory_order_relaxed);
}

namespace {

// The nonrecursive body literals of recursive rule `i`.
std::vector<Literal> NonRecursiveLiterals(const LinearRecursion& rec,
                                          size_t i) {
  std::vector<Literal> out;
  const Rule& rule = rec.recursive_rules[i];
  for (size_t j = 0; j < rule.body.size(); ++j) {
    if (j != rec.recursive_atom_index[i]) out.push_back(rule.body[j]);
  }
  return out;
}

std::string PositionSetToString(const std::set<uint32_t>& positions) {
  std::string out = "{";
  bool first = true;
  for (uint32_t p : positions) {
    if (!first) out += ", ";
    out += StrCat(p);
    first = false;
  }
  return out + "}";
}

// Span of the best rule to blame for a whole-recursion failure: the first
// rule defining `predicate` (or an unknown span for programs built
// programmatically).
SourceSpan PredicateSpan(const Program& program, std::string_view predicate) {
  for (const Rule& rule : program.rules) {
    if (rule.head.predicate == predicate) return rule.span;
  }
  return SourceSpan{};
}

}  // namespace

StatusOr<SeparableRecursion> AnalyzeSeparable(
    const Program& program, std::string_view predicate,
    const SeparabilityOptions& options, DiagnosticSink* sink) {
  g_detection_passes.fetch_add(1, std::memory_order_relaxed);
  // Local sink so the caller's sink only sees this predicate's findings
  // once, in emission order, even if we bail out mid-way.
  DiagnosticSink local;
  auto finish_failed = [&]() -> Status {
    SEPREC_CHECK(!local.empty());
    Status status =
        FailedPreconditionError(local.diagnostics().front().message);
    if (sink != nullptr) sink->Absorb(local);
    return status;
  };

  StatusOr<LinearRecursion> extracted =
      ExtractLinearRecursion(program, predicate);
  if (!extracted.ok()) {
    if (sink != nullptr) {
      sink->Report("S100", Severity::kWarning,
                   PredicateSpan(program, predicate),
                   StrCat("'", predicate, "' is not a linear recursion in "
                          "normal form: ", extracted.status().message()));
    }
    return extracted.status();
  }
  LinearRecursion rec = std::move(extracted).value();
  if (rec.recursive_rules.empty()) {
    local.Report("S106", Severity::kWarning,
                 PredicateSpan(program, predicate),
                 StrCat("'", predicate,
                        "' has no (non-trivial) recursive rule"));
    return finish_failed();
  }
  if (rec.exit_rules.empty()) {
    local.Report("S107", Severity::kWarning,
                 PredicateSpan(program, predicate),
                 StrCat("'", predicate, "' has no nonrecursive exit rule"),
                 StrCat("add a nonrecursive rule or fact for '", predicate,
                        "' so the recursion has a base case"));
    return finish_failed();
  }

  SeparableRecursion sep;
  const size_t n = rec.recursive_rules.size();
  const size_t k = rec.arity;

  // Per rule: the t_i^h / t_i^b position sets, and whether the rule passed
  // the shape checks that make those sets meaningful.
  std::vector<std::set<uint32_t>> head_positions(n);
  std::vector<std::set<uint32_t>> body_positions(n);
  std::vector<bool> shape_ok(n, true);

  for (size_t i = 0; i < n; ++i) {
    const Rule& rule = rec.recursive_rules[i];
    const Atom& body_t = rec.RecursiveBodyAtom(i);

    // The recursive atom must carry plain, pairwise-distinct variables;
    // constants or repeats are outside Definition 2.4's shape.
    std::set<std::string> seen;
    for (const Term& arg : body_t.args) {
      if (!arg.IsVar()) {
        local.Report("S105", Severity::kWarning, body_t.span,
                     StrCat("recursive atom has a constant argument: ",
                            rule.ToString()));
        shape_ok[i] = false;
      } else if (!seen.insert(arg.name).second) {
        local.Report("S105", Severity::kWarning, body_t.span,
                     StrCat("recursive atom repeats variable '", arg.name,
                            "': ", rule.ToString()));
        shape_ok[i] = false;
      }
    }
    if (!shape_ok[i]) continue;  // position sets are not meaningful

    // Condition 1: no shifting variables. Head variables are V0..Vk-1, so
    // any head variable inside the body instance must sit at its own
    // position.
    for (size_t p = 0; p < k; ++p) {
      const std::string& v = body_t.args[p].name;
      for (size_t q = 0; q < k; ++q) {
        if (v == rec.head_vars[q] && q != p) {
          Diagnostic d;
          d.code = "S101";
          d.severity = Severity::kWarning;
          d.span = body_t.span.IsKnown() ? body_t.span : rule.span;
          d.message = StrCat(
              "condition 1 (shifting variables): '", v,
              "' moves from head position ", q, " to body position ", p,
              " in: ", rule.ToString());
          d.notes.push_back(
              {rule.head.span,
               StrCat("head instance binds '", v, "' at position ", q)});
          local.Add(std::move(d));
          shape_ok[i] = false;
        }
      }
    }

    // Variables of the nonrecursive part.
    std::set<std::string> nonrec_vars;
    std::vector<Literal> others = NonRecursiveLiterals(rec, i);
    for (const Literal& lit : others) CollectVars(lit, &nonrec_vars);

    for (uint32_t p = 0; p < k; ++p) {
      if (nonrec_vars.count(rec.head_vars[p])) head_positions[i].insert(p);
      if (nonrec_vars.count(body_t.args[p].name)) {
        body_positions[i].insert(p);
      }
    }

    // Condition 2: t_i^h == t_i^b.
    if (head_positions[i] != body_positions[i]) {
      local.Report(
          "S102", Severity::kWarning, rule.span,
          StrCat("condition 2 (t^h != t^b): head positions sharing "
                 "variables with the nonrecursive body t^h = ",
                 PositionSetToString(head_positions[i]),
                 " differ from body-instance positions t^b = ",
                 PositionSetToString(body_positions[i]), " in: ",
                 rule.ToString()));
      shape_ok[i] = false;
    }

    // Condition 4: the nonrecursive literals form one maximal connected
    // set. (A rule whose entire body is the recursive atom was either
    // dropped as tautological or rejected above.)
    size_t num_components = 0;
    std::vector<size_t> component_of;
    if (!others.empty()) {
      component_of = ConnectedComponents(others, &num_components);
    }
    if (options.require_connected_bodies && num_components > 1) {
      Diagnostic d;
      d.code = "S104";
      d.severity = Severity::kWarning;
      d.span = rule.span;
      d.message = StrCat(
          "condition 4 (maximal connected set): the nonrecursive body of ",
          rule.ToString(), " has ", num_components,
          " connected components");
      // Spell out each stray component (everything beyond the first).
      for (size_t c = 1; c < num_components; ++c) {
        std::vector<std::string> lits;
        SourceSpan where;
        for (size_t j = 0; j < others.size(); ++j) {
          if (component_of[j] != c) continue;
          lits.push_back(others[j].ToString());
          where = CoverSpans(where, others[j].span);
        }
        d.notes.push_back(
            {where, StrCat("stray component: ", StrJoin(lits, ", "),
                           " shares no variable with the rest of the "
                           "body")});
      }
      d.fixit =
          "run with --relaxed (SeparabilityOptions.require_connected_bodies "
          "= false): Section 5 keeps the algorithm correct but evaluates "
          "stray components without selection bindings";
      local.Add(std::move(d));
      shape_ok[i] = false;
    }
  }

  // Condition 3: position sets pairwise equal or disjoint; group rules
  // into equivalence classes. Only meaningful between rules whose sets
  // were computable.
  for (size_t i = 0; i < n; ++i) {
    if (!shape_ok[i]) continue;
    for (size_t j = i + 1; j < n; ++j) {
      if (!shape_ok[j]) continue;
      if (body_positions[i] == body_positions[j]) continue;
      for (uint32_t p : body_positions[i]) {
        if (body_positions[j].count(p)) {
          Diagnostic d;
          d.code = "S103";
          d.severity = Severity::kWarning;
          d.span = rec.recursive_rules[i].span;
          d.message = StrCat(
              "condition 3 (equal or disjoint): rules ", i, " and ", j,
              " overlap on column ", p, " without being equal (",
              PositionSetToString(body_positions[i]), " vs ",
              PositionSetToString(body_positions[j]), ")");
          d.notes.push_back(
              {rec.recursive_rules[j].span,
               StrCat("the other rule of the pair: ",
                      rec.recursive_rules[j].ToString())});
          local.Add(std::move(d));
          break;  // one overlap report per rule pair
        }
      }
    }
  }

  if (!local.empty()) return finish_failed();

  std::map<std::vector<uint32_t>, size_t> class_of_positions;
  sep.class_of_rule.resize(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t> key(body_positions[i].begin(),
                              body_positions[i].end());
    auto [it, inserted] = class_of_positions.emplace(key, sep.classes.size());
    if (inserted) {
      EquivalenceClass ec;
      ec.positions = key;
      sep.classes.push_back(std::move(ec));
    }
    sep.classes[it->second].rule_indices.push_back(i);
    sep.class_of_rule[i] = it->second;
  }

  // Persistent positions: in no class.
  std::set<uint32_t> in_class;
  for (const EquivalenceClass& ec : sep.classes) {
    in_class.insert(ec.positions.begin(), ec.positions.end());
  }
  for (uint32_t p = 0; p < k; ++p) {
    if (!in_class.count(p)) sep.persistent_positions.push_back(p);
  }

  sep.recursion = std::move(rec);
  return sep;
}

bool IsSeparable(const Program& program, std::string_view predicate) {
  return AnalyzeSeparable(program, predicate).ok();
}

SeparableRecursion RemoveClass(const SeparableRecursion& sep,
                               size_t class_index) {
  SEPREC_CHECK(class_index < sep.classes.size());
  SeparableRecursion out;
  out.recursion.predicate = sep.recursion.predicate;
  out.recursion.arity = sep.recursion.arity;
  out.recursion.head_vars = sep.recursion.head_vars;
  out.recursion.exit_rules = sep.recursion.exit_rules;
  out.recursion.exit_rule_origin = sep.recursion.exit_rule_origin;

  std::map<size_t, size_t> new_rule_index;  // old -> new
  for (size_t i = 0; i < sep.recursion.recursive_rules.size(); ++i) {
    if (sep.class_of_rule[i] == class_index) continue;
    new_rule_index[i] = out.recursion.recursive_rules.size();
    out.recursion.recursive_rules.push_back(sep.recursion.recursive_rules[i]);
    out.recursion.recursive_atom_index.push_back(
        sep.recursion.recursive_atom_index[i]);
    if (i < sep.recursion.recursive_rule_origin.size()) {
      out.recursion.recursive_rule_origin.push_back(
          sep.recursion.recursive_rule_origin[i]);
    }
  }
  for (size_t c = 0; c < sep.classes.size(); ++c) {
    if (c == class_index) continue;
    EquivalenceClass ec;
    ec.positions = sep.classes[c].positions;
    for (size_t old_rule : sep.classes[c].rule_indices) {
      ec.rule_indices.push_back(new_rule_index.at(old_rule));
    }
    out.classes.push_back(std::move(ec));
  }
  out.class_of_rule.resize(out.recursion.recursive_rules.size());
  for (size_t c = 0; c < out.classes.size(); ++c) {
    for (size_t r : out.classes[c].rule_indices) out.class_of_rule[r] = c;
  }
  // The removed class's columns become persistent.
  std::set<uint32_t> persistent(sep.persistent_positions.begin(),
                                sep.persistent_positions.end());
  persistent.insert(sep.classes[class_index].positions.begin(),
                    sep.classes[class_index].positions.end());
  out.persistent_positions.assign(persistent.begin(), persistent.end());
  return out;
}

std::string DescribeSeparable(const SeparableRecursion& sep) {
  std::string out = StrCat("separable recursion '", sep.predicate(),
                           "'/", sep.arity(), "\n");
  for (size_t c = 0; c < sep.classes.size(); ++c) {
    out += StrCat("  class e", c + 1, ": columns {");
    for (size_t i = 0; i < sep.classes[c].positions.size(); ++i) {
      if (i > 0) out += ", ";
      out += StrCat(sep.classes[c].positions[i]);
    }
    out += "}, rules:\n";
    for (size_t r : sep.classes[c].rule_indices) {
      out += StrCat("    ", sep.recursion.recursive_rules[r].ToString(),
                    "\n");
    }
  }
  out += "  persistent columns {";
  for (size_t i = 0; i < sep.persistent_positions.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrCat(sep.persistent_positions[i]);
  }
  out += "}\n  exit rules:\n";
  for (const Rule& rule : sep.recursion.exit_rules) {
    out += StrCat("    ", rule.ToString(), "\n");
  }
  return out;
}

}  // namespace seprec
