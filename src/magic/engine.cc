#include "magic/engine.h"

#include "core/query.h"
#include "core/support.h"
#include "eval/trace.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace seprec {

StatusOr<MagicRunResult> EvaluateWithMagic(const Program& program,
                                           const Atom& query, Database* db,
                                           const FixpointOptions& options,
                                           const MagicOptions& magic_options) {
  // Time the whole engine call — transform, support materialisation, the
  // rewritten fixpoint, and the answer harvest — so stats.seconds is not
  // just the last nested fixpoint's clock (which used to overwrite it).
  WallTimer timer;
  MagicRunResult result;
  result.answer = Answer(query.arity());
  SEPREC_ASSIGN_OR_RETURN(result.rewrite,
                          MagicTransform(program, query, magic_options));
  result.stats.algorithm = "magic";
  // Negated and aggregate-defined IDB predicates are read as base
  // relations by the rewrite; materialise them (and dependencies) first.
  std::set<std::string> base_like = NegatedIdbPredicates(program);
  for (const std::string& pred : AggregatePredicates(program)) {
    base_like.insert(pred);
  }
  GovernorScope governor(options.limits, options.cancel, options.context);
  governor.ctx()->TrackMemory(&db->accountant());
  FixpointOptions governed = options;
  governed.context = governor.ctx();
  governed.trace_phase_prefix = StrCat(options.trace_phase_prefix, "magic/");

  uint64_t polls_before = 0;
  uint64_t attempts_before = 0;
  uint64_t novel_before = 0;
  if (options.trace != nullptr) {
    governor.ctx()->SetTrace(options.trace);
    db->counters().active = true;
    polls_before = governor.ctx()->polls();
    attempts_before = db->counters().attempts.load(std::memory_order_relaxed);
    novel_before = db->counters().novel.load(std::memory_order_relaxed);
    TraceEvent e;
    e.kind = TraceEventKind::kEngineStart;
    e.engine = "magic";
    options.trace->Emit(e);
  }
  auto finish_trace = [&] {
    if (options.trace == nullptr) return;
    TraceEvent e;
    e.kind = TraceEventKind::kEngineFinish;
    e.engine = "magic";
    e.seconds = timer.Seconds();
    e.iterations = result.stats.iterations;
    e.tuples = result.stats.tuples_inserted;
    e.polls = governor.ctx()->polls() - polls_before;
    e.insert_attempts =
        db->counters().attempts.load(std::memory_order_relaxed) -
        attempts_before;
    e.insert_new =
        db->counters().novel.load(std::memory_order_relaxed) - novel_before;
    options.trace->Emit(e);
  };

  if (!base_like.empty()) {
    Status status = MaterializePredicates(program, base_like, db, governed,
                                          &result.stats);
    if (!status.ok()) {
      finish_trace();
      return status;
    }
  }
  Status status = EvaluateSemiNaive(result.rewrite.program, db, governed,
                                    &result.stats);
  if (!status.ok()) {
    finish_trace();
    return status;
  }
  // Legacy (ungoverned) callers see a trip as an error here, before the
  // answer harvest; governed callers get the partial answer back.
  status = governor.ExitStatus();
  if (!status.ok()) {
    finish_trace();
    return status;
  }
  const Relation* answers = db->Find(result.rewrite.answer_predicate);
  if (answers != nullptr) {
    result.answer = SelectMatching(*answers, result.rewrite.rewritten_query,
                                   db->symbols());
  }
  result.stats.seconds = timer.Seconds();
  finish_trace();
  return result;
}

}  // namespace seprec
