#include "magic/engine.h"

#include "core/query.h"
#include "core/support.h"

namespace seprec {

StatusOr<MagicRunResult> EvaluateWithMagic(const Program& program,
                                           const Atom& query, Database* db,
                                           const FixpointOptions& options,
                                           const MagicOptions& magic_options) {
  MagicRunResult result;
  result.answer = Answer(query.arity());
  SEPREC_ASSIGN_OR_RETURN(result.rewrite,
                          MagicTransform(program, query, magic_options));
  result.stats.algorithm = "magic";
  // Negated and aggregate-defined IDB predicates are read as base
  // relations by the rewrite; materialise them (and dependencies) first.
  std::set<std::string> base_like = NegatedIdbPredicates(program);
  for (const std::string& pred : AggregatePredicates(program)) {
    base_like.insert(pred);
  }
  GovernorScope governor(options.limits, options.cancel, options.context);
  governor.ctx()->TrackMemory(&db->accountant());
  FixpointOptions governed = options;
  governed.context = governor.ctx();

  if (!base_like.empty()) {
    SEPREC_RETURN_IF_ERROR(MaterializePredicates(program, base_like, db,
                                                 governed, &result.stats));
  }
  SEPREC_RETURN_IF_ERROR(EvaluateSemiNaive(result.rewrite.program, db,
                                           governed, &result.stats));
  // Legacy (ungoverned) callers see a trip as an error here, before the
  // answer harvest; governed callers get the partial answer back.
  SEPREC_RETURN_IF_ERROR(governor.ExitStatus());
  const Relation* answers = db->Find(result.rewrite.answer_predicate);
  if (answers != nullptr) {
    result.answer = SelectMatching(*answers, result.rewrite.rewritten_query,
                                   db->symbols());
  }
  return result;
}

}  // namespace seprec
