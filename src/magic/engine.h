// Driver: answer a query via the Generalized Magic Sets rewrite plus
// semi-naive bottom-up evaluation.
#ifndef SEPREC_MAGIC_ENGINE_H_
#define SEPREC_MAGIC_ENGINE_H_

#include "core/answer.h"
#include "datalog/ast.h"
#include "eval/fixpoint.h"
#include "magic/magic_transform.h"
#include "storage/database.h"
#include "util/status.h"

namespace seprec {

struct MagicRunResult {
  Answer answer{0};
  EvalStats stats;
  MagicRewrite rewrite;  // for EXPLAIN output and tests
};

// Rewrites `program` for `query`, evaluates the rewritten program against
// `db` (materialising magic_* and adorned relations there), and selects the
// answers. The query must contain at least one constant for the rewrite to
// focus anything, but all-free queries are accepted.
StatusOr<MagicRunResult> EvaluateWithMagic(
    const Program& program, const Atom& query, Database* db,
    const FixpointOptions& options = {},
    const MagicOptions& magic_options = {});

}  // namespace seprec

#endif  // SEPREC_MAGIC_ENGINE_H_
