// Supplementary Magic Sets [Beeri & Ramakrishnan 1987], the refinement of
// the Generalized Magic Sets rewrite that materialises each rule's join
// prefixes once in "supplementary" predicates:
//
//   sup_r_0(bound-head-vars)  :- magic_p(bound-head-vars).
//   sup_r_j(passed-vars)      :- sup_r_{j-1}(...), lit_j.
//   magic_q(bound args of q)  :- sup_r_{j-1}(...).        (q IDB at pos j)
//   p_adorned(head)           :- sup_r_{m-1}(...), lit_m.
//
// Compared to the plain rewrite (magic_transform.h) this avoids
// re-evaluating shared prefixes in the magic rules and the modified rule —
// the classical space/time trade-off. Provided as an ablation comparator
// (tab_ablation bench); the paper's Section 4 analysis uses the plain
// variant it displays.
#ifndef SEPREC_MAGIC_SUPPLEMENTARY_H_
#define SEPREC_MAGIC_SUPPLEMENTARY_H_

#include "core/answer.h"
#include "datalog/ast.h"
#include "eval/fixpoint.h"
#include "magic/engine.h"
#include "magic/magic_transform.h"
#include "storage/database.h"
#include "util/status.h"

namespace seprec {

// Rewrites `program` for `query` with supplementary predicates. The
// returned MagicRewrite's magic_predicates also lists the sup_* names.
StatusOr<MagicRewrite> SupplementaryMagicTransform(const Program& program,
                                                   const Atom& query);

// Driver: rewrite + semi-naive evaluation + answer selection.
StatusOr<MagicRunResult> EvaluateWithSupplementaryMagic(
    const Program& program, const Atom& query, Database* db,
    const FixpointOptions& options = {});

}  // namespace seprec

#endif  // SEPREC_MAGIC_SUPPLEMENTARY_H_
