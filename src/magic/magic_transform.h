// Generalized Magic Sets rewriting [BMSU86, BR87], the paper's first
// comparator.
//
// Given a program and a query with constants, produces an equivalent
// program specialised to the query: each reachable (predicate, adornment)
// pair gets an adorned copy of its rules guarded by a `magic_` predicate,
// and magic rules propagate bindings via full left-to-right sideways
// information passing. The rewritten program is evaluated bottom-up with
// the ordinary semi-naive engine; the sizes of the magic and adorned
// relations are the quantities Section 4 of the paper bounds.
#ifndef SEPREC_MAGIC_MAGIC_TRANSFORM_H_
#define SEPREC_MAGIC_MAGIC_TRANSFORM_H_

#include <set>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

namespace seprec {

struct MagicRewrite {
  Program program;

  // The adorned predicate holding the query's answers, and the query to run
  // against it (same constants as the original query).
  std::string answer_predicate;
  Atom rewritten_query;

  // Names of the magic predicates (for stats grouping).
  std::set<std::string> magic_predicates;
  // Names of the adorned IDB copies.
  std::set<std::string> adorned_predicates;
};

// How sideways information passing traverses rule bodies.
enum class SipStrategy {
  // The textbook order the paper displays: literals left to right.
  kLeftToRight,
  // Greedy: repeatedly take the literal with the most bound arguments
  // (ready builtins first). Often yields tighter adornments for queries
  // binding a non-leading column, e.g. tc(X, c)? stays in the fb
  // adornment instead of widening to bb.
  kMostBoundFirst,
};

struct MagicOptions {
  SipStrategy sip = SipStrategy::kLeftToRight;
};

// Rewrites `program` for `query`. The query predicate must be an IDB
// predicate of the program. Works for any safe program (not just linear
// ones).
StatusOr<MagicRewrite> MagicTransform(const Program& program,
                                      const Atom& query,
                                      const MagicOptions& options = {});

// Renders an adornment such as "bf" for a query atom (constant positions
// are bound).
std::string AdornmentOf(const Atom& query);

}  // namespace seprec

#endif  // SEPREC_MAGIC_MAGIC_TRANSFORM_H_
