#include "magic/magic_transform.h"

#include <deque>
#include <map>

#include "datalog/analysis.h"
#include "util/string_util.h"

namespace seprec {
namespace {

// Adornment for an atom given the currently bound variables.
std::string AdornAtom(const Atom& atom, const std::set<std::string>& bound) {
  std::string adornment;
  adornment.reserve(atom.args.size());
  for (const Term& arg : atom.args) {
    bool b = arg.IsConstant() || (arg.IsVar() && bound.count(arg.name) > 0);
    adornment.push_back(b ? 'b' : 'f');
  }
  return adornment;
}

// Bound arguments of `atom` under `adornment`, in position order.
std::vector<Term> BoundArgs(const Atom& atom, const std::string& adornment) {
  std::vector<Term> out;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (adornment[i] == 'b') out.push_back(atom.args[i]);
  }
  return out;
}

// True if the builtin's inputs are all bound; updates `bound` with any
// variable the builtin binds (an '=' with one free side, or an 'is' whose
// expression inputs are bound).
bool BuiltinReady(const Literal& lit, std::set<std::string>* bound) {
  auto term_bound = [bound](const Term& t) {
    return !t.IsVar() || bound->count(t.name) > 0;
  };
  if (lit.kind == Literal::Kind::kCompare) {
    bool lb = term_bound(lit.cmp_lhs);
    bool rb = term_bound(lit.cmp_rhs);
    if (lb && rb) return true;
    if (lit.cmp_op == CmpOp::kEq && (lb || rb)) {
      const Term& free_side = lb ? lit.cmp_rhs : lit.cmp_lhs;
      bound->insert(free_side.name);
      return true;
    }
    return false;
  }
  if (lit.kind == Literal::Kind::kAssign) {
    std::set<std::string> inputs;
    CollectVars(lit.expr, &inputs);
    for (const std::string& v : inputs) {
      if (!bound->count(v)) return false;
    }
    bound->insert(lit.assign_var);
    return true;
  }
  return false;
}

// Greedy most-bound-first body order: ready builtins and fully-bound
// negated atoms immediately, then the positive atom with the most bound
// argument positions (ties broken by source order). Falls back to source
// order for anything left unready.
std::vector<Literal> OrderMostBoundFirst(
    const Rule& rule, const std::set<std::string>& initially_bound) {
  std::vector<Literal> ordered;
  std::vector<bool> used(rule.body.size(), false);
  std::set<std::string> bound = initially_bound;
  size_t remaining = rule.body.size();

  auto term_bound = [&bound](const Term& t) {
    return !t.IsVar() || bound.count(t.name) > 0;
  };
  auto filter_ready = [&](const Literal& lit) {
    if (lit.kind == Literal::Kind::kAtom) {
      if (!lit.negated) return false;
      for (const Term& arg : lit.atom.args) {
        if (!term_bound(arg)) return false;
      }
      return true;
    }
    std::set<std::string> probe = bound;
    return BuiltinReady(lit, &probe);
  };

  while (remaining > 0) {
    bool progressed = false;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (used[i] || !filter_ready(rule.body[i])) continue;
      if (rule.body[i].kind != Literal::Kind::kAtom) {
        BuiltinReady(rule.body[i], &bound);  // record its bindings
      }
      ordered.push_back(rule.body[i]);
      used[i] = true;
      --remaining;
      progressed = true;
    }
    ptrdiff_t best = -1;
    size_t best_bound = 0;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (used[i] || !rule.body[i].IsPositiveAtom()) continue;
      size_t score = 0;
      for (const Term& arg : rule.body[i].atom.args) {
        if (term_bound(arg)) ++score;
      }
      if (best < 0 || score > best_bound) {
        best = static_cast<ptrdiff_t>(i);
        best_bound = score;
      }
    }
    if (best >= 0) {
      CollectVars(rule.body[best].atom, &bound);
      ordered.push_back(rule.body[best]);
      used[best] = true;
      --remaining;
      progressed = true;
    }
    if (!progressed) {
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (!used[i]) {
          ordered.push_back(rule.body[i]);
          used[i] = true;
          --remaining;
        }
      }
    }
  }
  return ordered;
}

}  // namespace

std::string AdornmentOf(const Atom& query) {
  std::string adornment;
  adornment.reserve(query.args.size());
  for (const Term& arg : query.args) {
    adornment.push_back(arg.IsConstant() ? 'b' : 'f');
  }
  return adornment;
}

StatusOr<MagicRewrite> MagicTransform(const Program& program,
                                      const Atom& query,
                                      const MagicOptions& options) {
  SEPREC_ASSIGN_OR_RETURN(ProgramInfo info, ProgramInfo::Analyze(program));
  const PredicateInfo* qpred = info.Find(query.predicate);
  if (qpred == nullptr || !qpred->is_idb) {
    return InvalidArgumentError(StrCat("query predicate '", query.predicate,
                                       "' is not an IDB predicate"));
  }
  if (qpred->arity != query.arity()) {
    return InvalidArgumentError(StrCat("query arity ", query.arity(),
                                       " does not match predicate arity ",
                                       qpred->arity));
  }

  Program rectified = Rectify(program);

  // Aggregate-defined predicates cannot be adorned (guarding their rules
  // with a magic predicate would change group contents); they are read as
  // base relations, materialised by the driver.
  std::set<std::string> aggregate_preds;
  for (const Rule& rule : rectified.rules) {
    if (rule.aggregate.has_value()) aggregate_preds.insert(rule.head.predicate);
  }
  if (aggregate_preds.count(std::string(query.predicate))) {
    return FailedPreconditionError(
        StrCat("query predicate '", query.predicate,
               "' is defined by an aggregate rule; use semi-naive "
               "evaluation"));
  }

  auto adorned_name = [](const std::string& pred,
                         const std::string& adornment) {
    return StrCat(pred, "_", adornment);
  };
  auto magic_name = [&adorned_name](const std::string& pred,
                                    const std::string& adornment) {
    return StrCat("magic_", adorned_name(pred, adornment));
  };

  MagicRewrite out;
  std::string query_adornment = AdornmentOf(query);
  out.answer_predicate = adorned_name(query.predicate, query_adornment);
  out.rewritten_query = query;
  out.rewritten_query.predicate = out.answer_predicate;

  // Seed: magic fact with the query constants.
  {
    Rule seed;
    seed.head.predicate = magic_name(query.predicate, query_adornment);
    seed.head.args = BoundArgs(query, query_adornment);
    out.program.rules.push_back(std::move(seed));
    out.magic_predicates.insert(
        magic_name(query.predicate, query_adornment));
  }

  std::deque<std::pair<std::string, std::string>> queue;
  std::set<std::pair<std::string, std::string>> done;
  queue.emplace_back(query.predicate, query_adornment);
  done.insert({query.predicate, query_adornment});

  while (!queue.empty()) {
    auto [pred, adornment] = queue.front();
    queue.pop_front();
    out.adorned_predicates.insert(adorned_name(pred, adornment));

    for (const Rule& rule : rectified.rules) {
      if (rule.head.predicate != pred) continue;
      if (rule.aggregate.has_value()) {
        return FailedPreconditionError(
            StrCat("reachable predicate '", pred,
                   "' mixes aggregate and ordinary rules; Magic cannot "
                   "rewrite it"));
      }

      std::set<std::string> bound;
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        if (adornment[i] == 'b' && rule.head.args[i].IsVar()) {
          bound.insert(rule.head.args[i].name);
        }
      }

      // The SIP prefix starts with the magic guard.
      Literal guard = Literal::MakeAtom(
          Atom{magic_name(pred, adornment), BoundArgs(rule.head, adornment),
               SourceSpan{}});
      std::vector<Literal> prefix = {guard};
      std::vector<Literal> new_body = {guard};

      std::vector<Literal> body =
          options.sip == SipStrategy::kMostBoundFirst
              ? OrderMostBoundFirst(rule, bound)
              : rule.body;
      for (const Literal& lit : body) {
        if (lit.kind != Literal::Kind::kAtom) {
          // Include a builtin in the SIP prefix only once its inputs are
          // bound, so generated magic-rule bodies stay safe.
          if (BuiltinReady(lit, &bound)) {
            prefix.push_back(lit);
          }
          new_body.push_back(lit);
          continue;
        }
        if (lit.negated) {
          // Negated atoms bind nothing and are never adorned: the driver
          // materialises negated IDB predicates fully beforehand, so the
          // rewrite reads them as base relations. Kept out of the SIP
          // prefix (their variables need not be bound there).
          new_body.push_back(lit);
          continue;
        }
        const Atom& atom = lit.atom;
        if (!info.IsIdb(atom.predicate) ||
            aggregate_preds.count(atom.predicate)) {
          prefix.push_back(lit);
          new_body.push_back(lit);
          CollectVars(atom, &bound);
          continue;
        }
        // IDB body atom: adorn, emit a magic rule, rename the occurrence.
        std::string beta = AdornAtom(atom, bound);
        Rule magic_rule;
        magic_rule.head.predicate = magic_name(atom.predicate, beta);
        magic_rule.head.args = BoundArgs(atom, beta);
        magic_rule.body = prefix;
        out.program.rules.push_back(std::move(magic_rule));
        out.magic_predicates.insert(magic_name(atom.predicate, beta));
        if (done.insert({atom.predicate, beta}).second) {
          queue.emplace_back(atom.predicate, beta);
        }
        Atom renamed = atom;
        renamed.predicate = adorned_name(atom.predicate, beta);
        Literal adorned_lit = Literal::MakeAtom(renamed);
        prefix.push_back(adorned_lit);
        new_body.push_back(adorned_lit);
        CollectVars(atom, &bound);
      }

      Rule modified;
      modified.head = rule.head;
      modified.head.predicate = adorned_name(pred, adornment);
      modified.body = std::move(new_body);
      out.program.rules.push_back(std::move(modified));
    }
  }
  return out;
}

}  // namespace seprec
