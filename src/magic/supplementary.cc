#include "magic/supplementary.h"

#include <deque>
#include <map>
#include <set>

#include "core/query.h"
#include "core/support.h"
#include "datalog/analysis.h"
#include "util/string_util.h"

namespace seprec {
namespace {

// Reorders `body` into a safe left-to-right order: relational atoms in
// source order, each builtin as soon as its inputs are bound. Safety of
// the rule guarantees such an order exists.
std::vector<Literal> SafeOrder(const Rule& rule,
                               const std::set<std::string>& initially_bound) {
  std::vector<Literal> ordered;
  std::vector<bool> used(rule.body.size(), false);
  std::set<std::string> bound = initially_bound;

  auto builtin_ready = [&bound](const Literal& lit) {
    auto term_bound = [&bound](const Term& t) {
      return !t.IsVar() || bound.count(t.name) > 0;
    };
    if (lit.kind == Literal::Kind::kAtom && lit.negated) {
      for (const Term& arg : lit.atom.args) {
        if (!term_bound(arg)) return false;
      }
      return true;
    }
    if (lit.kind == Literal::Kind::kCompare) {
      bool lb = term_bound(lit.cmp_lhs);
      bool rb = term_bound(lit.cmp_rhs);
      if (lb && rb) return true;
      return lit.cmp_op == CmpOp::kEq && (lb || rb);
    }
    if (lit.kind == Literal::Kind::kAssign) {
      std::set<std::string> inputs;
      CollectVars(lit.expr, &inputs);
      for (const std::string& v : inputs) {
        if (!bound.count(v)) return false;
      }
      return true;
    }
    return false;
  };

  size_t remaining = rule.body.size();
  while (remaining > 0) {
    bool progressed = false;
    // Ready builtins and negated atoms first (cheap filters/bindings).
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (used[i] || rule.body[i].IsPositiveAtom()) continue;
      if (builtin_ready(rule.body[i])) {
        ordered.push_back(rule.body[i]);
        if (!(rule.body[i].kind == Literal::Kind::kAtom &&
              rule.body[i].negated)) {
          CollectVars(rule.body[i], &bound);
        }
        used[i] = true;
        --remaining;
        progressed = true;
      }
    }
    // Then the next positive relational atom in source order.
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (used[i] || !rule.body[i].IsPositiveAtom()) continue;
      ordered.push_back(rule.body[i]);
      CollectVars(rule.body[i].atom, &bound);
      used[i] = true;
      --remaining;
      progressed = true;
      break;
    }
    if (!progressed) {
      // Unready builtins only (rule unsafe under this binding); emit them
      // anyway — downstream plan compilation will report the error.
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (!used[i]) {
          ordered.push_back(rule.body[i]);
          used[i] = true;
          --remaining;
        }
      }
    }
  }
  return ordered;
}

// The variables `sup_j` must carry: available after the first j literals
// AND still needed by later literals or the head.
std::vector<std::string> PassedVars(const std::set<std::string>& available,
                                    const std::vector<Literal>& ordered,
                                    size_t j, const Atom& head) {
  std::set<std::string> needed;
  CollectVars(head, &needed);
  for (size_t i = j; i < ordered.size(); ++i) {
    CollectVars(ordered[i], &needed);
  }
  std::vector<std::string> out;
  for (const std::string& v : available) {
    if (needed.count(v)) out.push_back(v);
  }
  return out;
}

Atom VarsAtom(const std::string& predicate,
              const std::vector<std::string>& vars) {
  Atom atom;
  atom.predicate = predicate;
  for (const std::string& v : vars) atom.args.push_back(Term::Var(v));
  return atom;
}

}  // namespace

StatusOr<MagicRewrite> SupplementaryMagicTransform(const Program& program,
                                                   const Atom& query) {
  SEPREC_ASSIGN_OR_RETURN(ProgramInfo info, ProgramInfo::Analyze(program));
  const PredicateInfo* qpred = info.Find(query.predicate);
  if (qpred == nullptr || !qpred->is_idb) {
    return InvalidArgumentError(StrCat("query predicate '", query.predicate,
                                       "' is not an IDB predicate"));
  }
  if (qpred->arity != query.arity()) {
    return InvalidArgumentError(StrCat("query arity ", query.arity(),
                                       " does not match predicate arity ",
                                       qpred->arity));
  }

  Program rectified = Rectify(program);

  std::set<std::string> aggregate_preds;
  for (const Rule& rule : rectified.rules) {
    if (rule.aggregate.has_value()) aggregate_preds.insert(rule.head.predicate);
  }
  if (aggregate_preds.count(std::string(query.predicate))) {
    return FailedPreconditionError(
        StrCat("query predicate '", query.predicate,
               "' is defined by an aggregate rule; use semi-naive "
               "evaluation"));
  }

  auto adorned_name = [](const std::string& pred,
                         const std::string& adornment) {
    return StrCat(pred, "_", adornment);
  };
  auto magic_name = [&adorned_name](const std::string& pred,
                                    const std::string& adornment) {
    return StrCat("magic_", adorned_name(pred, adornment));
  };

  MagicRewrite out;
  std::string query_adornment = AdornmentOf(query);
  out.answer_predicate = adorned_name(query.predicate, query_adornment);
  out.rewritten_query = query;
  out.rewritten_query.predicate = out.answer_predicate;

  {
    Rule seed;
    seed.head.predicate = magic_name(query.predicate, query_adornment);
    for (size_t i = 0; i < query.args.size(); ++i) {
      if (query_adornment[i] == 'b') seed.head.args.push_back(query.args[i]);
    }
    out.program.rules.push_back(std::move(seed));
    out.magic_predicates.insert(magic_name(query.predicate, query_adornment));
  }

  std::deque<std::pair<std::string, std::string>> queue;
  std::set<std::pair<std::string, std::string>> done;
  queue.emplace_back(query.predicate, query_adornment);
  done.insert({query.predicate, query_adornment});

  size_t rule_counter = 0;
  while (!queue.empty()) {
    auto [pred, adornment] = queue.front();
    queue.pop_front();
    out.adorned_predicates.insert(adorned_name(pred, adornment));

    for (const Rule& rule : rectified.rules) {
      if (rule.head.predicate != pred) continue;
      if (rule.aggregate.has_value()) {
        return FailedPreconditionError(
            StrCat("reachable predicate '", pred,
                   "' mixes aggregate and ordinary rules; Magic cannot "
                   "rewrite it"));
      }
      const size_t rule_id = rule_counter++;

      std::set<std::string> bound;
      std::vector<Term> bound_head_args;
      std::vector<std::string> bound_head_vars;
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        if (adornment[i] == 'b') {
          bound_head_args.push_back(rule.head.args[i]);
          bound.insert(rule.head.args[i].name);
          bound_head_vars.push_back(rule.head.args[i].name);
        }
      }

      std::vector<Literal> ordered = SafeOrder(rule, bound);

      // sup_r_0(bound head vars) :- magic_p(bound head vars).
      auto sup_name = [rule_id, &pred](size_t j) {
        return StrCat("sup_", pred, "_", rule_id, "_", j);
      };
      {
        Rule sup0;
        sup0.head = VarsAtom(sup_name(0), bound_head_vars);
        Atom guard;
        guard.predicate = magic_name(pred, adornment);
        guard.args = bound_head_args;
        sup0.body.push_back(Literal::MakeAtom(std::move(guard)));
        out.program.rules.push_back(std::move(sup0));
        out.magic_predicates.insert(sup_name(0));
      }

      std::set<std::string> available = bound;
      std::vector<std::string> prev_vars = bound_head_vars;
      for (size_t j = 0; j < ordered.size(); ++j) {
        Literal lit = ordered[j];
        // Adorn positive IDB atoms and emit their magic rule from sup_{j}.
        // (Negated and aggregate-defined IDB atoms read pre-materialised
        // base relations.)
        if (lit.IsPositiveAtom() && info.IsIdb(lit.atom.predicate) &&
            !aggregate_preds.count(lit.atom.predicate)) {
          std::string beta;
          std::vector<Term> magic_args;
          for (const Term& arg : lit.atom.args) {
            bool b = arg.IsConstant() ||
                     (arg.IsVar() && available.count(arg.name) > 0);
            beta.push_back(b ? 'b' : 'f');
            if (b) magic_args.push_back(arg);
          }
          Rule magic_rule;
          magic_rule.head.predicate =
              magic_name(lit.atom.predicate, beta);
          magic_rule.head.args = std::move(magic_args);
          magic_rule.body.push_back(
              Literal::MakeAtom(VarsAtom(sup_name(j), prev_vars)));
          out.program.rules.push_back(std::move(magic_rule));
          out.magic_predicates.insert(magic_name(lit.atom.predicate, beta));
          if (done.insert({lit.atom.predicate, beta}).second) {
            queue.emplace_back(lit.atom.predicate, beta);
          }
          lit.atom.predicate = adorned_name(lit.atom.predicate, beta);
        }

        CollectVars(ordered[j], &available);

        if (j + 1 < ordered.size()) {
          // sup_{j+1}(passed) :- sup_j(prev), lit.
          std::vector<std::string> passed =
              PassedVars(available, ordered, j + 1, rule.head);
          Rule step;
          step.head = VarsAtom(sup_name(j + 1), passed);
          step.body.push_back(
              Literal::MakeAtom(VarsAtom(sup_name(j), prev_vars)));
          step.body.push_back(std::move(lit));
          out.program.rules.push_back(std::move(step));
          out.magic_predicates.insert(sup_name(j + 1));
          prev_vars = std::move(passed);
        } else {
          // Final: adorned head :- sup_{m-1}(prev), last lit.
          Rule final_rule;
          final_rule.head = rule.head;
          final_rule.head.predicate = adorned_name(pred, adornment);
          final_rule.body.push_back(
              Literal::MakeAtom(VarsAtom(sup_name(j), prev_vars)));
          final_rule.body.push_back(std::move(lit));
          out.program.rules.push_back(std::move(final_rule));
        }
      }
      if (ordered.empty()) {
        // Fact: adorned head :- sup_0.
        Rule final_rule;
        final_rule.head = rule.head;
        final_rule.head.predicate = adorned_name(pred, adornment);
        final_rule.body.push_back(
            Literal::MakeAtom(VarsAtom(sup_name(0), prev_vars)));
        out.program.rules.push_back(std::move(final_rule));
      }
    }
  }
  return out;
}

StatusOr<MagicRunResult> EvaluateWithSupplementaryMagic(
    const Program& program, const Atom& query, Database* db,
    const FixpointOptions& options) {
  MagicRunResult result;
  result.answer = Answer(query.arity());
  SEPREC_ASSIGN_OR_RETURN(result.rewrite,
                          SupplementaryMagicTransform(program, query));
  result.stats.algorithm = "magic+sup";
  std::set<std::string> base_like = NegatedIdbPredicates(program);
  for (const std::string& pred : AggregatePredicates(program)) {
    base_like.insert(pred);
  }
  if (!base_like.empty()) {
    SEPREC_RETURN_IF_ERROR(MaterializePredicates(program, base_like, db,
                                                 options, &result.stats));
  }
  SEPREC_RETURN_IF_ERROR(EvaluateSemiNaive(result.rewrite.program, db,
                                           options, &result.stats));
  const Relation* answers = db->Find(result.rewrite.answer_predicate);
  if (answers != nullptr) {
    result.answer = SelectMatching(*answers, result.rewrite.rewritten_query,
                                   db->symbols());
  }
  return result;
}

}  // namespace seprec
