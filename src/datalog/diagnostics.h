// Structured diagnostics: the compiler-as-linter surface.
//
// Every analysis that used to collapse its findings into one prose Status
// message now also emits Diagnostic records into a DiagnosticSink: a stable
// code, a severity, a source span pointing at the offending rule/literal,
// a one-line message, optional secondary notes (each with its own span),
// and an optional fix-it hint. Sinks render to three formats:
//
//   text   path:line:col: severity: message [CODE]   (clang style)
//   json   {"diagnostics": [...]} — stable keys, round-trippable
//   sarif  SARIF 2.1.0 minimal profile for code-scanning UIs
//
// Diagnostic codes (see DESIGN.md for the full contract):
//   P001       parse/lex error
//   W001-W004  general lints: unused predicate, singleton variable,
//              unreachable rule, tautological rule
//   E001-E003  unsafe rule, unstratified negation/aggregation, arity
//              mismatch
//   S100-S107  separability explainer: one code per way a recursion can
//              miss Definition 2.4 (S101..S104 are its four conditions)
#ifndef SEPREC_DATALOG_DIAGNOSTICS_H_
#define SEPREC_DATALOG_DIAGNOSTICS_H_

#include <string>
#include <string_view>
#include <vector>

#include "datalog/source_span.h"

namespace seprec {

enum class Severity {
  kNote,     // informational (e.g. strategy-selection context)
  kWarning,  // suspicious but evaluable program
  kError,    // the program cannot be evaluated as written
};

std::string_view SeverityToString(Severity severity);

// A secondary location attached to a primary diagnostic, e.g. "the other
// rule of the overlapping pair" for S103.
struct DiagnosticNote {
  SourceSpan span;
  std::string message;
};

struct Diagnostic {
  std::string code;  // stable identifier, e.g. "S104"
  Severity severity = Severity::kWarning;
  SourceSpan span;
  std::string message;
  std::vector<DiagnosticNote> notes;
  std::string fixit;  // actionable hint; empty if none

  // One clang-style line per diagnostic + indented note/fixit lines.
  // `path` may be empty (omitted from the prefix).
  std::string ToText(std::string_view path = "") const;
};

// An append-only collector. Analyses take a `DiagnosticSink*` (nullable —
// passing nullptr keeps the legacy Status-only behaviour at zero cost).
class DiagnosticSink {
 public:
  void Add(Diagnostic diagnostic);

  // Convenience for the common one-liner.
  void Report(std::string code, Severity severity, SourceSpan span,
              std::string message, std::string fixit = "");

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  size_t size() const { return diagnostics_.size(); }

  size_t CountAtLeast(Severity severity) const;
  bool HasErrors() const { return CountAtLeast(Severity::kError) > 0; }

  // Appends everything in `other` (used to merge a per-pass sink into the
  // program-wide one).
  void Absorb(const DiagnosticSink& other);

  // Stable sort by (line, col, code); unknown-location diagnostics sink to
  // the end. Call once before rendering.
  void SortBySpan();

 private:
  std::vector<Diagnostic> diagnostics_;
};

// ---- Renderers ---------------------------------------------------------

// Text report: one block per diagnostic plus a trailing summary line
// ("3 warnings, 1 error."). Empty sinks render "no findings.".
std::string RenderText(const std::vector<Diagnostic>& diagnostics,
                       std::string_view path);

// {"path": ..., "diagnostics": [{"code", "severity", "line", "col",
// "endLine", "endCol", "message", "notes": [...], "fixit"?}]}
std::string RenderJson(const std::vector<Diagnostic>& diagnostics,
                       std::string_view path);

// SARIF 2.1.0: version/schema, one run, tool.driver "seprec-lint", one
// result per diagnostic with ruleId / level / message / region.
std::string RenderSarif(const std::vector<Diagnostic>& diagnostics,
                        std::string_view path);

// JSON string escaping (shared by the JSON and SARIF writers; exposed for
// tests).
std::string JsonEscape(std::string_view raw);

}  // namespace seprec

#endif  // SEPREC_DATALOG_DIAGNOSTICS_H_
