#include "datalog/lint.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "datalog/analysis.h"
#include "util/string_util.h"

namespace seprec {
namespace {

// Per-variable occurrence statistics within one rule: how often it occurs
// and the span of its first occurrence (the enclosing literal / head).
struct VarOccurrence {
  int count = 0;
  SourceSpan span;
};

void NoteVar(const Term& term, const SourceSpan& where,
             std::map<std::string, VarOccurrence>* out) {
  if (!term.IsVar()) return;
  VarOccurrence& occ = (*out)[term.name];
  if (occ.count == 0) occ.span = where;
  ++occ.count;
}

void NoteVars(const Expr& expr, const SourceSpan& where,
              std::map<std::string, VarOccurrence>* out) {
  if (expr.op == Expr::Op::kTerm) {
    NoteVar(expr.term, where, out);
    return;
  }
  NoteVars(*expr.lhs, where, out);
  NoteVars(*expr.rhs, where, out);
}

std::map<std::string, VarOccurrence> CountVarOccurrences(const Rule& rule) {
  std::map<std::string, VarOccurrence> out;
  for (const Term& arg : rule.head.args) {
    NoteVar(arg, rule.head.span, &out);
  }
  for (const Literal& lit : rule.body) {
    switch (lit.kind) {
      case Literal::Kind::kAtom:
        for (const Term& arg : lit.atom.args) NoteVar(arg, lit.span, &out);
        break;
      case Literal::Kind::kCompare:
        NoteVar(lit.cmp_lhs, lit.span, &out);
        NoteVar(lit.cmp_rhs, lit.span, &out);
        break;
      case Literal::Kind::kAssign:
        NoteVar(Term::Var(lit.assign_var), lit.span, &out);
        NoteVars(lit.expr, lit.span, &out);
        break;
    }
  }
  return out;
}

// Decides whether a comparison literal can never hold. Conservative: only
// claims falsity for ground comparisons it can fully evaluate and for
// irreflexive comparisons of a variable with itself.
bool ComparisonNeverHolds(const Literal& lit) {
  if (lit.kind != Literal::Kind::kCompare) return false;
  const Term& a = lit.cmp_lhs;
  const Term& b = lit.cmp_rhs;
  if (a.IsVar() && b.IsVar() && a.name == b.name) {
    return lit.cmp_op == CmpOp::kNe || lit.cmp_op == CmpOp::kLt ||
           lit.cmp_op == CmpOp::kGt;
  }
  if (a.IsVar() || b.IsVar()) return false;
  if (a.kind == Term::Kind::kInt && b.kind == Term::Kind::kInt) {
    switch (lit.cmp_op) {
      case CmpOp::kEq: return a.int_value != b.int_value;
      case CmpOp::kNe: return a.int_value == b.int_value;
      case CmpOp::kLt: return a.int_value >= b.int_value;
      case CmpOp::kLe: return a.int_value > b.int_value;
      case CmpOp::kGt: return a.int_value <= b.int_value;
      case CmpOp::kGe: return a.int_value < b.int_value;
    }
    return false;
  }
  if (a.kind == Term::Kind::kSymbol && b.kind == Term::Kind::kSymbol) {
    // Only equality structure is certain for symbols.
    if (lit.cmp_op == CmpOp::kEq) return a.name != b.name;
    if (lit.cmp_op == CmpOp::kNe) return a.name == b.name;
    return false;
  }
  // Mixed int/symbol: never equal.
  return lit.cmp_op == CmpOp::kEq;
}

// First-seen SCC machinery shared by LintStratification.
struct DependencyGraph {
  std::map<std::string, std::set<std::string>> deps;
  std::map<std::string, int> scc_of;
  std::vector<std::vector<std::string>> sccs;

  explicit DependencyGraph(const Program& program) {
    for (const Rule& rule : program.rules) {
      deps[rule.head.predicate];
      for (const Atom* atom : rule.BodyAtoms()) {
        deps[rule.head.predicate].insert(atom->predicate);
      }
    }
    sccs = PredicateSccs(program);
    for (size_t i = 0; i < sccs.size(); ++i) {
      for (const std::string& name : sccs[i]) {
        scc_of[name] = static_cast<int>(i);
      }
    }
  }

  bool SccIsRecursive(int id) const {
    if (sccs[id].size() > 1) return true;
    const std::string& only = sccs[id].front();
    auto it = deps.find(only);
    return it != deps.end() && it->second.count(only) > 0;
  }

  // Shortest dependency path from `from` to `to` inside one SCC (both ends
  // included). Empty when unreachable — cannot happen for two members of
  // the same nontrivial SCC.
  std::vector<std::string> PathWithinScc(const std::string& from,
                                         const std::string& to) const {
    std::map<std::string, std::string> parent;
    std::vector<std::string> frontier{from};
    parent[from] = from;
    int scc = scc_of.at(from);
    while (!frontier.empty()) {
      std::vector<std::string> next;
      for (const std::string& node : frontier) {
        if (node == to && node != from) break;
        auto it = deps.find(node);
        if (it == deps.end()) continue;
        for (const std::string& succ : it->second) {
          auto scc_it = scc_of.find(succ);
          if (scc_it == scc_of.end() || scc_it->second != scc) continue;
          if (parent.emplace(succ, node).second) next.push_back(succ);
        }
      }
      frontier = std::move(next);
      if (parent.count(to)) break;
    }
    std::vector<std::string> path;
    if (!parent.count(to)) return path;
    for (std::string node = to;; node = parent[node]) {
      path.push_back(node);
      if (node == from) break;
    }
    std::reverse(path.begin(), path.end());
    return path;
  }
};

}  // namespace

void LintUnusedPredicates(const Program& program,
                          const std::vector<Atom>& queries,
                          DiagnosticSink* sink) {
  // Without queries there is no notion of a root, so nothing is "unused".
  if (queries.empty()) return;
  std::set<std::string> used;
  for (const Rule& rule : program.rules) {
    for (const Atom* atom : rule.BodyAtoms()) used.insert(atom->predicate);
  }
  for (const Atom& query : queries) used.insert(query.predicate);
  std::set<std::string> reported;
  for (const Rule& rule : program.rules) {
    const std::string& name = rule.head.predicate;
    if (used.count(name) || !reported.insert(name).second) continue;
    sink->Report(
        "W001", Severity::kWarning, rule.head.span,
        StrCat("predicate '", name, "' is defined but never used by a rule "
               "body or query"),
        StrCat("delete the rules for '", name, "' or add a query for it"));
  }
}

void LintSingletonVariables(const Program& program, DiagnosticSink* sink) {
  for (const Rule& rule : program.rules) {
    for (const auto& [name, occ] : CountVarOccurrences(rule)) {
      if (occ.count != 1) continue;
      if (!name.empty() && name[0] == '_') continue;  // deliberate wildcard
      sink->Report(
          "W002", Severity::kWarning, occ.span,
          StrCat("variable '", name, "' occurs only once in: ",
                 rule.ToString()),
          StrCat("rename it to '_", name, "' if the single occurrence is "
                 "intentional"));
    }
  }
}

void LintUnreachableRules(const Program& program, DiagnosticSink* sink) {
  for (const Rule& rule : program.rules) {
    for (const Literal& lit : rule.body) {
      if (!ComparisonNeverHolds(lit)) continue;
      Diagnostic d;
      d.code = "W003";
      d.severity = Severity::kWarning;
      d.span = lit.span.IsKnown() ? lit.span : rule.span;
      d.message = StrCat("rule can never fire: comparison '", lit.ToString(),
                         "' never holds in: ", rule.ToString());
      d.notes.push_back({rule.span, "the whole rule is unreachable"});
      sink->Add(std::move(d));
      break;  // one report per rule
    }
  }
}

void LintTautologicalRules(const Program& program, DiagnosticSink* sink) {
  for (const Rule& rule : program.rules) {
    for (const Literal& lit : rule.body) {
      if (!lit.IsPositiveAtom() || lit.atom != rule.head) continue;
      sink->Report(
          "W004", Severity::kWarning, rule.span,
          StrCat("tautological rule: the head reappears as a positive body "
                 "atom, so the rule derives nothing new: ", rule.ToString()),
          "delete the rule");
      break;
    }
  }
}

void LintSafety(const Program& program, DiagnosticSink* sink) {
  for (const Rule& rule : program.rules) {
    std::set<std::string> unrestricted = UnrestrictedVars(rule);
    if (unrestricted.empty()) continue;
    std::vector<std::string> names(unrestricted.begin(), unrestricted.end());
    sink->Report(
        "E001", Severity::kError, rule.span,
        StrCat("unsafe rule: variable",
               names.size() == 1 ? " " : "s ", "'", StrJoin(names, "', '"),
               "' ", names.size() == 1 ? "is" : "are",
               " not range restricted in: ", rule.ToString()),
        "bind every variable in a positive body atom, an assignment with "
        "bound inputs, or an equality with a bound side");
  }
}

void LintStratification(const Program& program, DiagnosticSink* sink) {
  DependencyGraph graph(program);
  for (const Rule& rule : program.rules) {
    const std::string& head = rule.head.predicate;
    auto head_scc = graph.scc_of.find(head);
    if (head_scc == graph.scc_of.end()) continue;
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kAtom) continue;
      bool via_aggregate = !lit.negated && rule.aggregate.has_value();
      if (!lit.negated && !via_aggregate) continue;
      const std::string& target = lit.atom.predicate;
      auto target_scc = graph.scc_of.find(target);
      if (target_scc == graph.scc_of.end() ||
          target_scc->second != head_scc->second) {
        continue;
      }
      if (!graph.SccIsRecursive(head_scc->second) && head != target) {
        continue;
      }
      // Spell the cycle out: head -> (not) target -> ... -> head.
      std::vector<std::string> path = graph.PathWithinScc(target, head);
      std::string cycle = StrCat(head, lit.negated ? " -> not " : " -> ",
                                 StrJoin(path, " -> "));
      Diagnostic d;
      d.code = "E002";
      d.severity = Severity::kError;
      d.span = lit.span.IsKnown() ? lit.span : rule.span;
      d.message = StrCat(
          "program is not stratified: '", head, "' ",
          lit.negated ? "negates" : "aggregates over", " '", target,
          "' inside its own recursive component (cycle: ", cycle, ")");
      d.notes.push_back({rule.span, StrCat("in rule: ", rule.ToString())});
      sink->Add(std::move(d));
    }
  }
}

void LintArityConsistency(const Program& program, DiagnosticSink* sink) {
  struct FirstUse {
    size_t arity = 0;
    SourceSpan span;
  };
  std::map<std::string, FirstUse> first;
  auto check = [&first, sink](const Atom& atom, const SourceSpan& where) {
    auto [it, inserted] =
        first.emplace(atom.predicate, FirstUse{atom.arity(), where});
    if (inserted || it->second.arity == atom.arity()) return;
    Diagnostic d;
    d.code = "E003";
    d.severity = Severity::kError;
    d.span = where;
    d.message = StrCat("predicate '", atom.predicate, "' used with arity ",
                       atom.arity(), " but first used with arity ",
                       it->second.arity);
    d.notes.push_back({it->second.span,
                       StrCat("first use of '", atom.predicate, "' here")});
    sink->Add(std::move(d));
  };
  for (const Rule& rule : program.rules) {
    check(rule.head, rule.head.span);
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kAtom) {
        check(lit.atom, lit.span.IsKnown() ? lit.span : rule.span);
      }
    }
  }
}

void LintSeparability(const Program& program,
                      const SeparabilityOptions& options,
                      DiagnosticSink* sink) {
  StatusOr<ProgramInfo> info = ProgramInfo::Analyze(program);
  if (!info.ok()) return;  // broken programs are covered by E001-E003
  for (const auto& [name, pred] : info->predicates()) {
    if (!pred.is_idb || !pred.is_recursive) continue;
    StatusOr<SeparableRecursion> sep =
        AnalyzeSeparable(program, name, options, sink);
    if (!sep.ok()) continue;  // the sink already holds the S1xx details
    std::vector<std::string> columns;
    for (uint32_t p : sep->persistent_positions) {
      columns.push_back(StrCat(p));
    }
    sink->Report(
        "S001", Severity::kNote,
        sep->recursion.recursive_rules.empty()
            ? SourceSpan{}
            : sep->recursion.recursive_rules.front().span,
        StrCat("'", name, "' is a separable recursion: ",
               sep->classes.size(), " equivalence class(es), persistent "
               "columns {", StrJoin(columns, ", "), "} — eligible for the "
               "O(n) Separable strategy"));
  }
}

void LintProgram(const ParsedUnit& unit, const LintOptions& options,
                 DiagnosticSink* sink) {
  LintArityConsistency(unit.program, sink);
  LintSafety(unit.program, sink);
  LintStratification(unit.program, sink);
  LintUnusedPredicates(unit.program, unit.queries, sink);
  LintSingletonVariables(unit.program, sink);
  LintUnreachableRules(unit.program, sink);
  LintTautologicalRules(unit.program, sink);
  if (options.include_separability) {
    LintSeparability(unit.program, options.separability, sink);
  }
  sink->SortBySpan();
}

}  // namespace seprec
