#include "datalog/diagnostics.h"

#include <algorithm>

#include "util/string_util.h"

namespace seprec {

std::string SourceSpan::ToString() const {
  if (!IsKnown()) return "<unknown>";
  return StrCat("line ", line, ", col ", col);
}

SourceSpan CoverSpans(const SourceSpan& a, const SourceSpan& b) {
  if (!a.IsKnown()) return b;
  if (!b.IsKnown()) return a;
  SourceSpan out = a;
  if (b.line < out.line || (b.line == out.line && b.col < out.col)) {
    out.line = b.line;
    out.col = b.col;
  }
  if (b.end_line > out.end_line ||
      (b.end_line == out.end_line && b.end_col > out.end_col)) {
    out.end_line = b.end_line;
    out.end_col = b.end_col;
  }
  return out;
}

std::string_view SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

namespace {

std::string LocationPrefix(std::string_view path, const SourceSpan& span) {
  std::string out;
  if (!path.empty()) out += StrCat(path, ":");
  if (span.IsKnown()) out += StrCat(span.line, ":", span.col, ":");
  if (!out.empty()) out += " ";
  return out;
}

}  // namespace

std::string Diagnostic::ToText(std::string_view path) const {
  std::string out = StrCat(LocationPrefix(path, span),
                           SeverityToString(severity), ": ", message, " [",
                           code, "]");
  for (const DiagnosticNote& note : notes) {
    out += StrCat("\n  ", LocationPrefix(path, note.span), "note: ",
                  note.message);
  }
  if (!fixit.empty()) {
    out += StrCat("\n  fix-it: ", fixit);
  }
  return out;
}

void DiagnosticSink::Add(Diagnostic diagnostic) {
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticSink::Report(std::string code, Severity severity,
                            SourceSpan span, std::string message,
                            std::string fixit) {
  Diagnostic d;
  d.code = std::move(code);
  d.severity = severity;
  d.span = span;
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  Add(std::move(d));
}

size_t DiagnosticSink::CountAtLeast(Severity severity) const {
  size_t count = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity >= severity) ++count;
  }
  return count;
}

void DiagnosticSink::Absorb(const DiagnosticSink& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

void DiagnosticSink::SortBySpan() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     // Unknown locations order after every known one.
                     if (a.span.IsKnown() != b.span.IsKnown()) {
                       return a.span.IsKnown();
                     }
                     if (a.span.line != b.span.line) {
                       return a.span.line < b.span.line;
                     }
                     if (a.span.col != b.span.col) {
                       return a.span.col < b.span.col;
                     }
                     return a.code < b.code;
                   });
}

std::string RenderText(const std::vector<Diagnostic>& diagnostics,
                       std::string_view path) {
  if (diagnostics.empty()) return "no findings.\n";
  std::string out;
  size_t notes = 0, warnings = 0, errors = 0;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToText(path);
    out += '\n';
    switch (d.severity) {
      case Severity::kNote: ++notes; break;
      case Severity::kWarning: ++warnings; break;
      case Severity::kError: ++errors; break;
    }
  }
  std::vector<std::string> parts;
  if (errors > 0) parts.push_back(StrCat(errors, " error(s)"));
  if (warnings > 0) parts.push_back(StrCat(warnings, " warning(s)"));
  if (notes > 0) parts.push_back(StrCat(notes, " note(s)"));
  out += StrCat(StrJoin(parts, ", "), ".\n");
  return out;
}

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void AppendSpanJson(const SourceSpan& span, std::string* out) {
  *out += StrCat("\"line\": ", span.line, ", \"col\": ", span.col,
                 ", \"endLine\": ", span.end_line, ", \"endCol\": ",
                 span.end_col);
}

void AppendDiagnosticJson(const Diagnostic& d, std::string* out) {
  *out += StrCat("{\"code\": \"", JsonEscape(d.code), "\", \"severity\": \"",
                 SeverityToString(d.severity), "\", ");
  AppendSpanJson(d.span, out);
  *out += StrCat(", \"message\": \"", JsonEscape(d.message), "\"");
  *out += ", \"notes\": [";
  for (size_t i = 0; i < d.notes.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += "{";
    AppendSpanJson(d.notes[i].span, out);
    *out += StrCat(", \"message\": \"", JsonEscape(d.notes[i].message),
                   "\"}");
  }
  *out += "]";
  if (!d.fixit.empty()) {
    *out += StrCat(", \"fixit\": \"", JsonEscape(d.fixit), "\"");
  }
  *out += "}";
}

}  // namespace

std::string RenderJson(const std::vector<Diagnostic>& diagnostics,
                       std::string_view path) {
  std::string out = StrCat("{\"path\": \"", JsonEscape(path),
                           "\", \"diagnostics\": [");
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    if (i > 0) out += ", ";
    AppendDiagnosticJson(diagnostics[i], &out);
  }
  out += "]}\n";
  return out;
}

std::string RenderSarif(const std::vector<Diagnostic>& diagnostics,
                        std::string_view path) {
  std::string out =
      "{\"$schema\": "
      "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json\", \"version\": \"2.1.0\", "
      "\"runs\": [{\"tool\": {\"driver\": {\"name\": \"seprec-lint\", "
      "\"rules\": [";
  // One reportingDescriptor per distinct code, in first-seen order.
  std::vector<std::string> codes;
  for (const Diagnostic& d : diagnostics) {
    if (std::find(codes.begin(), codes.end(), d.code) == codes.end()) {
      codes.push_back(d.code);
    }
  }
  for (size_t i = 0; i < codes.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrCat("{\"id\": \"", JsonEscape(codes[i]), "\"}");
  }
  out += "]}}, \"results\": [";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) out += ", ";
    // SARIF levels: note | warning | error.
    out += StrCat("{\"ruleId\": \"", JsonEscape(d.code), "\", \"level\": \"",
                  SeverityToString(d.severity), "\", \"message\": {\"text\": "
                  "\"", JsonEscape(d.message), "\"}");
    if (d.span.IsKnown()) {
      out += StrCat(
          ", \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
          "{\"uri\": \"", JsonEscape(path), "\"}, \"region\": {\"startLine\": ",
          d.span.line, ", \"startColumn\": ", d.span.col, ", \"endLine\": ",
          d.span.end_line, ", \"endColumn\": ", d.span.end_col, "}}}]");
    }
    out += "}";
  }
  out += "]}]}\n";
  return out;
}

}  // namespace seprec
