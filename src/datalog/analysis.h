// Static analysis of Datalog programs: predicate catalog, dependency
// strata, recursion/linearity classification, range-restriction (safety)
// checking, and rectification.
//
// The paper's setting (Section 2): queries on an IDB predicate `t` defined
// by linear recursive rules plus nonrecursive exit rules, where the other
// predicates do not depend on `t`. Analysis establishes exactly these facts
// for an arbitrary input program so the compiler can decide which evaluation
// algorithm applies.
#ifndef SEPREC_DATALOG_ANALYSIS_H_
#define SEPREC_DATALOG_ANALYSIS_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

namespace seprec {

struct PredicateInfo {
  std::string name;
  size_t arity = 0;
  bool is_idb = false;      // appears in some rule head
  int scc_id = -1;          // condensation component id
  bool is_recursive = false; // in a cycle of the dependency graph
};

class ProgramInfo {
 public:
  // An empty info; assign from Analyze() before use.
  ProgramInfo() = default;

  // Analyzes `program`. Fails on arity mismatches or unsafe rules.
  static StatusOr<ProgramInfo> Analyze(const Program& program);

  const Program& program() const { return program_; }

  // All predicates mentioned anywhere, keyed by name.
  const std::map<std::string, PredicateInfo>& predicates() const {
    return predicates_;
  }

  const PredicateInfo* Find(std::string_view name) const;

  bool IsIdb(std::string_view name) const;
  bool IsRecursive(std::string_view name) const;

  // True if `a` and `b` are mutually recursive (same nontrivial SCC).
  bool MutuallyRecursive(std::string_view a, std::string_view b) const;

  // True if every rule defining `name` contains at most one body atom whose
  // predicate is in `name`'s SCC (and `name` is recursive).
  bool IsLinearRecursive(std::string_view name) const;

  // Predicates that `name` transitively depends on (not including itself
  // unless it is recursive).
  std::set<std::string> DependenciesOf(std::string_view name) const;

  // SCCs in topological (bottom-up evaluation) order: dependencies first.
  const std::vector<std::vector<std::string>>& strata() const {
    return strata_;
  }

  // Rules defining predicates of stratum `i`, in program order.
  std::vector<const Rule*> RulesOfStratum(size_t i) const;

 private:
  Program program_;
  std::map<std::string, PredicateInfo> predicates_;
  std::map<std::string, std::set<std::string>> deps_;  // head -> body preds
  std::vector<std::vector<std::string>> strata_;
};

// Returns an error unless every rule of `program` is safe (range
// restricted): every variable of the rule can be bound by evaluating the
// body left-to-right in *some* order — i.e., each variable occurs in a
// positive relational atom, or is the output of an assignment whose inputs
// are bound, or is equated (possibly transitively) with a bound variable or
// constant.
Status CheckSafety(const Program& program);

// The variables of `rule` that are NOT range restricted (empty iff the
// rule is safe). The structured counterpart of CheckSafety, used by the
// E001 lint to name every offending variable.
std::set<std::string> UnrestrictedVars(const Rule& rule);

// SCCs of the predicate dependency graph in bottom-up (dependencies-first)
// order, computed without the safety/stratification validation that
// ProgramInfo::Analyze performs — so it works on broken programs too,
// which is what the lint passes need to spell out negation cycles.
std::vector<std::vector<std::string>> PredicateSccs(const Program& program);

// True if `rule` is linear recursive in `predicate`: exactly one body atom
// has that predicate, and the head does too.
bool IsLinearRecursiveRule(const Rule& rule, std::string_view predicate);

// True if `rule`'s body mentions `predicate` in no relational literal.
bool IsNonRecursiveRule(const Rule& rule, std::string_view predicate);

// Rectification (Section 2 / Ullman): rewrites every rule so its head is
// `p(X1, ..., Xk)` with distinct fresh variables and no constants, adding
// `=` body literals as needed. Preserves the defined relations.
Program Rectify(const Program& program);

// Returns a variable name based on `base` that does not occur in `used`,
// and inserts it into `used`.
std::string FreshVar(std::string_view base, std::set<std::string>* used);

// A linear recursion in the paper's normal form (Section 2): one recursive
// predicate `t` defined by linear recursive rules r_1..r_n plus
// nonrecursive exit rules, all rectified and renamed so every head is
// exactly t(V0, ..., Vk-1).
struct LinearRecursion {
  std::string predicate;
  size_t arity = 0;
  std::vector<std::string> head_vars;  // "V0".."V<k-1>"

  // Canonicalized rules. Each recursive rule has exactly one body atom of
  // `predicate`; exit rules have none. Variables other than head variables
  // are named "Q<rule>_<i>" so rules never share non-head variables.
  // Canonicalization preserves each rule's SourceSpan.
  std::vector<Rule> recursive_rules;
  std::vector<Rule> exit_rules;

  // Index (into each recursive rule's body) of the recursive atom.
  std::vector<size_t> recursive_atom_index;

  // Origin back-maps: recursive_rules[i] / exit_rules[i] was canonicalized
  // from program.rules[...origin[i]] of the analyzed program. Diagnostics
  // use these to point at the rule the user wrote.
  std::vector<size_t> recursive_rule_origin;
  std::vector<size_t> exit_rule_origin;

  const Atom& RecursiveBodyAtom(size_t rule_index) const {
    return recursive_rules[rule_index]
        .body[recursive_atom_index[rule_index]]
        .atom;
  }
};

// Reorders `rule`'s body into a left-to-right evaluable order given the
// initially bound variables: positive atoms keep their source order;
// builtins and negated atoms are placed as soon as their inputs are bound.
// If the rule is unsafe under these bindings the unready literals are
// appended at the end (downstream compilation reports the error).
std::vector<Literal> OrderBodySafely(
    const Rule& rule, const std::set<std::string>& initially_bound);

// True if the builtin/negated literal can run with `bound` variables;
// updates `bound` with anything it binds ('=' with one free side, 'is'
// with bound inputs). Positive atoms return false (they are not builtins).
bool BuiltinReadyAndBind(const Literal& literal,
                         std::set<std::string>* bound);

// Partitions `literals` into maximal connected sets (Definition 2.2 of the
// paper): two literals are connected iff they share a variable,
// transitively. Returns one component id per literal (ids are dense,
// starting at 0); *num_components receives the count. Ground literals form
// singleton components.
std::vector<size_t> ConnectedComponents(const std::vector<Literal>& literals,
                                        size_t* num_components);

// Extracts and canonicalizes the definition of `predicate` from `program`.
// Fails if any defining rule mentions `predicate` more than once in its
// body (non-linear), if `predicate` is mutually recursive with another
// predicate, or if a body predicate of its rules depends on `predicate`.
// Tautological rules (t :- t with no other literals) are dropped.
StatusOr<LinearRecursion> ExtractLinearRecursion(const Program& program,
                                                 std::string_view predicate);

}  // namespace seprec

#endif  // SEPREC_DATALOG_ANALYSIS_H_
