// Tokenizer for the Prolog-style Datalog surface syntax.
//
// Token classes:
//   lowercase identifier            -> kIdent   (predicate / symbol constant)
//   Uppercase or '_' identifier     -> kVar
//   decimal integer                 -> kInt
//   'single quoted'                 -> kIdent   (symbol with any spelling)
//   punctuation                     -> kLParen kRParen kComma kPeriod ...
//   ':-' '?-' '?'                   -> kColonDash kQueryDash kQuestion
//   '=' '!=' '<' '<=' '>' '>='      -> comparison tokens
//   '+' '-' '*' '/'                 -> arithmetic tokens ('mod' is kIdent)
//   '&' is accepted as a synonym of ',' (the paper writes bodies with '&').
// Comments run from '%' to end of line.
#ifndef SEPREC_DATALOG_LEXER_H_
#define SEPREC_DATALOG_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace seprec {

enum class TokenKind {
  kIdent,
  kVar,
  kInt,
  kLParen,
  kRParen,
  kComma,
  kPeriod,
  kColonDash,
  kQueryDash,
  kQuestion,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kEnd,
};

std::string_view TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // identifier / variable spelling
  int64_t int_value = 0;   // for kInt
  int line = 1;            // 1-based source line, for error messages
  int col = 1;             // 1-based column of the token's first character
  int end_col = 1;         // column one past the token's last character
};

// Tokenizes `source`; on success the result ends with a kEnd token.
StatusOr<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace seprec

#endif  // SEPREC_DATALOG_LEXER_H_
