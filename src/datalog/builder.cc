#include "datalog/builder.h"

#include "util/logging.h"

namespace seprec {

RuleBuilder& RuleBuilder::Body(std::string_view predicate,
                               const std::vector<std::string>& arg_tokens) {
  rule_.body.push_back(
      Literal::MakeAtom(MakeAtomFromTokens(predicate, arg_tokens)));
  return *this;
}

RuleBuilder& RuleBuilder::Not(std::string_view predicate,
                              const std::vector<std::string>& arg_tokens) {
  rule_.body.push_back(
      Literal::MakeNegatedAtom(MakeAtomFromTokens(predicate, arg_tokens)));
  return *this;
}

RuleBuilder& RuleBuilder::Compare(std::string_view lhs_token, CmpOp op,
                                  std::string_view rhs_token) {
  rule_.body.push_back(
      Literal::MakeCompare(op, MakeTerm(lhs_token), MakeTerm(rhs_token)));
  return *this;
}

RuleBuilder& RuleBuilder::Let(std::string_view var, Expr expr) {
  Term target = MakeTerm(var);
  SEPREC_CHECK(target.IsVar());
  rule_.body.push_back(Literal::MakeAssign(target.name, std::move(expr)));
  return *this;
}

RuleBuilder& RuleBuilder::Aggregate(AggregateSpec::Op op, size_t position) {
  SEPREC_CHECK(position < rule_.head.args.size());
  SEPREC_CHECK(rule_.head.args[position].IsVar());
  SEPREC_CHECK(!rule_.aggregate.has_value());
  AggregateSpec spec;
  spec.op = op;
  spec.head_position = position;
  spec.over_var = rule_.head.args[position].name;
  rule_.aggregate = spec;
  return *this;
}

ProgramBuilder& RuleBuilder::End() {
  parent_->program_.rules.push_back(std::move(rule_));
  return *parent_;
}

ProgramBuilder& ProgramBuilder::Fact(
    std::string_view predicate,
    const std::vector<std::string>& constant_tokens) {
  seprec::Rule fact;
  fact.head = MakeAtomFromTokens(predicate, constant_tokens);
  SEPREC_CHECK(fact.head.IsGround());
  program_.rules.push_back(std::move(fact));
  return *this;
}

RuleBuilder ProgramBuilder::Rule(std::string_view predicate,
                                 const std::vector<std::string>& arg_tokens) {
  seprec::Rule rule;
  rule.head = MakeAtomFromTokens(predicate, arg_tokens);
  return RuleBuilder(this, std::move(rule));
}

ProgramBuilder& ProgramBuilder::Add(seprec::Rule rule) {
  program_.rules.push_back(std::move(rule));
  return *this;
}

}  // namespace seprec
