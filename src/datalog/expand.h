// Procedure Expand (Figure 1 of the paper): enumerates the expansion of a
// linear recursion — the conjunctive queries ("strings") obtained by all
// sequences of rule applications, with nondistinguished variables
// subscripted by the iteration that introduced them.
//
// Used by tests (Example 2.1's expansion prefix) and by the
// fig_schema_instantiation bench, not by the evaluation engines.
#ifndef SEPREC_DATALOG_EXPAND_H_
#define SEPREC_DATALOG_EXPAND_H_

#include <string>
#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

namespace seprec {

struct ExpansionString {
  // The base-predicate conjunction; atoms appear in production order with
  // the exit rule's atoms last.
  std::vector<Atom> atoms;
  // Indices (into the recursive-rule list, program order) of the rule
  // applied at each iteration.
  std::vector<size_t> derivation;

  // Paper-style rendering: "f(X, W0)f(W0, W1)p(W1, Y)".
  std::string ToString() const;
};

// Expands the definition of `query.predicate` in `program`, starting from
// the instance `query` (its variables are the distinguished variables;
// constants are allowed and flow through). Returns all strings with at most
// `max_applications` recursive rule applications, in breadth-first order.
//
// Requirements: every defining rule is linear recursive or nonrecursive,
// rule heads are rectified (distinct variables, no constants), and bodies
// contain only relational atoms.
StatusOr<std::vector<ExpansionString>> Expand(const Program& program,
                                              const Atom& query,
                                              size_t max_applications);

}  // namespace seprec

#endif  // SEPREC_DATALOG_EXPAND_H_
