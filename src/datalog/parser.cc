#include "datalog/parser.h"

#include <cstdio>

#include "datalog/lexer.h"
#include "util/string_util.h"

namespace seprec {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<ParsedUnit> ParseUnit() {
    ParsedUnit unit;
    while (!At(TokenKind::kEnd)) {
      if (At(TokenKind::kQueryDash)) {
        Advance();
        SEPREC_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
        SEPREC_RETURN_IF_ERROR(Expect(TokenKind::kPeriod));
        unit.queries.push_back(std::move(atom));
        continue;
      }
      const Token& first = Peek();
      Rule rule;
      SEPREC_RETURN_IF_ERROR(ParseHead(&rule.head, &rule.aggregate));
      if (At(TokenKind::kQuestion)) {
        Advance();
        if (rule.aggregate.has_value()) {
          return Error("aggregates are not allowed in queries");
        }
        // Optional trailing period after "atom?".
        if (At(TokenKind::kPeriod)) Advance();
        unit.queries.push_back(std::move(rule.head));
        continue;
      }
      if (At(TokenKind::kColonDash)) {
        Advance();
        SEPREC_ASSIGN_OR_RETURN(rule.body, ParseBody());
      } else if (rule.aggregate.has_value()) {
        return Error("an aggregate head needs a rule body");
      }
      SEPREC_RETURN_IF_ERROR(Expect(TokenKind::kPeriod));
      rule.span = SpanFrom(first);
      unit.program.rules.push_back(std::move(rule));
    }
    return unit;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  const Token& Advance() { return tokens_[pos_++]; }

  // The extent from `start` through the most recently consumed token.
  SourceSpan SpanFrom(const Token& start) const {
    SourceSpan span;
    span.line = start.line;
    span.col = start.col;
    const Token& last = pos_ > 0 ? tokens_[pos_ - 1] : start;
    span.end_line = last.line;
    span.end_col = last.end_col;
    return span;
  }

  Status Error(std::string_view message) const {
    return InvalidArgumentError(StrCat("line ", Peek().line, ", col ",
                                       Peek().col, ": ", message));
  }

  Status Expect(TokenKind kind) {
    if (!At(kind)) {
      return Error(StrCat("expected ", TokenKindToString(kind), ", found ",
                          TokenKindToString(Peek().kind)));
    }
    Advance();
    return Status::OK();
  }

  StatusOr<std::vector<Literal>> ParseBody() {
    std::vector<Literal> body;
    while (true) {
      SEPREC_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
      body.push_back(std::move(lit));
      if (At(TokenKind::kComma)) {
        Advance();
        continue;
      }
      return body;
    }
  }

  StatusOr<Literal> ParseLiteral() {
    const Token& first = Peek();
    // 'not atom' — stratified negation ('not' is a reserved word in rule
    // bodies when followed by a predicate name).
    if (At(TokenKind::kIdent) && Peek().text == "not" &&
        pos_ + 1 < tokens_.size() &&
        tokens_[pos_ + 1].kind == TokenKind::kIdent) {
      Advance();
      SEPREC_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      Literal lit = Literal::MakeNegatedAtom(std::move(atom));
      lit.span = SpanFrom(first);
      return lit;
    }
    // 'X is expr' assignment?
    if (At(TokenKind::kVar) && pos_ + 1 < tokens_.size() &&
        tokens_[pos_ + 1].kind == TokenKind::kIdent &&
        tokens_[pos_ + 1].text == "is") {
      std::string var = Advance().text;
      Advance();  // 'is'
      SEPREC_ASSIGN_OR_RETURN(Expr expr, ParseExpr());
      Literal lit = Literal::MakeAssign(std::move(var), std::move(expr));
      lit.span = SpanFrom(first);
      return lit;
    }
    // Relational atom: identifier followed by '(' or standing alone in a
    // comparison-free position.
    if (At(TokenKind::kIdent) &&
        (pos_ + 1 >= tokens_.size() ||
         tokens_[pos_ + 1].kind == TokenKind::kLParen ||
         !IsCmpToken(tokens_[pos_ + 1].kind))) {
      SEPREC_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      Literal lit = Literal::MakeAtom(std::move(atom));
      lit.span = SpanFrom(first);
      return lit;
    }
    // Comparison: term cmpop term.
    SEPREC_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    if (!IsCmpToken(Peek().kind)) {
      return Error(StrCat("expected comparison operator after ",
                          lhs.ToString()));
    }
    CmpOp op = TokenToCmpOp(Advance().kind);
    SEPREC_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    Literal lit = Literal::MakeCompare(op, std::move(lhs), std::move(rhs));
    lit.span = SpanFrom(first);
    return lit;
  }

  static bool IsCmpToken(TokenKind kind) {
    switch (kind) {
      case TokenKind::kEq:
      case TokenKind::kNe:
      case TokenKind::kLt:
      case TokenKind::kLe:
      case TokenKind::kGt:
      case TokenKind::kGe:
        return true;
      default:
        return false;
    }
  }

  static CmpOp TokenToCmpOp(TokenKind kind) {
    switch (kind) {
      case TokenKind::kEq: return CmpOp::kEq;
      case TokenKind::kNe: return CmpOp::kNe;
      case TokenKind::kLt: return CmpOp::kLt;
      case TokenKind::kLe: return CmpOp::kLe;
      case TokenKind::kGt: return CmpOp::kGt;
      case TokenKind::kGe: return CmpOp::kGe;
      default: SEPREC_CHECK(false);
    }
    __builtin_unreachable();  // GCC drops [[noreturn]] info under -fsanitize=thread
  }

  // Parses a rule head: an atom whose arguments may include one aggregate
  // `count(V)` / `sum(V)` / `min(V)` / `max(V)`.
  Status ParseHead(Atom* head, std::optional<AggregateSpec>* aggregate) {
    const Token& first = Peek();
    if (!At(TokenKind::kIdent)) {
      return Error(StrCat("expected predicate name, found ",
                          TokenKindToString(Peek().kind)));
    }
    head->predicate = Advance().text;
    if (!At(TokenKind::kLParen)) {
      head->span = SpanFrom(first);
      return Status::OK();
    }
    Advance();
    while (true) {
      std::optional<AggregateSpec::Op> op;
      if (At(TokenKind::kIdent) && pos_ + 1 < tokens_.size() &&
          tokens_[pos_ + 1].kind == TokenKind::kLParen) {
        const std::string& word = Peek().text;
        if (word == "count") op = AggregateSpec::Op::kCount;
        if (word == "sum") op = AggregateSpec::Op::kSum;
        if (word == "min") op = AggregateSpec::Op::kMin;
        if (word == "max") op = AggregateSpec::Op::kMax;
      }
      if (op.has_value()) {
        int line = Peek().line;
        int col = Peek().col;
        Advance();  // op word
        Advance();  // '('
        if (!At(TokenKind::kVar)) {
          return InvalidArgumentError(StrCat("line ", line, ", col ", col,
                                             ": aggregate needs a variable"));
        }
        std::string var = Advance().text;
        SEPREC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        if (aggregate->has_value()) {
          return InvalidArgumentError(
              StrCat("line ", line, ", col ", col,
                     ": at most one aggregate per head"));
        }
        AggregateSpec spec;
        spec.op = *op;
        spec.head_position = head->args.size();
        spec.over_var = var;
        *aggregate = spec;
        head->args.push_back(Term::Var(var));
      } else {
        SEPREC_ASSIGN_OR_RETURN(Term term, ParseTerm());
        head->args.push_back(std::move(term));
      }
      if (At(TokenKind::kComma)) {
        Advance();
        continue;
      }
      SEPREC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      head->span = SpanFrom(first);
      return Status::OK();
    }
  }

  StatusOr<Atom> ParseAtom() {
    const Token& first = Peek();
    if (!At(TokenKind::kIdent)) {
      return Error(StrCat("expected predicate name, found ",
                          TokenKindToString(Peek().kind)));
    }
    Atom atom;
    atom.predicate = Advance().text;
    if (!At(TokenKind::kLParen)) {
      atom.span = SpanFrom(first);
      return atom;  // propositional atom
    }
    Advance();
    while (true) {
      SEPREC_ASSIGN_OR_RETURN(Term term, ParseTerm());
      atom.args.push_back(std::move(term));
      if (At(TokenKind::kComma)) {
        Advance();
        continue;
      }
      SEPREC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      atom.span = SpanFrom(first);
      return atom;
    }
  }

  StatusOr<Term> ParseTerm() {
    if (At(TokenKind::kVar)) {
      return Term::Var(Advance().text);
    }
    if (At(TokenKind::kIdent)) {
      return Term::Sym(Advance().text);
    }
    if (At(TokenKind::kInt)) {
      return Term::Int(Advance().int_value);
    }
    if (At(TokenKind::kMinus) && pos_ + 1 < tokens_.size() &&
        tokens_[pos_ + 1].kind == TokenKind::kInt) {
      Advance();
      return Term::Int(-Advance().int_value);
    }
    return Error(StrCat("expected term, found ",
                        TokenKindToString(Peek().kind)));
  }

  StatusOr<Expr> ParseExpr() {
    SEPREC_ASSIGN_OR_RETURN(Expr lhs, ParseMulExpr());
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      Expr::Op op = At(TokenKind::kPlus) ? Expr::Op::kAdd : Expr::Op::kSub;
      Advance();
      SEPREC_ASSIGN_OR_RETURN(Expr rhs, ParseMulExpr());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<Expr> ParseMulExpr() {
    SEPREC_ASSIGN_OR_RETURN(Expr lhs, ParseExprUnit());
    while (true) {
      Expr::Op op;
      if (At(TokenKind::kStar)) {
        op = Expr::Op::kMul;
      } else if (At(TokenKind::kSlash)) {
        op = Expr::Op::kDiv;
      } else if (At(TokenKind::kIdent) && Peek().text == "mod") {
        op = Expr::Op::kMod;
      } else {
        return lhs;
      }
      Advance();
      SEPREC_ASSIGN_OR_RETURN(Expr rhs, ParseExprUnit());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  StatusOr<Expr> ParseExprUnit() {
    if (At(TokenKind::kLParen)) {
      Advance();
      SEPREC_ASSIGN_OR_RETURN(Expr inner, ParseExpr());
      SEPREC_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return inner;
    }
    SEPREC_ASSIGN_OR_RETURN(Term term, ParseTerm());
    return Expr::Leaf(std::move(term));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// "line N, col M: message" -> a P001 diagnostic at N:M. Falls back to an
// unknown location if the status message carries none.
Diagnostic StatusToParseDiagnostic(const Status& status) {
  Diagnostic d;
  d.code = "P001";
  d.severity = Severity::kError;
  d.message = status.message();
  int line = 0, col = 0;
  if (std::sscanf(status.message().c_str(), "line %d, col %d", &line, &col) ==
      2) {
    d.span.line = line;
    d.span.col = col;
    d.span.end_line = line;
    d.span.end_col = col + 1;
    // Strip the redundant location prefix from the message.
    size_t colon = status.message().find(": ");
    if (colon != std::string::npos) {
      d.message = status.message().substr(colon + 2);
    }
  }
  return d;
}

}  // namespace

StatusOr<ParsedUnit> ParseUnit(std::string_view source) {
  SEPREC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseUnit();
}

StatusOr<ParsedUnit> ParseUnit(std::string_view source, DiagnosticSink* sink) {
  StatusOr<ParsedUnit> unit = ParseUnit(source);
  if (!unit.ok() && sink != nullptr) {
    sink->Add(StatusToParseDiagnostic(unit.status()));
  }
  return unit;
}

StatusOr<Program> ParseProgram(std::string_view source) {
  SEPREC_ASSIGN_OR_RETURN(ParsedUnit unit, ParseUnit(source));
  if (!unit.queries.empty()) {
    return InvalidArgumentError(
        StrCat("unexpected query in program text: ",
               unit.queries.front().ToString()));
  }
  return std::move(unit.program);
}

StatusOr<Atom> ParseAtom(std::string_view source) {
  SEPREC_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                          Tokenize(StrCat(source, " .")));
  // Reuse the unit parser on "atom ." and extract the fact head.
  Parser parser(std::move(tokens));
  SEPREC_ASSIGN_OR_RETURN(ParsedUnit unit, parser.ParseUnit());
  if (unit.program.rules.size() != 1 || !unit.program.rules[0].body.empty() ||
      !unit.queries.empty()) {
    return InvalidArgumentError(StrCat("not a single atom: ", source));
  }
  return std::move(unit.program.rules[0].head);
}

Program ParseProgramOrDie(std::string_view source) {
  StatusOr<Program> result = ParseProgram(source);
  if (!result.ok()) {
    std::fprintf(stderr, "ParseProgramOrDie: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

Atom ParseAtomOrDie(std::string_view source) {
  StatusOr<Atom> result = ParseAtom(source);
  if (!result.ok()) {
    std::fprintf(stderr, "ParseAtomOrDie: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace seprec
