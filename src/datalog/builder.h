// Fluent programmatic construction of Datalog programs — the alternative
// to assembling source text for generated workloads and embedding the
// library without the parser.
//
//   Program p = ProgramBuilder()
//                   .Fact("edge", {"a", "b"})
//                   .Rule("tc", {"X", "Y"})
//                       .Body("edge", {"X", "Y"})
//                       .End()
//                   .Rule("tc", {"X", "Y"})
//                       .Body("edge", {"X", "W"})
//                       .Body("tc", {"W", "Y"})
//                       .End()
//                   .Build();
//
// Argument tokens follow MakeTerm's convention: leading uppercase or '_'
// is a variable, digits an integer, anything else a symbol.
#ifndef SEPREC_DATALOG_BUILDER_H_
#define SEPREC_DATALOG_BUILDER_H_

#include <string>
#include <string_view>
#include <vector>

#include "datalog/ast.h"

namespace seprec {

class ProgramBuilder;

class RuleBuilder {
 public:
  // Appends a positive body atom.
  RuleBuilder& Body(std::string_view predicate,
                    const std::vector<std::string>& arg_tokens);
  // Appends a negated body atom (stratified negation).
  RuleBuilder& Not(std::string_view predicate,
                   const std::vector<std::string>& arg_tokens);
  // Appends a comparison, e.g. Compare("X", CmpOp::kLt, "10").
  RuleBuilder& Compare(std::string_view lhs_token, CmpOp op,
                       std::string_view rhs_token);
  // Appends `var is expr`.
  RuleBuilder& Let(std::string_view var, Expr expr);
  // Marks head position `position` as aggregate `op` over the variable
  // already placed there.
  RuleBuilder& Aggregate(AggregateSpec::Op op, size_t position);

  // Finishes the rule and returns to the program builder.
  ProgramBuilder& End();

 private:
  friend class ProgramBuilder;
  RuleBuilder(ProgramBuilder* parent, Rule rule)
      : parent_(parent), rule_(std::move(rule)) {}

  ProgramBuilder* parent_;
  Rule rule_;
};

class ProgramBuilder {
 public:
  ProgramBuilder() = default;

  // Adds a ground fact (all tokens must be constants).
  ProgramBuilder& Fact(std::string_view predicate,
                       const std::vector<std::string>& constant_tokens);

  // Starts a rule with the given head.
  RuleBuilder Rule(std::string_view predicate,
                   const std::vector<std::string>& arg_tokens);

  // Adds an already-built rule (escape hatch).
  ProgramBuilder& Add(seprec::Rule rule);

  Program Build() const { return program_; }

 private:
  friend class RuleBuilder;
  Program program_;
};

}  // namespace seprec

#endif  // SEPREC_DATALOG_BUILDER_H_
