#include "datalog/ast.h"

#include <cctype>

#include "util/logging.h"
#include "util/string_util.h"

namespace seprec {

// ---- Term ---------------------------------------------------------------

Term Term::Var(std::string name) {
  Term t;
  t.kind = Kind::kVariable;
  t.name = std::move(name);
  return t;
}

Term Term::Sym(std::string spelling) {
  Term t;
  t.kind = Kind::kSymbol;
  t.name = std::move(spelling);
  return t;
}

Term Term::Int(int64_t value) {
  Term t;
  t.kind = Kind::kInt;
  t.int_value = value;
  return t;
}

std::string Term::ToString() const {
  switch (kind) {
    case Kind::kVariable:
    case Kind::kSymbol:
      return name;
    case Kind::kInt:
      return StrCat(int_value);
  }
  return "<bad term>";
}

bool operator==(const Term& a, const Term& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == Term::Kind::kInt) return a.int_value == b.int_value;
  return a.name == b.name;
}

bool operator<(const Term& a, const Term& b) {
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.kind == Term::Kind::kInt) return a.int_value < b.int_value;
  return a.name < b.name;
}

// ---- Atom ---------------------------------------------------------------

bool Atom::IsGround() const {
  for (const Term& t : args) {
    if (t.IsVar()) return false;
  }
  return true;
}

std::string Atom::ToString() const {
  if (args.empty()) return predicate;
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

bool operator==(const Atom& a, const Atom& b) {
  return a.predicate == b.predicate && a.args == b.args;
}

// ---- Expr ---------------------------------------------------------------

Expr Expr::Leaf(Term t) {
  Expr e;
  e.op = Op::kTerm;
  e.term = std::move(t);
  return e;
}

Expr Expr::Binary(Op op, Expr lhs, Expr rhs) {
  SEPREC_CHECK(op != Op::kTerm);
  Expr e;
  e.op = op;
  e.lhs = std::make_shared<const Expr>(std::move(lhs));
  e.rhs = std::make_shared<const Expr>(std::move(rhs));
  return e;
}

std::string Expr::ToString() const {
  if (op == Op::kTerm) return term.ToString();
  const char* sym = "?";
  switch (op) {
    case Op::kAdd: sym = " + "; break;
    case Op::kSub: sym = " - "; break;
    case Op::kMul: sym = " * "; break;
    case Op::kDiv: sym = " / "; break;
    case Op::kMod: sym = " mod "; break;
    case Op::kTerm: break;
  }
  return StrCat("(", lhs->ToString(), sym, rhs->ToString(), ")");
}

// ---- Literal ------------------------------------------------------------

std::string_view CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

Literal Literal::MakeAtom(Atom atom) {
  Literal lit;
  lit.kind = Kind::kAtom;
  lit.atom = std::move(atom);
  return lit;
}

Literal Literal::MakeNegatedAtom(Atom atom) {
  Literal lit;
  lit.kind = Kind::kAtom;
  lit.negated = true;
  lit.atom = std::move(atom);
  return lit;
}

Literal Literal::MakeCompare(CmpOp op, Term lhs, Term rhs) {
  Literal lit;
  lit.kind = Kind::kCompare;
  lit.cmp_op = op;
  lit.cmp_lhs = std::move(lhs);
  lit.cmp_rhs = std::move(rhs);
  return lit;
}

Literal Literal::MakeAssign(std::string var, Expr expr) {
  Literal lit;
  lit.kind = Kind::kAssign;
  lit.assign_var = std::move(var);
  lit.expr = std::move(expr);
  return lit;
}

std::string Literal::ToString() const {
  switch (kind) {
    case Kind::kAtom:
      return negated ? "not " + atom.ToString() : atom.ToString();
    case Kind::kCompare:
      return StrCat(cmp_lhs.ToString(), " ", CmpOpToString(cmp_op), " ",
                    cmp_rhs.ToString());
    case Kind::kAssign:
      return StrCat(assign_var, " is ", expr.ToString());
  }
  return "<bad literal>";
}

// ---- Rule / Program -----------------------------------------------------

std::string_view AggregateOpToString(AggregateSpec::Op op) {
  switch (op) {
    case AggregateSpec::Op::kCount: return "count";
    case AggregateSpec::Op::kSum: return "sum";
    case AggregateSpec::Op::kMin: return "min";
    case AggregateSpec::Op::kMax: return "max";
  }
  return "?";
}

std::string AggregateSpec::ToString() const {
  return StrCat(AggregateOpToString(op), "(", over_var, ")");
}

std::string Rule::ToString() const {
  std::string head_text;
  if (aggregate.has_value()) {
    head_text = head.predicate + "(";
    for (size_t i = 0; i < head.args.size(); ++i) {
      if (i > 0) head_text += ", ";
      head_text += i == aggregate->head_position ? aggregate->ToString()
                                                 : head.args[i].ToString();
    }
    head_text += ")";
  } else {
    head_text = head.ToString();
  }
  if (body.empty()) return head_text + ".";
  std::string out = head_text + " :- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += body[i].ToString();
  }
  out += ".";
  return out;
}

std::vector<const Atom*> Rule::BodyAtomsOf(std::string_view predicate) const {
  std::vector<const Atom*> out;
  for (const Literal& lit : body) {
    if (lit.kind == Literal::Kind::kAtom && lit.atom.predicate == predicate) {
      out.push_back(&lit.atom);
    }
  }
  return out;
}

std::vector<const Atom*> Rule::BodyAtoms() const {
  std::vector<const Atom*> out;
  for (const Literal& lit : body) {
    if (lit.kind == Literal::Kind::kAtom) {
      out.push_back(&lit.atom);
    }
  }
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& rule : rules) {
    out += rule.ToString();
    out += '\n';
  }
  return out;
}

std::vector<const Rule*> Program::RulesFor(std::string_view predicate) const {
  std::vector<const Rule*> out;
  for (const Rule& rule : rules) {
    if (rule.head.predicate == predicate) {
      out.push_back(&rule);
    }
  }
  return out;
}

// ---- Variable utilities -------------------------------------------------

void CollectVars(const Term& term, std::set<std::string>* out) {
  if (term.IsVar()) out->insert(term.name);
}

void CollectVars(const Atom& atom, std::set<std::string>* out) {
  for (const Term& t : atom.args) CollectVars(t, out);
}

void CollectVars(const Expr& expr, std::set<std::string>* out) {
  if (expr.op == Expr::Op::kTerm) {
    CollectVars(expr.term, out);
    return;
  }
  CollectVars(*expr.lhs, out);
  CollectVars(*expr.rhs, out);
}

void CollectVars(const Literal& literal, std::set<std::string>* out) {
  switch (literal.kind) {
    case Literal::Kind::kAtom:
      CollectVars(literal.atom, out);
      return;
    case Literal::Kind::kCompare:
      CollectVars(literal.cmp_lhs, out);
      CollectVars(literal.cmp_rhs, out);
      return;
    case Literal::Kind::kAssign:
      out->insert(literal.assign_var);
      CollectVars(literal.expr, out);
      return;
  }
}

void CollectVars(const Rule& rule, std::set<std::string>* out) {
  CollectVars(rule.head, out);
  for (const Literal& lit : rule.body) CollectVars(lit, out);
}

Term Substitute(const Term& term, const Substitution& sub) {
  if (!term.IsVar()) return term;
  auto it = sub.find(term.name);
  return it == sub.end() ? term : it->second;
}

Atom Substitute(const Atom& atom, const Substitution& sub) {
  Atom out = atom;
  for (Term& t : out.args) t = Substitute(t, sub);
  return out;
}

Expr Substitute(const Expr& expr, const Substitution& sub) {
  if (expr.op == Expr::Op::kTerm) {
    return Expr::Leaf(Substitute(expr.term, sub));
  }
  return Expr::Binary(expr.op, Substitute(*expr.lhs, sub),
                      Substitute(*expr.rhs, sub));
}

Literal Substitute(const Literal& literal, const Substitution& sub) {
  // Renaming does not move a literal: keep its source span.
  Literal out;
  switch (literal.kind) {
    case Literal::Kind::kAtom: {
      out = Literal::MakeAtom(Substitute(literal.atom, sub));
      out.negated = literal.negated;
      break;
    }
    case Literal::Kind::kCompare:
      out = Literal::MakeCompare(literal.cmp_op,
                                 Substitute(literal.cmp_lhs, sub),
                                 Substitute(literal.cmp_rhs, sub));
      break;
    case Literal::Kind::kAssign: {
      Term var = Substitute(Term::Var(literal.assign_var), sub);
      // Substituting an assignment target must produce another variable.
      SEPREC_CHECK(var.IsVar());
      out = Literal::MakeAssign(var.name, Substitute(literal.expr, sub));
      break;
    }
  }
  out.span = literal.span;
  return out;
}

Rule Substitute(const Rule& rule, const Substitution& sub) {
  Rule out;
  out.span = rule.span;
  out.head = Substitute(rule.head, sub);
  out.body.reserve(rule.body.size());
  for (const Literal& lit : rule.body) {
    out.body.push_back(Substitute(lit, sub));
  }
  out.aggregate = rule.aggregate;
  if (out.aggregate.has_value()) {
    Term renamed = Substitute(Term::Var(out.aggregate->over_var), sub);
    // The aggregated variable must stay a variable under renaming.
    SEPREC_CHECK(renamed.IsVar());
    out.aggregate->over_var = renamed.name;
  }
  return out;
}

// ---- Construction shorthands --------------------------------------------

Term MakeTerm(std::string_view token) {
  SEPREC_CHECK(!token.empty());
  char first = token[0];
  if (std::isupper(static_cast<unsigned char>(first)) || first == '_') {
    return Term::Var(std::string(token));
  }
  if (std::isdigit(static_cast<unsigned char>(first)) ||
      (first == '-' && token.size() > 1)) {
    return Term::Int(std::stoll(std::string(token)));
  }
  return Term::Sym(std::string(token));
}

Atom MakeAtomFromTokens(std::string_view predicate,
                        const std::vector<std::string>& arg_tokens) {
  Atom atom;
  atom.predicate = std::string(predicate);
  atom.args.reserve(arg_tokens.size());
  for (const std::string& token : arg_tokens) {
    atom.args.push_back(MakeTerm(token));
  }
  return atom;
}

}  // namespace seprec
