// Source locations for diagnostics.
//
// A SourceSpan is a half-open [start, end) range of characters in the
// program text, tracked as 1-based line/column pairs. Line 0 means "no
// location" (e.g. a synthesized AST node built programmatically rather
// than parsed). Spans survive Rectify / canonicalization so every
// diagnostic can point back at the rule the user actually wrote.
#ifndef SEPREC_DATALOG_SOURCE_SPAN_H_
#define SEPREC_DATALOG_SOURCE_SPAN_H_

#include <string>

namespace seprec {

struct SourceSpan {
  int line = 0;      // 1-based start line; 0 = unknown location
  int col = 0;       // 1-based start column
  int end_line = 0;  // 1-based line of the last character
  int end_col = 0;   // 1-based column one past the last character

  bool IsKnown() const { return line > 0; }

  // "line 3, col 7" (or "<unknown>" for a synthesized node).
  std::string ToString() const;

  friend bool operator==(const SourceSpan& a, const SourceSpan& b) {
    return a.line == b.line && a.col == b.col && a.end_line == b.end_line &&
           a.end_col == b.end_col;
  }
  friend bool operator!=(const SourceSpan& a, const SourceSpan& b) {
    return !(a == b);
  }
};

// Smallest span covering both inputs (unknown spans are ignored).
SourceSpan CoverSpans(const SourceSpan& a, const SourceSpan& b);

}  // namespace seprec

#endif  // SEPREC_DATALOG_SOURCE_SPAN_H_
