// Recursive-descent parser for Datalog programs and queries.
//
// Grammar (Prolog-flavoured; '&' and ',' both separate body literals):
//
//   unit     := clause*
//   clause   := atom '.'                          (fact)
//             | atom ':-' body '.'                (rule)
//             | '?-' atom '.'                     (query)
//             | atom '?'                          (query, paper style)
//   body     := literal ((',' | '&') literal)*
//   literal  := atom
//             | term cmpop term                   (cmpop: = != < <= > >=)
//             | VAR 'is' expr
//   atom     := IDENT ['(' term (',' term)* ')']
//   term     := VAR | IDENT | INT | '-' INT
//   expr     := mulexpr (('+'|'-') mulexpr)*
//   mulexpr  := unit2 (('*'|'/'|'mod') unit2)*
//   unit2    := term | '(' expr ')'
#ifndef SEPREC_DATALOG_PARSER_H_
#define SEPREC_DATALOG_PARSER_H_

#include <string_view>
#include <vector>

#include "datalog/ast.h"
#include "datalog/diagnostics.h"
#include "util/status.h"

namespace seprec {

struct ParsedUnit {
  Program program;           // facts and rules, in source order
  std::vector<Atom> queries; // query atoms, in source order
};

// Parses a whole source text. Every AST node carries its SourceSpan.
StatusOr<ParsedUnit> ParseUnit(std::string_view source);

// Same, but a parse/lex failure additionally lands in `sink` as a P001
// error diagnostic with the failure's span (for the lint pipeline, which
// must report even unparseable programs structurally).
StatusOr<ParsedUnit> ParseUnit(std::string_view source, DiagnosticSink* sink);

// Parses a source text that must contain only facts/rules (no queries).
StatusOr<Program> ParseProgram(std::string_view source);

// Parses a single atom such as "buys(tom, Y)".
StatusOr<Atom> ParseAtom(std::string_view source);

// Test/example conveniences: abort on parse failure.
Program ParseProgramOrDie(std::string_view source);
Atom ParseAtomOrDie(std::string_view source);

}  // namespace seprec

#endif  // SEPREC_DATALOG_PARSER_H_
