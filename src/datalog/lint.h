// General Datalog lints: the database-independent pass family behind
// `seprec_cli lint`.
//
// Every pass is polynomial in the rule set (most are linear in the number
// of literals; stratification is linear in the dependency graph) and never
// touches a Database — the same Section 3.1 property the separability
// detector has, verified alongside it in bench/tab_detection.
//
// Codes produced here:
//   W001  unused predicate: defined but never read by a body or query
//   W002  singleton variable: occurs exactly once in its rule (likely a
//         typo; prefix with '_' to silence)
//   W003  unreachable rule: a body comparison can never hold
//   W004  tautological rule: the head reappears as a positive body atom
//   E001  unsafe rule: names every variable that is not range restricted
//   E002  unstratified negation/aggregation, with the offending dependency
//         cycle spelled out
//   E003  predicate used with inconsistent arities
// The separability explainer (S001 note / S100..S107, see
// separable/detection.h) also runs under LintProgram.
#ifndef SEPREC_DATALOG_LINT_H_
#define SEPREC_DATALOG_LINT_H_

#include <vector>

#include "datalog/ast.h"
#include "datalog/diagnostics.h"
#include "datalog/parser.h"
#include "separable/detection.h"

namespace seprec {

struct LintOptions {
  // Forwarded to AnalyzeSeparable for the S-code passes.
  SeparabilityOptions separability;
  // Run the separability explainer over every recursive IDB predicate.
  bool include_separability = true;
};

// Runs every pass over the parsed unit and appends findings to `sink`
// (sorted by source position). Works on programs that fail
// ProgramInfo::Analyze — each pass validates only what it needs.
void LintProgram(const ParsedUnit& unit, const LintOptions& options,
                 DiagnosticSink* sink);

// Individual passes (exposed for targeted tests).
void LintUnusedPredicates(const Program& program,
                          const std::vector<Atom>& queries,
                          DiagnosticSink* sink);
void LintSingletonVariables(const Program& program, DiagnosticSink* sink);
void LintUnreachableRules(const Program& program, DiagnosticSink* sink);
void LintTautologicalRules(const Program& program, DiagnosticSink* sink);
void LintSafety(const Program& program, DiagnosticSink* sink);
void LintStratification(const Program& program, DiagnosticSink* sink);
void LintArityConsistency(const Program& program, DiagnosticSink* sink);

// The separability explainer: for every linear-recursive IDB predicate,
// either an S001 note describing the detected classes or the S1xx
// diagnostics explaining exactly which Definition 2.4 condition failed.
void LintSeparability(const Program& program,
                      const SeparabilityOptions& options,
                      DiagnosticSink* sink);

}  // namespace seprec

#endif  // SEPREC_DATALOG_LINT_H_
