// Abstract syntax for function-free Datalog with comparison and arithmetic
// built-ins.
//
// The paper's programs are pure Horn clauses over EDB/IDB predicates; the
// comparison (`=`, `!=`, `<`, ...) and assignment (`X is E`) literals exist
// so that (a) rectification can introduce equalities (Section 2: repeated
// head variables / head constants become body equalities) and (b) the
// Generalized Counting rewrite can express its derivation-index arithmetic
// as ordinary rules.
//
// AST terms carry spellings (std::string); constants are resolved to interned
// Values only when a rule is compiled against a Database.
#ifndef SEPREC_DATALOG_AST_H_
#define SEPREC_DATALOG_AST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "datalog/source_span.h"

namespace seprec {

// A variable, symbol constant, or integer constant.
struct Term {
  enum class Kind { kVariable, kSymbol, kInt };

  Kind kind = Kind::kVariable;
  std::string name;      // variable name or symbol spelling
  int64_t int_value = 0; // meaningful only when kind == kInt

  static Term Var(std::string name);
  static Term Sym(std::string spelling);
  static Term Int(int64_t value);

  bool IsVar() const { return kind == Kind::kVariable; }
  bool IsConstant() const { return kind != Kind::kVariable; }

  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b);
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b);
};

// A predicate applied to terms: p(t1, ..., tk).
struct Atom {
  std::string predicate;
  std::vector<Term> args;
  SourceSpan span;  // where this atom was parsed; ignored by operator==

  size_t arity() const { return args.size(); }
  bool IsGround() const;

  std::string ToString() const;

  friend bool operator==(const Atom& a, const Atom& b);
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
};

// Arithmetic expression for assignment literals. Interior nodes share
// immutable children so Expr (and thus Rule) stays cheaply copyable.
struct Expr {
  enum class Op { kTerm, kAdd, kSub, kMul, kDiv, kMod };

  Op op = Op::kTerm;
  Term term;  // when op == kTerm
  std::shared_ptr<const Expr> lhs;
  std::shared_ptr<const Expr> rhs;

  static Expr Leaf(Term t);
  static Expr Binary(Op op, Expr lhs, Expr rhs);

  std::string ToString() const;
};

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CmpOpToString(CmpOp op);

// A body literal: relational atom (possibly negated), comparison, or
// arithmetic assignment.
struct Literal {
  enum class Kind { kAtom, kCompare, kAssign };

  Kind kind = Kind::kAtom;

  Atom atom;             // kAtom
  bool negated = false;  // kAtom: `not p(...)` — stratified negation

  CmpOp cmp_op = CmpOp::kEq;  // kCompare: cmp_lhs <op> cmp_rhs
  Term cmp_lhs;
  Term cmp_rhs;

  std::string assign_var;  // kAssign: assign_var is expr
  Expr expr;

  SourceSpan span;  // where this literal was parsed; ignored by comparisons

  static Literal MakeAtom(Atom atom);
  static Literal MakeNegatedAtom(Atom atom);
  static Literal MakeCompare(CmpOp op, Term lhs, Term rhs);
  static Literal MakeAssign(std::string var, Expr expr);

  bool IsRelational() const { return kind == Kind::kAtom; }
  bool IsPositiveAtom() const { return kind == Kind::kAtom && !negated; }

  std::string ToString() const;
};

// A head aggregate: `p(X, count(Y)) :- body.` computes, for every binding
// of the other head arguments (the group), the aggregate of the
// (set-semantics, deduplicated) bindings of Y. Sum/min/max require
// integer values. Aggregation is stratified like negation: the rule's
// body predicates must lie in strata below the head.
struct AggregateSpec {
  enum class Op { kCount, kSum, kMin, kMax };

  Op op = Op::kCount;
  size_t head_position = 0;  // which head argument holds the aggregate
  std::string over_var;      // the aggregated variable

  std::string ToString() const;  // e.g. "count(Y)"
};

std::string_view AggregateOpToString(AggregateSpec::Op op);

// head :- body. An empty body makes the rule a fact (head must be ground).
// When `aggregate` is set, head.args[aggregate->head_position] is the
// variable Var(aggregate->over_var) — the printable form shows the
// aggregate instead.
struct Rule {
  Atom head;
  std::vector<Literal> body;
  std::optional<AggregateSpec> aggregate;
  SourceSpan span;  // head-to-period extent in the source, if parsed

  std::string ToString() const;

  // Body atoms with the given predicate name (relational literals only).
  std::vector<const Atom*> BodyAtomsOf(std::string_view predicate) const;
  // All relational body atoms.
  std::vector<const Atom*> BodyAtoms() const;
};

struct Program {
  std::vector<Rule> rules;

  std::string ToString() const;

  // Rules whose head predicate is `predicate`, in program order.
  std::vector<const Rule*> RulesFor(std::string_view predicate) const;
};

// ---- Variable utilities ------------------------------------------------

// Inserts the variable names appearing in the construct into `out`.
void CollectVars(const Term& term, std::set<std::string>* out);
void CollectVars(const Atom& atom, std::set<std::string>* out);
void CollectVars(const Expr& expr, std::set<std::string>* out);
void CollectVars(const Literal& literal, std::set<std::string>* out);
void CollectVars(const Rule& rule, std::set<std::string>* out);

// Applies a variable -> term substitution (variables not in the map are
// unchanged).
using Substitution = std::map<std::string, Term>;
Term Substitute(const Term& term, const Substitution& sub);
Atom Substitute(const Atom& atom, const Substitution& sub);
Expr Substitute(const Expr& expr, const Substitution& sub);
Literal Substitute(const Literal& literal, const Substitution& sub);
Rule Substitute(const Rule& rule, const Substitution& sub);

// ---- Construction shorthands (used heavily by tests and examples) ------

// MakeTerm("X") -> variable (leading uppercase or '_'), MakeTerm("tom") ->
// symbol, MakeTerm("42") -> int.
Term MakeTerm(std::string_view token);

// MakeAtom2("edge", {"X", "y", "3"}) builds edge(X, y, 3).
Atom MakeAtomFromTokens(std::string_view predicate,
                        const std::vector<std::string>& arg_tokens);

}  // namespace seprec

#endif  // SEPREC_DATALOG_AST_H_
