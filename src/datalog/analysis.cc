#include "datalog/analysis.h"

#include <algorithm>
#include <functional>

#include "util/logging.h"
#include "util/string_util.h"

namespace seprec {
namespace {

// Tarjan SCC over the predicate dependency graph. Components are emitted in
// reverse topological order (callees before callers), which is exactly the
// bottom-up evaluation order we want for strata.
class SccFinder {
 public:
  explicit SccFinder(const std::map<std::string, std::set<std::string>>& deps)
      : deps_(deps) {}

  std::vector<std::vector<std::string>> Run(
      const std::vector<std::string>& nodes) {
    for (const std::string& node : nodes) {
      if (!state_.count(node)) {
        Visit(node);
      }
    }
    return components_;
  }

 private:
  struct NodeState {
    int index = -1;
    int lowlink = -1;
    bool on_stack = false;
  };

  void Visit(const std::string& node) {
    NodeState& st = state_[node];
    st.index = st.lowlink = next_index_++;
    st.on_stack = true;
    stack_.push_back(node);

    auto it = deps_.find(node);
    if (it != deps_.end()) {
      for (const std::string& next : it->second) {
        auto found = state_.find(next);
        if (found == state_.end()) {
          Visit(next);
          st.lowlink = std::min(st.lowlink, state_[next].lowlink);
        } else if (found->second.on_stack) {
          st.lowlink = std::min(st.lowlink, found->second.index);
        }
      }
    }

    if (st.lowlink == st.index) {
      std::vector<std::string> component;
      while (true) {
        std::string top = stack_.back();
        stack_.pop_back();
        state_[top].on_stack = false;
        component.push_back(top);
        if (top == node) break;
      }
      std::sort(component.begin(), component.end());
      components_.push_back(std::move(component));
    }
  }

  const std::map<std::string, std::set<std::string>>& deps_;
  std::map<std::string, NodeState> state_;
  std::vector<std::string> stack_;
  std::vector<std::vector<std::string>> components_;
  int next_index_ = 0;
};

}  // namespace

std::set<std::string> UnrestrictedVars(const Rule& rule) {
  std::set<std::string> bound;
  // Positive relational atoms bind all their variables; negated atoms
  // bind nothing (their variables must be bound elsewhere).
  for (const Literal& lit : rule.body) {
    if (lit.IsPositiveAtom()) {
      CollectVars(lit.atom, &bound);
    }
  }
  // Propagate through '=' and 'is' to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kCompare && lit.cmp_op == CmpOp::kEq) {
        const Term& a = lit.cmp_lhs;
        const Term& b = lit.cmp_rhs;
        bool a_bound = !a.IsVar() || bound.count(a.name) > 0;
        bool b_bound = !b.IsVar() || bound.count(b.name) > 0;
        if (a_bound && b.IsVar() && !b_bound) {
          bound.insert(b.name);
          changed = true;
        }
        if (b_bound && a.IsVar() && !a_bound) {
          bound.insert(a.name);
          changed = true;
        }
      } else if (lit.kind == Literal::Kind::kAssign) {
        std::set<std::string> inputs;
        CollectVars(lit.expr, &inputs);
        bool all_bound = true;
        for (const std::string& v : inputs) {
          if (!bound.count(v)) {
            all_bound = false;
            break;
          }
        }
        if (all_bound && !bound.count(lit.assign_var)) {
          bound.insert(lit.assign_var);
          changed = true;
        }
      }
    }
  }
  std::set<std::string> needed;
  CollectVars(rule, &needed);
  std::set<std::string> unrestricted;
  for (const std::string& v : needed) {
    if (!bound.count(v)) unrestricted.insert(v);
  }
  return unrestricted;
}

namespace {

// Safety check for a single rule; see CheckSafety.
Status CheckRuleSafety(const Rule& rule) {
  std::set<std::string> unrestricted = UnrestrictedVars(rule);
  if (!unrestricted.empty()) {
    return InvalidArgumentError(
        StrCat("unsafe rule, variable '", *unrestricted.begin(),
               "' is not range restricted: ", rule.ToString()));
  }
  return Status::OK();
}

}  // namespace

StatusOr<ProgramInfo> ProgramInfo::Analyze(const Program& program) {
  ProgramInfo info;
  info.program_ = program;

  // Catalog predicates and check arity consistency.
  auto note_atom = [&info](const Atom& atom, bool is_head) -> Status {
    auto [it, inserted] =
        info.predicates_.try_emplace(atom.predicate, PredicateInfo{});
    PredicateInfo& pred = it->second;
    if (inserted) {
      pred.name = atom.predicate;
      pred.arity = atom.arity();
    } else if (pred.arity != atom.arity()) {
      return InvalidArgumentError(
          StrCat("predicate '", atom.predicate, "' used with arities ",
                 pred.arity, " and ", atom.arity()));
    }
    if (is_head) pred.is_idb = true;
    return Status::OK();
  };

  for (const Rule& rule : program.rules) {
    SEPREC_RETURN_IF_ERROR(note_atom(rule.head, /*is_head=*/true));
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kAtom) {
        SEPREC_RETURN_IF_ERROR(note_atom(lit.atom, /*is_head=*/false));
      }
    }
    info.deps_[rule.head.predicate];  // ensure node exists
    for (const Atom* atom : rule.BodyAtoms()) {
      info.deps_[rule.head.predicate].insert(atom->predicate);
    }
  }

  SEPREC_RETURN_IF_ERROR(CheckSafety(program));

  // SCC condensation; components come out dependencies-first.
  std::vector<std::string> nodes;
  for (const auto& [name, pred] : info.predicates_) {
    nodes.push_back(name);
  }
  SccFinder finder(info.deps_);
  info.strata_ = finder.Run(nodes);

  for (size_t i = 0; i < info.strata_.size(); ++i) {
    for (const std::string& name : info.strata_[i]) {
      auto it = info.predicates_.find(name);
      if (it == info.predicates_.end()) continue;  // defensive
      it->second.scc_id = static_cast<int>(i);
      // Recursive iff its SCC is nontrivial or it depends on itself.
      bool self_loop = false;
      auto dep_it = info.deps_.find(name);
      if (dep_it != info.deps_.end()) {
        self_loop = dep_it->second.count(name) > 0;
      }
      it->second.is_recursive = info.strata_[i].size() > 1 || self_loop;
    }
  }

  // Stratified negation: no rule may negate a predicate from its head's
  // own SCC (negation through recursion has no least fixpoint). The same
  // restriction applies to aggregate rules: their whole body must lie in
  // strictly lower strata so the aggregated set is complete.
  for (const Rule& rule : program.rules) {
    const PredicateInfo* head = info.Find(rule.head.predicate);
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kAtom) continue;
      if (!lit.negated && !rule.aggregate.has_value()) continue;
      const PredicateInfo* body_pred = info.Find(lit.atom.predicate);
      if (body_pred != nullptr && head != nullptr &&
          body_pred->scc_id == head->scc_id &&
          (head->is_recursive || rule.head.predicate == lit.atom.predicate)) {
        return InvalidArgumentError(StrCat(
            "program is not stratified: '", rule.head.predicate, "' ",
            lit.negated ? "negates" : "aggregates over", " '",
            lit.atom.predicate, "' inside its own recursive component: ",
            rule.ToString()));
      }
    }
    if (rule.aggregate.has_value() &&
        rule.aggregate->head_position >= rule.head.args.size()) {
      return InvalidArgumentError(
          StrCat("aggregate position out of range: ", rule.ToString()));
    }
  }

  return info;
}

const PredicateInfo* ProgramInfo::Find(std::string_view name) const {
  auto it = predicates_.find(std::string(name));
  return it == predicates_.end() ? nullptr : &it->second;
}

bool ProgramInfo::IsIdb(std::string_view name) const {
  const PredicateInfo* pred = Find(name);
  return pred != nullptr && pred->is_idb;
}

bool ProgramInfo::IsRecursive(std::string_view name) const {
  const PredicateInfo* pred = Find(name);
  return pred != nullptr && pred->is_recursive;
}

bool ProgramInfo::MutuallyRecursive(std::string_view a,
                                    std::string_view b) const {
  const PredicateInfo* pa = Find(a);
  const PredicateInfo* pb = Find(b);
  if (pa == nullptr || pb == nullptr) return false;
  if (a == b) return pa->is_recursive;
  return pa->scc_id == pb->scc_id;
}

bool ProgramInfo::IsLinearRecursive(std::string_view name) const {
  const PredicateInfo* pred = Find(name);
  if (pred == nullptr || !pred->is_recursive) return false;
  for (const Rule& rule : program_.rules) {
    if (rule.head.predicate != name) continue;
    int in_scc = 0;
    for (const Atom* atom : rule.BodyAtoms()) {
      const PredicateInfo* body_pred = Find(atom->predicate);
      if (body_pred != nullptr && body_pred->scc_id == pred->scc_id &&
          body_pred->is_recursive) {
        ++in_scc;
      }
    }
    if (in_scc > 1) return false;
  }
  return true;
}

std::set<std::string> ProgramInfo::DependenciesOf(
    std::string_view name) const {
  std::set<std::string> reached;
  std::vector<std::string> work;
  auto push_deps = [this, &reached, &work](const std::string& node) {
    auto it = deps_.find(node);
    if (it == deps_.end()) return;
    for (const std::string& next : it->second) {
      if (reached.insert(next).second) {
        work.push_back(next);
      }
    }
  };
  push_deps(std::string(name));
  while (!work.empty()) {
    std::string node = work.back();
    work.pop_back();
    push_deps(node);
  }
  return reached;
}

std::vector<const Rule*> ProgramInfo::RulesOfStratum(size_t i) const {
  SEPREC_CHECK(i < strata_.size());
  std::set<std::string> heads(strata_[i].begin(), strata_[i].end());
  std::vector<const Rule*> rules;
  for (const Rule& rule : program_.rules) {
    if (heads.count(rule.head.predicate)) {
      rules.push_back(&rule);
    }
  }
  return rules;
}

Status CheckSafety(const Program& program) {
  for (const Rule& rule : program.rules) {
    SEPREC_RETURN_IF_ERROR(CheckRuleSafety(rule));
  }
  return Status::OK();
}

std::vector<std::vector<std::string>> PredicateSccs(const Program& program) {
  std::map<std::string, std::set<std::string>> deps;
  std::set<std::string> seen;
  for (const Rule& rule : program.rules) {
    deps[rule.head.predicate];
    seen.insert(rule.head.predicate);
    for (const Atom* atom : rule.BodyAtoms()) {
      deps[rule.head.predicate].insert(atom->predicate);
      seen.insert(atom->predicate);
    }
  }
  SccFinder finder(deps);
  return finder.Run(std::vector<std::string>(seen.begin(), seen.end()));
}

bool IsLinearRecursiveRule(const Rule& rule, std::string_view predicate) {
  if (rule.head.predicate != predicate) return false;
  return rule.BodyAtomsOf(predicate).size() == 1;
}

bool IsNonRecursiveRule(const Rule& rule, std::string_view predicate) {
  return rule.BodyAtomsOf(predicate).empty();
}

std::string FreshVar(std::string_view base, std::set<std::string>* used) {
  std::string candidate(base);
  int suffix = 0;
  while (used->count(candidate)) {
    candidate = StrCat(base, "_", suffix++);
  }
  used->insert(candidate);
  return candidate;
}

bool BuiltinReadyAndBind(const Literal& literal,
                         std::set<std::string>* bound) {
  auto term_bound = [bound](const Term& t) {
    return !t.IsVar() || bound->count(t.name) > 0;
  };
  if (literal.kind == Literal::Kind::kAtom) {
    if (!literal.negated) return false;
    for (const Term& arg : literal.atom.args) {
      if (!term_bound(arg)) return false;
    }
    return true;  // negated atoms bind nothing
  }
  if (literal.kind == Literal::Kind::kCompare) {
    bool lb = term_bound(literal.cmp_lhs);
    bool rb = term_bound(literal.cmp_rhs);
    if (lb && rb) return true;
    if (literal.cmp_op == CmpOp::kEq && (lb || rb)) {
      const Term& free_side = lb ? literal.cmp_rhs : literal.cmp_lhs;
      bound->insert(free_side.name);
      return true;
    }
    return false;
  }
  if (literal.kind == Literal::Kind::kAssign) {
    std::set<std::string> inputs;
    CollectVars(literal.expr, &inputs);
    for (const std::string& v : inputs) {
      if (!bound->count(v)) return false;
    }
    bound->insert(literal.assign_var);
    return true;
  }
  return false;
}

std::vector<Literal> OrderBodySafely(
    const Rule& rule, const std::set<std::string>& initially_bound) {
  std::vector<Literal> ordered;
  std::vector<bool> used(rule.body.size(), false);
  std::set<std::string> bound = initially_bound;
  size_t remaining = rule.body.size();
  while (remaining > 0) {
    bool progressed = false;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (used[i] || rule.body[i].IsPositiveAtom()) continue;
      if (BuiltinReadyAndBind(rule.body[i], &bound)) {
        ordered.push_back(rule.body[i]);
        used[i] = true;
        --remaining;
        progressed = true;
      }
    }
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (used[i] || !rule.body[i].IsPositiveAtom()) continue;
      ordered.push_back(rule.body[i]);
      CollectVars(rule.body[i].atom, &bound);
      used[i] = true;
      --remaining;
      progressed = true;
      break;
    }
    if (!progressed) {
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (!used[i]) {
          ordered.push_back(rule.body[i]);
          used[i] = true;
          --remaining;
        }
      }
    }
  }
  return ordered;
}

std::vector<size_t> ConnectedComponents(const std::vector<Literal>& literals,
                                        size_t* num_components) {
  // Union-find over literal indices, merging via shared variables.
  std::vector<size_t> parent(literals.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&parent, &find](size_t x) {
    return parent[x] == x ? x : (parent[x] = find(parent[x]));
  };
  std::map<std::string, size_t> first_literal_with_var;
  for (size_t i = 0; i < literals.size(); ++i) {
    std::set<std::string> vars;
    CollectVars(literals[i], &vars);
    for (const std::string& v : vars) {
      auto [it, inserted] = first_literal_with_var.emplace(v, i);
      if (!inserted) {
        parent[find(i)] = find(it->second);
      }
    }
  }
  std::map<size_t, size_t> dense_ids;
  std::vector<size_t> out(literals.size());
  for (size_t i = 0; i < literals.size(); ++i) {
    size_t root = find(i);
    auto [it, inserted] = dense_ids.emplace(root, dense_ids.size());
    out[i] = it->second;
  }
  *num_components = dense_ids.size();
  return out;
}

StatusOr<LinearRecursion> ExtractLinearRecursion(const Program& program,
                                                 std::string_view predicate) {
  SEPREC_ASSIGN_OR_RETURN(ProgramInfo info, ProgramInfo::Analyze(program));
  const PredicateInfo* pred = info.Find(predicate);
  if (pred == nullptr || !pred->is_idb) {
    return InvalidArgumentError(
        StrCat("'", predicate, "' is not an IDB predicate"));
  }
  // No mutual recursion with another predicate.
  for (const auto& [other, other_info] : info.predicates()) {
    if (other != predicate && other_info.scc_id == pred->scc_id &&
        pred->is_recursive) {
      return FailedPreconditionError(
          StrCat("'", predicate, "' is mutually recursive with '", other,
                 "'"));
    }
  }
  // Body predicates of t's rules must not depend on t.
  for (const Rule& rule : program.rules) {
    if (rule.head.predicate != predicate) continue;
    for (const Atom* atom : rule.BodyAtoms()) {
      if (atom->predicate == predicate) continue;
      std::set<std::string> deps = info.DependenciesOf(atom->predicate);
      if (deps.count(std::string(predicate))) {
        return FailedPreconditionError(
            StrCat("body predicate '", atom->predicate, "' depends on '",
                   predicate, "'"));
      }
    }
  }

  LinearRecursion rec;
  rec.predicate = std::string(predicate);
  rec.arity = pred->arity;
  for (size_t i = 0; i < rec.arity; ++i) {
    rec.head_vars.push_back(StrCat("V", i));
  }

  // Rectify preserves rule order 1:1, so index r in `rectified` is the
  // origin index into the caller's program.rules.
  Program rectified = Rectify(program);
  size_t rule_counter = 0;
  for (size_t origin = 0; origin < rectified.rules.size(); ++origin) {
    const Rule& rule = rectified.rules[origin];
    if (rule.head.predicate != predicate) continue;
    if (rule.aggregate.has_value()) {
      return FailedPreconditionError(
          StrCat("'", predicate, "' has an aggregate rule: ",
                 rule.ToString()));
    }
    size_t occurrences = rule.BodyAtomsOf(predicate).size();
    if (occurrences > 1) {
      return FailedPreconditionError(
          StrCat("non-linear rule for '", predicate, "': ", rule.ToString()));
    }

    // Canonical renaming: head variables -> V0..Vk-1, everything else ->
    // Q<rule>_<i>. The target names are all distinct and drawn from a
    // reserved namespace, so the simultaneous substitution cannot capture.
    Substitution sub;
    std::set<std::string> head_var_names;
    for (size_t i = 0; i < rule.head.args.size(); ++i) {
      // After Rectify every head argument is a distinct variable.
      SEPREC_CHECK(rule.head.args[i].IsVar());
      sub[rule.head.args[i].name] = Term::Var(rec.head_vars[i]);
      head_var_names.insert(rule.head.args[i].name);
    }
    std::set<std::string> all_vars;
    CollectVars(rule, &all_vars);
    size_t next_q = 0;
    for (const std::string& v : all_vars) {
      if (head_var_names.count(v)) continue;
      sub[v] = Term::Var(StrCat("Q", rule_counter, "_", next_q++));
    }
    Rule canonical = Substitute(rule, sub);

    if (occurrences == 0) {
      rec.exit_rules.push_back(std::move(canonical));
      rec.exit_rule_origin.push_back(origin);
    } else {
      // Find the recursive atom's body index.
      size_t index = canonical.body.size();
      for (size_t i = 0; i < canonical.body.size(); ++i) {
        const Literal& lit = canonical.body[i];
        if (lit.kind == Literal::Kind::kAtom &&
            lit.atom.predicate == predicate) {
          index = i;
          break;
        }
      }
      SEPREC_CHECK(index < canonical.body.size());
      // Drop tautological rules: t(V...) :- t(V...) alone derives nothing.
      if (canonical.body.size() == 1 &&
          canonical.body[0].atom.args == canonical.head.args) {
        ++rule_counter;
        continue;
      }
      rec.recursive_rules.push_back(std::move(canonical));
      rec.recursive_atom_index.push_back(index);
      rec.recursive_rule_origin.push_back(origin);
    }
    ++rule_counter;
  }
  return rec;
}

Program Rectify(const Program& program) {
  Program out;
  out.rules.reserve(program.rules.size());
  for (const Rule& rule : program.rules) {
    Rule fixed = rule;
    std::set<std::string> used;
    CollectVars(rule, &used);
    std::set<std::string> seen_in_head;
    for (size_t i = 0; i < fixed.head.args.size(); ++i) {
      Term& arg = fixed.head.args[i];
      if (arg.IsVar() && seen_in_head.insert(arg.name).second) {
        continue;  // first occurrence of a variable: fine
      }
      // Constant or repeated variable: replace with a fresh variable and
      // equate it in the body.
      std::string fresh = FreshVar(StrCat("R", i), &used);
      Term original = arg;
      arg = Term::Var(fresh);
      Literal eq = Literal::MakeCompare(CmpOp::kEq, Term::Var(fresh),
                                        original);
      eq.span = fixed.head.span;  // synthesized: point at the head
      fixed.body.push_back(std::move(eq));
      seen_in_head.insert(fresh);
      // Keep the aggregate invariant: args[head_position] names over_var.
      if (fixed.aggregate.has_value() &&
          fixed.aggregate->head_position == i) {
        fixed.aggregate->over_var = fresh;
      }
    }
    out.rules.push_back(std::move(fixed));
  }
  return out;
}

}  // namespace seprec
