// Conjunctive-query containment via the canonical-database (freezing)
// test [Chandra & Merlin 1977] — the machinery behind the paper's Theorem
// 2.1 proof: two expansion strings define the same relation iff there are
// containment mappings both ways.
//
// A conjunctive query here is a set of positive atoms plus a tuple of
// distinguished terms (the head). Query A *contains* query B (every
// answer of B is an answer of A on every database) iff there is a
// containment mapping from A's atoms to B's atoms fixing the
// distinguished variables — equivalently, iff evaluating A over B's
// frozen atoms yields B's frozen head.
#ifndef SEPREC_DATALOG_CONTAINMENT_H_
#define SEPREC_DATALOG_CONTAINMENT_H_

#include <vector>

#include "datalog/ast.h"
#include "datalog/expand.h"
#include "util/status.h"

namespace seprec {

struct ConjunctiveQuery {
  std::vector<Atom> atoms;
  std::vector<Term> head;  // distinguished variables and/or constants
};

// True iff `general` contains `specific` (a containment mapping
// general -> specific exists). Fails on arity-inconsistent inputs.
StatusOr<bool> Contains(const ConjunctiveQuery& general,
                        const ConjunctiveQuery& specific);

// Containment both ways: the two queries define the same relation.
StatusOr<bool> Equivalent(const ConjunctiveQuery& a,
                          const ConjunctiveQuery& b);

// Convenience: wraps an expansion string (from Expand) with the original
// query atom's arguments as the head.
ConjunctiveQuery FromExpansion(const ExpansionString& s, const Atom& query);

}  // namespace seprec

#endif  // SEPREC_DATALOG_CONTAINMENT_H_
