#include "datalog/containment.h"

#include <map>
#include <string>

#include "eval/join_plan.h"
#include "storage/database.h"
#include "util/string_util.h"

namespace seprec {
namespace {

// Freezes a term: variables become reserved "$frz$<name>" symbols,
// constants map to themselves.
Value Freeze(const Term& term, Database* db) {
  if (term.IsVar()) {
    return db->symbols().Intern(StrCat("$frz$", term.name));
  }
  if (term.kind == Term::Kind::kInt) {
    return Value::Int(term.int_value);
  }
  return db->symbols().Intern(term.name);
}

}  // namespace

StatusOr<bool> Contains(const ConjunctiveQuery& general,
                        const ConjunctiveQuery& specific) {
  // Canonical database: the frozen atoms of `specific`.
  Database db;
  for (const Atom& atom : specific.atoms) {
    SEPREC_ASSIGN_OR_RETURN(Relation * rel,
                            db.CreateRelation(atom.predicate, atom.arity()));
    std::vector<Value> row;
    row.reserve(atom.arity());
    for (const Term& t : atom.args) {
      row.push_back(Freeze(t, &db));
    }
    rel->Insert(Row(row.data(), row.size()));
  }

  // Evaluate `general` as a rule over the canonical database.
  Rule rule;
  rule.head.predicate = "$ans";
  rule.head.args = general.head;
  for (const Atom& atom : general.atoms) {
    rule.body.push_back(Literal::MakeAtom(atom));
  }
  // A head variable that appears in no body atom has no containment
  // mapping target: not contained (also unsafe to evaluate).
  std::set<std::string> body_vars;
  for (const Atom& atom : general.atoms) CollectVars(atom, &body_vars);
  for (const Term& t : general.head) {
    if (t.IsVar() && !body_vars.count(t.name)) return false;
  }

  SEPREC_ASSIGN_OR_RETURN(RulePlan plan, RulePlan::Compile(rule, &db));
  Relation answers("$ans", general.head.size());
  plan.ExecuteInto(&answers);

  if (specific.head.size() != general.head.size()) {
    return InvalidArgumentError("head arities differ");
  }
  std::vector<Value> target;
  target.reserve(specific.head.size());
  for (const Term& t : specific.head) {
    target.push_back(Freeze(t, &db));
  }
  return answers.Contains(Row(target.data(), target.size()));
}

StatusOr<bool> Equivalent(const ConjunctiveQuery& a,
                          const ConjunctiveQuery& b) {
  SEPREC_ASSIGN_OR_RETURN(bool ab, Contains(a, b));
  if (!ab) return false;
  return Contains(b, a);
}

ConjunctiveQuery FromExpansion(const ExpansionString& s, const Atom& query) {
  ConjunctiveQuery q;
  q.atoms = s.atoms;
  q.head = query.args;
  return q;
}

}  // namespace seprec
