#include "datalog/expand.h"

#include <set>

#include "util/string_util.h"

namespace seprec {
namespace {

struct FringeElement {
  std::vector<Atom> atoms;          // produced so far, production order
  std::vector<Term> instance_args;  // current instance of t
  std::vector<size_t> derivation;
};

// Builds the substitution applying `rule` to an instance of its head
// predicate with `instance_args`: head variables map to the instance
// arguments, every other rule variable gets subscripted with `iteration`.
Substitution ApplySubstitution(const Rule& rule,
                               const std::vector<Term>& instance_args,
                               size_t iteration) {
  Substitution sub;
  std::set<std::string> head_vars;
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    sub[rule.head.args[i].name] = instance_args[i];
    head_vars.insert(rule.head.args[i].name);
  }
  std::set<std::string> all;
  CollectVars(rule, &all);
  for (const std::string& v : all) {
    if (!head_vars.count(v)) {
      sub[v] = Term::Var(StrCat(v, iteration));
    }
  }
  return sub;
}

}  // namespace

std::string ExpansionString::ToString() const {
  std::string out;
  for (const Atom& atom : atoms) {
    out += atom.ToString();
  }
  return out;
}

StatusOr<std::vector<ExpansionString>> Expand(const Program& program,
                                              const Atom& query,
                                              size_t max_applications) {
  std::vector<const Rule*> recursive;
  std::vector<const Rule*> exits;
  for (const Rule& rule : program.rules) {
    if (rule.head.predicate != query.predicate) continue;
    // Validate shape.
    std::set<std::string> seen_head_vars;
    for (const Term& arg : rule.head.args) {
      if (!arg.IsVar() || !seen_head_vars.insert(arg.name).second) {
        return InvalidArgumentError(
            StrCat("rule head is not rectified: ", rule.ToString()));
      }
    }
    for (const Literal& lit : rule.body) {
      if (lit.kind != Literal::Kind::kAtom || lit.negated) {
        return UnimplementedError(
            StrCat("Expand supports positive relational literals only: ",
                   rule.ToString()));
      }
    }
    size_t occurrences = rule.BodyAtomsOf(query.predicate).size();
    if (occurrences > 1) {
      return InvalidArgumentError(
          StrCat("non-linear rule: ", rule.ToString()));
    }
    (occurrences == 1 ? recursive : exits).push_back(&rule);
  }
  if (recursive.empty() && exits.empty()) {
    return InvalidArgumentError(
        StrCat("no rules define '", query.predicate, "'"));
  }

  std::vector<ExpansionString> result;
  std::vector<FringeElement> fringe;
  FringeElement start;
  start.instance_args = query.args;
  fringe.push_back(std::move(start));

  for (size_t iteration = 0; iteration <= max_applications; ++iteration) {
    std::vector<FringeElement> next;
    for (const FringeElement& f : fringe) {
      // Line 7: close the element with each exit rule.
      for (const Rule* exit : exits) {
        Substitution sub =
            ApplySubstitution(*exit, f.instance_args, iteration);
        ExpansionString s;
        s.atoms = f.atoms;
        for (const Literal& lit : exit->body) {
          s.atoms.push_back(Substitute(lit.atom, sub));
        }
        s.derivation = f.derivation;
        result.push_back(std::move(s));
      }
      if (iteration == max_applications) continue;
      // Lines 8-10: extend with each recursive rule.
      for (size_t r = 0; r < recursive.size(); ++r) {
        const Rule* rule = recursive[r];
        Substitution sub =
            ApplySubstitution(*rule, f.instance_args, iteration);
        FringeElement g;
        g.atoms = f.atoms;
        for (const Literal& lit : rule->body) {
          if (lit.atom.predicate == query.predicate) continue;
          g.atoms.push_back(Substitute(lit.atom, sub));
        }
        const Atom* body_t = rule->BodyAtomsOf(query.predicate)[0];
        Atom substituted = Substitute(*body_t, sub);
        g.instance_args = substituted.args;
        g.derivation = f.derivation;
        g.derivation.push_back(r);
        next.push_back(std::move(g));
      }
    }
    fringe = std::move(next);
  }
  return result;
}

}  // namespace seprec
