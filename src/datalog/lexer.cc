#include "datalog/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace seprec {

std::string_view TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kVar: return "variable";
    case TokenKind::kInt: return "integer";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kPeriod: return "'.'";
    case TokenKind::kColonDash: return "':-'";
    case TokenKind::kQueryDash: return "'?-'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kEnd: return "end of input";
  }
  return "<bad token>";
}

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto push = [&tokens, &line](TokenKind kind, std::string text = "",
                               int64_t value = 0) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.int_value = value;
    t.line = line;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '%') {  // comment to end of line
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
        ++i;
      }
      std::string digits(source.substr(start, i - start));
      errno = 0;
      char* end = nullptr;
      long long value = std::strtoll(digits.c_str(), &end, 10);
      if (errno != 0) {
        return InvalidArgumentError(
            StrCat("line ", line, ": integer literal out of range: ", digits));
      }
      push(TokenKind::kInt, digits, value);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && IsIdentChar(source[i])) ++i;
      std::string word(source.substr(start, i - start));
      if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
        push(TokenKind::kVar, std::move(word));
      } else {
        push(TokenKind::kIdent, std::move(word));
      }
      continue;
    }
    if (c == '\'') {  // quoted symbol
      size_t start = ++i;
      while (i < n && source[i] != '\'') {
        if (source[i] == '\n') {
          return InvalidArgumentError(
              StrCat("line ", line, ": newline in quoted symbol"));
        }
        ++i;
      }
      if (i >= n) {
        return InvalidArgumentError(
            StrCat("line ", line, ": unterminated quoted symbol"));
      }
      push(TokenKind::kIdent, std::string(source.substr(start, i - start)));
      ++i;  // closing quote
      continue;
    }
    switch (c) {
      case '(': push(TokenKind::kLParen); ++i; continue;
      case ')': push(TokenKind::kRParen); ++i; continue;
      case ',': push(TokenKind::kComma); ++i; continue;
      case '&': push(TokenKind::kComma); ++i; continue;  // paper syntax
      case '.': push(TokenKind::kPeriod); ++i; continue;
      case '+': push(TokenKind::kPlus); ++i; continue;
      case '-': push(TokenKind::kMinus); ++i; continue;
      case '*': push(TokenKind::kStar); ++i; continue;
      case '/': push(TokenKind::kSlash); ++i; continue;
      case '=': push(TokenKind::kEq); ++i; continue;
      case ':':
        if (i + 1 < n && source[i + 1] == '-') {
          push(TokenKind::kColonDash);
          i += 2;
          continue;
        }
        return InvalidArgumentError(StrCat("line ", line, ": stray ':'"));
      case '?':
        if (i + 1 < n && source[i + 1] == '-') {
          push(TokenKind::kQueryDash);
          i += 2;
          continue;
        }
        push(TokenKind::kQuestion);
        ++i;
        continue;
      case '!':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kNe);
          i += 2;
          continue;
        }
        return InvalidArgumentError(StrCat("line ", line, ": stray '!'"));
      case '<':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kLe);
          i += 2;
        } else {
          push(TokenKind::kLt);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kGe);
          i += 2;
        } else {
          push(TokenKind::kGt);
          ++i;
        }
        continue;
      default:
        return InvalidArgumentError(
            StrCat("line ", line, ": unexpected character '", c, "'"));
    }
  }
  push(TokenKind::kEnd);
  return tokens;
}

}  // namespace seprec
