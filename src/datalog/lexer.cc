#include "datalog/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace seprec {

std::string_view TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kVar: return "variable";
    case TokenKind::kInt: return "integer";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kPeriod: return "'.'";
    case TokenKind::kColonDash: return "':-'";
    case TokenKind::kQueryDash: return "'?-'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kEnd: return "end of input";
  }
  return "<bad token>";
}

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  size_t line_start = 0;  // offset of the current line's first character
  const size_t n = source.size();

  // 1-based column of offset `at` on the current line.
  auto col_of = [&line_start](size_t at) {
    return static_cast<int>(at - line_start) + 1;
  };

  // Pushes a token spanning source offsets [start, end).
  auto push = [&](TokenKind kind, size_t start, size_t end,
                  std::string text = "", int64_t value = 0) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.int_value = value;
    t.line = line;
    t.col = col_of(start);
    t.end_col = col_of(end);
    tokens.push_back(std::move(t));
  };

  auto error_here = [&](std::string_view message) {
    return InvalidArgumentError(
        StrCat("line ", line, ", col ", col_of(i), ": ", message));
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '%') {  // comment to end of line
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
        ++i;
      }
      std::string digits(source.substr(start, i - start));
      errno = 0;
      char* end = nullptr;
      long long value = std::strtoll(digits.c_str(), &end, 10);
      if (errno != 0) {
        return InvalidArgumentError(StrCat("line ", line, ", col ",
                                           col_of(start),
                                           ": integer literal out of range: ",
                                           digits));
      }
      push(TokenKind::kInt, start, i, digits, value);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && IsIdentChar(source[i])) ++i;
      std::string word(source.substr(start, i - start));
      if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
        push(TokenKind::kVar, start, i, std::move(word));
      } else {
        push(TokenKind::kIdent, start, i, std::move(word));
      }
      continue;
    }
    if (c == '\'') {  // quoted symbol
      size_t open = i;
      size_t start = ++i;
      while (i < n && source[i] != '\'') {
        if (source[i] == '\n') {
          return InvalidArgumentError(
              StrCat("line ", line, ", col ", col_of(open),
                     ": newline in quoted symbol"));
        }
        ++i;
      }
      if (i >= n) {
        return InvalidArgumentError(
            StrCat("line ", line, ", col ", col_of(open),
                   ": unterminated quoted symbol"));
      }
      ++i;  // closing quote
      push(TokenKind::kIdent, open, i,
           std::string(source.substr(start, i - 1 - start)));
      continue;
    }
    switch (c) {
      case '(': push(TokenKind::kLParen, i, i + 1); ++i; continue;
      case ')': push(TokenKind::kRParen, i, i + 1); ++i; continue;
      case ',': push(TokenKind::kComma, i, i + 1); ++i; continue;
      case '&': push(TokenKind::kComma, i, i + 1); ++i; continue;  // paper
      case '.': push(TokenKind::kPeriod, i, i + 1); ++i; continue;
      case '+': push(TokenKind::kPlus, i, i + 1); ++i; continue;
      case '-': push(TokenKind::kMinus, i, i + 1); ++i; continue;
      case '*': push(TokenKind::kStar, i, i + 1); ++i; continue;
      case '/': push(TokenKind::kSlash, i, i + 1); ++i; continue;
      case '=': push(TokenKind::kEq, i, i + 1); ++i; continue;
      case ':':
        if (i + 1 < n && source[i + 1] == '-') {
          push(TokenKind::kColonDash, i, i + 2);
          i += 2;
          continue;
        }
        return error_here("stray ':'");
      case '?':
        if (i + 1 < n && source[i + 1] == '-') {
          push(TokenKind::kQueryDash, i, i + 2);
          i += 2;
          continue;
        }
        push(TokenKind::kQuestion, i, i + 1);
        ++i;
        continue;
      case '!':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kNe, i, i + 2);
          i += 2;
          continue;
        }
        return error_here("stray '!'");
      case '<':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kLe, i, i + 2);
          i += 2;
        } else {
          push(TokenKind::kLt, i, i + 1);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kGe, i, i + 2);
          i += 2;
        } else {
          push(TokenKind::kGt, i, i + 1);
          ++i;
        }
        continue;
      default:
        return error_here(StrCat("unexpected character '", c, "'"));
    }
  }
  push(TokenKind::kEnd, i, i);
  return tokens;
}

}  // namespace seprec
