// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum the durability layer stamps on WAL records, snapshot relation
// sections, and the manifest. Chosen over CRC32 (IEEE) for its better
// error-detection properties on short records; computed in software with
// a slicing-by-8 table so the WAL needs no SSE4.2 dependency.
#ifndef SEPREC_UTIL_CRC32C_H_
#define SEPREC_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace seprec {

// Extends `crc` (a value previously returned by Crc32c/ExtendCrc32c, or 0
// for a fresh stream) with `size` bytes at `data`.
uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t size);

inline uint32_t Crc32c(const void* data, size_t size) {
  return ExtendCrc32c(0, data, size);
}

inline uint32_t Crc32c(std::string_view bytes) {
  return ExtendCrc32c(0, bytes.data(), bytes.size());
}

}  // namespace seprec

#endif  // SEPREC_UTIL_CRC32C_H_
