// Small string helpers (no dependency on absl / std::format).
#ifndef SEPREC_UTIL_STRING_UTIL_H_
#define SEPREC_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace seprec {

// Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view input, char sep);

// Joins the elements of `parts` with `sep` between them.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

// Returns true if `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

namespace internal_strings {

inline void AppendPieces(std::ostringstream&) {}

template <typename T, typename... Rest>
void AppendPieces(std::ostringstream& out, const T& first,
                  const Rest&... rest) {
  out << first;
  AppendPieces(out, rest...);
}

}  // namespace internal_strings

// Concatenates streamable values into a std::string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  internal_strings::AppendPieces(out, args...);
  return out.str();
}

}  // namespace seprec

#endif  // SEPREC_UTIL_STRING_UTIL_H_
