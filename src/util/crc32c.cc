#include "util/crc32c.h"

#include <array>

namespace seprec {
namespace {

// Slicing-by-8 lookup tables for the reflected Castagnoli polynomial,
// built once at first use (cheap: 8 * 256 entries).
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables* t = new Tables;  // leaked: process-lifetime constant
  return *t;
}

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t size) {
  const auto& t = tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Byte-at-a-time until the remaining length covers a full 8-byte slice.
  while (size >= 8) {
    uint32_t low = crc ^ (static_cast<uint32_t>(p[0]) |
                          static_cast<uint32_t>(p[1]) << 8 |
                          static_cast<uint32_t>(p[2]) << 16 |
                          static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][low & 0xFFu] ^ t[6][(low >> 8) & 0xFFu] ^
          t[5][(low >> 16) & 0xFFu] ^ t[4][low >> 24] ^ t[3][p[4]] ^
          t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace seprec
