// Wall-clock deadlines on the steady clock, for the execution governor.
#ifndef SEPREC_UTIL_DEADLINE_H_
#define SEPREC_UTIL_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace seprec {

// A point on the steady clock after which governed work must stop.
// Infinite() never expires. AfterMillis(0) is expired from the first
// check, which tests use to drive the deadline path deterministically.
class Deadline {
 public:
  Deadline() = default;  // infinite

  static Deadline Infinite() { return Deadline(); }

  static Deadline AfterMillis(int64_t millis) {
    Deadline deadline;
    deadline.infinite_ = false;
    deadline.when_ =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(millis);
    return deadline;
  }

  bool infinite() const { return infinite_; }

  bool expired() const {
    return !infinite_ && std::chrono::steady_clock::now() >= when_;
  }

 private:
  bool infinite_ = true;
  std::chrono::steady_clock::time_point when_{};
};

}  // namespace seprec

#endif  // SEPREC_UTIL_DEADLINE_H_
