// Deterministic pseudo-random number generation for data generators and
// property tests. SplitMix64: tiny state, excellent statistical quality for
// this purpose, and fully reproducible across platforms.
#ifndef SEPREC_UTIL_RNG_H_
#define SEPREC_UTIL_RNG_H_

#include <cstdint>

#include "util/logging.h"

namespace seprec {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Returns the next 64-bit pseudo-random value.
  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Returns a value uniformly distributed in [0, bound). `bound` must be > 0.
  uint64_t Below(uint64_t bound) {
    SEPREC_DCHECK(bound > 0);
    // Rejection sampling to avoid modulo bias; the loop almost never runs
    // more than once for the small bounds used by generators.
    const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % bound);
    uint64_t v = Next();
    while (v >= limit) {
      v = Next();
    }
    return v % bound;
  }

  // Returns a value uniformly distributed in [lo, hi], inclusive.
  int64_t Between(int64_t lo, int64_t hi) {
    SEPREC_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Returns true with probability `p` (clamped to [0, 1]).
  bool Chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return static_cast<double>(Next() >> 11) * 0x1.0p-53 < p;
  }

 private:
  uint64_t state_;
};

}  // namespace seprec

#endif  // SEPREC_UTIL_RNG_H_
