#include "util/string_util.h"

#include <cctype>

namespace seprec {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(input.substr(start));
      return pieces;
    }
    pieces.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(sep);
    result.append(parts[i]);
  }
  return result;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace seprec
