// Failpoints: a LevelDB/CockroachDB-style fault-injection registry.
//
// Production code declares *sites* — named points where an induced failure
// is interesting (stream I/O, snapshot parsing, the governor's memory
// accountant, the compiler's strategy dispatch). Tests arm a site with a
// FailpointSpec; matching passes through the site then report the injected
// failure. The disarmed fast path is a single relaxed atomic load, so the
// sites are compiled into release builds too.
//
// Sites come in two shapes:
//
//   Status-shaped: SEPREC_RETURN_IF_ERROR(Failpoints::Check("io.save_tsv"));
//   bool-shaped:   if (Failpoints::Hit("governor.poll")) { /* cancel */ }
//
// Environment control (read once, at first use):
//
//   SEPREC_FAILPOINTS=ON                 keep the registry's slow path
//                                        active (CI soak under sanitizers)
//   SEPREC_FAILPOINTS=site[:skip[:count]][,...]
//                                        arm sites at process start
//   SEPREC_FAILPOINTS=site:crash[:skip[:count]][,...]
//                                        crash the process (_Exit, no
//                                        flushing — a kill -9 stand-in)
//                                        when the site fires; the crash
//                                        harness uses this to die at exact
//                                        IO boundaries
//
// The registry is guarded by a mutex and safe to use across threads; the
// sites themselves fire on whichever thread evaluates them.
#ifndef SEPREC_UTIL_FAILPOINT_H_
#define SEPREC_UTIL_FAILPOINT_H_

#include <cstddef>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace seprec {

struct FailpointSpec {
  // Let this many evaluations pass before the first injected failure.
  size_t skip = 0;
  // Stop firing after this many injected failures (the site stays armed
  // but inert; Disarm to reset).
  size_t count = std::numeric_limits<size_t>::max();
  // Status code reported by Status-shaped sites.
  StatusCode code = StatusCode::kInternal;
  // Optional message override; empty uses "injected failure at <site>".
  std::string message;
  // When set, a firing site terminates the process with
  // std::_Exit(kCrashExitCode) instead of reporting a failure: no stream
  // flushing, no destructors, no atexit — the closest in-process stand-in
  // for kill -9 at an exact instruction boundary.
  bool crash = false;
};

// Exit code of a crash-action failpoint, distinctive enough for death
// tests and the crash harness to tell an injected crash from a real abort.
inline constexpr int kCrashExitCode = 42;

class Failpoints {
 public:
  // Arms `site` (must be registered — see Sites()); resets its counters.
  static void Arm(std::string_view site, FailpointSpec spec = {});
  static void Disarm(std::string_view site);
  static void DisarmAll();

  // Number of failures `site` has injected since it was last armed.
  static size_t FireCount(std::string_view site);

  // All registered sites, for enumeration tests and tooling.
  static const std::vector<std::string_view>& Sites();
  static bool IsRegistered(std::string_view site);

  // Status-shaped evaluation: OK unless the site is armed and due.
  static Status Check(std::string_view site);
  // Bool-shaped evaluation: true when the site is armed and due.
  static bool Hit(std::string_view site);
};

// Arms a site for the enclosing scope; disarms on destruction.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string_view site, FailpointSpec spec = {})
      : site_(site) {
    Failpoints::Arm(site_, std::move(spec));
  }
  ~ScopedFailpoint() { Failpoints::Disarm(site_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

}  // namespace seprec

#endif  // SEPREC_UTIL_FAILPOINT_H_
