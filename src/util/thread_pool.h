// ThreadPool: a fixed-size worker pool for the parallel evaluation paths.
//
// Deliberately work-stealing-free: tasks go into one mutex-guarded FIFO and
// workers pull from it. The engines' parallel regions are coarse (one task
// per delta partition or per equivalence class, re-issued every fixpoint
// round), so a single queue is never the bottleneck and the simple design
// keeps the ThreadSanitizer surface small.
//
// The pool is created lazily the first time a parallel region actually
// runs with more than one thread; a serial evaluation (--threads 1, the
// default) never spawns a thread. ParallelFor is the only primitive the
// engines use: the calling thread participates in the loop, so progress is
// guaranteed even when every pool worker is busy, and the call returns
// only when every index has been processed.
#ifndef SEPREC_UTIL_THREAD_POOL_H_
#define SEPREC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace seprec {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  // Drains the queue and joins every worker.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  // Enqueues `fn` for execution on some worker. `fn` must not throw.
  void Schedule(std::function<void()> fn);

  // Invokes fn(i) exactly once for every i in [0, n), using at most
  // `parallelism` concurrent executors (pool workers plus the calling
  // thread, which always participates). Blocks until every index has
  // completed. With parallelism <= 1 or n <= 1 the loop runs inline
  // without touching the pool. Concurrent ParallelFor calls are safe but
  // fn(i) must not itself call ParallelFor on the same pool.
  void ParallelFor(size_t n, size_t parallelism,
                   const std::function<void(size_t)>& fn);

  // Tasks currently waiting in the FIFO (a point-in-time sample; the
  // trace layer records it when a parallel round begins, showing backlog
  // from other concurrent work).
  size_t QueueDepth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  // High-water mark of the queue length, and total tasks ever scheduled,
  // since pool construction. Monotonic, informational.
  size_t peak_queue_depth() const {
    return peak_queue_depth_.load(std::memory_order_relaxed);
  }
  uint64_t tasks_scheduled() const {
    return tasks_scheduled_.load(std::memory_order_relaxed);
  }

  // The process-wide pool, created on first use with one worker per
  // hardware thread. Engines share it; per-evaluation parallelism is
  // bounded by the `parallelism` argument of ParallelFor, not by pool
  // construction.
  static ThreadPool* Shared();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;  // guarded by mu_
  bool shutdown_ = false;                    // guarded by mu_
  std::atomic<size_t> peak_queue_depth_{0};
  std::atomic<uint64_t> tasks_scheduled_{0};
  std::vector<std::thread> threads_;
};

// The thread count a ParallelPolicy with num_threads == 0 resolves to:
// the SEPREC_THREADS environment variable (parsed once, clamped to
// [1, 64]) or 1 when unset/invalid. Lets CI matrices run every existing
// test through the pool without touching call sites.
size_t DefaultThreadCount();

}  // namespace seprec

#endif  // SEPREC_UTIL_THREAD_POOL_H_
