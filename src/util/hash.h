// Hash helpers used by tuple storage and indexes.
#ifndef SEPREC_UTIL_HASH_H_
#define SEPREC_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "storage/value.h"

namespace seprec {

// Mixes `value` into `seed` (boost::hash_combine-style with a 64-bit
// constant). Order-sensitive, suitable for hashing tuples column by column.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // Golden-ratio constant; the shifts spread entropy across all bits.
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

// Hashes `n` consecutive 64-bit words starting at `data`.
inline uint64_t HashWords(const uint64_t* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h = HashCombine(h, data[i]);
  }
  return h;
}

// Canonical FNV-1a-seeded hash of a tuple of Values, column by column.
// Every row-level dedup structure (Relation's row set, ShardedSink shards,
// Index probes, the partitioned engines' row routing) hashes through this
// one function, so a row's hash — and therefore shard/partition routing —
// is identical everywhere.
inline uint64_t HashRow(std::span<const Value> row) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (Value v : row) h = HashCombine(h, v.bits());
  return h;
}

// Finalizer from SplitMix64; useful to turn a counter into a well-mixed hash.
inline uint64_t MixBits(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace seprec

#endif  // SEPREC_UTIL_HASH_H_
