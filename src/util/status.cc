#include "util/status.h"

namespace seprec {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

}  // namespace seprec
