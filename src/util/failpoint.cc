#include "util/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "util/string_util.h"

namespace seprec {
namespace {

// The canonical site list. Adding an injection site to production code
// means adding its name here; Arm rejects unknown names so a typo in a
// test fails loudly instead of silently never firing.
const std::vector<std::string_view>& RegisteredSites() {
  static const std::vector<std::string_view> sites = {
      "io.load_tsv",         // LoadRelationTsv, per data line
      "io.save_tsv",         // SaveRelationTsv, before writing
      "snapshot.load",       // LoadSnapshot, before parsing
      "snapshot.save",       // SaveSnapshot, before writing
      "snapshot.write",      // SaveSnapshotFile, before writing the temp file
      "snapshot.rename",     // SaveSnapshotFile, temp written, before rename
      "wal.open",            // WalWriter::Open, before open/create
      "wal.append",          // WalWriter::Append, before the record write
      "wal.fsync",           // WalWriter sync, record written, before fsync
      "wal.truncate",        // TruncateWal, before dropping the torn tail
      "manifest.write",      // SaveManifest, before writing the temp file
      "manifest.rename",     // SaveManifest, temp durable, before rename
      "governor.poll",       // ExecutionContext::ShouldStop -> cancellation
      "governor.charge",     // MemoryAccountant::Charge -> allocation spike
      "compiler.separable",  // QueryProcessor dispatch of the Separable engine
      "compiler.magic",      // QueryProcessor dispatch of the Magic engine
  };
  return sites;
}

struct SiteState {
  bool armed = false;
  FailpointSpec spec;
  size_t evaluations = 0;  // since last Arm
  size_t fires = 0;        // injected failures since last Arm
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteState, std::less<>> states;  // guarded by mu
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: alive for process lifetime
  return *r;
}

// Fast-path gate: number of currently armed sites, plus one if
// SEPREC_FAILPOINTS=ON forces the slow path.
std::atomic<int> active_count{0};
std::once_flag env_once;

void ArmLocked(Registry& r, std::string_view site, FailpointSpec spec) {
  SiteState& state = r.states[std::string(site)];
  if (!state.armed) active_count.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.spec = std::move(spec);
  state.evaluations = 0;
  state.fires = 0;
}

void LoadEnvironment() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once under call_once before
  // any worker thread can touch the registry; nothing in-process setenv()s.
  const char* env = std::getenv("SEPREC_FAILPOINTS");
  if (env == nullptr || env[0] == '\0') return;
  std::string value = env;
  if (value == "ON" || value == "on" || value == "1") {
    // Keep the registry's slow path exercised without arming anything.
    active_count.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const std::string& entry : StrSplit(value, ',')) {
    if (entry.empty()) continue;
    std::vector<std::string> parts = StrSplit(entry, ':');
    if (!Failpoints::IsRegistered(parts[0])) continue;
    FailpointSpec spec;
    size_t next = 1;
    if (parts.size() > next && parts[next] == "crash") {
      spec.crash = true;
      ++next;
    }
    if (parts.size() > next) {
      spec.skip = std::strtoull(parts[next++].c_str(), nullptr, 10);
    }
    if (parts.size() > next) {
      spec.count = std::strtoull(parts[next].c_str(), nullptr, 10);
    }
    ArmLocked(r, parts[0], std::move(spec));
  }
}

void EnsureEnvironmentLoaded() {
  std::call_once(env_once, LoadEnvironment);
}

// Returns true (and fills *spec_out) when the armed site is due to fire.
bool Evaluate(std::string_view site, FailpointSpec* spec_out) {
  EnsureEnvironmentLoaded();
  if (active_count.load(std::memory_order_relaxed) == 0) return false;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.states.find(site);
  if (it == r.states.end() || !it->second.armed) return false;
  SiteState& state = it->second;
  size_t evaluation = state.evaluations++;
  if (evaluation < state.spec.skip) return false;
  if (state.fires >= state.spec.count) return false;
  ++state.fires;
  *spec_out = state.spec;
  if (state.spec.crash) {
    // kill -9 stand-in: no flushing, no destructors — user-space
    // buffered bytes die with the process exactly as they would under a
    // real SIGKILL at this boundary.
    std::_Exit(kCrashExitCode);
  }
  return true;
}

}  // namespace

void Failpoints::Arm(std::string_view site, FailpointSpec spec) {
  SEPREC_CHECK(IsRegistered(site));
  EnsureEnvironmentLoaded();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ArmLocked(r, site, std::move(spec));
}

void Failpoints::Disarm(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.states.find(site);
  if (it == r.states.end() || !it->second.armed) return;
  it->second.armed = false;
  active_count.fetch_sub(1, std::memory_order_relaxed);
}

void Failpoints::DisarmAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [site, state] : r.states) {
    if (state.armed) {
      state.armed = false;
      active_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

size_t Failpoints::FireCount(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.states.find(site);
  return it == r.states.end() ? 0 : it->second.fires;
}

const std::vector<std::string_view>& Failpoints::Sites() {
  return RegisteredSites();
}

bool Failpoints::IsRegistered(std::string_view site) {
  for (std::string_view s : RegisteredSites()) {
    if (s == site) return true;
  }
  return false;
}

Status Failpoints::Check(std::string_view site) {
  FailpointSpec spec;
  if (!Evaluate(site, &spec)) return Status::OK();
  std::string message = spec.message.empty()
                            ? StrCat("injected failure at ", site)
                            : spec.message;
  return Status(spec.code, std::move(message));
}

bool Failpoints::Hit(std::string_view site) {
  FailpointSpec spec;
  return Evaluate(site, &spec);
}

}  // namespace seprec
