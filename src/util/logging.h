// Lightweight assertion and logging helpers.
//
// The library is exception-free (Google C++ style); unrecoverable internal
// errors abort via SEPREC_CHECK, while recoverable errors are reported
// through seprec::Status (see util/status.h).
#ifndef SEPREC_UTIL_LOGGING_H_
#define SEPREC_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace seprec {
namespace internal_logging {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "[seprec] CHECK failed at %s:%d: %s\n", file, line,
               expr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace seprec

// Aborts the process if `expr` is false. Used for internal invariants that
// indicate a programming error rather than bad user input.
#define SEPREC_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::seprec::internal_logging::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                   \
  } while (0)

// Like SEPREC_CHECK but compiled out in optimized builds.
#ifdef NDEBUG
#define SEPREC_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define SEPREC_DCHECK(expr) SEPREC_CHECK(expr)
#endif

#endif  // SEPREC_UTIL_LOGGING_H_
