// Wall-clock timing for evaluation statistics and benches.
#ifndef SEPREC_UTIL_TIMER_H_
#define SEPREC_UTIL_TIMER_H_

#include <chrono>

namespace seprec {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double Seconds() const {
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace seprec

#endif  // SEPREC_UTIL_TIMER_H_
