// Error propagation without exceptions: Status and StatusOr<T>.
//
// These are deliberately small subsets of the absl types of the same names.
// Functions that can fail on user input (bad syntax, unsafe rules,
// inapplicable transformations) return Status / StatusOr; internal invariant
// violations use SEPREC_CHECK instead.
#ifndef SEPREC_UTIL_STATUS_H_
#define SEPREC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/logging.h"

namespace seprec {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kResourceExhausted,
  kCancelled,
  kInternal,
  kDataLoss,
};

// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT",
// ...).
std::string_view StatusCodeToString(StatusCode code);

// A success-or-error result. Cheap to copy in the success case.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    SEPREC_DCHECK(code != StatusCode::kOk);
  }

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "OK" or "CODE: message" for diagnostics.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
inline Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
// Unrecoverable corruption of persisted state (bad WAL/snapshot/manifest
// bytes): distinct from kInternal so the CLI can map it to the recovery
// exit code and the server can refuse to start.
inline Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}

// Holds either a value of type T or an error Status. Accessing the value of
// a non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    SEPREC_CHECK(!status_.ok());
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SEPREC_CHECK(ok());
    return *value_;
  }
  T& value() & {
    SEPREC_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    SEPREC_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace seprec

// Propagates a non-OK Status from the evaluated expression.
#define SEPREC_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::seprec::Status seprec_status_tmp = (expr);  \
    if (!seprec_status_tmp.ok()) {                \
      return seprec_status_tmp;                   \
    }                                             \
  } while (0)

// Assigns the value of a StatusOr expression to `lhs`, or propagates the
// error. `lhs` may include a declaration, e.g.
//   SEPREC_ASSIGN_OR_RETURN(auto plan, CompilePlan(...));
#define SEPREC_ASSIGN_OR_RETURN(lhs, expr)                   \
  SEPREC_ASSIGN_OR_RETURN_IMPL_(                             \
      SEPREC_STATUS_CONCAT_(seprec_statusor_, __LINE__), lhs, expr)

#define SEPREC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

#define SEPREC_STATUS_CONCAT_(a, b) SEPREC_STATUS_CONCAT_IMPL_(a, b)
#define SEPREC_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // SEPREC_UTIL_STATUS_H_
