#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

namespace seprec {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
    if (queue_.size() > peak_queue_depth_.load(std::memory_order_relaxed)) {
      peak_queue_depth_.store(queue_.size(), std::memory_order_relaxed);
    }
  }
  tasks_scheduled_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, size_t parallelism,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (parallelism <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared loop state. Helpers claim indexes from `next`; the last index
  // to finish signals the condition variable. The state (and the copied
  // fn) outlive the call via shared_ptr because a scheduled helper may be
  // dequeued after the loop is already complete — it then sees
  // next >= n and exits without touching fn.
  struct LoopState {
    explicit LoopState(size_t n_, std::function<void(size_t)> fn_)
        : n(n_), fn(std::move(fn_)) {}
    const size_t n;
    const std::function<void(size_t)> fn;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<LoopState>(n, fn);

  auto drain = [](const std::shared_ptr<LoopState>& s) {
    for (;;) {
      size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->n) return;
      s->fn(i);
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->n) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->cv.notify_all();
      }
    }
  };

  // The calling thread is one executor; schedule up to parallelism - 1
  // helpers (never more than there are indexes to hand out).
  size_t helpers = std::min(parallelism - 1, n - 1);
  helpers = std::min(helpers, size());
  for (size_t h = 0; h < helpers; ++h) {
    Schedule([state, drain] { drain(state); });
  }
  drain(state);

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    return new ThreadPool(std::min<size_t>(hw, 64));
  }();
  return pool;
}

size_t DefaultThreadCount() {
  static const size_t count = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): evaluated once inside a
    // function-local static initialiser; nothing in-process setenv()s.
    const char* env = std::getenv("SEPREC_THREADS");
    if (env == nullptr || *env == '\0') return size_t{1};
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 1) return size_t{1};
    return std::min<size_t>(static_cast<size_t>(v), 64);
  }();
  return count;
}

}  // namespace seprec
