#include "eval/join_plan.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace seprec {
namespace {

// Compiles an Expr tree into a postfix program. Returns false if the
// expression references an unbound variable.
bool CompileExpr(const Expr& expr,
                 const std::map<std::string, uint32_t>& bound_slots,
                 Database* db, std::vector<ExprOp>* out) {
  if (expr.op == Expr::Op::kTerm) {
    ExprOp op;
    op.kind = ExprOp::Kind::kPush;
    const Term& t = expr.term;
    if (t.IsVar()) {
      auto it = bound_slots.find(t.name);
      if (it == bound_slots.end()) return false;
      op.source = ValueSource::Slot(it->second);
    } else if (t.kind == Term::Kind::kInt) {
      op.source = ValueSource::Const(Value::Int(t.int_value));
    } else {
      op.source = ValueSource::Const(db->symbols().Intern(t.name));
    }
    out->push_back(op);
    return true;
  }
  if (!CompileExpr(*expr.lhs, bound_slots, db, out)) return false;
  if (!CompileExpr(*expr.rhs, bound_slots, db, out)) return false;
  ExprOp op;
  switch (expr.op) {
    case Expr::Op::kAdd: op.kind = ExprOp::Kind::kAdd; break;
    case Expr::Op::kSub: op.kind = ExprOp::Kind::kSub; break;
    case Expr::Op::kMul: op.kind = ExprOp::Kind::kMul; break;
    case Expr::Op::kDiv: op.kind = ExprOp::Kind::kDiv; break;
    case Expr::Op::kMod: op.kind = ExprOp::Kind::kMod; break;
    case Expr::Op::kTerm: return false;  // unreachable
  }
  out->push_back(op);
  return true;
}

}  // namespace

StatusOr<RulePlan> RulePlan::Compile(const Rule& rule, Database* db,
                                     const PlanOptions& options) {
  RulePlan plan;
  plan.rule_ = rule;

  std::map<std::string, uint32_t> slot_of;  // bound variables only
  auto slot_for = [&plan, &slot_of](const std::string& var) {
    auto it = slot_of.find(var);
    if (it != slot_of.end()) return it->second;
    uint32_t slot = plan.num_slots_++;
    plan.slot_names_.push_back(var);
    slot_of.emplace(var, slot);
    return slot;
  };
  auto const_value = [db](const Term& t) {
    return t.kind == Term::Kind::kInt ? Value::Int(t.int_value)
                                      : db->symbols().Intern(t.name);
  };
  auto term_source = [&](const Term& t) -> ValueSource {
    // Precondition: t is a constant or a bound variable.
    if (t.IsVar()) return ValueSource::Slot(slot_of.at(t.name));
    return ValueSource::Const(const_value(t));
  };
  auto is_bound = [&slot_of](const Term& t) {
    return !t.IsVar() || slot_of.count(t.name) > 0;
  };

  // Resolve each relational literal to its relation up front (creating
  // empty relations for never-populated EDB predicates).
  std::vector<const Relation*> relations(rule.body.size(), nullptr);
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Literal& lit = rule.body[i];
    if (lit.kind != Literal::Kind::kAtom) continue;
    std::string name = lit.atom.predicate;
    auto it = options.relation_overrides.find(i);
    if (it != options.relation_overrides.end()) name = it->second;
    SEPREC_ASSIGN_OR_RETURN(Relation * rel,
                            db->CreateRelation(name, lit.atom.arity()));
    relations[i] = rel;
  }

  // Ask the planner for an atom order. An empty order (greedy mode, or a
  // DP fallback on very wide bodies) leaves the pick to the legacy
  // heuristic below; a non-empty one is consumed front to back.
  plan.plan_info_ = PlanJoinOrder(rule, relations, db == nullptr
                                      ? nullptr
                                      : &db->stats(),
                                  options.join_order,
                                  !options.disable_indexes,
                                  options.allow_merge &&
                                      !options.disable_indexes);
  const std::vector<size_t>& forced_order = plan.plan_info_.atom_order;
  size_t forced_cursor = 0;

  std::vector<bool> scheduled(rule.body.size(), false);
  size_t num_scheduled = 0;

  auto schedule_builtin_if_ready = [&](size_t i) -> bool {
    const Literal& lit = rule.body[i];
    if (lit.kind == Literal::Kind::kAtom && lit.negated) {
      // Negated atoms are filters: schedule once every argument is bound.
      for (const Term& arg : lit.atom.args) {
        if (!is_bound(arg)) return false;
      }
      Step step;
      step.kind = Step::Kind::kScan;
      step.negated = true;
      step.relation = relations[i];
      step.display_name = relations[i]->name();
      step.slot_comment = lit.ToString();
      for (size_t c = 0; c < lit.atom.args.size(); ++c) {
        const Term& arg = lit.atom.args[c];
        ValueSource source = arg.IsVar()
                                 ? ValueSource::Slot(slot_of.at(arg.name))
                                 : ValueSource::Const(const_value(arg));
        if (options.disable_indexes) {
          Step::RowAction action;
          action.col = static_cast<uint32_t>(c);
          if (source.is_const) {
            action.kind = Step::RowAction::Kind::kCheckConst;
            action.constant = source.constant;
          } else {
            action.kind = Step::RowAction::Kind::kCheckSlot;
            action.slot = source.slot;
          }
          step.actions.push_back(action);
        } else {
          step.probe_cols.push_back(static_cast<uint32_t>(c));
          step.probe_sources.push_back(source);
        }
      }
      plan.scanned_.push_back(relations[i]);
      plan.steps_.push_back(std::move(step));
      return true;
    }
    if (lit.kind == Literal::Kind::kCompare) {
      bool lb = is_bound(lit.cmp_lhs);
      bool rb = is_bound(lit.cmp_rhs);
      if (lb && rb) {
        Step step;
        step.kind = Step::Kind::kCompare;
        step.cmp_op = lit.cmp_op;
        step.lhs = term_source(lit.cmp_lhs);
        step.rhs = term_source(lit.cmp_rhs);
        step.slot_comment = lit.ToString();
        plan.steps_.push_back(std::move(step));
        return true;
      }
      if (lit.cmp_op == CmpOp::kEq && (lb || rb)) {
        const Term& bound_side = lb ? lit.cmp_lhs : lit.cmp_rhs;
        const Term& free_side = lb ? lit.cmp_rhs : lit.cmp_lhs;
        Step step;
        step.kind = Step::Kind::kBindEq;
        step.bind_source = term_source(bound_side);
        step.target_slot = slot_for(free_side.name);
        step.slot_comment = lit.ToString();
        plan.steps_.push_back(std::move(step));
        return true;
      }
      return false;
    }
    if (lit.kind == Literal::Kind::kAssign) {
      std::set<std::string> inputs;
      CollectVars(lit.expr, &inputs);
      for (const std::string& v : inputs) {
        if (!slot_of.count(v)) return false;
      }
      Step step;
      step.kind = Step::Kind::kAssign;
      if (!CompileExpr(lit.expr, slot_of, db, &step.expr)) return false;
      step.assign_is_check = slot_of.count(lit.assign_var) > 0;
      step.target_slot = slot_for(lit.assign_var);
      step.slot_comment = lit.ToString();
      plan.steps_.push_back(std::move(step));
      return true;
    }
    return false;
  };

  // Re-verifies the planner's merge-join nomination against the actual
  // rule shape and, on success, emits one kMergeJoin step consuming the
  // first two atoms of the forced order. The planner only nominates pairs
  // of ordered atoms whose arguments are all distinct variables, none
  // bound before the first scan, joined exactly on a shared leading
  // prefix; this re-checks every one of those properties so a stale or
  // inconsistent verdict degrades to the hash pipeline instead of
  // compiling a wrong plan.
  auto emit_merge_join = [&]() -> bool {
    if (forced_order.size() < 2) return false;
    size_t a = forced_order[0];
    size_t b = forced_order[1];
    size_t k = plan.plan_info_.merge_prefix;
    if (a == b || a >= rule.body.size() || b >= rule.body.size()) {
      return false;
    }
    if (!rule.body[a].IsPositiveAtom() || !rule.body[b].IsPositiveAtom()) {
      return false;
    }
    const Atom& atom_a = rule.body[a].atom;
    const Atom& atom_b = rule.body[b].atom;
    if (k == 0 || k > atom_a.args.size() || k > atom_b.args.size()) {
      return false;
    }
    auto distinct_unbound_vars = [&](const Atom& atom) {
      std::set<std::string> seen;
      for (const Term& t : atom.args) {
        if (!t.IsVar() || slot_of.count(t.name) > 0 ||
            !seen.insert(t.name).second) {
          return false;
        }
      }
      return true;
    };
    if (!distinct_unbound_vars(atom_a) || !distinct_unbound_vars(atom_b)) {
      return false;
    }
    for (size_t c = 0; c < k; ++c) {
      if (atom_a.args[c].name != atom_b.args[c].name) return false;
    }
    // Shared variables must be exactly the key prefix: since each atom's
    // arguments are distinct and the prefixes are identical, it suffices
    // that no tail variable of `a` occurs anywhere in `b`.
    std::set<std::string> b_vars;
    for (const Term& t : atom_b.args) b_vars.insert(t.name);
    for (size_t c = k; c < atom_a.args.size(); ++c) {
      if (b_vars.count(atom_a.args[c].name) > 0) return false;
    }

    Step step;
    step.kind = Step::Kind::kMergeJoin;
    step.relation = relations[a];
    step.display_name = relations[a]->name();
    step.merge_right = relations[b];
    step.merge_right_name = relations[b]->name();
    step.merge_key_len = k;
    step.slot_comment =
        StrCat(atom_a.ToString(), " with ", atom_b.ToString());
    for (size_t c = 0; c < atom_a.args.size(); ++c) {
      Step::RowAction action;
      action.col = static_cast<uint32_t>(c);
      action.kind = Step::RowAction::Kind::kBind;
      action.slot = slot_for(atom_a.args[c].name);
      step.actions.push_back(action);
    }
    // Key columns are shared with the left atom, so only the right tail
    // binds new variables.
    for (size_t c = k; c < atom_b.args.size(); ++c) {
      Step::RowAction action;
      action.col = static_cast<uint32_t>(c);
      action.kind = Step::RowAction::Kind::kBind;
      action.slot = slot_for(atom_b.args[c].name);
      step.merge_right_actions.push_back(action);
    }
    plan.scanned_.push_back(relations[a]);
    plan.scanned_.push_back(relations[b]);
    plan.steps_.push_back(std::move(step));
    return true;
  };

  while (num_scheduled < rule.body.size()) {
    // 1) Schedule every ready built-in (in source order).
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (scheduled[i] || rule.body[i].IsPositiveAtom()) {
          continue;
        }
        if (schedule_builtin_if_ready(i)) {
          scheduled[i] = true;
          ++num_scheduled;
          progressed = true;
        }
      }
    }
    if (num_scheduled == rule.body.size()) break;

    // 2a) Leading merge join: when the DP chose one, it joins the first
    //     two atoms of the forced order before anything else binds their
    //     variables. Verification failure falls back to hash scans.
    if (forced_cursor == 0 && plan.plan_info_.algo == "merge") {
      if (emit_merge_join()) {
        scheduled[forced_order[0]] = true;
        scheduled[forced_order[1]] = true;
        num_scheduled += 2;
        forced_cursor = 2;
        continue;
      }
      plan.plan_info_.algo = "hash";
      plan.plan_info_.merge_prefix = 0;
    }

    // 2) Next relational literal: the planner's choice when one is
    //    queued, otherwise the greedy pick (most bound argument
    //    positions; tie-break on smaller relation, then source order).
    ptrdiff_t best = -1;
    if (forced_cursor < forced_order.size()) {
      best = static_cast<ptrdiff_t>(forced_order[forced_cursor]);
      ++forced_cursor;
    } else {
      size_t best_bound = 0;
      size_t best_size = 0;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (scheduled[i] || !rule.body[i].IsPositiveAtom()) continue;
        const Atom& atom = rule.body[i].atom;
        size_t bound_positions = 0;
        for (const Term& arg : atom.args) {
          if (is_bound(arg)) ++bound_positions;
        }
        size_t size = relations[i]->size();
        if (best < 0 || bound_positions > best_bound ||
            (bound_positions == best_bound && size < best_size)) {
          best = static_cast<ptrdiff_t>(i);
          best_bound = bound_positions;
          best_size = size;
        }
      }
    }
    if (best < 0) {
      // Only built-ins remain and none is ready: the rule is unsafe.
      return InvalidArgumentError(
          StrCat("cannot order body of rule: ", rule.ToString()));
    }

    const Atom& atom = rule.body[best].atom;
    Step step;
    step.kind = Step::Kind::kScan;
    step.relation = relations[best];
    step.display_name = relations[best]->name();
    step.slot_comment = atom.ToString();
    std::map<std::string, uint32_t> bound_in_this_atom;
    for (size_t c = 0; c < atom.args.size(); ++c) {
      const Term& arg = atom.args[c];
      if (!arg.IsVar()) {
        if (options.disable_indexes) {
          Step::RowAction action;
          action.col = static_cast<uint32_t>(c);
          action.kind = Step::RowAction::Kind::kCheckConst;
          action.constant = const_value(arg);
          step.actions.push_back(action);
        } else {
          step.probe_cols.push_back(static_cast<uint32_t>(c));
          step.probe_sources.push_back(ValueSource::Const(const_value(arg)));
        }
        continue;
      }
      if (slot_of.count(arg.name)) {
        if (options.disable_indexes) {
          Step::RowAction action;
          action.col = static_cast<uint32_t>(c);
          action.kind = Step::RowAction::Kind::kCheckSlot;
          action.slot = slot_of.at(arg.name);
          step.actions.push_back(action);
        } else {
          step.probe_cols.push_back(static_cast<uint32_t>(c));
          step.probe_sources.push_back(
              ValueSource::Slot(slot_of.at(arg.name)));
        }
        continue;
      }
      auto seen = bound_in_this_atom.find(arg.name);
      Step::RowAction action;
      action.col = static_cast<uint32_t>(c);
      if (seen != bound_in_this_atom.end()) {
        action.kind = Step::RowAction::Kind::kCheckSlot;
        action.slot = seen->second;
      } else {
        action.kind = Step::RowAction::Kind::kBind;
        action.slot = slot_for(arg.name);
        bound_in_this_atom.emplace(arg.name, action.slot);
      }
      step.actions.push_back(action);
    }
    plan.scanned_.push_back(relations[best]);
    plan.steps_.push_back(std::move(step));
    scheduled[best] = true;
    ++num_scheduled;
  }

  // Head emission: all head variables must be bound by now.
  for (const Term& arg : rule.head.args) {
    if (arg.IsVar()) {
      auto it = slot_of.find(arg.name);
      if (it == slot_of.end()) {
        return InvalidArgumentError(
            StrCat("unsafe rule, head variable '", arg.name,
                   "' unbound: ", rule.ToString()));
      }
      plan.head_sources_.push_back(ValueSource::Slot(it->second));
    } else {
      plan.head_sources_.push_back(ValueSource::Const(const_value(arg)));
    }
  }

  return plan;
}

struct RulePlan::ExecContext {
  std::vector<Value> slots;
  size_t probes = 0;  // candidate rows examined by scan steps
  bool overflow = false;
};

template <typename Sink>
void RulePlan::Run(Sink&& sink, bool* overflow, size_t* probes) const {
  ExecContext ctx;
  ctx.slots.resize(num_slots_);
  RunStep(0, &ctx, sink);
  if (overflow != nullptr && ctx.overflow) *overflow = true;
  if (probes != nullptr) *probes += ctx.probes;
}

bool RulePlan::EvalCompare(CmpOp op, Value a, Value b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    default:
      break;
  }
  // Ordering comparisons are defined on integers only.
  if (!a.is_int() || !b.is_int()) return false;
  int64_t x = a.as_int();
  int64_t y = b.as_int();
  switch (op) {
    case CmpOp::kLt: return x < y;
    case CmpOp::kLe: return x <= y;
    case CmpOp::kGt: return x > y;
    case CmpOp::kGe: return x >= y;
    default: return false;
  }
}

namespace {

// Evaluates a postfix arithmetic program. Returns false on type error,
// division by zero, or overflow (and sets *overflow for the latter).
bool EvalExpr(const std::vector<ExprOp>& ops, const std::vector<Value>& slots,
              Value* result, bool* overflow) {
  // Expressions are tiny; a fixed-capacity stack suffices and avoids
  // allocation in the inner loop.
  int64_t stack[32];
  size_t depth = 0;
  for (const ExprOp& op : ops) {
    if (op.kind == ExprOp::Kind::kPush) {
      Value v = op.source.is_const ? op.source.constant
                                   : slots[op.source.slot];
      if (!v.is_int()) return false;
      if (depth >= 32) return false;
      stack[depth++] = v.as_int();
      continue;
    }
    if (depth < 2) return false;
    int64_t b = stack[--depth];
    int64_t a = stack[--depth];
    int64_t r = 0;
    switch (op.kind) {
      case ExprOp::Kind::kAdd:
        if (__builtin_add_overflow(a, b, &r)) {
          *overflow = true;
          return false;
        }
        break;
      case ExprOp::Kind::kSub:
        if (__builtin_sub_overflow(a, b, &r)) {
          *overflow = true;
          return false;
        }
        break;
      case ExprOp::Kind::kMul:
        if (__builtin_mul_overflow(a, b, &r)) {
          *overflow = true;
          return false;
        }
        break;
      case ExprOp::Kind::kDiv:
        if (b == 0) return false;
        r = a / b;
        break;
      case ExprOp::Kind::kMod:
        if (b == 0) return false;
        r = a % b;
        break;
      case ExprOp::Kind::kPush:
        return false;  // unreachable
    }
    stack[depth++] = r;
  }
  if (depth != 1) return false;
  if (stack[0] > Value::kMaxInt || stack[0] < Value::kMinInt) {
    *overflow = true;
    return false;
  }
  *result = Value::Int(stack[0]);
  return true;
}

}  // namespace

template <typename Sink>
void RulePlan::RunStep(size_t step_index, ExecContext* ctx,
                       Sink&& sink) const {
  if (step_index == steps_.size()) {
    // Emit the head row.
    Value row[64];
    SEPREC_CHECK(head_sources_.size() <= 64);
    for (size_t i = 0; i < head_sources_.size(); ++i) {
      const ValueSource& src = head_sources_[i];
      row[i] = src.is_const ? src.constant : ctx->slots[src.slot];
    }
    sink(Row(row, head_sources_.size()));
    return;
  }
  const Step& step = steps_[step_index];
  auto resolve = [ctx](const ValueSource& src) {
    return src.is_const ? src.constant : ctx->slots[src.slot];
  };
  switch (step.kind) {
    case Step::Kind::kScan: {
      if (step.negated) {
        // Anti-join: continue only when no row matches.
        bool found = false;
        auto check_row = [&](uint32_t row_id) {
          if (found) return;
          ++ctx->probes;
          Row r = step.relation->row(row_id);
          for (const Step::RowAction& action : step.actions) {
            if (action.kind == Step::RowAction::Kind::kCheckSlot) {
              if (r[action.col] != ctx->slots[action.slot]) return;
            } else {
              if (r[action.col] != action.constant) return;
            }
          }
          found = true;
        };
        if (step.probe_cols.empty()) {
          size_t n = step.relation->slots();
          for (uint32_t slot = 0; slot < n && !found; ++slot) {
            if (step.relation->IsLive(slot)) check_row(slot);
          }
        } else {
          Value key[64];
          SEPREC_CHECK(step.probe_cols.size() <= 64);
          for (size_t i = 0; i < step.probe_sources.size(); ++i) {
            key[i] = resolve(step.probe_sources[i]);
          }
          const Index& index = step.relation->GetIndex(step.probe_cols);
          index.ForEach(Row(key, step.probe_cols.size()),
                        [&found](uint32_t) { found = true; });
        }
        if (!found) RunStep(step_index + 1, ctx, sink);
        return;
      }
      auto try_row = [&](uint32_t row_id) {
        ++ctx->probes;
        Row r = step.relation->row(row_id);
        for (const Step::RowAction& action : step.actions) {
          switch (action.kind) {
            case Step::RowAction::Kind::kBind:
              ctx->slots[action.slot] = r[action.col];
              break;
            case Step::RowAction::Kind::kCheckSlot:
              if (r[action.col] != ctx->slots[action.slot]) return;
              break;
            case Step::RowAction::Kind::kCheckConst:
              if (r[action.col] != action.constant) return;
              break;
          }
        }
        RunStep(step_index + 1, ctx, sink);
      };
      if (step.probe_cols.empty()) {
        size_t n = step.relation->slots();
        for (uint32_t slot = 0; slot < n; ++slot) {
          if (step.relation->IsLive(slot)) try_row(slot);
        }
      } else {
        Value key[64];
        SEPREC_CHECK(step.probe_cols.size() <= 64);
        for (size_t i = 0; i < step.probe_sources.size(); ++i) {
          key[i] = resolve(step.probe_sources[i]);
        }
        const Index& index = step.relation->GetIndex(step.probe_cols);
        index.ForEach(Row(key, step.probe_cols.size()), try_row);
      }
      return;
    }
    case Step::Kind::kMergeJoin: {
      const size_t k = step.merge_key_len;
      SEPREC_CHECK(k > 0 && k <= 64);
      auto apply = [ctx](Row r, const std::vector<Step::RowAction>& actions) {
        for (const Step::RowAction& action : actions) {
          switch (action.kind) {
            case Step::RowAction::Kind::kBind:
              ctx->slots[action.slot] = r[action.col];
              break;
            case Step::RowAction::Kind::kCheckSlot:
              if (r[action.col] != ctx->slots[action.slot]) return false;
              break;
            case Step::RowAction::Kind::kCheckConst:
              if (r[action.col] != action.constant) return false;
              break;
          }
        }
        return true;
      };
      // Canonical segment order is raw-bits lexicographic, matching
      // OrderedCursor; keys compare by bits, never by Value semantics.
      auto key_cmp = [k](Row a, Row b) {
        for (size_t i = 0; i < k; ++i) {
          uint64_t x = a[i].bits();
          uint64_t y = b[i].bits();
          if (x != y) return x < y ? -1 : 1;
        }
        return 0;
      };
      Value key[64];
      auto matches_key = [&key, k](Row r) {
        for (size_t i = 0; i < k; ++i) {
          if (r[i] != key[i]) return false;
        }
        return true;
      };
      const size_t rarity = step.merge_right->arity();
      std::vector<Value> right_buf;
      OrderedCursor left(step.relation);
      OrderedCursor right(step.merge_right);
      while (!left.AtEnd() && !right.AtEnd()) {
        int cmp = key_cmp(left.Current(), right.Current());
        if (cmp < 0) {
          ++ctx->probes;
          left.Next();
          continue;
        }
        if (cmp > 0) {
          ++ctx->probes;
          right.Next();
          continue;
        }
        // Key group: buffer the right side (typically the smaller fan-out)
        // then stream the left side against it.
        {
          Row l = left.Current();
          for (size_t i = 0; i < k; ++i) key[i] = l[i];
        }
        right_buf.clear();
        while (!right.AtEnd()) {
          Row r = right.Current();
          if (!matches_key(r)) break;
          ++ctx->probes;
          right_buf.insert(right_buf.end(), r.data(), r.data() + rarity);
          right.Next();
        }
        while (!left.AtEnd()) {
          Row l = left.Current();
          if (!matches_key(l)) break;
          ++ctx->probes;
          if (apply(l, step.actions)) {
            for (size_t off = 0; off < right_buf.size(); off += rarity) {
              Row r(right_buf.data() + off, rarity);
              if (apply(r, step.merge_right_actions)) {
                RunStep(step_index + 1, ctx, sink);
              }
            }
          }
          left.Next();
        }
      }
      return;
    }
    case Step::Kind::kCompare: {
      if (EvalCompare(step.cmp_op, resolve(step.lhs), resolve(step.rhs))) {
        RunStep(step_index + 1, ctx, sink);
      }
      return;
    }
    case Step::Kind::kBindEq: {
      ctx->slots[step.target_slot] = resolve(step.bind_source);
      RunStep(step_index + 1, ctx, sink);
      return;
    }
    case Step::Kind::kAssign: {
      Value result;
      if (!EvalExpr(step.expr, ctx->slots, &result, &ctx->overflow)) {
        return;
      }
      if (step.assign_is_check) {
        if (ctx->slots[step.target_slot] != result) return;
      } else {
        ctx->slots[step.target_slot] = result;
      }
      RunStep(step_index + 1, ctx, sink);
      return;
    }
  }
}

size_t RulePlan::ExecuteInto(Relation* out, bool* overflow,
                             RuleExecMetrics* metrics) const {
  SEPREC_CHECK(out->arity() == head_sources_.size());
  for (const Relation* scanned : scanned_) {
    SEPREC_CHECK(scanned != out);
  }
  size_t inserted = 0;
  size_t emitted = 0;
  Run(
      [out, &inserted, &emitted](Row row) {
        ++emitted;
        inserted += out->Insert(row) ? 1 : 0;
      },
      overflow, metrics != nullptr ? &metrics->probes : nullptr);
  if (metrics != nullptr) {
    metrics->emitted += emitted;
    metrics->inserted += inserted;
  }
  return inserted;
}

size_t RulePlan::ExecuteInto(ShardedSink* out, bool* overflow,
                             RuleExecMetrics* metrics) const {
  SEPREC_CHECK(out->arity() == head_sources_.size());
  size_t inserted = 0;
  size_t emitted = 0;
  Run(
      [out, &inserted, &emitted](Row row) {
        ++emitted;
        inserted += out->Insert(row) ? 1 : 0;
      },
      overflow, metrics != nullptr ? &metrics->probes : nullptr);
  if (metrics != nullptr) {
    metrics->emitted += emitted;
    metrics->inserted += inserted;
  }
  return inserted;
}

size_t RulePlan::CountDerivations() const {
  size_t count = 0;
  Run([&count](Row) { ++count; }, nullptr);
  return count;
}

std::string RulePlan::DebugString() const {
  std::string out = StrCat("plan for: ", rule_.ToString(), "\n");
  for (const Step& step : steps_) {
    switch (step.kind) {
      case Step::Kind::kScan: {
        out += StrCat(step.negated ? "  anti-scan " : "  scan ",
                      step.display_name, " [", step.slot_comment,
                      "] probe(");
        for (size_t i = 0; i < step.probe_cols.size(); ++i) {
          if (i > 0) out += ",";
          out += StrCat(step.probe_cols[i]);
        }
        out += ")\n";
        break;
      }
      case Step::Kind::kMergeJoin:
        out += StrCat("  merge-join ", step.display_name, " with ",
                      step.merge_right_name, " on ",
                      static_cast<uint64_t>(step.merge_key_len),
                      " key col(s) [", step.slot_comment, "]\n");
        break;
      case Step::Kind::kCompare:
        out += StrCat("  filter ", step.slot_comment, "\n");
        break;
      case Step::Kind::kBindEq:
        out += StrCat("  bind ", step.slot_comment, "\n");
        break;
      case Step::Kind::kAssign:
        out += StrCat("  compute ", step.slot_comment, "\n");
        break;
    }
  }
  out += "  emit head\n";
  return out;
}

}  // namespace seprec
