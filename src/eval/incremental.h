// Incremental view maintenance for positive Datalog programs:
// insertions by semi-naive delta propagation, deletions by
// Delete-and-Rederive (DRed) [Gupta, Mumick & Subrahmanian 1993].
//
// After Initialize() materialises the fixpoint, AddFacts/RemoveFacts keep
// every IDB relation exact under EDB updates without recomputing from
// scratch:
//
//   * insertion: seed per-relation deltas with the new tuples and run the
//     per-occurrence delta rules to fixpoint (only work proportional to
//     the affected derivations);
//   * deletion: (1) overdelete — close the set of tuples with at least
//     one derivation through a deleted tuple (computed against the
//     pre-deletion relations), (2) erase them, (3) rederive — re-insert
//     every overdeleted tuple that still has a derivation from the
//     remaining tuples, cascading re-insertions like insertions.
//
// Restricted to positive programs (no negation, no aggregates): DRed's
// overdelete/rederive argument needs monotonicity. Non-positive programs
// are rejected at Create; re-evaluate those from scratch instead.
#ifndef SEPREC_EVAL_INCREMENTAL_H_
#define SEPREC_EVAL_INCREMENTAL_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "datalog/analysis.h"
#include "datalog/ast.h"
#include "eval/eval_stats.h"
#include "eval/join_plan.h"
#include "storage/database.h"
#include "util/status.h"

namespace seprec {

struct UpdateStats {
  size_t inserted = 0;     // tuples added to IDB relations (incl. cascades)
  size_t overdeleted = 0;  // tuples provisionally deleted
  size_t rederived = 0;    // overdeleted tuples that came back
  size_t iterations = 0;   // delta rounds
  double seconds = 0.0;    // wall time of the whole update call

  std::string ToString() const;
};

class TraceSink;

class IncrementalEngine {
 public:
  // Validates the program (safe, positive, no aggregates) and compiles
  // the delta/overdelete/rederive plan sets. `db` must outlive the engine.
  static StatusOr<IncrementalEngine> Create(Program program, Database* db);

  IncrementalEngine(IncrementalEngine&&) = default;
  IncrementalEngine& operator=(IncrementalEngine&&) = default;

  // Full semi-naive evaluation establishing the fixpoint. Call once
  // before the first update (also callable later to re-sync). Fills
  // `stats` (including wall time) when non-null.
  Status Initialize(EvalStats* stats = nullptr);

  // Attaches a trace sink; subsequent Initialize/AddFacts/RemoveFacts
  // calls emit engine and per-round events (engine "incremental", phases
  // "insert", "overdelete", "rederive"). Pass nullptr to detach.
  void set_trace(TraceSink* trace) { trace_ = trace; }

  // Inserts rows into the EDB relation `relation` and propagates.
  Status AddFacts(std::string_view relation,
                  const std::vector<std::vector<Value>>& rows);
  // Convenience: symbol tokens, interned.
  Status AddFact(std::string_view relation,
                 const std::vector<std::string>& symbols);

  // Removes rows from the EDB relation `relation` and maintains all IDB
  // relations by DRed.
  Status RemoveFacts(std::string_view relation,
                     const std::vector<std::vector<Value>>& rows);
  Status RemoveFact(std::string_view relation,
                    const std::vector<std::string>& symbols);

  // Statistics of the most recent AddFacts/RemoveFacts call.
  const UpdateStats& last_update() const { return last_update_; }

  const Program& program() const { return info_.program(); }

 private:
  IncrementalEngine() = default;

  struct VariantPlan {
    RulePlan plan;
    std::string head;
  };

  Status SeedRows(std::string_view relation,
                  const std::vector<std::vector<Value>>& rows,
                  bool removing, Relation** edb, Relation** seed);
  // Runs the insertion delta loop starting from the current $inc_new_*
  // contents. Adds newly derived tuples to the IDB relations.
  Status PropagateInsertions();

  std::string NewDeltaName(std::string_view pred) const;
  std::string DelDeltaName(std::string_view pred) const;

  ProgramInfo info_;
  Database* db_ = nullptr;
  std::set<std::string> predicates_;      // every predicate mentioned
  std::set<std::string> idb_;             // head predicates
  std::vector<VariantPlan> insert_plans_;     // occurrence -> $inc_new_*
  std::vector<VariantPlan> overdelete_plans_; // occurrence -> $inc_del_*
  std::vector<VariantPlan> rederive_plans_;   // body + del-filter on head
  UpdateStats last_update_;
  TraceSink* trace_ = nullptr;
};

}  // namespace seprec

#endif  // SEPREC_EVAL_INCREMENTAL_H_
