// Incremental view maintenance for positive Datalog programs:
// insertions by semi-naive delta propagation, deletions by
// Delete-and-Rederive (DRed) [Gupta, Mumick & Subrahmanian 1993].
//
// After Initialize() materialises the fixpoint, AddFacts/RemoveFacts keep
// every IDB relation exact under EDB updates without recomputing from
// scratch:
//
//   * insertion: seed per-relation deltas with the new tuples and run the
//     per-occurrence delta rules to fixpoint (only work proportional to
//     the affected derivations);
//   * deletion: (1) overdelete — close the set of tuples with at least
//     one derivation through a deleted tuple (computed against the
//     pre-deletion relations), (2) erase them, (3) rederive — re-insert
//     every overdeleted tuple that still has a derivation from the
//     remaining tuples, cascading re-insertions like insertions.
//
// Restricted to positive programs (no negation, no aggregates): DRed's
// overdelete/rederive argument needs monotonicity. Non-positive programs
// are rejected at Create; re-evaluate those from scratch instead.
#ifndef SEPREC_EVAL_INCREMENTAL_H_
#define SEPREC_EVAL_INCREMENTAL_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "datalog/analysis.h"
#include "datalog/ast.h"
#include "eval/eval_stats.h"
#include "eval/join_plan.h"
#include "storage/database.h"
#include "util/status.h"

namespace seprec {

struct UpdateStats {
  size_t inserted = 0;     // tuples added to IDB relations (incl. cascades)
  size_t overdeleted = 0;  // tuples provisionally deleted
  size_t rederived = 0;    // overdeleted tuples that came back
  size_t iterations = 0;   // delta rounds
  double seconds = 0.0;    // wall time of the whole update call

  std::string ToString() const;
};

class TraceSink;

class IncrementalEngine {
 public:
  // Validates the program (safe, positive, no aggregates) and compiles
  // the delta/overdelete/rederive plan sets. `db` must outlive the engine.
  static StatusOr<IncrementalEngine> Create(Program program, Database* db);

  IncrementalEngine(IncrementalEngine&&) = default;
  IncrementalEngine& operator=(IncrementalEngine&&) = default;

  // Full semi-naive evaluation establishing the fixpoint. Call once
  // before the first update (also callable later to re-sync). Fills
  // `stats` (including wall time) when non-null.
  Status Initialize(EvalStats* stats = nullptr);

  // Attaches a trace sink; subsequent Initialize/AddFacts/RemoveFacts
  // calls emit engine and per-round events (engine "incremental", phases
  // "insert", "overdelete", "rederive"). Pass nullptr to detach.
  void set_trace(TraceSink* trace) { trace_ = trace; }

  // Inserts rows into the EDB relation `relation` and propagates.
  Status AddFacts(std::string_view relation,
                  const std::vector<std::vector<Value>>& rows);
  // Convenience: symbol tokens, interned.
  Status AddFact(std::string_view relation,
                 const std::vector<std::string>& symbols);

  // Removes rows from the EDB relation `relation` and maintains all IDB
  // relations by DRed.
  Status RemoveFacts(std::string_view relation,
                     const std::vector<std::vector<Value>>& rows);
  Status RemoveFact(std::string_view relation,
                    const std::vector<std::string>& symbols);

  // --- Split-phase updates -------------------------------------------
  //
  // The query service owns the EDB mutation (it goes through the WAL and
  // ApplyTupleBatch, shared with every other maintenance engine watching
  // the same relation), so the engine also exposes each update as phases
  // around a mutation the CALLER performs:
  //
  //   insert:  caller applies the batch, then PropagateInserted(rel, new)
  //            with the rows that were genuinely new;
  //   delete:  PrepareRemoval(rel, victims) BEFORE the erase (overdelete
  //            closes against the pre-deletion state and the engine's own
  //            IDB tuples are erased), then the caller erases the EDB
  //            rows, then FinishRemoval() rederives and cascades.
  //
  // AddFacts/RemoveFacts remain the self-contained forms of the same
  // phases for callers that own their database.

  // True when `relation` is a base (non-IDB) relation of the maintained
  // program — i.e. updates to it must be propagated through this engine.
  bool Maintains(std::string_view relation) const;

  // Seeds the insertion deltas with `rows` — which the caller has ALREADY
  // inserted into `relation` — and runs the delta rules to fixpoint. Does
  // not touch the EDB relation or the database generation.
  Status PropagateInserted(std::string_view relation,
                           const std::vector<std::vector<Value>>& rows);

  // DRed phase 1 against the pre-deletion state: computes the overdelete
  // closure of `rows` (which must still be present in `relation`), erases
  // the overdeleted tuples from the engine's IDB relations, and loads the
  // rederivation filters. The caller must erase `rows` from `relation`
  // itself before calling FinishRemoval.
  Status PrepareRemoval(std::string_view relation,
                        const std::vector<std::vector<Value>>& rows);

  // DRed phases 2-3: rederives every overdeleted tuple still derivable
  // from the remaining tuples, cascades the re-insertions, and clears the
  // filters. Requires a preceding PrepareRemoval.
  Status FinishRemoval();

  // The '$'-prefixed delta relations this engine created in the database
  // (unique to this engine instance), so an owner tearing the engine down
  // can Drop them.
  std::vector<std::string> ScratchRelationNames() const;

  // Statistics of the most recent update call (for the split-phase form,
  // of the Prepare/Finish pair as a whole).
  const UpdateStats& last_update() const { return last_update_; }

  const Program& program() const { return info_.program(); }

 private:
  IncrementalEngine() = default;

  struct VariantPlan {
    RulePlan plan;
    std::string head;
  };

  Status SeedRows(std::string_view relation,
                  const std::vector<std::vector<Value>>& rows,
                  bool removing, Relation** edb, Relation** seed);
  // Runs the insertion delta loop starting from the current $inc<id>_new_*
  // contents. Adds newly derived tuples to the IDB relations.
  Status PropagateInsertions();
  // Overdelete closure of the seeded $inc<id>_del_* deltas against the
  // pre-deletion state; erases overdeleted IDB tuples, loads the rederive
  // filters, and erases the EDB seed too when `erase_edb` is set.
  Status OverdeleteAndErase(std::string_view relation, Relation* seed,
                            bool erase_edb);
  // Rederivation + cascade, then clears the filters.
  Status RederiveAndCascade();

  std::string NewDeltaName(std::string_view pred) const;
  std::string DelDeltaName(std::string_view pred) const;

  ProgramInfo info_;
  Database* db_ = nullptr;
  // Unique per engine instance ("$inc<id>"), so several engines can
  // maintain programs over the same database without sharing deltas.
  std::string delta_prefix_;
  std::set<std::string> predicates_;      // every predicate mentioned
  std::set<std::string> idb_;             // head predicates
  std::vector<VariantPlan> insert_plans_;     // occurrence -> $inc<id>_new_*
  std::vector<VariantPlan> overdelete_plans_; // occurrence -> $inc<id>_del_*
  std::vector<VariantPlan> rederive_plans_;   // body + del-filter on head
  bool pending_removal_ = false;  // PrepareRemoval ran, FinishRemoval due
  UpdateStats last_update_;
  TraceSink* trace_ = nullptr;
};

}  // namespace seprec

#endif  // SEPREC_EVAL_INCREMENTAL_H_
