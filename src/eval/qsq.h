// QSQR — Query-SubQuery (recursive), the classical set-oriented TOP-DOWN
// evaluation method [Vieille 1986].
//
// Where Magic Sets simulates top-down goal propagation by rewriting the
// program and running it bottom-up, QSQR propagates goals directly: each
// adorned predicate p^α keeps an `input` relation of bound-argument tuples
// (subqueries) and an `ans` relation of answers; rule bodies are swept
// left-to-right through supplementary relations, generating new subqueries
// at IDB literals and consuming answers, iterating to a global fixpoint.
//
// The adorned system QSQR explores is exactly the one the Magic rewrite
// generates, so the input/ans relation sizes match Magic's magic_/adorned
// relation sizes — the classical equivalence, demonstrated by the tests
// and the tab_ablation bench.
//
// Negated and aggregate-defined predicates are pre-materialised and read
// as base relations (as in the Magic driver).
#ifndef SEPREC_EVAL_QSQ_H_
#define SEPREC_EVAL_QSQ_H_

#include <set>
#include <string>

#include "core/answer.h"
#include "datalog/ast.h"
#include "eval/fixpoint.h"
#include "storage/database.h"
#include "util/status.h"

namespace seprec {

struct QsqrRunResult {
  Answer answer{0};
  EvalStats stats;
  // The (predicate, adornment) pairs explored, e.g. "tc_bf".
  std::set<std::string> adorned;
};

// Answers `query` (which should bind at least one argument for the method
// to focus anything; all-free queries degenerate to full evaluation) over
// `program` by QSQR.
StatusOr<QsqrRunResult> EvaluateWithQsqr(const Program& program,
                                         const Atom& query, Database* db,
                                         const FixpointOptions& options = {});

}  // namespace seprec

#endif  // SEPREC_EVAL_QSQ_H_
