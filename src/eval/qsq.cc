#include "eval/qsq.h"

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "core/query.h"
#include "core/support.h"
#include "datalog/analysis.h"
#include "eval/join_plan.h"
#include "eval/trace.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace seprec {
namespace {

// One adorned rule compiled into a supplementary-relation sweep.
//
// Step j computes sup_j := sup_{j-1} JOIN literal_j (IDB literals read the
// subgoal's ans relation); IDB steps also project new subqueries into the
// subgoal's input relation. The pass loop is delta-driven: each step has a
// variant reading the Δ of sup_{j-1} (and, for IDB literals, a variant
// reading the Δ of the ans relation), so every tuple is processed a
// bounded number of times — the semi-naive discipline applied to the QSQR
// supplementary system.
struct SweepStep {
  RulePlan delta_prev_plan;  // Δsup_{j-1} ⋈ lit(full)
  std::string sup_relation;
  std::unique_ptr<RulePlan> delta_lit_plan;  // sup_{j-1}(full) ⋈ Δans
  std::unique_ptr<RulePlan> need_plan;  // Δsup_{j-1} projected to subqueries
  std::string input_relation;
};

struct RuleSweep {
  std::vector<SweepStep> steps;
  RulePlan head_plan;  // Δsup_m projected to the head
  std::string ans_relation;
};

struct AdornedPredicate {
  std::string input_relation;  // bound-argument tuples (subqueries)
  std::string ans_relation;    // full-arity answers
  size_t arity = 0;
};

class QsqrEngine {
 public:
  QsqrEngine(const Program& rectified, const ProgramInfo& info, Database* db,
             const std::set<std::string>& base_like,
             JoinOrderMode join_order = JoinOrderMode::kCostBased)
      : rectified_(rectified),
        info_(info),
        db_(db),
        base_like_(base_like),
        join_order_(join_order) {}

  Status Setup(const Atom& query) {
    query_key_ = AdornedKey(query.predicate, AdornmentOfAtom(query, {}));
    std::deque<std::pair<std::string, std::string>> queue;
    std::set<std::pair<std::string, std::string>> done;
    queue.emplace_back(query.predicate, AdornmentOfAtom(query, {}));
    done.insert(queue.front());
    while (!queue.empty()) {
      auto [pred, adornment] = queue.front();
      queue.pop_front();
      SEPREC_RETURN_IF_ERROR(SetupAdorned(pred, adornment, &queue, &done));
    }
    return Status::OK();
  }

  void Run(const Atom& query, ExecutionContext* ctx, EvalStats* stats,
           const std::string& phase) {
    TraceSink* trace = ctx->trace();
    const bool measuring = stats != nullptr || trace != nullptr;
    // Scratch per tracked relation.
    std::map<std::string, std::unique_ptr<Relation>> scratch;
    for (const std::string& name : tracked_) {
      scratch.emplace(name, std::make_unique<Relation>(
                                "$qsq_scratch", db_->Find(name)->arity()));
      db_->Find(DeltaName(name))->Clear();
    }

    // Seed the query's input (and its delta).
    const AdornedPredicate& root = adorned_.at(query_key_);
    std::vector<Value> seed;
    for (const Term& arg : query.args) {
      if (!arg.IsConstant()) continue;
      seed.push_back(arg.kind == Term::Kind::kInt
                         ? Value::Int(arg.int_value)
                         : db_->symbols().Intern(arg.name));
    }
    db_->Find(root.input_relation)->Insert(Row(seed.data(), seed.size()));
    db_->Find(DeltaName(root.input_relation))
        ->Insert(Row(seed.data(), seed.size()));
    ctx->NoteTuples(1);

    size_t total = 1;
    size_t passes = 0;
    bool changed = true;
    while (changed) {
      ++passes;
      if (ctx->NoteIterationAndCheck()) break;
      uint64_t delta_rows = 0;
      if (trace != nullptr) {
        for (const std::string& name : tracked_) {
          delta_rows += db_->Find(DeltaName(name))->size();
        }
        TraceEvent e;
        e.kind = TraceEventKind::kRoundStart;
        e.engine = "qsqr";
        e.phase = phase;
        e.round = passes;
        e.delta = delta_rows;
        trace->Emit(e);
      }
      RuleExecMetrics pass_metrics;
      RuleExecMetrics* pm = measuring ? &pass_metrics : nullptr;
      for (RuleSweep& sweep : sweeps_) {
        for (SweepStep& step : sweep.steps) {
          Relation* sup_scratch = scratch.at(step.sup_relation).get();
          step.delta_prev_plan.ExecuteInto(sup_scratch, nullptr, pm);
          if (step.delta_lit_plan != nullptr) {
            step.delta_lit_plan->ExecuteInto(sup_scratch, nullptr, pm);
          }
          if (step.need_plan != nullptr) {
            step.need_plan->ExecuteInto(scratch.at(step.input_relation).get(),
                                        nullptr, pm);
          }
        }
        sweep.head_plan.ExecuteInto(scratch.at(sweep.ans_relation).get(),
                                    nullptr, pm);
      }
      // Fold: additions become the next pass's deltas.
      changed = false;
      size_t pass_new = 0;
      for (const std::string& name : tracked_) {
        Relation* full = db_->Find(name);
        Relation* delta = db_->Find(DeltaName(name));
        delta->Clear();
        Relation* sc = scratch.at(name).get();
        sc->ForEachRow([&](Row row) {
          if (full->Insert(row)) {
            delta->Insert(row);
            ++pass_new;
            changed = true;
          }
        });
        sc->Clear();
      }
      total += pass_new;
      ctx->NoteTuples(pass_new);
      if (stats != nullptr) {
        stats->NoteRound(phase, passes, pass_metrics.emitted, pass_new);
      }
      if (trace != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kRoundEnd;
        e.engine = "qsqr";
        e.phase = phase;
        e.round = passes;
        e.emitted = pass_metrics.emitted;
        e.inserted = pass_new;
        e.delta = delta_rows;
        trace->Emit(e);
      }
      if (ctx->ShouldStop()) break;
    }

    if (stats != nullptr) {
      stats->iterations = passes;
      stats->tuples_inserted = total;
      for (const auto& [key, ap] : adorned_) {
        stats->NoteRelation(StrCat("input_", key),
                            db_->Find(ap.input_relation)->size());
        stats->NoteRelation(StrCat("ans_", key),
                            db_->Find(ap.ans_relation)->size());
      }
    }
  }

  const std::string& query_ans_relation() const {
    return adorned_.at(query_key_).ans_relation;
  }

  std::set<std::string> AdornedKeys() const {
    std::set<std::string> keys;
    for (const auto& [key, ap] : adorned_) keys.insert(key);
    return keys;
  }

 private:
  static std::string AdornedKey(std::string_view pred,
                                const std::string& adornment) {
    return StrCat(pred, "_", adornment);
  }

  static std::string DeltaName(const std::string& relation) {
    return relation + "$d";
  }

  // Adornment of `atom` under `bound` variables (constants are bound).
  static std::string AdornmentOfAtom(const Atom& atom,
                                     const std::set<std::string>& bound) {
    std::string adornment;
    for (const Term& arg : atom.args) {
      bool b = arg.IsConstant() || bound.count(arg.name) > 0;
      adornment.push_back(b ? 'b' : 'f');
    }
    return adornment;
  }

  // True if the predicate is evaluated top-down (IDB, not base-like).
  bool IsGoal(const std::string& pred) const {
    return info_.IsIdb(pred) && !base_like_.count(pred);
  }

  // Creates `name` (and its delta) with the given arity and tracks it.
  Status Track(const std::string& name, size_t arity) {
    SEPREC_RETURN_IF_ERROR(db_->CreateRelation(name, arity).status());
    SEPREC_RETURN_IF_ERROR(
        db_->CreateRelation(DeltaName(name), arity).status());
    tracked_.insert(name);
    return Status::OK();
  }

  Status SetupAdorned(const std::string& pred, const std::string& adornment,
                      std::deque<std::pair<std::string, std::string>>* queue,
                      std::set<std::pair<std::string, std::string>>* done) {
    const std::string key = AdornedKey(pred, adornment);
    AdornedPredicate ap;
    ap.arity = info_.Find(pred)->arity;
    size_t bound_arity = 0;
    for (char c : adornment) {
      if (c == 'b') ++bound_arity;
    }
    ap.input_relation = StrCat("$qsq_in_", key);
    ap.ans_relation = StrCat("$qsq_ans_", key);
    SEPREC_RETURN_IF_ERROR(Track(ap.input_relation, bound_arity));
    SEPREC_RETURN_IF_ERROR(Track(ap.ans_relation, ap.arity));
    adorned_.emplace(key, ap);

    size_t rule_id = 0;
    for (const Rule& rule : rectified_.rules) {
      ++rule_id;
      if (rule.head.predicate != pred) continue;
      if (rule.aggregate.has_value()) {
        return FailedPreconditionError(
            StrCat("QSQR cannot expand the aggregate rule: ",
                   rule.ToString()));
      }

      std::set<std::string> bound;
      std::vector<Term> bound_head_args;
      for (size_t i = 0; i < rule.head.args.size(); ++i) {
        if (adornment[i] == 'b') {
          bound.insert(rule.head.args[i].name);
          bound_head_args.push_back(rule.head.args[i]);
        }
      }
      std::vector<Literal> ordered = OrderBodySafely(rule, bound);

      std::vector<SweepStep> steps;
      std::string prev_relation = ap.input_relation;
      std::vector<Term> prev_vars = bound_head_args;
      std::set<std::string> available = bound;

      auto passed_vars = [&](size_t next_index) {
        std::set<std::string> needed;
        CollectVars(rule.head, &needed);
        for (size_t j = next_index; j < ordered.size(); ++j) {
          CollectVars(ordered[j], &needed);
        }
        std::vector<Term> out;
        for (const std::string& v : available) {
          if (needed.count(v)) out.push_back(Term::Var(v));
        }
        return out;
      };
      auto prev_literal = [&]() {
        Atom prev_atom;
        prev_atom.predicate = prev_relation;
        prev_atom.args = prev_vars;
        return Literal::MakeAtom(std::move(prev_atom));
      };

      for (size_t j = 0; j < ordered.size(); ++j) {
        Literal lit = ordered[j];
        std::unique_ptr<RulePlan> need_plan;
        std::unique_ptr<RulePlan> delta_lit_plan;
        std::string input_relation;
        bool lit_is_goal =
            lit.IsPositiveAtom() && IsGoal(lit.atom.predicate);

        if (lit_is_goal) {
          std::string beta = AdornmentOfAtom(lit.atom, available);
          if (done->insert({lit.atom.predicate, beta}).second) {
            queue->emplace_back(lit.atom.predicate, beta);
          }
          std::string sub_key = AdornedKey(lit.atom.predicate, beta);
          input_relation = StrCat("$qsq_in_", sub_key);
          size_t sub_bound = 0;
          for (char c : beta) {
            if (c == 'b') ++sub_bound;
          }
          SEPREC_RETURN_IF_ERROR(Track(input_relation, sub_bound));
          SEPREC_RETURN_IF_ERROR(
              Track(StrCat("$qsq_ans_", sub_key),
                    info_.Find(lit.atom.predicate)->arity));

          // New subqueries come only from NEW sup_{j-1} tuples.
          Rule need;
          need.head.predicate = "$need";
          for (size_t c = 0; c < lit.atom.args.size(); ++c) {
            if (beta[c] == 'b') need.head.args.push_back(lit.atom.args[c]);
          }
          need.body.push_back(prev_literal());
          PlanOptions delta_prev_opts;
          delta_prev_opts.join_order = join_order_;
          delta_prev_opts.relation_overrides[0] = DeltaName(prev_relation);
          SEPREC_ASSIGN_OR_RETURN(
              RulePlan compiled_need,
              RulePlan::Compile(need, db_, delta_prev_opts));
          need_plan = std::make_unique<RulePlan>(std::move(compiled_need));
          lit.atom.predicate = StrCat("$qsq_ans_", sub_key);
        }

        CollectVars(ordered[j], &available);
        std::vector<Term> vars = passed_vars(j + 1);

        Rule sup_rule;
        sup_rule.head.predicate = "$sup";
        sup_rule.head.args = vars;
        sup_rule.body.push_back(prev_literal());
        sup_rule.body.push_back(lit);

        PlanOptions delta_prev_opts;
        delta_prev_opts.join_order = join_order_;
        delta_prev_opts.relation_overrides[0] = DeltaName(prev_relation);
        SEPREC_ASSIGN_OR_RETURN(
            RulePlan delta_prev_plan,
            RulePlan::Compile(sup_rule, db_, delta_prev_opts));
        if (lit_is_goal) {
          // The ans relation grows during the run: also join the full
          // prefix against its delta.
          PlanOptions delta_lit_opts;
          delta_lit_opts.join_order = join_order_;
          delta_lit_opts.relation_overrides[1] =
              DeltaName(lit.atom.predicate);
          SEPREC_ASSIGN_OR_RETURN(
              RulePlan compiled,
              RulePlan::Compile(sup_rule, db_, delta_lit_opts));
          delta_lit_plan = std::make_unique<RulePlan>(std::move(compiled));
        }

        std::string sup_name =
            StrCat("$qsq_sup_", key, "_", rule_id, "_", j);
        SEPREC_RETURN_IF_ERROR(Track(sup_name, vars.size()));
        steps.push_back(SweepStep{std::move(delta_prev_plan), sup_name,
                                  std::move(delta_lit_plan),
                                  std::move(need_plan),
                                  std::move(input_relation)});
        prev_relation = sup_name;
        prev_vars = std::move(vars);
      }

      // Final projection: ans(head args) :- Δsup_m(vars).
      Rule head_rule;
      head_rule.head = rule.head;
      head_rule.head.predicate = "$ans";
      head_rule.body.push_back(prev_literal());
      PlanOptions delta_prev_opts;
      delta_prev_opts.join_order = join_order_;
      delta_prev_opts.relation_overrides[0] = DeltaName(prev_relation);
      SEPREC_ASSIGN_OR_RETURN(
          RulePlan head_plan,
          RulePlan::Compile(head_rule, db_, delta_prev_opts));
      sweeps_.push_back(RuleSweep{std::move(steps), std::move(head_plan),
                                  ap.ans_relation});
    }
    return Status::OK();
  }

  const Program& rectified_;
  const ProgramInfo& info_;
  Database* db_;
  std::set<std::string> base_like_;
  JoinOrderMode join_order_;
  std::string query_key_;
  std::map<std::string, AdornedPredicate> adorned_;
  std::set<std::string> tracked_;
  std::vector<RuleSweep> sweeps_;
};

}  // namespace

StatusOr<QsqrRunResult> EvaluateWithQsqr(const Program& program,
                                         const Atom& query, Database* db,
                                         const FixpointOptions& options) {
  QsqrRunResult result;
  result.answer = Answer(query.arity());
  result.stats.algorithm = "qsqr";
  WallTimer timer;

  SEPREC_ASSIGN_OR_RETURN(ProgramInfo info, ProgramInfo::Analyze(program));
  const PredicateInfo* qpred = info.Find(query.predicate);
  if (qpred == nullptr || !qpred->is_idb) {
    return InvalidArgumentError(StrCat("query predicate '", query.predicate,
                                       "' is not an IDB predicate"));
  }
  if (qpred->arity != query.arity()) {
    return InvalidArgumentError(StrCat("query arity ", query.arity(),
                                       " does not match predicate arity ",
                                       qpred->arity));
  }

  std::set<std::string> base_like = NegatedIdbPredicates(program);
  for (const std::string& pred : AggregatePredicates(program)) {
    base_like.insert(pred);
  }
  if (base_like.count(query.predicate)) {
    return FailedPreconditionError(
        StrCat("query predicate '", query.predicate,
               "' is aggregate/negation-defined; use semi-naive"));
  }
  GovernorScope governor(options.limits, options.cancel, options.context);
  governor.ctx()->TrackMemory(&db->accountant());

  uint64_t polls_before = 0;
  uint64_t attempts_before = 0;
  uint64_t novel_before = 0;
  if (options.trace != nullptr) {
    governor.ctx()->SetTrace(options.trace);
    db->counters().active = true;
    polls_before = governor.ctx()->polls();
    attempts_before = db->counters().attempts.load(std::memory_order_relaxed);
    novel_before = db->counters().novel.load(std::memory_order_relaxed);
    TraceEvent e;
    e.kind = TraceEventKind::kEngineStart;
    e.engine = "qsqr";
    options.trace->Emit(e);
  }
  auto finish_trace = [&] {
    if (options.trace == nullptr) return;
    TraceEvent e;
    e.kind = TraceEventKind::kEngineFinish;
    e.engine = "qsqr";
    e.seconds = timer.Seconds();
    e.iterations = result.stats.iterations;
    e.tuples = result.stats.tuples_inserted;
    e.polls = governor.ctx()->polls() - polls_before;
    e.insert_attempts =
        db->counters().attempts.load(std::memory_order_relaxed) -
        attempts_before;
    e.insert_new =
        db->counters().novel.load(std::memory_order_relaxed) - novel_before;
    options.trace->Emit(e);
  };

  if (!base_like.empty()) {
    FixpointOptions governed = options;
    governed.context = governor.ctx();
    Status status = MaterializePredicates(program, base_like, db, governed,
                                          &result.stats);
    if (!status.ok()) {
      finish_trace();
      return status;
    }
  }

  Program rectified = Rectify(program);
  QsqrEngine engine(rectified, info, db, base_like,
                    options.no_cbo ? JoinOrderMode::kTextual
                                   : JoinOrderMode::kCostBased);
  Status status = engine.Setup(query);
  if (!status.ok()) {
    finish_trace();
    return status;
  }
  engine.Run(query, governor.ctx(), &result.stats,
             StrCat(options.trace_phase_prefix, "pass"));
  status = governor.ExitStatus();
  if (!status.ok()) {
    finish_trace();
    return status;
  }
  result.adorned = engine.AdornedKeys();

  const Relation* ans = db->Find(engine.query_ans_relation());
  if (ans != nullptr) {
    result.answer = SelectMatching(*ans, query, db->symbols());
  }
  result.stats.seconds = timer.Seconds();
  finish_trace();
  return result;
}

}  // namespace seprec
